// Command casino-server is the design-space-exploration sweep service: a
// long-running HTTP server with a job queue that expands parameter grids
// into simulation cells, shards them across a bounded worker pool sized
// to the machine, caches results by spec+trace fingerprint so overlapping
// sweeps never simulate the same design point twice, and serves merged
// run manifests (compare-able against goldens), IPC × energy Pareto
// frontiers, live per-sweep progress (polling and SSE), and Prometheus
// metrics.
//
// Usage:
//
//	casino-server -addr :8573
//	casino-server -addr :8573 -log-format json -log-level debug -pprof
//	casino-bench submit -server http://localhost:8573 -grid grid.json -out merged.json -progress
//
// Endpoints:
//
//	POST /v1/sweeps               submit a sweep grid (JSON), returns the job id
//	GET  /v1/sweeps               list all sweeps with live progress
//	GET  /v1/sweeps/{id}          progress: cells done/total, cache hits
//	GET  /v1/sweeps/{id}/progress progress plus ETA / elapsed / cell-latency EWMA
//	GET  /v1/sweeps/{id}/events   Server-Sent-Events progress stream
//	GET  /v1/sweeps/{id}/manifest merged manifest (409 until the sweep completes)
//	GET  /v1/sweeps/{id}/pareto   per-workload Pareto frontiers
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 liveness
//	GET  /readyz                  readiness (503 once draining)
//	GET  /debug/pprof/            profiling (only with -pprof)
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops
// accepting, every already accepted sweep drains to completion (SSE
// subscribers receive their terminal events), the drain duration is
// logged, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"casino/internal/dse"
)

func main() {
	var (
		addr      = flag.String("addr", ":8573", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = runtime.NumCPU())")
		cacheSize = flag.Int("cache", 0, "result cache capacity in cells (0 = default)")
		drainWait = flag.Duration("drain-timeout", 10*time.Minute, "max time to wait for in-flight sweeps on shutdown")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default: exposes heap contents)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-server: %v\n", err)
		os.Exit(2)
	}

	engine := dse.NewEngine(*workers, *cacheSize)
	opts := []dse.ServerOption{dse.WithLogger(logger)}
	if *withPprof {
		opts = append(opts, dse.WithPprof())
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           dse.NewServer(engine, opts...),
		ReadHeaderTimeout: 10 * time.Second,
	}

	n := *workers
	if n <= 0 {
		n = runtime.NumCPU()
	}
	logger.Info("listening",
		"addr", *addr, "workers", n, "pprof", *withPprof,
		"go", runtime.Version())

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("shutdown signal, draining in-flight sweeps", "signal", s.String())
	}

	// Stop the listener first so no new sweeps land, then drain the
	// engine: accepted jobs run their cells to completion and every SSE
	// subscriber sees its terminal event.
	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener shutdown", "err", err)
	}
	done := make(chan struct{})
	go func() {
		engine.Close()
		close(done)
	}()
	select {
	case <-done:
		logger.Info("drained, bye", "drain_duration", time.Since(drainStart))
	case <-ctx.Done():
		logger.Error("drain timeout exceeded, exiting with work pending",
			"drain_timeout", *drainWait)
		os.Exit(1)
	}
}

// newLogger builds the process logger from the -log-level/-log-format
// flags. Logs go to stderr so piped manifest output stays clean.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}
