// Command casino-server is the design-space-exploration sweep service: a
// long-running HTTP server with a job queue that expands parameter grids
// into simulation cells, shards them across a bounded worker pool sized
// to the machine, caches results by spec+trace fingerprint so overlapping
// sweeps never simulate the same design point twice, and serves merged
// run manifests (compare-able against goldens) and IPC × energy Pareto
// frontiers.
//
// Usage:
//
//	casino-server -addr :8573
//	casino-bench submit -server http://localhost:8573 -grid grid.json -out merged.json
//
// Endpoints:
//
//	POST /v1/sweeps               submit a sweep grid (JSON), returns the job id
//	GET  /v1/sweeps/{id}          progress: cells done/total, cache hits
//	GET  /v1/sweeps/{id}/manifest merged manifest (409 until the sweep completes)
//	GET  /v1/sweeps/{id}/pareto   per-workload Pareto frontiers
//	GET  /healthz                 liveness
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops
// accepting, every already accepted sweep drains to completion, then the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"casino/internal/dse"
)

func main() {
	var (
		addr      = flag.String("addr", ":8573", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = runtime.NumCPU())")
		cacheSize = flag.Int("cache", 0, "result cache capacity in cells (0 = default)")
		drainWait = flag.Duration("drain-timeout", 10*time.Minute, "max time to wait for in-flight sweeps on shutdown")
	)
	flag.Parse()

	engine := dse.NewEngine(*workers, *cacheSize)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           dse.NewServer(engine),
		ReadHeaderTimeout: 10 * time.Second,
	}

	n := *workers
	if n <= 0 {
		n = runtime.NumCPU()
	}
	fmt.Printf("casino-server: listening on %s (%d workers)\n", *addr, n)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "casino-server: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("casino-server: %v, draining in-flight sweeps\n", s)
	}

	// Stop the listener first so no new sweeps land, then drain the
	// engine: accepted jobs run their cells to completion.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "casino-server: shutdown: %v\n", err)
	}
	done := make(chan struct{})
	go func() {
		engine.Close()
		close(done)
	}()
	select {
	case <-done:
		fmt.Println("casino-server: drained, bye")
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "casino-server: drain timeout exceeded, exiting with work pending")
		os.Exit(1)
	}
}
