// Command casino-trace generates and inspects workload traces.
//
// Usage:
//
//	casino-trace -workload mcf -n 100000 -o mcf.trace   # generate + save
//	casino-trace -workload mcf -n 100000 -stats         # mix statistics
//	casino-trace -in mcf.trace -dump 20                 # inspect a file
package main

import (
	"flag"
	"fmt"
	"os"

	"casino"
	"casino/internal/trace"
)

func main() {
	var (
		wl    = flag.String("workload", "", "workload profile to generate")
		n     = flag.Int("n", 100000, "number of micro-ops to generate")
		seed  = flag.Int64("seed", 1, "generation seed")
		out   = flag.String("o", "", "write the trace to this file")
		in    = flag.String("in", "", "read a trace from this file instead of generating")
		stats = flag.Bool("stats", true, "print mix statistics")
		dump  = flag.Int("dump", 0, "print the first N micro-ops")
	)
	flag.Parse()

	var tr *casino.Trace
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			fatal(err)
		}
	case *wl != "":
		var err error
		tr, err = casino.GenerateTrace(*wl, *n, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "casino-trace: need -workload or -in (workloads:", casino.Workloads(), ")")
		os.Exit(2)
	}

	if *stats {
		m := tr.Stats()
		fmt.Printf("trace %s: %s\n", tr.Name, m.String())
	}
	if *dump > 0 {
		for i := 0; i < *dump && i < tr.Len(); i++ {
			fmt.Println(tr.Ops[i].String())
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, tr); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d ops to %s\n", tr.Len(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "casino-trace: %v\n", err)
	os.Exit(1)
}
