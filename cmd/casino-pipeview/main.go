// Command casino-pipeview renders a cycle-by-cycle pipeline diagram of a
// short CASINO run: for each dynamic instruction, the cycles at which it
// was dispatched into the S-IQ, passed to the IQ, issued (speculatively or
// in order), completed and committed — the quickest way to *see* cascaded
// in-order scheduling producing an out-of-order schedule.
//
// Usage:
//
//	casino-pipeview -workload libquantum -skip 2000 -n 40
package main

import (
	"flag"
	"fmt"
	"os"

	"casino/internal/core"
	"casino/internal/energy"
	"casino/internal/mem"
	"casino/internal/workload"
)

type record struct {
	dispatch, pass, issue, complete, commit int64
	fromSIQ                                 bool
	flushes                                 int
}

type tracer struct {
	skip uint64
	n    uint64
	recs map[uint64]*record
}

func (t *tracer) Event(seq uint64, ev core.PipeEvent, cycle int64) {
	if seq < t.skip || seq >= t.skip+t.n {
		return
	}
	r, ok := t.recs[seq]
	if !ok {
		r = &record{dispatch: -1, pass: -1, issue: -1, complete: -1, commit: -1}
		t.recs[seq] = r
	}
	switch ev {
	case core.EvDispatch:
		r.dispatch = cycle
	case core.EvPass:
		r.pass = cycle
	case core.EvIssueSIQ:
		r.issue = cycle
		r.fromSIQ = true
	case core.EvIssueIQ:
		r.issue = cycle
		r.fromSIQ = false
	case core.EvComplete:
		r.complete = cycle
	case core.EvCommit:
		r.commit = cycle
	case core.EvFlush:
		r.flushes++
	}
}

func main() {
	var (
		wl   = flag.String("workload", "libquantum", "workload profile")
		seed = flag.Int64("seed", 1, "generation seed")
		skip = flag.Uint64("skip", 2000, "skip this many instructions (warm-up)")
		n    = flag.Uint64("n", 32, "instructions to display")
	)
	flag.Parse()

	p, err := workload.ByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "casino-pipeview:", err)
		os.Exit(1)
	}
	tr := workload.Generate(p, int(*skip+*n)+2000, *seed)
	c := core.New(core.DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	tc := &tracer{skip: *skip, n: *n, recs: map[uint64]*record{}}
	c.SetTracer(tc)
	for !c.Done() && c.Committed() < *skip+*n+16 {
		c.Cycle()
	}

	fmt.Printf("CASINO pipeline view — %s, instructions %d..%d\n", *wl, *skip, *skip+*n-1)
	fmt.Printf("%-5s %-22s %9s %8s %9s %9s %8s %s\n",
		"seq", "op", "dispatch", "pass", "issue", "complete", "commit", "path")
	var base int64 = -1
	for seq := *skip; seq < *skip+*n; seq++ {
		r, ok := tc.recs[seq]
		if !ok {
			continue
		}
		if base < 0 {
			base = r.dispatch
		}
		op := &tr.Ops[seq]
		path := "IQ (in order)"
		if r.fromSIQ {
			path = "S-IQ (speculative)"
		}
		if r.issue < 0 {
			path = "-"
		}
		desc := fmt.Sprintf("%s %s<-[%s,%s]", op.Class, op.Dst, op.Src1, op.Src2)
		if len(desc) > 22 {
			desc = desc[:22]
		}
		fmt.Printf("%-5d %-22s %9s %8s %9s %9s %8s %s\n",
			seq, desc, rel(r.dispatch, base), rel(r.pass, base),
			rel(r.issue, base), rel(r.complete, base), rel(r.commit, base), path)
	}
	fmt.Println("\ncycles relative to the first displayed dispatch; '-' = not applicable")
	fmt.Println("out-of-order issue shows as a younger instruction's issue preceding an older one's.")
}

func rel(c, base int64) string {
	if c < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", c-base)
}
