// Command casino-pipeview renders a pipeline view of a short run of any of
// the repository's core models: for each dynamic instruction, the cycles at
// which it was fetched, dispatched, passed down the cascade (CASINO),
// issued (speculatively or in order), completed and committed — the
// quickest way to *see* cascaded in-order scheduling producing an
// out-of-order schedule, and to compare it against the InO/OoO/slice/
// SpecInO baselines.
//
// Besides the text table it can emit the same window as a Konata-loadable
// Kanata trace, a Perfetto-loadable Chrome trace-event JSON, or the compact
// binary event format:
//
//	casino-pipeview -model casino -workload libquantum -skip 2000 -n 40
//	casino-pipeview -model ooo -format kanata -o trace.kanata
//	casino-pipeview -model specino -format chrome -o trace.json
//	casino-pipeview -validate trace.json
//
// Tracing always runs cycle-by-cycle: an active sink disables event-horizon
// fast-forwarding so every stall cycle is observed rather than summarized.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"casino/internal/ptrace"
	"casino/internal/sim"
	"casino/internal/workload"
)

func main() {
	var (
		model    = flag.String("model", "casino", "core model: "+strings.Join(sim.Models(), ", "))
		wl       = flag.String("workload", "libquantum", "workload profile")
		seed     = flag.Int64("seed", 1, "generation seed")
		skip     = flag.Uint64("skip", 2000, "skip this many instructions (warm-up)")
		n        = flag.Uint64("n", 32, "instructions to display")
		format   = flag.String("format", "text", "output format: text, kanata, chrome, binary")
		out      = flag.String("o", "", "output file (default stdout)")
		validate = flag.String("validate", "", "validate a Chrome trace-event JSON file and exit")
		ws       = flag.Int("ws", 2, "SpecInO window size (specino model only)")
		so       = flag.Int("so", 1, "SpecInO sliding offset (specino model only)")
	)
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := ptrace.ValidateChrome(f); err != nil {
			fail(fmt.Errorf("%s: %w", *validate, err))
		}
		fmt.Printf("%s: valid Chrome trace-event JSON\n", *validate)
		return
	}
	if *n == 0 {
		fail(fmt.Errorf("-n must be positive"))
	}

	p, err := workload.ByName(*wl)
	if err != nil {
		fail(err)
	}
	// A little slack past the window lets the tail of the displayed
	// instructions complete and commit before the run stops.
	ops := int(*skip+*n) + 64
	tr := workload.Generate(p, ops, *seed)

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}

	label := func(seq uint64) string {
		if seq >= uint64(len(tr.Ops)) {
			return fmt.Sprintf("seq %d", seq)
		}
		op := &tr.Ops[seq]
		return fmt.Sprintf("%s %s<-[%s,%s]", op.Class, op.Dst, op.Src1, op.Src2)
	}

	collector := &ptrace.Collector{}
	var sink ptrace.Sink = collector
	switch *format {
	case "text":
	case "kanata":
		ks := ptrace.NewKanataSink(w)
		ks.Label = label
		sink = ks
	case "chrome":
		cs := ptrace.NewChromeSink(w, *model)
		cs.Label = label
		sink = cs
	case "binary":
		sink = ptrace.NewRingSink(w, ops*8)
	default:
		fail(fmt.Errorf("unknown -format %q (text, kanata, chrome, binary)", *format))
	}

	spec := sim.Spec{
		Model:    *model,
		Workload: *wl,
		Ops:      ops,
		Warmup:   0,
		Seed:     *seed,
		Trace:    tr,
		// The sink implies cycle-by-cycle simulation (no fast-forward), so
		// the trace observes every stall cycle.
		TraceSink:   sink,
		TraceWindow: ptrace.Window{MinSeq: *skip, MaxSeq: *skip + *n},
	}
	if *model == sim.ModelSpecInO {
		cfg := sim.DefaultSpecInO(*ws, *so)
		spec.SpecInOCfg = &cfg
	}
	res, err := sim.Run(spec)
	if err != nil {
		fail(err)
	}
	if err := sink.Close(); err != nil {
		fail(err)
	}
	if *format != "text" {
		return
	}

	tl := ptrace.BuildTimeline(collector.Events())
	fmt.Fprintf(w, "%s pipeline view — %s, instructions %d..%d\n", *model, *wl, *skip, *skip+*n-1)
	fmt.Fprintf(w, "%-5s %-22s %6s %9s %6s %9s %9s %8s %s\n",
		"seq", "op", "fetch", "dispatch", "pass", "issue", "complete", "commit", "path")
	var base int64 = -1
	for _, r := range tl.Recs {
		if base < 0 {
			if r.Fetch >= 0 {
				base = r.Fetch
			} else if r.Dispatch >= 0 {
				base = r.Dispatch
			}
		}
		path := "in order"
		if r.Spec {
			path = "speculative"
		}
		if r.Issue < 0 {
			path = "-"
		}
		if r.Squashes > 0 {
			path += fmt.Sprintf(" (%dx squashed)", r.Squashes)
		}
		desc := label(r.Seq)
		if len(desc) > 22 {
			desc = desc[:22]
		}
		fmt.Fprintf(w, "%-5d %-22s %6s %9s %6s %9s %9s %8s %s\n",
			r.Seq, desc, rel(r.Fetch, base), rel(r.Dispatch, base), rel(r.Pass, base),
			rel(r.Issue, base), rel(r.Complete, base), rel(r.Commit, base), path)
	}
	fmt.Fprintln(w, "\ncycles relative to the first displayed fetch; '-' = stage absent")
	fmt.Fprintln(w, "out-of-order issue shows as a younger instruction's issue preceding an older one's.")

	// Whole-run CPI stack (the displayed window is a slice of this run).
	cycles := res.Extra["cpi.cycles"]
	if cycles > 0 {
		fmt.Fprintf(w, "\nCPI stack over the whole run (%d cycles, IPC %.3f):\n", uint64(cycles), res.IPC)
		for _, b := range ptrace.BucketNames() {
			v := res.Extra["cpi."+b]
			if v == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-10s %6.1f%%\n", b, 100*v/cycles)
		}
	}
}

func rel(c, base int64) string {
	if c < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", c-base)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "casino-pipeview:", err)
	os.Exit(1)
}
