// Command casino-sim runs one core model on one workload and prints its
// timing, energy and activity statistics.
//
// Usage:
//
//	casino-sim -model casino -workload libquantum -ops 200000
//	casino-sim -model ooo -workload h264ref -ops 100000 -seed 7
//	casino-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"casino"
	"casino/internal/trace"
)

func main() {
	var (
		model   = flag.String("model", casino.ModelCASINO, "core model: one of "+fmt.Sprint(casino.Models()))
		wl      = flag.String("workload", "libquantum", "workload profile (see -list)")
		ops     = flag.Int("ops", 100000, "measured instructions")
		warmup  = flag.Int("warmup", 20000, "warm-up instructions before measurement")
		seed    = flag.Int64("seed", 1, "workload generation seed")
		width   = flag.Int("width", 2, "issue width (2, 3 or 4; CASINO/OoO scale per §VI-F)")
		traceIn = flag.String("trace", "", "run over a trace file (from casino-trace -o) instead of generating")
		list    = flag.Bool("list", false, "list models and workloads, then exit")
		verbose = flag.Bool("v", false, "print model-specific statistics")
	)
	flag.Parse()

	if *list {
		fmt.Println("models:   ", casino.Models())
		fmt.Println("workloads:", casino.Workloads())
		return
	}

	spec := casino.Spec{Model: *model, Workload: *wl, Ops: *ops, Warmup: *warmup, Seed: *seed}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-sim: %v\n", err)
			os.Exit(1)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-sim: %v\n", err)
			os.Exit(1)
		}
		spec.Trace = tr
	}
	if *width > 2 {
		switch *model {
		case casino.ModelCASINO:
			cfg := casino.WideCASINOConfig(*width)
			spec.CasinoCfg = &cfg
		case casino.ModelOoO, casino.ModelOoONoLQ:
			cfg := casino.WideOoOConfig(*width)
			spec.OoOCfg = &cfg
		default:
			fmt.Fprintf(os.Stderr, "casino-sim: -width > 2 supports casino/ooo models only\n")
			os.Exit(2)
		}
	}

	res, err := casino.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-sim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("model        %s\n", res.Model)
	fmt.Printf("workload     %s\n", res.Workload)
	fmt.Printf("instructions %d\n", res.Instructions)
	fmt.Printf("cycles       %d\n", res.Cycles)
	fmt.Printf("IPC          %.4f\n", res.IPC)
	fmt.Printf("area         %.3f mm^2\n", res.AreaMM2)
	fmt.Printf("energy       %.1f uJ total (%.1f dynamic, %.1f leakage)\n",
		res.TotalPJ/1e6, res.DynamicPJ/1e6, res.StaticPJ/1e6)
	fmt.Printf("energy/inst  %.1f pJ\n", res.EnergyPerInst)
	fmt.Printf("perf/energy  %.3f IPC per nJ/inst\n", res.PerfPerEnergy)
	if *verbose && len(res.Extra) > 0 {
		keys := make([]string, 0, len(res.Extra))
		for k := range res.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("--- model statistics ---")
		for _, k := range keys {
			fmt.Printf("%-14s %.4g\n", k, res.Extra[k])
		}
	}
}
