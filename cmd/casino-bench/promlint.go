package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"casino/internal/telemetry"
)

// runPromlint strictly validates a Prometheus text exposition file
// ("promlint" subcommand) against the in-repo grammar checker — the CI
// server job feeds casino-server's /metrics scrape through it. Reads the
// named file, or stdin for "-". Exits non-zero on any grammar violation
// or when fewer than -min-series series are present.
func runPromlint(args []string) int {
	fs := flag.NewFlagSet("promlint", flag.ExitOnError)
	minSeries := fs.Int("min-series", 0, "fail unless the exposition carries at least this many series")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: casino-bench promlint [-min-series N] <metrics.txt | ->")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	var in io.Reader = os.Stdin
	name := fs.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench promlint: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	n, err := telemetry.Lint(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench promlint: %s:\n%v\n", name, err)
		return 1
	}
	if n < *minSeries {
		fmt.Fprintf(os.Stderr, "casino-bench promlint: %s: only %d series, want >= %d\n", name, n, *minSeries)
		return 1
	}
	fmt.Printf("promlint: %s: %d series OK\n", name, n)
	return 0
}
