// Command casino-bench regenerates the paper's tables and figures as text
// tables, exports machine-readable run manifests, and diffs two manifests
// for regression gating.
//
// Usage:
//
//	casino-bench -fig 6                  # Fig. 6 over all 25 workloads
//	casino-bench -fig all -ops 100000    # the whole evaluation section
//	casino-bench -fig 8 -apps mcf,milc   # a subset of applications
//	casino-bench -fig all -json run.json # versioned run manifest
//	casino-bench -fig all -workers 4     # shard suite cells over 4 workers
//	casino-bench -fig 6 -sample          # sampled simulation (bounded error)
//	casino-bench -perf bench.json -ab    # full-vs-sampled wall clock + error
//	casino-bench compare golden/fig_all.json run.json
//	casino-bench sweep -grid grid.json -json out.json -workers 1 -progress
//	casino-bench submit -server http://localhost:8573 -grid grid.json -out merged.json -progress
//	casino-bench promlint -min-series 10 metrics.txt
//
// compare exits non-zero when any metric drifts outside its tolerance
// band, printing one line per offending metric. sweep runs a DSE grid
// locally (serial by default); submit posts the same grid to a running
// casino-server, polls to completion, and downloads the merged manifest —
// the two must produce byte-identical manifests for the same grid.
// -progress renders a live cells-done/ETA line (submit streams it from
// the server's SSE endpoint). promlint strictly checks a Prometheus text
// exposition scrape, e.g. of casino-server's /metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"casino"
	"casino/internal/manifest"
	"casino/internal/sim"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "compare":
			os.Exit(runCompare(os.Args[2:]))
		case "sweep":
			os.Exit(runSweep(os.Args[2:]))
		case "submit":
			os.Exit(runSubmit(os.Args[2:]))
		case "promlint":
			os.Exit(runPromlint(os.Args[2:]))
		}
	}

	var (
		fig        = flag.String("fig", "6", "figure id ("+strings.Join(casino.Figures(), ", ")+") or 'all'")
		ops        = flag.Int("ops", 60000, "measured instructions per run")
		warmup     = flag.Int("warmup", 15000, "warm-up instructions per run")
		seed       = flag.Int64("seed", 1, "workload generation seed")
		apps       = flag.String("apps", "", "comma-separated workload subset (default: all 25)")
		jsonOut    = flag.String("json", "", "write a versioned run manifest as JSON to this file (any fig, or 'all')")
		rawOut     = flag.String("raw", "", "write raw per-app results as JSON to this file (fig2/fig6 only)")
		perfOut    = flag.String("perf", "", "write a per-figure wall-time / cycles-per-second summary as JSON to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		cpistack   = flag.Bool("cpistack", false, "print the per-model CPI stall-attribution stack and exit")

		workers      = flag.Int("workers", 0, "shard suite cells across this many workers (0 = one per CPU)")
		sample       = flag.Bool("sample", false, "run sampled simulation with functional warming instead of full fidelity")
		samplePeriod = flag.Int("sample-period", 0, fmt.Sprintf("sampling period in ops (0 = default %d)", sim.DefaultSamplePeriod))
		sampleDetail = flag.Int("sample-detail", 0, fmt.Sprintf("detailed-window ops per period (0 = default %d)", sim.DefaultSampleDetail))
		sampleWarm   = flag.Int("sample-warm", 0, fmt.Sprintf("pipeline-warm prefix ops per window (0 = default %d)", sim.DefaultSampleWarmOps))
		abFlag       = flag.Bool("ab", false, "with -perf: run the figure suite at full and sampled fidelity, recording wall clocks and per-figure norm-IPC error")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
				return
			}
			runtime.GC() // surface live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
			}
			f.Close()
		}()
	}

	o := casino.Options{Ops: *ops, Warmup: *warmup, Seed: *seed, Workers: *workers}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}
	if *sample || *samplePeriod > 0 || *sampleDetail > 0 || *sampleWarm > 0 {
		o.Sampling = &sim.Sampling{Period: *samplePeriod, DetailOps: *sampleDetail, WarmOps: *sampleWarm}
	}
	so := sim.Options(o)

	if *cpistack {
		start := time.Now()
		t, _, err := sim.CPIStack(so)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== cpistack (%.1fs) ===\n%s\n", time.Since(start).Seconds(), t)
		return
	}

	if *jsonOut != "" {
		start := time.Now()
		m, err := sim.BuildManifest(*fig, so)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteFile(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s manifest (%d metrics, %.1fs) to %s\n",
			*fig, len(m.Metrics), time.Since(start).Seconds(), *jsonOut)
		return
	}

	if *rawOut != "" {
		suite, err := sim.RunSuiteJSON(*fig, so)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*rawOut)
		if err != nil {
			fatal(err)
		}
		if err := suite.ExportJSON(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s results to %s\n", *fig, *rawOut)
		return
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = casino.Figures()
	}
	perf := perfSummary{
		Schema: "casino-bench-perf/v2",
		Go:     runtime.Version(),
		OS:     runtime.GOOS, Arch: runtime.GOARCH,
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Workers: *workers,
		Ops: o.Ops, Warmup: o.Warmup, Seed: o.Seed,
		FastForward: os.Getenv("CASINO_NO_FASTFORWARD") == "",
	}
	if *abFlag {
		if *perfOut == "" {
			fatal(fmt.Errorf("-ab needs -perf FILE to record the A/B"))
		}
		os.Exit(runSampledAB(perf, so, *perfOut))
	}
	for _, id := range ids {
		start := time.Now()
		cyc0 := sim.SimulatedCycles()
		out, err := casino.Figure(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, wall, out)
		simCyc := sim.SimulatedCycles() - cyc0
		perf.Total.WallSeconds += wall
		perf.Total.SimCycles += simCyc
		if simCyc == 0 {
			// Figures that run no simulation (static tables like table1)
			// have no meaningful cycle rate; they count toward the total
			// wall clock but get no per-figure rate row.
			continue
		}
		e := perfEntry{Fig: id, WallSeconds: wall, SimCycles: simCyc}
		if wall > 0 {
			e.CyclesPerSecond = float64(simCyc) / wall
		}
		perf.Figures = append(perf.Figures, e)
	}
	if *perfOut != "" {
		perf.Total.Fig = "total"
		if perf.Total.WallSeconds > 0 {
			perf.Total.CyclesPerSecond = float64(perf.Total.SimCycles) / perf.Total.WallSeconds
		}
		b, err := json.MarshalIndent(perf, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*perfOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote perf summary (%d figures, %.2e cycles/s overall) to %s\n",
			len(perf.Figures), perf.Total.CyclesPerSecond, *perfOut)
	}
}

// perfEntry is one figure's simulation-throughput record.
type perfEntry struct {
	Fig             string  `json:"fig"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimCycles       uint64  `json:"sim_cycles"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
}

// perfSummary is the -perf output: the wall-clock trajectory record behind
// the checked-in bench/BENCH_*.json files (see EXPERIMENTS.md). SimCycles
// counts fast-forwarded cycles too, so cycles-per-second reflects the
// simulated clock, not host work. v2 adds the execution environment
// (GOMAXPROCS, worker/shard count) and the optional sampled-vs-full A/B.
type perfSummary struct {
	Schema      string        `json:"schema"`
	Go          string        `json:"go"`
	OS          string        `json:"os"`
	Arch        string        `json:"arch"`
	CPUs        int           `json:"cpus"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Workers     int           `json:"workers"` // 0 = one per CPU (RunCells default)
	Ops         int           `json:"ops"`
	Warmup      int           `json:"warmup"`
	Seed        int64         `json:"seed"`
	FastForward bool          `json:"fast_forward"`
	Figures     []perfEntry   `json:"figures,omitempty"`
	Total       perfEntry     `json:"total"`
	Sampling    *perfSampling `json:"sampling,omitempty"`
}

// perfABFigure is one figure's accuracy record in a sampled-vs-full A/B:
// the mean and worst absolute percentage error of the sampled arm over
// the figure's normalized-IPC metrics.
type perfABFigure struct {
	Fig         string  `json:"fig"`
	Metrics     int     `json:"norm_ipc_metrics"`
	MAPE        float64 `json:"norm_ipc_mape"`
	WorstAPE    float64 `json:"norm_ipc_worst_ape"`
	WorstMetric string  `json:"norm_ipc_worst_metric"`
}

// perfSampling is the sampled-vs-full A/B section of a v2 perf summary:
// both arms run the complete manifest-bearing figure suite in the same
// process, so the wall-clock ratio is an honest same-box speedup.
type perfSampling struct {
	Period    int `json:"period"`
	DetailOps int `json:"detail_ops"`
	WarmOps   int `json:"warm_ops"`

	FullWallSeconds    float64 `json:"full_wall_seconds"`
	SampledWallSeconds float64 `json:"sampled_wall_seconds"`
	Speedup            float64 `json:"speedup"`
	FullSimCycles      uint64  `json:"full_sim_cycles"`
	SampledSimCycles   uint64  `json:"sampled_sim_cycles"` // detailed windows only

	MAPE    float64        `json:"norm_ipc_mape"` // mean of the per-figure MAPEs
	Figures []perfABFigure `json:"figures"`
}

// runSampledAB measures the tentpole claim end to end: the figure suite at
// full fidelity, then at sampled fidelity, with per-figure normalized-IPC
// error and the same-process wall-clock ratio, written to the -perf file.
func runSampledAB(perf perfSummary, o sim.Options, outPath string) int {
	full := o
	full.Sampling = nil
	samp := o
	if samp.Sampling == nil {
		samp.Sampling = &sim.Sampling{}
	}
	sp := samp.Sampling.Normalized()

	// Resolve every trace before timing either arm, so generation cost
	// (shared by both) does not dilute the ratio.
	for _, app := range casino.Workloads() {
		if len(o.Apps) > 0 {
			break
		}
		if _, err := sim.SharedTrace(app, o.Warmup+o.Ops, o.Seed); err != nil {
			fatal(err)
		}
	}

	t0 := time.Now()
	cyc0 := sim.SimulatedCycles()
	fm, err := sim.BuildManifest("all", full)
	if err != nil {
		fatal(err)
	}
	fullWall := time.Since(t0).Seconds()
	fullCyc := sim.SimulatedCycles() - cyc0

	t1 := time.Now()
	cyc1 := sim.SimulatedCycles()
	sm, err := sim.BuildManifest("all", samp)
	if err != nil {
		fatal(err)
	}
	sampWall := time.Since(t1).Seconds()
	sampCyc := sim.SimulatedCycles() - cyc1

	type acc struct {
		sum, worst float64
		worstKey   string
		n          int
	}
	perFig := map[string]*acc{}
	for k, fv := range fm.Metrics {
		if !strings.Contains(k, "norm_ipc") || fv == 0 {
			continue
		}
		sv, ok := sm.Metrics[k]
		if !ok {
			fatal(fmt.Errorf("sampled manifest missing metric %q", k))
		}
		fig, _, _ := strings.Cut(k, ".")
		a := perFig[fig]
		if a == nil {
			a = &acc{}
			perFig[fig] = a
		}
		ape := (sv - fv) / fv
		if ape < 0 {
			ape = -ape
		}
		a.sum += ape
		a.n++
		if ape > a.worst {
			a.worst, a.worstKey = ape, k
		}
	}
	figs := make([]string, 0, len(perFig))
	for f := range perFig {
		figs = append(figs, f)
	}
	sort.Strings(figs)

	ab := &perfSampling{
		Period: sp.Period, DetailOps: sp.DetailOps, WarmOps: sp.WarmOps,
		FullWallSeconds: fullWall, SampledWallSeconds: sampWall,
		FullSimCycles: fullCyc, SampledSimCycles: sampCyc,
	}
	if sampWall > 0 {
		ab.Speedup = fullWall / sampWall
	}
	for _, f := range figs {
		a := perFig[f]
		e := perfABFigure{
			Fig: f, Metrics: a.n, MAPE: a.sum / float64(a.n),
			WorstAPE: a.worst, WorstMetric: a.worstKey,
		}
		ab.Figures = append(ab.Figures, e)
		ab.MAPE += e.MAPE
		fmt.Printf("%-8s n=%2d MAPE=%5.2f%% worst=%5.2f%% (%s)\n",
			f, e.Metrics, 100*e.MAPE, 100*e.WorstAPE, e.WorstMetric)
	}
	if len(figs) > 0 {
		ab.MAPE /= float64(len(figs))
	}
	fmt.Printf("full %.1fs, sampled %.1fs: speedup %.2fx, mean per-figure MAPE %.2f%%\n",
		fullWall, sampWall, ab.Speedup, 100*ab.MAPE)

	perf.Sampling = ab
	perf.Total = perfEntry{Fig: "total", WallSeconds: fullWall + sampWall, SimCycles: fullCyc + sampCyc}
	if perf.Total.WallSeconds > 0 {
		perf.Total.CyclesPerSecond = float64(perf.Total.SimCycles) / perf.Total.WallSeconds
	}
	b, err := json.MarshalIndent(perf, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote sampled-vs-full A/B to %s\n", outPath)
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
	os.Exit(1)
}

// tolFlag collects repeatable -mtol name=rel[:abs] per-metric overrides.
// name may end in '*' for a prefix match (longest pattern wins).
type tolFlag map[string]manifest.Tolerance

func (t tolFlag) String() string { return fmt.Sprint(map[string]manifest.Tolerance(t)) }

func (t tolFlag) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=rel[:abs], got %q", v)
	}
	relS, absS, hasAbs := strings.Cut(spec, ":")
	var tol manifest.Tolerance
	var err error
	if tol.Rel, err = strconv.ParseFloat(relS, 64); err != nil {
		return fmt.Errorf("bad rel in %q: %v", v, err)
	}
	if hasAbs {
		if tol.Abs, err = strconv.ParseFloat(absS, 64); err != nil {
			return fmt.Errorf("bad abs in %q: %v", v, err)
		}
	}
	t[name] = tol
	return nil
}

// runCompare diffs two manifests and returns the process exit code:
// 0 on match, 1 on drift, 2 on usage/IO errors.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		rel        = fs.Float64("rel", manifest.DefaultTolerance.Rel, "default relative tolerance band")
		abs        = fs.Float64("abs", manifest.DefaultTolerance.Abs, "default absolute tolerance floor")
		allowExtra = fs.Bool("allow-extra", false, "tolerate metrics present only in the candidate")
		perMetric  = tolFlag{}
	)
	fs.Var(perMetric, "mtol", "per-metric tolerance override, name=rel[:abs]; repeatable; name may end in '*'")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: casino-bench compare [flags] golden.json candidate.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	golden, err := manifest.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench compare: golden: %v\n", err)
		return 2
	}
	cand, err := manifest.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench compare: candidate: %v\n", err)
		return 2
	}

	opt := manifest.CompareOptions{
		Default:    manifest.Tolerance{Rel: *rel, Abs: *abs},
		PerMetric:  perMetric,
		AllowExtra: *allowExtra,
	}
	diffs := manifest.Compare(golden, cand, opt)
	if len(diffs) == 0 {
		fmt.Printf("compare: OK — %d metrics within tolerance (rel %g, abs %g)\n",
			len(golden.Metrics), *rel, *abs)
		return 0
	}
	fmt.Fprintf(os.Stderr, "compare: FAIL — %d difference(s) vs %s:\n", len(diffs), fs.Arg(0))
	for _, d := range diffs {
		fmt.Fprintf(os.Stderr, "  %s\n", d)
	}
	return 1
}
