// Command casino-bench regenerates the paper's tables and figures as text
// tables, exports machine-readable run manifests, and diffs two manifests
// for regression gating.
//
// Usage:
//
//	casino-bench -fig 6                  # Fig. 6 over all 25 workloads
//	casino-bench -fig all -ops 100000    # the whole evaluation section
//	casino-bench -fig 8 -apps mcf,milc   # a subset of applications
//	casino-bench -fig all -json run.json # versioned run manifest
//	casino-bench compare golden/fig_all.json run.json
//	casino-bench sweep -grid grid.json -json out.json -workers 1 -progress
//	casino-bench submit -server http://localhost:8573 -grid grid.json -out merged.json -progress
//	casino-bench promlint -min-series 10 metrics.txt
//
// compare exits non-zero when any metric drifts outside its tolerance
// band, printing one line per offending metric. sweep runs a DSE grid
// locally (serial by default); submit posts the same grid to a running
// casino-server, polls to completion, and downloads the merged manifest —
// the two must produce byte-identical manifests for the same grid.
// -progress renders a live cells-done/ETA line (submit streams it from
// the server's SSE endpoint). promlint strictly checks a Prometheus text
// exposition scrape, e.g. of casino-server's /metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"casino"
	"casino/internal/manifest"
	"casino/internal/sim"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "compare":
			os.Exit(runCompare(os.Args[2:]))
		case "sweep":
			os.Exit(runSweep(os.Args[2:]))
		case "submit":
			os.Exit(runSubmit(os.Args[2:]))
		case "promlint":
			os.Exit(runPromlint(os.Args[2:]))
		}
	}

	var (
		fig        = flag.String("fig", "6", "figure id ("+strings.Join(casino.Figures(), ", ")+") or 'all'")
		ops        = flag.Int("ops", 60000, "measured instructions per run")
		warmup     = flag.Int("warmup", 15000, "warm-up instructions per run")
		seed       = flag.Int64("seed", 1, "workload generation seed")
		apps       = flag.String("apps", "", "comma-separated workload subset (default: all 25)")
		jsonOut    = flag.String("json", "", "write a versioned run manifest as JSON to this file (any fig, or 'all')")
		rawOut     = flag.String("raw", "", "write raw per-app results as JSON to this file (fig2/fig6 only)")
		perfOut    = flag.String("perf", "", "write a per-figure wall-time / cycles-per-second summary as JSON to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		cpistack   = flag.Bool("cpistack", false, "print the per-model CPI stall-attribution stack and exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
				return
			}
			runtime.GC() // surface live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
			}
			f.Close()
		}()
	}

	o := casino.Options{Ops: *ops, Warmup: *warmup, Seed: *seed}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}
	so := sim.Options{Ops: o.Ops, Warmup: o.Warmup, Seed: o.Seed, Apps: o.Apps}

	if *cpistack {
		start := time.Now()
		t, _, err := sim.CPIStack(so)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== cpistack (%.1fs) ===\n%s\n", time.Since(start).Seconds(), t)
		return
	}

	if *jsonOut != "" {
		start := time.Now()
		m, err := sim.BuildManifest(*fig, so)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteFile(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s manifest (%d metrics, %.1fs) to %s\n",
			*fig, len(m.Metrics), time.Since(start).Seconds(), *jsonOut)
		return
	}

	if *rawOut != "" {
		suite, err := sim.RunSuiteJSON(*fig, so)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*rawOut)
		if err != nil {
			fatal(err)
		}
		if err := suite.ExportJSON(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s results to %s\n", *fig, *rawOut)
		return
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = casino.Figures()
	}
	perf := perfSummary{
		Schema: "casino-bench-perf/v1",
		Go:     runtime.Version(),
		OS:     runtime.GOOS, Arch: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Ops: o.Ops, Warmup: o.Warmup, Seed: o.Seed,
		FastForward: os.Getenv("CASINO_NO_FASTFORWARD") == "",
	}
	for _, id := range ids {
		start := time.Now()
		cyc0 := sim.SimulatedCycles()
		out, err := casino.Figure(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, wall, out)
		simCyc := sim.SimulatedCycles() - cyc0
		perf.Total.WallSeconds += wall
		perf.Total.SimCycles += simCyc
		if simCyc == 0 {
			// Figures that run no simulation (static tables like table1)
			// have no meaningful cycle rate; they count toward the total
			// wall clock but get no per-figure rate row.
			continue
		}
		e := perfEntry{Fig: id, WallSeconds: wall, SimCycles: simCyc}
		if wall > 0 {
			e.CyclesPerSecond = float64(simCyc) / wall
		}
		perf.Figures = append(perf.Figures, e)
	}
	if *perfOut != "" {
		perf.Total.Fig = "total"
		if perf.Total.WallSeconds > 0 {
			perf.Total.CyclesPerSecond = float64(perf.Total.SimCycles) / perf.Total.WallSeconds
		}
		b, err := json.MarshalIndent(perf, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*perfOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote perf summary (%d figures, %.2e cycles/s overall) to %s\n",
			len(perf.Figures), perf.Total.CyclesPerSecond, *perfOut)
	}
}

// perfEntry is one figure's simulation-throughput record.
type perfEntry struct {
	Fig             string  `json:"fig"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimCycles       uint64  `json:"sim_cycles"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
}

// perfSummary is the -perf output: the wall-clock trajectory record behind
// the checked-in bench/BENCH_*.json files (see EXPERIMENTS.md). SimCycles
// counts fast-forwarded cycles too, so cycles-per-second reflects the
// simulated clock, not host work.
type perfSummary struct {
	Schema      string      `json:"schema"`
	Go          string      `json:"go"`
	OS          string      `json:"os"`
	Arch        string      `json:"arch"`
	CPUs        int         `json:"cpus"`
	Ops         int         `json:"ops"`
	Warmup      int         `json:"warmup"`
	Seed        int64       `json:"seed"`
	FastForward bool        `json:"fast_forward"`
	Figures     []perfEntry `json:"figures"`
	Total       perfEntry   `json:"total"`
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
	os.Exit(1)
}

// tolFlag collects repeatable -mtol name=rel[:abs] per-metric overrides.
// name may end in '*' for a prefix match (longest pattern wins).
type tolFlag map[string]manifest.Tolerance

func (t tolFlag) String() string { return fmt.Sprint(map[string]manifest.Tolerance(t)) }

func (t tolFlag) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=rel[:abs], got %q", v)
	}
	relS, absS, hasAbs := strings.Cut(spec, ":")
	var tol manifest.Tolerance
	var err error
	if tol.Rel, err = strconv.ParseFloat(relS, 64); err != nil {
		return fmt.Errorf("bad rel in %q: %v", v, err)
	}
	if hasAbs {
		if tol.Abs, err = strconv.ParseFloat(absS, 64); err != nil {
			return fmt.Errorf("bad abs in %q: %v", v, err)
		}
	}
	t[name] = tol
	return nil
}

// runCompare diffs two manifests and returns the process exit code:
// 0 on match, 1 on drift, 2 on usage/IO errors.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		rel        = fs.Float64("rel", manifest.DefaultTolerance.Rel, "default relative tolerance band")
		abs        = fs.Float64("abs", manifest.DefaultTolerance.Abs, "default absolute tolerance floor")
		allowExtra = fs.Bool("allow-extra", false, "tolerate metrics present only in the candidate")
		perMetric  = tolFlag{}
	)
	fs.Var(perMetric, "mtol", "per-metric tolerance override, name=rel[:abs]; repeatable; name may end in '*'")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: casino-bench compare [flags] golden.json candidate.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	golden, err := manifest.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench compare: golden: %v\n", err)
		return 2
	}
	cand, err := manifest.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench compare: candidate: %v\n", err)
		return 2
	}

	opt := manifest.CompareOptions{
		Default:    manifest.Tolerance{Rel: *rel, Abs: *abs},
		PerMetric:  perMetric,
		AllowExtra: *allowExtra,
	}
	diffs := manifest.Compare(golden, cand, opt)
	if len(diffs) == 0 {
		fmt.Printf("compare: OK — %d metrics within tolerance (rel %g, abs %g)\n",
			len(golden.Metrics), *rel, *abs)
		return 0
	}
	fmt.Fprintf(os.Stderr, "compare: FAIL — %d difference(s) vs %s:\n", len(diffs), fs.Arg(0))
	for _, d := range diffs {
		fmt.Fprintf(os.Stderr, "  %s\n", d)
	}
	return 1
}
