// Command casino-bench regenerates the paper's tables and figures as text
// tables.
//
// Usage:
//
//	casino-bench -fig 6                  # Fig. 6 over all 25 workloads
//	casino-bench -fig all -ops 100000    # the whole evaluation section
//	casino-bench -fig 8 -apps mcf,milc   # a subset of applications
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"casino"
	"casino/internal/sim"
)

func main() {
	var (
		fig        = flag.String("fig", "6", "figure id ("+strings.Join(casino.Figures(), ", ")+") or 'all'")
		ops        = flag.Int("ops", 60000, "measured instructions per run")
		warmup     = flag.Int("warmup", 15000, "warm-up instructions per run")
		seed       = flag.Int64("seed", 1, "workload generation seed")
		apps       = flag.String("apps", "", "comma-separated workload subset (default: all 25)")
		jsonOut    = flag.String("json", "", "write raw per-app results as JSON to this file (fig2/fig6 only)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
				return
			}
			runtime.GC() // surface live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
			}
			f.Close()
		}()
	}

	o := casino.Options{Ops: *ops, Warmup: *warmup, Seed: *seed}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}

	if *jsonOut != "" {
		so := sim.Options{Ops: o.Ops, Warmup: o.Warmup, Seed: o.Seed, Apps: o.Apps}
		suite, err := sim.RunSuiteJSON(*fig, so)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
			os.Exit(1)
		}
		if err := suite.ExportJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s results to %s\n", *fig, *jsonOut)
		return
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = casino.Figures()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := casino.Figure(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, time.Since(start).Seconds(), out)
	}
}
