package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"casino/internal/dse"
	"casino/internal/manifest"
)

// runSweep executes a sweep grid locally ("sweep" subcommand): the exact
// cells a casino-server job shards, run on an in-process pool (-workers 1
// is strictly serial). It is the gating reference: the written manifest
// must be byte-identical to the service's for the same grid.
func runSweep(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		gridPath  = fs.String("grid", "", "sweep grid JSON file (required)")
		jsonOut   = fs.String("json", "", "write the merged sweep manifest to this file (required)")
		workers   = fs.Int("workers", 1, "worker pool size (1 = strictly serial, 0 = all CPUs)")
		paretoOut = fs.String("pareto", "", "also write the per-workload Pareto frontiers as JSON to this file")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: casino-bench sweep -grid grid.json -json out.json [-workers N] [-pareto pareto.json]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *gridPath == "" || *jsonOut == "" {
		fs.Usage()
		return 2
	}
	g, err := dse.ReadGridFile(*gridPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench sweep: %v\n", err)
		return 2
	}
	start := time.Now()
	m, points, err := dse.RunGrid(g, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench sweep: %v\n", err)
		return 1
	}
	if err := m.WriteFile(*jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench sweep: %v\n", err)
		return 1
	}
	fmt.Printf("sweep: %d cells (%d workers, %.1fs), wrote %s\n",
		len(m.Cells), *workers, time.Since(start).Seconds(), *jsonOut)
	if *paretoOut != "" {
		if err := writePareto(*paretoOut, dse.FrontierByWorkload(points)); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench sweep: %v\n", err)
			return 1
		}
		fmt.Printf("sweep: wrote Pareto frontiers to %s\n", *paretoOut)
	}
	return 0
}

func writePareto(path string, frontiers map[string][]dse.Point) error {
	b, err := json.MarshalIndent(map[string]interface{}{"workloads": frontiers}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// runSubmit posts a sweep grid to a running casino-server, polls the job
// to completion, and downloads the merged manifest ("submit" subcommand).
func runSubmit(args []string) int {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		server    = fs.String("server", "http://127.0.0.1:8573", "casino-server base URL")
		gridPath  = fs.String("grid", "", "sweep grid JSON file (required)")
		out       = fs.String("out", "", "write the merged sweep manifest to this file")
		paretoOut = fs.String("pareto", "", "write the per-workload Pareto frontiers to this file")
		poll      = fs.Duration("poll", 250*time.Millisecond, "progress polling interval")
		timeout   = fs.Duration("timeout", 15*time.Minute, "overall deadline")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: casino-bench submit -server URL -grid grid.json [-out merged.json] [-pareto pareto.json]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *gridPath == "" {
		fs.Usage()
		return 2
	}
	gridBytes, err := os.ReadFile(*gridPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench submit: %v\n", err)
		return 2
	}

	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(*server+"/v1/sweeps", "application/json", bytes.NewReader(gridBytes))
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench submit: %v\n", err)
		return 1
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		fmt.Fprintf(os.Stderr, "casino-bench submit: server rejected sweep (%s): %s\n", resp.Status, body)
		return 1
	}
	var sub dse.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench submit: bad submit response: %v\n", err)
		return 1
	}
	fmt.Printf("submitted sweep %s (%d cells) to %s\n", sub.ID, sub.Cells, *server)

	statusURL := *server + sub.StatusURL
	deadline := time.Now().Add(*timeout)
	var st dse.Status
	lastDone := -1
	for {
		if err := getJSON(client, statusURL, &st); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: poll: %v\n", err)
			return 1
		}
		if st.State == dse.StateDone || st.State == dse.StateFailed {
			break
		}
		if st.CellsDone != lastDone {
			lastDone = st.CellsDone
			fmt.Printf("sweep %s: %s, %d/%d cells, %d cache hits\n",
				st.ID, st.State, st.CellsDone, st.CellsTotal, st.CacheHits)
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "casino-bench submit: timed out after %v (%d/%d cells)\n",
				*timeout, st.CellsDone, st.CellsTotal)
			return 1
		}
		time.Sleep(*poll)
	}
	if st.State == dse.StateFailed {
		fmt.Fprintf(os.Stderr, "casino-bench submit: sweep %s failed:\n", st.ID)
		for _, e := range st.Errors {
			fmt.Fprintf(os.Stderr, "  %s\n", e)
		}
		return 1
	}
	fmt.Printf("sweep %s: done, %d/%d cells, %d cache hits\n", st.ID, st.CellsDone, st.CellsTotal, st.CacheHits)

	if *out != "" {
		mresp, err := client.Get(statusURL + "/manifest")
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: manifest: %v\n", err)
			return 1
		}
		m, err := manifest.Decode(mresp.Body)
		mresp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: manifest: %v\n", err)
			return 1
		}
		if err := m.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: %v\n", err)
			return 1
		}
		fmt.Printf("wrote merged manifest (%d cells, %d metrics) to %s\n", len(m.Cells), len(m.Metrics), *out)
	}
	if *paretoOut != "" {
		presp, err := client.Get(statusURL + "/pareto")
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: pareto: %v\n", err)
			return 1
		}
		pbody, _ := io.ReadAll(presp.Body)
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "casino-bench submit: pareto: %s: %s\n", presp.Status, pbody)
			return 1
		}
		if err := os.WriteFile(*paretoOut, pbody, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: %v\n", err)
			return 1
		}
		fmt.Printf("wrote Pareto frontiers to %s\n", *paretoOut)
	}
	return 0
}

func getJSON(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, body)
	}
	return json.Unmarshal(body, v)
}
