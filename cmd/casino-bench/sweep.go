package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"casino/internal/dse"
	"casino/internal/manifest"
)

// runSweep executes a sweep grid locally ("sweep" subcommand): the exact
// cells a casino-server job shards, run on an in-process pool (-workers 1
// is strictly serial). It is the gating reference: the written manifest
// must be byte-identical to the service's for the same grid.
func runSweep(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		gridPath  = fs.String("grid", "", "sweep grid JSON file (required)")
		jsonOut   = fs.String("json", "", "write the merged sweep manifest to this file (required)")
		workers   = fs.Int("workers", 1, "worker pool size (1 = strictly serial, 0 = all CPUs)")
		paretoOut = fs.String("pareto", "", "also write the per-workload Pareto frontiers as JSON to this file")
		progress  = fs.Bool("progress", false, "render a live cells-done/ETA progress line on stderr")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: casino-bench sweep -grid grid.json -json out.json [-workers N] [-pareto pareto.json] [-progress]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *gridPath == "" || *jsonOut == "" {
		fs.Usage()
		return 2
	}
	g, err := dse.ReadGridFile(*gridPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench sweep: %v\n", err)
		return 2
	}
	start := time.Now()
	var onCell func(done, total int)
	if *progress {
		onCell = func(done, total int) {
			// Observed throughput so far forecasts the remainder; the
			// pool's parallelism is baked into the elapsed/done rate.
			eta := time.Since(start).Seconds() / float64(done) * float64(total-done)
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d cells (%d%%) · ETA %s   ",
				done, total, 100*done/total, fmtETA(eta))
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	m, points, err := dse.RunGridProgress(g, *workers, onCell)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench sweep: %v\n", err)
		return 1
	}
	if err := m.WriteFile(*jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench sweep: %v\n", err)
		return 1
	}
	fmt.Printf("sweep: %d cells (%d workers, %.1fs), wrote %s\n",
		len(m.Cells), *workers, time.Since(start).Seconds(), *jsonOut)
	if *paretoOut != "" {
		if err := writePareto(*paretoOut, dse.FrontierByWorkload(points)); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench sweep: %v\n", err)
			return 1
		}
		fmt.Printf("sweep: wrote Pareto frontiers to %s\n", *paretoOut)
	}
	return 0
}

func writePareto(path string, frontiers map[string][]dse.Point) error {
	b, err := json.MarshalIndent(map[string]interface{}{"workloads": frontiers}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// runSubmit posts a sweep grid to a running casino-server, polls the job
// to completion, and downloads the merged manifest ("submit" subcommand).
func runSubmit(args []string) int {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		server    = fs.String("server", "http://127.0.0.1:8573", "casino-server base URL")
		gridPath  = fs.String("grid", "", "sweep grid JSON file (required)")
		out       = fs.String("out", "", "write the merged sweep manifest to this file")
		paretoOut = fs.String("pareto", "", "write the per-workload Pareto frontiers to this file")
		poll      = fs.Duration("poll", 250*time.Millisecond, "progress polling interval")
		timeout   = fs.Duration("timeout", 15*time.Minute, "overall deadline")
		progress  = fs.Bool("progress", false, "stream the server's SSE progress events and render a live TTY line (falls back to polling)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: casino-bench submit -server URL -grid grid.json [-out merged.json] [-pareto pareto.json] [-progress]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *gridPath == "" {
		fs.Usage()
		return 2
	}
	gridBytes, err := os.ReadFile(*gridPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench submit: %v\n", err)
		return 2
	}

	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(*server+"/v1/sweeps", "application/json", bytes.NewReader(gridBytes))
	if err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench submit: %v\n", err)
		return 1
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		fmt.Fprintf(os.Stderr, "casino-bench submit: server rejected sweep (%s): %s\n", resp.Status, body)
		return 1
	}
	var sub dse.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		fmt.Fprintf(os.Stderr, "casino-bench submit: bad submit response: %v\n", err)
		return 1
	}
	fmt.Printf("submitted sweep %s (%d cells) to %s\n", sub.ID, sub.Cells, *server)

	statusURL := *server + sub.StatusURL
	deadline := time.Now().Add(*timeout)
	var st dse.Status
	settled := false
	if *progress {
		// Prefer the server's SSE stream; on any stream error fall back
		// to the polling loop below so -progress never loses a sweep.
		final, err := streamProgress(*server, sub.StatusURL, *timeout)
		if err == nil {
			st, settled = final.Status, true
		} else {
			fmt.Fprintf(os.Stderr, "casino-bench submit: SSE stream unavailable (%v), polling instead\n", err)
		}
	}
	for lastDone := -1; !settled; {
		if err := getJSON(client, statusURL, &st); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: poll: %v\n", err)
			return 1
		}
		if st.State == dse.StateDone || st.State == dse.StateFailed {
			break
		}
		if st.CellsDone != lastDone {
			lastDone = st.CellsDone
			fmt.Printf("sweep %s: %s, %d/%d cells, %d cache hits\n",
				st.ID, st.State, st.CellsDone, st.CellsTotal, st.CacheHits)
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "casino-bench submit: timed out after %v (%d/%d cells)\n",
				*timeout, st.CellsDone, st.CellsTotal)
			return 1
		}
		time.Sleep(*poll)
	}
	if st.State == dse.StateFailed {
		fmt.Fprintf(os.Stderr, "casino-bench submit: sweep %s failed:\n", st.ID)
		for _, e := range st.Errors {
			fmt.Fprintf(os.Stderr, "  %s\n", e)
		}
		return 1
	}
	fmt.Printf("sweep %s: done, %d/%d cells, %d cache hits\n", st.ID, st.CellsDone, st.CellsTotal, st.CacheHits)

	if *out != "" {
		mresp, err := client.Get(statusURL + "/manifest")
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: manifest: %v\n", err)
			return 1
		}
		m, err := manifest.Decode(mresp.Body)
		mresp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: manifest: %v\n", err)
			return 1
		}
		if err := m.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: %v\n", err)
			return 1
		}
		fmt.Printf("wrote merged manifest (%d cells, %d metrics) to %s\n", len(m.Cells), len(m.Metrics), *out)
	}
	if *paretoOut != "" {
		presp, err := client.Get(statusURL + "/pareto")
		if err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: pareto: %v\n", err)
			return 1
		}
		pbody, _ := io.ReadAll(presp.Body)
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "casino-bench submit: pareto: %s: %s\n", presp.Status, pbody)
			return 1
		}
		if err := os.WriteFile(*paretoOut, pbody, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "casino-bench submit: %v\n", err)
			return 1
		}
		fmt.Printf("wrote Pareto frontiers to %s\n", *paretoOut)
	}
	return 0
}

// streamProgress consumes GET {base}{statusURL}/events — the server's
// Server-Sent-Events progress stream — rendering a live TTY progress
// line on stderr, and returns the terminal snapshot delivered by the
// "done" event. Any transport or protocol error aborts the stream so the
// caller can fall back to polling.
func streamProgress(base, statusURL string, timeout time.Duration) (dse.Progress, error) {
	// No per-request timeout: the stream lives as long as the sweep. The
	// overall -timeout deadline still applies through the request context.
	req, err := http.NewRequest(http.MethodGet, base+statusURL+"/events", nil)
	if err != nil {
		return dse.Progress{}, err
	}
	ctx, cancelCtx := context.WithTimeout(req.Context(), timeout)
	defer cancelCtx()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		return dse.Progress{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return dse.Progress{}, fmt.Errorf("%s: %s", resp.Status, body)
	}

	var p dse.Progress
	event := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				return dse.Progress{}, fmt.Errorf("bad SSE payload: %w", err)
			}
		case line == "": // event boundary: render the snapshot
			pct := 0
			if p.CellsTotal > 0 {
				pct = 100 * p.CellsDone / p.CellsTotal
			}
			fmt.Fprintf(os.Stderr, "\rsweep %s: %s %d/%d cells (%d%%) · %d hits · ETA %s   ",
				p.ID, p.State, p.CellsDone, p.CellsTotal, pct, p.CacheHits, fmtETA(p.ETASeconds))
			if event == "done" {
				fmt.Fprintln(os.Stderr)
				return p, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return dse.Progress{}, err
	}
	return dse.Progress{}, fmt.Errorf("stream ended without a terminal event")
}

// fmtETA renders an ETA forecast compactly; sub-cell-one forecasts (no
// estimate yet) show as a placeholder.
func fmtETA(seconds float64) string {
	if seconds <= 0 {
		return "--"
	}
	d := time.Duration(seconds * float64(time.Second))
	if d >= time.Minute {
		return d.Round(time.Second).String()
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}

func getJSON(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, body)
	}
	return json.Unmarshal(body, v)
}
