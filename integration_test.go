package casino

// Integration tests: every core model against every workload profile,
// cross-model invariants, and end-to-end determinism. These exercise the
// full stack (workload generation → front end → core → memory hierarchy →
// energy accounting) rather than any single package.

import (
	"testing"

	"casino/internal/sim"
)

func TestIntegrationAllModelsAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	const ops, warmup = 6000, 1500
	for _, model := range Models() {
		for _, wl := range Workloads() {
			res, err := Run(Spec{Model: model, Workload: wl, Ops: ops, Warmup: warmup, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", model, wl, err)
			}
			// Measurement stops on a cycle boundary: up to Width-1
			// instructions of overshoot are expected.
			if res.Instructions < ops || res.Instructions > ops+4 {
				t.Errorf("%s/%s: measured %d instructions, want ~%d", model, wl, res.Instructions, ops)
			}
			if res.IPC <= 0.01 || res.IPC > float64(4) {
				t.Errorf("%s/%s: IPC %.3f outside sane bounds", model, wl, res.IPC)
			}
			if res.TotalPJ <= 0 {
				t.Errorf("%s/%s: no energy accounted", model, wl)
			}
		}
	}
}

// The fundamental performance ordering must hold per workload for the
// memory-parallel profiles: InO <= CASINO and CASINO <= OoO-with-slack.
func TestIntegrationPerformanceOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model runs")
	}
	for _, wl := range []string{"libquantum", "milc", "cactusADM", "sphinx3", "bwaves"} {
		ipc := map[string]float64{}
		for _, model := range []string{ModelInO, ModelCASINO, ModelOoO} {
			res, err := Run(Spec{Model: model, Workload: wl, Ops: 12000, Warmup: 3000, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			ipc[model] = res.IPC
		}
		if ipc[ModelCASINO] < ipc[ModelInO]*0.98 {
			t.Errorf("%s: CASINO %.3f below InO %.3f", wl, ipc[ModelCASINO], ipc[ModelInO])
		}
		if ipc[ModelCASINO] > ipc[ModelOoO]*1.10 {
			t.Errorf("%s: CASINO %.3f implausibly above OoO %.3f", wl, ipc[ModelCASINO], ipc[ModelOoO])
		}
	}
}

// Commit counts must equal trace length for every model even on the
// violation-heavy profile (no lost or double-committed instructions
// through flush/refetch).
func TestIntegrationExactCommitUnderViolations(t *testing.T) {
	for _, model := range []string{ModelCASINO, ModelOoO, ModelOoONoLQ} {
		res, err := Run(Spec{Model: model, Workload: "h264ref", Ops: 10000, Warmup: 0, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Instructions != 10000 {
			t.Errorf("%s: committed %d of 10000", model, res.Instructions)
		}
	}
}

// Different seeds must give different (but valid) executions; the same
// seed must be bit-identical across all models.
func TestIntegrationSeeding(t *testing.T) {
	for _, model := range []string{ModelCASINO, ModelLSC, ModelSpecInO} {
		a, err := Run(Spec{Model: model, Workload: "gcc", Ops: 5000, Warmup: 1000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Spec{Model: model, Workload: "gcc", Ops: 5000, Warmup: 1000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.TotalPJ != b.TotalPJ {
			t.Errorf("%s: same seed diverged", model)
		}
		c, err := Run(Spec{Model: model, Workload: "gcc", Ops: 5000, Warmup: 1000, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles == c.Cycles && a.IPC == c.IPC {
			t.Errorf("%s: different seeds produced identical timing", model)
		}
	}
}

// The energy model's cross-core invariants, independent of workload:
// CASINO sits between InO and OoO in area; the OoO without LQ sits
// between CASINO and OoO.
func TestIntegrationAreaOrdering(t *testing.T) {
	area := map[string]float64{}
	for _, model := range []string{ModelInO, ModelCASINO, ModelOoO, ModelOoONoLQ} {
		res, err := Run(Spec{Model: model, Workload: "gcc", Ops: 2000, Warmup: 0, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		area[model] = res.AreaMM2
	}
	if !(area[ModelInO] < area[ModelCASINO] && area[ModelCASINO] < area[ModelOoONoLQ] &&
		area[ModelOoONoLQ] < area[ModelOoO]) {
		t.Errorf("area ordering wrong: %v", area)
	}
}

// Cross-check the harness against a hand-driven run: sim.Run's IPC must
// match stepping the core manually over the same trace and window.
func TestIntegrationHarnessConsistency(t *testing.T) {
	res, err := Run(Spec{Model: ModelInO, Workload: "hmmer", Ops: 5000, Warmup: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim.Run(sim.Spec{Model: sim.ModelInO, Workload: "hmmer", Ops: 5000, Warmup: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != res2.IPC || res.Cycles != res2.Cycles {
		t.Error("facade and harness disagree")
	}
}

// TSO remote-traffic configuration flows through the public API.
func TestIntegrationRemoteTraffic(t *testing.T) {
	cfg := DefaultCASINOConfig()
	cfg.Remote.Period = 64
	res, err := Run(Spec{Model: ModelCASINO, Workload: "milc", Ops: 8000, Warmup: 2000, Seed: 1, CasinoCfg: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Error("remote-traffic run failed")
	}
}
