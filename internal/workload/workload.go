// Package workload generates deterministic synthetic micro-op traces that
// stand in for the SPEC CPU2006 SimPoint regions used in the CASINO paper.
//
// A Profile composes weighted Kernels; each kernel is a small static loop
// with a characteristic dependence and memory-access structure:
//
//   - Stream: sequential array sweeps (prefetch friendly, high MLP headroom)
//   - Chase: pointer chasing with K parallel chains (serial latency chains)
//   - Gather: independent randomly-addressed loads (raw MLP)
//   - Compute: register dependence chains with a configurable ILP width
//   - Branchy: data-dependent branches with configurable entropy
//   - Alias: store→load address reuse (store forwarding / order violations)
//
// These are exactly the axes the paper's mechanisms respond to: dependence
// distance (ILP), overlappable misses (MLP), branch predictability, and
// load/store aliasing. The named profiles blend them to mimic each SPEC
// application's published character. Generation is fully deterministic for
// a given (profile, seed, length).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"casino/internal/isa"
	"casino/internal/trace"
)

// Behavior selects a kernel's dependence/memory structure.
type Behavior uint8

// Kernel behaviours.
const (
	Stream Behavior = iota
	Chase
	Gather
	Compute
	Branchy
	Alias
	Indirect
	numBehaviors
)

var behaviorNames = [numBehaviors]string{"Stream", "Chase", "Gather", "Compute", "Branchy", "Alias", "Indirect"}

func (b Behavior) String() string {
	if int(b) < len(behaviorNames) {
		return behaviorNames[b]
	}
	return fmt.Sprintf("Behavior(%d)", uint8(b))
}

// Kernel is one weighted loop nest inside a profile.
type Kernel struct {
	Behavior   Behavior
	Weight     float64 // relative share of dynamic instructions
	WorkingSet uint64  // data footprint in bytes (locality knob)
	Stride     uint64  // Stream: bytes between consecutive elements
	Chains     int     // Chase: number of independent pointer chains
	ILP        int     // Compute: independent dependence chains
	OpsPerMem  int     // ALU/FP ops attached to each memory access
	FP         bool    // use FP ops and registers for the compute portion
	TakenProb  float64 // Branchy: probability the data-dependent branch is taken
	StoreEvery int     // Stream: emit a store every N elements (0 = never)
	AliasDist  int     // Alias: ops between a store and the load that rereads it
	Targets    int     // Indirect: number of dispatch targets (default 8)
}

// Profile names a weighted blend of kernels approximating one application.
type Profile struct {
	Name    string
	Integer bool // SPECint (true) or SPECfp (false)
	Kernels []Kernel
}

// segmentOps is the number of dynamic ops generated per kernel segment
// before the generator considers switching kernels (phase length).
const segmentOps = 2048

// Generate produces a trace of at least n dynamic micro-ops for profile p.
// The same (p, n, seed) always yields an identical trace.
//
// The returned trace is freshly allocated and owned by the caller until it
// is published; once handed to a core or the sim trace cache it falls under
// the trace package's read-only contract and may be shared across
// goroutines without synchronisation.
func Generate(p *Profile, n int, seed int64) *trace.Trace {
	if n <= 0 {
		n = 1
	}
	g := &generator{
		rng:  rand.New(rand.NewSource(seed ^ int64(hashName(p.Name)))),
		ops:  make([]isa.MicroOp, 0, n+segmentOps),
		prof: p,
	}
	g.states = make([]*kernelState, len(p.Kernels))
	var totalW float64
	for i := range p.Kernels {
		g.states[i] = newKernelState(i, &p.Kernels[i], g.rng)
		totalW += p.Kernels[i].Weight
	}
	if totalW <= 0 {
		panic(fmt.Sprintf("workload: profile %q has no weighted kernels", p.Name))
	}
	g.emitPreamble()
	for len(g.ops) < n {
		ks := g.pickKernel(totalW)
		g.runSegment(ks)
	}
	t := &trace.Trace{Name: p.Name, Ops: g.ops}
	for i := range t.Ops {
		t.Ops[i].Seq = uint64(i)
	}
	return t
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

type generator struct {
	rng    *rand.Rand
	ops    []isa.MicroOp
	prof   *Profile
	states []*kernelState
}

// emitPreamble defines every architectural register once, so that every
// later source read has a producer (live-in state of the traced region).
func (g *generator) emitPreamble() {
	const preambleBase = 0x3FF000
	for i := 0; i < isa.NumIntRegs; i++ {
		g.ops = append(g.ops, isa.MicroOp{
			PC: preambleBase + uint64(i)*4, Class: isa.IntALU,
			Dst: isa.IntReg(i), Src1: isa.RegNone, Src2: isa.RegNone,
		})
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		g.ops = append(g.ops, isa.MicroOp{
			PC: preambleBase + uint64(isa.NumIntRegs+i)*4, Class: isa.FPAdd,
			Dst: isa.FPReg(i), Src1: isa.RegNone, Src2: isa.RegNone,
		})
	}
}

func (g *generator) pickKernel(totalW float64) *kernelState {
	x := g.rng.Float64() * totalW
	for i := range g.prof.Kernels {
		x -= g.prof.Kernels[i].Weight
		if x <= 0 {
			return g.states[i]
		}
	}
	return g.states[len(g.states)-1]
}

// kernelState holds the per-kernel generation state that persists across
// segments: the induction position, pointer-chain cursors and code layout.
type kernelState struct {
	k        *Kernel
	codeBase uint64 // static code region for this kernel
	dataBase uint64 // data region (disjoint between kernels)
	index    uint64 // induction variable (element count)
	chainPtr []uint64
	// Register conventions (see emit helpers):
	// r0: induction/base pointer, r1..: chain pointers, upper regs: data.
}

func newKernelState(idx int, k *Kernel, rng *rand.Rand) *kernelState {
	ks := &kernelState{
		k:        k,
		codeBase: 0x400000 + uint64(idx)<<20,
		dataBase: 1<<33 + uint64(idx)<<30,
	}
	chains := k.Chains
	if chains < 1 {
		chains = 1
	}
	ks.chainPtr = make([]uint64, chains)
	for i := range ks.chainPtr {
		ks.chainPtr[i] = ks.dataBase + uint64(rng.Int63())%maxU64(k.WorkingSet, 64)
	}
	return ks
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// wsAddr returns a pseudo-random cache-block-grained address inside the
// kernel's working set.
func (ks *kernelState) wsAddr(rng *rand.Rand) uint64 {
	ws := maxU64(ks.k.WorkingSet, 64)
	off := (uint64(rng.Int63()) % ws) &^ 7 // 8-byte aligned
	return ks.dataBase + off
}

// Register conventions shared by the emitters.
var (
	regInduction = isa.IntReg(0)
	regCond      = isa.IntReg(15)
)

func chainReg(i int) isa.Reg { return isa.IntReg(1 + i%6) } // r1..r6
func dataReg(i int) isa.Reg  { return isa.IntReg(7 + i%8) } // r7..r14
func fpDataReg(i int) isa.Reg {
	return isa.FPReg(i % isa.NumFPRegs)
}

// emit appends a micro-op. PC is codeBase + 4*slot; slot identifies the
// static instruction within the kernel so predictors see a stable layout.
func (g *generator) emit(ks *kernelState, slot int, op isa.MicroOp) {
	op.PC = ks.codeBase + uint64(slot)*4
	g.ops = append(g.ops, op)
}

// runSegment generates about segmentOps dynamic ops from kernel ks,
// always completing whole iterations so control flow stays consistent.
func (g *generator) runSegment(ks *kernelState) {
	start := len(g.ops)
	for len(g.ops)-start < segmentOps {
		last := len(g.ops)-start >= segmentOps-64 // rough: last iteration in segment
		switch ks.k.Behavior {
		case Stream:
			g.iterStream(ks, last)
		case Chase:
			g.iterChase(ks, last)
		case Gather:
			g.iterGather(ks, last)
		case Compute:
			g.iterCompute(ks, last)
		case Branchy:
			g.iterBranchy(ks, last)
		case Alias:
			g.iterAlias(ks, last)
		case Indirect:
			g.iterIndirect(ks, last)
		default:
			panic("workload: unknown behavior")
		}
	}
}

// loopBranch emits the backward loop branch closing an iteration.
// taken=false on the final iteration of a segment (fall out of the loop).
func (g *generator) loopBranch(ks *kernelState, slot int, taken bool) {
	g.emit(ks, slot, isa.MicroOp{
		Class:  isa.Branch,
		Dst:    isa.RegNone,
		Src1:   regInduction,
		Src2:   isa.RegNone,
		Taken:  taken,
		Target: ks.codeBase,
	})
}

// computeOps emits n ALU/FP ops forming short chains seeded by seedReg.
// Returns the next free slot.
func (g *generator) computeOps(ks *kernelState, slot, n int, seedReg isa.Reg, fp bool) int {
	prev := seedReg
	for j := 0; j < n; j++ {
		var dst, src2 isa.Reg
		var class isa.Class
		if fp {
			dst = fpDataReg(j)
			src2 = fpDataReg(j + 3)
			if j%3 == 2 {
				class = isa.FPMul
			} else {
				class = isa.FPAdd
			}
			// FP chains cannot consume an integer seed register directly;
			// model the int→fp move as seeding only via src2.
			if !prev.IsFP() {
				prev = fpDataReg(j + 5)
			}
		} else {
			dst = dataReg(j)
			src2 = dataReg(j + 3)
			if j%7 == 6 {
				class = isa.IntMul
			} else {
				class = isa.IntALU
			}
		}
		g.emit(ks, slot, isa.MicroOp{Class: class, Dst: dst, Src1: prev, Src2: src2})
		slot++
		if j%2 == 1 {
			prev = dst // extend the chain every other op
		}
	}
	return slot
}

// iterStream: ld A[i]; compute; (st B[i]); i++; loop.
func (g *generator) iterStream(ks *kernelState, last bool) {
	k := ks.k
	stride := k.Stride
	if stride == 0 {
		stride = 8
	}
	ws := maxU64(k.WorkingSet, stride)
	addr := ks.dataBase + (ks.index*stride)%ws
	slot := 0
	ld := dataReg(0)
	g.emit(ks, slot, isa.MicroOp{Class: isa.Load, Dst: ld, Src1: regInduction, Src2: isa.RegNone, Addr: addr, Size: 8})
	slot++
	slot = g.computeOps(ks, slot, k.OpsPerMem, ld, k.FP)
	if k.StoreEvery > 0 && ks.index%uint64(k.StoreEvery) == 0 {
		src := dataReg(k.OpsPerMem - 1)
		if k.FP {
			src = fpDataReg(k.OpsPerMem - 1)
		}
		if k.OpsPerMem == 0 {
			src = ld
		}
		st := ks.dataBase + (ws+ks.index*stride)%(2*ws)
		g.emit(ks, slot, isa.MicroOp{Class: isa.Store, Dst: isa.RegNone, Src1: src, Src2: regInduction, Addr: st, Size: 8})
		slot++
	}
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: regInduction, Src1: regInduction, Src2: isa.RegNone})
	slot++
	g.loopBranch(ks, slot, !last)
	ks.index++
}

// iterChase: for each chain, ld p = [p]; dependent compute; plus the
// independent per-node payload work real traversals carry (an accumulator
// over a sequential side array), which exposes ILP/MLP beside the serial
// chain. Loop.
func (g *generator) iterChase(ks *kernelState, last bool) {
	k := ks.k
	slot := 0
	for c := range ks.chainPtr {
		pr := chainReg(c)
		addr := ks.chainPtr[c]
		g.emit(ks, slot, isa.MicroOp{Class: isa.Load, Dst: pr, Src1: pr, Src2: isa.RegNone, Addr: addr, Size: 8})
		slot++
		// Next pointer is "read from memory": deterministic pseudo-random walk.
		ks.chainPtr[c] = ks.wsAddr(g.rng)
		slot = g.computeOps(ks, slot, k.OpsPerMem, pr, k.FP)
	}
	// Independent payload: a sequential (prefetch-friendly) load off the
	// induction variable plus accumulator updates.
	payload := dataReg(5)
	payloadAddr := ks.dataBase + (maxU64(k.WorkingSet, 64)+ks.index*8)%(2*maxU64(k.WorkingSet, 64))
	g.emit(ks, slot, isa.MicroOp{Class: isa.Load, Dst: payload, Src1: regInduction, Src2: isa.RegNone, Addr: payloadAddr, Size: 8})
	slot++
	acc := dataReg(6)
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: acc, Src1: acc, Src2: payload})
	slot++
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: regInduction, Src1: regInduction, Src2: isa.RegNone})
	slot++
	g.loopBranch(ks, slot, !last)
	ks.index++
}

// iterGather: idx = f(i); ld A[idx]; compute; loop. Loads are independent.
func (g *generator) iterGather(ks *kernelState, last bool) {
	k := ks.k
	slot := 0
	idx := dataReg(7)
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: idx, Src1: regInduction, Src2: isa.RegNone})
	slot++
	ld := dataReg(0)
	g.emit(ks, slot, isa.MicroOp{Class: isa.Load, Dst: ld, Src1: idx, Src2: isa.RegNone, Addr: ks.wsAddr(g.rng), Size: 8})
	slot++
	slot = g.computeOps(ks, slot, k.OpsPerMem, ld, k.FP)
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: regInduction, Src1: regInduction, Src2: isa.RegNone})
	slot++
	g.loopBranch(ks, slot, !last)
	ks.index++
}

// iterCompute: ILP independent chains advanced round-robin; rare loads keep
// the working set warm; loop.
func (g *generator) iterCompute(ks *kernelState, last bool) {
	k := ks.k
	ilp := k.ILP
	if ilp < 1 {
		ilp = 1
	}
	slot := 0
	n := k.OpsPerMem
	if n < ilp {
		n = ilp
	}
	for j := 0; j < n; j++ {
		c := j % ilp
		var dst, src1, src2 isa.Reg
		var class isa.Class
		if k.FP {
			dst = fpDataReg(c)
			src1 = fpDataReg(c) // serial within chain
			src2 = fpDataReg((c + ilp) % isa.NumFPRegs)
			if j%4 == 3 {
				class = isa.FPMul
			} else {
				class = isa.FPAdd
			}
		} else {
			dst = dataReg(c)
			src1 = dataReg(c)
			src2 = dataReg(c + 3)
			if j%9 == 8 {
				class = isa.IntMul
			} else {
				class = isa.IntALU
			}
		}
		g.emit(ks, slot, isa.MicroOp{Class: class, Dst: dst, Src1: src1, Src2: src2})
		slot++
	}
	// Occasional load to keep a modest footprint (hits L1/L2 mostly).
	if ks.index%8 == 0 {
		g.emit(ks, slot, isa.MicroOp{Class: isa.Load, Dst: dataReg(6), Src1: regInduction, Src2: isa.RegNone,
			Addr: ks.dataBase + (ks.index*8)%maxU64(k.WorkingSet, 64), Size: 8})
		slot++
	}
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: regInduction, Src1: regInduction, Src2: isa.RegNone})
	slot++
	g.loopBranch(ks, slot, !last)
	ks.index++
}

// iterBranchy: small blocks guarded by data-dependent branches.
func (g *generator) iterBranchy(ks *kernelState, last bool) {
	k := ks.k
	slot := 0
	// Load feeding the condition (small working set: mostly cache hits).
	cond := regCond
	g.emit(ks, slot, isa.MicroOp{Class: isa.Load, Dst: cond, Src1: regInduction, Src2: isa.RegNone,
		Addr: ks.dataBase + (uint64(g.rng.Int63())%maxU64(k.WorkingSet, 64))&^7, Size: 4})
	slot++
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: cond, Src1: cond, Src2: isa.RegNone})
	slot++
	taken := g.rng.Float64() < k.TakenProb
	blockLen := 3 + k.OpsPerMem
	target := ks.codeBase + uint64(slot+1+blockLen)*4
	g.emit(ks, slot, isa.MicroOp{Class: isa.Branch, Dst: isa.RegNone, Src1: cond, Src2: isa.RegNone, Taken: taken, Target: target})
	slot++
	if !taken {
		slot = g.computeOps(ks, slot, blockLen, cond, false)
	} else {
		slot += blockLen // skipped block: advance static layout only
	}
	slot = g.computeOps(ks, slot, 2, regInduction, false)
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: regInduction, Src1: regInduction, Src2: isa.RegNone})
	slot++
	g.loopBranch(ks, slot, !last)
	ks.index++
}

// iterAlias: v = compute; st [a] = v; filler; ld [a]. Every fourth
// iteration the store's address comes through a slow pointer lookup (AGI
// load over a large random region) while the reread load's address is
// computed cheaply from the induction variable — the two reference the
// same location through different registers, which is the memory-order-
// violation window the paper's h264ref analysis describes.
func (g *generator) iterAlias(ks *kernelState, last bool) {
	k := ks.k
	slot := 0
	ws := maxU64(k.WorkingSet, 64)
	a := ks.dataBase + (ks.index*16)%ws
	val := dataReg(0)
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: val, Src1: dataReg(1), Src2: dataReg(2)})
	slot++
	addrReg := dataReg(3)
	loadAddrReg := addrReg
	agi := ks.index%8 == 0
	// Most AGI iterations reread a disjoint address (or store an equal
	// value, which the on-commit *value* check would not flag): only a
	// quarter of them actually conflict. Keeps violations rare, as the
	// paper observes for CASINO, while still exercising the window.
	loadAddr := a
	if agi && (ks.index/8)%4 != 0 {
		loadAddr = a + 16
	}
	if agi {
		// AGI depends on a load over a large region: the store resolves
		// late, while the aliasing load below takes a fast address path.
		agiRegion := maxU64(8*ws, 4<<20)
		g.emit(ks, slot, isa.MicroOp{Class: isa.Load, Dst: addrReg, Src1: regInduction, Src2: isa.RegNone,
			Addr: ks.dataBase + ws + (uint64(g.rng.Int63())%agiRegion)&^7, Size: 8})
		slot++
		g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: addrReg, Src1: addrReg, Src2: isa.RegNone})
		slot++
		loadAddrReg = dataReg(5)
		g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: loadAddrReg, Src1: regInduction, Src2: isa.RegNone})
		slot++
	} else {
		g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: addrReg, Src1: regInduction, Src2: isa.RegNone})
		slot++
	}
	g.emit(ks, slot, isa.MicroOp{Class: isa.Store, Dst: isa.RegNone, Src1: val, Src2: addrReg, Addr: a, Size: 8})
	slot++
	dist := k.AliasDist
	if dist < 0 {
		dist = 0
	}
	slot = g.computeOps(ks, slot, dist, val, false)
	// The load rereads the stored address (forwarding / violation window).
	g.emit(ks, slot, isa.MicroOp{Class: isa.Load, Dst: dataReg(4), Src1: loadAddrReg, Src2: isa.RegNone, Addr: loadAddr, Size: 8})
	slot++
	slot = g.computeOps(ks, slot, k.OpsPerMem, dataReg(4), false)
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: regInduction, Src1: regInduction, Src2: isa.RegNone})
	slot++
	g.loopBranch(ks, slot, !last)
	ks.index++
}

// iterIndirect models interpreter/virtual-call dispatch: a load fetches
// the selector, an indirect branch jumps to one of Targets handler blocks
// (stressing the BTB — the target changes pseudo-randomly), the handler
// runs a few ALU ops and jumps to the loop tail.
func (g *generator) iterIndirect(ks *kernelState, last bool) {
	k := ks.k
	targets := k.Targets
	if targets < 2 {
		targets = 8
	}
	blockLen := 2 + k.OpsPerMem
	slot := 0
	sel := regCond
	g.emit(ks, slot, isa.MicroOp{Class: isa.Load, Dst: sel, Src1: regInduction, Src2: isa.RegNone,
		Addr: ks.dataBase + (uint64(g.rng.Int63())%maxU64(k.WorkingSet, 64))&^7, Size: 4})
	slot++
	pick := g.rng.Intn(targets)
	// Static layout: dispatch branch at slot 1; handler t occupies slots
	// [2 + t*(blockLen+1), ...) ending with a jump to the tail.
	handlerSlot := func(t int) int { return 2 + t*(blockLen+1) }
	tailSlot := handlerSlot(targets)
	g.emit(ks, slot, isa.MicroOp{Class: isa.Branch, Dst: isa.RegNone, Src1: sel, Src2: isa.RegNone,
		Taken: true, Target: ks.codeBase + uint64(handlerSlot(pick))*4})
	// Emit only the taken handler's dynamic ops at its static slots.
	hs := handlerSlot(pick)
	hs = g.computeOps(ks, hs, blockLen, sel, k.FP)
	g.emit(ks, hs, isa.MicroOp{Class: isa.Branch, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		Taken: true, Target: ks.codeBase + uint64(tailSlot)*4})
	slot = tailSlot
	g.emit(ks, slot, isa.MicroOp{Class: isa.IntALU, Dst: regInduction, Src1: regInduction, Src2: isa.RegNone})
	slot++
	g.loopBranch(ks, slot, !last)
	ks.index++
}

// --- profile registry ---

var registry = map[string]*Profile{}
var registryOrder []string

func register(p *Profile) {
	if _, dup := registry[p.Name]; dup {
		panic("workload: duplicate profile " + p.Name)
	}
	registry[p.Name] = p
	registryOrder = append(registryOrder, p.Name)
}

// ByName returns the named profile, or an error listing valid names.
func ByName(name string) (*Profile, error) {
	if p, ok := registry[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("workload: unknown profile %q (known: %v)", name, Names())
}

// Names returns all profile names, SPECint first, each group alphabetical.
func Names() []string {
	out := append([]string(nil), registryOrder...)
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := registry[out[i]], registry[out[j]]
		if pi.Integer != pj.Integer {
			return pi.Integer
		}
		return pi.Name < pj.Name
	})
	return out
}

// All returns every registered profile in Names() order.
func All() []*Profile {
	names := Names()
	out := make([]*Profile, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}
