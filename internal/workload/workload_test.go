package workload

import (
	"testing"

	"casino/internal/isa"
	"casino/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 25 {
		t.Fatalf("got %d profiles, want 25: %v", len(names), names)
	}
	var nInt, nFP int
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Integer {
			nInt++
		} else {
			nFP++
		}
		if len(p.Kernels) == 0 {
			t.Errorf("%s: no kernels", n)
		}
	}
	if nInt != 12 || nFP != 13 {
		t.Errorf("suite split = %d int / %d fp, want 12/13", nInt, nFP)
	}
	// Names() puts SPECint first.
	p0, _ := ByName(names[0])
	pLast, _ := ByName(names[len(names)-1])
	if !p0.Integer || pLast.Integer {
		t.Errorf("ordering wrong: first=%v last=%v", p0.Name, pLast.Name)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("quake"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestAllMatchesNames(t *testing.T) {
	all := All()
	names := Names()
	if len(all) != len(names) {
		t.Fatalf("All()=%d Names()=%d", len(all), len(names))
	}
	for i := range all {
		if all[i].Name != names[i] {
			t.Errorf("All[%d]=%s, Names[%d]=%s", i, all[i].Name, i, names[i])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("mcf")
	a := Generate(p, 10000, 42)
	b := Generate(p, 10000, 42)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs: %v vs %v", i, a.Ops[i], b.Ops[i])
		}
	}
	c := Generate(p, 10000, 43)
	same := true
	for i := 0; i < a.Len() && i < c.Len(); i++ {
		if a.Ops[i] != c.Ops[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidAndSized(t *testing.T) {
	for _, p := range All() {
		tr := Generate(p, 5000, 1)
		if tr.Len() < 5000 {
			t.Errorf("%s: trace too short: %d", p.Name, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid trace: %v", p.Name, err)
		}
	}
}

func TestGenerateMixSanity(t *testing.T) {
	for _, p := range All() {
		m := Generate(p, 20000, 7).Stats()
		if m.LoadFrac() < 0.02 || m.LoadFrac() > 0.6 {
			t.Errorf("%s: load fraction %v outside sane range", p.Name, m.LoadFrac())
		}
		if m.BranchFrac() < 0.01 || m.BranchFrac() > 0.4 {
			t.Errorf("%s: branch fraction %v outside sane range", p.Name, m.BranchFrac())
		}
		if p.Integer && m.FPFrac() > 0.3 {
			t.Errorf("%s: SPECint profile has %v FP", p.Name, m.FPFrac())
		}
	}
}

// Register dependences must be internally consistent: every source register
// that feeds a load's address or a compute chain has been written at some
// point (after warm-up) — i.e. traces don't reference registers that are
// never produced.
func TestGenerateRegisterLiveness(t *testing.T) {
	p, _ := ByName("cactusADM")
	tr := Generate(p, 30000, 3)
	written := make(map[isa.Reg]bool)
	var unseeded int
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if i > 5000 { // after warm-up every live source should have a producer
			for _, s := range [...]isa.Reg{op.Src1, op.Src2} {
				if s.Valid() && !written[s] {
					unseeded++
				}
			}
		}
		if op.Dst.Valid() {
			written[op.Dst] = true
		}
	}
	if unseeded > 0 {
		t.Errorf("%d source reads of never-written registers after warm-up", unseeded)
	}
}

// Chase kernels must make each chain load's address register be the
// previous chain load's destination (serial chain), while the payload
// loads stay independent of the chain.
func TestChaseDependenceStructure(t *testing.T) {
	p := &Profile{Name: "chase-test", Integer: true, Kernels: []Kernel{
		{Behavior: Chase, Weight: 1, WorkingSet: 1 * mib, Chains: 1, OpsPerMem: 0},
	}}
	tr := Generate(p, 2000, 9)
	chainR := chainReg(0)
	var chained, payloads int
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Class != isa.Load {
			continue
		}
		switch op.Dst {
		case chainR:
			if op.Src1 != chainR {
				t.Fatalf("chain load %d: Src1=%v, want self-chained %v", i, op.Src1, chainR)
			}
			chained++
		default:
			if op.Src1 != regInduction {
				t.Fatalf("payload load %d: Src1=%v, want induction register", i, op.Src1)
			}
			payloads++
		}
	}
	if chained < 10 || payloads < 10 {
		t.Fatalf("too few loads checked: chain=%d payload=%d", chained, payloads)
	}
}

// Stream loads must not depend on prior load results (address from the
// induction register only).
func TestStreamIndependence(t *testing.T) {
	p := &Profile{Name: "stream-test", Integer: true, Kernels: []Kernel{
		{Behavior: Stream, Weight: 1, WorkingSet: 1 * mib, Stride: 64, OpsPerMem: 2},
	}}
	tr := Generate(p, 2000, 9)
	loadDsts := make(map[isa.Reg]bool)
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Class == isa.Load {
			if loadDsts[op.Src1] {
				t.Fatalf("stream load %d address depends on a load result", i)
			}
			loadDsts[op.Dst] = true
		}
	}
}

// Alias kernels produce store→load pairs to the same address.
func TestAliasPairs(t *testing.T) {
	p := &Profile{Name: "alias-test", Integer: true, Kernels: []Kernel{
		{Behavior: Alias, Weight: 1, WorkingSet: 4 * kib, AliasDist: 2, OpsPerMem: 1},
	}}
	tr := Generate(p, 2000, 9)
	pairs := 0
	var lastStore *isa.MicroOp
	for i := range tr.Ops {
		op := &tr.Ops[i]
		switch op.Class {
		case isa.Store:
			lastStore = op
		case isa.Load:
			if lastStore != nil && op.Overlaps(lastStore) {
				pairs++
			}
		}
	}
	if pairs < 50 {
		t.Errorf("too few store→load alias pairs: %d", pairs)
	}
}

// Branch targets must be consistent: a taken branch's target must be the PC
// of the next op in the trace; a not-taken branch falls through.
func TestBranchTargetConsistency(t *testing.T) {
	for _, name := range []string{"gobmk", "h264ref", "libquantum"} {
		p, _ := ByName(name)
		tr := Generate(p, 20000, 5)
		bad := 0
		for i := 0; i+1 < len(tr.Ops); i++ {
			op := &tr.Ops[i]
			if op.Class != isa.Branch {
				continue
			}
			next := tr.Ops[i+1].PC
			if op.Taken && next != op.Target {
				// Kernel switches at segment boundaries legitimately jump
				// to another kernel's code; only count same-region breaks.
				if next>>20 == op.PC>>20 {
					bad++
				}
			}
		}
		if bad > 0 {
			t.Errorf("%s: %d taken branches whose successor is not the target", name, bad)
		}
	}
}

func TestGenerateTinyAndPanics(t *testing.T) {
	p, _ := ByName("gcc")
	tr := Generate(p, 0, 1)
	if tr.Len() < 1 {
		t.Error("Generate with n<=0 should still produce ops")
	}
	defer func() {
		if recover() == nil {
			t.Error("profile without weights should panic")
		}
	}()
	Generate(&Profile{Name: "empty", Kernels: []Kernel{{Behavior: Stream, Weight: 0}}}, 10, 1)
}

func BenchmarkGenerate100k(b *testing.B) {
	p, _ := ByName("mcf")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := Generate(p, 100000, 42)
		if tr.Len() < 100000 {
			b.Fatal("short trace")
		}
	}
}

var _ = trace.Trace{} // keep import when benchmarks trimmed

// Indirect kernels emit a dispatch branch whose target varies among the
// configured handler blocks, with consistent static layout.
func TestIndirectDispatchStructure(t *testing.T) {
	p := &Profile{Name: "indirect-test", Integer: true, Kernels: []Kernel{
		{Behavior: Indirect, Weight: 1, WorkingSet: 4 * kib, Targets: 4, OpsPerMem: 2},
	}}
	tr := Generate(p, 4000, 9)
	targets := map[uint64]int{}
	for i := 0; i+1 < len(tr.Ops); i++ {
		op := &tr.Ops[i]
		if op.Class != isa.Branch || !op.Taken {
			continue
		}
		if tr.Ops[i+1].PC != op.Target && tr.Ops[i+1].PC>>20 == op.PC>>20 {
			t.Fatalf("branch %d target %#x but successor at %#x", i, op.Target, tr.Ops[i+1].PC)
		}
		targets[op.Target]++
	}
	// The dispatch should exercise several distinct targets.
	if len(targets) < 4 {
		t.Errorf("only %d distinct branch targets; dispatch not polymorphic", len(targets))
	}
}

// Indirect dispatch must hurt the BTB: mispredict rates on an indirect
// profile exceed a plain loop profile.
func TestIndirectStressesBTB(t *testing.T) {
	mono := &Profile{Name: "mono-test", Integer: true, Kernels: []Kernel{
		{Behavior: Compute, Weight: 1, WorkingSet: 4 * kib, ILP: 2, OpsPerMem: 6},
	}}
	poly := &Profile{Name: "poly-test", Integer: true, Kernels: []Kernel{
		{Behavior: Indirect, Weight: 1, WorkingSet: 4 * kib, Targets: 16, OpsPerMem: 2},
	}}
	// Rough proxy: count how often consecutive dynamic encounters of the
	// same branch PC change target.
	changes := func(tr *trace.Trace) int {
		last := map[uint64]uint64{}
		n := 0
		for i := range tr.Ops {
			op := &tr.Ops[i]
			if op.Class != isa.Branch || !op.Taken {
				continue
			}
			if prev, ok := last[op.PC]; ok && prev != op.Target {
				n++
			}
			last[op.PC] = op.Target
		}
		return n
	}
	if m, p := changes(Generate(mono, 4000, 9)), changes(Generate(poly, 4000, 9)); p <= m {
		t.Errorf("indirect profile target changes (%d) not above compute profile (%d)", p, m)
	}
}
