package workload

// The 25 SPEC CPU2006 stand-in profiles (12 SPECint + 13 SPECfp) used by the
// paper's evaluation. Knob choices follow each application's published
// character: working-set size sets cache behaviour against the 32 KiB L1 /
// 1 MiB L2 of Table I; Chase chains set serial memory dependence; Compute
// ILP sets register-level parallelism; Branchy TakenProb sets branch
// entropy; Alias models h264ref-style store→load reuse.

const (
	kib = 1 << 10
	mib = 1 << 20
)

func init() {
	// --- SPECint ---
	register(&Profile{Name: "perlbench", Integer: true, Kernels: []Kernel{
		{Behavior: Branchy, Weight: 0.30, WorkingSet: 64 * kib, TakenProb: 0.62, OpsPerMem: 3},
		{Behavior: Indirect, Weight: 0.15, WorkingSet: 32 * kib, Targets: 12, OpsPerMem: 3},
		{Behavior: Compute, Weight: 0.35, WorkingSet: 32 * kib, ILP: 3, OpsPerMem: 6},
		{Behavior: Chase, Weight: 0.20, WorkingSet: 512 * kib, Chains: 2, OpsPerMem: 3},
	}})
	register(&Profile{Name: "bzip2", Integer: true, Kernels: []Kernel{
		{Behavior: Compute, Weight: 0.40, WorkingSet: 64 * kib, ILP: 3, OpsPerMem: 7},
		{Behavior: Stream, Weight: 0.35, WorkingSet: 2 * mib, Stride: 8, OpsPerMem: 4, StoreEvery: 3},
		{Behavior: Branchy, Weight: 0.25, WorkingSet: 128 * kib, TakenProb: 0.55, OpsPerMem: 3},
	}})
	register(&Profile{Name: "gcc", Integer: true, Kernels: []Kernel{
		{Behavior: Branchy, Weight: 0.30, WorkingSet: 128 * kib, TakenProb: 0.58, OpsPerMem: 3},
		{Behavior: Indirect, Weight: 0.10, WorkingSet: 64 * kib, Targets: 16, OpsPerMem: 2},
		{Behavior: Chase, Weight: 0.25, WorkingSet: 512 * kib, Chains: 2, OpsPerMem: 3},
		{Behavior: Gather, Weight: 0.10, WorkingSet: 1 * mib, OpsPerMem: 3},
		{Behavior: Compute, Weight: 0.25, WorkingSet: 64 * kib, ILP: 2, OpsPerMem: 5},
	}})
	register(&Profile{Name: "mcf", Integer: true, Kernels: []Kernel{
		{Behavior: Chase, Weight: 0.50, WorkingSet: 16 * mib, Chains: 2, OpsPerMem: 3},
		{Behavior: Gather, Weight: 0.35, WorkingSet: 8 * mib, OpsPerMem: 3},
		{Behavior: Branchy, Weight: 0.15, WorkingSet: 64 * kib, TakenProb: 0.6, OpsPerMem: 2},
	}})
	register(&Profile{Name: "gobmk", Integer: true, Kernels: []Kernel{
		{Behavior: Branchy, Weight: 0.50, WorkingSet: 64 * kib, TakenProb: 0.52, OpsPerMem: 3},
		{Behavior: Compute, Weight: 0.30, WorkingSet: 32 * kib, ILP: 2, OpsPerMem: 5},
		{Behavior: Gather, Weight: 0.20, WorkingSet: 512 * kib, OpsPerMem: 3},
	}})
	register(&Profile{Name: "hmmer", Integer: true, Kernels: []Kernel{
		{Behavior: Compute, Weight: 0.60, WorkingSet: 32 * kib, ILP: 4, OpsPerMem: 9},
		{Behavior: Stream, Weight: 0.40, WorkingSet: 256 * kib, Stride: 8, OpsPerMem: 5, StoreEvery: 4},
	}})
	register(&Profile{Name: "sjeng", Integer: true, Kernels: []Kernel{
		{Behavior: Branchy, Weight: 0.55, WorkingSet: 64 * kib, TakenProb: 0.5, OpsPerMem: 3},
		{Behavior: Compute, Weight: 0.30, WorkingSet: 32 * kib, ILP: 2, OpsPerMem: 5},
		{Behavior: Gather, Weight: 0.15, WorkingSet: 1 * mib, OpsPerMem: 2},
	}})
	register(&Profile{Name: "libquantum", Integer: true, Kernels: []Kernel{
		{Behavior: Stream, Weight: 0.80, WorkingSet: 32 * mib, Stride: 16, OpsPerMem: 3, StoreEvery: 4},
		{Behavior: Compute, Weight: 0.20, WorkingSet: 32 * kib, ILP: 2, OpsPerMem: 4},
	}})
	register(&Profile{Name: "h264ref", Integer: true, Kernels: []Kernel{
		{Behavior: Alias, Weight: 0.45, WorkingSet: 128 * kib, AliasDist: 4, OpsPerMem: 3},
		{Behavior: Stream, Weight: 0.30, WorkingSet: 512 * kib, Stride: 8, OpsPerMem: 4, StoreEvery: 2},
		{Behavior: Branchy, Weight: 0.25, WorkingSet: 64 * kib, TakenProb: 0.72, OpsPerMem: 3},
	}})
	register(&Profile{Name: "omnetpp", Integer: true, Kernels: []Kernel{
		{Behavior: Chase, Weight: 0.40, WorkingSet: 4 * mib, Chains: 2, OpsPerMem: 3},
		{Behavior: Gather, Weight: 0.15, WorkingSet: 2 * mib, OpsPerMem: 3},
		{Behavior: Branchy, Weight: 0.25, WorkingSet: 128 * kib, TakenProb: 0.6, OpsPerMem: 3},
		{Behavior: Compute, Weight: 0.20, WorkingSet: 64 * kib, ILP: 2, OpsPerMem: 4},
	}})
	register(&Profile{Name: "astar", Integer: true, Kernels: []Kernel{
		{Behavior: Chase, Weight: 0.45, WorkingSet: 2 * mib, Chains: 1, OpsPerMem: 3},
		{Behavior: Branchy, Weight: 0.35, WorkingSet: 64 * kib, TakenProb: 0.56, OpsPerMem: 3},
		{Behavior: Compute, Weight: 0.20, WorkingSet: 32 * kib, ILP: 2, OpsPerMem: 4},
	}})
	register(&Profile{Name: "xalancbmk", Integer: true, Kernels: []Kernel{
		{Behavior: Branchy, Weight: 0.40, WorkingSet: 256 * kib, TakenProb: 0.6, OpsPerMem: 3},
		{Behavior: Chase, Weight: 0.30, WorkingSet: 1 * mib, Chains: 2, OpsPerMem: 2},
		{Behavior: Gather, Weight: 0.05, WorkingSet: 2 * mib, OpsPerMem: 3},
		{Behavior: Compute, Weight: 0.25, WorkingSet: 64 * kib, ILP: 3, OpsPerMem: 5},
	}})

	// --- SPECfp ---
	register(&Profile{Name: "bwaves", Integer: false, Kernels: []Kernel{
		{Behavior: Stream, Weight: 0.70, WorkingSet: 16 * mib, Stride: 8, OpsPerMem: 6, StoreEvery: 4, FP: true},
		{Behavior: Compute, Weight: 0.30, WorkingSet: 64 * kib, ILP: 4, OpsPerMem: 8, FP: true},
	}})
	register(&Profile{Name: "gamess", Integer: false, Kernels: []Kernel{
		{Behavior: Compute, Weight: 0.70, WorkingSet: 64 * kib, ILP: 3, OpsPerMem: 10, FP: true},
		{Behavior: Stream, Weight: 0.30, WorkingSet: 128 * kib, Stride: 8, OpsPerMem: 5, FP: true},
	}})
	register(&Profile{Name: "milc", Integer: false, Kernels: []Kernel{
		{Behavior: Stream, Weight: 0.45, WorkingSet: 8 * mib, Stride: 8, OpsPerMem: 4, StoreEvery: 4, FP: true},
		{Behavior: Gather, Weight: 0.35, WorkingSet: 2 * mib, OpsPerMem: 4, FP: true},
		{Behavior: Compute, Weight: 0.20, WorkingSet: 64 * kib, ILP: 3, OpsPerMem: 6, FP: true},
	}})
	register(&Profile{Name: "zeusmp", Integer: false, Kernels: []Kernel{
		{Behavior: Stream, Weight: 0.60, WorkingSet: 8 * mib, Stride: 8, OpsPerMem: 6, StoreEvery: 6, FP: true},
		{Behavior: Compute, Weight: 0.40, WorkingSet: 64 * kib, ILP: 3, OpsPerMem: 7, FP: true},
	}})
	register(&Profile{Name: "gromacs", Integer: false, Kernels: []Kernel{
		{Behavior: Compute, Weight: 0.60, WorkingSet: 64 * kib, ILP: 4, OpsPerMem: 8, FP: true},
		{Behavior: Stream, Weight: 0.30, WorkingSet: 256 * kib, Stride: 8, OpsPerMem: 5, FP: true},
		{Behavior: Gather, Weight: 0.10, WorkingSet: 512 * kib, OpsPerMem: 3, FP: true},
	}})
	register(&Profile{Name: "cactusADM", Integer: false, Kernels: []Kernel{
		{Behavior: Stream, Weight: 0.55, WorkingSet: 16 * mib, Stride: 8, OpsPerMem: 8, StoreEvery: 8, FP: true},
		{Behavior: Gather, Weight: 0.30, WorkingSet: 8 * mib, OpsPerMem: 6, FP: true},
		{Behavior: Compute, Weight: 0.15, WorkingSet: 64 * kib, ILP: 2, OpsPerMem: 6, FP: true},
	}})
	register(&Profile{Name: "leslie3d", Integer: false, Kernels: []Kernel{
		{Behavior: Stream, Weight: 0.65, WorkingSet: 8 * mib, Stride: 8, OpsPerMem: 5, StoreEvery: 5, FP: true},
		{Behavior: Compute, Weight: 0.35, WorkingSet: 64 * kib, ILP: 3, OpsPerMem: 6, FP: true},
	}})
	register(&Profile{Name: "namd", Integer: false, Kernels: []Kernel{
		{Behavior: Compute, Weight: 0.75, WorkingSet: 64 * kib, ILP: 5, OpsPerMem: 12, FP: true},
		{Behavior: Stream, Weight: 0.25, WorkingSet: 64 * kib, Stride: 8, OpsPerMem: 6, FP: true},
	}})
	register(&Profile{Name: "dealII", Integer: false, Kernels: []Kernel{
		{Behavior: Compute, Weight: 0.40, WorkingSet: 64 * kib, ILP: 3, OpsPerMem: 6, FP: true},
		{Behavior: Chase, Weight: 0.25, WorkingSet: 512 * kib, Chains: 2, OpsPerMem: 3},
		{Behavior: Gather, Weight: 0.05, WorkingSet: 1 * mib, OpsPerMem: 4, FP: true},
		{Behavior: Stream, Weight: 0.30, WorkingSet: 1 * mib, Stride: 8, OpsPerMem: 4, FP: true},
	}})
	register(&Profile{Name: "soplex", Integer: false, Kernels: []Kernel{
		{Behavior: Gather, Weight: 0.40, WorkingSet: 2 * mib, OpsPerMem: 3, FP: true},
		{Behavior: Stream, Weight: 0.35, WorkingSet: 2 * mib, Stride: 8, OpsPerMem: 3, FP: true},
		{Behavior: Branchy, Weight: 0.25, WorkingSet: 128 * kib, TakenProb: 0.56, OpsPerMem: 2},
	}})
	register(&Profile{Name: "povray", Integer: false, Kernels: []Kernel{
		{Behavior: Branchy, Weight: 0.40, WorkingSet: 64 * kib, TakenProb: 0.6, OpsPerMem: 3},
		{Behavior: Compute, Weight: 0.45, WorkingSet: 32 * kib, ILP: 3, OpsPerMem: 7, FP: true},
		{Behavior: Gather, Weight: 0.15, WorkingSet: 256 * kib, OpsPerMem: 3, FP: true},
	}})
	register(&Profile{Name: "lbm", Integer: false, Kernels: []Kernel{
		{Behavior: Stream, Weight: 0.80, WorkingSet: 32 * mib, Stride: 8, OpsPerMem: 5, StoreEvery: 2, FP: true},
		{Behavior: Compute, Weight: 0.20, WorkingSet: 64 * kib, ILP: 3, OpsPerMem: 6, FP: true},
	}})
	register(&Profile{Name: "sphinx3", Integer: false, Kernels: []Kernel{
		{Behavior: Gather, Weight: 0.40, WorkingSet: 1 * mib, OpsPerMem: 4, FP: true},
		{Behavior: Stream, Weight: 0.35, WorkingSet: 2 * mib, Stride: 8, OpsPerMem: 4, FP: true},
		{Behavior: Compute, Weight: 0.25, WorkingSet: 64 * kib, ILP: 3, OpsPerMem: 6, FP: true},
	}})
}
