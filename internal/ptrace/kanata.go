package ptrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kanata stage names, one per lifecycle kind. The Konata viewer renders
// each S record as a colored stage segment, so the spec-vs-in-order issue
// distinction survives the encoding ("Ss" vs "Is").
const (
	kanataHeader = "Kanata\t0004"

	stageFetch     = "F"
	stageDispatch  = "Dp"
	stagePass      = "Iq"
	stageIssue     = "Is"
	stageIssueSpec = "Ss"
	stageComplete  = "Cp"
)

var kindToStage = map[Kind]string{
	KindFetch:     stageFetch,
	KindDispatch:  stageDispatch,
	KindPass:      stagePass,
	KindIssue:     stageIssue,
	KindIssueSpec: stageIssueSpec,
	KindComplete:  stageComplete,
}

var stageToKind = map[string]Kind{
	stageFetch:     KindFetch,
	stageDispatch:  KindDispatch,
	stagePass:      KindPass,
	stageIssue:     KindIssue,
	stageIssueSpec: KindIssueSpec,
	stageComplete:  KindComplete,
}

// KanataSink buffers the event stream and, at Close, encodes it as a
// Kanata 0004 log loadable in the Konata pipeline viewer. Buffering is
// required because Kanata time only moves forward while complete events
// are emitted at issue time with future cycles; Close stable-sorts by
// cycle before encoding. A squashed-and-refetched instruction gets a fresh
// Kanata id per execution (ids must be unique; the sequence number rides
// in the I record's instruction-id field).
type KanataSink struct {
	w io.Writer
	// Label, when non-nil, supplies the disassembly text shown by Konata
	// for each sequence number.
	Label func(seq uint64) string
	evs   []Event
}

// NewKanataSink creates a sink writing to w at Close.
func NewKanataSink(w io.Writer) *KanataSink { return &KanataSink{w: w} }

// Emit buffers e.
func (s *KanataSink) Emit(e Event) { s.evs = append(s.evs, e) }

// Close encodes the buffered stream and flushes it to the writer.
func (s *KanataSink) Close() error { return EncodeKanata(s.w, s.evs, s.Label) }

// EncodeKanata writes evs as a Kanata 0004 log. label may be nil.
func EncodeKanata(w io.Writer, evs []Event, label func(seq uint64) string) error {
	sorted := make([]Event, len(evs))
	copy(sorted, evs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cycle < sorted[j].Cycle })

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, kanataHeader)

	ids := make(map[uint64]int)       // seq -> active Kanata id
	openStage := make(map[int]string) // id -> currently open stage
	nextID := 0
	started := false
	var cur int64

	endStage := func(id int) {
		if st, ok := openStage[id]; ok {
			fmt.Fprintf(bw, "E\t%d\t0\t%s\n", id, st)
			delete(openStage, id)
		}
	}
	for _, e := range sorted {
		switch e.Kind {
		case KindStall, KindFlush:
			continue // cycle-scoped; no per-instruction lane in Kanata
		}
		if !started {
			fmt.Fprintf(bw, "C=\t%d\n", e.Cycle)
			cur = e.Cycle
			started = true
		} else if e.Cycle > cur {
			fmt.Fprintf(bw, "C\t%d\n", e.Cycle-cur)
			cur = e.Cycle
		}
		id, live := ids[e.Seq]
		switch e.Kind {
		case KindFetch, KindDispatch:
			if !live {
				id = nextID
				nextID++
				ids[e.Seq] = id
				fmt.Fprintf(bw, "I\t%d\t%d\t0\n", id, e.Seq)
				if label != nil {
					fmt.Fprintf(bw, "L\t%d\t0\t%s\n", id, sanitizeKanata(label(e.Seq)))
				}
			}
			endStage(id)
			st := kindToStage[e.Kind]
			fmt.Fprintf(bw, "S\t%d\t0\t%s\n", id, st)
			openStage[id] = st
		case KindPass, KindIssue, KindIssueSpec, KindComplete:
			if !live {
				continue // truncated window: never saw this instruction start
			}
			endStage(id)
			st := kindToStage[e.Kind]
			fmt.Fprintf(bw, "S\t%d\t0\t%s\n", id, st)
			openStage[id] = st
		case KindCommit:
			if !live {
				continue
			}
			endStage(id)
			fmt.Fprintf(bw, "R\t%d\t%d\t0\n", id, id)
			delete(ids, e.Seq)
		case KindSquash:
			if !live {
				continue
			}
			endStage(id)
			fmt.Fprintf(bw, "R\t%d\t%d\t1\n", id, id)
			delete(ids, e.Seq)
		}
	}
	return bw.Flush()
}

// sanitizeKanata strips tab/newline from a label so it cannot break the
// tab-separated record format.
func sanitizeKanata(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\t' || r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, s)
}

// ParseKanata decodes a Kanata 0004 log produced by EncodeKanata back into
// an event stream (lifecycle events only; stall events have no Kanata
// representation). It is the codec round-trip counterpart used by tests
// and accepts only the record types the encoder emits.
func ParseKanata(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("ptrace: empty Kanata log")
	}
	if got := sc.Text(); got != kanataHeader {
		return nil, fmt.Errorf("ptrace: bad Kanata header %q", got)
	}
	var (
		evs    []Event
		cur    int64
		seqOf  = make(map[int]uint64)
		lineNo = 1
	)
	atoi := func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		f := strings.Split(line, "\t")
		bad := func(why string) error {
			return fmt.Errorf("ptrace: Kanata line %d (%q): %s", lineNo, line, why)
		}
		switch f[0] {
		case "C=":
			if len(f) < 2 {
				return nil, bad("missing cycle")
			}
			c, err := atoi(f[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			cur = c
		case "C":
			if len(f) < 2 {
				return nil, bad("missing delta")
			}
			d, err := atoi(f[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			cur += d
		case "I":
			if len(f) < 3 {
				return nil, bad("short I record")
			}
			id, err1 := atoi(f[1])
			seq, err2 := atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, bad("bad I ids")
			}
			seqOf[int(id)] = uint64(seq)
		case "S":
			if len(f) < 4 {
				return nil, bad("short S record")
			}
			id, err := atoi(f[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			seq, ok := seqOf[int(id)]
			if !ok {
				return nil, bad("S for undeclared id")
			}
			kind, ok := stageToKind[f[3]]
			if !ok {
				return nil, bad("unknown stage " + f[3])
			}
			evs = append(evs, Event{Cycle: cur, Seq: seq, Kind: kind})
		case "R":
			if len(f) < 4 {
				return nil, bad("short R record")
			}
			id, err1 := atoi(f[1])
			typ, err2 := atoi(f[3])
			if err1 != nil || err2 != nil {
				return nil, bad("bad R fields")
			}
			seq, ok := seqOf[int(id)]
			if !ok {
				return nil, bad("R for undeclared id")
			}
			kind := KindCommit
			if typ == 1 {
				kind = KindSquash
			}
			evs = append(evs, Event{Cycle: cur, Seq: seq, Kind: kind})
		case "E", "L", "W":
			// Stage ends are implied by the next S/R; labels and
			// dependencies carry no timing.
		default:
			return nil, bad("unknown record type")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}
