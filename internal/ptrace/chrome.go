package ptrace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event track (tid) layout. One process per run, one thread
// per pipeline stage, so Perfetto renders a swim-lane per stage with one
// slice per instruction, plus an instant-event lane for stall samples.
const (
	chromeTidStall   = 0
	chromeTidFetch   = 1
	chromeTidQueue   = 2
	chromeTidExec    = 3
	chromeTidCommit  = 4
	chromeInstCat    = "inst"
	chromeStallCat   = "stall"
	chromeRecordName = "rec"
)

// chromeEvent is one trace-event record (the subset of the Chrome
// trace-event format the sink emits: complete slices "X", instants "i"
// and metadata "M").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// ChromeSink buffers the event stream and, at Close, writes a Chrome
// trace-event JSON file loadable in Perfetto (or chrome://tracing). Each
// instruction becomes one slice per pipeline stage across the per-stage
// thread tracks; each stall cycle becomes an instant event on the stall
// track. The full per-instruction record rides in the queue slice's args,
// making the encoding lossless for ParseChromeTimeline.
type ChromeSink struct {
	w io.Writer
	// Model names the traced core in the process metadata.
	Model string
	// Label, when non-nil, supplies slice names per sequence number.
	Label func(seq uint64) string
	evs   []Event
}

// NewChromeSink creates a sink writing to w at Close.
func NewChromeSink(w io.Writer, model string) *ChromeSink {
	return &ChromeSink{w: w, Model: model}
}

// Emit buffers e.
func (s *ChromeSink) Emit(e Event) { s.evs = append(s.evs, e) }

// Close encodes the buffered stream as trace-event JSON.
func (s *ChromeSink) Close() error { return EncodeChrome(s.w, s.evs, s.Model, s.Label) }

// EncodeChrome writes evs as Chrome trace-event JSON. label may be nil.
func EncodeChrome(w io.Writer, evs []Event, model string, label func(seq uint64) string) error {
	tl := BuildTimeline(evs)
	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"model": model, "unit": "cycles"},
	}
	meta := func(tid int, name string) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "casino " + model},
	})
	meta(chromeTidStall, "stalls")
	meta(chromeTidFetch, "fetch")
	meta(chromeTidQueue, "queue")
	meta(chromeTidExec, "execute")
	meta(chromeTidCommit, "commit")

	slice := func(tid int, name string, from, to int64, args map[string]any) {
		dur := to - from
		if dur < 0 {
			dur = 0
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: chromeInstCat, Ph: "X",
			Ts: float64(from), Dur: float64(dur), Pid: 1, Tid: tid, Args: args,
		})
	}
	for _, r := range tl.Recs {
		name := fmt.Sprintf("op %d", r.Seq)
		if label != nil {
			name = label(r.Seq)
		}
		if r.Fetch >= 0 {
			end := r.Dispatch
			if end < 0 {
				end = r.Fetch
			}
			slice(chromeTidFetch, name, r.Fetch, end, nil)
		}
		if r.Dispatch >= 0 {
			end := r.Issue
			if end < 0 {
				end = r.Dispatch
			}
			// The queue slice carries the whole record, so the JSON is a
			// lossless timeline encoding (see ParseChromeTimeline).
			slice(chromeTidQueue, chromeRecordName, r.Dispatch, end, map[string]any{
				"seq": r.Seq, "fetch": r.Fetch, "dispatch": r.Dispatch,
				"pass": r.Pass, "issue": r.Issue, "complete": r.Complete,
				"commit": r.Commit, "spec": r.Spec, "squashes": r.Squashes,
				"label": name,
			})
		}
		if r.Issue >= 0 && r.Complete >= 0 {
			slice(chromeTidExec, name, r.Issue, r.Complete, nil)
		}
		if r.Complete >= 0 && r.Commit >= 0 {
			slice(chromeTidCommit, name, r.Complete, r.Commit, nil)
		}
	}
	for _, e := range evs {
		if e.Kind != KindStall {
			continue
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "stall." + e.Stall.String(), Cat: chromeStallCat, Ph: "i",
			Ts: float64(e.Cycle), Pid: 1, Tid: chromeTidStall, S: "t",
			Args: map[string]any{"bucket": e.Stall.String(), "seq": e.Seq},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ParseChromeTimeline decodes trace-event JSON produced by EncodeChrome
// back into the per-instruction timeline (the round-trip counterpart used
// by the codec tests).
func ParseChromeTimeline(r io.Reader) (*Timeline, error) {
	var in chromeTrace
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("ptrace: chrome trace: %w", err)
	}
	tl := &Timeline{}
	num := func(args map[string]any, key string) (int64, error) {
		v, ok := args[key]
		if !ok {
			return 0, fmt.Errorf("ptrace: chrome record missing %q", key)
		}
		f, ok := v.(float64)
		if !ok {
			return 0, fmt.Errorf("ptrace: chrome record field %q is %T, want number", key, v)
		}
		return int64(f), nil
	}
	for _, e := range in.TraceEvents {
		switch {
		case e.Ph == "X" && e.Cat == chromeInstCat && e.Tid == chromeTidQueue:
			var rec InstRecord
			var err error
			seq, err := num(e.Args, "seq")
			if err != nil {
				return nil, err
			}
			rec.Seq = uint64(seq)
			for _, f := range []struct {
				dst *int64
				key string
			}{
				{&rec.Fetch, "fetch"}, {&rec.Dispatch, "dispatch"},
				{&rec.Pass, "pass"}, {&rec.Issue, "issue"},
				{&rec.Complete, "complete"}, {&rec.Commit, "commit"},
			} {
				if *f.dst, err = num(e.Args, f.key); err != nil {
					return nil, err
				}
			}
			if spec, ok := e.Args["spec"].(bool); ok {
				rec.Spec = spec
			}
			sq, err := num(e.Args, "squashes")
			if err != nil {
				return nil, err
			}
			rec.Squashes = int(sq)
			tl.Recs = append(tl.Recs, rec)
		case e.Ph == "i" && e.Cat == chromeStallCat:
			name, _ := e.Args["bucket"].(string)
			found := false
			for b := Bucket(0); b < NumBuckets; b++ {
				if b.String() == name {
					tl.Stalls[b]++
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("ptrace: chrome trace: unknown stall bucket %q", name)
			}
		}
	}
	return tl, nil
}

// ValidateChrome checks that r holds structurally valid Chrome trace-event
// JSON: a traceEvents array whose members each carry the fields their
// phase requires (name/ph/pid/tid for all, non-negative ts and dur for
// complete slices). This is the schema gate CI runs on generated traces;
// it validates the format contract Perfetto relies on, not our encoder's
// private conventions.
func ValidateChrome(r io.Reader) error {
	var doc map[string]any
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("ptrace: chrome trace: invalid JSON: %w", err)
	}
	rawEvents, ok := doc["traceEvents"]
	if !ok {
		return fmt.Errorf("ptrace: chrome trace: missing traceEvents")
	}
	list, ok := rawEvents.([]any)
	if !ok {
		return fmt.Errorf("ptrace: chrome trace: traceEvents is %T, want array", rawEvents)
	}
	for i, raw := range list {
		ev, ok := raw.(map[string]any)
		if !ok {
			return fmt.Errorf("ptrace: traceEvents[%d] is %T, want object", i, raw)
		}
		bad := func(why string) error {
			return fmt.Errorf("ptrace: traceEvents[%d]: %s", i, why)
		}
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return bad("missing ph")
		}
		if name, ok := ev["name"].(string); !ok || name == "" {
			return bad("missing name")
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := ev[key].(float64); !ok {
				return bad("missing " + key)
			}
		}
		switch ph {
		case "X":
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return bad("complete slice needs non-negative ts")
			}
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				return bad("complete slice has negative dur")
			}
		case "i":
			if _, ok := ev["ts"].(float64); !ok {
				return bad("instant event needs ts")
			}
		case "M":
			// Metadata: name/pid/tid already checked.
		default:
			return bad("unsupported phase " + ph)
		}
	}
	return nil
}
