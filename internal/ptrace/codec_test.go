package ptrace

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// goldenWindow builds the deterministic 50-op event stream the codec
// round-trip tests run against: a CASINO-shaped pipeline with cascaded
// passes, mixed spec/in-order issue, one squash-and-reexecute instruction
// and a sprinkle of stall samples. Events are emitted in lifecycle order
// per instruction (complete at issue time with a future cycle), matching
// the cores' emission discipline.
func goldenWindow() []Event {
	var evs []Event
	add := func(cycle int64, seq uint64, k Kind) {
		evs = append(evs, Event{Cycle: cycle, Seq: seq, Kind: k})
	}
	for i := int64(0); i < 50; i++ {
		seq := uint64(i)
		add(i, seq, KindFetch)
		add(i+2, seq, KindDispatch)
		if i%3 == 0 {
			add(i+3, seq, KindPass)
		}
		issue := i + 4
		if i == 25 {
			// First execution issues speculatively, gets squashed the
			// cycle its (already reported) completion lands, then
			// re-executes in order.
			add(issue, seq, KindIssueSpec)
			add(issue+1, seq, KindComplete)
			add(issue+1, seq, KindSquash)
			add(issue+1, seq, KindFlush)
			add(issue+2, seq, KindFetch)
			add(issue+3, seq, KindDispatch)
			add(issue+4, seq, KindIssue)
			add(issue+5, seq, KindComplete)
			add(issue+6, seq, KindCommit)
			continue
		}
		if i%2 == 0 {
			add(issue, seq, KindIssueSpec)
		} else {
			add(issue, seq, KindIssue)
		}
		lat := 1 + i%4
		add(issue+lat, seq, KindComplete)
		add(issue+lat+2, seq, KindCommit)
	}
	evs = append(evs,
		Event{Cycle: 4, Seq: 1, Kind: KindStall, Stall: BucketSrc},
		Event{Cycle: 5, Seq: 2, Kind: KindStall, Stall: BucketSrc},
		Event{Cycle: 6, Seq: 2, Kind: KindStall, Stall: BucketDCache},
		Event{Cycle: 29, Seq: 25, Kind: KindStall, Stall: BucketReplay},
		Event{Cycle: 30, Seq: 25, Kind: KindStall, Stall: BucketFU},
	)
	return evs
}

func TestKanataRoundTrip(t *testing.T) {
	evs := goldenWindow()
	want := BuildTimeline(evs)

	var buf bytes.Buffer
	label := func(seq uint64) string { return fmt.Sprintf("op_%d r%d", seq, seq%32) }
	if err := EncodeKanata(&buf, evs, label); err != nil {
		t.Fatalf("EncodeKanata: %v", err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, kanataHeader+"\n") {
		t.Fatalf("missing Kanata header, got %q...", text[:20])
	}
	// One I record per execution: 50 ops + 1 re-execution of seq 25, each
	// with a unique id.
	ids := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "I\t") {
			id := strings.Split(line, "\t")[1]
			if ids[id] {
				t.Fatalf("duplicate Kanata id %s", id)
			}
			ids[id] = true
		}
	}
	if len(ids) != 51 {
		t.Fatalf("got %d I records, want 51 (50 ops + 1 re-execution)", len(ids))
	}

	decoded, err := ParseKanata(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseKanata: %v", err)
	}
	got := BuildTimeline(decoded)
	// Kanata has no stall/flush lane, so only the per-instruction records
	// must survive the round trip.
	if !reflect.DeepEqual(want.Recs, got.Recs) {
		for i := range want.Recs {
			if i < len(got.Recs) && !reflect.DeepEqual(want.Recs[i], got.Recs[i]) {
				t.Errorf("rec %d:\n want %+v\n got  %+v", i, want.Recs[i], got.Recs[i])
			}
		}
		t.Fatalf("timeline mismatch after Kanata round trip (%d vs %d recs)",
			len(want.Recs), len(got.Recs))
	}
}

func TestKanataRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"O3PipeView\n",
		kanataHeader + "\nS\t0\t0\tF\n", // stage for undeclared id
		kanataHeader + "\nX\t1\t2\t3\n", // unknown record type
		kanataHeader + "\nI\t0\n",       // short I record
		kanataHeader + "\nI\t0\t5\t0\nS\t0\t0\tQQ\n", // unknown stage
	} {
		if _, err := ParseKanata(strings.NewReader(in)); err == nil {
			t.Errorf("ParseKanata(%q) accepted garbage", in)
		}
	}
}

func TestChromeRoundTrip(t *testing.T) {
	evs := goldenWindow()
	want := BuildTimeline(evs)

	var buf bytes.Buffer
	if err := EncodeChrome(&buf, evs, "casino", nil); err != nil {
		t.Fatalf("EncodeChrome: %v", err)
	}
	raw := buf.Bytes()
	if err := ValidateChrome(bytes.NewReader(raw)); err != nil {
		t.Fatalf("generated trace fails schema validation: %v", err)
	}
	got, err := ParseChromeTimeline(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ParseChromeTimeline: %v", err)
	}
	if !reflect.DeepEqual(want.Recs, got.Recs) {
		t.Fatalf("record mismatch after Chrome round trip:\n want %+v\n got  %+v",
			want.Recs, got.Recs)
	}
	if want.Stalls != got.Stalls {
		t.Fatalf("stall counts mismatch: want %v, got %v", want.Stalls, got.Stalls)
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"not json",
		`{"foo": 1}`,
		`{"traceEvents": 3}`,
		`{"traceEvents": [{"ph":"X"}]}`, // missing name/pid/tid/ts
		`{"traceEvents": [{"ph":"Z","name":"x","pid":1,"tid":1}]}`,         // unsupported phase
		`{"traceEvents": [{"ph":"X","name":"x","pid":1,"tid":1,"ts":-5}]}`, // negative ts
		`{"traceEvents": [{"ph":"i","name":"x","pid":1,"tid":1}]}`,         // instant without ts
	} {
		if err := ValidateChrome(strings.NewReader(in)); err == nil {
			t.Errorf("ValidateChrome(%q) accepted garbage", in)
		}
	}
}
