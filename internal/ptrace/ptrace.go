// Package ptrace is the unified pipeline-event bus shared by all five core
// models. A core with an installed Recorder emits one canonical Event per
// per-instruction lifecycle milestone (fetch, dispatch, S-IQ pass, issue —
// speculative or in order — complete, commit, squash, flush) plus one
// KindStall event per non-commit cycle carrying the cycle's CPI-stack
// bucket. Sinks (Collector, KanataSink, ChromeSink, RingSink) consume the
// stream; the CPI accumulator attributes every simulated cycle to exactly
// one bucket, with Check enforcing that the buckets sum to total cycles.
//
// The bus is zero-overhead when off: cores guard every emission with a
// single nil check on their recorder pointer and the CPI accumulator is a
// fixed-size array bump, so the disabled path allocates nothing and stays
// within benchstat noise of a build without tracing.
package ptrace

import (
	"fmt"

	"casino/internal/stats"
)

// Kind identifies a pipeline lifecycle milestone (or a per-cycle stall
// sample) of one dynamic instruction.
type Kind uint8

// Event kinds. Models without a given stage simply never emit it: only
// CASINO emits KindPass (the S-IQ cascade) and KindIssueSpec marks any
// out-of-program-order issue engine (CASINO's S-IQs, OoO's scheduler,
// slice bypass queues, SpecInO's sliding window).
const (
	KindFetch     Kind = iota // entered the front-end dispatch buffer
	KindDispatch              // entered the first scheduling structure
	KindPass                  // passed to the next cascaded queue (CASINO)
	KindIssue                 // issued by an in-order engine
	KindIssueSpec             // issued by a speculative/out-of-order engine
	KindComplete              // result available (reported at issue time)
	KindCommit                // retired architecturally
	KindSquash                // discarded by a flush before committing
	KindFlush                 // a flush fired; Seq is the victim sequence
	KindStall                 // one non-commit cycle; Stall holds the bucket
	NumKinds
)

var kindNames = [NumKinds]string{
	"fetch", "dispatch", "pass", "issue", "issueSpec",
	"complete", "commit", "squash", "flush", "stall",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Bucket is one CPI-stack component. Every simulated cycle is attributed
// to exactly one bucket: BucketBase when at least one instruction
// committed, otherwise the reason the oldest in-flight instruction (the
// commit bottleneck) could not retire. Buckets a model's microarchitecture
// cannot produce simply stay zero.
type Bucket uint8

// CPI-stack buckets.
const (
	BucketBase      Bucket = iota // at least one instruction committed
	BucketSrc                     // oldest instruction waits on a source operand
	BucketExec                    // oldest instruction executing (non-memory latency)
	BucketFU                      // ready at the head but no FU / issue slot
	BucketIQFull                  // pass/dispatch blocked: downstream queue full
	BucketPReg                    // no free physical register
	BucketProdCount               // ProducerCount saturated (conditional renaming)
	BucketROBSQ                   // ROB/SQ/SB full (retirement back-pressure)
	BucketDataBuf                 // data buffer full (conditional renaming IQ issue)
	BucketReplay                  // flush/replay recovery (OSCA or value-check)
	BucketICache                  // pipeline empty: fetch stalled (I-cache, redirect)
	BucketDCache                  // oldest instruction waits on memory access
	BucketDrain                   // trace exhausted, pipeline drained
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"base", "src", "exec", "fu", "iqFull", "preg", "prodCount",
	"robSQ", "dataBuf", "replay", "icache", "dcache", "drain",
}

func (b Bucket) String() string {
	if int(b) < len(bucketNames) {
		return bucketNames[b]
	}
	return fmt.Sprintf("bucket(%d)", uint8(b))
}

// BucketNames returns the manifest-stable bucket names in bucket order.
func BucketNames() []string {
	out := make([]string, NumBuckets)
	for i := range out {
		out[i] = bucketNames[i]
	}
	return out
}

// Event is one pipeline observation. Stall is meaningful only for
// KindStall events; lifecycle events leave it at BucketBase. Complete
// events are emitted at issue time and may carry a future Cycle; sinks
// that need monotonic time (Kanata) sort before encoding.
type Event struct {
	Cycle int64
	Seq   uint64
	Kind  Kind
	Stall Bucket
}

// Sink consumes pipeline events. Emit must not retain the event past the
// call (it is passed by value, so this is automatic); Close flushes any
// buffered encoding.
type Sink interface {
	Emit(Event)
	Close() error
}

// SinkFunc adapts a plain function to a Sink with a no-op Close.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(e Event) { f(e) }

// Close is a no-op.
func (f SinkFunc) Close() error { return nil }

// Collector is a Sink that appends every event to a slice (tests, the
// text pipeline viewer).
type Collector struct {
	evs []Event
}

// Emit appends e.
func (c *Collector) Emit(e Event) { c.evs = append(c.evs, e) }

// Close is a no-op.
func (c *Collector) Close() error { return nil }

// Events returns the collected events in emission order.
func (c *Collector) Events() []Event { return c.evs }

// Window restricts which instructions a Recorder forwards, so a long run
// can trace a short region without drowning the sink. The zero value
// passes everything. MaxSeq of 0 means unbounded; SampleEvery of 0 or 1
// means every instruction, k > 1 keeps only sequence numbers divisible by
// k (coarse sampling for whole-run overviews). Per-cycle KindStall and
// KindFlush events always pass: they are cycle-scoped, not
// instruction-scoped.
type Window struct {
	MinSeq      uint64
	MaxSeq      uint64
	SampleEvery uint64
}

func (w Window) contains(seq uint64) bool {
	if seq < w.MinSeq {
		return false
	}
	if w.MaxSeq != 0 && seq >= w.MaxSeq {
		return false
	}
	if w.SampleEvery > 1 && seq%w.SampleEvery != 0 {
		return false
	}
	return true
}

// Recorder is the per-run event tap a core holds. It applies the window
// filter and forwards to the sink. Cores keep a nil *Recorder when tracing
// is off and guard every emission with that nil check, which is the entire
// disabled-path cost.
type Recorder struct {
	sink    Sink
	win     Window
	emitted uint64
}

// NewRecorder wires a sink behind a window filter.
func NewRecorder(sink Sink, win Window) *Recorder {
	return &Recorder{sink: sink, win: win}
}

// Emit forwards e to the sink if e's instruction is inside the window
// (stall and flush events always pass — see Window).
func (r *Recorder) Emit(e Event) {
	if e.Kind != KindStall && e.Kind != KindFlush && !r.win.contains(e.Seq) {
		return
	}
	r.emitted++
	r.sink.Emit(e)
}

// Emitted returns the number of events forwarded to the sink.
func (r *Recorder) Emitted() uint64 { return r.emitted }

// CPI accumulates the per-cycle stall attribution: Counts[b] cycles were
// attributed to bucket b. The accumulator is embedded by value in each
// core (no allocation, no indirection on the hot path).
type CPI struct {
	Counts [NumBuckets]uint64
}

// Add attributes one cycle to b.
func (s *CPI) Add(b Bucket) { s.Counts[b]++ }

// AddN attributes n cycles to b.
func (s *CPI) AddN(b Bucket, n uint64) { s.Counts[b] += n }

// Count returns the cycles attributed to b.
func (s *CPI) Count(b Bucket) uint64 { return s.Counts[b] }

// Total returns the attributed cycle count across all buckets.
func (s *CPI) Total() uint64 {
	var t uint64
	for _, n := range s.Counts {
		t += n
	}
	return t
}

// ScaleDelta multiplies the growth since before by n — the fast-forward
// replay pattern: the caller snapshots the accumulator, runs one embedded
// real cycle, then scales that cycle's attribution across the n remaining
// skipped cycles (they are provably identical).
func (s *CPI) ScaleDelta(before *CPI, n uint64) {
	for i := range s.Counts {
		s.Counts[i] += (s.Counts[i] - before.Counts[i]) * n
	}
}

// Fraction returns bucket b's share of all attributed cycles.
func (s *CPI) Fraction(b Bucket) float64 {
	return stats.Ratio(float64(s.Counts[b]), float64(s.Total()))
}

// Check enforces the CPI-stack invariant: the buckets must sum exactly to
// the simulated cycle count (every cycle attributed to exactly one
// bucket). A mismatch means a model classified a cycle twice or missed
// one.
func (s *CPI) Check(cycles uint64) error {
	if t := s.Total(); t != cycles {
		return fmt.Errorf("ptrace: CPI stack sums to %d cycles, simulated %d", t, cycles)
	}
	return nil
}

// Publish snapshots the stack into the registry as cpi.<bucket> counters
// plus the cpi.cycles total, so the stack flows into run manifests and
// golden gating alongside the legacy stall.* diagnostics.
func (s *CPI) Publish(r *stats.Registry) {
	r.Counter("cpi.cycles", s.Total())
	for b := Bucket(0); b < NumBuckets; b++ {
		r.Counter("cpi."+bucketNames[b], s.Counts[b])
	}
}
