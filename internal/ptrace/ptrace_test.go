package ptrace

import (
	"bytes"
	"reflect"
	"testing"

	"casino/internal/stats"
)

func TestCPIAddTotalCheck(t *testing.T) {
	var c CPI
	c.Add(BucketBase)
	c.Add(BucketBase)
	c.AddN(BucketSrc, 3)
	c.Add(BucketDCache)
	if got := c.Count(BucketBase); got != 2 {
		t.Fatalf("Count(base) = %d, want 2", got)
	}
	if got := c.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if err := c.Check(6); err != nil {
		t.Fatalf("Check(6): %v", err)
	}
	if err := c.Check(7); err == nil {
		t.Fatal("Check(7) should fail on a 6-cycle stack")
	}
	if got, want := c.Fraction(BucketSrc), 0.5; got != want {
		t.Fatalf("Fraction(src) = %v, want %v", got, want)
	}
}

func TestCPIScaleDelta(t *testing.T) {
	var c CPI
	c.AddN(BucketBase, 10)
	c.AddN(BucketSrc, 4)
	before := c
	// One embedded "real" cycle attributed to src, then scale by n=5: the
	// fast-forward contract says the stack ends up as if 6 src cycles ran.
	c.Add(BucketSrc)
	c.ScaleDelta(&before, 5)
	if got := c.Count(BucketSrc); got != 10 {
		t.Fatalf("Count(src) = %d, want 10", got)
	}
	if got := c.Count(BucketBase); got != 10 {
		t.Fatalf("Count(base) = %d, want 10 (untouched)", got)
	}
	if err := c.Check(20); err != nil {
		t.Fatalf("Check after ScaleDelta: %v", err)
	}
}

func TestCPIPublish(t *testing.T) {
	var c CPI
	c.AddN(BucketBase, 7)
	c.AddN(BucketFU, 2)
	r := stats.NewRegistry()
	c.Publish(r)
	flat := r.Flatten()
	if got := flat["cpi.cycles"]; got != 9 {
		t.Fatalf("cpi.cycles = %v, want 9", got)
	}
	if got := flat["cpi.base"]; got != 7 {
		t.Fatalf("cpi.base = %v, want 7", got)
	}
	if got := flat["cpi.fu"]; got != 2 {
		t.Fatalf("cpi.fu = %v, want 2", got)
	}
	for _, name := range BucketNames() {
		if _, ok := flat["cpi."+name]; !ok {
			t.Fatalf("bucket %q missing from published stack", name)
		}
	}
}

func TestRecorderWindow(t *testing.T) {
	var col Collector
	r := NewRecorder(&col, Window{MinSeq: 10, MaxSeq: 20})
	for seq := uint64(0); seq < 30; seq++ {
		r.Emit(Event{Cycle: int64(seq), Seq: seq, Kind: KindDispatch})
	}
	// Stall and flush events bypass the instruction window.
	r.Emit(Event{Cycle: 99, Seq: 500, Kind: KindStall, Stall: BucketSrc})
	r.Emit(Event{Cycle: 99, Seq: 500, Kind: KindFlush})
	evs := col.Events()
	if len(evs) != 12 {
		t.Fatalf("forwarded %d events, want 12 (10 windowed + stall + flush)", len(evs))
	}
	for _, e := range evs[:10] {
		if e.Seq < 10 || e.Seq >= 20 {
			t.Fatalf("seq %d escaped window [10,20)", e.Seq)
		}
	}
	if r.Emitted() != 12 {
		t.Fatalf("Emitted = %d, want 12", r.Emitted())
	}
}

func TestRecorderSampling(t *testing.T) {
	var col Collector
	r := NewRecorder(&col, Window{SampleEvery: 4})
	for seq := uint64(0); seq < 16; seq++ {
		r.Emit(Event{Seq: seq, Kind: KindCommit})
	}
	evs := col.Events()
	if len(evs) != 4 {
		t.Fatalf("forwarded %d events, want 4", len(evs))
	}
	for _, e := range evs {
		if e.Seq%4 != 0 {
			t.Fatalf("seq %d escaped sampling filter", e.Seq)
		}
	}
}

func TestRingSinkWrap(t *testing.T) {
	s := NewRingSink(nil, 4)
	for i := 0; i < 10; i++ {
		s.Emit(Event{Cycle: int64(i), Seq: uint64(i), Kind: KindCommit})
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("retained[%d].Seq = %d, want %d (oldest-first tail)", i, e.Seq, want)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := []Event{
		{Cycle: 0, Seq: 1, Kind: KindFetch},
		{Cycle: 3, Seq: 1, Kind: KindIssueSpec},
		{Cycle: 5, Seq: 2, Kind: KindStall, Stall: BucketDCache},
		{Cycle: -1, Seq: 1 << 40, Kind: KindSquash},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, in); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	if want := 16 + len(in)*ringRecSize; buf.Len() != want {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), want)
	}
	out, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []Event{{Seq: 1, Kind: KindFetch}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[0] ^= 0xff // clobber magic
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	b[0] ^= 0xff
	b[16+16] = byte(NumKinds) + 3 // clobber kind
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("corrupt kind accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(b[:20])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestRingSinkCloseWritesBinary(t *testing.T) {
	var buf bytes.Buffer
	s := NewRingSink(&buf, 8)
	s.Emit(Event{Cycle: 1, Seq: 1, Kind: KindFetch})
	s.Emit(Event{Cycle: 2, Seq: 1, Kind: KindCommit})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	out, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if len(out) != 2 || out[1].Kind != KindCommit {
		t.Fatalf("unexpected decoded trace: %+v", out)
	}
}

func TestBuildTimelineSquashReset(t *testing.T) {
	evs := []Event{
		{Cycle: 0, Seq: 5, Kind: KindFetch},
		{Cycle: 1, Seq: 5, Kind: KindDispatch},
		{Cycle: 2, Seq: 5, Kind: KindIssueSpec},
		{Cycle: 6, Seq: 5, Kind: KindComplete},
		{Cycle: 3, Seq: 5, Kind: KindSquash}, // flushed before completing
		{Cycle: 3, Seq: 5, Kind: KindFlush},
		{Cycle: 4, Seq: 5, Kind: KindDispatch},
		{Cycle: 5, Seq: 5, Kind: KindIssue},
		{Cycle: 7, Seq: 5, Kind: KindComplete},
		{Cycle: 8, Seq: 5, Kind: KindCommit},
		{Cycle: 2, Seq: 0, Kind: KindStall, Stall: BucketReplay},
	}
	tl := BuildTimeline(evs)
	if len(tl.Recs) != 1 {
		t.Fatalf("got %d records, want 1", len(tl.Recs))
	}
	r := tl.Recs[0]
	if r.Squashes != 1 || r.Spec || r.Issue != 5 || r.Commit != 8 || r.Fetch != 0 {
		t.Fatalf("unexpected record after squash+reexec: %+v", r)
	}
	if tl.Flushes != 1 || tl.Stalls[BucketReplay] != 1 {
		t.Fatalf("flush/stall aggregation wrong: flushes=%d stalls=%v", tl.Flushes, tl.Stalls)
	}
}
