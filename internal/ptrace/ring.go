package ptrace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format: an 8-byte magic/version header, an 8-byte record
// count, then fixed 20-byte little-endian records (cycle int64, seq
// uint64, kind uint8, stall uint8, 2 bytes padding). Fixed-size records
// keep the encoder allocation-free per event and make the file seekable.
const (
	ringMagic   = "CSNTRC01"
	ringRecSize = 20
)

// RingSink keeps the last Cap events in a fixed circular buffer, so a
// long run can trace unbounded streams with bounded memory and dump the
// tail at Close. After the initial fill it never allocates.
type RingSink struct {
	w       io.Writer
	buf     []Event
	start   int
	n       int
	dropped uint64
}

// NewRingSink creates a ring of the given capacity that writes the
// surviving window to w (binary format) at Close. cap must be positive.
func NewRingSink(w io.Writer, capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1
	}
	return &RingSink{w: w, buf: make([]Event, capacity)}
}

// Emit stores e, evicting the oldest event once full.
func (s *RingSink) Emit(e Event) {
	if s.n < len(s.buf) {
		s.buf[(s.start+s.n)%len(s.buf)] = e
		s.n++
		return
	}
	s.buf[s.start] = e
	s.start = (s.start + 1) % len(s.buf)
	s.dropped++
}

// Dropped returns how many events were evicted to make room.
func (s *RingSink) Dropped() uint64 { return s.dropped }

// Events returns the retained window, oldest first.
func (s *RingSink) Events() []Event {
	out := make([]Event, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	return out
}

// Close writes the retained window in the binary trace format.
func (s *RingSink) Close() error {
	if s.w == nil {
		return nil
	}
	return WriteBinary(s.w, s.Events())
}

// WriteBinary encodes evs in the compact binary trace format.
func WriteBinary(w io.Writer, evs []Event) error {
	var hdr [16]byte
	copy(hdr[:8], ringMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(evs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rec [ringRecSize]byte
	for _, e := range evs {
		binary.LittleEndian.PutUint64(rec[0:], uint64(e.Cycle))
		binary.LittleEndian.PutUint64(rec[8:], e.Seq)
		rec[16] = byte(e.Kind)
		rec[17] = byte(e.Stall)
		rec[18], rec[19] = 0, 0
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadBinary decodes a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) ([]Event, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("ptrace: binary trace header: %w", err)
	}
	if string(hdr[:8]) != ringMagic {
		return nil, fmt.Errorf("ptrace: bad binary trace magic %q", hdr[:8])
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	const maxRecords = 1 << 32 // sanity cap against corrupt counts
	if count > maxRecords {
		return nil, fmt.Errorf("ptrace: implausible binary trace record count %d", count)
	}
	evs := make([]Event, 0, count)
	var rec [ringRecSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, fmt.Errorf("ptrace: binary trace record %d: %w", i, err)
		}
		e := Event{
			Cycle: int64(binary.LittleEndian.Uint64(rec[0:])),
			Seq:   binary.LittleEndian.Uint64(rec[8:]),
			Kind:  Kind(rec[16]),
			Stall: Bucket(rec[17]),
		}
		if e.Kind >= NumKinds {
			return nil, fmt.Errorf("ptrace: binary trace record %d: bad kind %d", i, rec[16])
		}
		if e.Stall >= NumBuckets {
			return nil, fmt.Errorf("ptrace: binary trace record %d: bad bucket %d", i, rec[17])
		}
		evs = append(evs, e)
	}
	return evs, nil
}
