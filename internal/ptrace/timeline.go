package ptrace

import "sort"

// InstRecord is one dynamic instruction's reconstructed stage timing.
// Cycles are -1 when the stage was not observed (outside the window, or
// the model has no such stage). Spec records whether the last observed
// issue came from a speculative engine; Squashes counts how many times the
// instruction was flushed and refetched before committing.
type InstRecord struct {
	Seq      uint64
	Fetch    int64
	Dispatch int64
	Pass     int64
	Issue    int64
	Complete int64
	Commit   int64
	Spec     bool
	Squashes int
}

// Timeline is the per-instruction view of an event stream plus the
// aggregated per-bucket stall-cycle counts.
type Timeline struct {
	Recs    []InstRecord
	Stalls  [NumBuckets]uint64
	Flushes uint64
}

// BuildTimeline folds an event stream (in emission order) into per-
// instruction records. A squash resets the instruction's post-dispatch
// stages: the refetched execution re-reports them.
func BuildTimeline(evs []Event) *Timeline {
	tl := &Timeline{}
	bySeq := make(map[uint64]*InstRecord)
	rec := func(seq uint64) *InstRecord {
		r, ok := bySeq[seq]
		if !ok {
			r = &InstRecord{Seq: seq, Fetch: -1, Dispatch: -1, Pass: -1, Issue: -1, Complete: -1, Commit: -1}
			bySeq[seq] = r
		}
		return r
	}
	for _, e := range evs {
		switch e.Kind {
		case KindFetch:
			rec(e.Seq).Fetch = e.Cycle
		case KindDispatch:
			rec(e.Seq).Dispatch = e.Cycle
		case KindPass:
			rec(e.Seq).Pass = e.Cycle
		case KindIssue:
			r := rec(e.Seq)
			r.Issue, r.Spec = e.Cycle, false
		case KindIssueSpec:
			r := rec(e.Seq)
			r.Issue, r.Spec = e.Cycle, true
		case KindComplete:
			rec(e.Seq).Complete = e.Cycle
		case KindCommit:
			rec(e.Seq).Commit = e.Cycle
		case KindSquash:
			r := rec(e.Seq)
			r.Squashes++
			r.Dispatch, r.Pass, r.Issue, r.Complete = -1, -1, -1, -1
			r.Spec = false
		case KindFlush:
			tl.Flushes++
		case KindStall:
			tl.Stalls[e.Stall]++
		}
	}
	tl.Recs = make([]InstRecord, 0, len(bySeq))
	for _, r := range bySeq {
		tl.Recs = append(tl.Recs, *r)
	}
	sort.Slice(tl.Recs, func(i, j int) bool { return tl.Recs[i].Seq < tl.Recs[j].Seq })
	return tl
}
