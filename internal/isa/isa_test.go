package isa

import (
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		IntALU: "IntALU", IntMul: "IntMul", IntDiv: "IntDiv",
		FPAdd: "FPAdd", FPMul: "FPMul", FPDiv: "FPDiv",
		Load: "Load", Store: "Store", Branch: "Branch",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); got != "Class(200)" {
		t.Errorf("unknown class String() = %q", got)
	}
}

func TestClassPredicates(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		wantMem := c == Load || c == Store
		if got := c.IsMem(); got != wantMem {
			t.Errorf("%s.IsMem() = %v, want %v", c, got, wantMem)
		}
		wantFP := c == FPAdd || c == FPMul || c == FPDiv
		if got := c.IsFP(); got != wantFP {
			t.Errorf("%s.IsFP() = %v, want %v", c, got, wantFP)
		}
	}
}

func TestClassFU(t *testing.T) {
	cases := map[Class]FUKind{
		IntALU: FUIntALU, IntMul: FUIntALU, IntDiv: FUIntALU, Branch: FUIntALU,
		FPAdd: FUFP, FPMul: FUFP, FPDiv: FUFP,
		Load: FUAGU, Store: FUAGU,
	}
	for c, want := range cases {
		if got := c.FU(); got != want {
			t.Errorf("%s.FU() = %s, want %s", c, got, want)
		}
	}
}

func TestExecLatencyPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if l := c.ExecLatency(); l < 1 {
			t.Errorf("%s.ExecLatency() = %d, want >= 1", c, l)
		}
	}
	if IntALU.ExecLatency() != 1 {
		t.Errorf("IntALU latency = %d, want 1", IntALU.ExecLatency())
	}
	if !IntMul.Pipelined() || IntDiv.Pipelined() || FPDiv.Pipelined() {
		t.Error("pipelining predicate wrong: divides must be unpipelined, multiplies pipelined")
	}
}

func TestRegConstructorsAndRanges(t *testing.T) {
	r := IntReg(3)
	if r.IsFP() || !r.Valid() || r.String() != "r3" {
		t.Errorf("IntReg(3) = %v (fp=%v valid=%v)", r, r.IsFP(), r.Valid())
	}
	f := FPReg(5)
	if !f.IsFP() || !f.Valid() || f.String() != "f5" {
		t.Errorf("FPReg(5) = %v (fp=%v valid=%v)", f, f.IsFP(), f.Valid())
	}
	if RegNone.Valid() || RegNone.IsFP() || RegNone.String() != "-" {
		t.Errorf("RegNone misbehaves: valid=%v fp=%v s=%q", RegNone.Valid(), RegNone.IsFP(), RegNone.String())
	}
}

func TestRegConstructorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("IntReg(-1)", func() { IntReg(-1) })
	mustPanic("IntReg(max)", func() { IntReg(NumIntRegs) })
	mustPanic("FPReg(max)", func() { FPReg(NumFPRegs) })
}

func TestOverlaps(t *testing.T) {
	ld := func(addr uint64, size uint8) *MicroOp {
		return &MicroOp{Class: Load, Addr: addr, Size: size}
	}
	st := func(addr uint64, size uint8) *MicroOp {
		return &MicroOp{Class: Store, Addr: addr, Size: size}
	}
	tests := []struct {
		name string
		a, b *MicroOp
		want bool
	}{
		{"same", ld(100, 4), st(100, 4), true},
		{"contained", ld(100, 8), st(102, 2), true},
		{"tail overlap", ld(100, 4), st(103, 4), true},
		{"adjacent", ld(100, 4), st(104, 4), false},
		{"disjoint", ld(100, 4), st(200, 4), false},
		{"non-mem a", &MicroOp{Class: IntALU}, st(0, 4), false},
		{"non-mem b", ld(0, 4), &MicroOp{Class: Branch}, false},
	}
	for _, tc := range tests {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%s: Overlaps = %v, want %v", tc.name, got, tc.want)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("%s (sym): Overlaps = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestOverlapsSymmetricProperty(t *testing.T) {
	f := func(a1, a2 uint16, s1, s2 uint8) bool {
		u := &MicroOp{Class: Load, Addr: uint64(a1), Size: s1%16 + 1}
		v := &MicroOp{Class: Store, Addr: uint64(a2), Size: s2%16 + 1}
		return u.Overlaps(v) == v.Overlaps(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMicroOpString(t *testing.T) {
	u := &MicroOp{Seq: 7, PC: 0x400, Class: Load, Dst: IntReg(1), Src1: IntReg(2), Src2: RegNone, Addr: 0x1000, Size: 8}
	s := u.String()
	for _, frag := range []string{"#7", "Load", "r1", "r2", "0x1000"} {
		if !contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	b := &MicroOp{Class: Branch, Dst: RegNone, Src1: RegNone, Src2: RegNone, Taken: true, Target: 0x500}
	if !contains(b.String(), "taken=true") {
		t.Errorf("branch String() = %q missing outcome", b.String())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
