// Package isa defines the micro-operation model consumed by every core in
// this repository: operation classes, architectural registers, functional
// unit kinds and latencies.
//
// The simulator is trace driven and timing only: a MicroOp carries its
// dynamic register and memory dependences but no data values. This is the
// abstraction level at which the CASINO paper's mechanisms (issue
// scheduling, renaming, memory disambiguation) operate.
package isa

import "fmt"

// Class identifies the operation type of a micro-op.
type Class uint8

// Operation classes. Memory and branch classes get special handling in
// every core model; the rest differ only in functional unit and latency.
const (
	IntALU Class = iota // single-cycle integer op
	IntMul              // pipelined integer multiply
	IntDiv              // unpipelined integer divide
	FPAdd               // pipelined FP add/sub/convert
	FPMul               // pipelined FP multiply
	FPDiv               // unpipelined FP divide/sqrt
	Load                // memory read
	Store               // memory write
	Branch              // conditional or unconditional control flow
	NumClasses
)

var classNames = [NumClasses]string{
	"IntALU", "IntMul", "IntDiv", "FPAdd", "FPMul", "FPDiv", "Load", "Store", "Branch",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class uses the floating-point register file.
func (c Class) IsFP() bool { return c == FPAdd || c == FPMul || c == FPDiv }

// FUKind is the functional unit pool an operation executes on.
type FUKind uint8

// Functional unit kinds, matching Table I of the paper
// (2 integer ALUs, 2 FP units, 2 AGUs).
const (
	FUIntALU FUKind = iota
	FUFP
	FUAGU
	NumFUKinds
)

var fuNames = [NumFUKinds]string{"IntALU", "FP", "AGU"}

func (k FUKind) String() string {
	if int(k) < len(fuNames) {
		return fuNames[k]
	}
	return fmt.Sprintf("FUKind(%d)", uint8(k))
}

// FU returns the functional unit pool c executes on. Loads and stores use
// the AGUs for address generation; the cache access itself is modelled by
// the memory hierarchy.
func (c Class) FU() FUKind {
	switch c {
	case FPAdd, FPMul, FPDiv:
		return FUFP
	case Load, Store:
		return FUAGU
	default:
		return FUIntALU
	}
}

// ExecLatency returns the execution latency, in cycles, of class c on its
// functional unit, excluding any cache access time for memory operations.
// Latencies follow common 2 GHz embedded-class cores (and Multi2Sim
// defaults).
func (c Class) ExecLatency() int {
	switch c {
	case IntALU, Branch:
		return 1
	case IntMul:
		return 3
	case IntDiv:
		return 12
	case FPAdd:
		return 3
	case FPMul:
		return 4
	case FPDiv:
		return 12
	case Load, Store:
		return 1 // address generation; memory time is added separately
	default:
		return 1
	}
}

// Pipelined reports whether the functional unit for c accepts a new
// operation every cycle (true) or blocks until completion (false).
func (c Class) Pipelined() bool { return c != IntDiv && c != FPDiv }

// Reg is an architectural register identifier. The integer and FP register
// files occupy disjoint ranges so a Reg is unambiguous on its own.
// RegNone marks an absent operand.
type Reg uint8

// Architectural register file sizes (x86-flavoured: 16 integer + 8 FP,
// matching the Multi2Sim model; Table I's 14-entry FP PRF must exceed the
// architectural FP file).
const (
	NumIntRegs = 16
	NumFPRegs  = 8
	// RegNone marks an absent source or destination operand.
	RegNone Reg = 255
)

// FirstFPReg is the Reg value of the first floating-point register.
const FirstFPReg Reg = NumIntRegs

// NumArchRegs is the total number of architectural registers.
const NumArchRegs = NumIntRegs + NumFPRegs

// IntReg returns the i'th integer architectural register.
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: IntReg(%d) out of range", i))
	}
	return Reg(i)
}

// FPReg returns the i'th floating-point architectural register.
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: FPReg(%d) out of range", i))
	}
	return FirstFPReg + Reg(i)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r != RegNone && r >= FirstFPReg }

// Valid reports whether r names a register (not RegNone).
func (r Reg) Valid() bool { return r != RegNone && r < NumArchRegs }

func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r < FirstFPReg:
		return fmt.Sprintf("r%d", r)
	case r < NumArchRegs:
		return fmt.Sprintf("f%d", r-FirstFPReg)
	default:
		return fmt.Sprintf("Reg(%d)", uint8(r))
	}
}

// MicroOp is one dynamic instruction in a trace.
//
// Seq is the dynamic sequence number (program order). For memory ops, Addr
// and Size give the effective byte range. For branches, Taken and Target
// record the resolved outcome that the front end's predictor is checked
// against.
type MicroOp struct {
	Seq    uint64
	PC     uint64
	Class  Class
	Dst    Reg // RegNone if no register result
	Src1   Reg // RegNone if absent
	Src2   Reg // RegNone if absent
	Addr   uint64
	Size   uint8
	Taken  bool
	Target uint64
}

// HasDst reports whether the op writes a register.
func (u *MicroOp) HasDst() bool { return u.Dst.Valid() }

// Overlaps reports whether the memory byte ranges of u and v intersect.
// Non-memory operations never overlap.
func (u *MicroOp) Overlaps(v *MicroOp) bool {
	if !u.Class.IsMem() || !v.Class.IsMem() {
		return false
	}
	ue := u.Addr + uint64(u.Size)
	ve := v.Addr + uint64(v.Size)
	return u.Addr < ve && v.Addr < ue
}

func (u *MicroOp) String() string {
	s := fmt.Sprintf("#%d pc=%#x %s dst=%s src=[%s,%s]", u.Seq, u.PC, u.Class, u.Dst, u.Src1, u.Src2)
	if u.Class.IsMem() {
		s += fmt.Sprintf(" addr=%#x/%d", u.Addr, u.Size)
	}
	if u.Class == Branch {
		s += fmt.Sprintf(" taken=%v target=%#x", u.Taken, u.Target)
	}
	return s
}
