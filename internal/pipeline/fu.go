// Package pipeline holds small building blocks shared by every core model:
// the functional-unit pool and issue-port arbitration helpers.
package pipeline

import (
	"casino/internal/eventq"
	"casino/internal/isa"
)

// FUPool models the execution resources of Table I: 2 integer ALUs, 2 FP
// units and 2 AGUs. Pipelined units accept one op per cycle; unpipelined
// ops (divides) occupy their unit until completion.
type FUPool struct {
	units  [isa.NumFUKinds][]int64 // busy-until cycle per unit
	Issued [isa.NumFUKinds]uint64
	wq     *eventq.Queue
}

// SetWakeQueue attaches the shared wakeup queue. Unpipelined issues register
// their busy-until cycle; pipelined units free next cycle and need no event.
func (p *FUPool) SetWakeQueue(q *eventq.Queue) { p.wq = q }

// NewFUPool creates a pool with n units of each kind.
func NewFUPool(nALU, nFP, nAGU int) *FUPool {
	p := &FUPool{}
	p.units[isa.FUIntALU] = make([]int64, nALU)
	p.units[isa.FUFP] = make([]int64, nFP)
	p.units[isa.FUAGU] = make([]int64, nAGU)
	return p
}

// DefaultFUPool returns the Table I configuration (2/2/2).
func DefaultFUPool() *FUPool { return NewFUPool(2, 2, 2) }

// ScaledFUPool returns a pool scaled for wider machines (width/2 of each
// Table I pair, minimum the Table I counts).
func ScaledFUPool(width int) *FUPool {
	n := width
	if n < 2 {
		n = 2
	}
	return NewFUPool(n, n, n)
}

// CanIssue reports whether an op of class c could begin execution at cycle
// now without occupying the unit.
func (p *FUPool) CanIssue(c isa.Class, now int64) bool {
	for _, busy := range p.units[c.FU()] {
		if busy <= now {
			return true
		}
	}
	return false
}

// NextFree returns the earliest cycle >= now at which an op of class c
// could begin execution: now if a unit is already free, otherwise the
// soonest busy-until time. Used by the fast-forward probes when an
// otherwise-ready op is blocked only on an occupied (unpipelined) unit.
func (p *FUPool) NextFree(c isa.Class, now int64) int64 {
	best := int64(1) << 62
	for _, busy := range p.units[c.FU()] {
		if busy <= now {
			return now
		}
		if busy < best {
			best = busy
		}
	}
	return best
}

// Issue occupies a unit for an op of class c starting at now, returning
// false if no unit is free. Pipelined classes free the unit next cycle;
// unpipelined ones hold it for their full latency.
func (p *FUPool) Issue(c isa.Class, now int64) bool {
	kind := c.FU()
	for i, busy := range p.units[kind] {
		if busy <= now {
			if c.Pipelined() {
				p.units[kind][i] = now + 1
			} else {
				p.units[kind][i] = now + int64(c.ExecLatency())
				p.wq.Wake(p.units[kind][i])
			}
			p.Issued[kind]++
			return true
		}
	}
	return false
}

// IssuedTotal returns the total issue count across all unit kinds (used as
// part of the fast-forward progress signature).
func (p *FUPool) IssuedTotal() uint64 {
	var t uint64
	for _, n := range p.Issued {
		t += n
	}
	return t
}

// Reset clears occupancy and counters.
func (p *FUPool) Reset() {
	for k := range p.units {
		for i := range p.units[k] {
			p.units[k][i] = 0
		}
		p.Issued[k] = 0
	}
}
