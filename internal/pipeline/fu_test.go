package pipeline

import (
	"testing"

	"casino/internal/isa"
)

func TestFUPoolWidth(t *testing.T) {
	p := DefaultFUPool()
	if !p.Issue(isa.IntALU, 0) || !p.Issue(isa.IntALU, 0) {
		t.Fatal("two ALUs should accept two ops")
	}
	if p.Issue(isa.IntALU, 0) {
		t.Error("third ALU op accepted in same cycle")
	}
	if !p.CanIssue(isa.IntALU, 1) {
		t.Error("pipelined ALU not free next cycle")
	}
	if !p.Issue(isa.FPAdd, 0) {
		t.Error("FP unit blocked by ALU usage")
	}
}

func TestFUPoolUnpipelinedDivide(t *testing.T) {
	p := NewFUPool(1, 1, 1)
	if !p.Issue(isa.IntDiv, 0) {
		t.Fatal("divide refused")
	}
	lat := int64(isa.IntDiv.ExecLatency())
	if p.CanIssue(isa.IntALU, lat-1) {
		t.Error("unpipelined divide freed unit early")
	}
	if !p.CanIssue(isa.IntALU, lat) {
		t.Error("unit not freed after divide latency")
	}
}

func TestFUPoolAGUSharedByLoadsStores(t *testing.T) {
	p := DefaultFUPool()
	if !p.Issue(isa.Load, 0) || !p.Issue(isa.Store, 0) {
		t.Fatal("two AGUs should accept a load and a store")
	}
	if p.Issue(isa.Load, 0) {
		t.Error("third AGU op accepted")
	}
	if p.Issued[isa.FUAGU] != 2 {
		t.Errorf("AGU issue count = %d", p.Issued[isa.FUAGU])
	}
}

func TestFUPoolReset(t *testing.T) {
	p := DefaultFUPool()
	p.Issue(isa.FPDiv, 0)
	p.Reset()
	if !p.CanIssue(isa.FPAdd, 0) || p.Issued[isa.FUFP] != 0 {
		t.Error("Reset incomplete")
	}
}

func TestScaledFUPool(t *testing.T) {
	p := ScaledFUPool(4)
	n := 0
	for p.Issue(isa.IntALU, 0) {
		n++
	}
	if n != 4 {
		t.Errorf("4-wide pool has %d ALUs", n)
	}
	p2 := ScaledFUPool(1)
	n = 0
	for p2.Issue(isa.IntALU, 0) {
		n++
	}
	if n != 2 {
		t.Errorf("minimum pool has %d ALUs, want 2", n)
	}
}
