package lsu

// OSCA is the Outstanding Store Counter Array of §III-C4: a small,
// direct-mapped, tagless array of saturating counters indexed by the low
// address bits at 4-byte granularity. Counters track issued-but-not-retired
// stores; a load whose counters are all zero provably cannot alias any
// outstanding resolved store and skips its SQ/SB search.
type OSCA struct {
	counters []uint8
	max      uint8

	Lookups   uint64
	Skips     uint64 // searches filtered out (all counters zero)
	Incs      uint64
	Decs      uint64
	Saturated uint64 // increments refused because a counter was saturated
}

// NewOSCA creates an array of n counters saturating at max (the paper uses
// n=64 and max = SQ+SB entries so saturation stalls cannot deadlock).
func NewOSCA(n int, max uint8) *OSCA {
	if n < 1 || n&(n-1) != 0 {
		panic("lsu: OSCA size must be a power of two")
	}
	if max == 0 {
		panic("lsu: OSCA max must be positive")
	}
	return &OSCA{counters: make([]uint8, n), max: max}
}

// Size returns the number of counters.
func (o *OSCA) Size() int { return len(o.counters) }

// indices returns the counter indices covered by [addr, addr+size), at
// 4-byte range granularity (unaligned/wide accesses touch several).
func (o *OSCA) indices(addr uint64, size uint8) (first, last int) {
	mask := uint64(len(o.counters) - 1)
	lo := addr >> 2
	hi := (addr + uint64(size) - 1) >> 2
	if hi-lo >= uint64(len(o.counters)) {
		return 0, len(o.counters) - 1 // giant access covers everything
	}
	return int(lo & mask), int(hi & mask)
}

func (o *OSCA) each(addr uint64, size uint8, f func(i int)) {
	if size == 0 {
		size = 1
	}
	first, last := o.indices(addr, size)
	i := first
	for {
		f(i)
		if i == last {
			return
		}
		i = (i + 1) % len(o.counters)
	}
}

// CanInc reports whether a store covering [addr,addr+size) can be counted
// without saturating (a saturated counter must stall the store's issue).
func (o *OSCA) CanInc(addr uint64, size uint8) bool {
	ok := true
	o.each(addr, size, func(i int) {
		if o.counters[i] >= o.max {
			ok = false
		}
	})
	if !ok {
		o.Saturated++
	}
	return ok
}

// PeekCanInc is the side-effect-free variant of CanInc (no Saturated
// count), used by the fast-forward probes.
func (o *OSCA) PeekCanInc(addr uint64, size uint8) bool {
	ok := true
	o.each(addr, size, func(i int) {
		if o.counters[i] >= o.max {
			ok = false
		}
	})
	return ok
}

// Inc counts an issued store over its byte range.
func (o *OSCA) Inc(addr uint64, size uint8) {
	o.Incs++
	o.each(addr, size, func(i int) {
		if o.counters[i] < o.max {
			o.counters[i]++
		}
	})
}

// Dec removes a retired (or squashed) store.
func (o *OSCA) Dec(addr uint64, size uint8) {
	o.Decs++
	o.each(addr, size, func(i int) {
		if o.counters[i] > 0 {
			o.counters[i]--
		}
	})
}

// LoadMaySearch reports whether a load of [addr,addr+size) must search the
// SQ/SB (some covering counter non-zero). A false return is the paper's
// energy win: the search is provably redundant.
func (o *OSCA) LoadMaySearch(addr uint64, size uint8) bool {
	o.Lookups++
	any := false
	o.each(addr, size, func(i int) {
		if o.counters[i] != 0 {
			any = true
		}
	})
	if !any {
		o.Skips++
	}
	return any
}

// Counter returns counter i (testing/introspection).
func (o *OSCA) Counter(i int) uint8 { return o.counters[i] }

// Reset zeroes counters and statistics.
func (o *OSCA) Reset() {
	for i := range o.counters {
		o.counters[i] = 0
	}
	o.Lookups, o.Skips, o.Incs, o.Decs, o.Saturated = 0, 0, 0, 0, 0
}
