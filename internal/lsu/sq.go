// Package lsu implements the load/store machinery of the paper: the
// unified store queue / store buffer CAM with commit-time sentinels
// (on-commit value-check, §III-C4), the Outstanding Store Counter Array
// (OSCA) search filter, a store-set memory dependence predictor and a
// conventional load queue for the OoO baseline.
package lsu

import (
	"fmt"

	"casino/internal/eventq"
)

// NoSeq marks an absent sequence number.
const NoSeq = ^uint64(0)

// SQEntry is one store tracked by the unified SQ/SB.
type SQEntry struct {
	Seq          uint64
	PC           uint64
	Addr         uint64
	Size         uint8
	Resolved     bool   // address generated (store issued to AGU)
	ResolveCycle int64  // cycle the address became known
	DataReady    int64  // cycle store data is forwardable
	Committed    bool   // crossed the SQ→SB boundary (committed from ROB)
	RetireDone   int64  // cache update completion; 0 = retirement not started
	SentinelSeq  uint64 // youngest speculated load guarding this store (NoSeq = none)
}

func (e *SQEntry) overlaps(addr uint64, size uint8) bool {
	return e.Addr < addr+uint64(size) && addr < e.Addr+uint64(e.Size)
}

// StoreQueue is the unified SQ/SB of §III-C4: one CAM structure logically
// split by the commit boundary. Stores are dispatched at rename/S-IQ exit,
// resolved at issue, committed in order, and retire to the cache from the
// head once unguarded by sentinels.
type StoreQueue struct {
	entries []SQEntry
	head    int
	count   int
	wq      *eventq.Queue

	// Activity counters (drive Fig. 8 and the energy model).
	Searches       uint64 // associative searches (issue + commit validations)
	Writes         uint64 // entry allocations/updates
	Reads          uint64 // head reads for retirement
	Forwards       uint64
	SentinelsSet   uint64
	ViolationsSeen uint64
}

// NewStoreQueue creates a queue with n entries (Table I: 8 for CASINO/OoO,
// 4 for the InO baseline's plain SB).
func NewStoreQueue(n int) *StoreQueue {
	if n < 1 {
		panic("lsu: store queue needs at least one entry")
	}
	return &StoreQueue{entries: make([]SQEntry, n)}
}

// SetWakeQueue attaches the shared wakeup queue. The store queue registers
// every stored future cycle — data-ready times at resolve, cache-update
// completions at retirement start — as it is written.
func (q *StoreQueue) SetWakeQueue(wq *eventq.Queue) { q.wq = wq }

// Cap returns the capacity.
func (q *StoreQueue) Cap() int { return len(q.entries) }

// Len returns the number of occupied entries.
func (q *StoreQueue) Len() int { return q.count }

// Full reports whether no entry is free.
func (q *StoreQueue) Full() bool { return q.count == len(q.entries) }

func (q *StoreQueue) at(i int) *SQEntry {
	j := q.head + i
	if j >= len(q.entries) {
		j -= len(q.entries)
	}
	return &q.entries[j]
}

// Dispatch allocates a tail entry for the store with sequence seq.
// Returns false if the queue is full.
func (q *StoreQueue) Dispatch(seq, pc uint64) bool {
	if q.Full() {
		return false
	}
	e := q.at(q.count)
	*e = SQEntry{Seq: seq, PC: pc, SentinelSeq: NoSeq}
	q.count++
	q.Writes++
	return true
}

// find returns the entry for seq, or nil.
func (q *StoreQueue) find(seq uint64) *SQEntry {
	for i := 0; i < q.count; i++ {
		if e := q.at(i); e.Seq == seq {
			return e
		}
	}
	return nil
}

// Resolve records the store's address at issue time.
func (q *StoreQueue) Resolve(seq uint64, addr uint64, size uint8, now, dataReady int64) {
	e := q.find(seq)
	if e == nil {
		panic(fmt.Sprintf("lsu: Resolve of unknown store %d", seq))
	}
	e.Addr, e.Size = addr, size
	e.Resolved = true
	e.ResolveCycle = now
	e.DataReady = dataReady
	q.wq.Wake(dataReady)
	q.Writes++
}

// Commit marks the store as committed (it conceptually moves from the SQ
// part to the SB part).
func (q *StoreQueue) Commit(seq uint64) {
	e := q.find(seq)
	if e == nil {
		panic(fmt.Sprintf("lsu: Commit of unknown store %d", seq))
	}
	e.Committed = true
	q.Writes++
}

// Head returns the oldest entry, or nil if empty.
func (q *StoreQueue) Head() *SQEntry {
	if q.count == 0 {
		return nil
	}
	return q.at(0)
}

// HeadRetirable reports whether the head store may begin its cache update
// at cycle now: committed, resolved, data ready and not sentinel-guarded.
func (q *StoreQueue) HeadRetirable(now int64) bool {
	e := q.Head()
	if e == nil {
		return false
	}
	q.Reads++
	return e.Committed && e.Resolved && e.DataReady <= now &&
		e.SentinelSeq == NoSeq && e.RetireDone == 0
}

// NoEvent is returned by event probes when the queue cannot make progress
// through the passage of time alone (empty, or blocked on a core action
// such as commit or a sentinel clear).
const NoEvent = int64(1) << 62

// RetireEvent returns the earliest cycle >= now at which the head store can
// make retirement progress: the retire-completion pop time if retirement
// has started, the data-ready cycle if the head is committed and unguarded,
// and NoEvent otherwise. Unlike HeadRetirable it is side-effect-free (no
// activity counts) — it is a fast-forward probe, not a pipeline access.
func (q *StoreQueue) RetireEvent(now int64) int64 {
	if q.count == 0 {
		return NoEvent
	}
	e := q.at(0)
	if e.RetireDone != 0 {
		if e.RetireDone <= now {
			return now // pop happens this cycle
		}
		return e.RetireDone
	}
	if e.Committed && e.Resolved && e.SentinelSeq == NoSeq {
		if e.DataReady <= now {
			return now // retirement begins this cycle
		}
		return e.DataReady
	}
	return NoEvent
}

// StartRetire records the head's cache-update completion cycle.
func (q *StoreQueue) StartRetire(done int64) {
	e := q.Head()
	if e == nil || e.RetireDone != 0 {
		panic("lsu: StartRetire on empty queue or already-retiring head")
	}
	e.RetireDone = done
	q.wq.Wake(done)
}

// PopRetired removes the head if its cache update has completed by now,
// returning the entry (by value) and true.
func (q *StoreQueue) PopRetired(now int64) (SQEntry, bool) {
	e := q.Head()
	if e == nil || e.RetireDone == 0 || e.RetireDone > now {
		return SQEntry{}, false
	}
	out := *e
	q.head++
	if q.head == len(q.entries) {
		q.head = 0
	}
	q.count--
	return out, true
}

// SearchResult summarizes an issue-time SQ/SB search by a load.
type SearchResult struct {
	// Forward is the youngest older resolved store overlapping the load,
	// if any (forwarding source).
	Forward *SQEntry
	// OldestUnresolved is the oldest unresolved store that is older than
	// the load and younger than Forward (sentinel target per §III-C4).
	OldestUnresolved *SQEntry
}

// SearchForLoad performs the issue-time associative search on behalf of a
// load: it finds the youngest older matching resolved store and the oldest
// relevant unresolved store. sbOnly restricts the search to committed
// entries (loads issued from CASINO's in-order IQ: all prior stores have
// issued, so only the SB part matters).
func (q *StoreQueue) SearchForLoad(loadSeq uint64, addr uint64, size uint8, sbOnly bool) SearchResult {
	q.Searches++
	var res SearchResult
	for i := 0; i < q.count; i++ {
		e := q.at(i)
		if e.Seq >= loadSeq {
			break // entries are in program order; younger stores are irrelevant
		}
		if sbOnly && !e.Committed {
			continue
		}
		if e.Resolved {
			if e.overlaps(addr, size) {
				res.Forward = e // keep youngest (iteration is old→young)
				res.OldestUnresolved = nil
			}
		} else if res.OldestUnresolved == nil {
			res.OldestUnresolved = e
		}
	}
	if res.Forward != nil {
		q.Forwards++
	}
	return res
}

// SetSentinel places the load's sentinel on the store entry, replacing an
// older setter (the sentinel tracks the *youngest* dependent load).
func (q *StoreQueue) SetSentinel(store *SQEntry, loadSeq uint64) {
	if store.SentinelSeq == NoSeq || loadSeq > store.SentinelSeq {
		store.SentinelSeq = loadSeq
	}
	q.SentinelsSet++
}

// ClearSentinel removes loadSeq's sentinel from any store it guards
// (called when the load commits or is squashed).
func (q *StoreQueue) ClearSentinel(loadSeq uint64) {
	for i := 0; i < q.count; i++ {
		if e := q.at(i); e.SentinelSeq == loadSeq {
			e.SentinelSeq = NoSeq
		}
	}
}

// ValidateLoad performs the on-commit value-check for a speculated load:
// it re-searches the queue for an older overlapping store whose address
// resolved only after the load issued (the load read stale data). It
// returns true on a memory-order violation. This is the conservative
// address-based variant of the value check (no data values are simulated).
func (q *StoreQueue) ValidateLoad(loadSeq uint64, addr uint64, size uint8, loadIssue int64) bool {
	q.Searches++
	for i := 0; i < q.count; i++ {
		e := q.at(i)
		if e.Seq >= loadSeq {
			break
		}
		if e.Resolved && e.ResolveCycle > loadIssue && e.overlaps(addr, size) {
			q.ViolationsSeen++
			return true
		}
	}
	return false
}

// ResolvedOrGone reports whether the store with sequence seq has resolved
// its address or is no longer tracked (retired or squashed). Used by the
// store-set predictor's wait condition.
func (q *StoreQueue) ResolvedOrGone(seq uint64) bool {
	e := q.find(seq)
	return e == nil || e.Resolved
}

// OldestUnresolvedOlder returns the oldest store older than seq whose
// address is unresolved, or nil. It models the cheap Resolved-flag scan a
// load performs when the OSCA filtered its CAM search (§IV-2).
func (q *StoreQueue) OldestUnresolvedOlder(seq uint64) *SQEntry {
	for i := 0; i < q.count; i++ {
		e := q.at(i)
		if e.Seq >= seq {
			break
		}
		if !e.Resolved {
			return e
		}
	}
	return nil
}

// AnyUnresolvedOlder reports whether any store older than seq has an
// unresolved address (used by AGI-ordering and conservative schemes).
func (q *StoreQueue) AnyUnresolvedOlder(seq uint64) bool {
	for i := 0; i < q.count; i++ {
		e := q.at(i)
		if e.Seq >= seq {
			break
		}
		if !e.Resolved {
			return true
		}
	}
	return false
}

// SquashYoungerThan drops uncommitted stores with Seq >= seq from the tail
// (pipeline flush) and returns the dropped entries oldest-first (the OSCA
// recovery walks them).
func (q *StoreQueue) SquashYoungerThan(seq uint64) []SQEntry {
	var dropped []SQEntry
	for q.count > 0 {
		e := q.at(q.count - 1)
		if e.Seq < seq || e.Committed {
			break
		}
		dropped = append(dropped, *e)
		q.count--
	}
	// Reverse to oldest-first.
	for i, j := 0, len(dropped)-1; i < j; i, j = i+1, j-1 {
		dropped[i], dropped[j] = dropped[j], dropped[i]
	}
	return dropped
}

// ClearAllSentinels removes every sentinel (recovery step from §III-C5).
func (q *StoreQueue) ClearAllSentinels() {
	for i := 0; i < q.count; i++ {
		q.at(i).SentinelSeq = NoSeq
	}
}

// Entries returns a snapshot of occupied entries oldest-first (testing and
// introspection).
func (q *StoreQueue) Entries() []SQEntry {
	out := make([]SQEntry, q.count)
	for i := 0; i < q.count; i++ {
		out[i] = *q.at(i)
	}
	return out
}
