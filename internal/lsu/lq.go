package lsu

// LoadQueue is the conventional LQ of the OoO baseline (Table I: 16
// entries): a FIFO CAM of in-flight loads searched by resolving stores for
// memory-order violations. CASINO's whole point is not needing one.
type LoadQueue struct {
	entries []lqEntry
	head    int
	count   int

	Reads    uint64
	Writes   uint64
	Searches uint64
}

type lqEntry struct {
	seq    uint64
	pc     uint64
	addr   uint64
	size   uint8
	issued bool
}

// NewLoadQueue creates an LQ with n entries.
func NewLoadQueue(n int) *LoadQueue {
	if n < 1 {
		panic("lsu: load queue needs at least one entry")
	}
	return &LoadQueue{entries: make([]lqEntry, n)}
}

// Cap returns the capacity.
func (q *LoadQueue) Cap() int { return len(q.entries) }

// Len returns the occupancy.
func (q *LoadQueue) Len() int { return q.count }

// Full reports whether the LQ has no free entry.
func (q *LoadQueue) Full() bool { return q.count == len(q.entries) }

func (q *LoadQueue) at(i int) *lqEntry { return &q.entries[(q.head+i)%len(q.entries)] }

// Dispatch allocates an entry for the load with sequence seq.
func (q *LoadQueue) Dispatch(seq, pc uint64) bool {
	if q.Full() {
		return false
	}
	*q.at(q.count) = lqEntry{seq: seq, pc: pc}
	q.count++
	q.Writes++
	return true
}

// MarkIssued records the load's address when it issues.
func (q *LoadQueue) MarkIssued(seq uint64, addr uint64, size uint8) {
	for i := 0; i < q.count; i++ {
		if e := q.at(i); e.seq == seq {
			e.addr, e.size, e.issued = addr, size, true
			q.Writes++
			return
		}
	}
	panic("lsu: MarkIssued of unknown load")
}

// SearchViolation is the store-issue-time LQ search: it returns the oldest
// already-issued load younger than the store that overlaps the store's
// address.
func (q *LoadQueue) SearchViolation(storeSeq uint64, addr uint64, size uint8) (loadSeq uint64, loadPC uint64, found bool) {
	q.Searches++
	for i := 0; i < q.count; i++ {
		e := q.at(i)
		if e.seq <= storeSeq || !e.issued {
			continue
		}
		if e.addr < addr+uint64(size) && addr < e.addr+uint64(e.size) {
			return e.seq, e.pc, true
		}
	}
	return 0, 0, false
}

// Release removes the oldest entry, which must be seq (commit order).
func (q *LoadQueue) Release(seq uint64) {
	if q.count == 0 || q.at(0).seq != seq {
		panic("lsu: Release out of order")
	}
	q.head = (q.head + 1) % len(q.entries)
	q.count--
	q.Reads++
}

// SquashYoungerThan drops entries with seq >= bound from the tail.
func (q *LoadQueue) SquashYoungerThan(bound uint64) {
	for q.count > 0 {
		if q.at(q.count-1).seq < bound {
			break
		}
		q.count--
	}
}
