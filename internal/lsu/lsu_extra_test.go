package lsu

import "testing"

func TestResolvedOrGone(t *testing.T) {
	q := NewStoreQueue(4)
	if !q.ResolvedOrGone(42) {
		t.Error("absent store should count as gone")
	}
	q.Dispatch(42, 0x100)
	if q.ResolvedOrGone(42) {
		t.Error("unresolved in-flight store reported gone")
	}
	q.Resolve(42, 0x1000, 8, 1, 1)
	if !q.ResolvedOrGone(42) {
		t.Error("resolved store not reported")
	}
}

func TestOldestUnresolvedOlder(t *testing.T) {
	q := NewStoreQueue(4)
	if q.OldestUnresolvedOlder(100) != nil {
		t.Error("empty queue returned an entry")
	}
	q.Dispatch(10, 0)
	q.Dispatch(20, 0)
	q.Dispatch(30, 0)
	q.Resolve(10, 0x100, 8, 1, 1)
	e := q.OldestUnresolvedOlder(25)
	if e == nil || e.Seq != 20 {
		t.Fatalf("got %+v, want seq 20", e)
	}
	// Younger-than bound unresolved stores don't count.
	if q.OldestUnresolvedOlder(15) != nil {
		t.Error("store 20 is younger than bound 15")
	}
}

func TestStoreQueuePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero-capacity queue", func() { NewStoreQueue(0) })
	mustPanic("zero-capacity lq", func() { NewLoadQueue(0) })
	q := NewStoreQueue(2)
	mustPanic("resolve unknown", func() { q.Resolve(9, 0, 4, 0, 0) })
	mustPanic("commit unknown", func() { q.Commit(9) })
	mustPanic("retire empty", func() { q.StartRetire(5) })
	lq := NewLoadQueue(2)
	mustPanic("mark unknown load", func() { lq.MarkIssued(7, 0, 4) })
}

func TestStoreQueueWrapAround(t *testing.T) {
	// Exercise the ring buffer across several wrap-arounds.
	q := NewStoreQueue(3)
	seq := uint64(0)
	for round := 0; round < 5; round++ {
		for q.Len() < q.Cap() {
			if !q.Dispatch(seq, 0x100+seq*4) {
				t.Fatal("dispatch failed with space available")
			}
			q.Resolve(seq, 0x1000+seq*8, 8, int64(seq), int64(seq))
			q.Commit(seq)
			seq++
		}
		for q.Len() > 0 {
			if !q.HeadRetirable(int64(seq) + 100) {
				t.Fatalf("head not retirable: %+v", q.Head())
			}
			q.StartRetire(int64(seq) + 101)
			if _, ok := q.PopRetired(int64(seq) + 101); !ok {
				t.Fatal("pop failed")
			}
		}
	}
	if q.Head() != nil {
		t.Error("drained queue has a head")
	}
}

func TestLoadQueueCapAndSquashPartial(t *testing.T) {
	q := NewLoadQueue(4)
	if q.Cap() != 4 {
		t.Errorf("Cap = %d", q.Cap())
	}
	for i := uint64(1); i <= 4; i++ {
		q.Dispatch(i*10, i)
	}
	q.SquashYoungerThan(25) // drops 30, 40
	if q.Len() != 2 {
		t.Errorf("Len = %d after partial squash", q.Len())
	}
	q.MarkIssued(20, 0x100, 8)
	if _, _, hit := q.SearchViolation(5, 0x100, 8); !hit {
		t.Error("surviving load not searchable")
	}
}

func TestOSCAReset(t *testing.T) {
	o := NewOSCA(8, 4)
	o.Inc(0, 4)
	o.LoadMaySearch(0, 4)
	o.Reset()
	if o.Counter(0) != 0 || o.Lookups != 0 || o.Incs != 0 {
		t.Error("Reset incomplete")
	}
}

func TestOSCAGiantAccessCoversAll(t *testing.T) {
	o := NewOSCA(8, 4)
	o.Inc(0, 255) // covers more ranges than counters exist
	for i := 0; i < o.Size(); i++ {
		if o.Counter(i) == 0 {
			t.Fatalf("counter %d not covered by giant access", i)
		}
	}
	o.Dec(0, 255)
	for i := 0; i < o.Size(); i++ {
		if o.Counter(i) != 0 {
			t.Fatalf("counter %d not restored", i)
		}
	}
	// Zero-size accesses are treated as one byte.
	o.Inc(16, 0)
	if !o.LoadMaySearch(16, 1) {
		t.Error("zero-size store not counted")
	}
}

func TestStoreSetsClearingConfigurable(t *testing.T) {
	s := NewStoreSetsWithClear(4)
	s.OnViolation(0x100, 0x200)
	s.StoreDispatched(0x200, 10)
	for i := 0; i < 4; i++ {
		s.LoadDependence(0x100)
	}
	if s.Clears != 1 {
		t.Errorf("Clears = %d, want 1", s.Clears)
	}
	if _, wait := s.LoadDependence(0x100); wait {
		t.Error("cleared predictor still predicts dependence")
	}
	// Never-clearing predictor keeps its state indefinitely.
	n := NewStoreSetsWithClear(0)
	n.OnViolation(0x100, 0x200)
	n.StoreDispatched(0x200, 10)
	for i := 0; i < 100000; i++ {
		n.LoadDependence(0x300)
	}
	if _, wait := n.LoadDependence(0x100); !wait {
		t.Error("never-clearing predictor forgot its set")
	}
	if n.Clears != 0 {
		t.Errorf("Clears = %d, want 0", n.Clears)
	}
}

func TestValidateLoadStopsAtYoungerStores(t *testing.T) {
	q := NewStoreQueue(4)
	q.Dispatch(30, 0) // younger than the load below
	q.Resolve(30, 0x1000, 8, 8, 9)
	if q.ValidateLoad(20, 0x1000, 8, 5) {
		t.Error("younger store flagged as violation source")
	}
}
