package lsu

import (
	"testing"
	"testing/quick"
)

func TestStoreQueueLifecycle(t *testing.T) {
	q := NewStoreQueue(4)
	if q.Cap() != 4 || q.Len() != 0 || q.Full() {
		t.Fatal("fresh queue state wrong")
	}
	if !q.Dispatch(10, 0x100) || !q.Dispatch(20, 0x104) {
		t.Fatal("dispatch failed")
	}
	q.Resolve(10, 0x1000, 8, 5, 6)
	q.Commit(10)
	if !q.HeadRetirable(6) {
		t.Fatal("resolved+committed head should be retirable")
	}
	q.StartRetire(30)
	if _, ok := q.PopRetired(29); ok {
		t.Error("retired before completion")
	}
	e, ok := q.PopRetired(30)
	if !ok || e.Seq != 10 {
		t.Fatalf("PopRetired = %+v,%v", e, ok)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d", q.Len())
	}
	// Remaining store not committed: not retirable.
	q.Resolve(20, 0x2000, 8, 7, 8)
	if q.HeadRetirable(100) {
		t.Error("uncommitted store retirable")
	}
}

func TestStoreQueueFull(t *testing.T) {
	q := NewStoreQueue(2)
	q.Dispatch(1, 0)
	q.Dispatch(2, 0)
	if q.Dispatch(3, 0) {
		t.Error("dispatch into full queue succeeded")
	}
	if !q.Full() {
		t.Error("Full() false")
	}
}

func TestSearchForLoadForwarding(t *testing.T) {
	q := NewStoreQueue(8)
	q.Dispatch(10, 0x100)
	q.Dispatch(20, 0x104)
	q.Dispatch(30, 0x108)
	q.Resolve(10, 0x1000, 8, 1, 2)
	q.Resolve(30, 0x1000, 8, 3, 4)
	// Load at seq 40 overlapping 0x1000: youngest older resolved match is 30;
	// store 20 is unresolved but OLDER than the match → no sentinel needed.
	res := q.SearchForLoad(40, 0x1000, 8, false)
	if res.Forward == nil || res.Forward.Seq != 30 {
		t.Fatalf("Forward = %+v, want seq 30", res.Forward)
	}
	if res.OldestUnresolved != nil {
		t.Errorf("unresolved-older-than-match should be cleared, got %+v", res.OldestUnresolved)
	}
	// Load at seq 25: only store 10 is older+resolved+matching; store 20 is
	// older and unresolved and younger than the match → sentinel target.
	res = q.SearchForLoad(25, 0x1000, 8, false)
	if res.Forward == nil || res.Forward.Seq != 10 {
		t.Fatalf("Forward = %+v, want seq 10", res.Forward)
	}
	if res.OldestUnresolved == nil || res.OldestUnresolved.Seq != 20 {
		t.Fatalf("OldestUnresolved = %+v, want seq 20", res.OldestUnresolved)
	}
	// Non-overlapping load: no forward, unresolved 20 still reported.
	res = q.SearchForLoad(40, 0x9000, 8, false)
	if res.Forward != nil || res.OldestUnresolved == nil || res.OldestUnresolved.Seq != 20 {
		t.Errorf("disjoint search: %+v", res)
	}
	if q.Forwards != 2 || q.Searches != 3 {
		t.Errorf("counters: forwards=%d searches=%d", q.Forwards, q.Searches)
	}
}

func TestSearchSBOnly(t *testing.T) {
	q := NewStoreQueue(8)
	q.Dispatch(10, 0)
	q.Dispatch(20, 0)
	q.Resolve(10, 0x1000, 8, 1, 1)
	q.Resolve(20, 0x1000, 8, 1, 1)
	q.Commit(10) // only 10 is in the SB part
	res := q.SearchForLoad(30, 0x1000, 8, true)
	if res.Forward == nil || res.Forward.Seq != 10 {
		t.Errorf("sbOnly search forward = %+v, want seq 10", res.Forward)
	}
}

func TestSentinelGatesRetirement(t *testing.T) {
	q := NewStoreQueue(4)
	q.Dispatch(10, 0)
	q.Resolve(10, 0x1000, 8, 1, 1)
	q.Commit(10)
	st := q.Head()
	q.SetSentinel(st, 50)
	if q.HeadRetirable(100) {
		t.Error("sentinel-guarded store retirable")
	}
	// A younger load replaces the sentinel; an older one does not.
	q.SetSentinel(st, 60)
	if st.SentinelSeq != 60 {
		t.Errorf("sentinel = %d, want 60", st.SentinelSeq)
	}
	q.SetSentinel(st, 55)
	if st.SentinelSeq != 60 {
		t.Errorf("older setter replaced sentinel: %d", st.SentinelSeq)
	}
	q.ClearSentinel(50) // not the current setter: no effect
	if st.SentinelSeq != 60 {
		t.Error("ClearSentinel(50) cleared a younger sentinel")
	}
	q.ClearSentinel(60)
	if st.SentinelSeq != NoSeq {
		t.Error("sentinel not cleared")
	}
	if !q.HeadRetirable(100) {
		t.Error("store should be retirable after sentinel clear")
	}
}

func TestValidateLoadViolation(t *testing.T) {
	q := NewStoreQueue(4)
	q.Dispatch(10, 0)
	// Load (seq 20) issued at cycle 5; store 10 resolved at cycle 8 to the
	// same address → the load read stale data → violation.
	q.Resolve(10, 0x1000, 8, 8, 9)
	if !q.ValidateLoad(20, 0x1000, 8, 5) {
		t.Error("violation not detected")
	}
	// Load issued after the store resolved: no violation.
	if q.ValidateLoad(20, 0x1000, 8, 9) {
		t.Error("false violation")
	}
	// Different address: no violation.
	if q.ValidateLoad(20, 0x8000, 8, 5) {
		t.Error("address mismatch flagged")
	}
	if q.ViolationsSeen != 1 {
		t.Errorf("ViolationsSeen = %d", q.ViolationsSeen)
	}
}

func TestAnyUnresolvedOlder(t *testing.T) {
	q := NewStoreQueue(4)
	q.Dispatch(10, 0)
	q.Dispatch(20, 0)
	q.Resolve(10, 0x1000, 8, 1, 1)
	if q.AnyUnresolvedOlder(15) {
		t.Error("store 10 resolved; nothing older than 15 unresolved")
	}
	if !q.AnyUnresolvedOlder(25) {
		t.Error("store 20 unresolved and older than 25")
	}
}

func TestSquashYoungerThan(t *testing.T) {
	q := NewStoreQueue(8)
	q.Dispatch(10, 0)
	q.Dispatch(20, 0)
	q.Dispatch(30, 0)
	q.Resolve(20, 0x100, 4, 1, 1)
	q.Commit(10)
	dropped := q.SquashYoungerThan(20)
	if len(dropped) != 2 || dropped[0].Seq != 20 || dropped[1].Seq != 30 {
		t.Fatalf("dropped = %+v", dropped)
	}
	if q.Len() != 1 || q.Head().Seq != 10 {
		t.Errorf("queue after squash: len=%d head=%+v", q.Len(), q.Head())
	}
	// Committed stores are never squashed.
	dropped = q.SquashYoungerThan(0)
	if len(dropped) != 0 {
		t.Errorf("committed store squashed: %+v", dropped)
	}
}

func TestClearAllSentinels(t *testing.T) {
	q := NewStoreQueue(4)
	q.Dispatch(10, 0)
	q.Dispatch(20, 0)
	q.SetSentinel(q.Head(), 99)
	q.ClearAllSentinels()
	for _, e := range q.Entries() {
		if e.SentinelSeq != NoSeq {
			t.Errorf("sentinel survived: %+v", e)
		}
	}
}

func TestOSCABasic(t *testing.T) {
	o := NewOSCA(64, 8)
	if o.Size() != 64 {
		t.Fatal("size")
	}
	if o.LoadMaySearch(0x1000, 8) {
		t.Error("empty OSCA requires search")
	}
	if o.Skips != 1 {
		t.Errorf("Skips = %d", o.Skips)
	}
	o.Inc(0x1000, 8)
	if !o.LoadMaySearch(0x1000, 8) {
		t.Error("covered load skipped search")
	}
	if !o.LoadMaySearch(0x1004, 4) {
		t.Error("partially covered load skipped search")
	}
	o.Dec(0x1000, 8)
	if o.LoadMaySearch(0x1000, 8) {
		t.Error("decremented OSCA still forces search")
	}
}

func TestOSCAUnalignedAndWide(t *testing.T) {
	o := NewOSCA(64, 8)
	// Unaligned 4-byte access spanning two ranges.
	o.Inc(0x1002, 4)
	if !o.LoadMaySearch(0x1000, 1) || !o.LoadMaySearch(0x1004, 1) {
		t.Error("unaligned store did not cover both ranges")
	}
	o.Dec(0x1002, 4)
	if o.LoadMaySearch(0x1000, 8) {
		t.Error("counters not restored")
	}
}

func TestOSCAAliasingFalsePositive(t *testing.T) {
	o := NewOSCA(64, 8)
	// Two addresses 64*4 bytes apart map to the same counter.
	o.Inc(0x0, 4)
	if !o.LoadMaySearch(uint64(64*4), 4) {
		t.Error("aliasing should force a (redundant) search — false positives allowed")
	}
}

func TestOSCASaturation(t *testing.T) {
	o := NewOSCA(8, 2)
	o.Inc(0, 4)
	o.Inc(0, 4)
	if o.CanInc(0, 4) {
		t.Error("saturated counter accepted increment")
	}
	if o.Saturated != 1 {
		t.Errorf("Saturated = %d", o.Saturated)
	}
	if o.CanInc(16, 4) {
		// different counter: must be allowed
	} else {
		t.Error("unrelated counter blocked")
	}
}

func TestOSCAPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewOSCA(63, 8) },
		func() { NewOSCA(64, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad OSCA config accepted")
				}
			}()
			f()
		}()
	}
}

// Property: after any sequence of Inc/Dec pairs, a load over a range with
// no outstanding store never reports "may search" unless aliased — here we
// use disjoint low addresses below the wrap limit so aliasing cannot occur.
func TestOSCAIncDecBalanced(t *testing.T) {
	f := func(addrs []uint8) bool {
		o := NewOSCA(64, 8)
		for _, a := range addrs {
			o.Inc(uint64(a), 4)
		}
		for _, a := range addrs {
			o.Dec(uint64(a), 4)
		}
		// All counters must be back at zero.
		for i := 0; i < o.Size(); i++ {
			if o.Counter(i) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreSetsLifecycle(t *testing.T) {
	s := NewStoreSets()
	if _, wait := s.LoadDependence(0x100); wait {
		t.Error("untrained predictor predicts dependence")
	}
	s.OnViolation(0x100, 0x200)
	s.StoreDispatched(0x200, 55)
	seq, wait := s.LoadDependence(0x100)
	if !wait || seq != 55 {
		t.Errorf("LoadDependence = %d,%v want 55,true", seq, wait)
	}
	s.StoreIssued(0x200, 55)
	if _, wait := s.LoadDependence(0x100); wait {
		t.Error("issued store still blocks load")
	}
	// A second dispatched store in the set re-arms the dependence.
	s.StoreDispatched(0x200, 77)
	if seq, wait := s.LoadDependence(0x100); !wait || seq != 77 {
		t.Errorf("re-armed dependence = %d,%v", seq, wait)
	}
	// StoreIssued with a stale seq must not clear a younger store.
	s.StoreDispatched(0x200, 99)
	s.StoreIssued(0x200, 77)
	if _, wait := s.LoadDependence(0x100); !wait {
		t.Error("stale StoreIssued cleared younger store")
	}
}

func TestStoreSetsMerge(t *testing.T) {
	s := NewStoreSets()
	s.OnViolation(0x100, 0x200)
	s.OnViolation(0x300, 0x400)
	s.OnViolation(0x100, 0x400) // merges the two colliding entries
	s.StoreDispatched(0x200, 10)
	if _, wait := s.LoadDependence(0x100); !wait {
		t.Error("merged entry does not share dependence with its set")
	}
	// Store 0x400 adopted load 0x100's set, so dispatching it re-arms too.
	s.StoreDispatched(0x400, 20)
	if seq, wait := s.LoadDependence(0x100); !wait || seq != 20 {
		t.Errorf("merged store not tracked: %d,%v", seq, wait)
	}
	s.Reset()
	if _, wait := s.LoadDependence(0x100); wait {
		t.Error("reset predictor still predicts")
	}
}

func TestLoadQueue(t *testing.T) {
	q := NewLoadQueue(2)
	if !q.Dispatch(10, 0x100) || !q.Dispatch(20, 0x104) {
		t.Fatal("dispatch failed")
	}
	if q.Dispatch(30, 0x108) {
		t.Error("over-capacity dispatch")
	}
	q.MarkIssued(20, 0x1000, 8)
	// Store at seq 15 resolving to the same address: load 20 violated.
	seq, pc, found := q.SearchViolation(15, 0x1000, 8)
	if !found || seq != 20 || pc != 0x104 {
		t.Errorf("violation search = %d,%#x,%v", seq, pc, found)
	}
	// Store younger than the load: no violation.
	if _, _, found := q.SearchViolation(25, 0x1000, 8); found {
		t.Error("younger store flagged")
	}
	// Unissued load can't violate.
	if _, _, found := q.SearchViolation(5, 0x2000, 8); found {
		t.Error("unissued load flagged")
	}
	q.Release(10)
	if q.Len() != 1 {
		t.Errorf("Len = %d", q.Len())
	}
	q.SquashYoungerThan(0)
	if q.Len() != 0 {
		t.Error("squash all failed")
	}
}

func TestLoadQueueReleasePanicsOutOfOrder(t *testing.T) {
	q := NewLoadQueue(2)
	q.Dispatch(10, 0)
	q.Dispatch(20, 0)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order release accepted")
		}
	}()
	q.Release(20)
}
