package lsu

// StoreSets is the memory dependence predictor used by the OoO baseline
// (Chrysos & Emer store sets, as in the Alpha 21264 the paper cites). Loads
// and stores that have violated together are assigned to a common store
// set; a load predicted dependent waits for the last in-flight store of
// its set to issue.
type StoreSets struct {
	ssit     []int32          // PC hash -> store-set ID (-1 = none)
	lfst     map[int32]uint64 // set ID -> youngest in-flight store seq
	next     int32
	clearInt uint64 // cyclic-clearing period in predictions (0 = never)

	Predictions uint64
	Hits        uint64 // loads predicted dependent
	Merges      uint64 // violations recorded
	Clears      uint64
}

// DefaultClearInterval is the cyclic-clearing period used by NewStoreSets.
const DefaultClearInterval = 16384

// NewStoreSets creates a predictor with a 1024-entry SSIT and the default
// cyclic-clearing interval.
func NewStoreSets() *StoreSets { return NewStoreSetsWithClear(DefaultClearInterval) }

// NewStoreSetsWithClear creates a predictor that flushes its SSIT every
// clearInterval predictions (0 disables clearing — an idealized predictor
// that never forgets).
func NewStoreSetsWithClear(clearInterval uint64) *StoreSets {
	s := &StoreSets{ssit: make([]int32, 1024), lfst: make(map[int32]uint64), clearInt: clearInterval}
	for i := range s.ssit {
		s.ssit[i] = -1
	}
	return s
}

func (s *StoreSets) idx(pc uint64) int { return int((pc >> 2) % uint64(len(s.ssit))) }

// OnViolation records that loadPC violated against storePC, merging them
// into one store set.
func (s *StoreSets) OnViolation(loadPC, storePC uint64) {
	s.Merges++
	li, si := s.idx(loadPC), s.idx(storePC)
	switch {
	case s.ssit[li] == -1 && s.ssit[si] == -1:
		id := s.next
		s.next++
		s.ssit[li], s.ssit[si] = id, id
	case s.ssit[li] == -1:
		s.ssit[li] = s.ssit[si]
	case s.ssit[si] == -1:
		s.ssit[si] = s.ssit[li]
	default:
		// Merge: adopt the smaller ID for both.
		id := s.ssit[li]
		if s.ssit[si] < id {
			id = s.ssit[si]
		}
		s.ssit[li], s.ssit[si] = id, id
	}
}

// StoreDispatched records a store entering the window.
func (s *StoreSets) StoreDispatched(pc uint64, seq uint64) {
	if id := s.ssit[s.idx(pc)]; id != -1 {
		s.lfst[id] = seq
	}
}

// StoreIssued clears the in-flight marker if seq is still the set's
// youngest store.
func (s *StoreSets) StoreIssued(pc uint64, seq uint64) {
	if id := s.ssit[s.idx(pc)]; id != -1 {
		if cur, ok := s.lfst[id]; ok && cur == seq {
			delete(s.lfst, id)
		}
	}
}

// LoadDependence predicts whether the load at pc must wait, returning the
// store sequence it should wait for. Real store-set predictors (e.g. the
// Alpha 21264 the paper cites) periodically flush the SSIT so stale
// dependences do not serialize forever — at the price of re-learning
// through fresh violations.
func (s *StoreSets) LoadDependence(pc uint64) (storeSeq uint64, wait bool) {
	s.Predictions++
	if s.clearInt != 0 && s.Predictions%s.clearInt == 0 {
		for i := range s.ssit {
			s.ssit[i] = -1
		}
		s.lfst = make(map[int32]uint64)
		s.Clears++
	}
	id := s.ssit[s.idx(pc)]
	if id == -1 {
		return 0, false
	}
	seq, ok := s.lfst[id]
	if ok {
		s.Hits++
	}
	return seq, ok
}

// Reset clears all predictor state.
func (s *StoreSets) Reset() {
	for i := range s.ssit {
		s.ssit[i] = -1
	}
	s.lfst = make(map[int32]uint64)
	s.next = 0
	s.Predictions, s.Hits, s.Merges = 0, 0, 0
}
