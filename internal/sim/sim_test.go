package sim

import (
	"strings"
	"testing"
)

func small() Options {
	return Options{
		Apps:   []string{"libquantum", "gcc", "h264ref"},
		Ops:    8000,
		Warmup: 2000,
		Seed:   1,
	}
}

func TestRunBasic(t *testing.T) {
	r, err := Run(Spec{Model: ModelInO, Workload: "gcc", Ops: 5000, Warmup: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 5000 {
		t.Errorf("instructions = %d", r.Instructions)
	}
	if r.IPC <= 0 || r.Cycles == 0 {
		t.Errorf("IPC=%v cycles=%d", r.IPC, r.Cycles)
	}
	if r.TotalPJ <= 0 || r.AreaMM2 <= 0 || r.EnergyPerInst <= 0 || r.PerfPerEnergy <= 0 {
		t.Errorf("energy fields: %+v", r)
	}
}

func TestRunAllModels(t *testing.T) {
	for _, m := range Models() {
		r, err := Run(Spec{Model: m, Workload: "gcc", Ops: 4000, Warmup: 1000, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if r.IPC <= 0 {
			t.Errorf("%s: IPC %v", m, r.IPC)
		}
		if r.Extra == nil {
			t.Errorf("%s: no extra stats", m)
		}
	}
}

func TestRunUnknownModel(t *testing.T) {
	if _, err := Run(Spec{Model: "vliw", Workload: "gcc"}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(Spec{Model: ModelInO, Workload: "doom"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	s := Spec{Model: ModelCASINO, Workload: "milc", Ops: 5000, Warmup: 1000, Seed: 7}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.Cycles != b.Cycles || a.TotalPJ != b.TotalPJ {
		t.Error("nondeterministic Run")
	}
}

func TestTable1(t *testing.T) {
	s := Table1().String()
	for _, frag := range []string{"S-IQ", "TAGE", "DDR4", "32-entry ROB"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Table1 missing %q", frag)
		}
	}
}

func TestFig6SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model suite")
	}
	tb, geo, err := Fig6(small())
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 { // 3 apps + geomean
		t.Errorf("rows = %d", tb.NumRows())
	}
	if geo["InO"] != 1.0 {
		t.Errorf("InO norm = %v", geo["InO"])
	}
	// Paper shape: InO < LSC <= Freeway < CASINO < OoO-ish ordering on an
	// MLP-rich mini-suite (allow small reorderings except the endpoints).
	if geo["CASINO"] <= 1.0 {
		t.Errorf("CASINO %v <= InO", geo["CASINO"])
	}
	if geo["OoO"] <= 1.0 {
		t.Errorf("OoO %v <= InO", geo["OoO"])
	}
	if geo["LSC"] < 0.95 {
		t.Errorf("LSC %v implausibly below InO", geo["LSC"])
	}
}

func TestFig2SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model suite")
	}
	_, geo, err := Fig2(small())
	if err != nil {
		t.Fatal(err)
	}
	if geo["SpecInO[2,1] All"] < geo["SpecInO[2,1] Non-mem"] {
		t.Errorf("All-types %v < Non-mem %v", geo["SpecInO[2,1] All"], geo["SpecInO[2,1] Non-mem"])
	}
	if geo["OoO"] < geo["SpecInO[2,1] All"]*0.9 {
		t.Errorf("OoO %v below SpecInO All %v", geo["OoO"], geo["SpecInO[2,1] All"])
	}
}

func TestFig7SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model suite")
	}
	_, sum, err := Fig7(small())
	if err != nil {
		t.Fatal(err)
	}
	if sum.AllocsPerKC["ConD[32,14]"] >= sum.AllocsPerKC["ConV[32,14]"] {
		t.Errorf("conditional renaming allocates more: %v vs %v",
			sum.AllocsPerKC["ConD[32,14]"], sum.AllocsPerKC["ConV[32,14]"])
	}
	// ConD must be at least roughly on par with ConV at equal PRF size
	// (the full 25-app suite shows a clear win; this 3-app subset allows
	// small noise).
	if sum.NormIPC["ConD[32,14]"] < 0.97 {
		t.Errorf("ConD materially slower than ConV with equal PRF: %v", sum.NormIPC["ConD[32,14]"])
	}
	total := sum.SpecMem + sum.SpecNonMem + sum.Mem + sum.NonMem
	if total < 0.95 || total > 1.05 {
		t.Errorf("issue breakdown does not sum to 1: %v", total)
	}
}

func TestFig8SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model suite")
	}
	_, sum, err := Fig8(small())
	if err != nil {
		t.Fatal(err)
	}
	// Every CASINO scheme eliminates the LQ entirely.
	for _, scheme := range []string{"AGI-Ordering", "NoLQ", "NoLQ+OSCA"} {
		if sum.LQSearches[scheme] != 0 || sum.LQReads[scheme] != 0 {
			t.Errorf("%s still has LQ activity", scheme)
		}
	}
	if sum.LQSearches["FullyOoO-LQ"] == 0 {
		t.Error("baseline LQ never searched")
	}
	// The OSCA must reduce SQ searches vs plain NoLQ.
	if sum.SQSearches["NoLQ+OSCA"] >= sum.SQSearches["NoLQ"] {
		t.Errorf("OSCA did not reduce SQ searches: %v vs %v",
			sum.SQSearches["NoLQ+OSCA"], sum.SQSearches["NoLQ"])
	}
	// AGI ordering costs performance vs the speculative schemes.
	if sum.NormIPC["AGI-Ordering"] > sum.NormIPC["NoLQ+OSCA"] {
		t.Errorf("AGI ordering unexpectedly fastest: %v vs %v",
			sum.NormIPC["AGI-Ordering"], sum.NormIPC["NoLQ+OSCA"])
	}
}

func TestFig9SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model suite")
	}
	_, sum, err := Fig9(small())
	if err != nil {
		t.Fatal(err)
	}
	if sum.NormArea["CASINO"] <= 1.0 || sum.NormArea["CASINO"] >= sum.NormArea["OoO"] {
		t.Errorf("area ordering wrong: CASINO %v OoO %v", sum.NormArea["CASINO"], sum.NormArea["OoO"])
	}
	if sum.NormEnergy["CASINO"] >= sum.NormEnergy["OoO"] {
		t.Errorf("CASINO energy %v >= OoO %v", sum.NormEnergy["CASINO"], sum.NormEnergy["OoO"])
	}
	if sum.NormEnergy["OoO+NoLQ"] >= sum.NormEnergy["OoO"] {
		t.Errorf("NoLQ did not reduce OoO energy: %v vs %v",
			sum.NormEnergy["OoO+NoLQ"], sum.NormEnergy["OoO"])
	}
}

func TestFig10bSmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model suite")
	}
	_, pts, err := Fig10b(Options{Apps: []string{"libquantum", "milc"}, Ops: 6000, Warmup: 1500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pts["[2,1]"] < 1.0 {
		t.Errorf("[2,1] below [1,1]: %v", pts["[2,1]"])
	}
}

func TestFig11SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model suite")
	}
	_, sum, err := Fig11(Options{Apps: []string{"libquantum", "hmmer"}, Ops: 6000, Warmup: 1500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.NormIPC["CASINO"][4] <= sum.NormIPC["CASINO"][2] {
		t.Errorf("4-wide CASINO (%v) not faster than 2-wide (%v)",
			sum.NormIPC["CASINO"][4], sum.NormIPC["CASINO"][2])
	}
	if sum.NormIPC["OoO"][4] < sum.NormIPC["CASINO"][4]*0.8 {
		t.Errorf("width scaling shape off: OoO4 %v CASINO4 %v",
			sum.NormIPC["OoO"][4], sum.NormIPC["CASINO"][4])
	}
}

func TestSectionStats(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model suite")
	}
	_, out, err := SectionStats(Options{Apps: []string{"libquantum"}, Ops: 6000, Warmup: 1500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f := out["casinoSIQFrac"]; f <= 0.05 || f >= 1 {
		t.Errorf("S-IQ fraction %v implausible", f)
	}
	if f := out["specInOOoOFrac"]; f <= 0.05 || f >= 1 {
		t.Errorf("SpecInO OoO fraction %v implausible", f)
	}
}
