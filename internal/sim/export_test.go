package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunSuiteJSON(t *testing.T) {
	o := Options{Apps: []string{"libquantum"}, Ops: 4000, Warmup: 1000, Seed: 1}
	s, err := RunSuiteJSON("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Labels) != 5 || len(s.Results["libquantum"]) != 5 {
		t.Fatalf("suite shape wrong: %d labels, %d results", len(s.Labels), len(s.Results["libquantum"]))
	}
	var buf bytes.Buffer
	if err := s.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SuiteResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Figure != "fig6" || back.Results["libquantum"][0].IPC <= 0 {
		t.Error("round-tripped suite lost data")
	}
}

func TestRunSuiteJSONFig2(t *testing.T) {
	o := Options{Apps: []string{"gcc"}, Ops: 3000, Warmup: 500, Seed: 1}
	s, err := RunSuiteJSON("fig2", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Labels) != 6 {
		t.Errorf("fig2 labels: %v", s.Labels)
	}
}

func TestRunSuiteJSONUnknown(t *testing.T) {
	if _, err := RunSuiteJSON("fig9", Options{}); err == nil {
		t.Error("unsupported suite accepted")
	}
}
