package sim

import (
	"math"
	"math/rand"
	"testing"

	"casino/internal/ooo"
	"casino/internal/specino"
	"casino/internal/workload"
)

// setScoreboard flips the producer-push wakeup machinery in the two models
// that have a scan-based oracle path, restoring the env-derived defaults
// when the test ends.
func setScoreboard(t *testing.T, on bool) {
	t.Helper()
	spec0, ooo0 := specino.NoScoreboard, ooo.NoScoreboard
	t.Cleanup(func() { specino.NoScoreboard, ooo.NoScoreboard = spec0, ooo0 })
	specino.NoScoreboard = !on
	ooo.NoScoreboard = !on
}

// TestScoreboardCrossValidation is the randomized oracle check for the
// producer-push wakeup paths: every model, on randomly drawn short
// workloads/seeds/lengths, must produce bit-identical results whether
// readiness comes from the scoreboard bitmaps or from the retained
// poll-every-entry scans (CASINO_NO_SCOREBOARD=1). The workload draw is
// seeded, so failures reproduce.
func TestScoreboardCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	names := workload.Names()
	for _, m := range Models() {
		for trial := 0; trial < 3; trial++ {
			wl := names[rng.Intn(len(names))]
			ops := 2000 + rng.Intn(4000)
			spec := Spec{
				Model:    m,
				Workload: wl,
				Ops:      ops,
				Warmup:   ops / 4,
				Seed:     rng.Int63n(1 << 30),
			}
			setScoreboard(t, true)
			on, err := Run(spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", m, wl, err)
			}
			setScoreboard(t, false)
			off, err := Run(spec)
			if err != nil {
				t.Fatalf("%s/%s (scan oracle): %v", m, wl, err)
			}
			if on.Cycles != off.Cycles || on.Instructions != off.Instructions ||
				on.IPC != off.IPC || on.DynamicPJ != off.DynamicPJ || on.StaticPJ != off.StaticPJ {
				t.Errorf("%s/%s seed=%d ops=%d: headline results diverge from the scan oracle",
					m, wl, spec.Seed, ops)
			}
			for k, want := range off.Extra {
				if metaMetric(k) {
					continue
				}
				if got := on.Extra[k]; got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Errorf("%s/%s seed=%d ops=%d: metric %s: scoreboard=%v scan=%v",
						m, wl, spec.Seed, ops, k, got, want)
				}
			}
		}
	}
}
