package sim

import (
	"fmt"

	"casino/internal/core"
	"casino/internal/ino"
	"casino/internal/ooo"
	"casino/internal/specino"
	"casino/internal/stats"
	"casino/internal/workload"
)

// Options parameterizes an experiment suite.
type Options struct {
	Apps   []string // nil = all 25 profiles
	Ops    int
	Warmup int
	Seed   int64

	// Sampling, when non-nil, runs every cell of the suite in sampled mode
	// (see Spec.Sampling): figure tables are then built from sampled-mode
	// IPC estimates instead of full-fidelity measurements.
	Sampling *Sampling

	// Workers bounds the sharded cell runner's parallelism for the suite;
	// 0 means one worker per CPU (see RunCells).
	Workers int
}

func (o Options) apps() []string {
	if len(o.Apps) > 0 {
		return o.Apps
	}
	return workload.Names()
}

func (o Options) fill(s *Spec) {
	s.Ops = o.Ops
	s.Warmup = o.Warmup
	if s.Warmup == 0 {
		s.Warmup = DefaultWarmup
	}
	s.Seed = o.Seed
	if o.Sampling != nil {
		g := *o.Sampling
		s.Sampling = &g
	}
}

// traceLen returns the dynamic trace length a Run of these Options needs,
// applying the same defaulting Run and fill do. runMatrix keys the trace
// cache with it so pre-resolved traces match what Run would generate.
func (o Options) traceLen() int {
	ops := o.Ops
	if ops <= 0 {
		ops = DefaultOps
	}
	warm := o.Warmup
	if warm == 0 {
		warm = DefaultWarmup
	}
	if warm < 0 {
		warm = 0
	}
	return ops + warm
}

// runMatrix executes specs[i] for every app in parallel and returns
// results indexed [app][i]. Each app's trace is resolved once up front
// through the shared cache and handed to every spec in the column, so a
// figure never generates the same trace twice. Execution goes through the
// sharded cell runner (runner.go): all worker errors are aggregated (not
// just the first), each naming its (app, model[index]) cell. An app with
// any failed cell is dropped from the result map entirely — a column with
// zero-valued Results would silently corrupt the figure's normalizations —
// so on partial failure callers get the error plus only the complete
// columns.
func runMatrix(o Options, mkSpecs func(app string) []Spec) (map[string][]Result, error) {
	apps := o.apps()
	var cells []Cell
	out := make(map[string][]Result, len(apps))
	n := o.traceLen()
	for _, app := range apps {
		tr, err := SharedTrace(app, n, o.Seed)
		if err != nil {
			return nil, err
		}
		specs := mkSpecs(app)
		out[app] = make([]Result, len(specs))
		for i, s := range specs {
			s.Workload = app
			o.fill(&s)
			s.Trace = tr
			cells = append(cells, Cell{App: app, Model: s.Model, Index: i, Spec: s})
		}
	}
	results := RunCells(cells, o.Workers, nil, nil)
	failed := map[string]bool{}
	for _, r := range results {
		if r.Err != nil {
			failed[r.Cell.App] = true
			continue
		}
		out[r.Cell.App][r.Cell.Index] = r.Result
	}
	for app := range failed {
		delete(out, app)
	}
	if err := JoinCellErrors(results); err != nil {
		return out, err
	}
	return out, nil
}

// suiteDef is one per-app figure suite: the spec column labels and the
// builder producing the specs for an app. Fig2/Fig6, the raw-JSON export
// and the manifest builder all share these definitions, so a spec change
// shows up consistently in the rendered table, the export and the golden
// gating.
type suiteDef struct {
	labels []string
	mk     func(app string) []Spec
}

// figSuite returns the suite definition for the per-app IPC figures.
func figSuite(fig string) (suiteDef, bool) {
	switch fig {
	case "fig2":
		ws := func(w, so int, nonMem bool) *specino.Config {
			c := specino.DefaultConfig(w, so)
			c.NonMemOnly = nonMem
			return &c
		}
		return suiteDef{
			labels: []string{"InO", "SpecInO[2,2] Non-mem", "SpecInO[2,2] All",
				"SpecInO[2,1] Non-mem", "SpecInO[2,1] All", "OoO"},
			mk: func(string) []Spec {
				return []Spec{
					{Model: ModelInO},
					{Model: ModelSpecInO, SpecInOCfg: ws(2, 2, true)},
					{Model: ModelSpecInO, SpecInOCfg: ws(2, 2, false)},
					{Model: ModelSpecInO, SpecInOCfg: ws(2, 1, true)},
					{Model: ModelSpecInO, SpecInOCfg: ws(2, 1, false)},
					{Model: ModelOoO},
				}
			},
		}, true
	case "fig6":
		return suiteDef{
			labels: []string{"InO", "LSC", "Freeway", "CASINO", "OoO"},
			mk: func(string) []Spec {
				return []Spec{
					{Model: ModelInO},
					{Model: ModelLSC},
					{Model: ModelFreeway},
					{Model: ModelCASINO},
					{Model: ModelOoO},
				}
			},
		}, true
	}
	return suiteDef{}, false
}

// Table1 renders the machine configurations (the paper's Table I).
func Table1() *stats.Table {
	t := stats.NewTable("Parameter", "InO", "CASINO", "OoO")
	t.AddRow("Core", "2-wide @ 2GHz", "2-wide @ 2GHz", "2-wide @ 2GHz")
	t.AddRow("Pipeline depth", "7 stages", "9 stages", "9 stages")
	t.AddRow("Issue queue", "16", "4 (S-IQ) / 12 (IQ)", "16")
	t.AddRow("Load queue", "-", "-", "16")
	t.AddRow("Store queue/buffer", "4", "8", "8")
	t.AddRow("Physical registers", "-", "32 INT, 14 FP", "48 INT, 24 FP")
	t.AddRow("Instruction window", "4-entry SCB", "32-entry ROB", "32-entry ROB")
	t.AddRow("Functional units", "2 ALU, 2 FP, 2 AGU", "2 ALU, 2 FP, 2 AGU", "2 ALU, 2 FP, 2 AGU")
	t.AddRow("Branch predictor", "TAGE 17-bit GHR", "TAGE 17-bit GHR", "TAGE 17-bit GHR")
	t.AddRow("BTB", "512x4", "512x4", "512x4")
	t.AddRow("L1I/L1D", "32 KiB 8-way, 4 cyc", "32 KiB 8-way, 4 cyc", "32 KiB 8-way, 4 cyc")
	t.AddRow("L2", "1 MiB 16-way, 11 cyc + stride prefetch", "same", "same")
	t.AddRow("DRAM", "DDR4-2400, 1 ch/1 rank/16 banks", "same", "same")
	return t
}

// Fig2 reproduces Figure 2: the SpecInO limit study. Returns the table and
// the geomean normalized IPC per scheduling model.
func Fig2(o Options) (*stats.Table, map[string]float64, error) {
	def, _ := figSuite("fig2")
	res, err := runMatrix(o, def.mk)
	if err != nil {
		return nil, nil, err
	}
	return normalizedIPCTable(o, def.labels, res)
}

// Fig6 reproduces Figure 6: IPC of LSC, Freeway, CASINO and OoO normalized
// to InO, per application plus geomean.
func Fig6(o Options) (*stats.Table, map[string]float64, error) {
	def, _ := figSuite("fig6")
	res, err := runMatrix(o, def.mk)
	if err != nil {
		return nil, nil, err
	}
	return normalizedIPCTable(o, def.labels, res)
}

// normalizedIPCTable builds a per-app table of IPCs normalized to the
// first model, appending the geomean row, and returns the geomeans.
func normalizedIPCTable(o Options, names []string, res map[string][]Result) (*stats.Table, map[string]float64, error) {
	header := append([]string{"app"}, names...)
	t := stats.NewTable(header...)
	perModel := make([][]float64, len(names))
	for _, app := range o.apps() {
		rs := res[app]
		base := rs[0].IPC
		row := make([]interface{}, 0, len(names)+1)
		row = append(row, app)
		for i := range names {
			norm := stats.Ratio(rs[i].IPC, base)
			row = append(row, norm)
			perModel[i] = append(perModel[i], norm)
		}
		t.AddRow(row...)
	}
	geo := map[string]float64{}
	geoRow := []interface{}{"geomean"}
	for i, n := range names {
		g := stats.Geomean(perModel[i])
		geo[n] = g
		geoRow = append(geoRow, g)
	}
	t.AddRow(geoRow...)
	return t, geo, nil
}

// Fig7Summary carries Figure 7's aggregates.
type Fig7Summary struct {
	// Geomean IPC normalized to ConV[32,14], and mean register
	// allocations per cycle, per renaming scheme.
	NormIPC     map[string]float64
	AllocsPerKC map[string]float64 // allocations per 1000 cycles
	// Issue-rate breakdown for ConD (fractions of committed instructions).
	SpecMem, SpecNonMem, Mem, NonMem float64
}

// Fig7 reproduces Figure 7: conventional vs conditional renaming.
func Fig7(o Options) (*stats.Table, Fig7Summary, error) {
	conv := func(intN, fpN int) *core.Config {
		c := core.DefaultConfig()
		c.Renaming = core.RenameConventional
		c.IntPRF, c.FPPRF = intN, fpN
		return &c
	}
	cond := core.DefaultConfig()
	names := []string{"ConV[32,14]", "ConD[32,14]", "ConV[48,24]"}
	res, err := runMatrix(o, func(string) []Spec {
		return []Spec{
			{Model: ModelCASINO, CasinoCfg: conv(32, 14)},
			{Model: ModelCASINO, CasinoCfg: &cond},
			{Model: ModelCASINO, CasinoCfg: conv(48, 24)},
		}
	})
	if err != nil {
		return nil, Fig7Summary{}, err
	}
	t := stats.NewTable("app", "ConV[32,14] IPC", "ConD[32,14] IPC", "ConV[48,24] IPC",
		"ConV allocs/kc", "ConD allocs/kc")
	sum := Fig7Summary{NormIPC: map[string]float64{}, AllocsPerKC: map[string]float64{}}
	perModel := make([][]float64, 3)
	allocs := make([][]float64, 3)
	var sm, snm, m, nm, tot float64
	for _, app := range o.apps() {
		rs := res[app]
		base := rs[0].IPC
		row := []interface{}{app}
		for i := 0; i < 3; i++ {
			row = append(row, rs[i].IPC)
			perModel[i] = append(perModel[i], stats.Ratio(rs[i].IPC, base))
			allocs[i] = append(allocs[i], 1000*stats.Ratio(rs[i].Extra["regAllocs"], float64(rs[i].Cycles)))
		}
		row = append(row, 1000*stats.Ratio(rs[0].Extra["regAllocs"], float64(rs[0].Cycles)))
		row = append(row, 1000*stats.Ratio(rs[1].Extra["regAllocs"], float64(rs[1].Cycles)))
		t.AddRow(row...)
		sm += rs[1].Extra["siqMem"]
		snm += rs[1].Extra["siqNonMem"]
		m += rs[1].Extra["iqMem"]
		nm += rs[1].Extra["iqNonMem"]
	}
	tot = sm + snm + m + nm // fractions of all issues (warm-up included)
	for i, n := range names {
		sum.NormIPC[n] = stats.Geomean(perModel[i])
		sum.AllocsPerKC[n] = stats.Mean(allocs[i])
	}
	if tot > 0 {
		sum.SpecMem, sum.SpecNonMem, sum.Mem, sum.NonMem = sm/tot, snm/tot, m/tot, nm/tot
	}
	return t, sum, nil
}

// Fig8Summary carries Figure 8's aggregates, normalized to the fully-OoO
// (16-entry LQ) baseline.
type Fig8Summary struct {
	// Activity counts per 1k instructions.
	LQReads, LQWrites, LQSearches map[string]float64
	SQSearches                    map[string]float64
	// Geomean IPC and energy efficiency normalized to Fully OoO.
	NormIPC, NormEff map[string]float64
}

// Fig8 reproduces Figure 8: memory disambiguation schemes.
func Fig8(o Options) (*stats.Table, Fig8Summary, error) {
	casino := func(d core.DisambigMode, osca int) *core.Config {
		c := core.DefaultConfig()
		c.Disambig = d
		c.OSCASize = osca
		return &c
	}
	names := []string{"FullyOoO-LQ", "AGI-Ordering", "NoLQ", "NoLQ+OSCA"}
	res, err := runMatrix(o, func(string) []Spec {
		return []Spec{
			// The baseline is CASINO with a conventional 16-entry LQ
			// (§VI-C: "Fully OoO with 16-entry LQ").
			{Model: ModelCASINO, CasinoCfg: casino(core.DisambigFullLQ, 0)},
			{Model: ModelCASINO, CasinoCfg: casino(core.DisambigAGIOrder, 0)},
			{Model: ModelCASINO, CasinoCfg: casino(core.DisambigNoLQ, 0)},
			{Model: ModelCASINO, CasinoCfg: casino(core.DisambigOSCA, 64)},
		}
	})
	if err != nil {
		return nil, Fig8Summary{}, err
	}
	sum := Fig8Summary{
		LQReads: map[string]float64{}, LQWrites: map[string]float64{}, LQSearches: map[string]float64{},
		SQSearches: map[string]float64{}, NormIPC: map[string]float64{}, NormEff: map[string]float64{},
	}
	t := stats.NewTable("scheme", "LQ R/ki", "LQ W/ki", "LQ S/ki", "SQ S/ki", "norm IPC", "norm perf/energy")
	perIPC := make([][]float64, len(names))
	perEff := make([][]float64, len(names))
	agg := make([]map[string]float64, len(names))
	for i := range agg {
		agg[i] = map[string]float64{}
	}
	var instr float64
	for _, app := range o.apps() {
		rs := res[app]
		for i := range names {
			agg[i]["lqR"] += rs[i].Extra["lqReads"]
			agg[i]["lqW"] += rs[i].Extra["lqWrites"]
			agg[i]["lqS"] += rs[i].Extra["lqSearches"]
			agg[i]["sqS"] += rs[i].Extra["sqSearches"]
			perIPC[i] = append(perIPC[i], stats.Ratio(rs[i].IPC, rs[0].IPC))
			perEff[i] = append(perEff[i], stats.Ratio(rs[i].PerfPerEnergy, rs[0].PerfPerEnergy))
		}
		instr += float64(rs[0].Instructions)
	}
	for i, n := range names {
		ki := instr / 1000
		sum.LQReads[n] = stats.Ratio(agg[i]["lqR"], ki)
		sum.LQWrites[n] = stats.Ratio(agg[i]["lqW"], ki)
		sum.LQSearches[n] = stats.Ratio(agg[i]["lqS"], ki)
		sum.SQSearches[n] = stats.Ratio(agg[i]["sqS"], ki)
		sum.NormIPC[n] = stats.Geomean(perIPC[i])
		sum.NormEff[n] = stats.Geomean(perEff[i])
		t.AddRow(n, sum.LQReads[n], sum.LQWrites[n], sum.LQSearches[n], sum.SQSearches[n],
			sum.NormIPC[n], sum.NormEff[n])
	}
	return t, sum, nil
}

// Fig9Summary carries Figure 9's aggregates normalized to InO.
type Fig9Summary struct {
	NormArea   map[string]float64
	NormEnergy map[string]float64
}

// Fig9 reproduces Figure 9: core area and energy consumption for InO,
// CASINO, OoO and OoO+NoLQ.
func Fig9(o Options) (*stats.Table, Fig9Summary, error) {
	names := []string{"InO", "CASINO", "OoO", "OoO+NoLQ"}
	res, err := runMatrix(o, func(string) []Spec {
		return []Spec{
			{Model: ModelInO},
			{Model: ModelCASINO},
			{Model: ModelOoO},
			{Model: ModelOoONoLQ},
		}
	})
	if err != nil {
		return nil, Fig9Summary{}, err
	}
	sum := Fig9Summary{NormArea: map[string]float64{}, NormEnergy: map[string]float64{}}
	energyTot := make([]float64, len(names))
	var area [4]float64
	for _, app := range o.apps() {
		for i := range names {
			energyTot[i] += res[app][i].TotalPJ
			area[i] = res[app][i].AreaMM2
		}
	}
	t := stats.NewTable("core", "area mm2", "norm area", "norm energy")
	for i, n := range names {
		sum.NormArea[n] = stats.Ratio(area[i], area[0])
		sum.NormEnergy[n] = stats.Ratio(energyTot[i], energyTot[0])
		t.AddRow(n, area[i], sum.NormArea[n], sum.NormEnergy[n])
	}
	return t, sum, nil
}

// Fig10a reproduces Figure 10a: IQ size sweep with the committed-issue
// breakdown (S-Issue vs Issue). Returns size -> (normIPC, sIssueFrac).
func Fig10a(o Options, sizes []int) (*stats.Table, map[int][2]float64, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 8, 12, 16, 20}
	}
	res, err := runMatrix(o, func(string) []Spec {
		specs := make([]Spec, len(sizes))
		for i, sz := range sizes {
			cfg := core.DefaultConfig()
			cfg.IQSize = sz
			// "Unlimited other resources" for the sweep.
			cfg.ROBSize = 256
			cfg.SQSize = 64
			cfg.IntPRF, cfg.FPPRF = 256, 128
			cfg.DataBufSize = 64
			specs[i] = Spec{Model: ModelCASINO, CasinoCfg: &cfg}
		}
		return specs
	})
	if err != nil {
		return nil, nil, err
	}
	out := map[int][2]float64{}
	t := stats.NewTable("IQ size", "norm IPC", "S-Issue frac")
	var baseIPC []float64
	for _, app := range o.apps() {
		baseIPC = append(baseIPC, res[app][0].IPC)
	}
	_ = baseIPC
	for i, sz := range sizes {
		var norm, sfrac []float64
		for _, app := range o.apps() {
			norm = append(norm, stats.Ratio(res[app][i].IPC, res[app][0].IPC))
			sfrac = append(sfrac, res[app][i].Extra["siqFrac"])
		}
		g := stats.Geomean(norm)
		f := stats.Mean(sfrac)
		out[sz] = [2]float64{g, f}
		t.AddRow(sz, g, f)
	}
	return t, out, nil
}

// Fig10b reproduces Figure 10b: the SpecInO[WS,SO] sweep on the CASINO
// core. Returns "[w,s]" -> geomean IPC normalized to [1,1].
func Fig10b(o Options) (*stats.Table, map[string]float64, error) {
	type pt struct{ ws, so int }
	pts := []pt{{1, 1}, {2, 1}, {2, 2}, {3, 1}, {3, 2}, {4, 1}, {4, 2}, {4, 4}}
	res, err := runMatrix(o, func(string) []Spec {
		specs := make([]Spec, len(pts))
		for i, p := range pts {
			cfg := core.DefaultConfig()
			cfg.WS, cfg.SO = p.ws, p.so
			specs[i] = Spec{Model: ModelCASINO, CasinoCfg: &cfg}
		}
		return specs
	})
	if err != nil {
		return nil, nil, err
	}
	out := map[string]float64{}
	t := stats.NewTable("[WS,SO]", "geomean IPC norm to [1,1]")
	for i, p := range pts {
		var norm []float64
		for _, app := range o.apps() {
			norm = append(norm, stats.Ratio(res[app][i].IPC, res[app][0].IPC))
		}
		key := fmt.Sprintf("[%d,%d]", p.ws, p.so)
		out[key] = stats.Geomean(norm)
		t.AddRow(key, out[key])
	}
	return t, out, nil
}

// Fig11Summary holds per-width normalized performance and efficiency.
type Fig11Summary struct {
	// NormIPC and NormEff are indexed [model][width]; normalized to the
	// 2-wide InO.
	NormIPC map[string]map[int]float64
	NormEff map[string]map[int]float64
}

// Fig11 reproduces Figure 11: 2/3/4-wide InO, CASINO and OoO.
func Fig11(o Options) (*stats.Table, Fig11Summary, error) {
	widths := []int{2, 3, 4}
	mkInO := func(w int) *ino.Config {
		c := ino.DefaultConfig()
		scale := 1
		if w == 3 {
			scale = 2
		}
		if w >= 4 {
			scale = 4
		}
		c.Width = w
		c.IQSize *= scale
		c.SCBSize *= scale
		c.SBSize *= scale
		return &c
	}
	var specs []Spec
	var labels []string
	for _, w := range widths {
		ic := mkInO(w)
		cc := core.WideConfig(w)
		oc := ooo.WideConfig(w)
		specs = append(specs,
			Spec{Model: ModelInO, InOCfg: ic},
			Spec{Model: ModelCASINO, CasinoCfg: &cc},
			Spec{Model: ModelOoO, OoOCfg: &oc},
		)
		labels = append(labels,
			fmt.Sprintf("InO-%dw", w), fmt.Sprintf("CASINO-%dw", w), fmt.Sprintf("OoO-%dw", w))
	}
	res, err := runMatrix(o, func(string) []Spec { return specs })
	if err != nil {
		return nil, Fig11Summary{}, err
	}
	sum := Fig11Summary{NormIPC: map[string]map[int]float64{}, NormEff: map[string]map[int]float64{}}
	for _, m := range []string{"InO", "CASINO", "OoO"} {
		sum.NormIPC[m] = map[int]float64{}
		sum.NormEff[m] = map[int]float64{}
	}
	t := stats.NewTable("config", "norm IPC", "norm perf/energy")
	for i, lbl := range labels {
		var nIPC, nEff []float64
		for _, app := range o.apps() {
			base := res[app][0] // 2-wide InO
			nIPC = append(nIPC, stats.Ratio(res[app][i].IPC, base.IPC))
			nEff = append(nEff, stats.Ratio(res[app][i].PerfPerEnergy, base.PerfPerEnergy))
		}
		gI, gE := stats.Geomean(nIPC), stats.Geomean(nEff)
		model := []string{"InO", "CASINO", "OoO"}[i%3]
		width := widths[i/3]
		sum.NormIPC[model][width] = gI
		sum.NormEff[model][width] = gE
		t.AddRow(lbl, gI, gE)
	}
	return t, sum, nil
}

// SectionStats reports the §II-C / §VI-B aggregate statistics: the
// fraction of dynamic instructions issued speculatively, and the mean
// producer distance of passed instructions.
func SectionStats(o Options) (*stats.Table, map[string]float64, error) {
	res, err := runMatrix(o, func(string) []Spec {
		return []Spec{
			{Model: ModelCASINO},
			{Model: ModelSpecInO},
		}
	})
	if err != nil {
		return nil, nil, err
	}
	var siq, dist, specFrac []float64
	t := stats.NewTable("app", "CASINO S-IQ frac", "producer dist", "SpecInO OoO frac")
	for _, app := range o.apps() {
		rs := res[app]
		siq = append(siq, rs[0].Extra["siqFrac"])
		dist = append(dist, rs[0].Extra["producerDist"])
		specFrac = append(specFrac, rs[1].Extra["oooFrac"])
		t.AddRow(app, rs[0].Extra["siqFrac"], rs[0].Extra["producerDist"], rs[1].Extra["oooFrac"])
	}
	out := map[string]float64{
		"casinoSIQFrac":  stats.Mean(siq),
		"producerDist":   stats.Mean(dist),
		"specInOOoOFrac": stats.Mean(specFrac),
	}
	t.AddRow("mean", out["casinoSIQFrac"], out["producerDist"], out["specInOOoOFrac"])
	return t, out, nil
}
