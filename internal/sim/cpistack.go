package sim

import (
	"fmt"

	"casino/internal/ptrace"
	"casino/internal/stats"
)

// CPIStack runs every core model over the selected workloads and renders
// the per-model CPI stack: for each stall-attribution bucket, the fraction
// of all simulated cycles (warm-up included, summed across apps) that the
// model charged to it. Because every cycle lands in exactly one bucket
// (the ptrace.CPI invariant, enforced per run), each row sums to 1 — the
// observability companion to the IPC figures: not just *how fast* each
// scheduling discipline is, but *where* its cycles go.
//
// The second return value maps model label → bucket name → fraction.
func CPIStack(o Options) (*stats.Table, map[string]map[string]float64, error) {
	labels := []string{"InO", "LSC", "Freeway", "CASINO", "OoO", "SpecInO[2,1]"}
	res, err := runMatrix(o, func(string) []Spec {
		return []Spec{
			{Model: ModelInO},
			{Model: ModelLSC},
			{Model: ModelFreeway},
			{Model: ModelCASINO},
			{Model: ModelOoO},
			{Model: ModelSpecInO},
		}
	})
	if err != nil {
		return nil, nil, err
	}

	buckets := ptrace.BucketNames()
	header := append([]string{"model"}, buckets...)
	t := stats.NewTable(header...)
	frac := make(map[string]map[string]float64, len(labels))
	for i, name := range labels {
		var cycles float64
		sums := make([]float64, len(buckets))
		for _, app := range o.apps() {
			r := res[app][i]
			total := r.Extra["cpi.cycles"]
			var sum float64
			for bi, b := range buckets {
				v := r.Extra["cpi."+b]
				sums[bi] += v
				sum += v
			}
			if total == 0 || sum != total {
				return nil, nil, fmt.Errorf("sim: %s/%s CPI stack sums to %.0f of %.0f cycles", name, app, sum, total)
			}
			cycles += total
		}
		frac[name] = make(map[string]float64, len(buckets))
		row := make([]interface{}, 0, len(buckets)+1)
		row = append(row, name)
		for bi, b := range buckets {
			f := stats.Ratio(sums[bi], cycles)
			frac[name][b] = f
			row = append(row, f)
		}
		t.AddRow(row...)
	}
	return t, frac, nil
}
