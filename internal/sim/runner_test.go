package sim

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestRunCellsErrorIsolation: a cell that fails must surface an error
// naming its (app, model) identity, and every sibling cell must still run
// to completion and keep its own result.
func TestRunCellsErrorIsolation(t *testing.T) {
	cells := []Cell{
		{App: "mcf", Model: ModelInO, Index: 0, Spec: Spec{Model: ModelInO, Workload: "mcf", Ops: 2000, Warmup: 500, Seed: 1}},
		{App: "mcf", Model: "no-such-model", Index: 1, Spec: Spec{Model: "no-such-model", Workload: "mcf", Ops: 2000, Warmup: 500, Seed: 1}},
		{App: "milc", Model: ModelInO, Index: 2, Spec: Spec{Model: ModelInO, Workload: "milc", Ops: 2000, Warmup: 500, Seed: 1}},
	}
	results := RunCells(cells, 2, nil, nil)
	if len(results) != len(cells) {
		t.Fatalf("got %d results, want %d", len(results), len(cells))
	}
	if results[1].Err == nil {
		t.Fatalf("bad-model cell did not fail")
	}
	if msg := results[1].Err.Error(); !strings.Contains(msg, "mcf") || !strings.Contains(msg, "no-such-model") {
		t.Errorf("error does not name the (app, model) cell: %q", msg)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("sibling cell %d poisoned: %v", i, results[i].Err)
		}
		if results[i].Result.Instructions == 0 {
			t.Errorf("sibling cell %d has no result", i)
		}
	}
	err := JoinCellErrors(results)
	if err == nil {
		t.Fatal("JoinCellErrors returned nil despite a failed cell")
	}
	if !strings.Contains(err.Error(), "cell (mcf, no-such-model[1])") {
		t.Errorf("joined error missing cell identity: %q", err)
	}
}

// TestRunCellsMoreCellsThanWorkers exercises the bounded pool with far
// more cells than workers (run under -race in CI): positional results,
// serialized onCell callbacks, and an injected runFn.
func TestRunCellsMoreCellsThanWorkers(t *testing.T) {
	const n = 16
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{App: fmt.Sprintf("app%d", i), Model: "fake", Index: i}
	}
	var running, peak, calls atomic.Int64
	seen := map[int]bool{} // onCell is serialized; no extra locking needed
	results := RunCells(cells, 2,
		func(c Cell) (Result, error) {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			defer running.Add(-1)
			if c.Index%5 == 3 {
				return Result{}, errors.New("synthetic failure")
			}
			return Result{Instructions: uint64(c.Index + 1)}, nil
		},
		func(r CellResult) {
			calls.Add(1)
			if seen[r.Cell.Index] {
				t.Errorf("cell %d observed twice", r.Cell.Index)
			}
			seen[r.Cell.Index] = true
		})
	if p := peak.Load(); p > 2 {
		t.Errorf("pool ran %d cells concurrently, want <= 2", p)
	}
	if calls.Load() != n {
		t.Errorf("onCell saw %d cells, want %d", calls.Load(), n)
	}
	for i, r := range results {
		if r.Cell.Index != i {
			t.Fatalf("result %d carries cell %d: not positional", i, r.Cell.Index)
		}
		if i%5 == 3 {
			if r.Err == nil {
				t.Errorf("cell %d: want synthetic failure", i)
			}
			continue
		}
		if r.Err != nil || r.Result.Instructions != uint64(i+1) {
			t.Errorf("cell %d: got (%v, %v)", i, r.Result.Instructions, r.Err)
		}
	}
}
