package sim

import (
	"encoding/json"
	"io"
)

// SuiteResult is the machine-readable form of one experiment suite run:
// the raw per-app results for every spec, keyed by model label. Written by
// ExportJSON for downstream plotting/diffing.
type SuiteResult struct {
	Figure  string              `json:"figure"`
	Options Options             `json:"options"`
	Results map[string][]Result `json:"results"` // app -> per-spec results
	Labels  []string            `json:"labels"`  // spec labels, same order
}

// RunSuiteJSON executes the figure's underlying run matrix and returns the
// raw results for external consumption (plotting scripts, regression
// diffing). Supported figures: fig2, fig6 (the per-app IPC suites).
func RunSuiteJSON(fig string, o Options) (*SuiteResult, error) {
	var labels []string
	var mk func(string) []Spec
	switch fig {
	case "fig2":
		labels = []string{"InO", "SpecInO[2,2]nm", "SpecInO[2,2]", "SpecInO[2,1]nm", "SpecInO[2,1]", "OoO"}
		mk = func(string) []Spec {
			mkc := func(w, so int, nm bool) Spec {
				c := DefaultSpecInO(w, so)
				c.NonMemOnly = nm
				return Spec{Model: ModelSpecInO, SpecInOCfg: &c}
			}
			return []Spec{{Model: ModelInO}, mkc(2, 2, true), mkc(2, 2, false), mkc(2, 1, true), mkc(2, 1, false), {Model: ModelOoO}}
		}
	case "fig6":
		labels = []string{"InO", "LSC", "Freeway", "CASINO", "OoO"}
		mk = func(string) []Spec {
			return []Spec{
				{Model: ModelInO}, {Model: ModelLSC}, {Model: ModelFreeway},
				{Model: ModelCASINO}, {Model: ModelOoO},
			}
		}
	default:
		return nil, errUnknownSuite(fig)
	}
	res, err := runMatrix(o, mk)
	if err != nil {
		return nil, err
	}
	return &SuiteResult{Figure: fig, Options: o, Results: res, Labels: labels}, nil
}

type errUnknownSuite string

func (e errUnknownSuite) Error() string {
	return "sim: no JSON suite for figure " + string(e) + " (supported: fig2, fig6)"
}

// ExportJSON writes the suite result as indented JSON.
func (s *SuiteResult) ExportJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
