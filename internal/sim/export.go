package sim

import (
	"encoding/json"
	"io"
)

// SuiteResult is the machine-readable form of one experiment suite run:
// the raw per-app results for every spec, keyed by model label. Written by
// ExportJSON for downstream plotting/diffing.
type SuiteResult struct {
	Figure  string              `json:"figure"`
	Options Options             `json:"options"`
	Results map[string][]Result `json:"results"` // app -> per-spec results
	Labels  []string            `json:"labels"`  // spec labels, same order
}

// RunSuiteJSON executes the figure's underlying run matrix and returns the
// raw results for external consumption (plotting scripts, regression
// diffing). Supported figures: fig2, fig6 (the per-app IPC suites); the
// spec columns are the same suite definitions the figure tables render.
func RunSuiteJSON(fig string, o Options) (*SuiteResult, error) {
	def, ok := figSuite(fig)
	if !ok {
		return nil, errUnknownSuite(fig)
	}
	res, err := runMatrix(o, def.mk)
	if err != nil {
		return nil, err
	}
	return &SuiteResult{Figure: fig, Options: o, Results: res, Labels: def.labels}, nil
}

type errUnknownSuite string

func (e errUnknownSuite) Error() string {
	return "sim: no JSON suite for figure " + string(e) + " (supported: fig2, fig6)"
}

// ExportJSON writes the suite result as indented JSON.
func (s *SuiteResult) ExportJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
