package sim

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"casino/internal/manifest"
)

// manifestFigures are the figure ids BuildManifest("all", …) covers: every
// evaluation figure with numeric output (Table I is prose-only).
var manifestFigures = []string{"fig2", "fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig11", "stats"}

// ManifestFigures returns the figure ids covered by BuildManifest("all").
func ManifestFigures() []string {
	return append([]string(nil), manifestFigures...)
}

// BuildManifest runs the requested figure (or "all") and returns the
// versioned run manifest: the resolved spec, the fingerprint of every
// workload trace replayed, and the flat metric map the golden-stats CI
// gate diffs. Wall time and allocation totals are recorded for trend
// tracking but never compared.
func BuildManifest(fig string, o Options) (*manifest.Manifest, error) {
	fig = canonicalFigure(fig)
	figs := []string{fig}
	if fig == "all" {
		figs = manifestFigures
	}
	for _, f := range figs {
		if !knownManifestFigure(f) {
			return nil, fmt.Errorf("sim: no manifest for figure %q (known: %v, or 'all')", f, manifestFigures)
		}
	}

	start := time.Now()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)

	m := manifest.New(fig)
	m.Ops = o.Ops
	if m.Ops <= 0 {
		m.Ops = DefaultOps
	}
	m.Warmup = o.Warmup
	if m.Warmup == 0 {
		m.Warmup = DefaultWarmup
	}
	m.Seed = o.Seed
	m.Apps = append([]string(nil), o.apps()...)
	m.GoVersion = runtime.Version()

	for _, app := range o.apps() {
		tr, err := SharedTrace(app, o.traceLen(), o.Seed)
		if err != nil {
			return nil, err
		}
		m.Workloads[app] = fmt.Sprintf("%016x", tr.Fingerprint())
	}

	for _, f := range figs {
		if err := figureMetrics(f, o, m.Metrics); err != nil {
			return nil, fmt.Errorf("sim: manifest %s: %w", f, err)
		}
	}

	runtime.ReadMemStats(&ms1)
	m.WallSeconds = time.Since(start).Seconds()
	m.AllocBytes = ms1.TotalAlloc - ms0.TotalAlloc
	return m, nil
}

// canonicalFigure maps the CLI's short figure aliases ("6", "10a") onto
// the canonical "figN" ids used in manifests.
func canonicalFigure(f string) string {
	if f == "all" || knownManifestFigure(f) {
		return f
	}
	if knownManifestFigure("fig" + f) {
		return "fig" + f
	}
	return f
}

func knownManifestFigure(f string) bool {
	for _, k := range manifestFigures {
		if f == k {
			return true
		}
	}
	return false
}

// metricLabel makes a spec label metric-name friendly (no spaces).
func metricLabel(label string) string {
	return strings.ReplaceAll(label, " ", "_")
}

// figureMetrics runs one figure and flattens its aggregates into out.
func figureMetrics(fig string, o Options, out map[string]float64) error {
	put := func(name string, v float64) { out[fig+"."+name] = v }
	switch fig {
	case "fig2", "fig6":
		return suiteMetrics(fig, o, put)
	case "fig7":
		_, sum, err := Fig7(o)
		if err != nil {
			return err
		}
		putMap(put, "norm_ipc.", sum.NormIPC)
		putMap(put, "allocs_per_kc.", sum.AllocsPerKC)
		put("issue_frac.spec_mem", sum.SpecMem)
		put("issue_frac.spec_non_mem", sum.SpecNonMem)
		put("issue_frac.mem", sum.Mem)
		put("issue_frac.non_mem", sum.NonMem)
	case "fig8":
		_, sum, err := Fig8(o)
		if err != nil {
			return err
		}
		putMap(put, "lq_reads_per_ki.", sum.LQReads)
		putMap(put, "lq_writes_per_ki.", sum.LQWrites)
		putMap(put, "lq_searches_per_ki.", sum.LQSearches)
		putMap(put, "sq_searches_per_ki.", sum.SQSearches)
		putMap(put, "norm_ipc.", sum.NormIPC)
		putMap(put, "norm_perf_per_energy.", sum.NormEff)
	case "fig9":
		_, sum, err := Fig9(o)
		if err != nil {
			return err
		}
		putMap(put, "norm_area.", sum.NormArea)
		putMap(put, "norm_energy.", sum.NormEnergy)
	case "fig10a":
		_, out10, err := Fig10a(o, nil)
		if err != nil {
			return err
		}
		for sz, v := range out10 {
			put(fmt.Sprintf("norm_ipc.iq%d", sz), v[0])
			put(fmt.Sprintf("s_issue_frac.iq%d", sz), v[1])
		}
	case "fig10b":
		_, out10, err := Fig10b(o)
		if err != nil {
			return err
		}
		putMap(put, "norm_ipc.", out10)
	case "fig11":
		_, sum, err := Fig11(o)
		if err != nil {
			return err
		}
		for model, byWidth := range sum.NormIPC {
			for w, v := range byWidth {
				put(fmt.Sprintf("norm_ipc.%s.%dw", metricLabel(model), w), v)
			}
		}
		for model, byWidth := range sum.NormEff {
			for w, v := range byWidth {
				put(fmt.Sprintf("norm_perf_per_energy.%s.%dw", metricLabel(model), w), v)
			}
		}
	case "stats":
		_, sum, err := SectionStats(o)
		if err != nil {
			return err
		}
		putMap(put, "", sum)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func putMap(put func(string, float64), prefix string, m map[string]float64) {
	for k, v := range m {
		put(prefix+metricLabel(k), v)
	}
}

// suiteMetrics covers the per-app IPC suites (fig2/fig6): the normalized
// geomean per model — the paper's headline speedups — plus, per model
// label, the across-app mean of every per-run registry metric (occupancy
// means, stall counters, structure activity). The latter is what lets the
// golden gate name the internal counter that moved, not just the IPC it
// moved.
func suiteMetrics(fig string, o Options, put func(string, float64)) error {
	def, _ := figSuite(fig)
	res, err := runMatrix(o, def.mk)
	if err != nil {
		return err
	}
	_, geo, err := normalizedIPCTable(o, def.labels, res)
	if err != nil {
		return err
	}
	for label, g := range geo {
		put("norm_ipc_geomean."+metricLabel(label), g)
	}
	apps := o.apps()
	for i, label := range def.labels {
		agg := map[string]float64{}
		cnt := map[string]int{}
		for _, app := range apps {
			r := res[app][i]
			agg["ipc"] += r.IPC
			cnt["ipc"]++
			agg["energy_per_inst_pj"] += r.EnergyPerInst
			cnt["energy_per_inst_pj"]++
			for k, v := range r.Extra {
				agg[k] += v
				cnt[k]++
			}
		}
		names := make([]string, 0, len(agg))
		for k := range agg {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			put(fmt.Sprintf("mean.%s.%s", metricLabel(label), k), agg[k]/float64(cnt[k]))
		}
	}
	return nil
}
