// Package sim is the experiment harness: it builds any of the repository's
// core models over a generated workload, runs a warm-up window followed by
// a measurement window, and collects timing, energy and activity results.
// The per-figure experiment drivers in experiments.go regenerate every
// table and figure of the paper's evaluation.
package sim

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"casino/internal/bpred"
	"casino/internal/core"
	"casino/internal/energy"
	"casino/internal/eventq"
	"casino/internal/ino"
	"casino/internal/mem"
	"casino/internal/ooo"
	"casino/internal/ptrace"
	"casino/internal/slice"
	"casino/internal/specino"
	"casino/internal/stats"
	"casino/internal/trace"
)

// noFFEnv caches the CASINO_NO_FASTFORWARD kill switch at process start:
// Run is on the hot path of every figure sweep and must not re-read the
// environment per run. Tests flip the variable directly (with a restore).
var noFFEnv = os.Getenv("CASINO_NO_FASTFORWARD") != ""

// Model names accepted by Spec.Model.
const (
	ModelInO     = "ino"
	ModelOoO     = "ooo"
	ModelOoONoLQ = "ooo-nolq"
	ModelCASINO  = "casino"
	ModelLSC     = "lsc"
	ModelFreeway = "freeway"
	ModelSpecInO = "specino"
)

// DefaultSpecInO returns the SpecInO[ws,so] limit-study configuration
// (convenience re-export for suite builders).
func DefaultSpecInO(ws, so int) specino.Config { return specino.DefaultConfig(ws, so) }

// Models lists every runnable model name.
func Models() []string {
	return []string{ModelInO, ModelOoO, ModelOoONoLQ, ModelCASINO, ModelLSC, ModelFreeway, ModelSpecInO}
}

// Core is the clock-steppable interface every model implements.
type Core interface {
	Cycle()
	Now() int64
	Committed() uint64
	Done() bool
}

// pipeTracer is the observability interface every repository model
// implements: SetPipeTrace installs a pipeline-event recorder (nil turns
// tracing off) and CPIStack exposes the per-cycle stall attribution.
type pipeTracer interface {
	SetPipeTrace(*ptrace.Recorder)
	CPIStack() *ptrace.CPI
}

// eventDriven is the optional event-driven clock interface a core may
// implement (all five repository models do). NextWake returns the earliest
// cycle >= Now() at which the core might make progress — an O(1) consult of
// the model's shared wakeup queue plus its streaming pre-checks, never a
// scheduler scan. FastForward runs one real Cycle() and, if it proved idle,
// jumps the clock toward `to` with exact batched accounting, returning
// false when the cycle changed state and stands as a normal cycle.
// WakeStats exposes the wakeup queue's activity counters for the run
// manifest, and ProgressSignature folds the model's progress counters into
// one value — the driver consults the queue only after a cycle whose
// signature did not move, which is what makes jump attempts almost never
// bail (see DESIGN.md, "Clock & event model").
type eventDriven interface {
	NextWake() int64
	FastForward(to int64) bool
	WakeStats() eventq.Stats
	ProgressSignature() uint64
}

// simulatedCycles accumulates the total simulated cycles (including
// fast-forwarded ones) across every Run in the process, letting tools
// report cycles-per-second throughput without threading state through.
var simulatedCycles atomic.Uint64

// SimulatedCycles returns the process-wide total of simulated core cycles.
func SimulatedCycles() uint64 { return simulatedCycles.Load() }

// Spec describes one run.
type Spec struct {
	Model    string
	Workload string
	Ops      int // measured instructions
	Warmup   int // instructions before measurement starts
	Seed     int64

	// Optional per-model configuration overrides (nil = Table I default).
	CasinoCfg  *core.Config
	OoOCfg     *ooo.Config
	InOCfg     *ino.Config
	SliceCfg   *slice.Config
	SpecInOCfg *specino.Config
	MemCfg     *mem.Config

	// Reuse a pre-generated trace (takes precedence over Workload/Seed).
	// The trace may be shared with concurrent runs: it is read-only once
	// handed to Run (see the trace package's read-only contract).
	Trace *trace.Trace

	// DisableFastForward forces cycle-by-cycle simulation even for cores
	// that implement the event-horizon interface. The CASINO_NO_FASTFORWARD
	// environment variable has the same effect (useful for A/B timing and
	// the determinism test). Results must be bit-identical either way.
	DisableFastForward bool

	// TraceSink, when non-nil, receives the run's pipeline events (see the
	// ptrace package) filtered through TraceWindow. An active sink implies
	// DisableFastForward: fast-forward skips provably idle cycles, and a
	// tracing run wants to observe those cycles, not summarize them. Run
	// does not close the sink; the caller owns its lifecycle.
	TraceSink   ptrace.Sink
	TraceWindow ptrace.Window

	// Sampling, when non-nil, switches the run to sampled simulation:
	// short detailed windows alternating with functional-warming gaps (see
	// sampling.go). Strictly opt-in — every nil-Sampling run behaves
	// bit-identically to a build without this feature.
	Sampling *Sampling
}

// Result is the outcome of one measured run.
type Result struct {
	Model        string
	Workload     string
	Instructions uint64
	Cycles       uint64
	IPC          float64

	DynamicPJ float64
	StaticPJ  float64
	TotalPJ   float64
	AreaMM2   float64
	// EnergyPerInst is pJ per committed instruction.
	EnergyPerInst float64
	// PerfPerEnergy is the paper's energy-efficiency metric
	// (performance/energy): IPC per nJ-per-instruction.
	PerfPerEnergy float64

	// Extra is the flattened metrics-registry snapshot: every counter,
	// ratio and histogram summary the model and the energy accountant
	// published for this run (whole-run totals, warm-up included).
	// Histograms appear as <name>.mean / <name>.count pairs.
	Extra map[string]float64

	// Metrics is the typed view of the same registry snapshot, in
	// publish order.
	Metrics []stats.Metric `json:"Metrics,omitempty"`

	// EnergyParts and AreaParts break the totals down per structure /
	// fixed block (the data behind the paper's stacked bars in Fig. 9).
	EnergyParts map[string]float64
	AreaParts   map[string]float64

	// Sampled carries the sampled-mode window statistics and confidence
	// interval; nil for full-fidelity runs.
	Sampled *SampledStats `json:"Sampled,omitempty"`
}

// DefaultOps and DefaultWarmup scale the paper's 300M-SimPoint regions to
// laptop runtimes; the reported shapes are stable above ~50k measured ops.
const (
	DefaultOps    = 60000
	DefaultWarmup = 15000
)

// Run executes one spec and returns its result.
func Run(s Spec) (Result, error) {
	if s.Ops <= 0 {
		s.Ops = DefaultOps
	}
	if s.Warmup < 0 {
		s.Warmup = 0
	}
	if s.Sampling != nil {
		return runSampled(s)
	}
	tr := s.Trace
	if tr == nil {
		// Resolve through the process-wide cache: repeated runs of the
		// same (workload, length, seed) — every figure sweep — share one
		// generated trace. Traces are read-only once published (see the
		// trace package contract), so sharing across goroutines is safe.
		var err error
		tr, err = SharedTrace(s.Workload, s.Warmup+s.Ops, s.Seed)
		if err != nil {
			return Result{}, err
		}
	}
	memCfg := mem.DefaultConfig()
	if s.MemCfg != nil {
		memCfg = *s.MemCfg
	}
	hier := getHierarchy(memCfg)
	acct := energy.NewAccountant()

	c, publish, err := build(s, tr, 0, nil, hier, acct)
	if err != nil {
		return Result{}, err
	}

	target := uint64(s.Warmup + s.Ops)
	if target > uint64(tr.Len()) {
		target = uint64(tr.Len())
	}
	warm := uint64(s.Warmup)
	if warm > target {
		warm = target
	}

	var cyc0 int64
	var dyn0 float64
	ev, _ := c.(eventDriven)
	if s.DisableFastForward || noFFEnv {
		ev = nil
	}
	if s.TraceSink != nil {
		pt, ok := c.(pipeTracer)
		if !ok {
			return Result{}, fmt.Errorf("sim: model %q does not support pipeline tracing", s.Model)
		}
		pt.SetPipeTrace(ptrace.NewRecorder(s.TraceSink, s.TraceWindow))
		ev = nil // trace every cycle; the event engine would elide the idle ones
	}
	ffJumps, ffSkipped := drive(c, ev, warm, target, func() {
		cyc0 = c.Now()
		dyn0 = acct.DynamicEnergy()
	})
	if c.Committed() < target && !c.Done() {
		return Result{}, fmt.Errorf("sim: %s/%s exceeded cycle cap at %d committed", s.Model, tr.Name, c.Committed())
	}

	if pt, ok := c.(pipeTracer); ok {
		// CPI-stack invariant: every simulated cycle (fast-forwarded ones
		// included) attributed to exactly one bucket.
		if err := pt.CPIStack().Check(uint64(c.Now())); err != nil {
			return Result{}, fmt.Errorf("sim: %s/%s: %w", s.Model, tr.Name, err)
		}
	}
	simulatedCycles.Add(uint64(c.Now()))
	cycles := uint64(c.Now() - cyc0)
	instrs := c.Committed() - warm
	dyn := acct.DynamicEnergy() - dyn0
	static := acct.StaticEnergyOver(cycles)
	reg := stats.NewRegistry()
	publish(reg)
	acct.PublishMetrics(reg)
	reg.Counter("ff.jumps", ffJumps)
	reg.Counter("ff.skipped_cycles", ffSkipped)
	reg.SetRatio("ff.coverage", float64(ffSkipped), float64(c.Now()))
	if ev != nil {
		es := ev.WakeStats()
		reg.Counter("evq.wakeups", es.Wakeups)
		reg.Counter("evq.coalesced", es.Coalesced)
		reg.Counter("evq.batched_cycles", ffSkipped)
		reg.Counter("evq.heap_max", uint64(es.HeapMax))
	}
	res := Result{
		Model:        s.Model,
		Workload:     tr.Name,
		Instructions: instrs,
		Cycles:       cycles,
		DynamicPJ:    dyn,
		StaticPJ:     static,
		TotalPJ:      dyn + static,
		AreaMM2:      acct.Area(),
		Extra:        reg.Flatten(),
		Metrics:      reg.Metrics(),
		EnergyParts:  acct.EnergyBreakdown(),
		AreaParts:    acct.AreaBreakdown(),
	}
	if cycles > 0 {
		res.IPC = float64(instrs) / float64(cycles)
	}
	if instrs > 0 {
		res.EnergyPerInst = res.TotalPJ / float64(instrs)
	}
	if res.EnergyPerInst > 0 {
		res.PerfPerEnergy = res.IPC / (res.EnergyPerInst / 1000) // IPC per nJ/inst
	}
	// Everything the result needs has been snapshotted: recycle the run's
	// pooled state so sweep shards and figure matrices stop re-allocating
	// (and re-GCing) cache arrays and predictor tables per cell.
	if r, ok := c.(recycler); ok {
		r.Recycle()
	}
	putHierarchy(hier)
	return res, nil
}

// cycleCap bounds any single drive loop: a run (or sampled window) that has
// not reached its commit target by then is reported as an error, not spun
// forever.
const cycleCap = 400_000_000

// drive is the shared clock loop: it steps c until target micro-ops have
// committed (or the core drains, or the cycle cap is hit), calling snap
// exactly once when the committed count first reaches warm — the
// measurement-window snapshot. It returns the fast-forward accounting.
// Both the full-fidelity Run and each sampled detailed window use it, so
// the event-driven gating below behaves identically in both modes.
func drive(c Core, ev eventDriven, warm, target uint64, snap func()) (ffJumps, ffSkipped uint64) {
	snapped := warm == 0
	if snapped {
		snap()
	}
	var lastSig uint64
	sigValid := false
	lastCommitted := ^uint64(0) // != Committed(): never consult before the first cycle
	for c.Now() < cycleCap && !c.Done() && c.Committed() < target {
		if !snapped && c.Committed() >= warm {
			snap()
			snapped = true
		}
		// Only consult the wakeup queue after a cycle whose progress
		// signature did not move — while work flows, per-cycle stepping is
		// the common case and even an O(1) consult would be pure overhead.
		// The gate is two-level: the commit counter (one load) filters the
		// busy stretches, and the full signature is computed only across
		// commit-free cycles. After a fully idle cycle, every state change
		// the next cycles could make is announced on the queue (or caught by
		// NextWake's streaming pre-checks), so when the next wake lies
		// beyond the next cycle, FastForward runs that one cycle itself and
		// jumps across the proven-idle gap — the loop must not also step it.
		if ev != nil {
			if c.Committed() != lastCommitted {
				lastCommitted = c.Committed()
				sigValid = false
			} else if sig := ev.ProgressSignature(); !sigValid || sig != lastSig {
				lastSig, sigValid = sig, true
			} else if to := ev.NextWake(); to > c.Now()+1 {
				if to > cycleCap {
					to = cycleCap
				}
				// On a bail the embedded cycle changed the signature;
				// lastSig keeps its pre-cycle value, so the next iteration's
				// comparison fails once and steps normally.
				before := c.Now()
				if ev.FastForward(to) {
					if skipped := uint64(c.Now() - before - 1); skipped > 0 {
						ffJumps++
						ffSkipped += skipped
					}
				}
				continue
			}
		}
		c.Cycle()
	}
	if !snapped {
		snap()
	}
	return ffJumps, ffSkipped
}

// recycler is implemented by models that can return pooled resources at
// end of run.
type recycler interface{ Recycle() }

// hierPool recycles memory hierarchies across runs. Hierarchy.Reset
// restores exactly the fresh-constructed state (covered by the mem
// package's Reset tests and this package's golden gating), so a recycled
// hierarchy is indistinguishable from a new one. Specs with a
// non-default memory configuration simply miss and rebuild.
var hierPool sync.Pool

func getHierarchy(cfg mem.Config) *mem.Hierarchy {
	if v := hierPool.Get(); v != nil {
		h := v.(*mem.Hierarchy)
		if h.Config() == cfg {
			h.Reset()
			return h
		}
	}
	return mem.NewHierarchy(cfg)
}

func putHierarchy(h *mem.Hierarchy) { hierPool.Put(h) }

// build constructs the model and returns it plus the publisher that
// snapshots its counters and histograms into a metrics registry after the
// run. Legacy LQ alias metrics are kept for the disambiguation figures:
// CASINO's and OoO's load-queue activity lives in the energy accountant
// (the structure only exists in some configurations), so build bridges it
// under the historical lqReads/lqWrites/lqSearches names.
// build constructs at trace position start with an injected predictor
// (nil = fresh): the sampled driver opens detailed windows mid-trace with
// the shared warmed predictor; full-fidelity runs pass (0, nil).
func build(s Spec, tr *trace.Trace, start int, pred *bpred.Predictor, hier *mem.Hierarchy, acct *energy.Accountant) (Core, func(*stats.Registry), error) {
	lqAliases := func(r *stats.Registry) {
		r.Counter("lqReads", acct.CountByName("LQ", energy.Read))
		r.Counter("lqWrites", acct.CountByName("LQ", energy.Write))
		r.Counter("lqSearches", acct.CountByName("LQ", energy.Search))
	}
	switch s.Model {
	case ModelInO:
		cfg := ino.DefaultConfig()
		if s.InOCfg != nil {
			cfg = *s.InOCfg
		}
		c := ino.NewAt(cfg, tr, start, pred, hier, acct)
		return c, c.PublishMetrics, nil
	case ModelOoO, ModelOoONoLQ:
		cfg := ooo.DefaultConfig()
		if s.OoOCfg != nil {
			cfg = *s.OoOCfg
		}
		if s.Model == ModelOoONoLQ {
			cfg.NoLQ = true
		}
		c := ooo.NewAt(cfg, tr, start, pred, hier, acct)
		return c, func(r *stats.Registry) {
			c.PublishMetrics(r)
			lqAliases(r)
			r.Counter("sqSearches", acct.CountByName("SQ", energy.Search))
		}, nil
	case ModelCASINO:
		cfg := core.DefaultConfig()
		if s.CasinoCfg != nil {
			cfg = *s.CasinoCfg
		}
		c := core.NewAt(cfg, tr, start, pred, hier, acct)
		return c, func(r *stats.Registry) {
			c.PublishMetrics(r)
			lqAliases(r)
		}, nil
	case ModelLSC, ModelFreeway:
		kind := slice.LSC
		if s.Model == ModelFreeway {
			kind = slice.Freeway
		}
		cfg := slice.DefaultConfig(kind)
		if s.SliceCfg != nil {
			cfg = *s.SliceCfg
		}
		c := slice.NewAt(cfg, tr, start, pred, hier, acct)
		return c, c.PublishMetrics, nil
	case ModelSpecInO:
		cfg := specino.DefaultConfig(2, 1)
		if s.SpecInOCfg != nil {
			cfg = *s.SpecInOCfg
		}
		c := specino.NewAt(cfg, tr, start, pred, hier, acct)
		return c, c.PublishMetrics, nil
	default:
		return nil, nil, fmt.Errorf("sim: unknown model %q (known: %v)", s.Model, Models())
	}
}
