package sim

import (
	"fmt"
	"testing"

	"casino/internal/ptrace"
)

// TestTraceSinkDisablesFastForward is the regression test for the
// pipeview+fast-forward interaction: a run with an active trace sink must
// simulate every cycle itself (no event-horizon jumps), otherwise the sink
// would see a run with its idle cycles silently elided.
func TestTraceSinkDisablesFastForward(t *testing.T) {
	spec := Spec{Model: ModelCASINO, Workload: "mcf", Ops: 4000, Warmup: 500, Seed: 3}

	plain, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Extra["ff.jumps"] == 0 {
		t.Fatalf("baseline run took no fast-forward jumps; the test needs an FF-active workload")
	}

	var stalls uint64
	spec.TraceSink = ptrace.SinkFunc(func(e ptrace.Event) {
		if e.Kind == ptrace.KindStall {
			stalls++
		}
	})
	traced, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := traced.Extra["ff.jumps"]; got != 0 {
		t.Errorf("traced run took %v fast-forward jumps, want 0", got)
	}
	// Every non-commit cycle publishes exactly one stall event, so the sink
	// must have observed the idle cycles FF would have skipped.
	wantStalls := traced.Extra["cpi.cycles"] - traced.Extra["cpi.base"]
	if float64(stalls) != wantStalls {
		t.Errorf("sink saw %d stall events, want %v (cpi.cycles - cpi.base)", stalls, wantStalls)
	}
}

// TestTraceSinkMetricsUnperturbed checks the observer effect is zero: a
// run with a sink attached produces bit-identical metrics to the same run
// without one (fast-forward disabled on both, since a sink implies it).
func TestTraceSinkMetricsUnperturbed(t *testing.T) {
	spec := Spec{Model: ModelCASINO, Workload: "astar", Ops: 3000, Warmup: 500, Seed: 1,
		DisableFastForward: true}
	base, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.TraceSink = ptrace.SinkFunc(func(ptrace.Event) {})
	traced, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != traced.Cycles || base.Instructions != traced.Instructions {
		t.Fatalf("cycles/instructions changed under tracing: %d/%d vs %d/%d",
			base.Cycles, base.Instructions, traced.Cycles, traced.Instructions)
	}
	if len(base.Extra) != len(traced.Extra) {
		t.Fatalf("metric count changed under tracing: %d vs %d", len(base.Extra), len(traced.Extra))
	}
	for k, v := range base.Extra {
		if tv, ok := traced.Extra[k]; !ok || tv != v {
			t.Errorf("metric %s changed under tracing: %v vs %v", k, v, tv)
		}
	}
	if base.TotalPJ != traced.TotalPJ {
		t.Errorf("energy changed under tracing: %v vs %v", base.TotalPJ, traced.TotalPJ)
	}
}

// TestCPIStackSumsToCycles is the CPI-stack soundness property across all
// models, workloads of different character, and both clocking schemes:
// every simulated cycle is attributed to exactly one bucket (the in-run
// Check enforces sum == total), and fast-forwarding must not change the
// attribution by a single cycle.
func TestCPIStackSumsToCycles(t *testing.T) {
	t.Parallel()
	for _, wl := range []string{"mcf", "hmmer", "xalancbmk"} {
		for _, model := range Models() {
			wl, model := wl, model
			t.Run(fmt.Sprintf("%s/%s", model, wl), func(t *testing.T) {
				t.Parallel()
				spec := Spec{Model: model, Workload: wl, Ops: 3000, Warmup: 500, Seed: 2}
				ff, err := Run(spec)
				if err != nil {
					t.Fatal(err)
				}
				spec.DisableFastForward = true
				noff, err := Run(spec)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range []Result{ff, noff} {
					var sum float64
					for _, b := range ptrace.BucketNames() {
						sum += r.Extra["cpi."+b]
					}
					if total := r.Extra["cpi.cycles"]; sum != total || total == 0 {
						t.Errorf("buckets sum to %v of %v cycles", sum, total)
					}
				}
				for _, b := range append(ptrace.BucketNames(), "cycles") {
					k := "cpi." + b
					if ff.Extra[k] != noff.Extra[k] {
						t.Errorf("%s differs across fast-forward: %v (FF) vs %v (no FF)",
							k, ff.Extra[k], noff.Extra[k])
					}
				}
			})
		}
	}
}
