package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Cell is one unit of sharded work: a fully resolved Spec plus the
// identity the caller wants failures reported under. Index is
// caller-defined (a figure's column index, a sweep grid position) and is
// echoed back untouched, so results can be scattered into whatever shape
// the caller maintains.
type Cell struct {
	App   string
	Model string
	Index int
	Spec  Spec
}

// CellResult pairs a cell with its outcome. Exactly one of Result/Err is
// meaningful: Err != nil means the run failed and Result is the zero
// value.
type CellResult struct {
	Cell   Cell
	Result Result
	Err    error
}

// RunCells executes every cell on a bounded worker pool and returns the
// outcomes positionally (out[i] is cells[i]'s). It is the sharded runner
// behind every figure matrix and the DSE sweep service.
//
//   - workers <= 0 sizes the pool to runtime.GOMAXPROCS(0).
//   - runFn executes one cell; nil means Run(c.Spec). The DSE engine
//     injects a cache-wrapping runFn here.
//   - onCell, when non-nil, observes each completed cell. Calls are
//     serialized (never concurrent), but arrive in completion order, not
//     submission order.
//
// A failing cell never poisons its siblings: every other cell still runs
// to completion and keeps its own result or error. JoinCellErrors
// aggregates the failures into one error naming each failed (app, model)
// cell.
func RunCells(cells []Cell, workers int, runFn func(Cell) (Result, error), onCell func(CellResult)) []CellResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if runFn == nil {
		runFn = func(c Cell) (Result, error) { return Run(c.Spec) }
	}
	out := make([]CellResult, len(cells))
	var (
		mu  sync.Mutex // serializes onCell
		wg  sync.WaitGroup
		sem = make(chan struct{}, workers)
	)
	for i, c := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c Cell) {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := runFn(c)
			if err != nil {
				err = fmt.Errorf("cell (%s, %s[%d]): %w", c.App, c.Model, c.Index, err)
			}
			out[i] = CellResult{Cell: c, Result: r, Err: err}
			if onCell != nil {
				mu.Lock()
				onCell(out[i])
				mu.Unlock()
			}
		}(i, c)
	}
	wg.Wait()
	return out
}

// JoinCellErrors folds every failed cell's error into one (nil when all
// cells succeeded).
func JoinCellErrors(results []CellResult) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errors.Join(errs...)
}
