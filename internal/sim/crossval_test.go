package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"casino/internal/energy"
	"casino/internal/mem"
	"casino/internal/workload"
)

// metaMetric reports whether a metric describes the execution strategy
// (jump accounting, wakeup-queue activity) rather than the modeled machine.
// Only these may differ between event-driven and cycle-by-cycle runs.
func metaMetric(k string) bool {
	return strings.HasPrefix(k, "ff.") || strings.HasPrefix(k, "evq.")
}

// TestEventEngineCrossValidation is the randomized generalisation of
// TestFastForwardDeterminism: every model, on randomly drawn short
// workloads/seeds/lengths, must produce bit-identical results whether the
// event-driven engine or plain cycle-by-cycle stepping drives the clock.
// The workload draw is seeded, so failures reproduce.
func TestEventEngineCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := workload.Names()
	for _, m := range Models() {
		for trial := 0; trial < 3; trial++ {
			wl := names[rng.Intn(len(names))]
			ops := 2000 + rng.Intn(4000)
			spec := Spec{
				Model:    m,
				Workload: wl,
				Ops:      ops,
				Warmup:   ops / 4,
				Seed:     rng.Int63n(1 << 30),
			}
			on, err := Run(spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", m, wl, err)
			}
			spec.DisableFastForward = true
			off, err := Run(spec)
			if err != nil {
				t.Fatalf("%s/%s (step): %v", m, wl, err)
			}
			if on.Cycles != off.Cycles || on.Instructions != off.Instructions ||
				on.IPC != off.IPC || on.DynamicPJ != off.DynamicPJ || on.StaticPJ != off.StaticPJ {
				t.Errorf("%s/%s seed=%d ops=%d: headline results diverge",
					m, wl, spec.Seed, ops)
			}
			for k, want := range off.Extra {
				if metaMetric(k) {
					continue
				}
				if got := on.Extra[k]; got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Errorf("%s/%s seed=%d ops=%d: metric %s: event=%v step=%v",
						m, wl, spec.Seed, ops, k, got, want)
				}
			}
			for k := range on.Extra {
				if !metaMetric(k) {
					if _, ok := off.Extra[k]; !ok {
						t.Errorf("%s/%s: metric %s only published event-driven", m, wl, k)
					}
				}
			}
		}
	}
}

// propCore is the surface the property tests need from a model: the public
// run interface, the event-driven clock, the exhaustive NextEvent oracle,
// and the folded progress signature. All five models implement it.
type propCore interface {
	Core
	eventDriven
	NextEvent() int64
	ProgressSignature() uint64
}

// buildPair constructs two independent, identically-configured cores over
// one shared (read-only) trace.
func buildPair(t *testing.T, spec Spec) (a, b propCore) {
	t.Helper()
	tr, err := SharedTrace(spec.Workload, spec.Warmup+spec.Ops, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() propCore {
		c, _, err := build(spec, tr, 0, nil, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
		if err != nil {
			t.Fatalf("%s: %v", spec.Model, err)
		}
		pc, ok := c.(propCore)
		if !ok {
			t.Fatalf("%s: model does not implement the event-driven property surface", spec.Model)
		}
		return pc
	}
	return mk(), mk()
}

// stepChecked advances the cycle-by-cycle replica one cycle, asserting the
// NextEvent oracle's contract: a wakeup/event bound strictly in the future
// means this cycle cannot change observable state. Because every stored
// future time must be registered (on the wakeup queue, and visible to the
// oracle), a violation here means some latency source stored a time without
// announcing it — exactly the bug class the event engine must not have.
func stepChecked(t *testing.T, model string, b propCore) {
	t.Helper()
	now := b.Now()
	bound := b.NextEvent()
	sig0 := b.ProgressSignature()
	b.Cycle()
	if b.ProgressSignature() != sig0 && bound > now {
		t.Fatalf("%s: cycle %d changed observable state but NextEvent promised idleness until %d",
			model, now, bound)
	}
}

// TestEventEngineJumpEquivalence replays the driver's event-driven protocol
// on core A while stepping an identical replica B cycle-by-cycle, and
// compares the folded progress signatures after every jump and every
// stepped cycle. A jump that skipped a non-idle cycle diverges the pair at
// the very next checkpoint, localizing the failure to one jump — a much
// sharper probe than end-of-run manifest comparison. The replica's cycles
// are each oracle-checked (stepChecked), which asserts the registration
// property: no registered wakeup is later than the first observable state
// change.
func TestEventEngineJumpEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	names := workload.Names()
	for _, m := range Models() {
		wl := names[rng.Intn(len(names))]
		spec := Spec{Model: m, Workload: wl, Ops: 6000, Warmup: 0, Seed: rng.Int63n(1 << 30)}
		a, b := buildPair(t, spec)
		target := uint64(spec.Ops)
		var jumps uint64
		lastSig := ^a.ProgressSignature()
		const cap = 4_000_000
		for a.Now() < cap && !a.Done() && a.Committed() < target {
			if sig := a.ProgressSignature(); sig == lastSig {
				if to := a.NextWake(); to > a.Now()+1 {
					before := a.Now()
					a.FastForward(to)
					if a.Now() > before+1 {
						jumps++
					}
					for b.Now() < a.Now() {
						stepChecked(t, m, b)
					}
					if a.ProgressSignature() != b.ProgressSignature() || a.Committed() != b.Committed() {
						t.Fatalf("%s/%s: replica diverged after jump %d -> %d (skipped %d)",
							m, wl, before, a.Now(), a.Now()-before-1)
					}
					continue
				}
			} else {
				lastSig = sig
			}
			a.Cycle()
			stepChecked(t, m, b)
			if a.ProgressSignature() != b.ProgressSignature() {
				t.Fatalf("%s/%s: replica diverged at cycle %d", m, wl, a.Now())
			}
		}
		if a.Committed() != b.Committed() {
			t.Errorf("%s/%s: final commit counts diverge: %d vs %d", m, wl, a.Committed(), b.Committed())
		}
		if jumps == 0 {
			t.Errorf("%s/%s: event engine never jumped; property check is vacuous", m, wl)
		}
	}
}
