package sim

import (
	"sync"

	"casino/internal/trace"
	"casino/internal/workload"
)

// The experiment drivers fan a (app × model) matrix out over all CPUs, and
// every cell of a column replays the *same* workload trace. Generating a
// trace is far more expensive than looking one up, so the harness shares
// generated traces through a process-wide cache: the first request for a
// key generates, every concurrent request for the same key blocks on that
// single generation (singleflight), and later requests hit the ready
// result. Cached traces are shared across goroutines, which is safe by the
// trace package's read-only contract.

// traceKey identifies one generated trace: the workload profile, the total
// dynamic length (warmup + measured ops), and the generation seed.
type traceKey struct {
	workload string
	n        int
	seed     int64
}

// traceCacheEntry is one cache slot. ready is closed once tr/err are set;
// readers that find an in-flight entry block on it instead of regenerating.
type traceCacheEntry struct {
	ready   chan struct{}
	tr      *trace.Trace
	err     error
	lastUse uint64 // cache tick of the most recent request (LRU)
	fp      uint64 // fingerprint at insertion (read-only enforcement)
}

// TraceCache is a concurrency-safe, singleflight, LRU-bounded trace cache.
// The zero value is not usable; use NewTraceCache.
type TraceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceCacheEntry
	tick    uint64
	max     int

	hits, misses uint64
}

// DefaultTraceCacheSize bounds the process-wide cache. A full figure sweep
// touches 25 workloads at one (length, seed) point each, so 64 completed
// traces comfortably covers interleaved sweeps at a few sizes.
const DefaultTraceCacheSize = 64

// NewTraceCache returns a cache holding at most max completed traces
// (max <= 0 means DefaultTraceCacheSize).
func NewTraceCache(max int) *TraceCache {
	if max <= 0 {
		max = DefaultTraceCacheSize
	}
	return &TraceCache{entries: map[traceKey]*traceCacheEntry{}, max: max}
}

// sharedTraces is the process-wide cache used by Run and runMatrix.
var sharedTraces = NewTraceCache(DefaultTraceCacheSize)

// Get returns the trace for (workloadName, n ops, seed), generating it at
// most once per key no matter how many goroutines ask concurrently.
func (tc *TraceCache) Get(workloadName string, n int, seed int64) (*trace.Trace, error) {
	key := traceKey{workloadName, n, seed}
	tc.mu.Lock()
	tc.tick++
	if e, ok := tc.entries[key]; ok {
		e.lastUse = tc.tick
		tc.hits++
		tc.mu.Unlock()
		<-e.ready
		return e.tr, e.err
	}
	e := &traceCacheEntry{ready: make(chan struct{}), lastUse: tc.tick}
	tc.evictLocked()
	tc.entries[key] = e
	tc.misses++
	tc.mu.Unlock()

	p, err := workload.ByName(workloadName)
	if err == nil {
		e.tr = workload.Generate(p, n, seed)
		e.fp = e.tr.Fingerprint()
	} else {
		e.err = err
		// Drop failed lookups so the key does not pin a cache slot.
		tc.mu.Lock()
		delete(tc.entries, key)
		tc.mu.Unlock()
	}
	close(e.ready)
	return e.tr, e.err
}

// evictLocked drops the least-recently-used *completed* entries until the
// cache has room for one more. In-flight generations are never evicted:
// their waiters hold the entry pointer.
func (tc *TraceCache) evictLocked() {
	for len(tc.entries) >= tc.max {
		var victim traceKey
		var oldest uint64
		found := false
		for k, e := range tc.entries {
			select {
			case <-e.ready:
			default:
				continue // still generating
			}
			if !found || e.lastUse < oldest {
				victim, oldest, found = k, e.lastUse, true
			}
		}
		if !found {
			return // everything in flight; let the map grow transiently
		}
		delete(tc.entries, victim)
	}
}

// Stats reports cumulative cache behaviour: completed or in-flight entries
// resident, and hit/miss counts since process start (or the last Reset).
func (tc *TraceCache) Stats() (entries int, hits, misses uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.entries), tc.hits, tc.misses
}

// Reset empties the cache and zeroes its counters. Callers must not race a
// Reset against in-flight Gets whose results they still need (the entries
// are forgotten, not invalidated; waiters still get their trace).
func (tc *TraceCache) Reset() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.entries = map[traceKey]*traceCacheEntry{}
	tc.hits, tc.misses, tc.tick = 0, 0, 0
}

// CheckIntegrity re-fingerprints every resident completed trace and
// reports the keys whose contents changed since insertion — i.e. traces
// some core mutated in violation of the read-only contract.
func (tc *TraceCache) CheckIntegrity() []string {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var bad []string
	for k, e := range tc.entries {
		select {
		case <-e.ready:
		default:
			continue
		}
		if e.tr != nil && e.tr.Refingerprint() != e.fp {
			bad = append(bad, k.workload)
		}
	}
	return bad
}

// SharedTrace resolves a trace through the process-wide cache. It is what
// Run uses when a Spec carries no explicit trace, and what runMatrix uses
// to pre-resolve each app's trace once for a whole spec column.
func SharedTrace(workloadName string, n int, seed int64) (*trace.Trace, error) {
	return sharedTraces.Get(workloadName, n, seed)
}

// SharedTraceStats exposes the process-wide cache's Stats (tooling/tests).
func SharedTraceStats() (entries int, hits, misses uint64) { return sharedTraces.Stats() }

// ResetSharedTraces empties the process-wide cache (tests).
func ResetSharedTraces() { sharedTraces.Reset() }
