package sim

// Sampled simulation with functional warming (SMARTS-style): instead of
// simulating every cycle of the measured region, the driver alternates
// short detailed windows — the full model, built mid-trace via NewAt — with
// long functional-warming gaps that replay the skipped instructions against
// only the long-lived shared state: the memory hierarchy (cache contents,
// prefetcher table, DRAM open rows and bank/bus backlog; see mem's Warm*
// entry points) and the branch predictor. Caches and the predictor
// therefore never go cold while the pipeline, IQ and ROB are skipped.
//
// Each detailed window discards a pipeline-warmup prefix (WarmOps commits)
// before its measurement snapshot, exactly like a full run's Warmup. The
// cycle estimate is hybrid: windows contribute their measured cycles; each
// gap contributes virtual cycles — its op count priced at the running
// pooled CPI of the windows so far, plus any DRAM backlog payments the
// warmed reference stream triggered (rare giant stalls where a demand miss
// absorbs the bus debt of an unthrottled prefetch/writeback stream; far too
// episodic for window sampling alone to catch, but carried exactly by the
// warmed DRAM bank/bus state). Per-window IPCs also aggregate into a CLT
// 95% confidence interval. Sampled runs publish only `sampled.*` metrics —
// none of the full-fidelity metric names — so nothing sampled can ever
// collide with a golden-gated manifest.

import (
	"fmt"
	"math"

	"casino/internal/bpred"
	"casino/internal/energy"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/ptrace"
	"casino/internal/stats"
	"casino/internal/trace"
)

// Default sampling geometry: an ~8% detail fraction (the wall-clock lever)
// with a pipeline-warm prefix long enough to refill the deepest window. The
// period must dodge the workload generator's ~2048-op phase length — periods
// near 2048 or its small rational multiples resonate with phase boundaries
// even under randomized in-stratum offsets (2100 and 2400 both measurably
// bias figure-level IPC; 1800 does not). The cross-validation suite pins
// the resulting per-figure IPC error ≤ 3%.
const (
	DefaultSamplePeriod  = 1800
	DefaultSampleDetail  = 150
	DefaultSampleWarmOps = 60
)

// stallChargeNum/Den weight the DRAM backlog payment (regionStall) in the
// hybrid estimate. The raw payment is what a core that blocks for the full
// queueing excess would pay (the in-order limit); a core that overlaps
// misses under its instruction window and whose run-ahead prefetch
// timeliness avoids part of the debt pays less (the out-of-order limit is
// near zero). Cross-validation against full fidelity across all models and
// workloads places the cross-model optimum near the midpoint; charging half
// keeps the in-order family's episodic payments (libquantum-style backlog
// bursts) in the estimate without double-billing cores that hide them.
const (
	stallChargeNum = 1
	stallChargeDen = 2
)

// Sampling configures sampled simulation. Every sampling period of Period
// micro-ops begins with one detailed window of DetailOps ops (the first
// WarmOps of which warm the pipeline and are excluded from measurement);
// the remaining Period-DetailOps ops are replayed by functional warming.
// The zero value of any field selects its default.
type Sampling struct {
	Period    int `json:"period"`
	DetailOps int `json:"detail_ops"`
	WarmOps   int `json:"warm_ops"`
}

// Normalized returns the geometry with zero-valued fields replaced by the
// defaults — the form under which two Sampling values describe the same
// run (sweep layers fingerprint this, not the raw struct).
func (sp Sampling) Normalized() Sampling { return sp.normalized() }

// Check validates the geometry after normalization. Exported so sweep
// layers can reject a bad geometry at submit time instead of per cell.
func (sp Sampling) Check() error { return sp.normalized().validate() }

// normalized fills zero fields with the default geometry.
func (sp Sampling) normalized() Sampling {
	if sp.Period <= 0 {
		sp.Period = DefaultSamplePeriod
	}
	if sp.DetailOps <= 0 {
		sp.DetailOps = DefaultSampleDetail
	}
	if sp.WarmOps <= 0 {
		sp.WarmOps = DefaultSampleWarmOps
	}
	return sp
}

// validate checks an already-normalized geometry.
func (sp Sampling) validate() error {
	if sp.WarmOps >= sp.DetailOps {
		return fmt.Errorf("sim: sampling warm_ops %d must be < detail_ops %d", sp.WarmOps, sp.DetailOps)
	}
	if sp.DetailOps > sp.Period {
		return fmt.Errorf("sim: sampling detail_ops %d must be <= period %d", sp.DetailOps, sp.Period)
	}
	return nil
}

// SampledStats summarizes a sampled run: what was simulated in detail, what
// was only warmed, and the hybrid estimate with its CLT confidence interval
// (1.96·s/√n over per-window IPCs; 0 when only one window fit).
type SampledStats struct {
	Windows        int     `json:"windows"`
	DetailInstrs   uint64  `json:"detail_instructions"`
	DetailCycles   uint64  `json:"detail_cycles"`
	GapCycles      uint64  `json:"gap_virtual_cycles"`     // estimated cycles of all non-measured ops
	DRAMStall      uint64  `json:"warm_dram_stall_cycles"` // backlog payments inside GapCycles
	WarmInstrs     uint64  `json:"warm_instructions"`
	IPC            float64 `json:"ipc"`               // region / EstCycles
	IPCPooled      float64 `json:"ipc_window_pooled"` // windows' Σinstr/Σcycles
	IPCMean        float64 `json:"ipc_window_mean"`   // mean of per-window IPCs
	IPCCI95        float64 `json:"ipc_ci95"`
	EstCycles      uint64  `json:"est_cycles"` // detail + gap + prefix cycles
	DetailFraction float64 `json:"detail_fraction"`
}

// warmer replays trace micro-ops against only the shared long-lived state.
// It mirrors the frontend's per-line I-fetch gate (one WarmFetch per cache
// line, re-checked after a taken branch) so the warmed L1I sees the same
// reference stream a detailed frontend would generate.
//
// The warmer also keeps a virtual clock vt: each replayed op advances it by
// the running pooled CPI of the detailed windows so far (32.32 fixed point
// with a carried fractional accumulator, so replay is byte-deterministic
// without a per-op division), and warm demand DRAM fills
// add their queueing excess on top (see mem.DRAM.WarmDemand). vt serves two
// purposes: it is the time base on which warm DRAM traffic builds and pays
// bank/bus backlog, and its per-gap delta is the gap's estimated cycle
// cost in the hybrid estimator.
type warmer struct {
	rd       *trace.Reader
	hier     *mem.Hierarchy
	pred     *bpred.Predictor
	lastLine uint64
	haveLine bool

	vt  int64  // virtual cycles
	fp  uint64 // pooled window CPI in 32.32 fixed point
	acc uint64 // fractional-cycle accumulator (low 32 bits)
}

// seek repositions the warmer mid-trace, invalidating the line gate (the
// next op is not fetch-contiguous with the previous one).
func (w *warmer) seek(pos int) {
	w.rd.Seek(pos)
	w.haveLine = false
}

// setCPI updates the virtual-clock rate to cyc cycles per ins instructions,
// quantized to 32.32 fixed point so the per-op advance is a shift-and-add
// (exact enough: the quantization error is below 2⁻³² cycles per op, and the
// advance stays byte-deterministic).
func (w *warmer) setCPI(cyc, ins uint64) {
	if cyc > 0 && ins > 0 {
		w.fp = (cyc << 32) / ins
	}
}

// replay warms through up to n ops and returns how many it consumed.
func (w *warmer) replay(n int) int {
	rd, hier, pred := w.rd, w.hier, w.pred
	done := 0
	for done < n {
		op := rd.Next()
		if op == nil {
			break
		}
		done++
		w.acc += w.fp
		w.vt += int64(w.acc >> 32)
		w.acc &= 0xFFFFFFFF
		if line := op.PC >> mem.BlockBits; !w.haveLine || line != w.lastLine {
			w.vt += hier.WarmFetch(op.PC, w.vt)
			w.lastLine, w.haveLine = line, true
		}
		switch op.Class {
		case isa.Load:
			w.vt += hier.WarmLoad(op.PC, op.Addr, w.vt)
		case isa.Store:
			w.vt += hier.WarmStore(op.PC, op.Addr, w.vt)
		case isa.Branch:
			pred.OnBranch(op.PC, op.Taken, op.Target)
			if op.Taken {
				w.haveLine = false
			}
		}
	}
	return done
}

// runSampled executes a Spec in sampled mode. Called from Run with Ops and
// Warmup already normalized.
func runSampled(s Spec) (Result, error) {
	sp := s.Sampling.normalized()
	if err := sp.validate(); err != nil {
		return Result{}, err
	}
	if s.TraceSink != nil {
		return Result{}, fmt.Errorf("sim: pipeline tracing requires full fidelity; Sampling and TraceSink are mutually exclusive")
	}
	tr := s.Trace
	if tr == nil {
		var err error
		tr, err = SharedTrace(s.Workload, s.Warmup+s.Ops, s.Seed)
		if err != nil {
			return Result{}, err
		}
	}

	target := s.Warmup + s.Ops
	if target > tr.Len() {
		target = tr.Len()
	}
	warm := s.Warmup
	if warm > target {
		warm = target
	}
	region := target - warm
	if region < sp.DetailOps {
		return Result{}, fmt.Errorf("sim: %s/%s measured region (%d ops) smaller than one detailed window (%d); shrink Sampling.DetailOps or run full fidelity",
			s.Model, tr.Name, region, sp.DetailOps)
	}

	memCfg := mem.DefaultConfig()
	if s.MemCfg != nil {
		memCfg = *s.MemCfg
	}
	hier := getHierarchy(memCfg)
	pred := bpred.NewPredictor()

	// The run-level warmup is replayed functionally in its entirety: it
	// exists to warm exactly the state functional warming maintains. Until
	// the first window measures real CPI the virtual clock ticks 1 cycle
	// per op — warmup gap cycles are never part of the estimate, and DRAM
	// backlog dynamics are robust to the base rate.
	w := &warmer{rd: tr.Reader(), hier: hier, pred: pred, fp: 1 << 32}
	warmInstrs := uint64(w.replay(warm))

	var (
		ipcs         []float64
		detailInstr  uint64
		detailCycles uint64
		gapOps       uint64
		prefixOps    uint64
		dynSum       float64
		cpiSum       [ptrace.NumBuckets]uint64
		energySum    = map[string]float64{}
		ffJumps      uint64
		ffSkipped    uint64
	)
	// One accountant serves every window: the per-window model rebuild
	// re-registers its structures after a Rewind, so the final window leaves
	// the same registrations a fresh accountant would hold.
	acct := energy.NewAccountant()
	// DRAM backlog payments before the measured region starts are warmup,
	// not estimate.
	prefixStall := hier.Warm.DRAMStall

	// Stratified placement: one detailed window per period, at a
	// deterministic pseudo-random offset within it. A fixed offset aliases
	// with workload phase structure (the generator switches kernels about
	// every 2048 ops, so e.g. a 4096-op period would sample the same phase
	// every time); a per-period offset drawn from a seed-keyed xorshift
	// breaks the resonance while keeping runs byte-reproducible.
	rng := uint64(s.Seed)*0x9E3779B97F4A7C15 + 0x1234567

	pos := warm
	for pstart := warm; target-pstart >= sp.DetailOps; pstart += sp.Period {
		span := min(sp.Period, target-pstart) // last stratum may be short
		if span < sp.DetailOps {
			break
		}
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		wstart := pstart + int(rng%uint64(span-sp.DetailOps+1))
		if wstart > pos {
			w.seek(pos)
			n := uint64(w.replay(wstart - pos))
			warmInstrs += n
			gapOps += n
			pos = wstart
		}
		// The window's model starts a fresh clock at 0: rebase the DRAM
		// backlog into the new clock, clear the MSHR occupancy a clock
		// restart invalidates, keep everything warming maintains.
		hier.ResetTiming(w.vt)
		acct.Rewind()
		c, _, err := build(s, tr, wstart, pred, hier, acct)
		if err != nil {
			return Result{}, err
		}
		ev, _ := c.(eventDriven)
		if s.DisableFastForward || noFFEnv {
			ev = nil
		}
		var cyc0 int64
		var dyn0 float64
		var commit0 uint64
		var cpi0 [ptrace.NumBuckets]uint64
		pt, _ := c.(pipeTracer)
		j, sk := drive(c, ev, uint64(sp.WarmOps), uint64(sp.DetailOps), func() {
			cyc0 = c.Now()
			dyn0 = acct.DynamicEnergy()
			commit0 = c.Committed()
			if pt != nil {
				cpi0 = pt.CPIStack().Counts
			}
		})
		ffJumps += j
		ffSkipped += sk
		if c.Committed() < uint64(sp.DetailOps) && !c.Done() {
			return Result{}, fmt.Errorf("sim: %s/%s sampled window at op %d exceeded cycle cap at %d committed",
				s.Model, tr.Name, wstart, c.Committed())
		}
		if pt != nil {
			// Same CPI-stack invariant as a full run, held per window.
			if err := pt.CPIStack().Check(uint64(c.Now())); err != nil {
				return Result{}, fmt.Errorf("sim: %s/%s sampled window at op %d: %w", s.Model, tr.Name, wstart, err)
			}
			cts := pt.CPIStack().Counts
			for b := range cts {
				cpiSum[b] += cts[b] - cpi0[b]
			}
		}
		simulatedCycles.Add(uint64(c.Now()))
		wi := c.Committed() - commit0
		wc := uint64(c.Now() - cyc0)
		if wi == 0 || wc == 0 {
			return Result{}, fmt.Errorf("sim: %s/%s sampled window at op %d measured nothing (detail_ops %d, warm_ops %d)",
				s.Model, tr.Name, wstart, sp.DetailOps, sp.WarmOps)
		}
		detailInstr += wi
		detailCycles += wc
		prefixOps += commit0
		dynSum += acct.DynamicEnergy() - dyn0
		ipcs = append(ipcs, float64(wi)/float64(wc))
		acct.AccumulateEnergy(energySum)

		// The gap resumes on the window's final clock (DRAM stamps are in
		// window time after the rebase above), with the virtual rate set to
		// the running pooled CPI of every window so far.
		w.vt = c.Now()
		w.setCPI(detailCycles, detailInstr)

		// Resume warming after the last *committed* op (next iteration warms
		// forward from here). The handful of ops fetched but still in
		// flight when the window closed are replayed again — double-training
		// a few predictor/cache entries, a second-order effect the
		// cross-validation bound covers.
		pos = wstart + int(c.Committed())
	}

	// Warm the tail so its ops (and any DRAM backlog payment that falls
	// there) are part of the gap estimate.
	if pos < target {
		w.seek(pos)
		n := uint64(w.replay(target - pos))
		warmInstrs += n
		gapOps += n
	}
	regionStall := hier.Warm.DRAMStall - prefixStall

	n := len(ipcs)
	pooled := float64(detailInstr) / float64(detailCycles)
	var mean, ci float64
	for _, v := range ipcs {
		mean += v
	}
	mean /= float64(n)
	if n > 1 {
		var ss float64
		for _, v := range ipcs {
			ss += (v - mean) * (v - mean)
		}
		ci = 1.96 * math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
	}
	// Hybrid estimate: measured window cycles, plus every non-measured op
	// (warmed gaps and the windows' pipeline-warm prefixes) priced at the
	// final pooled CPI, plus the weighted DRAM backlog payments the warmed
	// reference stream triggered inside the region (see mem.DRAM.WarmDemand
	// and stallChargeNum — far too episodic for window sampling alone to
	// catch).
	gapCycles := uint64(math.Round(float64(gapOps+prefixOps)/pooled)) + regionStall*stallChargeNum/stallChargeDen
	estCycles := detailCycles + gapCycles
	ipc := float64(region) / float64(estCycles)
	scale := float64(region) / float64(detailInstr)

	reg := stats.NewRegistry()
	reg.Counter("sampled.windows", uint64(n))
	reg.Counter("sampled.detail_instructions", detailInstr)
	reg.Counter("sampled.detail_cycles", detailCycles)
	reg.Counter("sampled.gap_cycles", gapCycles)
	reg.Counter("sampled.warm_instructions", warmInstrs)
	reg.Counter("sampled.est_cycles", estCycles)
	reg.Gauge("sampled.ipc", ipc)
	reg.Gauge("sampled.ipc_window_pooled", pooled)
	reg.Gauge("sampled.ipc_window_mean", mean)
	reg.Gauge("sampled.ipc_ci95", ci)
	reg.SetRatio("sampled.detail_fraction", float64(detailInstr), float64(region))
	reg.Counter("sampled.ff.jumps", ffJumps)
	reg.Counter("sampled.ff.skipped_cycles", ffSkipped)
	for b, name := range ptrace.BucketNames() {
		reg.SetRatio("sampled.cpi."+name, float64(cpiSum[b]), float64(detailCycles))
	}
	ws := hier.Warm
	reg.Counter("sampled.warm.fetches", ws.Fetches)
	reg.Counter("sampled.warm.loads", ws.Loads)
	reg.Counter("sampled.warm.stores", ws.Stores)
	reg.Counter("sampled.warm.l1i_misses", ws.L1IMisses)
	reg.Counter("sampled.warm.l1d_misses", ws.L1DMisses)
	reg.Counter("sampled.warm.l2_misses", ws.L2Misses)
	reg.Counter("sampled.warm.dram_stall_cycles", ws.DRAMStall)

	// Extrapolate energy to the region: dynamic scales with instructions,
	// static with the estimated cycle count (itself ∝ instructions at the
	// pooled IPC). EnergyParts scale the summed per-window breakdowns.
	dyn := dynSum * scale
	static := acct.StaticEnergyOver(estCycles)
	parts := make(map[string]float64, len(energySum))
	for k, v := range energySum {
		parts[k] = v * scale
	}
	res := Result{
		Model:        s.Model,
		Workload:     tr.Name,
		Instructions: uint64(region),
		Cycles:       estCycles,
		IPC:          ipc,
		DynamicPJ:    dyn,
		StaticPJ:     static,
		TotalPJ:      dyn + static,
		AreaMM2:      acct.Area(),
		Extra:        reg.Flatten(),
		Metrics:      reg.Metrics(),
		EnergyParts:  parts,
		AreaParts:    acct.AreaBreakdown(),
		Sampled: &SampledStats{
			Windows:        n,
			DetailInstrs:   detailInstr,
			DetailCycles:   detailCycles,
			GapCycles:      gapCycles,
			DRAMStall:      regionStall,
			WarmInstrs:     warmInstrs,
			IPC:            ipc,
			IPCPooled:      pooled,
			IPCMean:        mean,
			IPCCI95:        ci,
			EstCycles:      estCycles,
			DetailFraction: float64(detailInstr) / float64(region),
		},
	}
	if region > 0 {
		res.EnergyPerInst = res.TotalPJ / float64(region)
	}
	if res.EnergyPerInst > 0 {
		res.PerfPerEnergy = res.IPC / (res.EnergyPerInst / 1000) // IPC per nJ/inst
	}
	bpred.Recycle(pred)
	putHierarchy(hier)
	return res, nil
}
