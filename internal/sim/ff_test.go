package sim

import (
	"math"
	"strings"
	"testing"
)

// TestFastForwardSkipsCycles asserts the acceptance criterion of the
// event-horizon optimisation: on the default 60k-op configuration every
// model spends a measurable share of its cycles fully stalled, and the
// driver jumps them instead of stepping.
func TestFastForwardSkipsCycles(t *testing.T) {
	for _, m := range Models() {
		r, err := Run(Spec{Model: m, Workload: "libquantum", Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if r.Extra["ff.jumps"] <= 0 || r.Extra["ff.skipped_cycles"] <= 0 {
			t.Errorf("%s: no fast-forward activity (jumps=%v skipped=%v)",
				m, r.Extra["ff.jumps"], r.Extra["ff.skipped_cycles"])
		}
		if cov := r.Extra["ff.coverage"]; cov <= 0 || cov >= 1 {
			t.Errorf("%s: implausible ff.coverage %v", m, cov)
		}
	}
}

// TestFastForwardDeterminism runs each model twice on a load-miss-heavy
// workload — once with event-horizon jumps, once stepping every cycle —
// and requires every published metric (timing, energy, occupancy
// histograms, stall diagnostics) to be bit-identical. Fast-forwarding is
// an execution strategy, never a model change.
func TestFastForwardDeterminism(t *testing.T) {
	for _, m := range Models() {
		spec := Spec{Model: m, Workload: "milc", Ops: 12000, Warmup: 3000, Seed: 7}
		on, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		spec.DisableFastForward = true
		off, err := Run(spec)
		if err != nil {
			t.Fatalf("%s (no ff): %v", m, err)
		}
		if on.Extra["ff.skipped_cycles"] <= 0 {
			t.Errorf("%s: fast-forward never fired; determinism check is vacuous", m)
		}
		if off.Extra["ff.jumps"] != 0 || off.Extra["ff.skipped_cycles"] != 0 {
			t.Errorf("%s: DisableFastForward still jumped", m)
		}
		if on.Cycles != off.Cycles || on.Instructions != off.Instructions ||
			on.IPC != off.IPC || on.DynamicPJ != off.DynamicPJ || on.StaticPJ != off.StaticPJ {
			t.Errorf("%s: headline results diverge: ff %+v vs step %+v", m, on, off)
		}
		// ff.* (jump accounting) and evq.* (wakeup-queue activity, only
		// published when the event engine drives the run) describe the
		// execution strategy, not the modeled machine — everything else must
		// match bit-for-bit.
		meta := func(k string) bool {
			return strings.HasPrefix(k, "ff.") || strings.HasPrefix(k, "evq.")
		}
		for k, want := range off.Extra {
			if meta(k) {
				continue
			}
			if got := on.Extra[k]; got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Errorf("%s: metric %s: ff=%v step=%v", m, k, got, want)
			}
		}
		for k := range on.Extra {
			if !meta(k) {
				if _, ok := off.Extra[k]; !ok {
					t.Errorf("%s: metric %s only published with ff on", m, k)
				}
			}
		}
	}
}

// TestFastForwardEnvKill checks the CASINO_NO_FASTFORWARD escape hatch.
// The environment variable is read once at process start into noFFEnv (Run
// is hot-path), so the test flips the cached flag directly.
func TestFastForwardEnvKill(t *testing.T) {
	old := noFFEnv
	noFFEnv = true
	defer func() { noFFEnv = old }()
	r, err := Run(Spec{Model: ModelCASINO, Workload: "gcc", Ops: 4000, Warmup: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Extra["ff.jumps"] != 0 {
		t.Errorf("env kill switch ignored: ff.jumps = %v", r.Extra["ff.jumps"])
	}
}
