package sim

import (
	"reflect"
	"sync"
	"testing"

	"casino/internal/trace"
	"casino/internal/workload"
)

// A run fed by the shared trace cache must be bit-identical to a run over a
// freshly generated private trace, for every model: the cache changes how a
// trace is obtained, never what the simulation computes.
func TestSharedVsFreshTraceDeterminism(t *testing.T) {
	for _, model := range Models() {
		spec := Spec{Model: model, Workload: "gcc", Ops: 4000, Warmup: 1000, Seed: 7}
		cached, err := Run(spec) // resolves through the shared cache
		if err != nil {
			t.Fatalf("%s cached run: %v", model, err)
		}
		p, err := workload.ByName(spec.Workload)
		if err != nil {
			t.Fatal(err)
		}
		fresh := spec
		fresh.Trace = workload.Generate(p, spec.Warmup+spec.Ops, spec.Seed)
		private, err := Run(fresh)
		if err != nil {
			t.Fatalf("%s fresh run: %v", model, err)
		}
		if !reflect.DeepEqual(cached, private) {
			t.Errorf("%s: cached-trace result differs from fresh-trace result:\ncached:  %+v\nprivate: %+v",
				model, cached, private)
		}
	}
}

// Concurrent Gets for one key must generate exactly once and hand every
// caller the same trace pointer (this test also gives `go test -race` a
// real concurrent workout of the cache).
func TestTraceCacheSingleflight(t *testing.T) {
	tc := NewTraceCache(8)
	const workers = 16
	ptrs := make([]*trace.Trace, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := tc.Get("mcf", 3000, 3)
			if err != nil {
				t.Error(err)
				return
			}
			ptrs[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatalf("worker %d got a different trace pointer", i)
		}
	}
	entries, hits, misses := tc.Stats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", misses)
	}
	if hits != workers-1 {
		t.Errorf("hits = %d, want %d", hits, workers-1)
	}
	if entries != 1 {
		t.Errorf("entries = %d, want 1", entries)
	}
}

func TestTraceCacheEviction(t *testing.T) {
	tc := NewTraceCache(2)
	for _, w := range []string{"gcc", "mcf", "milc"} {
		if _, err := tc.Get(w, 1000, 1); err != nil {
			t.Fatal(err)
		}
	}
	entries, _, misses := tc.Stats()
	if entries != 2 {
		t.Errorf("entries = %d, want 2 (LRU bound)", entries)
	}
	if misses != 3 {
		t.Errorf("misses = %d, want 3", misses)
	}
	// gcc was least recently used, so it must have been evicted: asking for
	// it again is a miss; mcf/milc are still resident.
	if _, err := tc.Get("gcc", 1000, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, misses = tc.Stats(); misses != 4 {
		t.Errorf("misses after re-Get = %d, want 4 (gcc was evicted)", misses)
	}
}

func TestTraceCacheUnknownWorkload(t *testing.T) {
	tc := NewTraceCache(4)
	if _, err := tc.Get("no-such-profile", 1000, 1); err == nil {
		t.Fatal("expected an error for an unknown workload")
	}
	if entries, _, _ := tc.Stats(); entries != 0 {
		t.Errorf("failed lookup pinned a cache slot (entries = %d)", entries)
	}
}

func TestTraceCacheIntegrity(t *testing.T) {
	tc := NewTraceCache(4)
	tr, err := tc.Get("gcc", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bad := tc.CheckIntegrity(); len(bad) != 0 {
		t.Fatalf("pristine cache reported violations: %v", bad)
	}
	tr.Ops[0].Addr ^= 1 // simulate a core breaking the read-only contract
	if bad := tc.CheckIntegrity(); len(bad) != 1 || bad[0] != "gcc" {
		t.Fatalf("CheckIntegrity = %v, want [gcc]", bad)
	}
	tr.Ops[0].Addr ^= 1
}
