package sim

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"casino/internal/ptrace"
)

// TestSampledCrossValidation is the error gate of the sampled mode,
// asserting exactly the acceptance quantity: per-figure MAPE ≤ 3% over the
// normalized-IPC metrics of a figure, sampled vs full fidelity. fig2
// (InO, four SpecInO variants, OoO) and fig6 (InO, LSC, Freeway, CASINO,
// OoO) together cover all five core models over every workload (25 apps).
// The bound is on the figure-level quantity deliberately: window placement
// is seed-keyed per workload, so all models of a workload sample the same
// trace positions and most sampling error is common-mode in the normalized
// ratio and the geomean; raw per-cell IPC on cache-hostile workloads
// disperses several times wider and is not what any figure reports.
func TestSampledCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweeps full-fidelity figure suites")
	}
	for _, fig := range []string{"fig2", "fig6"} {
		full, err := BuildManifest(fig, Options{})
		if err != nil {
			t.Fatalf("full %s: %v", fig, err)
		}
		samp, err := BuildManifest(fig, Options{Sampling: &Sampling{}})
		if err != nil {
			t.Fatalf("sampled %s: %v", fig, err)
		}
		var sum float64
		n := 0
		for k, fv := range full.Metrics {
			if !strings.Contains(k, "norm_ipc") || fv == 0 {
				continue
			}
			sv, ok := samp.Metrics[k]
			if !ok {
				t.Fatalf("%s: sampled manifest missing metric %q", fig, k)
			}
			ape := math.Abs(sv-fv) / math.Abs(fv)
			t.Logf("%-40s full=%.4f sampled=%.4f err=%.2f%%", k, fv, sv, 100*ape)
			if ape > 0.06 {
				t.Errorf("%s: sampled error %.2f%% on %s exceeds per-metric 6%% bound", fig, 100*ape, k)
			}
			sum += ape
			n++
		}
		if n < 4 {
			t.Fatalf("%s: expected several norm-ipc metrics, found %d", fig, n)
		}
		mape := sum / float64(n)
		t.Logf("%s: per-figure IPC MAPE %.2f%% over %d metrics", fig, 100*mape, n)
		if mape > 0.03 {
			t.Errorf("%s: per-figure IPC MAPE %.2f%% exceeds 3%% bound", fig, 100*mape)
		}
	}
}

// TestSampledDeterminism: same spec + seed ⇒ byte-identical sampled result
// (the sweep-manifest determinism gate builds on this).
func TestSampledDeterminism(t *testing.T) {
	for _, m := range []string{ModelCASINO, ModelOoO} {
		spec := Spec{Model: m, Workload: "mcf", Sampling: &Sampling{}}
		a, err := Run(spec)
		if err != nil {
			t.Fatalf("run 1 %s: %v", m, err)
		}
		b, err := Run(spec)
		if err != nil {
			t.Fatalf("run 2 %s: %v", m, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Errorf("%s: sampled results differ between identical runs:\n%s\n%s", m, ja, jb)
		}
	}
}

// TestSampledMetricsNamespace: a sampled run publishes only sampled.*
// metric names, so nothing it emits can ever collide with the
// golden-gated full-fidelity namespace.
func TestSampledMetricsNamespace(t *testing.T) {
	res, err := Run(Spec{Model: ModelCASINO, Workload: "gcc", Sampling: &Sampling{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Extra) == 0 {
		t.Fatal("sampled run published no metrics")
	}
	for name := range res.Extra {
		if len(name) < 8 || name[:8] != "sampled." {
			t.Errorf("sampled run leaked non-sampled metric %q", name)
		}
	}
	if res.Sampled == nil {
		t.Fatal("sampled run missing SampledStats")
	}
	if res.Sampled.IPC <= 0 || res.Sampled.EstCycles == 0 {
		t.Errorf("degenerate sampled stats: %+v", res.Sampled)
	}
}

// TestSamplingValidation covers geometry rejection and the too-small-region
// error.
func TestSamplingValidation(t *testing.T) {
	if _, err := Run(Spec{Model: ModelCASINO, Workload: "gcc",
		Sampling: &Sampling{Period: 100, DetailOps: 200, WarmOps: 10}}); err == nil {
		t.Error("detail_ops > period accepted")
	}
	if _, err := Run(Spec{Model: ModelCASINO, Workload: "gcc",
		Sampling: &Sampling{Period: 400, DetailOps: 200, WarmOps: 200}}); err == nil {
		t.Error("warm_ops >= detail_ops accepted")
	}
	if _, err := Run(Spec{Model: ModelCASINO, Workload: "gcc", Ops: DefaultSampleDetail - 1,
		Sampling: &Sampling{}}); err == nil {
		t.Error("region smaller than one detailed window accepted")
	}
	if _, err := Run(Spec{Model: ModelCASINO, Workload: "gcc",
		Sampling: &Sampling{}, TraceSink: ptrace.SinkFunc(func(ptrace.Event) {})}); err == nil {
		t.Error("Sampling+TraceSink accepted")
	}
}
