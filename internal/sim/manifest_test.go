package sim

import (
	"strings"
	"testing"

	"casino/internal/manifest"
)

func TestRunMatrixPartialFailure(t *testing.T) {
	o := Options{Apps: []string{"gcc", "mcf"}, Ops: 2000, Warmup: 500, Seed: 1}
	mk := func(app string) []Spec {
		specs := []Spec{{Model: ModelInO}, {Model: ModelCASINO}}
		if app == "mcf" {
			specs[1].Model = "no-such-model"
		}
		return specs
	}
	res, err := runMatrix(o, mk)
	if err == nil {
		t.Fatal("runMatrix must surface worker errors")
	}
	if !strings.Contains(err.Error(), "cell (mcf, no-such-model[1])") {
		t.Errorf("error must name the failed cell: %v", err)
	}
	if _, ok := res["mcf"]; ok {
		t.Error("app with a failed cell must be dropped from results")
	}
	if rs, ok := res["gcc"]; !ok || len(rs) != 2 || rs[0].IPC <= 0 || rs[1].IPC <= 0 {
		t.Errorf("complete columns must survive a partial failure: %v", res["gcc"])
	}
}

func TestBuildManifestFig6(t *testing.T) {
	o := Options{Apps: []string{"gcc", "mcf"}, Ops: 2000, Warmup: 500, Seed: 1}
	m, err := BuildManifest("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != manifest.Version || m.Figure != "fig6" || m.Kind != manifest.KindFigures {
		t.Fatalf("manifest header wrong: %+v", m)
	}
	if m.Ops != 2000 || m.Warmup != 500 || m.Seed != 1 || len(m.Apps) != 2 {
		t.Fatalf("manifest spec wrong: %+v", m)
	}
	for _, app := range m.Apps {
		fp, ok := m.Workloads[app]
		if !ok || len(fp) != 16 {
			t.Fatalf("workload fingerprint missing/malformed for %s: %q", app, fp)
		}
	}
	for _, label := range []string{"InO", "LSC", "Freeway", "CASINO", "OoO"} {
		if _, ok := m.Metrics["fig6.norm_ipc_geomean."+label]; !ok {
			t.Errorf("missing geomean metric for %s", label)
		}
	}
	if v := m.Metrics["fig6.norm_ipc_geomean.InO"]; v != 1 {
		t.Errorf("InO baseline geomean = %v, want 1", v)
	}
	// Per-label registry means must be present (named internal counters).
	if _, ok := m.Metrics["fig6.mean.CASINO.siqFrac"]; !ok {
		t.Error("missing per-label mean of a registry metric (fig6.mean.CASINO.siqFrac)")
	}
	if _, ok := m.Metrics["fig6.mean.OoO.occ.rob.mean"]; !ok {
		t.Error("missing occupancy-hist mean (fig6.mean.OoO.occ.rob.mean)")
	}
}

func TestBuildManifestDeterministic(t *testing.T) {
	o := Options{Apps: []string{"gcc"}, Ops: 2000, Warmup: 500, Seed: 1}
	a, err := BuildManifest("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildManifest("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := manifest.Compare(a, b, manifest.CompareOptions{Default: manifest.Tolerance{}}); len(diffs) != 0 {
		t.Fatalf("identical runs must produce bit-identical metrics: %v", diffs)
	}
}

func TestBuildManifestPerturbationIsNamed(t *testing.T) {
	o := Options{Apps: []string{"gcc"}, Ops: 2000, Warmup: 500, Seed: 1}
	golden, err := BuildManifest("fig6", o)
	if err != nil {
		t.Fatal(err)
	}
	// A different seed is a spec change, caught before metric diffing.
	perturbed, err := BuildManifest("fig6", Options{Apps: []string{"gcc"}, Ops: 2000, Warmup: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	diffs := manifest.Compare(golden, perturbed, manifest.CompareOptions{})
	if len(diffs) == 0 || diffs[0].Kind != manifest.DiffSpec {
		t.Fatalf("seed change must be a spec diff: %v", diffs)
	}
}

func TestBuildManifestUnknownFigure(t *testing.T) {
	if _, err := BuildManifest("table1", Options{}); err == nil {
		t.Error("unknown figure accepted")
	}
}
