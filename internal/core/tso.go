package core

import "casino/internal/mem"

// §III-C4 (last paragraph): under TSO, load→load ordering must be
// preserved. CASINO enforces it without LQ searches: a load issued
// speculatively ahead of older non-performed loads places a sentinel on
// its cache line; the line withholds the acknowledgement of an
// invalidation from a remote store until the load commits and removes the
// sentinel — delaying the *remote* store's retirement instead of
// searching a local LQ.
//
// The paper evaluates a single core, so this mechanism is exercised here
// with a synthetic remote-invalidation injector (a stand-in for a second
// core's stores arriving through the coherence protocol): deterministic
// pseudo-random invalidations target recently loaded lines, and the model
// measures how many acknowledgements are withheld and for how long.

// lineSentinels tracks, per cache line, the youngest speculatively issued
// load guarding it (the paper's per-line sentinel bit plus ROB ID).
type lineSentinels struct {
	lines map[uint64]uint64 // line address -> youngest guarding load seq

	Set      uint64
	Cleared  uint64
	Withheld uint64 // invalidation acks delayed by a sentinel
}

func newLineSentinels() *lineSentinels {
	return &lineSentinels{lines: make(map[uint64]uint64)}
}

// set places (or refreshes) the sentinel for the load's line.
func (ls *lineSentinels) set(addr uint64, loadSeq uint64) {
	line := mem.LineAddr(addr)
	if cur, ok := ls.lines[line]; !ok || loadSeq > cur {
		ls.lines[line] = loadSeq
	}
	ls.Set++
}

// clear removes the sentinel if loadSeq is its current owner.
func (ls *lineSentinels) clear(addr uint64, loadSeq uint64) {
	line := mem.LineAddr(addr)
	if cur, ok := ls.lines[line]; ok && cur == loadSeq {
		delete(ls.lines, line)
		ls.Cleared++
	}
}

// clearAll drops every line sentinel (flush recovery).
func (ls *lineSentinels) clearAll() {
	for l := range ls.lines {
		delete(ls.lines, l)
	}
}

// guarded reports whether the line holding addr carries a sentinel.
func (ls *lineSentinels) guarded(addr uint64) bool {
	_, ok := ls.lines[mem.LineAddr(addr)]
	return ok
}

// RemoteTraffic configures the synthetic coherence-traffic injector.
// Period is the number of cycles between remote invalidations (0 disables
// the injector — the paper's single-core evaluation). Invalidations
// target recently loaded lines, the case the sentinel mechanism exists
// for.
type RemoteTraffic struct {
	Period int
}

// remoteInjector generates deterministic remote invalidations.
type remoteInjector struct {
	period   int64
	next     int64
	rngState uint64
	recent   []uint64 // ring of recently loaded line addresses
	pos      int

	Invalidations uint64
	WithheldAcks  uint64
	DelayCycles   uint64 // total cycles remote stores were delayed
}

func newRemoteInjector(cfg RemoteTraffic) *remoteInjector {
	if cfg.Period <= 0 {
		return nil
	}
	return &remoteInjector{
		period:   int64(cfg.Period),
		next:     int64(cfg.Period),
		rngState: 0x9E3779B97F4A7C15,
		recent:   make([]uint64, 64),
	}
}

func (r *remoteInjector) observeLoad(addr uint64) {
	if r == nil {
		return
	}
	r.recent[r.pos] = mem.LineAddr(addr)
	r.pos = (r.pos + 1) % len(r.recent)
}

func (r *remoteInjector) rand() uint64 {
	r.rngState ^= r.rngState << 13
	r.rngState ^= r.rngState >> 7
	r.rngState ^= r.rngState << 17
	return r.rngState
}

// tick fires due invalidations against the line-sentinel table. A guarded
// line withholds its acknowledgement; the model charges the delay until
// the guarding load's expected commit (approximated by the ROB drain
// time) to the remote store.
func (r *remoteInjector) tick(now int64, ls *lineSentinels, robOccupancy int) {
	if r == nil || now < r.next {
		return
	}
	r.next = now + r.period
	line := r.recent[r.rand()%uint64(len(r.recent))]
	if line == 0 {
		return
	}
	r.Invalidations++
	if _, ok := ls.lines[line]; ok {
		ls.Withheld++
		r.WithheldAcks++
		// The ack waits for the guarding load to commit: bounded by the
		// time to drain the instructions ahead of it in the ROB.
		r.DelayCycles += uint64(robOccupancy)
	}
}
