package core

import (
	"casino/internal/bpred"
	"casino/internal/energy"
	"casino/internal/eventq"
	"casino/internal/frontend"
	"casino/internal/isa"
	"casino/internal/lsu"
	"casino/internal/mem"
	"casino/internal/pipeline"
	"casino/internal/ptrace"
	"casino/internal/regfile"
	"casino/internal/stats"
	"casino/internal/trace"
)

// opEntry tracks one in-flight instruction from S-IQ dispatch to commit.
type opEntry struct {
	op         *isa.MicroOp
	queue      int8 // index of the queue holding it; -1 once issued
	issued     bool
	fromSIQ    bool // issued speculatively from an S-IQ stage
	done       int64
	issueCycle int64

	newP  regfile.PReg // freshly allocated physical register (or PRegNone)
	oldP  regfile.PReg // previous mapping (released at commit)
	dstP  regfile.PReg // register the destination maps to (shared if passed)
	srcP1 regfile.PReg
	srcP2 regfile.PReg

	// Producer ops captured at S-IQ exit (conditional renaming), paired
	// with the producer's sequence number at capture time. Entries recycle
	// through a freelist at commit, so a bare pointer can outlive the
	// instruction it was captured for; prodSeq1/2 detect that. Use
	// liveProducer, never the raw pointers.
	prod1    *opEntry
	prod2    *opEntry
	prodSeq1 uint64
	prodSeq2 uint64

	hasDB    bool // holds a data buffer entry (IQ-issued, conditional renaming)
	specLoad bool // load issued past an unresolved older store
	sentinel bool // load placed a sentinel on a store
	lineSent bool // load placed a TSO sentinel on its cache line

	// preAlloc marks a window entry whose ROB/SQ slots were allocated and
	// whose sources were group-renamed when a younger window entry issued
	// past it (Fig. 4's group rename keeps the ROB and SQ in program
	// order even though the younger instruction left first).
	preAlloc bool
}

// liveProducer resolves a captured producer reference. Once the producer
// commits its entry is recycled: while it sits on the freelist it still
// carries the old op (issued, done in the past — readiness checks read it
// as complete, the correct committed outcome), and once reused it carries
// a different Seq and liveProducer returns nil, which readiness checks
// treat as "value architectural" — the same committed outcome. A recycled
// entry can never be reused for the captured Seq again: commit order is
// monotonic, so refetched sequence numbers are always younger than any
// committed producer, and a consumer holding a reference to a
// flush-squashed producer is itself younger and squashed with it.
func liveProducer(p *opEntry, seq uint64) *opEntry {
	if p == nil || p.op == nil || p.op.Seq != seq {
		return nil
	}
	return p
}

// Core is the CASINO core.
type Core struct {
	cfg  Config
	now  int64
	fe   *frontend.FrontEnd
	hier *mem.Hierarchy
	fus  *pipeline.FUPool
	acct *energy.Accountant
	rf   *regfile.File
	sq   *lsu.StoreQueue
	lq   *lsu.LoadQueue // conventional LQ (DisambigFullLQ only)
	osca *lsu.OSCA
	log  regfile.RecoveryLog
	wq   *eventq.Queue // shared wakeup queue (event-driven clock)

	lineSent *lineSentinels   // TSO load-load ordering sentinels (§III-C4)
	remote   *remoteInjector  // synthetic coherence traffic (nil = off)
	pt       *ptrace.Recorder // optional pipeline-event recorder (nil = off)
	cpi      ptrace.CPI       // per-cycle stall attribution (always on)

	// queues[0] is the first S-IQ, queues[1..MidSIQs] the intermediate
	// S-IQs, queues[len-1] the final in-order IQ. Older instructions live
	// in higher-indexed queues. Each queue is a fixed-capacity ring sized
	// at its configuration cap.
	queues []opRing

	rob opRing

	// free recycles opEntry objects: entries return here at commit and on
	// flush, so steady state allocates nothing per instruction. Entries on
	// the freelist keep their last op until reused (see liveProducer).
	free         []*opEntry
	entryAllocs  uint64 // opEntry heap allocations (freelist misses)
	entryRecycle uint64 // entries returned to the freelist

	lastWriter [isa.NumArchRegs]*opEntry
	dbUsed     int
	flushed    bool // a violation flush occurred this cycle; abort scheduling

	committed uint64

	hSIQ, hIQ, hRAT, hScbd, hPRF, hROB, hSQ, hOSCA, hDB, hFL, hLog, hLQ int

	// Statistics.
	IssuedSIQMem    uint64
	IssuedSIQNonMem uint64
	IssuedIQMem     uint64
	IssuedIQNonMem  uint64
	Violations      uint64
	Flushes         uint64
	LoadsForwarded  uint64
	PassedToIQ      uint64
	ProducerDist    *stats.Hist // IQ distance producer→passed consumer (§II-C)

	// Per-structure occupancy histograms, sampled once per cycle (entries
	// resident at cycle start). Buckets cover 0..capacity so steady-state
	// sampling never allocates or overflows.
	OccSIQ *stats.Hist // first S-IQ
	OccIQ  *stats.Hist // final in-order IQ
	OccROB *stats.Hist
	OccSQ  *stats.Hist

	// Head-of-S-IQ stall diagnostics (why the head could not exit).
	StallIQFull    uint64 // pass blocked: next queue full
	StallPReg      uint64 // issue blocked: no free physical register
	StallProdCount uint64 // pass blocked: ProducerCount saturated
	StallROBSQ     uint64 // exit blocked: ROB or SQ full
	StallFU        uint64 // issue blocked: no functional unit / issue slot
	StallDataBuf   uint64 // IQ issue blocked: data buffer full
}

// New builds a CASINO core over the trace. It panics on an invalid Config
// (construction-time misuse, not a runtime condition).
func New(cfg Config, tr *trace.Trace, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	return NewAt(cfg, tr, 0, nil, hier, acct)
}

// NewAt builds a core whose frontend starts at trace position start with an
// injected (possibly pre-trained) branch predictor; pred == nil allocates a
// fresh one. The sampled-simulation driver uses it to open detailed windows
// mid-trace against warmed shared state.
func NewAt(cfg Config, tr *trace.Trace, start int, pred *bpred.Predictor, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Core{
		cfg:          cfg,
		hier:         hier,
		fus:          pipeline.ScaledFUPool(cfg.Width),
		acct:         acct,
		rf:           regfile.New(cfg.IntPRF, cfg.FPPRF, uint8(cfg.MaxProducers)),
		sq:           lsu.NewStoreQueue(cfg.SQSize),
		rob:          newOpRing(cfg.ROBSize),
		ProducerDist: stats.NewHist(16),
		OccSIQ:       stats.NewHist(cfg.SIQSize + 1),
		OccIQ:        stats.NewHist(cfg.IQSize + 1),
		OccROB:       stats.NewHist(cfg.ROBSize + 1),
		OccSQ:        stats.NewHist(cfg.SQSize + 1),
	}
	if cfg.OSCASize > 0 && cfg.Disambig == DisambigOSCA {
		max := uint8(cfg.SQSize)
		c.osca = lsu.NewOSCA(cfg.OSCASize, max)
	}
	if cfg.Disambig == DisambigFullLQ {
		c.lq = lsu.NewLoadQueue(cfg.LQSize)
	}
	c.lineSent = newLineSentinels()
	c.remote = newRemoteInjector(cfg.Remote)
	// Shared wakeup queue: sized for the in-flight event population (one
	// completion per ROB/SQ entry plus stalls) so it never grows.
	c.wq = eventq.New(2*(cfg.ROBSize+cfg.SQSize) + 16)
	c.fus.SetWakeQueue(c.wq)
	c.sq.SetWakeQueue(c.wq)
	hier.SetWakeQueue(c.wq)
	if c.remote != nil {
		c.wq.Wake(c.remote.next)
	}
	nq := 2 + cfg.MidSIQs
	c.queues = make([]opRing, nq)
	c.queues[0] = newOpRing(cfg.SIQSize)
	for i := 1; i <= cfg.MidSIQs; i++ {
		c.queues[i] = newOpRing(cfg.MidSIQSize)
	}
	c.queues[nq-1] = newOpRing(cfg.IQSize)
	acct.FrontendScale = 1.4 // 9-stage pipeline vs the 7-stage InO
	rd := tr.Reader()
	rd.Seek(start)
	if pred == nil {
		pred = bpred.NewPredictor()
	}
	c.fe = frontend.New(
		frontend.Config{Width: cfg.Width, Depth: cfg.FrontDepth, BufCap: 2 * cfg.Width},
		rd, pred, hier, acct)
	c.fe.SetWakeQueue(c.wq)

	siqEntries := cfg.SIQSize + cfg.MidSIQs*cfg.MidSIQSize
	c.hSIQ = acct.Register(energy.Structure{Name: "S-IQ", Entries: siqEntries, Bits: 64, Ports: 2 * cfg.Width})
	c.hIQ = acct.Register(energy.Structure{Name: "IQ", Entries: cfg.IQSize, Bits: 72, Ports: 2 * cfg.Width})
	c.hRAT = acct.Register(energy.Structure{Name: "RAT", Entries: isa.NumArchRegs, Bits: 8, Ports: 3 * cfg.Width})
	c.hScbd = acct.Register(energy.Structure{Name: "PRFScbd", Entries: cfg.IntPRF + cfg.FPPRF, Bits: 12, Ports: 3 * cfg.Width})
	c.hPRF = acct.Register(energy.Structure{Name: "PRF", Entries: cfg.IntPRF + cfg.FPPRF, Bits: 64, Ports: 3 * cfg.Width})
	c.hROB = acct.Register(energy.Structure{Name: "ROB", Entries: cfg.ROBSize, Bits: 96, Ports: 2 * cfg.Width})
	c.hSQ = acct.Register(energy.Structure{Name: "SQ", Entries: cfg.SQSize, Bits: 112, Ports: 2, CAM: true, TagBits: 40})
	if c.osca != nil {
		c.hOSCA = acct.Register(energy.Structure{Name: "OSCA", Entries: cfg.OSCASize, Bits: 4, Ports: 4})
	} else {
		c.hOSCA = -1
	}
	c.hDB = acct.Register(energy.Structure{Name: "DataBuf", Entries: cfg.DataBufSize, Bits: 64, Ports: 2 * cfg.Width})
	c.hFL = acct.Register(energy.Structure{Name: "FreeList", Entries: cfg.IntPRF + cfg.FPPRF, Bits: 8, Ports: 2 * cfg.Width})
	c.hLog = acct.Register(energy.Structure{Name: "RecoveryLog", Entries: 2 * cfg.Width * 4, Bits: 24, Ports: 2 * cfg.Width})
	if c.lq != nil {
		c.hLQ = acct.Register(energy.Structure{Name: "LQ", Entries: cfg.LQSize, Bits: 64, Ports: 2, CAM: true, TagBits: 40})
	} else {
		c.hLQ = -1
	}
	return c
}

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Committed returns the number of committed micro-ops.
func (c *Core) Committed() uint64 { return c.committed }

// Mispredicts returns the front-end mispredict count.
func (c *Core) Mispredicts() uint64 { return c.fe.Mispredicts }

// RegAllocs returns physical-register allocation count (Fig. 7a).
func (c *Core) RegAllocs() uint64 { return c.rf.Allocs }

// OSCA returns the outstanding store counter array (nil if disabled).
func (c *Core) OSCA() *lsu.OSCA { return c.osca }

// StoreQueue exposes the unified SQ/SB (activity counters for Fig. 8).
func (c *Core) StoreQueue() *lsu.StoreQueue { return c.sq }

// Done reports whether the trace is exhausted and the pipeline drained.
func (c *Core) Done() bool {
	if !c.fe.Done() || c.rob.len() != 0 || c.sq.Len() != 0 {
		return false
	}
	for i := range c.queues {
		if c.queues[i].len() != 0 {
			return false
		}
	}
	return true
}

// LineSentinels exposes TSO line-sentinel statistics (set/cleared/withheld).
func (c *Core) LineSentinels() (set, cleared, withheld uint64) {
	return c.lineSent.Set, c.lineSent.Cleared, c.lineSent.Withheld
}

// RemoteStats exposes the synthetic coherence injector's counters
// (invalidations fired, acks withheld, total remote-store delay cycles).
func (c *Core) RemoteStats() (invals, withheld, delayCycles uint64) {
	if c.remote == nil {
		return 0, 0, 0
	}
	return c.remote.Invalidations, c.remote.WithheldAcks, c.remote.DelayCycles
}

// Cycle advances the core by one clock.
func (c *Core) Cycle() {
	now := c.now
	committed0, flushes0 := c.committed, c.Flushes
	c.wq.Drain(now)
	c.OccSIQ.Add(c.queues[0].len())
	c.OccIQ.Add(c.queues[len(c.queues)-1].len())
	c.OccROB.Add(c.rob.len())
	c.OccSQ.Add(c.sq.Len())
	if r := c.remote; r != nil {
		next0 := r.next
		r.tick(now, c.lineSent, c.rob.len())
		if r.next != next0 {
			c.wq.Wake(r.next)
		}
	}
	c.retireStores(now)
	c.commit(now)
	c.schedule(now)
	c.dispatch()
	c.fe.Cycle(now)
	c.tickCPI(now, committed0, flushes0)
	c.now++
	c.acct.Cycles++
}

func (c *Core) robAt(i int) *opEntry { return c.rob.at(i) }

// allocEntry takes an entry from the freelist (or the heap on a miss) and
// resets it for op. References captured against the entry's previous life
// are invalidated by the Seq change (see liveProducer).
func (c *Core) allocEntry(op *isa.MicroOp) *opEntry {
	var e *opEntry
	if k := len(c.free); k > 0 {
		e = c.free[k-1]
		c.free = c.free[:k-1]
	} else {
		e = new(opEntry)
		c.entryAllocs++
	}
	// Clear-then-set compiles to a duff-zero plus a few stores; assigning a
	// composite literal copied the whole 100-byte struct through a temp.
	*e = opEntry{}
	e.op = op
	e.newP, e.oldP, e.dstP = regfile.PRegNone, regfile.PRegNone, regfile.PRegNone
	e.srcP1, e.srcP2 = regfile.PRegNone, regfile.PRegNone
	return e
}

// recycleEntry returns an entry to the freelist. The caller guarantees the
// entry has left every queue and the ROB; lastWriter references must have
// been cleared. The op pointer is intentionally kept: stale producer
// references read the old (committed/squashed) state until reuse.
func (c *Core) recycleEntry(e *opEntry) {
	c.entryRecycle++
	c.free = append(c.free, e)
}

func (c *Core) retireStores(now int64) {
	if c.sq.HeadRetirable(now) {
		e := c.sq.Head()
		done := c.hier.Store(e.PC, e.Addr, now)
		c.acct.L1Access++
		c.sq.StartRetire(done)
	}
	if e, ok := c.sq.PopRetired(now); ok && c.osca != nil {
		c.osca.Dec(e.Addr, e.Size)
		c.acct.Inc(c.hOSCA, energy.Write, 1)
	}
}

// commit retires up to Width completed instructions from the ROB head.
func (c *Core) commit(now int64) {
	for k := 0; k < c.cfg.Width && c.rob.len() > 0; k++ {
		e := c.robAt(0)
		if !e.issued || e.done > now {
			return
		}
		op := e.op
		c.acct.Inc(c.hROB, energy.Read, 1)
		if op.Class == isa.Load {
			if c.lq != nil {
				c.lq.Release(op.Seq)
				c.acct.Inc(c.hLQ, energy.Read, 1)
			} else if e.specLoad {
				// On-commit value-check (§III-C4): replay the SB search.
				c.acct.Inc(c.hSQ, energy.Search, 1)
				if c.sq.ValidateLoad(op.Seq, op.Addr, op.Size, e.issueCycle) {
					c.flushFrom(op.Seq, now)
					return
				}
			}
		}
		if e.sentinel {
			c.sq.ClearSentinel(op.Seq)
		}
		if e.lineSent {
			c.lineSent.clear(op.Addr, op.Seq)
		}
		if op.Class == isa.Store {
			c.sq.Commit(op.Seq)
			c.acct.Inc(c.hSQ, energy.Write, 1)
		}
		if e.newP != regfile.PRegNone {
			c.rf.Release(e.oldP)
			c.acct.Inc(c.hFL, energy.Write, 1)
		}
		if e.hasDB {
			// Drain the data buffer value into the PRF.
			c.dbUsed--
			c.acct.Inc(c.hDB, energy.Read, 1)
			c.acct.Inc(c.hPRF, energy.Write, 1)
		}
		c.log.Commit(op.Seq)
		c.emit(now, op.Seq, ptrace.KindCommit)
		// A committed last-writer's value is architectural; clearing the
		// reference here (rather than leaving a tombstone) is what lets
		// the entry recycle safely.
		if op.HasDst() && c.lastWriter[op.Dst] == e {
			c.lastWriter[op.Dst] = nil
		}
		c.rob.popFront()
		c.committed++
		c.recycleEntry(e)
	}
}

// flushFrom squashes the instruction with sequence victim and everything
// younger, repairs the rename state from the recovery log, recovers
// ProducerCounts and the OSCA, and refetches (§III-C5). The on-commit
// value check always flushes from the ROB head (full flush); the FullLQ
// baseline flushes mid-pipeline when a resolving store hits a younger
// issued load.
func (c *Core) flushFrom(victim uint64, now int64) {
	c.Violations++
	c.Flushes++
	c.emit(now, victim, ptrace.KindFlush)
	// Undo speculative renames, youngest first.
	c.acct.Inc(c.hLog, energy.Read, uint64(c.log.Len()))
	c.log.Unwind(c.rf, victim)
	// ProducerCount recovery: dequeue squashed unissued queue residents.
	// Squashed entries still waiting in the first S-IQ without a pre-
	// allocated ROB slot exist nowhere else and recycle here; everything
	// that reached the ROB (passed or pre-allocated) recycles in the ROB
	// pop below.
	for qi := range c.queues {
		inROB := qi > 0
		c.queues[qi].filter(
			func(e *opEntry) bool { return e.op.Seq < victim },
			func(e *opEntry) {
				if !e.issued && e.newP == regfile.PRegNone && e.dstP != regfile.PRegNone {
					c.rf.RemoveProducer(e.dstP)
					c.acct.Inc(c.hScbd, energy.Write, 1)
				}
				if !inROB && !e.preAlloc {
					c.emit(now, e.op.Seq, ptrace.KindSquash)
					c.recycleEntry(e)
				}
			})
	}
	// Pop squashed ROB entries from the tail.
	for c.rob.len() > 0 {
		e := c.robAt(c.rob.len() - 1)
		if e.op.Seq < victim {
			break
		}
		if e.hasDB {
			c.dbUsed--
		}
		c.emit(now, e.op.Seq, ptrace.KindSquash)
		c.rob.popBack()
		c.recycleEntry(e)
	}
	// OSCA recovery: squashed resolved stores decrement their counters.
	for _, se := range c.sq.SquashYoungerThan(victim) {
		if se.Resolved && c.osca != nil {
			c.osca.Dec(se.Addr, se.Size)
			c.acct.Inc(c.hOSCA, energy.Write, 1)
		}
	}
	c.sq.ClearAllSentinels()
	c.lineSent.clearAll()
	if c.lq != nil {
		c.lq.SquashYoungerThan(victim)
	}
	// Squashed last-writers revert to the architectural mapping restored
	// by the recovery log.
	for i := range c.lastWriter {
		if c.lastWriter[i] != nil && c.lastWriter[i].op.Seq >= victim {
			c.lastWriter[i] = nil
		}
	}
	c.fe.Squash(victim, now)
}

// dispatch moves decoded ops from the front end into the first S-IQ.
func (c *Core) dispatch() {
	q := &c.queues[0]
	for k := 0; k < c.cfg.Width && q.len() < q.cap(); k++ {
		op := c.fe.Pop()
		if op == nil {
			return
		}
		q.pushBack(c.allocEntry(op))
		c.acct.Inc(c.hSIQ, energy.Write, 1)
		c.emit(c.now, op.Seq, ptrace.KindDispatch)
	}
}
