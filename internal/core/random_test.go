package core

import (
	"math/rand"
	"testing"

	"casino/internal/energy"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/trace"
)

// randomOps builds a structurally valid random micro-op trace: every
// source register is eventually produced (the preamble defines all), PCs
// advance, branches are consistent fall-through/loop shapes, and memory
// ops carry non-zero sizes.
func randomOps(rng *rand.Rand, n int) []isa.MicroOp {
	ops := make([]isa.MicroOp, 0, n+isa.NumArchRegs)
	pc := uint64(0x1000)
	// Preamble: define every register.
	for i := 0; i < isa.NumIntRegs; i++ {
		ops = append(ops, isa.MicroOp{PC: pc, Class: isa.IntALU, Dst: isa.IntReg(i), Src1: isa.RegNone, Src2: isa.RegNone})
		pc += 4
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		ops = append(ops, isa.MicroOp{PC: pc, Class: isa.FPAdd, Dst: isa.FPReg(i), Src1: isa.RegNone, Src2: isa.RegNone})
		pc += 4
	}
	intReg := func() isa.Reg { return isa.IntReg(rng.Intn(isa.NumIntRegs)) }
	fpReg := func() isa.Reg { return isa.FPReg(rng.Intn(isa.NumFPRegs)) }
	for len(ops) < n {
		var op isa.MicroOp
		op.PC = pc
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // int ALU
			op.Class = isa.IntALU
			op.Dst, op.Src1, op.Src2 = intReg(), intReg(), intReg()
		case 4: // FP
			op.Class = [3]isa.Class{isa.FPAdd, isa.FPMul, isa.FPDiv}[rng.Intn(3)]
			op.Dst, op.Src1, op.Src2 = fpReg(), fpReg(), fpReg()
		case 5: // mul/div
			op.Class = [2]isa.Class{isa.IntMul, isa.IntDiv}[rng.Intn(2)]
			op.Dst, op.Src1, op.Src2 = intReg(), intReg(), intReg()
		case 6, 7: // load (addresses within a small aliasing-prone pool)
			op.Class = isa.Load
			op.Dst, op.Src1, op.Src2 = intReg(), intReg(), isa.RegNone
			op.Addr = 0x10000 + uint64(rng.Intn(64))*8
			op.Size = uint8([3]int{4, 8, 2}[rng.Intn(3)])
		case 8: // store
			op.Class = isa.Store
			op.Dst, op.Src1, op.Src2 = isa.RegNone, intReg(), intReg()
			op.Addr = 0x10000 + uint64(rng.Intn(64))*8
			op.Size = uint8([3]int{4, 8, 2}[rng.Intn(3)])
		case 9: // not-taken conditional branch (keeps PCs linear)
			op.Class = isa.Branch
			op.Dst, op.Src1, op.Src2 = isa.RegNone, intReg(), isa.RegNone
			op.Taken = false
			op.Target = pc + 64
		}
		ops = append(ops, op)
		pc += 4
	}
	for i := range ops {
		ops[i].Seq = uint64(i)
	}
	return ops
}

// TestRandomTracesAllModes is the catch-all: many random traces, dense
// with same-address loads and stores, must run to completion with exact
// commit counts and conserved resources under every disambiguation and
// renaming mode.
func TestRandomTracesAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	modes := []DisambigMode{DisambigOSCA, DisambigNoLQ, DisambigFullLQ, DisambigAGIOrder}
	for iter := 0; iter < 25; iter++ {
		ops := randomOps(rng, 600+rng.Intn(600))
		mode := modes[iter%len(modes)]
		cfg := DefaultConfig()
		cfg.Disambig = mode
		if mode != DisambigOSCA {
			cfg.OSCASize = 0
		}
		if iter%8 >= 4 {
			cfg.Renaming = RenameConventional
		}
		tr := &trace.Trace{Name: "rand", Ops: append([]isa.MicroOp(nil), ops...)}
		if err := tr.Validate(); err != nil {
			t.Fatalf("generator produced invalid trace: %v", err)
		}
		hier := mem.NewHierarchy(mem.DefaultConfig())
		c := New(cfg, tr, hier, energy.NewAccountant())
		freeInt0, freeFP0 := c.rf.FreeCount(false), c.rf.FreeCount(true)
		cc := &commitChecker{t: t}
		c.SetPipeTrace(cc.recorder())
		for i := 0; i < 5_000_000 && !c.Done(); i++ {
			c.Cycle()
		}
		if !c.Done() {
			t.Fatalf("iter %d (%v/%v): livelock at %d/%d committed",
				iter, mode, cfg.Renaming, c.Committed(), tr.Len())
		}
		if c.Committed() != uint64(tr.Len()) {
			t.Fatalf("iter %d: committed %d of %d", iter, c.Committed(), tr.Len())
		}
		if c.rf.FreeCount(false) != freeInt0 || c.rf.FreeCount(true) != freeFP0 {
			t.Fatalf("iter %d: register leak", iter)
		}
		if c.dbUsed != 0 {
			t.Fatalf("iter %d: data buffer leak (%d)", iter, c.dbUsed)
		}
	}
}

// The same random traces must produce identical commit counts on every
// disambiguation mode (timing differs; architecture must not).
func TestRandomTraceCrossModeAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	ops := randomOps(rng, 1500)
	var cycles []int64
	for _, mode := range []DisambigMode{DisambigOSCA, DisambigNoLQ, DisambigFullLQ, DisambigAGIOrder} {
		cfg := DefaultConfig()
		cfg.Disambig = mode
		if mode != DisambigOSCA {
			cfg.OSCASize = 0
		}
		tr := &trace.Trace{Name: "rand", Ops: append([]isa.MicroOp(nil), ops...)}
		c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
		run(t, c)
		if c.Committed() != uint64(tr.Len()) {
			t.Fatalf("%v: committed %d of %d", mode, c.Committed(), tr.Len())
		}
		cycles = append(cycles, c.Now())
	}
	// AGI ordering must not be faster than the speculative schemes on an
	// alias-dense trace... it can tie, but a large win would mean the
	// speculative paths are broken.
	if cycles[3] < cycles[0]*9/10 {
		t.Errorf("AGI ordering (%d cyc) much faster than OSCA scheme (%d cyc)", cycles[3], cycles[0])
	}
}

// TestOpRingRandomized drives opRing with a random interleaving of every
// operation and cross-checks each step against a naive slice model.
func TestOpRingRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		capa := 1 + rng.Intn(24)
		r := newOpRing(capa)
		var model []*opEntry
		check := func(step int) {
			t.Helper()
			if r.len() != len(model) || r.cap() != capa {
				t.Fatalf("iter %d step %d: len/cap %d/%d, want %d/%d",
					iter, step, r.len(), r.cap(), len(model), capa)
			}
			for i := range model {
				if r.at(i) != model[i] {
					t.Fatalf("iter %d step %d: at(%d) mismatch", iter, step, i)
				}
			}
		}
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(6); {
			case op <= 1 && len(model) < capa:
				e := &opEntry{}
				r.pushBack(e)
				model = append(model, e)
			case op == 2 && len(model) > 0:
				if got := r.popFront(); got != model[0] {
					t.Fatalf("iter %d step %d: popFront mismatch", iter, step)
				}
				model = model[1:]
			case op == 3 && len(model) > 0:
				if got := r.popBack(); got != model[len(model)-1] {
					t.Fatalf("iter %d step %d: popBack mismatch", iter, step)
				}
				model = model[:len(model)-1]
			case op == 4 && len(model) > 0:
				k := rng.Intn(len(model))
				if got := r.removeAt(k); got != model[k] {
					t.Fatalf("iter %d step %d: removeAt(%d) mismatch", iter, step, k)
				}
				model = append(model[:k:k], model[k+1:]...)
			case op == 5:
				keep := map[*opEntry]bool{}
				for _, e := range model {
					keep[e] = rng.Intn(3) > 0
				}
				var wantDropped, kept []*opEntry
				for _, e := range model {
					if keep[e] {
						kept = append(kept, e)
					} else {
						wantDropped = append(wantDropped, e)
					}
				}
				var gotDropped []*opEntry
				r.filter(func(e *opEntry) bool { return keep[e] },
					func(e *opEntry) { gotDropped = append(gotDropped, e) })
				if len(gotDropped) != len(wantDropped) {
					t.Fatalf("iter %d step %d: filter dropped %d, want %d",
						iter, step, len(gotDropped), len(wantDropped))
				}
				for i := range wantDropped {
					if gotDropped[i] != wantDropped[i] {
						t.Fatalf("iter %d step %d: filter dropped order mismatch", iter, step)
					}
				}
				model = kept
			}
			check(step)
		}
	}
}

// TestEntryRecycleAfterCommit: on a branch-free, store-free trace nothing
// ever flushes, so every dispatched entry is recycled exactly once at
// commit and the freelist ends up holding every entry ever allocated.
func TestEntryRecycleAfterCommit(t *testing.T) {
	ops := make([]isa.MicroOp, 0, 800)
	pc := uint64(0x1000)
	for i := 0; i < isa.NumIntRegs; i++ {
		ops = append(ops, isa.MicroOp{PC: pc, Class: isa.IntALU, Dst: isa.IntReg(i), Src1: isa.RegNone, Src2: isa.RegNone})
		pc += 4
	}
	for len(ops) < 800 {
		d := len(ops) % isa.NumIntRegs
		ops = append(ops, isa.MicroOp{PC: pc, Class: isa.IntALU,
			Dst: isa.IntReg(d), Src1: isa.IntReg((d + 1) % isa.NumIntRegs), Src2: isa.IntReg((d + 3) % isa.NumIntRegs)})
		pc += 4
	}
	for i := range ops {
		ops[i].Seq = uint64(i)
	}
	tr := &trace.Trace{Name: "recycle", Ops: ops}
	c := New(DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	run(t, c)
	if c.Committed() != uint64(tr.Len()) {
		t.Fatalf("committed %d of %d", c.Committed(), tr.Len())
	}
	if c.entryRecycle != uint64(tr.Len()) {
		t.Errorf("entryRecycle = %d, want %d (one recycle per committed op)", c.entryRecycle, tr.Len())
	}
	if len(c.free) != int(c.entryAllocs) {
		t.Errorf("freelist holds %d entries, %d were allocated (leak or double-recycle)",
			len(c.free), c.entryAllocs)
	}
	max := uint64(c.rob.cap())
	for i := range c.queues {
		max += uint64(c.queues[i].cap())
	}
	if c.entryAllocs > max {
		t.Errorf("entryAllocs = %d exceeds total in-flight capacity %d (pool not reusing)", c.entryAllocs, max)
	}
}

// TestEntryRecycleAfterFlush: alias-dense random traces under speculative
// NoLQ disambiguation flush on memory-order violations; squashed entries
// must return to the freelist (and be re-allocated on refetch) without
// leaks or double-recycles.
func TestEntryRecycleAfterFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sawFlushRecycle := false
	for iter := 0; iter < 12; iter++ {
		ops := randomOps(rng, 900)
		cfg := DefaultConfig()
		cfg.Disambig = DisambigNoLQ
		cfg.OSCASize = 0
		tr := &trace.Trace{Name: "rand", Ops: ops}
		c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
		run(t, c)
		if len(c.free) != int(c.entryAllocs) {
			t.Fatalf("iter %d: freelist holds %d entries, %d allocated (leak or double-recycle)",
				iter, len(c.free), c.entryAllocs)
		}
		if c.entryRecycle < c.Committed() {
			t.Fatalf("iter %d: entryRecycle %d < committed %d", iter, c.entryRecycle, c.Committed())
		}
		// A violation squashes at least the victim load, which is then
		// refetched and recycled a second time at commit.
		if c.Violations > 0 && c.entryRecycle > c.Committed() {
			sawFlushRecycle = true
		}
	}
	if !sawFlushRecycle {
		t.Error("no iteration exercised the flush-recycle path (violations never squashed entries)")
	}
}
