package core

// opRing is a fixed-capacity, order-preserving ring of in-flight
// instruction entries. The cascaded scheduling queues and the ROB are
// bounded by construction, so a ring sized at the configuration cap never
// reallocates — unlike the previous append/re-slice slices, which churned
// the allocator on the hottest path of every cycle. Removal keeps age
// order (oldest at index 0) by shifting whichever side of the hole is
// shorter; window removals happen within the first WS (≤4) slots, so the
// shift is a handful of pointer moves.
type opRing struct {
	buf  []*opEntry
	head int
	n    int
}

func newOpRing(capacity int) opRing {
	return opRing{buf: make([]*opEntry, capacity)}
}

func (r *opRing) len() int { return r.n }
func (r *opRing) cap() int { return len(r.buf) }

// at returns the i-th oldest entry (0 = oldest). i must be in [0, len).
// Index wrap uses a conditional subtract instead of %: head and i are both
// bounded by the capacity, and the divide showed up at the top of cycle
// profiles.
func (r *opRing) at(i int) *opEntry {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

// pushBack appends the youngest entry. Callers check capacity first; a
// push on a full ring is a scheduling bug, not a runtime condition.
func (r *opRing) pushBack(e *opEntry) {
	if r.n == len(r.buf) {
		panic("core: opRing push on full ring")
	}
	j := r.head + r.n
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	r.buf[j] = e
	r.n++
}

// popFront removes and returns the oldest entry.
func (r *opRing) popFront() *opEntry {
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return e
}

// popBack removes and returns the youngest entry (flush recovery).
func (r *opRing) popBack() *opEntry {
	i := r.head + r.n - 1
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	e := r.buf[i]
	r.buf[i] = nil
	r.n--
	return e
}

// removeAt deletes the entry at index i, preserving the order of the rest.
// Like at, all index wrap uses conditional subtracts — this runs on every
// S-IQ issue and the divides dominated its profile.
func (r *opRing) removeAt(i int) *opEntry {
	e := r.at(i)
	m := len(r.buf)
	if i <= r.n-1-i {
		// Shift the (shorter) front segment toward the tail by one.
		j := r.head + i
		if j >= m {
			j -= m
		}
		for j != r.head {
			k := j - 1
			if k < 0 {
				k = m - 1
			}
			r.buf[j] = r.buf[k]
			j = k
		}
		r.buf[r.head] = nil
		r.head++
		if r.head == m {
			r.head = 0
		}
	} else {
		// Shift the (shorter) back segment toward the head by one.
		j := r.head + i
		if j >= m {
			j -= m
		}
		last := r.head + r.n - 1
		if last >= m {
			last -= m
		}
		for j != last {
			k := j + 1
			if k == m {
				k = 0
			}
			r.buf[j] = r.buf[k]
			j = k
		}
		r.buf[last] = nil
	}
	r.n--
	return e
}

// filter keeps the entries keep reports true for, preserving order, and
// hands every removed entry to dropped (which may be nil). Used by flush
// recovery.
func (r *opRing) filter(keep func(*opEntry) bool, dropped func(*opEntry)) {
	m := len(r.buf)
	w := r.head
	kept := 0
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= m {
			j -= m
		}
		e := r.buf[j]
		if keep(e) {
			r.buf[w] = e
			kept++
			w++
			if w == m {
				w = 0
			}
		} else if dropped != nil {
			dropped(e)
		}
	}
	for i := kept; i < r.n; i++ {
		j := r.head + i
		if j >= m {
			j -= m
		}
		r.buf[j] = nil
	}
	r.n = kept
}
