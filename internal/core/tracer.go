package core

import (
	"casino/internal/isa"
	"casino/internal/ptrace"
)

// SetPipeTrace installs (or removes, with nil) a pipeline-event recorder.
// The front end shares the recorder so fetch events join the same stream.
func (c *Core) SetPipeTrace(rec *ptrace.Recorder) {
	c.pt = rec
	c.fe.SetPipeTrace(rec)
}

// CPIStack exposes the per-cycle stall attribution accumulated so far.
func (c *Core) CPIStack() *ptrace.CPI { return &c.cpi }

// Recycle returns pooled resources (the branch predictor) at end of run.
// The core must not be cycled afterwards.
func (c *Core) Recycle() { c.fe.RecyclePredictor() }

func (c *Core) emit(cycle int64, seq uint64, k ptrace.Kind) {
	if c.pt != nil {
		c.pt.Emit(ptrace.Event{Cycle: cycle, Seq: seq, Kind: k})
	}
}

// nopTime is the no-op arrival-time callback handed to the read-only
// readiness probes when classification only needs the boolean. Package
// level so taking its address does not allocate a closure per cycle.
func nopTime(int64) {}

// tickCPI attributes the cycle that just executed to exactly one CPI
// bucket and, when a recorder is active, publishes non-base cycles as
// stall events tagged with the culprit instruction. It runs after every
// pipeline stage of the cycle and uses only side-effect-free probes, so
// the attribution never perturbs the energy accounting.
func (c *Core) tickCPI(now int64, committed0, flushes0 uint64) {
	b, seq := c.classifyCycle(now, committed0, flushes0)
	c.cpi.Add(b)
	if c.pt != nil && b != ptrace.BucketBase {
		c.pt.Emit(ptrace.Event{Cycle: now, Seq: seq, Kind: ptrace.KindStall, Stall: b})
	}
}

// classifyCycle decides the cycle's CPI bucket: base if anything committed,
// replay if a flush fired, otherwise the reason the oldest in-flight
// instruction (the commit bottleneck) has not retired yet.
func (c *Core) classifyCycle(now int64, committed0, flushes0 uint64) (ptrace.Bucket, uint64) {
	if c.committed > committed0 {
		return ptrace.BucketBase, 0
	}
	if c.Flushes > flushes0 {
		return ptrace.BucketReplay, 0
	}
	if c.rob.len() > 0 {
		e := c.robAt(0)
		if e.issued {
			if e.op.Class.IsMem() {
				return ptrace.BucketDCache, e.op.Seq
			}
			return ptrace.BucketExec, e.op.Seq
		}
		// Unissued ROB head still sits in a scheduling queue (pre-allocated
		// window entries included); ask the queue's own readiness probe.
		last := len(c.queues) - 1
		var ready bool
		if int(e.queue) == last {
			ready = c.iqReadyProbe(e, now, nopTime)
		} else {
			ready = c.siqReadyProbe(int(e.queue), e, now, nopTime)
		}
		if !ready {
			return ptrace.BucketSrc, e.op.Seq
		}
		return c.issueBlockBucket(e), e.op.Seq
	}
	// Empty ROB: the oldest in-flight instruction, if any, is the head of
	// the first S-IQ (anything passed or pre-allocated would be in the ROB).
	if q := &c.queues[0]; q.len() > 0 {
		e := q.at(0)
		if !c.exitResourcesOK(0, e, 0) {
			return ptrace.BucketROBSQ, e.op.Seq
		}
		if c.siqReadyProbe(0, e, now, nopTime) {
			return c.issueBlockBucket(e), e.op.Seq
		}
		// Not ready, so the head wants to pass; mirror the pass path's
		// resource checks (diagnoseHeadStall order).
		if len(c.queues) > 1 && c.queues[1].len() >= c.queues[1].cap() {
			return ptrace.BucketIQFull, e.op.Seq
		}
		if !c.passResourcesProbe(0, e) {
			if c.cfg.Renaming == RenameConventional {
				return ptrace.BucketPReg, e.op.Seq
			}
			return ptrace.BucketProdCount, e.op.Seq
		}
		return ptrace.BucketSrc, e.op.Seq
	}
	if !c.fe.Done() {
		return ptrace.BucketICache, 0
	}
	return ptrace.BucketDrain, 0
}

// issueBlockBucket mirrors issueResourcesOK for a ready-but-stuck entry:
// which resource is the issue path missing.
func (c *Core) issueBlockBucket(e *opEntry) ptrace.Bucket {
	fromSIQ := int(e.queue) < len(c.queues)-1
	if e.op.HasDst() {
		if fromSIQ && e.queue == 0 && !c.rf.CanAllocate(e.op.Dst) {
			return ptrace.BucketPReg
		}
		if !fromSIQ && c.cfg.Renaming == RenameConditional && c.dbUsed >= c.cfg.DataBufSize {
			return ptrace.BucketDataBuf
		}
	}
	if e.op.Class == isa.Store && c.osca != nil && !c.osca.PeekCanInc(e.op.Addr, e.op.Size) {
		return ptrace.BucketReplay
	}
	return ptrace.BucketFU
}
