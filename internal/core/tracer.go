package core

// PipeEvent identifies a pipeline milestone of one instruction, for
// external observation (cmd/casino-pipeview renders them as a text
// pipeline diagram).
type PipeEvent uint8

// Pipeline events.
const (
	EvDispatch PipeEvent = iota // entered the first S-IQ
	EvPass                      // passed to the next queue
	EvIssueSIQ                  // issued speculatively from an S-IQ
	EvIssueIQ                   // issued in order from the final IQ
	EvComplete                  // result available (reported at issue time)
	EvCommit                    // retired from the ROB
	EvFlush                     // squashed by a memory-order violation
)

var pipeEventNames = [...]string{"dispatch", "pass", "issueS", "issueIQ", "complete", "commit", "flush"}

func (e PipeEvent) String() string {
	if int(e) < len(pipeEventNames) {
		return pipeEventNames[e]
	}
	return "?"
}

// Tracer observes per-instruction pipeline events. Implementations must
// be fast; the core invokes them inline.
type Tracer interface {
	Event(seq uint64, ev PipeEvent, cycle int64)
}

// SetTracer installs (or removes, with nil) a pipeline tracer.
func (c *Core) SetTracer(t Tracer) { c.tracer = t }

func (c *Core) trace(seq uint64, ev PipeEvent, cycle int64) {
	if c.tracer != nil {
		c.tracer.Event(seq, ev, cycle)
	}
}
