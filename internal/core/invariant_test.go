package core

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/mem"
	"casino/internal/ptrace"
	"casino/internal/regfile"
	"casino/internal/workload"
)

// commitChecker asserts the fundamental architectural invariant through
// the event bus: instructions commit exactly once each, in program order,
// regardless of how speculatively they issued or how many flushes occur.
type commitChecker struct {
	t    *testing.T
	next uint64
}

func (cc *commitChecker) recorder() *ptrace.Recorder {
	return ptrace.NewRecorder(ptrace.SinkFunc(func(e ptrace.Event) {
		if e.Kind != ptrace.KindCommit {
			return
		}
		if e.Seq != cc.next {
			cc.t.Fatalf("commit order violated: got seq %d, want %d (cycle %d)", e.Seq, cc.next, e.Cycle)
		}
		cc.next++
	}), ptrace.Window{})
}

func TestCommitOrderInvariant(t *testing.T) {
	// h264ref produces violations and flushes; milc produces heavy
	// speculative reordering — both must still commit 0,1,2,... exactly.
	for _, wl := range []string{"h264ref", "milc"} {
		for _, mode := range []DisambigMode{DisambigOSCA, DisambigNoLQ, DisambigFullLQ, DisambigAGIOrder} {
			cfg := DefaultConfig()
			cfg.Disambig = mode
			if mode != DisambigOSCA {
				cfg.OSCASize = 0
			}
			p, _ := workload.ByName(wl)
			tr := workload.Generate(p, 15000, 1)
			c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
			cc := &commitChecker{t: t}
			c.SetPipeTrace(cc.recorder())
			for i := 0; i < 100_000_000 && !c.Done(); i++ {
				c.Cycle()
			}
			if !c.Done() {
				t.Fatalf("%s/%v livelocked", wl, mode)
			}
			if cc.next != uint64(tr.Len()) {
				t.Errorf("%s/%v: committed %d of %d", wl, mode, cc.next, tr.Len())
			}
		}
	}
}

// orderChecker verifies per-instruction event ordering:
// fetch <= dispatch <= issue <= complete <= commit on the cycle axis.
type orderChecker struct {
	t        *testing.T
	fetch    map[uint64]int64
	dispatch map[uint64]int64
	issue    map[uint64]int64
	complete map[uint64]int64
}

func (oc *orderChecker) event(e ptrace.Event) {
	seq, cycle := e.Seq, e.Cycle
	switch e.Kind {
	case ptrace.KindFetch:
		oc.fetch[seq] = cycle
	case ptrace.KindDispatch:
		if f, ok := oc.fetch[seq]; ok && cycle < f {
			oc.t.Fatalf("op %d dispatched at %d before fetch at %d", seq, cycle, f)
		}
		oc.dispatch[seq] = cycle
	case ptrace.KindIssue, ptrace.KindIssueSpec:
		if d, ok := oc.dispatch[seq]; ok && cycle < d {
			oc.t.Fatalf("op %d issued at %d before dispatch at %d", seq, cycle, d)
		}
		oc.issue[seq] = cycle
	case ptrace.KindComplete:
		if is, ok := oc.issue[seq]; ok && cycle < is {
			oc.t.Fatalf("op %d completed at %d before issue at %d", seq, cycle, is)
		}
		oc.complete[seq] = cycle
	case ptrace.KindCommit:
		if done, ok := oc.complete[seq]; ok && cycle < done {
			oc.t.Fatalf("op %d committed at %d before completion at %d", seq, cycle, done)
		}
	}
}

func TestPipelineStageOrderInvariant(t *testing.T) {
	p, _ := workload.ByName("cactusADM")
	tr := workload.Generate(p, 15000, 1)
	c := New(DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	oc := &orderChecker{
		t:        t,
		fetch:    map[uint64]int64{},
		dispatch: map[uint64]int64{},
		issue:    map[uint64]int64{},
		complete: map[uint64]int64{},
	}
	c.SetPipeTrace(ptrace.NewRecorder(ptrace.SinkFunc(oc.event), ptrace.Window{}))
	for i := 0; i < 100_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatal("livelock")
	}
}

// Physical-register conservation: after a full drain, every allocated
// register must have been released back (free counts return to initial).
func TestPRFConservationInvariant(t *testing.T) {
	for _, wl := range []string{"gcc", "h264ref"} {
		p, _ := workload.ByName(wl)
		tr := workload.Generate(p, 15000, 1)
		c := New(DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
		freeInt0 := c.rf.FreeCount(false)
		freeFP0 := c.rf.FreeCount(true)
		for i := 0; i < 100_000_000 && !c.Done(); i++ {
			c.Cycle()
		}
		if !c.Done() {
			t.Fatal("livelock")
		}
		if c.rf.FreeCount(false) != freeInt0 || c.rf.FreeCount(true) != freeFP0 {
			t.Errorf("%s: register leak: INT %d->%d, FP %d->%d", wl,
				freeInt0, c.rf.FreeCount(false), freeFP0, c.rf.FreeCount(true))
		}
	}
}

// ProducerCount conservation: all counts return to zero after drain.
func TestProducerCountConservationInvariant(t *testing.T) {
	p, _ := workload.ByName("h264ref")
	tr := workload.Generate(p, 15000, 1)
	c := New(DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 100_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatal("livelock")
	}
	for pr := 0; pr < c.rf.NumPhys(); pr++ {
		if n := c.rf.Producers(regfile.PReg(pr)); n != 0 {
			t.Errorf("physical register %d still has %d pending producers after drain", pr, n)
		}
	}
}
