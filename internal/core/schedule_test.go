package core

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/workload"
)

// Scheduling-policy edge cases of the cascaded windows.

func TestWindowBypassPreAllocatesInOrder(t *testing.T) {
	// Head is a long-latency consumer chain that cannot pass (tiny IQ);
	// a ready op inside the window must issue past it, and the stuck ops
	// must still commit in program order.
	cfg := DefaultConfig()
	cfg.IQSize = 1 // force the stuck-head case
	ops := []isa.MicroOp{
		{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8},
		alu(isa.IntReg(2), isa.IntReg(1)), // will clog the 1-entry IQ
		alu(isa.IntReg(3), isa.IntReg(1)), // stuck at S-IQ head
		alu(isa.IntReg(4), isa.RegNone),   // ready, inside the window: bypass-issues
		alu(isa.IntReg(5), isa.IntReg(4)),
	}
	c := mkCore(cfg, ops)
	run(t, c)
	if c.Committed() != 5 {
		t.Errorf("committed %d", c.Committed())
	}
	if c.IssuedSIQNonMem == 0 {
		t.Error("no speculative issues despite ready op in window")
	}
}

func TestSIQPriorityAblationRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SIQPriority = true
	ipc, c := runProfile(t, cfg, "libquantum", 15000)
	if ipc <= 0 || c.Committed() == 0 {
		t.Fatal("SIQ-priority run failed")
	}
}

func TestPassOnResourceStallAblationRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PassOnResourceStall = true
	ipc, _ := runProfile(t, cfg, "milc", 15000)
	if ipc <= 0 {
		t.Fatal("pass-on-stall run failed")
	}
	// Footnote 1: waiting at the head should be at least roughly as good.
	base, _ := runProfile(t, DefaultConfig(), "milc", 15000)
	if ipc > base*1.25 {
		t.Errorf("pass-on-stall unexpectedly dominant: %.3f vs %.3f", ipc, base)
	}
}

func TestWS1SO1DegeneratesTowardInO(t *testing.T) {
	// With a 1-wide window the S-IQ can only examine its head — behaviour
	// approaches (but may slightly exceed) plain stall-on-use in-order.
	cfg := DefaultConfig()
	cfg.WS, cfg.SO = 1, 1
	narrow, _ := runProfile(t, cfg, "libquantum", 15000)
	wide, _ := runProfile(t, DefaultConfig(), "libquantum", 15000)
	if narrow > wide*1.02 {
		t.Errorf("WS=1 (%.3f) outperformed WS=2 (%.3f)", narrow, wide)
	}
}

func TestCascadeMidQueueIssues(t *testing.T) {
	// In a 3-wide cascade, instructions must be able to issue from the
	// intermediate S-IQ (not only the first S-IQ and final IQ).
	cfg := WideConfig(3)
	p, _ := workload.ByName("milc")
	tr := workload.Generate(p, 20000, 1)
	c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 100_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatal("3-wide cascade livelocked")
	}
	if c.IssuedSIQMem+c.IssuedSIQNonMem == 0 {
		t.Error("cascade never issued speculatively")
	}
	if c.Committed() != uint64(tr.Len()) {
		t.Errorf("committed %d of %d", c.Committed(), tr.Len())
	}
}

func TestProducerDistanceRecorded(t *testing.T) {
	_, c := runProfile(t, DefaultConfig(), "libquantum", 15000)
	if c.ProducerDist.Count() == 0 {
		t.Error("producer distance histogram never populated")
	}
	if m := c.ProducerDist.Mean(); m < 0 || m > 12 {
		t.Errorf("mean producer distance %.2f outside the 12-entry IQ", m)
	}
}

func TestStallCountersPopulated(t *testing.T) {
	_, c := runProfile(t, DefaultConfig(), "mcf", 15000)
	total := c.StallIQFull + c.StallPReg + c.StallProdCount + c.StallROBSQ + c.StallFU
	if total == 0 {
		t.Error("no head stalls diagnosed on a memory-bound workload")
	}
}

func TestIssueCountersConsistent(t *testing.T) {
	_, c := runProfile(t, DefaultConfig(), "gcc", 15000)
	issues := c.IssuedSIQMem + c.IssuedSIQNonMem + c.IssuedIQMem + c.IssuedIQNonMem
	// Every committed op issued exactly once unless flushed and re-issued.
	if issues < c.Committed() {
		t.Errorf("issues (%d) < commits (%d)", issues, c.Committed())
	}
	if c.Violations == 0 && issues != c.Committed() {
		t.Errorf("no flushes but issues (%d) != commits (%d)", issues, c.Committed())
	}
}

func TestDataBufferNeverExceedsCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataBufSize = 2
	p, _ := workload.ByName("h264ref")
	tr := workload.Generate(p, 15000, 1)
	c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 100_000_000 && !c.Done(); i++ {
		c.Cycle()
		if c.dbUsed < 0 || c.dbUsed > cfg.DataBufSize {
			t.Fatalf("data buffer occupancy %d outside [0,%d] at cycle %d", c.dbUsed, cfg.DataBufSize, c.Now())
		}
	}
	if !c.Done() {
		t.Fatal("livelock")
	}
}
