package core

import (
	"casino/internal/eventq"
	"casino/internal/isa"
	"casino/internal/regfile"
)

// noEvent mirrors lsu.NoEvent: no progress through the passage of time.
const noEvent = int64(1) << 62

// NextWake returns the earliest cycle >= now at which the core might make
// progress, driving the event-driven clock. Two O(1) pre-checks catch the
// streaming progress the wakeup queue deliberately does not track — dispatch
// into the first S-IQ and fetch — and everything else comes from the shared
// queue, on which every stored future cycle (completion times, stall
// expiries, busy-until slots, the remote injector's schedule) was registered
// when it was stored. Unlike the retired polled scan this never walks the
// queues; FastForward's embedded cycle is the progress check.
func (c *Core) NextWake() int64 {
	now := c.now
	if c.fe.BufLen() > 0 && c.queues[0].len() < c.queues[0].cap() {
		return now
	}
	if c.fe.NextFetchEvent(now) <= now {
		return now
	}
	return c.wq.Horizon(now)
}

// WakeStats exposes the shared wakeup queue's activity counters.
func (c *Core) WakeStats() eventq.Stats { return c.wq.Stats() }

// ProgressSignature folds the fast-forward progress signature into one
// value; the sim package's property tests use it to detect, from outside,
// whether a cycle changed observable state.
func (c *Core) ProgressSignature() uint64 {
	// FNV-1a chained by hand: this runs on every commit-free cycle, so it
	// must not materialize an array (stack copies) per call.
	const p = 1099511628211
	var s ffSig
	c.ffSig(&s)
	h := uint64(1469598103934665603)
	h = (h ^ s.committed) * p
	h = (h ^ s.fetched) * p
	h = (h ^ s.issued) * p
	h = (h ^ s.l1) * p
	h = (h ^ s.flushes) * p
	h = (h ^ s.remote) * p
	h = (h ^ uint64(s.queues)) * p
	h = (h ^ uint64(s.rob)) * p
	h = (h ^ uint64(s.sq)) * p
	h = (h ^ uint64(s.lq)) * p
	h = (h ^ uint64(s.dbUsed)) * p
	h = (h ^ uint64(s.buf)) * p
	return h
}

// NextEvent returns the earliest cycle >= now at which Cycle() could change
// observable state. The event-driven driver no longer calls it — NextWake
// replaced it on the hot path — but it remains the independent oracle the
// property tests check the registration contract against: a registered
// wakeup must never be later than the first event this scan derives from
// pipeline state. The probe mirrors the schedulers read-only: every
// readiness check goes through Peek* accessors so probing a stalled core
// never perturbs the activity counts the energy model bills, and every
// readiness source reports its *individual* arrival time — CASINO's
// scoreboard checks charge per source with a short-circuit return, so the
// charge pattern of an idle cycle flips the moment any single source
// becomes ready, and the jump must stop there even if the instruction as a
// whole stays blocked. Conditions blocked on another instruction's issue
// (an unissued producer, a saturated ProducerCount, a full downstream
// structure) contribute no time: that issue/commit/retire is itself a
// tracked event that must come first, so the driver re-probes then.
func (c *Core) NextEvent() int64 {
	now := c.now
	next := noEvent
	add := func(t int64) {
		if t > now && t < next {
			next = t
		}
	}

	// Synthetic remote-invalidation injector (fires on its own schedule).
	if r := c.remote; r != nil {
		if now >= r.next {
			return now
		}
		add(r.next)
	}

	// Store retirement from the SB portion of the unified SQ.
	if t := c.sq.RetireEvent(now); t <= now {
		return now
	} else {
		add(t)
	}

	// Commit from the ROB head. An unissued head sits in some queue and is
	// covered by the scheduler probes below.
	if c.rob.len() > 0 {
		e := c.robAt(0)
		if e.issued {
			if e.done <= now {
				return now
			}
			add(e.done)
		}
	}

	// Final in-order IQ: strictly the head.
	last := len(c.queues) - 1
	if q := &c.queues[last]; q.len() > 0 {
		e := q.at(0)
		if c.iqReadyProbe(e, now, add) && c.issueResourcesProbe(e, false) {
			if c.fus.CanIssue(e.op.Class, now) {
				return now
			}
			add(c.fus.NextFree(e.op.Class, now))
		}
		// Not ready: source arrivals were added above. Resource-blocked:
		// drains via commit / store retirement, both covered.
	}

	// Cascaded S-IQs: each examines up to WS window entries per cycle, and
	// on a cycle with no issues or passes the examined set is frozen, so
	// the probe walks positions 0..WS-1 directly.
	for qi := 0; qi < last; qi++ {
		q := &c.queues[qi]
		nq := &c.queues[qi+1]
		n := q.len()
		if n > c.cfg.WS {
			n = c.cfg.WS
		}
		for pos := 0; pos < n; pos++ {
			e := q.at(pos)
			if c.siqReadyProbe(qi, e, now, add) {
				if c.exitResourcesOK(qi, e, pos) && c.issueResourcesProbe(e, true) {
					if c.fus.CanIssue(e.op.Class, now) {
						return now
					}
					add(c.fus.NextFree(e.op.Class, now))
				}
				continue
			}
			// A non-ready head passes to the next queue when it can.
			if pos == 0 && c.cfg.SO > 0 && nq.len() < nq.cap() &&
				c.exitResourcesOK(qi, e, 0) && c.passResourcesProbe(qi, e) {
				return now
			}
		}
	}

	// Dispatch and fetch.
	if c.fe.BufLen() > 0 && c.queues[0].len() < c.queues[0].cap() {
		return now
	}
	if t := c.fe.NextFetchEvent(now); t <= now {
		return now
	} else {
		add(t)
	}
	return next
}

// siqReadyProbe mirrors siqReady without its RAT/scoreboard charges,
// feeding each source's future arrival time to add. It stops at the first
// blocking source exactly as siqReady short-circuits, because that source's
// arrival is when the cycle's charge pattern changes.
func (c *Core) siqReadyProbe(qi int, e *opEntry, now int64, add func(int64)) bool {
	if c.cfg.Disambig == DisambigAGIOrder && e.op.Class.IsMem() {
		return false
	}
	if qi == 0 && !e.preAlloc {
		for _, s := range [...]isa.Reg{e.op.Src1, e.op.Src2} {
			if !s.Valid() {
				continue
			}
			if c.cfg.Renaming == RenameConditional {
				lw := c.lastWriter[s]
				switch {
				case lw == nil:
					// Producer committed; value architectural.
				case lw.op.Seq < e.op.Seq:
					if !lw.issued {
						return false // blocked on the producer's issue
					}
					if lw.done > now {
						add(lw.done)
						return false
					}
				default:
					p := c.rf.PeekMapping(s)
					if c.rf.Producers(p) > 0 {
						return false // unblocks at a pending producer's issue
					}
					if t := c.rf.PeekReadyAt(p); t >= regfile.NotReady {
						return false
					} else if t > now {
						add(t)
						return false
					}
				}
				continue
			}
			if t := c.rf.PeekReadyAt(c.rf.PeekMapping(s)); t >= regfile.NotReady {
				return false
			} else if t > now {
				add(t)
				return false
			}
		}
		return true
	}
	return c.capturedReadyProbe(e, now, add)
}

// iqReadyProbe mirrors iqReady (the final-IQ head check) read-only.
func (c *Core) iqReadyProbe(e *opEntry, now int64, add func(int64)) bool {
	return c.capturedReadyProbe(e, now, add)
}

// capturedReadyProbe checks readiness through the captured producer pairs
// (conditional renaming) or the entry's own renamed sources (conventional).
func (c *Core) capturedReadyProbe(e *opEntry, now int64, add func(int64)) bool {
	if c.cfg.Renaming == RenameConditional {
		for _, pr := range [...]struct {
			p   *opEntry
			seq uint64
		}{{e.prod1, e.prodSeq1}, {e.prod2, e.prodSeq2}} {
			p := liveProducer(pr.p, pr.seq)
			if p == nil {
				continue
			}
			if !p.issued {
				return false // blocked on the producer's issue
			}
			if p.done > now {
				add(p.done)
				return false
			}
		}
		return true
	}
	for _, p := range [...]regfile.PReg{e.srcP1, e.srcP2} {
		if p == regfile.PRegNone {
			continue
		}
		if t := c.rf.PeekReadyAt(p); t >= regfile.NotReady {
			return false
		} else if t > now {
			add(t)
			return false
		}
	}
	return true
}

// issueResourcesProbe mirrors issueResourcesOK with the side-effect-free
// OSCA check. Every false case is blocked on a drain (commit frees data
// buffer entries and registers, store retirement decrements the OSCA), all
// of which are covered events.
func (c *Core) issueResourcesProbe(e *opEntry, fromSIQ bool) bool {
	if e.op.HasDst() {
		if fromSIQ && e.queue == 0 && !c.rf.CanAllocate(e.op.Dst) {
			return false
		}
		if !fromSIQ && c.cfg.Renaming == RenameConditional && c.dbUsed >= c.cfg.DataBufSize {
			return false
		}
	}
	if e.op.Class == isa.Store && c.osca != nil {
		if !c.osca.PeekCanInc(e.op.Addr, e.op.Size) {
			return false
		}
	}
	return true
}

// passResourcesProbe mirrors passResourcesOK without the RAT access count.
func (c *Core) passResourcesProbe(qi int, e *opEntry) bool {
	if qi != 0 || !e.op.HasDst() {
		return true
	}
	if c.cfg.Renaming == RenameConventional {
		return c.rf.CanAllocate(e.op.Dst)
	}
	return c.rf.CanAddProducer(c.rf.PeekMapping(e.op.Dst))
}

// ffSig is the cheap progress signature guarding FastForward. The queue
// lengths fold positionally so a pass (which conserves total occupancy but
// moves an entry between queues) still changes the signature.
type ffSig struct {
	committed, fetched, issued, l1, flushes, remote uint64
	queues, rob, sq, lq, dbUsed, buf                int
}

// ffSig fills s in place: it runs twice per fast-forward attempt, and
// returning the 96-byte struct by value showed up as duffcopy in profiles.
func (c *Core) ffSig(s *ffSig) {
	qh := 0
	for i := range c.queues {
		qh = qh*257 + c.queues[i].len()
	}
	s.committed = c.committed
	s.fetched = c.fe.Fetched
	s.issued = c.fus.IssuedTotal()
	s.l1 = c.acct.L1Access
	s.flushes = c.Flushes
	s.queues = qh
	s.rob = c.rob.len()
	s.sq = c.sq.Len()
	s.dbUsed = c.dbUsed
	s.buf = c.fe.BufLen()
	s.lq = 0
	if c.lq != nil {
		s.lq = c.lq.Len()
	}
	s.remote = 0
	if c.remote != nil {
		s.remote = c.remote.Invalidations
	}
}

// FastForward runs one real Cycle() and, if that cycle turned out idle,
// jumps the clock toward `to`. The embedded cycle performs the exact
// idle-cycle accounting — occupancy samples, stall diagnostics, the
// scoreboard and RAT probe charges of the frozen window, the energy model's
// static per-cycle costs — and its deltas are replayed in bulk for the
// skipped cycles. Cycle() stays the single source of truth; FastForward
// never re-derives a charge.
//
// Returns false when the embedded cycle changed observable state: the cycle
// stands as a normal, fully-accounted cycle and nothing was skipped (the
// event-driven driver attempts jumps optimistically, so a bail is routine,
// not an error). On the idle path the jump target is re-clamped by the
// queue's post-cycle horizon — the embedded cycle itself may have registered
// a nearer wakeup (an I-cache refill it started, say) that the pre-cycle
// NextWake could not see.
func (c *Core) FastForward(to int64) bool {
	var sig ffSig
	c.ffSig(&sig)
	c.acct.BeginDelta()
	st0 := [6]uint64{c.StallIQFull, c.StallPReg, c.StallProdCount, c.StallROBSQ, c.StallFU, c.StallDataBuf}
	sqReads0 := c.sq.Reads
	ratReads0, scbReads0 := c.rf.RATReads, c.rf.SBReads
	var sat0 uint64
	if c.osca != nil {
		sat0 = c.osca.Saturated
	}
	cpi0 := c.cpi
	c.Cycle()
	var sig2 ffSig
	c.ffSig(&sig2)
	if sig2 != sig {
		return false
	}
	if h := c.wq.Horizon(c.now); h < to {
		to = h
	}
	n := to - c.now
	if n <= 0 {
		return true
	}
	un := uint64(n)
	c.acct.ScaleDelta(un)
	c.StallIQFull += (c.StallIQFull - st0[0]) * un
	c.StallPReg += (c.StallPReg - st0[1]) * un
	c.StallProdCount += (c.StallProdCount - st0[2]) * un
	c.StallROBSQ += (c.StallROBSQ - st0[3]) * un
	c.StallFU += (c.StallFU - st0[4]) * un
	c.StallDataBuf += (c.StallDataBuf - st0[5]) * un
	c.sq.Reads += (c.sq.Reads - sqReads0) * un
	c.rf.RATReads += (c.rf.RATReads - ratReads0) * un
	c.rf.SBReads += (c.rf.SBReads - scbReads0) * un
	if c.osca != nil {
		c.osca.Saturated += (c.osca.Saturated - sat0) * un
	}
	c.cpi.ScaleDelta(&cpi0, un)
	c.OccSIQ.AddN(c.queues[0].len(), un)
	c.OccIQ.AddN(c.queues[len(c.queues)-1].len(), un)
	c.OccROB.AddN(c.rob.len(), un)
	c.OccSQ.AddN(c.sq.Len(), un)
	c.now += n
	return true
}
