package core

import (
	"casino/internal/energy"
	"casino/internal/isa"
)

// issueLoad performs a load's issue-time disambiguation work (§III-C4,
// §IV-2) and returns its completion cycle.
//
// Speculative path (issue from an S-IQ stage): the OSCA is consulted
// first; only a non-zero counter forces the SQ/SB CAM search. Whether or
// not the CAM search ran, an older unresolved store gets a sentinel and
// marks the load speculative, to be validated at commit.
//
// In-order path (issue from the final IQ): every older store has already
// issued, so addresses are all resolved — the search (if the OSCA demands
// one) is only for store-to-load forwarding, and no sentinel is needed.
func (c *Core) issueLoad(e *opEntry, now int64, fromSIQ bool) int64 {
	op := e.op
	agu := now + int64(op.Class.ExecLatency())
	forwarded := false

	// TSO load-load ordering (§III-C4): a load performed ahead of an
	// older non-performed load guards its cache line with a sentinel so
	// remote stores cannot slip between them.
	c.remote.observeLoad(op.Addr)
	if c.anyOlderUnperformedLoad(op.Seq, now) {
		c.lineSent.set(op.Addr, op.Seq)
		e.lineSent = true
	}

	if c.lq != nil {
		// Fully-OoO baseline: conventional LQ tracking; forwarding search
		// only, violations are caught by resolving stores.
		c.lq.MarkIssued(op.Seq, op.Addr, op.Size)
		c.acct.Inc(c.hLQ, energy.Write, 1)
		res := c.sq.SearchForLoad(op.Seq, op.Addr, op.Size, false)
		c.acct.Inc(c.hSQ, energy.Search, 1)
		if res.Forward != nil {
			c.LoadsForwarded++
			return agu + int64(c.hier.Config().L1Latency)
		}
		done, _ := c.hier.Load(op.PC, op.Addr, agu)
		c.acct.L1Access++
		return done
	}

	maySearch := true
	if c.osca != nil {
		c.acct.Inc(c.hOSCA, energy.Read, 1)
		maySearch = c.osca.LoadMaySearch(op.Addr, op.Size)
	}

	speculative := fromSIQ && c.cfg.Disambig != DisambigAGIOrder
	if maySearch {
		res := c.sq.SearchForLoad(op.Seq, op.Addr, op.Size, false)
		c.acct.Inc(c.hSQ, energy.Search, 1)
		if res.Forward != nil {
			forwarded = true
			c.LoadsForwarded++
		}
		if speculative && res.OldestUnresolved != nil {
			c.sq.SetSentinel(res.OldestUnresolved, op.Seq)
			e.sentinel = true
			e.specLoad = true
		}
	} else if speculative {
		// OSCA filtered the CAM search: only the per-entry Resolved flags
		// are examined to guard against older unresolved stores (§IV-2).
		c.acct.Inc(c.hSQ, energy.Read, 1)
		if st := c.sq.OldestUnresolvedOlder(op.Seq); st != nil {
			c.sq.SetSentinel(st, op.Seq)
			e.sentinel = true
			e.specLoad = true
		}
	}

	if forwarded {
		return agu + int64(c.hier.Config().L1Latency)
	}
	done, _ := c.hier.Load(op.PC, op.Addr, agu)
	c.acct.L1Access++
	return done
}

// issueStore resolves the store's address in the SQ and counts it in the
// OSCA; the cache update happens later, at retirement from the SB head.
func (c *Core) issueStore(e *opEntry, now int64) int64 {
	op := e.op
	agu := now + int64(op.Class.ExecLatency())
	c.sq.Resolve(op.Seq, op.Addr, op.Size, agu, agu)
	c.acct.Inc(c.hSQ, energy.Write, 1)
	if c.osca != nil {
		c.osca.Inc(op.Addr, op.Size)
		c.acct.Inc(c.hOSCA, energy.Write, 1)
	}
	if c.lq != nil {
		// Conventional disambiguation: search the LQ for younger issued
		// loads that read this address too early.
		c.acct.Inc(c.hLQ, energy.Search, 1)
		if loadSeq, _, hit := c.lq.SearchViolation(op.Seq, op.Addr, op.Size); hit {
			c.flushFrom(loadSeq, now)
			c.flushed = true
		}
	}
	return agu
}

// anyOlderUnperformedLoad reports whether a load older than seq has not
// yet completed (the load-load speculation condition of §III-C4).
func (c *Core) anyOlderUnperformedLoad(seq uint64, now int64) bool {
	for i := 0; i < c.rob.len(); i++ {
		e := c.robAt(i)
		if e.op.Seq >= seq {
			break
		}
		if e.op.Class == isa.Load && (!e.issued || e.done > now) {
			return true
		}
	}
	return false
}
