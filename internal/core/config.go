// Package core implements the CASINO core microarchitecture — the paper's
// primary contribution (§III): cascaded in-order scheduling windows that
// dynamically and speculatively generate out-of-order issue schedules.
//
// A small FIFO Speculative IQ (S-IQ) examines a SpecInO[WS,SO] window at
// its head each cycle: ready instructions issue immediately (receiving a
// freshly allocated physical register — conditional renaming), non-ready
// instructions are passed to the next queue, where they issue strictly in
// program order sharing their current register mapping (ProducerCount +
// data buffer remove WAW hazards). Memory disambiguation needs no load
// queue: speculated loads validate themselves at commit against the
// unified SQ/SB (sentinels delay store retirement), and the OSCA filters
// redundant SQ/SB searches.
package core

import "fmt"

// RenamingMode selects the renaming scheme (Fig. 7 ablation).
type RenamingMode uint8

// Renaming modes.
const (
	// RenameConditional is the paper's scheme: physical registers are
	// allocated only to instructions issued from an S-IQ.
	RenameConditional RenamingMode = iota
	// RenameConventional allocates a register to every destination
	// (the "ConV" baseline of Fig. 7).
	RenameConventional
)

func (m RenamingMode) String() string {
	if m == RenameConditional {
		return "ConD"
	}
	return "ConV"
}

// DisambigMode selects the memory disambiguation scheme (Fig. 8 ablation).
type DisambigMode uint8

// Disambiguation modes.
const (
	// DisambigOSCA is the paper's scheme: on-commit value-check with the
	// OSCA search filter.
	DisambigOSCA DisambigMode = iota
	// DisambigNoLQ is the on-commit value-check without the OSCA
	// (every speculated load searches the SQ/SB).
	DisambigNoLQ
	// DisambigAGIOrder forbids speculative issue of memory operations:
	// they always pass to the in-order IQ (the "AGI Ordering" baseline).
	DisambigAGIOrder
	// DisambigFullLQ is Fig. 8's "Fully OoO" baseline: a conventional
	// 16-entry load queue searched by resolving stores, with immediate
	// violation flushes (no on-commit value check, no OSCA).
	DisambigFullLQ
)

func (m DisambigMode) String() string {
	switch m {
	case DisambigOSCA:
		return "NoLQ+OSCA"
	case DisambigNoLQ:
		return "NoLQ"
	case DisambigFullLQ:
		return "FullLQ"
	default:
		return "AGIOrdering"
	}
}

// Config holds the CASINO core parameters (Table I plus ablation knobs).
type Config struct {
	Width      int // issue width (2 in Table I)
	SIQSize    int // first S-IQ entries (4)
	MidSIQs    int // intermediate 8-entry S-IQs for 3/4-wide designs (§VI-F)
	MidSIQSize int
	IQSize     int // final in-order IQ entries (12)
	LQSize     int // load queue entries (used by DisambigFullLQ only)
	ROBSize    int
	SQSize     int // unified SQ/SB entries (8)
	IntPRF     int // 32
	FPPRF      int // 14
	WS         int // SpecInO window size (2)
	SO         int // SpecInO sliding offset (1)
	FrontDepth int // redirect penalty (9-stage pipeline)

	DataBufSize  int // 4
	MaxProducers int // 3 (2-bit ProducerCount)
	OSCASize     int // 64 counters

	Renaming RenamingMode
	Disambig DisambigMode
	// SIQPriority gives S-IQ issues priority over IQ issues (ablation;
	// the paper argues oldest-first, i.e. IQ priority, is better).
	SIQPriority bool
	// PassOnResourceStall passes a ready-but-resource-blocked instruction
	// to the IQ instead of waiting (footnote 1 says waiting is better).
	PassOnResourceStall bool
	// Remote enables the synthetic coherence-traffic injector exercising
	// the TSO load-load ordering sentinels (§III-C4). Zero disables it,
	// matching the paper's single-core evaluation.
	Remote RemoteTraffic
}

// DefaultConfig returns the Table I CASINO configuration.
func DefaultConfig() Config {
	return Config{
		Width: 2, SIQSize: 4, IQSize: 12, LQSize: 16, ROBSize: 32, SQSize: 8,
		IntPRF: 32, FPPRF: 14, WS: 2, SO: 1, FrontDepth: 7,
		DataBufSize: 4, MaxProducers: 3, OSCASize: 64,
	}
}

// WideConfig scales CASINO to 3- or 4-wide following §VI-F: ROB/IQ/LSQ/PRF
// double (3-wide) or quadruple (4-wide), one or two 8-entry intermediate
// S-IQs are inserted, and conditional renaming is disabled because
// instructions are renamed once at the first S-IQ but may issue from any
// intermediate queue.
func WideConfig(width int) Config {
	c := DefaultConfig()
	if width <= 2 {
		return c
	}
	scale := 2
	mids := 1
	if width >= 4 {
		scale = 4
		mids = 2
	}
	c.Width = width
	c.ROBSize *= scale
	c.SQSize *= scale
	c.IntPRF *= scale
	c.FPPRF *= scale
	c.MidSIQs = mids
	c.MidSIQSize = 8
	// Total scheduling entries scale like the Table I IQ (16 * scale),
	// minus the S-IQ stages in front.
	c.IQSize = 16*scale - c.SIQSize - mids*8
	c.Renaming = RenameConventional
	return c
}

// Validate checks configuration invariants.
func (c Config) Validate() error {
	if c.Width < 1 || c.SIQSize < 1 || c.IQSize < 1 || c.ROBSize < 4 || c.SQSize < 1 {
		return fmt.Errorf("core: non-positive geometry: %+v", c)
	}
	if c.WS < 1 || c.SO < 1 || c.WS < c.SO {
		return fmt.Errorf("core: need WS >= SO >= 1, got WS=%d SO=%d", c.WS, c.SO)
	}
	if c.MidSIQs > 0 && c.Renaming != RenameConventional {
		return fmt.Errorf("core: cascaded S-IQs require conventional renaming (§VI-F)")
	}
	if c.DataBufSize < 1 || c.MaxProducers < 1 {
		return fmt.Errorf("core: data buffer/producer bounds must be positive")
	}
	if c.OSCASize > 0 && c.OSCASize&(c.OSCASize-1) != 0 {
		return fmt.Errorf("core: OSCA size must be a power of two")
	}
	return nil
}
