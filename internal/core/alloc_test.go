package core

import (
	"math/rand"
	"testing"

	"casino/internal/energy"
	"casino/internal/mem"
	"casino/internal/trace"
)

func steadyStateCore(tb testing.TB) *Core {
	tb.Helper()
	rng := rand.New(rand.NewSource(5))
	tr := &trace.Trace{Name: "alloc", Ops: randomOps(rng, 120000)}
	c := New(DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 3000 && !c.Done(); i++ {
		c.Cycle() // warm the entry pool, predictor tables and cache maps
	}
	return c
}

// TestSteadyStateCycleAllocs pins down the zero-alloc cycle kernel: once
// the entry pool and the memory-system tables are warm, the per-cycle
// allocation rate must stay near zero (the residue is cache/MSHR map
// growth, not per-instruction garbage).
func TestSteadyStateCycleAllocs(t *testing.T) {
	c := steadyStateCore(t)
	const cyclesPerRun = 500
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < cyclesPerRun; i++ {
			c.Cycle()
		}
	})
	if c.Done() {
		t.Fatal("trace drained during measurement; lengthen the trace")
	}
	const ceiling = 0.05 // allocations per simulated cycle
	if perCycle := avg / cyclesPerRun; perCycle > ceiling {
		t.Errorf("steady-state allocations = %.3f/cycle, ceiling %.2f", perCycle, ceiling)
	}
}

// BenchmarkCASINOCycle measures the raw cycle kernel (with allocation
// stats), bypassing trace generation and harness bookkeeping.
func BenchmarkCASINOCycle(b *testing.B) {
	c := steadyStateCore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Done() {
			// Long benchmark runs outlive the trace; swap in a fresh warm
			// core off the clock (StopTimer also suspends alloc counting).
			b.StopTimer()
			c = steadyStateCore(b)
			b.StartTimer()
		}
		c.Cycle()
	}
}
