package core

import (
	"casino/internal/energy"
	"casino/internal/isa"
	"casino/internal/ptrace"
	"casino/internal/regfile"
)

// schedule performs one cycle of issue across the cascaded queues. Up to
// Width instructions issue in total. By default the final in-order IQ has
// priority (oldest-first, §III-C3); intermediate S-IQs follow, oldest stage
// first; the first S-IQ processes its SpecInO window last.
func (c *Core) schedule(now int64) {
	slots := c.cfg.Width
	last := len(c.queues) - 1
	if c.cfg.SIQPriority {
		for qi := 0; qi < last && !c.flushed; qi++ {
			c.processSIQ(qi, now, &slots)
		}
		if !c.flushed {
			c.processFinalIQ(now, &slots)
		}
		c.flushed = false
		return
	}
	c.processFinalIQ(now, &slots)
	for qi := last - 1; qi >= 0 && !c.flushed; qi-- {
		c.processSIQ(qi, now, &slots)
	}
	c.flushed = false
}

// processFinalIQ issues strictly in order from the head of the last queue.
func (c *Core) processFinalIQ(now int64, slots *int) {
	q := &c.queues[len(c.queues)-1]
	for *slots > 0 && q.len() > 0 {
		e := q.at(0)
		if !c.iqReady(e, now) {
			return
		}
		if !c.issueResourcesOK(e, now, false) {
			return
		}
		if !c.fus.Issue(e.op.Class, now) {
			return
		}
		q.popFront()
		c.acct.Inc(c.hIQ, energy.Read, 1)
		c.issueOp(e, now, false)
		*slots--
		if c.flushed {
			return
		}
	}
}

// processSIQ runs the SpecInO[WS,SO] window at the head of queue qi. Ready
// instructions anywhere in the window issue immediately (consuming issue
// slots); a non-ready *head* instruction passes to the next queue (up to
// SO per cycle). A ready instruction may issue past a stuck older window
// entry: the stuck entry's ROB/SQ slots are pre-allocated and its sources
// group-renamed first, so the ROB and SQ remain program-ordered (Fig. 4).
func (c *Core) processSIQ(qi int, now int64, slots *int) {
	passes := 0
	pos := 0
	q := &c.queues[qi]
	next := &c.queues[qi+1]
	for examined := 0; examined < c.cfg.WS && pos < q.len(); examined++ {
		e := q.at(pos)
		ready := c.siqReady(qi, e, now)
		switch {
		case ready && *slots > 0 && c.exitResourcesOK(qi, e, pos) &&
			c.issueResourcesOK(e, now, true) && c.fus.CanIssue(e.op.Class, now):
			if qi == 0 {
				c.preAllocOlder(q, pos)
				c.exitRename(e, true)
			}
			q.removeAt(pos)
			c.acct.Inc(c.hSIQ, energy.Read, 1)
			c.fus.Issue(e.op.Class, now)
			c.issueOp(e, now, true)
			*slots--
			if c.flushed {
				return
			}
			// Do not advance pos: the next entry slid into this slot.
		case !ready && pos == 0 && passes < c.cfg.SO &&
			next.len() < next.cap() && c.exitResourcesOK(qi, e, pos) && c.passResourcesOK(qi, e):
			if qi == 0 {
				c.exitRename(e, false)
			}
			q.removeAt(0)
			c.acct.Inc(c.hSIQ, energy.Read, 1)
			e.queue = int8(qi + 1)
			next.pushBack(e)
			if qi+1 == len(c.queues)-1 {
				c.acct.Inc(c.hIQ, energy.Write, 1)
				c.PassedToIQ++
				c.recordProducerDistance(e)
			} else {
				c.acct.Inc(c.hSIQ, energy.Write, 1)
			}
			c.emit(now, e.op.Seq, ptrace.KindPass)
			passes++
		default:
			if pos == 0 && qi == 0 {
				c.diagnoseHeadStall(e, ready, now)
			}
			// Entry stays in the window; examine the next one.
			pos++
		}
	}
}

// diagnoseHeadStall classifies why the S-IQ head could not exit (stats
// only; no architectural effect).
func (c *Core) diagnoseHeadStall(e *opEntry, ready bool, now int64) {
	if !c.exitResourcesOK(0, e, 0) {
		c.StallROBSQ++
		return
	}
	if ready {
		switch {
		case e.op.HasDst() && e.queue == 0 && !e.preAlloc && !c.rf.CanAllocate(e.op.Dst):
			c.StallPReg++
		case e.op.Class == isa.Store && c.osca != nil && !c.osca.CanInc(e.op.Addr, e.op.Size):
			c.StallPReg++
		default:
			c.StallFU++
		}
		return
	}
	if c.queues[1].len() >= c.queues[1].cap() {
		c.StallIQFull++
		return
	}
	if !c.passResourcesOK(0, e) {
		c.StallProdCount++
	}
}

// preAllocOlder reserves program-ordered ROB (and SQ) slots for the stuck
// window entries older than position pos before a younger one issues past
// them, and captures their source mappings as of this point (group rename).
func (c *Core) preAllocOlder(q *opRing, pos int) {
	for i := 0; i < pos; i++ {
		e := q.at(i)
		if e.preAlloc {
			continue
		}
		c.captureSources(e)
		c.dispatchMemEntry(e)
		c.rob.pushBack(e)
		c.acct.Inc(c.hROB, energy.Write, 1)
		e.preAlloc = true
	}
}

// siqReady is the conservative scoreboard readiness check performed on an
// S-IQ window entry (live RAT lookup; a register with pending shared
// producers is not ready). Entries whose sources were group-renamed when a
// younger instruction bypassed them use their captured mappings. Memory
// operations are never "ready" under AGI ordering.
func (c *Core) siqReady(qi int, e *opEntry, now int64) bool {
	if c.cfg.Disambig == DisambigAGIOrder && e.op.Class.IsMem() {
		return false
	}
	if qi == 0 && !e.preAlloc {
		for _, s := range [...]isa.Reg{e.op.Src1, e.op.Src2} {
			if !s.Valid() {
				continue
			}
			c.acct.Inc(c.hRAT, energy.Read, 1)
			c.acct.Inc(c.hScbd, energy.Read, 1)
			if c.cfg.Renaming == RenameConditional {
				// The data buffer forwards each producer's value to its
				// consumers (§III-C3), so readiness is the completion of
				// the *specific* producing instruction. A younger last
				// writer (window bypass) hides the true producer: fall
				// back to the conservative scoreboard condition.
				lw := c.lastWriter[s]
				switch {
				case lw == nil:
					// Producer committed; value architectural.
				case lw.op.Seq < e.op.Seq:
					if !lw.issued || lw.done > now {
						return false
					}
				default:
					p := c.rf.Lookup(s)
					if c.rf.Producers(p) > 0 || !c.rf.IsReady(p, now) {
						return false
					}
				}
				continue
			}
			if !c.rf.IsReady(c.rf.Lookup(s), now) {
				return false
			}
		}
		return true
	}
	if c.cfg.Renaming == RenameConditional {
		// Captured producers (group rename or the final-IQ data path).
		if p := liveProducer(e.prod1, e.prodSeq1); p != nil && (!p.issued || p.done > now) {
			return false
		}
		if p := liveProducer(e.prod2, e.prodSeq2); p != nil && (!p.issued || p.done > now) {
			return false
		}
		return true
	}
	// Conventional renaming: already renamed, check own source registers.
	for _, p := range [...]regfile.PReg{e.srcP1, e.srcP2} {
		if p == regfile.PRegNone {
			continue
		}
		c.acct.Inc(c.hScbd, energy.Read, 1)
		if !c.rf.IsReady(p, now) {
			return false
		}
	}
	return true
}

// iqReady checks the final IQ head. Under conditional renaming the data
// buffer forwards the specific producer's value, so readiness is exact
// producer completion; under conventional renaming each op owns a register.
func (c *Core) iqReady(e *opEntry, now int64) bool {
	if c.cfg.Renaming == RenameConditional {
		if p := liveProducer(e.prod1, e.prodSeq1); p != nil && (!p.issued || p.done > now) {
			return false
		}
		if p := liveProducer(e.prod2, e.prodSeq2); p != nil && (!p.issued || p.done > now) {
			return false
		}
		return true
	}
	for _, p := range [...]regfile.PReg{e.srcP1, e.srcP2} {
		if p == regfile.PRegNone {
			continue
		}
		c.acct.Inc(c.hScbd, energy.Read, 1)
		if !c.rf.IsReady(p, now) {
			return false
		}
	}
	return true
}

// exitResourcesOK checks the resources an S-IQ0 exit at window position
// pos needs: ROB entries (and SQ entries for stores) for itself plus any
// stuck older window entries that must be pre-allocated first.
func (c *Core) exitResourcesOK(qi int, e *opEntry, pos int) bool {
	if qi != 0 {
		return true
	}
	robNeed, sqNeed, lqNeed := 0, 0, 0
	if !e.preAlloc {
		robNeed++
		switch e.op.Class {
		case isa.Store:
			sqNeed++
		case isa.Load:
			lqNeed++
		}
		for i := 0; i < pos; i++ {
			o := c.queues[0].at(i)
			if !o.preAlloc {
				robNeed++
				switch o.op.Class {
				case isa.Store:
					sqNeed++
				case isa.Load:
					lqNeed++
				}
			}
		}
	}
	if c.rob.len()+robNeed > c.rob.cap() {
		return false
	}
	if sqNeed > 0 && c.sq.Len()+sqNeed > c.sq.Cap() {
		return false
	}
	if c.lq != nil && lqNeed > 0 && c.lq.Len()+lqNeed > c.lq.Cap() {
		return false
	}
	return true
}

// passResourcesOK checks the rename resources of the pass path.
func (c *Core) passResourcesOK(qi int, e *opEntry) bool {
	if qi != 0 || !e.op.HasDst() {
		return true
	}
	if c.cfg.Renaming == RenameConventional {
		return c.rf.CanAllocate(e.op.Dst)
	}
	// Conditional renaming: the passed instruction shares the current
	// mapping; the 2-bit ProducerCount must not saturate.
	return c.rf.CanAddProducer(c.rf.Lookup(e.op.Dst))
}

// issueResourcesOK checks the resources the issue path needs beyond an FU:
// a free register (speculative issue or conventional renaming), a data
// buffer entry (IQ issue under conditional renaming), and OSCA headroom
// for stores.
func (c *Core) issueResourcesOK(e *opEntry, now int64, fromSIQ bool) bool {
	if e.op.HasDst() {
		// An issue from the first S-IQ allocates a fresh register;
		// intermediate-queue issues were renamed at the first S-IQ.
		if fromSIQ && e.queue == 0 && !c.rf.CanAllocate(e.op.Dst) {
			return false
		}
		if !fromSIQ && c.cfg.Renaming == RenameConditional && c.dbUsed >= c.cfg.DataBufSize {
			return false
		}
	}
	if e.op.Class == isa.Store && c.osca != nil {
		if !c.osca.CanInc(e.op.Addr, e.op.Size) {
			return false
		}
	}
	return true
}

// exitRename performs the rename work at the S-IQ0 exit: source mappings
// are captured; the destination either receives a fresh register (issue,
// or every op under conventional renaming) or shares the current mapping
// with an incremented ProducerCount (pass under conditional renaming).
func (c *Core) exitRename(e *opEntry, issuing bool) {
	op := e.op
	if !e.preAlloc {
		c.captureSources(e)
	}
	if op.HasDst() {
		if issuing || c.cfg.Renaming == RenameConventional {
			newP, oldP, ok := c.rf.Allocate(op.Dst)
			if !ok {
				panic("core: allocate failed after resource check")
			}
			e.newP, e.oldP, e.dstP = newP, oldP, newP
			c.acct.Inc(c.hRAT, energy.Write, 1)
			c.acct.Inc(c.hFL, energy.Read, 1)
			c.log.Push(regfile.RecoveryEntry{Seq: op.Seq, Arch: op.Dst, Old: oldP, New: newP})
			c.acct.Inc(c.hLog, energy.Write, 1)
		} else {
			e.dstP = c.rf.Lookup(op.Dst)
			c.rf.AddProducer(e.dstP)
			c.acct.Inc(c.hScbd, energy.Write, 1)
		}
		c.lastWriter[op.Dst] = e
	}
	if e.preAlloc {
		return // ROB and SQ/LQ slots were reserved by the group rename
	}
	c.dispatchMemEntry(e)
	c.rob.pushBack(e)
	c.acct.Inc(c.hROB, energy.Write, 1)
}

// dispatchMemEntry allocates the LSU tracking entry for a memory op
// leaving the first S-IQ.
func (c *Core) dispatchMemEntry(e *opEntry) {
	switch e.op.Class {
	case isa.Store:
		c.sq.Dispatch(e.op.Seq, e.op.PC)
		c.acct.Inc(c.hSQ, energy.Write, 1)
	case isa.Load:
		if c.lq != nil {
			c.lq.Dispatch(e.op.Seq, e.op.PC)
			c.acct.Inc(c.hLQ, energy.Write, 1)
		}
	}
}

// captureSources records the source mappings (and, under conditional
// renaming, the producing in-flight ops) as of this rename point.
func (c *Core) captureSources(e *opEntry) {
	op := e.op
	e.srcP1 = c.rf.Lookup(op.Src1)
	e.srcP2 = c.rf.Lookup(op.Src2)
	if c.cfg.Renaming == RenameConditional {
		// lastWriter only holds in-flight entries (commit clears it), so
		// the captured Seq is the producer's own — the pair stays valid
		// across the producer's recycling (see liveProducer).
		if op.Src1.Valid() {
			if lw := c.lastWriter[op.Src1]; lw != nil {
				e.prod1, e.prodSeq1 = lw, lw.op.Seq
			}
		}
		if op.Src2.Valid() {
			if lw := c.lastWriter[op.Src2]; lw != nil {
				e.prod2, e.prodSeq2 = lw, lw.op.Seq
			}
		}
	}
}

// recordProducerDistance logs the §II-C distance metric: how many IQ
// entries separate a passed instruction from its in-IQ producer.
func (c *Core) recordProducerDistance(e *opEntry) {
	last := len(c.queues) - 1
	q := &c.queues[last]
	for _, pr := range [...]struct {
		p   *opEntry
		seq uint64
	}{{e.prod1, e.prodSeq1}, {e.prod2, e.prodSeq2}} {
		p := liveProducer(pr.p, pr.seq)
		if p == nil || p.issued || int(p.queue) != last {
			continue
		}
		// The IQ is age-ordered (oldest at 0, Seq strictly increasing), so
		// the producer's slot is found by binary search on Seq rather than
		// the reverse linear scan this used to do per passed instruction.
		lo, hi := 0, q.len()
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if q.at(mid).op.Seq < p.op.Seq {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < q.len() && q.at(lo) == p {
			c.ProducerDist.Add(q.len() - 1 - lo)
			return
		}
	}
}

// issueOp executes the instruction and records completion bookkeeping.
func (c *Core) issueOp(e *opEntry, now int64, fromSIQ bool) {
	op := e.op
	e.issued = true
	e.issueCycle = now
	e.queue = -1
	c.countFU(op.Class)
	c.acct.Inc(c.hPRF, energy.Read, 2)

	switch op.Class {
	case isa.Load:
		e.done = c.issueLoad(e, now, fromSIQ)
	case isa.Store:
		e.done = c.issueStore(e, now)
	case isa.Branch:
		e.done = now + int64(op.Class.ExecLatency())
		c.fe.BranchResolved(op.Seq, e.done)
	default:
		e.done = now + int64(op.Class.ExecLatency())
	}
	// A completion next cycle needs no wakeup: this issue already makes the
	// current cycle non-idle, so no jump can start before the effect lands.
	if e.done > now+1 {
		c.wq.Wake(e.done)
	}

	if e.newP != regfile.PRegNone {
		c.rf.SetReadyAt(e.newP, e.done)
	} else if op.HasDst() {
		// IQ issue under conditional renaming: shared register, result
		// goes to the data buffer until commit.
		c.rf.RemoveProducer(e.dstP)
		if e.done > c.rf.ReadyAt(e.dstP) {
			c.rf.SetReadyAt(e.dstP, e.done)
		}
		c.dbUsed++
		e.hasDB = true
		c.acct.Inc(c.hDB, energy.Write, 1)
	}

	if fromSIQ {
		if op.Class.IsMem() {
			c.IssuedSIQMem++
		} else {
			c.IssuedSIQNonMem++
		}
		c.emit(now, op.Seq, ptrace.KindIssueSpec)
	} else {
		if op.Class.IsMem() {
			c.IssuedIQMem++
		} else {
			c.IssuedIQNonMem++
		}
		c.emit(now, op.Seq, ptrace.KindIssue)
	}
	c.emit(e.done, op.Seq, ptrace.KindComplete)
}

func (c *Core) countFU(class isa.Class) {
	switch class.FU() {
	case isa.FUFP:
		c.acct.FPOps++
	case isa.FUAGU:
		c.acct.AGUOps++
	default:
		c.acct.IntOps++
	}
}
