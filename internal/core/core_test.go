package core

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/ino"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/trace"
	"casino/internal/workload"
)

func mkTrace(ops []isa.MicroOp) (*trace.Trace, *mem.Hierarchy) {
	for i := range ops {
		ops[i].Seq = uint64(i)
		if ops[i].PC == 0 {
			ops[i].PC = 0x1000 + uint64(i)*4
		}
	}
	tr := &trace.Trace{Name: "micro", Ops: ops}
	hier := mem.NewHierarchy(mem.DefaultConfig())
	for i := range ops {
		hier.Fetch(ops[i].PC, 0)
	}
	return tr, hier
}

func mkCore(cfg Config, ops []isa.MicroOp) *Core {
	tr, hier := mkTrace(ops)
	return New(cfg, tr, hier, energy.NewAccountant())
}

func run(t *testing.T, c *Core) {
	t.Helper()
	for i := 0; i < 5_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatalf("core livelocked: committed=%d now=%d rob=%d", c.Committed(), c.Now(), c.rob.len())
	}
}

func alu(dst, src isa.Reg) isa.MicroOp {
	return isa.MicroOp{Class: isa.IntALU, Dst: dst, Src1: src, Src2: isa.RegNone}
}

func TestAllOpsCommit(t *testing.T) {
	ops := []isa.MicroOp{
		alu(isa.IntReg(1), isa.RegNone),
		{Class: isa.Load, Dst: isa.IntReg(2), Src1: isa.IntReg(1), Src2: isa.RegNone, Addr: 0x100, Size: 8},
		alu(isa.IntReg(3), isa.IntReg(2)),
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(3), Src2: isa.IntReg(1), Addr: 0x200, Size: 8},
		alu(isa.IntReg(4), isa.RegNone),
		{Class: isa.FPAdd, Dst: isa.FPReg(0), Src1: isa.FPReg(1), Src2: isa.FPReg(2)},
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	if c.Committed() != 6 {
		t.Errorf("committed %d, want 6", c.Committed())
	}
}

func TestSpeculativeIssueHidesMiss(t *testing.T) {
	// Miss + dependent consumer + independent pairs: CASINO must overlap
	// the misses (near-OoO), beating the stall-on-use InO baseline.
	var ops []isa.MicroOp
	for i := 0; i < 6; i++ {
		addr := uint64(1)<<30 + uint64(i)*4096
		ops = append(ops,
			isa.MicroOp{Class: isa.Load, Dst: isa.IntReg(1 + i%4), Src1: isa.RegNone, Src2: isa.RegNone, Addr: addr, Size: 8},
			alu(isa.IntReg(8+i%4), isa.IntReg(1+i%4)),
		)
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	tr, hier := mkTrace(append([]isa.MicroOp(nil), ops...))
	ic := ino.New(ino.DefaultConfig(), tr, hier, energy.NewAccountant())
	for i := 0; i < 5_000_000 && !ic.Done(); i++ {
		ic.Cycle()
	}
	if !ic.Done() {
		t.Fatal("InO livelocked")
	}
	if c.Now() >= ic.Now() {
		t.Errorf("CASINO (%d cyc) not faster than InO (%d cyc) on MLP trace", c.Now(), ic.Now())
	}
	if c.IssuedSIQMem == 0 {
		t.Error("no loads issued speculatively from the S-IQ")
	}
	if c.PassedToIQ == 0 {
		t.Error("no instructions passed to the IQ")
	}
}

func TestMemoryViolationOnCommitValueCheck(t *testing.T) {
	ops := []isa.MicroOp{
		{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8}, // slow
		alu(isa.IntReg(2), isa.IntReg(1)),
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(2), Src2: isa.RegNone, Addr: 0x500, Size: 8}, // late data
		{Class: isa.Load, Dst: isa.IntReg(3), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x500, Size: 8},  // speculates past it
		alu(isa.IntReg(4), isa.IntReg(3)),
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	if c.Violations == 0 {
		t.Fatal("expected an on-commit memory-order violation")
	}
	if c.Committed() != 5 {
		t.Errorf("committed %d, want 5 (each op exactly once)", c.Committed())
	}
	if c.sq.ViolationsSeen == 0 {
		t.Error("SQ validation did not record the violation")
	}
}

func TestAGIOrderingNeverViolates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Disambig = DisambigAGIOrder
	ops := []isa.MicroOp{
		{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8},
		alu(isa.IntReg(2), isa.IntReg(1)),
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(2), Src2: isa.RegNone, Addr: 0x500, Size: 8},
		{Class: isa.Load, Dst: isa.IntReg(3), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x500, Size: 8},
	}
	c := mkCore(cfg, ops)
	run(t, c)
	if c.Violations != 0 {
		t.Errorf("AGI ordering violated %d times", c.Violations)
	}
	if c.IssuedSIQMem != 0 {
		t.Errorf("%d memory ops issued speculatively under AGI ordering", c.IssuedSIQMem)
	}
	if c.Committed() != 4 {
		t.Errorf("committed %d", c.Committed())
	}
}

func TestFullLQBaselineViolatesAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Disambig = DisambigFullLQ
	cfg.OSCASize = 0
	ops := []isa.MicroOp{
		{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8},
		alu(isa.IntReg(2), isa.IntReg(1)),
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(2), Src2: isa.RegNone, Addr: 0x500, Size: 8},
		{Class: isa.Load, Dst: isa.IntReg(3), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x500, Size: 8},
		alu(isa.IntReg(4), isa.IntReg(3)),
		alu(isa.IntReg(5), isa.RegNone),
	}
	c := mkCore(cfg, ops)
	run(t, c)
	if c.Violations == 0 {
		t.Fatal("FullLQ baseline missed the violation (store-issue LQ search)")
	}
	if c.Committed() != 6 {
		t.Errorf("committed %d, want 6", c.Committed())
	}
	// The mid-pipeline flush must not corrupt rename state: rerun a long
	// random-ish workload to shake out recovery bugs.
	ipc, cc := runProfile(t, cfg, "h264ref", 20000)
	if ipc <= 0 {
		t.Error("FullLQ profile run failed")
	}
	if cc.Violations == 0 {
		t.Error("aliasing workload produced no FullLQ violations")
	}
}

func TestConditionalRenamingAllocatesLess(t *testing.T) {
	// A pointer-chase-like trace where most ops wait (get passed).
	var ops []isa.MicroOp
	for i := 0; i < 100; i++ {
		ops = append(ops,
			isa.MicroOp{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.IntReg(1), Src2: isa.RegNone,
				Addr: uint64(1)<<30 + uint64(i)*64, Size: 8},
			alu(isa.IntReg(2), isa.IntReg(1)),
			alu(isa.IntReg(3), isa.IntReg(2)),
		)
	}
	cond := mkCore(DefaultConfig(), append([]isa.MicroOp(nil), ops...))
	run(t, cond)
	convCfg := DefaultConfig()
	convCfg.Renaming = RenameConventional
	conv := mkCore(convCfg, append([]isa.MicroOp(nil), ops...))
	run(t, conv)
	if cond.RegAllocs() >= conv.RegAllocs() {
		t.Errorf("conditional renaming allocated %d regs, conventional %d — should be fewer",
			cond.RegAllocs(), conv.RegAllocs())
	}
	if cond.Committed() != conv.Committed() {
		t.Errorf("commit counts differ: %d vs %d", cond.Committed(), conv.Committed())
	}
}

func TestProducerCountSaturationNoDeadlock(t *testing.T) {
	// Many consecutive writers of the same register behind a slow load:
	// ProducerCount (max 3) must stall passes without deadlocking.
	ops := []isa.MicroOp{
		{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8},
	}
	for i := 0; i < 10; i++ {
		ops = append(ops, alu(isa.IntReg(2), isa.IntReg(1))) // all write r2, all depend on the load
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	if c.Committed() != 11 {
		t.Errorf("committed %d, want 11", c.Committed())
	}
}

func TestDataBufferLimitNoDeadlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataBufSize = 1
	var ops []isa.MicroOp
	// A serial chain: everything passes to the IQ and needs buffer slots.
	ops = append(ops, isa.MicroOp{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8})
	for i := 0; i < 20; i++ {
		ops = append(ops, alu(isa.IntReg(1+i%3), isa.IntReg(1+(i+2)%3)))
	}
	c := mkCore(cfg, ops)
	run(t, c)
	if c.Committed() != 21 {
		t.Errorf("committed %d, want 21", c.Committed())
	}
}

func TestOSCAFiltersSearches(t *testing.T) {
	// Loads only (no stores in flight): with the OSCA every search is
	// filtered; without it (DisambigNoLQ) every load searches.
	var ops []isa.MicroOp
	for i := 0; i < 50; i++ {
		ops = append(ops, isa.MicroOp{Class: isa.Load, Dst: isa.IntReg(1 + i%4), Src1: isa.RegNone, Src2: isa.RegNone,
			Addr: 0x8000 + uint64(i)*8, Size: 8})
	}
	withOSCA := mkCore(DefaultConfig(), append([]isa.MicroOp(nil), ops...))
	run(t, withOSCA)
	cfg := DefaultConfig()
	cfg.Disambig = DisambigNoLQ
	cfg.OSCASize = 0
	without := mkCore(cfg, append([]isa.MicroOp(nil), ops...))
	run(t, without)
	if withOSCA.sq.Searches != 0 {
		t.Errorf("OSCA failed to filter: %d searches with no stores in flight", withOSCA.sq.Searches)
	}
	if without.sq.Searches < 50 {
		t.Errorf("NoLQ variant searched only %d times for 50 loads", without.sq.Searches)
	}
	if withOSCA.OSCA().Skips == 0 {
		t.Error("OSCA skip counter empty")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	ops := []isa.MicroOp{
		alu(isa.IntReg(1), isa.RegNone),
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(1), Src2: isa.RegNone, Addr: 1 << 29, Size: 8},
		{Class: isa.Load, Dst: isa.IntReg(2), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 29, Size: 8},
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	if c.LoadsForwarded != 1 {
		t.Errorf("LoadsForwarded = %d, want 1", c.LoadsForwarded)
	}
	if c.Violations != 0 {
		t.Error("forwarded load raised a violation")
	}
}

func TestWideCascadedConfig(t *testing.T) {
	for _, w := range []int{3, 4} {
		cfg := WideConfig(w)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		p, _ := workload.ByName("gcc")
		tr := workload.Generate(p, 10000, 1)
		c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
		for i := 0; i < 20_000_000 && !c.Done(); i++ {
			c.Cycle()
		}
		if !c.Done() {
			t.Fatalf("width %d livelocked", w)
		}
		if c.Committed() != uint64(tr.Len()) {
			t.Errorf("width %d: committed %d of %d", w, c.Committed(), tr.Len())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.WS = 1
	bad.SO = 2
	if err := bad.Validate(); err == nil {
		t.Error("WS < SO accepted")
	}
	bad = DefaultConfig()
	bad.MidSIQs = 1
	bad.MidSIQSize = 8
	if err := bad.Validate(); err == nil {
		t.Error("cascade with conditional renaming accepted")
	}
	bad = DefaultConfig()
	bad.OSCASize = 63
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two OSCA accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func runProfile(t *testing.T, cfg Config, name string, n int) (float64, *Core) {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(p, n, 1)
	c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 100_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatalf("%s livelocked: committed=%d of %d", name, c.Committed(), tr.Len())
	}
	if c.Committed() != uint64(tr.Len()) {
		t.Fatalf("%s: committed %d of %d", name, c.Committed(), tr.Len())
	}
	return float64(c.Committed()) / float64(c.Now()), c
}

func TestAllProfilesComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	for _, name := range []string{"mcf", "libquantum", "h264ref", "hmmer", "cactusADM", "lbm", "gobmk"} {
		ipc, c := runProfile(t, DefaultConfig(), name, 20000)
		if ipc <= 0.03 || ipc > 2.0 {
			t.Errorf("%s: CASINO IPC %.3f outside plausible range", name, ipc)
		}
		total := c.IssuedSIQMem + c.IssuedSIQNonMem + c.IssuedIQMem + c.IssuedIQNonMem
		if total < c.Committed() {
			t.Errorf("%s: issue counters (%d) < committed (%d)", name, total, c.Committed())
		}
	}
}

func TestCASINOBeatsInO(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	for _, name := range []string{"libquantum", "cactusADM", "milc"} {
		cIPC, _ := runProfile(t, DefaultConfig(), name, 20000)
		p, _ := workload.ByName(name)
		tr := workload.Generate(p, 20000, 1)
		ic := ino.New(ino.DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
		for i := 0; i < 100_000_000 && !ic.Done(); i++ {
			ic.Cycle()
		}
		iIPC := float64(ic.Committed()) / float64(ic.Now())
		if cIPC <= iIPC {
			t.Errorf("%s: CASINO IPC %.3f <= InO IPC %.3f", name, cIPC, iIPC)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, ca := runProfile(t, DefaultConfig(), "soplex", 15000)
	b, cb := runProfile(t, DefaultConfig(), "soplex", 15000)
	if a != b || ca.Now() != cb.Now() || ca.Violations != cb.Violations {
		t.Error("nondeterministic CASINO run")
	}
}
