package core

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/workload"
)

func TestLineSentinelSetClear(t *testing.T) {
	ls := newLineSentinels()
	ls.set(0x1000, 10)
	if !ls.guarded(0x1008) { // same 64-byte line
		t.Error("same-line address not guarded")
	}
	if ls.guarded(0x2000) {
		t.Error("unrelated line guarded")
	}
	// A younger load refreshes the sentinel; clearing by the older owner
	// must then be a no-op.
	ls.set(0x1000, 20)
	ls.clear(0x1000, 10)
	if !ls.guarded(0x1000) {
		t.Error("older owner cleared a younger sentinel")
	}
	ls.clear(0x1000, 20)
	if ls.guarded(0x1000) {
		t.Error("sentinel not cleared by its owner")
	}
	ls.set(0x3000, 5)
	ls.clearAll()
	if ls.guarded(0x3000) {
		t.Error("clearAll left a sentinel")
	}
}

func TestLoadLoadSpeculationSetsSentinels(t *testing.T) {
	// A slow older load followed by a fast independent younger load: the
	// younger one performs first and must guard its line.
	ops := []isa.MicroOp{
		{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8}, // misses
		{Class: isa.Load, Dst: isa.IntReg(2), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x100, Size: 8},   // fast
		alu(isa.IntReg(3), isa.IntReg(2)),
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	set, cleared, _ := c.LineSentinels()
	if set == 0 {
		t.Fatal("no TSO line sentinel set for a load-load reordering")
	}
	if cleared == 0 {
		t.Error("sentinel never cleared at commit")
	}
}

func TestInOrderLoadsSetNoSentinels(t *testing.T) {
	// Loads that perform in order need no line sentinels.
	ops := []isa.MicroOp{
		{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x100, Size: 8},
		alu(isa.IntReg(2), isa.IntReg(1)),
		alu(isa.IntReg(3), isa.IntReg(2)),
		alu(isa.IntReg(4), isa.IntReg(3)),
		{Class: isa.Load, Dst: isa.IntReg(5), Src1: isa.IntReg(4), Src2: isa.RegNone, Addr: 0x200, Size: 8},
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	if set, _, _ := c.LineSentinels(); set != 0 {
		t.Errorf("in-order loads set %d sentinels", set)
	}
}

func TestRemoteInjectorWithholdsAcks(t *testing.T) {
	p, _ := workload.ByName("milc") // plenty of overlapped loads
	tr := workload.Generate(p, 30000, 1)
	cfg := DefaultConfig()
	cfg.Remote = RemoteTraffic{Period: 50}
	c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 100_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatal("livelock with remote traffic")
	}
	invals, withheld, delay := c.RemoteStats()
	if invals == 0 {
		t.Fatal("injector never fired")
	}
	if withheld == 0 {
		t.Error("no invalidation was ever withheld — sentinels ineffective")
	}
	if withheld > 0 && delay == 0 {
		t.Error("withheld acks recorded no delay")
	}
	if withheld > invals {
		t.Error("withheld more acks than invalidations")
	}
}

func TestRemoteInjectorDisabledByDefault(t *testing.T) {
	c := mkCore(DefaultConfig(), []isa.MicroOp{alu(isa.IntReg(1), isa.RegNone)})
	run(t, c)
	if invals, _, _ := c.RemoteStats(); invals != 0 {
		t.Error("remote injector active without configuration")
	}
}
