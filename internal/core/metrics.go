package core

import "casino/internal/stats"

// PublishMetrics snapshots the core's counters and histograms into the
// registry. Scalar names match the legacy Result.Extra keys so existing
// figure drivers and examples keep reading the same metrics; the occupancy
// and stall series are new. Counts cover the whole run (warm-up included).
func (c *Core) PublishMetrics(r *stats.Registry) {
	r.Counter("mispredicts", c.Mispredicts())
	r.Counter("violations", c.Violations)
	r.Counter("flushes", c.Flushes)
	r.Counter("regAllocs", c.RegAllocs())
	r.Counter("sqSearches", c.sq.Searches)
	r.Counter("loadsForwarded", c.LoadsForwarded)
	r.Counter("siqMem", c.IssuedSIQMem)
	r.Counter("siqNonMem", c.IssuedSIQNonMem)
	r.Counter("iqMem", c.IssuedIQMem)
	r.Counter("iqNonMem", c.IssuedIQNonMem)
	r.Counter("passedToIQ", c.PassedToIQ)
	total := c.IssuedSIQMem + c.IssuedSIQNonMem + c.IssuedIQMem + c.IssuedIQNonMem
	r.SetRatio("siqFrac", float64(c.IssuedSIQMem+c.IssuedSIQNonMem), float64(total))
	r.Gauge("producerDist", c.ProducerDist.Mean())
	if c.osca != nil {
		r.Counter("oscaLookups", c.osca.Lookups)
		r.Counter("oscaSkips", c.osca.Skips)
	}
	set, cleared, _ := c.LineSentinels()
	r.Counter("lineSentinelsSet", set)
	r.Counter("lineSentinelsCleared", cleared)
	invals, withheld, delay := c.RemoteStats()
	r.Counter("remoteInvals", invals)
	r.Counter("remoteWithheld", withheld)
	r.Counter("remoteDelayCyc", delay)

	r.Counter("stall.iqFull", c.StallIQFull)
	r.Counter("stall.preg", c.StallPReg)
	r.Counter("stall.prodCount", c.StallProdCount)
	r.Counter("stall.robSQ", c.StallROBSQ)
	r.Counter("stall.fu", c.StallFU)
	r.Counter("stall.dataBuf", c.StallDataBuf)

	r.Hist("occ.siq", c.OccSIQ)
	r.Hist("occ.iq", c.OccIQ)
	r.Hist("occ.rob", c.OccROB)
	r.Hist("occ.sq", c.OccSQ)
	c.cpi.Publish(r)
}
