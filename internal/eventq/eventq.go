// Package eventq provides the shared wakeup queue of the event-driven
// simulation engine: an allocation-free binary min-heap of cycle numbers on
// which every latency source — functional-unit completions, MSHR/DRAM
// returns, store-queue retirement, fetch redirects, the remote-invalidation
// injector — registers the next cycle it can change observable core state.
//
// The registration contract (see DESIGN.md, "Clock & event model"): whenever
// a component stores a future cycle number into live state (an instruction's
// completion time, a stall expiry, a busy-until slot), it must Wake the
// queue with that cycle. Everything else a cycle does is a consequence of an
// executed cycle's progress, which the driver never jumps across, so a core
// whose registered horizon is empty over (now, t) is guaranteed to repeat
// the same idle cycle until t — the invariant the driver's batched
// bookkeeping relies on.
//
// Wakeups are cheap and duplicates are fine: a spurious wakeup only shortens
// a jump, never corrupts one. Registering *late* is the only unsound
// direction, and the property tests in the sim package check against it.
package eventq

// NoEvent is returned when no future wakeup is registered: the core cannot
// change state through the passage of time alone. It mirrors lsu.NoEvent.
const NoEvent = int64(1) << 62

// Stats is a snapshot of the queue's activity counters.
type Stats struct {
	Wakeups   uint64 // Wake calls (registrations offered)
	Coalesced uint64 // wakeups absorbed without a heap push (past or duplicate)
	HeapMax   int    // high-water mark of heap occupancy
}

// Queue is the wakeup min-heap. The zero value is NOT ready to use; call
// New, which pre-sizes the backing array so steady-state operation never
// allocates. All methods are nil-safe on the receiver, so components can
// hold an optional *Queue and call it unconditionally.
type Queue struct {
	heap  []int64
	floor int64 // every cycle <= floor has been consumed; wakeups there coalesce
	max   int64 // latest pending wakeup: lets consumption clear an all-past heap in O(1)
	stats Stats
}

// New creates a queue with room for capacity pending wakeups before the
// backing array would have to grow.
func New(capacity int) *Queue {
	return &Queue{heap: make([]int64, 0, capacity)}
}

// Wake registers cycle t as a moment observable state may change. Wakeups
// at or before the consumed horizon, and duplicates of the current minimum,
// coalesce without touching the heap.
func (q *Queue) Wake(t int64) {
	if q == nil {
		return
	}
	q.stats.Wakeups++
	if t <= q.floor || (len(q.heap) > 0 && q.heap[0] == t) {
		q.stats.Coalesced++
		return
	}
	q.heap = append(q.heap, t)
	if len(q.heap) == 1 || t > q.max {
		q.max = t
	}
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.heap[p] <= q.heap[i] {
			break
		}
		q.heap[p], q.heap[i] = q.heap[i], q.heap[p]
		i = p
	}
	if len(q.heap) > q.stats.HeapMax {
		q.stats.HeapMax = len(q.heap)
	}
}

// NextAfter consumes every wakeup at or before now — cycles the driver is
// about to execute (or has executed) handle those by construction — and
// returns the earliest registered wakeup strictly after now, or NoEvent.
func (q *Queue) NextAfter(now int64) int64 {
	if q == nil {
		return NoEvent
	}
	if now > q.floor {
		q.floor = now
	}
	if q.max <= now {
		q.heap = q.heap[:0] // every pending wakeup is consumed
		return NoEvent
	}
	for len(q.heap) > 0 && q.heap[0] <= now {
		q.pop()
	}
	if len(q.heap) == 0 {
		return NoEvent
	}
	return q.heap[0]
}

// Horizon consumes wakeups strictly before now and returns the earliest
// registered wakeup at or after now, or NoEvent. Unlike NextAfter it keeps
// a wakeup at exactly now pending — FastForward uses it after its embedded
// cycle, where an event at the new current cycle must clamp the jump to
// zero skipped cycles rather than be discarded.
func (q *Queue) Horizon(now int64) int64 {
	if q == nil {
		return NoEvent
	}
	if now-1 > q.floor {
		q.floor = now - 1
	}
	if q.max < now {
		q.heap = q.heap[:0] // every pending wakeup is consumed
		return NoEvent
	}
	for len(q.heap) > 0 && q.heap[0] < now {
		q.pop()
	}
	if len(q.heap) == 0 {
		return NoEvent
	}
	return q.heap[0]
}

// Drain consumes wakeups strictly before now without reporting a horizon.
// Models call it once per executed cycle so the heap stays bounded by the
// in-flight event population even when no driver is polling (fast-forward
// disabled, tracing runs, benchmarks).
func (q *Queue) Drain(now int64) {
	if q == nil {
		return
	}
	if now-1 > q.floor {
		q.floor = now - 1
	}
	if q.max < now {
		q.heap = q.heap[:0] // every pending wakeup is consumed: the common
		return              // steady-state case, cleared without sift-downs
	}
	for len(q.heap) > 0 && q.heap[0] < now {
		q.pop()
	}
}

// pop removes the heap minimum.
func (q *Queue) pop() {
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q.heap[l] < q.heap[s] {
			s = l
		}
		if r < n && q.heap[r] < q.heap[s] {
			s = r
		}
		if s == i {
			return
		}
		q.heap[i], q.heap[s] = q.heap[s], q.heap[i]
		i = s
	}
}

// Len returns the number of pending wakeups.
func (q *Queue) Len() int {
	if q == nil {
		return 0
	}
	return len(q.heap)
}

// Stats returns a snapshot of the activity counters.
func (q *Queue) Stats() Stats {
	if q == nil {
		return Stats{}
	}
	return q.stats
}
