package eventq

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var q *Queue
	q.Wake(10)
	q.Drain(5)
	if got := q.NextAfter(0); got != NoEvent {
		t.Fatalf("nil NextAfter = %d, want NoEvent", got)
	}
	if got := q.Horizon(0); got != NoEvent {
		t.Fatalf("nil Horizon = %d, want NoEvent", got)
	}
	if q.Len() != 0 || (q.Stats() != Stats{}) {
		t.Fatalf("nil queue reports non-zero state")
	}
}

func TestOrdering(t *testing.T) {
	q := New(8)
	for _, v := range []int64{50, 10, 30, 10, 20, 40} {
		q.Wake(v)
	}
	want := []int64{10, 20, 30, 40, 50}
	now := int64(0)
	for _, w := range want {
		got := q.NextAfter(now)
		if got != w {
			t.Fatalf("NextAfter(%d) = %d, want %d", now, got, w)
		}
		now = got
	}
	if got := q.NextAfter(now); got != NoEvent {
		t.Fatalf("drained queue returned %d, want NoEvent", got)
	}
}

func TestNextAfterConsumesAtNow(t *testing.T) {
	q := New(4)
	q.Wake(5)
	q.Wake(9)
	if got := q.NextAfter(5); got != 9 {
		t.Fatalf("NextAfter(5) = %d, want 9 (wakeup at 5 consumed)", got)
	}
}

func TestHorizonKeepsEventAtNow(t *testing.T) {
	q := New(4)
	q.Wake(3)
	q.Wake(5)
	q.Wake(9)
	if got := q.Horizon(5); got != 5 {
		t.Fatalf("Horizon(5) = %d, want 5 (wakeup at now pending)", got)
	}
	if q.Len() != 2 {
		t.Fatalf("Horizon(5) left %d events, want 2 (only past consumed)", q.Len())
	}
}

func TestCoalescing(t *testing.T) {
	q := New(4)
	q.NextAfter(100) // floor at 100
	q.Wake(50)       // past: coalesced
	q.Wake(100)      // at the floor: coalesced
	q.Wake(200)
	q.Wake(200) // duplicate of the minimum: coalesced
	s := q.Stats()
	if s.Wakeups != 4 || s.Coalesced != 3 {
		t.Fatalf("stats = %+v, want 4 wakeups / 3 coalesced", s)
	}
	if q.Len() != 1 {
		t.Fatalf("heap len = %d, want 1", q.Len())
	}
}

func TestHeapMax(t *testing.T) {
	q := New(4)
	for i := int64(10); i > 0; i-- {
		q.Wake(i)
	}
	if s := q.Stats(); s.HeapMax != 10 {
		t.Fatalf("HeapMax = %d, want 10", s.HeapMax)
	}
}

func TestDrainBoundsHeap(t *testing.T) {
	q := New(4)
	for now := int64(1); now <= 10000; now++ {
		q.Drain(now)
		q.Wake(now + 3)
	}
	if q.Len() > 4 {
		t.Fatalf("heap grew to %d despite per-cycle Drain", q.Len())
	}
}

// stdHeap is the reference implementation the randomized test diffs against.
type stdHeap []int64

func (h stdHeap) Len() int            { return len(h) }
func (h stdHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h stdHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stdHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *stdHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestRandomizedAgainstReference drives Wake/NextAfter with random
// interleavings and checks the observable horizon sequence against a
// container/heap reference that applies the same coalescing rules.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := New(8)
	ref := &stdHeap{}
	floor := int64(0)
	for step := 0; step < 20000; step++ {
		if rng.Intn(3) != 0 {
			t := floor + rng.Int63n(40) - 4
			q.Wake(t)
			if t > floor && !(ref.Len() > 0 && (*ref)[0] == t) {
				heap.Push(ref, t)
			}
			continue
		}
		now := floor + rng.Int63n(8)
		got := q.NextAfter(now)
		if now > floor {
			floor = now
		}
		for ref.Len() > 0 && (*ref)[0] <= now {
			heap.Pop(ref)
		}
		want := int64(NoEvent)
		if ref.Len() > 0 {
			want = (*ref)[0]
		}
		if got != want {
			t.Fatalf("step %d: NextAfter(%d) = %d, want %d", step, now, got, want)
		}
	}
}

// TestFullDrainSorted pushes a random batch and verifies a full drain comes
// out sorted.
func TestFullDrainSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := New(1)
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = 1 + rng.Int63n(1000)
		q.Wake(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	now := int64(0)
	for {
		got := q.NextAfter(now)
		if got == NoEvent {
			break // remaining heap entries (duplicates <= now) were consumed
		}
		// Skip reference values consumed by coalescing or <= now.
		for len(vals) > 0 && (vals[0] <= now || vals[0] < got) {
			vals = vals[1:]
		}
		if len(vals) == 0 || vals[0] != got {
			t.Fatalf("drain out of order: got %d, remaining ref %v...", got, vals[:min(3, len(vals))])
		}
		now = got
	}
	for _, v := range vals {
		if v > now {
			t.Fatalf("queue reported empty but reference still holds %d > %d", v, now)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkEventQueue measures the steady-state Wake/NextAfter cycle the
// driver and models exercise per simulated event. The CI bench-regression
// job gates this benchmark at 0 allocs/op: the heap must never grow in
// steady state.
func BenchmarkEventQueue(b *testing.B) {
	q := New(256)
	// Warm the backing array to steady-state occupancy.
	for i := int64(0); i < 64; i++ {
		q.Wake(i * 3)
	}
	now := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		q.Wake(now + 7)
		q.Wake(now + 200)
		q.Drain(now)
		if q.NextAfter(now) == NoEvent {
			b.Fatal("queue unexpectedly empty")
		}
	}
}
