package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"casino/internal/isa"
)

// Binary trace format:
//
//	magic "CSNT" | u16 version | u16 nameLen | name bytes | u64 count |
//	count records of: u64 pc | u8 class | u8 dst | u8 src1 | u8 src2 |
//	                  u64 addr | u8 size | u8 flags | u64 target
//
// Seq is implied by record position. flags bit0 = branch taken.
const (
	codecMagic   = "CSNT"
	codecVersion = 1
)

var errBadMagic = errors.New("trace: bad magic (not a CASINO trace file)")

// Write encodes t to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], codecVersion)
	bw.Write(hdr[:])
	if len(t.Name) > 0xFFFF {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(t.Name)))
	bw.Write(hdr[:])
	bw.WriteString(t.Name)
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], uint64(len(t.Ops)))
	bw.Write(n8[:])
	var rec [30]byte
	for i := range t.Ops {
		op := &t.Ops[i]
		binary.LittleEndian.PutUint64(rec[0:], op.PC)
		rec[8] = byte(op.Class)
		rec[9] = byte(op.Dst)
		rec[10] = byte(op.Src1)
		rec[11] = byte(op.Src2)
		binary.LittleEndian.PutUint64(rec[12:], op.Addr)
		rec[20] = op.Size
		var flags byte
		if op.Taken {
			flags |= 1
		}
		rec[21] = flags
		binary.LittleEndian.PutUint64(rec[22:], op.Target)
		// rec[30] unused padding kept at zero
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != codecMagic {
		return nil, errBadMagic
	}
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(hdr[:]); v != codecVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	nameLen := binary.LittleEndian.Uint16(hdr[:])
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var n8 [8]byte
	if _, err := io.ReadFull(br, n8[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(n8[:])
	const maxOps = 1 << 32
	if count > maxOps {
		return nil, fmt.Errorf("trace: implausible op count %d", count)
	}
	t := &Trace{Name: string(name), Ops: make([]isa.MicroOp, count)}
	var rec [30]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at op %d: %w", i, err)
		}
		op := &t.Ops[i]
		op.Seq = i
		op.PC = binary.LittleEndian.Uint64(rec[0:])
		op.Class = isa.Class(rec[8])
		op.Dst = isa.Reg(rec[9])
		op.Src1 = isa.Reg(rec[10])
		op.Src2 = isa.Reg(rec[11])
		op.Addr = binary.LittleEndian.Uint64(rec[12:])
		op.Size = rec[20]
		op.Taken = rec[21]&1 != 0
		op.Target = binary.LittleEndian.Uint64(rec[22:])
	}
	return t, t.Validate()
}
