package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"casino/internal/isa"
)

func sampleTrace() *Trace {
	ops := []isa.MicroOp{
		{Seq: 0, PC: 0x100, Class: isa.IntALU, Dst: isa.IntReg(1), Src1: isa.IntReg(2), Src2: isa.RegNone},
		{Seq: 1, PC: 0x104, Class: isa.Load, Dst: isa.IntReg(3), Src1: isa.IntReg(1), Src2: isa.RegNone, Addr: 0x1000, Size: 8},
		{Seq: 2, PC: 0x108, Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(3), Src2: isa.IntReg(1), Addr: 0x2000, Size: 4},
		{Seq: 3, PC: 0x10c, Class: isa.FPMul, Dst: isa.FPReg(0), Src1: isa.FPReg(1), Src2: isa.FPReg(2)},
		{Seq: 4, PC: 0x110, Class: isa.Branch, Dst: isa.RegNone, Src1: isa.IntReg(1), Src2: isa.RegNone, Taken: true, Target: 0x100},
	}
	return &Trace{Name: "sample", Ops: ops}
}

func TestReaderWalk(t *testing.T) {
	tr := sampleTrace()
	r := tr.Reader()
	if r.Done() {
		t.Fatal("fresh reader Done")
	}
	if op := r.Peek(0); op == nil || op.Seq != 0 {
		t.Fatalf("Peek(0) = %v", op)
	}
	if op := r.Peek(2); op == nil || op.Seq != 2 {
		t.Fatalf("Peek(2) = %v", op)
	}
	if op := r.Peek(-1); op != nil {
		t.Fatalf("Peek(-1) = %v, want nil", op)
	}
	var seqs []uint64
	for op := r.Next(); op != nil; op = r.Next() {
		seqs = append(seqs, op.Seq)
	}
	if len(seqs) != 5 || seqs[4] != 4 {
		t.Fatalf("walked %v", seqs)
	}
	if !r.Done() || r.Next() != nil {
		t.Error("exhausted reader should be Done and return nil")
	}
	r.Reset()
	if r.Pos() != 0 || r.Done() {
		t.Error("Reset did not rewind")
	}
	r.Advance(3)
	if r.Pos() != 3 {
		t.Errorf("Pos after Advance(3) = %d", r.Pos())
	}
	r.Advance(100)
	if r.Pos() != 5 {
		t.Errorf("Advance should clamp, Pos = %d", r.Pos())
	}
	r.Seek(-3)
	if r.Pos() != 0 {
		t.Errorf("Seek(-3) should clamp to 0, Pos = %d", r.Pos())
	}
	r.Seek(2)
	if op := r.Peek(0); op == nil || op.Seq != 2 {
		t.Errorf("after Seek(2) Peek = %v", op)
	}
}

func TestStats(t *testing.T) {
	m := sampleTrace().Stats()
	if m.Total != 5 {
		t.Errorf("Total = %d", m.Total)
	}
	if m.LoadFrac() != 0.2 || m.StoreFrac() != 0.2 || m.BranchFrac() != 0.2 || m.FPFrac() != 0.2 {
		t.Errorf("fractions: load=%v store=%v br=%v fp=%v", m.LoadFrac(), m.StoreFrac(), m.BranchFrac(), m.FPFrac())
	}
	if m.Taken != 1 {
		t.Errorf("Taken = %d", m.Taken)
	}
	if m.MemBytes != 12 {
		t.Errorf("MemBytes = %d", m.MemBytes)
	}
	if m.DistinctPCs != 5 {
		t.Errorf("DistinctPCs = %d", m.DistinctPCs)
	}
	if s := m.String(); !strings.Contains(s, "ops=5") {
		t.Errorf("Mix.String() = %q", s)
	}
}

func TestValidate(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := sampleTrace()
	bad.Ops[2].Seq = 7
	if err := bad.Validate(); err == nil {
		t.Error("bad Seq accepted")
	}
	bad = sampleTrace()
	bad.Ops[1].Size = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-size load accepted")
	}
	bad = sampleTrace()
	bad.Ops[0].Dst = isa.Reg(200)
	if err := bad.Validate(); err == nil {
		t.Error("bad register accepted")
	}
	bad = sampleTrace()
	bad.Ops[0].Class = isa.NumClasses
	if err := bad.Validate(); err == nil {
		t.Error("bad class accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != tr.Name || len(got.Ops) != len(tr.Ops) {
		t.Fatalf("round trip mismatch: name=%q n=%d", got.Name, len(got.Ops))
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Errorf("op %d: got %+v want %+v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated trace accepted")
	}
	// Corrupt the version field.
	raw2 := append([]byte(nil), raw...)
	raw2[4] = 0xFF
	if _, err := Read(bytes.NewReader(raw2)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(pc, addr, target uint64, class, dst, s1, s2, size uint8, taken bool) bool {
		op := isa.MicroOp{
			Seq:    0,
			PC:     pc,
			Class:  isa.Class(class % uint8(isa.NumClasses)),
			Dst:    isa.Reg(dst % isa.NumArchRegs),
			Src1:   isa.Reg(s1 % isa.NumArchRegs),
			Src2:   isa.Reg(s2 % isa.NumArchRegs),
			Addr:   addr,
			Size:   size%16 + 1,
			Taken:  taken,
			Target: target,
		}
		tr := &Trace{Name: "p", Ops: []isa.MicroOp{op}}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.Ops[0] == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
