// Package trace holds dynamic micro-op traces: the container, a replayable
// sequential reader used by core front ends, a compact binary codec, and
// mix statistics.
package trace

import (
	"fmt"
	"sync"

	"casino/internal/isa"
)

// Trace is an immutable dynamic instruction stream.
//
// Read-only contract: a Trace may be shared by any number of concurrently
// running cores (the sim package caches and reuses generated traces across
// an entire experiment matrix). After construction, nothing may write to
// Ops or hand out mutable access to it — cores receive ops as *isa.MicroOp
// only to avoid copies, never to modify them. Fingerprint captures the
// contents so the harness can verify the contract after a run.
type Trace struct {
	Name string
	Ops  []isa.MicroOp

	fpOnce sync.Once
	fp     uint64
}

// Fingerprint returns the trace's content hash, computing it on first use
// and memoizing it — a Trace is immutable after construction, so the hash
// is a stable identity (manifest builders call this once per figure). Code
// that wants to *verify* immutability must use Refingerprint, which always
// rehashes the ops.
func (t *Trace) Fingerprint() uint64 {
	t.fpOnce.Do(func() { t.fp = t.Refingerprint() })
	return t.fp
}

// Refingerprint computes an FNV-1a hash over every architecturally relevant
// field of every op, unconditionally. Two traces with equal fingerprints
// replay identically; a changed fingerprint after a run means a core
// violated the read-only contract.
func (t *Trace) Refingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	for i := range t.Ops {
		op := &t.Ops[i]
		mix(op.Seq)
		mix(op.PC)
		mix(op.Addr)
		mix(op.Target)
		b := uint64(op.Class) | uint64(op.Dst)<<8 | uint64(op.Src1)<<16 | uint64(op.Src2)<<24 |
			uint64(op.Size)<<32
		if op.Taken {
			b |= 1 << 40
		}
		mix(b)
	}
	return h
}

// Len returns the number of dynamic micro-ops.
func (t *Trace) Len() int { return len(t.Ops) }

// Reader returns a fresh sequential reader positioned at the first op.
func (t *Trace) Reader() *Reader { return &Reader{t: t} }

// Reader walks a trace in program order. Core front ends call Peek to see
// the next op and Advance to consume it; a branch mispredict does not move
// the reader (wrong-path work is modelled as fetch bubbles).
type Reader struct {
	t   *Trace
	pos int
}

// Peek returns the op at offset i from the cursor without consuming it,
// or nil if the trace is exhausted at that offset.
func (r *Reader) Peek(i int) *isa.MicroOp {
	p := r.pos + i
	if p < 0 || p >= len(r.t.Ops) {
		return nil
	}
	return &r.t.Ops[p]
}

// Next consumes and returns the next op, or nil at end of trace.
func (r *Reader) Next() *isa.MicroOp {
	if r.pos >= len(r.t.Ops) {
		return nil
	}
	op := &r.t.Ops[r.pos]
	r.pos++
	return op
}

// Advance consumes n ops (clamped at end of trace).
func (r *Reader) Advance(n int) {
	r.pos += n
	if r.pos > len(r.t.Ops) {
		r.pos = len(r.t.Ops)
	}
}

// Pos returns the cursor position (number of ops consumed).
func (r *Reader) Pos() int { return r.pos }

// Done reports whether the trace is exhausted.
func (r *Reader) Done() bool { return r.pos >= len(r.t.Ops) }

// Reset rewinds the reader to the start of the trace.
func (r *Reader) Reset() { r.pos = 0 }

// Seek positions the cursor at op index p (clamped to [0, Len]).
func (r *Reader) Seek(p int) {
	if p < 0 {
		p = 0
	}
	if p > len(r.t.Ops) {
		p = len(r.t.Ops)
	}
	r.pos = p
}

// Mix summarizes the composition of a trace.
type Mix struct {
	Total       uint64
	ByClass     [isa.NumClasses]uint64
	Branches    uint64
	Taken       uint64
	MemBytes    uint64
	DistinctPCs int
}

// LoadFrac returns the fraction of ops that are loads.
func (m *Mix) LoadFrac() float64 { return frac(m.ByClass[isa.Load], m.Total) }

// StoreFrac returns the fraction of ops that are stores.
func (m *Mix) StoreFrac() float64 { return frac(m.ByClass[isa.Store], m.Total) }

// BranchFrac returns the fraction of ops that are branches.
func (m *Mix) BranchFrac() float64 { return frac(m.Branches, m.Total) }

// FPFrac returns the fraction of ops that are floating point.
func (m *Mix) FPFrac() float64 {
	fp := m.ByClass[isa.FPAdd] + m.ByClass[isa.FPMul] + m.ByClass[isa.FPDiv]
	return frac(fp, m.Total)
}

func frac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func (m *Mix) String() string {
	return fmt.Sprintf("ops=%d load=%.1f%% store=%.1f%% branch=%.1f%% fp=%.1f%% pcs=%d",
		m.Total, 100*m.LoadFrac(), 100*m.StoreFrac(), 100*m.BranchFrac(), 100*m.FPFrac(), m.DistinctPCs)
}

// Stats computes the mix of the trace.
func (t *Trace) Stats() Mix {
	var m Mix
	pcs := make(map[uint64]struct{})
	for i := range t.Ops {
		op := &t.Ops[i]
		m.Total++
		m.ByClass[op.Class]++
		if op.Class == isa.Branch {
			m.Branches++
			if op.Taken {
				m.Taken++
			}
		}
		if op.Class.IsMem() {
			m.MemBytes += uint64(op.Size)
		}
		pcs[op.PC] = struct{}{}
	}
	m.DistinctPCs = len(pcs)
	return m
}

// Validate checks trace invariants: sequence numbers are consecutive from
// 0, memory ops have non-zero size, branches have targets, and register
// operands are in range. It returns the first violation found.
func (t *Trace) Validate() error {
	for i := range t.Ops {
		op := &t.Ops[i]
		if op.Seq != uint64(i) {
			return fmt.Errorf("trace %q: op %d has Seq %d", t.Name, i, op.Seq)
		}
		if op.Class >= isa.NumClasses {
			return fmt.Errorf("trace %q: op %d has bad class %d", t.Name, i, op.Class)
		}
		if op.Class.IsMem() && op.Size == 0 {
			return fmt.Errorf("trace %q: op %d is a %s with zero size", t.Name, i, op.Class)
		}
		for _, r := range [...]isa.Reg{op.Dst, op.Src1, op.Src2} {
			if r != isa.RegNone && !r.Valid() {
				return fmt.Errorf("trace %q: op %d has bad register %d", t.Name, i, r)
			}
		}
	}
	return nil
}
