package telemetry

import (
	"strings"
	"testing"
)

func TestLintAccepts(t *testing.T) {
	const good = `# arbitrary comment
# HELP a_total Things.
# TYPE a_total counter
a_total 5
# TYPE b gauge
b{x="1"} 2.5
b{x="2"} +Inf
# TYPE lat summary
lat{quantile="0.5"} 3
lat_sum 12.5
lat_count 4
# TYPE sz histogram
sz_bucket{le="10"} 1
sz_bucket{le="+Inf"} 2
sz_sum 11
sz_count 2
c_ts_total 1 1700000000000
`
	src := "# TYPE c_ts_total counter\n" + good
	n, err := Lint(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Lint rejected valid exposition: %v", err)
	}
	if n != 11 {
		t.Errorf("series = %d, want 11", n)
	}
}

func TestLintRejects(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no TYPE", "a_total 1\n", "no preceding # TYPE"},
		{"bad type keyword", "# TYPE a woble\na 1\n", "unknown metric type"},
		{"duplicate TYPE", "# TYPE a gauge\n# TYPE a gauge\na 1\n", "duplicate TYPE"},
		{"duplicate HELP", "# HELP a x\n# HELP a y\n# TYPE a gauge\na 1\n", "duplicate HELP"},
		{"TYPE after sample", "# TYPE a gauge\na 1\n# TYPE b gauge\nb 1\n# TYPE a gauge\n", "duplicate TYPE"},
		{"bad metric name", "# TYPE a gauge\n9a 1\n", "invalid metric name"},
		{"bad label name", "# TYPE a gauge\na{9x=\"1\"} 1\n", "invalid label name"},
		{"reserved label name", "# TYPE a gauge\na{__x=\"1\"} 1\n", "invalid label name"},
		{"unquoted label value", "# TYPE a gauge\na{x=1} 1\n", "not quoted"},
		{"bad escape", "# TYPE a gauge\na{x=\"\\t\"} 1\n", `invalid escape`},
		{"unterminated value", "# TYPE a gauge\na{x=\"oops} 1\n", "unterminated"},
		{"bad value", "# TYPE a gauge\na zero\n", "bad sample value"},
		{"bad timestamp", "# TYPE a gauge\na 1 soon\n", "bad timestamp"},
		{"duplicate series", "# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n", "duplicate series"},
		{"duplicate series reordered labels", "# TYPE a gauge\na{x=\"1\",y=\"2\"} 1\na{y=\"2\",x=\"1\"} 2\n", "duplicate series"},
		{"summary stray sample", "# TYPE s summary\ns_other 1\n", "no preceding # TYPE"},
		{"summary quantile on sum", "# TYPE s summary\ns_sum{quantile=\"0.5\"} 1\n", "must not carry a quantile"},
		{"histogram bucket without le", "# TYPE h histogram\nh_bucket 1\n", "missing required le"},
		{"gauge with reserved label", "# TYPE g gauge\ng{le=\"1\"} 1\n", "reserved quantile/le"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Lint(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("Lint accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestLintReportsEverything: independent violations are all reported,
// each with its line number.
func TestLintReportsEverything(t *testing.T) {
	src := "# TYPE a gauge\na zero\nb 1\n"
	_, err := Lint(strings.NewReader(src))
	if err == nil {
		t.Fatal("expected errors")
	}
	for _, want := range []string{"line 2", "bad sample value", "line 3", "no preceding # TYPE"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
}
