package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Lint strictly checks a Prometheus text exposition stream against the
// 0.0.4 grammar and returns the number of distinct series it saw. It is
// the in-repo scrape gate: CI curls casino-server's /metrics and feeds
// the body through `casino-bench promlint`. Beyond the bare grammar it
// enforces the conventions the registry emits (and that scrapers rely
// on):
//
//   - every sample belongs to a family declared by a preceding # TYPE
//     line, with at most one TYPE and one HELP per family;
//   - summary families may only emit <name>{quantile=...}, <name>_sum,
//     <name>_count; histograms <name>_bucket/_sum/_count; scalar kinds
//     exactly <name>;
//   - metric and label names match the grammar, label values use only
//     the \\, \", \n escapes, values parse as Go floats (+Inf/-Inf/NaN
//     included), optional timestamps parse as int64;
//   - no series (name plus canonical label set) appears twice.
//
// All violations are reported, each prefixed with its 1-based line
// number.
func Lint(r io.Reader) (series int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var errs []error
	fail := func(line int, format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	typed := map[string]string{}   // family name -> TYPE
	helped := map[string]bool{}    // family name -> HELP seen
	seen := map[string]bool{}      // name + canonical labels -> sample seen
	sawSample := map[string]bool{} // family name -> any sample seen
	n := 0
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 2 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !ValidMetricName(fields[2]) {
					fail(line, "malformed HELP line %q", text)
					continue
				}
				if helped[fields[2]] {
					fail(line, "duplicate HELP for %s", fields[2])
				}
				helped[fields[2]] = true
			case "TYPE":
				if len(fields) != 4 || !ValidMetricName(fields[2]) {
					fail(line, "malformed TYPE line %q", text)
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					fail(line, "unknown metric type %q for %s", fields[3], fields[2])
					continue
				}
				if _, dup := typed[fields[2]]; dup {
					fail(line, "duplicate TYPE for %s", fields[2])
					continue
				}
				if sawSample[fields[2]] {
					fail(line, "TYPE for %s after its samples", fields[2])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, rest, perr := parseSample(text)
		if perr != nil {
			fail(line, "%v", perr)
			continue
		}
		famName, famType, ok := familyOf(name, labels, typed)
		if !ok {
			fail(line, "sample %s has no preceding # TYPE declaration", name)
		} else {
			sawSample[famName] = true
			checkFamilyShape(name, famName, famType, labels, func(format string, args ...interface{}) {
				fail(line, format, args...)
			})
		}
		key := name + canonicalLabels(labels)
		if seen[key] {
			fail(line, "duplicate series %s%s", name, canonicalLabels(labels))
		}
		seen[key] = true
		n++
		if verr := checkValue(rest); verr != nil {
			fail(line, "%v", verr)
		}
	}
	if serr := sc.Err(); serr != nil {
		errs = append(errs, serr)
	}
	return n, errors.Join(errs...)
}

// familyOf resolves which declared family a sample name belongs to,
// peeling the summary/histogram suffixes.
func familyOf(name string, labels []Label, typed map[string]string) (string, string, bool) {
	if t, ok := typed[name]; ok {
		return name, t, true
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := typed[base]; ok && (t == "summary" || t == "histogram") {
			return base, t, true
		}
	}
	_ = labels
	return "", "", false
}

// checkFamilyShape enforces which sample names and labels a family of a
// given type may emit.
func checkFamilyShape(name, famName, famType string, labels []Label, fail func(string, ...interface{})) {
	hasLabel := func(k string) bool {
		for _, l := range labels {
			if l.Name == k {
				return true
			}
		}
		return false
	}
	switch famType {
	case "summary":
		switch name {
		case famName: // quantile series
		case famName + "_sum", famName + "_count":
			if hasLabel("quantile") {
				fail("%s must not carry a quantile label", name)
			}
		default:
			fail("sample %s is not a valid summary series of %s", name, famName)
		}
	case "histogram":
		switch name {
		case famName + "_bucket":
			if !hasLabel("le") {
				fail("%s missing required le label", name)
			}
		case famName, famName + "_sum", famName + "_count":
		default:
			fail("sample %s is not a valid histogram series of %s", name, famName)
		}
	default:
		if name != famName {
			fail("sample %s does not match its %s family %s", name, famType, famName)
		}
		if hasLabel("quantile") || hasLabel("le") {
			fail("%s family %s must not use reserved quantile/le labels", famType, famName)
		}
	}
}

// parseSample splits a sample line into name, labels and the value(+ts)
// remainder, validating the label grammar and escapes.
func parseSample(text string) (string, []Label, string, error) {
	i := 0
	for i < len(text) && text[i] != '{' && text[i] != ' ' {
		i++
	}
	name := text[:i]
	if !ValidMetricName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	var labels []Label
	if i < len(text) && text[i] == '{' {
		i++ // consume '{'
		for {
			for i < len(text) && text[i] == ',' {
				i++
			}
			if i < len(text) && text[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(text) && text[j] != '=' {
				j++
			}
			if j >= len(text) {
				return "", nil, "", fmt.Errorf("unterminated label block")
			}
			lname := text[i:j]
			if !ValidLabelName(lname) {
				return "", nil, "", fmt.Errorf("invalid label name %q", lname)
			}
			if j+1 >= len(text) || text[j+1] != '"' {
				return "", nil, "", fmt.Errorf("label %s value not quoted", lname)
			}
			val, next, err := scanQuoted(text, j+1)
			if err != nil {
				return "", nil, "", fmt.Errorf("label %s: %w", lname, err)
			}
			labels = append(labels, Label{Name: lname, Value: val})
			i = next
			if i >= len(text) || (text[i] != ',' && text[i] != '}') {
				return "", nil, "", fmt.Errorf("garbage after label %s value", lname)
			}
		}
	}
	if i >= len(text) || text[i] != ' ' {
		return "", nil, "", fmt.Errorf("missing value separator after %q", name)
	}
	return name, labels, text[i+1:], nil
}

// scanQuoted consumes a double-quoted label value starting at text[open]
// (which must be '"'), allowing only the \\, \", \n escapes, and returns
// the decoded value plus the index just past the closing quote.
func scanQuoted(text string, open int) (string, int, error) {
	var b strings.Builder
	for i := open + 1; i < len(text); i++ {
		switch text[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(text) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch text[i+1] {
			case '\\', '"':
				b.WriteByte(text[i+1])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c", text[i+1])
			}
			i++
		default:
			b.WriteByte(text[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value")
}

// checkValue validates the "value [timestamp]" remainder of a sample.
func checkValue(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("expected value with optional timestamp, got %q", rest)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return nil
}

func canonicalLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ordered := append([]Label(nil), labels...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name < ordered[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ordered {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}
