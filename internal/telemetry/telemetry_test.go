package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestExpositionRendering pins the exact text for each instrument kind:
// HELP/TYPE pairs, family-then-series ordering, counter/gauge scalars,
// and the summary's quantile/_sum/_count expansion.
func TestExpositionRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("casino_cells_total", "Cells completed.").Add(7)
	r.Gauge("casino_queue_depth", "Jobs queued.").Set(2.5)
	s := r.Summary("casino_cell_ms", "Cell wall time.", 1000)
	s.Observe(10)
	s.Observe(20)
	s.Observe(30)

	got := render(t, r)
	want := `# HELP casino_cell_ms Cell wall time.
# TYPE casino_cell_ms summary
casino_cell_ms{quantile="0.5"} 20
casino_cell_ms{quantile="0.9"} 30
casino_cell_ms{quantile="0.99"} 30
casino_cell_ms_sum 60
casino_cell_ms_count 3
# HELP casino_cells_total Cells completed.
# TYPE casino_cells_total counter
casino_cells_total 7
# HELP casino_queue_depth Jobs queued.
# TYPE casino_queue_depth gauge
casino_queue_depth 2.5
`
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if n, err := Lint(strings.NewReader(got)); err != nil || n != 7 {
		t.Errorf("Lint(own output) = %d series, %v", n, err)
	}
}

// TestLabeledSeries: one family, several label sets, rendered sorted and
// shared under a single TYPE line; get-or-create returns the same
// instrument for an existing label set.
func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", "Requests by code.", Label{"code", "200"}).Add(3)
	r.Counter("http_requests_total", "Requests by code.", Label{"code", "404"}).Inc()
	r.Counter("http_requests_total", "Requests by code.", Label{"code", "200"}).Inc()

	got := render(t, r)
	want := `# HELP http_requests_total Requests by code.
# TYPE http_requests_total counter
http_requests_total{code="200"} 4
http_requests_total{code="404"} 1
`
	if got != want {
		t.Errorf("labeled exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestLabelEscaping: backslash, quote and newline in label values must
// round-trip through the escaper and satisfy the linter.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("weird", "Escapes.", Label{"path", `C:\dir "x"` + "\nnext"}).Set(1)
	got := render(t, r)
	if !strings.Contains(got, `weird{path="C:\\dir \"x\"\nnext"} 1`) {
		t.Errorf("escaping broken:\n%s", got)
	}
	if _, err := Lint(strings.NewReader(got)); err != nil {
		t.Errorf("Lint rejects escaped output: %v", err)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, bad := range []string{"", "9lead", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q accepted", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("reserved label name accepted")
		}
	}()
	NewRegistry().Counter("ok_total", "", Label{"__reserved", "v"})
}

// TestGoRuntimeFamily: the runtime collectors render, lint cleanly, and
// carry the expected series.
func TestGoRuntimeFamily(t *testing.T) {
	r := NewRegistry()
	r.RegisterGoRuntime()
	got := render(t, r)
	for _, want := range []string{
		"go_goroutines ", "go_memstats_heap_alloc_bytes ",
		"go_memstats_alloc_bytes_total ", "go_gc_cycles_total ",
		`go_info{version="go`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("runtime exposition missing %q:\n%s", want, got)
		}
	}
	if _, err := Lint(strings.NewReader(got)); err != nil {
		t.Errorf("Lint(runtime family): %v", err)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "a_total 1") {
		t.Errorf("handler body: %s", rec.Body.String())
	}
}

// TestSummaryOverflow: observations beyond the bucket range clamp the
// quantiles to the range bound but keep _sum exact.
func TestSummaryOverflow(t *testing.T) {
	s := NewSummary(10)
	s.Observe(5)
	s.Observe(500)
	count, sum, _, _, p99 := s.snapshot()
	if count != 2 || sum != 505 {
		t.Errorf("count,sum = %d,%v", count, sum)
	}
	if p99 != 10 {
		t.Errorf("p99 = %v, want overflow bound 10", p99)
	}
}
