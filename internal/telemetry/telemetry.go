// Package telemetry is a dependency-free bridge from the repo's internal
// instrumentation (atomic counters, stats.Hist distributions, on-demand
// collector functions) to the Prometheus text exposition format, served
// by casino-server at GET /metrics.
//
// It deliberately reimplements the tiny subset of a metrics client the
// service needs rather than vendoring one: instruments are registered
// once at wiring time, scraped rarely, and rendered deterministically
// (families and series sorted by name, then label signature), so the
// whole surface is a few hundred lines that the in-repo linter (Lint)
// can hold to the format grammar in CI.
//
// Telemetry lives strictly outside the simulation result path: nothing
// here is ever published into a stats.Registry, run manifest, or golden
// figure, so scraping /metrics mid-sweep cannot perturb results (see
// TestTelemetryManifestUnperturbed in the dse package).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"casino/internal/stats"
)

// Label is one constant name="value" pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// Instrument kinds, matching the exposition TYPE keywords.
const (
	typeCounter = "counter"
	typeGauge   = "gauge"
	typeSummary = "summary"
)

// Counter is a monotonically increasing value. Safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous value that may go up or down. Safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Summary is a mutex-guarded distribution rendered as a Prometheus
// summary: p50/p90/p99 quantile series plus _sum and _count. It wraps
// stats.Hist — the same histogram the simulator uses — so service-side
// latency distributions and model-side occupancy distributions share one
// implementation. Values above the bucket range land in the overflow
// bucket; quantiles there report the range bound (a lower bound).
type Summary struct {
	mu  sync.Mutex
	h   *stats.Hist
	sum float64
}

// NewSummary creates a summary bucketing integer values 0..max-1.
func NewSummary(max int) *Summary {
	return &Summary{h: stats.NewHist(max)}
}

// Observe records one observation. The histogram buckets the value
// rounded to the nearest integer; the _sum series keeps full precision.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.h.Add(int(v + 0.5))
	s.sum += v
	s.mu.Unlock()
}

// snapshot returns (count, sum, p50, p90, p99) atomically.
func (s *Summary) snapshot() (uint64, float64, float64, float64, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Count(), s.sum,
		float64(s.h.Quantile(0.50)), float64(s.h.Quantile(0.90)), float64(s.h.Quantile(0.99))
}

// series is one sample stream within a family: a constant label set plus
// exactly one value source.
type series struct {
	labels []Label
	sig    string // canonical sorted-label signature, for dedupe + ordering

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	summary *Summary
}

// family groups every series sharing a metric name. One TYPE/HELP pair is
// rendered per family.
type family struct {
	name, help, typ string
	series          []*series
	index           map[string]*series
}

// Registry holds the registered instrument families and renders them.
// Registration methods are get-or-create: registering the same name with
// the same label set returns the existing instrument, so dynamically
// labeled counters (per-status-code request counts) need no caller-side
// cache. Registering a name under a conflicting kind panics — that is a
// wiring bug, same policy as stats.Registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	onScrape []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// OnScrape registers fn to run at the start of every exposition, before
// any collector function is consulted. Used to batch expensive snapshots
// (one runtime.ReadMemStats feeding many series).
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

func (r *Registry) getSeries(name, help, typ string, labels []Label) *series {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !ValidLabelName(l.Name) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l.Name, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, index: map[string]*series{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, was %s", name, typ, f.typ))
	}
	sig := labelSignature(labels)
	if s, ok := f.index[sig]; ok {
		return s
	}
	s := &series{labels: append([]Label(nil), labels...), sig: sig}
	f.index[sig] = s
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getSeries(name, help, typeCounter, labels)
	if s.counter == nil && s.fn == nil {
		s.counter = &Counter{}
	}
	if s.counter == nil {
		panic(fmt.Sprintf("telemetry: series %q%s is a collector function, not a Counter", name, labelSignature(labels)))
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getSeries(name, help, typeGauge, labels)
	if s.gauge == nil && s.fn == nil {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("telemetry: series %q%s is a collector function, not a Gauge", name, labelSignature(labels)))
	}
	return s.gauge
}

// CounterFunc registers a counter series whose value is collected by fn
// at scrape time — the bridge for counters that already live elsewhere
// (result-cache hit totals, engine cell counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.getSeries(name, help, typeCounter, labels).fn = fn
}

// GaugeFunc registers a gauge series collected by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.getSeries(name, help, typeGauge, labels).fn = fn
}

// Summary creates and registers a new summary for name+labels.
func (r *Registry) Summary(name, help string, max int, labels ...Label) *Summary {
	s := NewSummary(max)
	r.RegisterSummary(name, help, s, labels...)
	return s
}

// RegisterSummary registers an existing Summary (one an engine already
// observes into) under name+labels.
func (r *Registry) RegisterSummary(name, help string, sum *Summary, labels ...Label) {
	r.getSeries(name, help, typeSummary, labels).summary = sum
}

// WritePrometheus renders every family in text exposition format 0.0.4:
// families sorted by name, series within a family sorted by label
// signature, one HELP/TYPE pair per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.onScrape {
		fn()
	}
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		ordered := append([]*series(nil), f.series...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].sig < ordered[j].sig })
		for _, s := range ordered {
			writeSeries(&b, f, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.summary != nil:
		count, sum, p50, p90, p99 := s.summary.snapshot()
		quant := func(q string, v float64) {
			writeSample(b, f.name, append(append([]Label(nil), s.labels...), Label{"quantile", q}), v)
		}
		quant("0.5", p50)
		quant("0.9", p90)
		quant("0.99", p99)
		writeSample(b, f.name+"_sum", s.labels, sum)
		writeSample(b, f.name+"_count", s.labels, float64(count))
	case s.fn != nil:
		writeSample(b, f.name, s.labels, s.fn())
	case s.counter != nil:
		writeSample(b, f.name, s.labels, float64(s.counter.Value()))
	case s.gauge != nil:
		writeSample(b, f.name, s.labels, s.gauge.Value())
	}
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// formatValue renders v the way Prometheus expects: shortest round-trip
// float, with the spec's spellings for the non-finite values.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelSignature canonicalizes a label set: sorted by name, rendered in
// exposition syntax. Empty label sets map to "".
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ordered := append([]Label(nil), labels...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name < ordered[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ordered {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Handler serves the registry as text/plain exposition format 0.0.4.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
	})
}

// ValidMetricName reports whether name matches the exposition grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ValidLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]* and
// is not reserved (double-underscore prefix).
func ValidLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
