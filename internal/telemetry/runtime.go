package telemetry

import "runtime"

// RegisterGoRuntime adds the Go runtime family to the registry:
// goroutine count, heap occupancy, allocation and GC totals, and a
// go_info series carrying the toolchain version as a label. One
// runtime.ReadMemStats snapshot per scrape feeds every memstats series
// (registered via OnScrape so the stop-the-world read happens once, not
// once per series).
func (r *Registry) RegisterGoRuntime() {
	var ms runtime.MemStats
	r.OnScrape(func() { runtime.ReadMemStats(&ms) })

	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(ms.HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(ms.HeapObjects) })
	r.CounterFunc("go_memstats_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		func() float64 { return float64(ms.TotalAlloc) })
	r.CounterFunc("go_gc_cycles_total", "Number of completed GC cycles.",
		func() float64 { return float64(ms.NumGC) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(ms.PauseTotalNs) / 1e9 })
	r.GaugeFunc("process_cpus", "Number of logical CPUs usable by the process.",
		func() float64 { return float64(runtime.NumCPU()) })
	r.Gauge("go_info", "Information about the Go environment.",
		Label{Name: "version", Value: runtime.Version()}).Set(1)
}
