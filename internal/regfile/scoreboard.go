package regfile

// Producer-push wakeup: instead of every scheduler entry polling its source
// pregs' readiness each cycle, a consumer registers once (WaitOn) on each
// source whose producer has not issued, and the producer's SetReadyAt pushes
// the completion to all registered waiters. A slot whose pending count hits
// zero is raised on a dense candidate bitmap (one bit per scheduler slot),
// so the select loop walks bits.TrailingZeros64 over ready words instead of
// visiting every window entry.
//
// Consumer slots are identified by a small integer the core chooses (the
// ROB ring index in the OoO core). Squash safety comes from a per-slot
// generation: ResetSlot bumps the generation, so waiter nodes registered by
// a squashed (or committed-and-replaced) occupant are ignored when their
// producer finally fires. Nodes left behind on a squashed producer's list
// are dropped when its preg is re-allocated.

// wakeNode is one entry in a preg's waiter list.
type wakeNode struct {
	next int32  // next node in the list, -1 = end; free-list link when free
	slot int32  // waiting consumer slot
	gen  uint32 // slot generation at registration time
}

// wakeup holds the per-File push-wakeup state; nil when disabled.
type wakeup struct {
	words   []uint64   // candidate bitmap, one bit per consumer slot
	pending []uint8    // per slot: source producers not yet issued
	gen     []uint32   // per slot: squash generation
	head    []int32    // per preg: waiter list head, -1 = empty
	nodes   []wakeNode // node pool
	free    int32      // free-list head, -1 = empty
}

// EnableWakeup activates producer-push wakeup for `slots` consumer slots.
// The node pool is pre-sized so steady-state registration never allocates.
func (f *File) EnableWakeup(slots int) {
	w := &wakeup{
		words:   make([]uint64, (slots+63)/64),
		pending: make([]uint8, slots),
		gen:     make([]uint32, slots),
		head:    make([]int32, f.nInt+f.nFP),
		nodes:   make([]wakeNode, 0, 4*slots),
		free:    -1,
	}
	for i := range w.head {
		w.head[i] = -1
	}
	f.wu = w
}

// WakeupEnabled reports whether EnableWakeup was called.
func (f *File) WakeupEnabled() bool { return f.wu != nil }

// WakeWords exposes the candidate bitmap for the select loop. A set bit
// means every source producer has issued (readiness time is known); the
// selector still confirms the times against the current cycle.
func (f *File) WakeWords() []uint64 { return f.wu.words }

// ResetSlot claims slot for a new occupant (dispatch) or invalidates it
// (squash): pending waiter registrations from the previous occupant are
// generation-dead from here on.
func (f *File) ResetSlot(slot int) {
	w := f.wu
	w.gen[slot]++
	w.pending[slot] = 0
	w.words[slot>>6] &^= uint64(1) << uint(slot&63)
}

// WaitOn registers slot as a waiter on p when p's producer has not issued
// yet. Sources that already have a known readiness time need no
// registration — the selector checks the time directly.
func (f *File) WaitOn(p PReg, slot int) {
	if p == PRegNone || f.readyAt[p] != notReady {
		return
	}
	w := f.wu
	id := w.alloc()
	w.nodes[id] = wakeNode{next: w.head[p], slot: int32(slot), gen: w.gen[slot]}
	w.head[p] = id
	w.pending[slot]++
}

// ArmSlot raises slot on the candidate bitmap when it waits on no one —
// call it once after the dispatch-time WaitOn registrations.
func (f *File) ArmSlot(slot int) {
	w := f.wu
	if w.pending[slot] == 0 {
		w.words[slot>>6] |= uint64(1) << uint(slot&63)
	}
}

// fireWaiters drains p's waiter list when its value's readiness time
// becomes known, raising every still-live waiter whose pending count hits
// zero. Nodes from squashed occupants fail the generation check.
func (w *wakeup) fireWaiters(p PReg) {
	for id := w.head[p]; id >= 0; {
		n := &w.nodes[id]
		if n.gen == w.gen[n.slot] {
			if w.pending[n.slot]--; w.pending[n.slot] == 0 {
				w.words[n.slot>>6] |= uint64(1) << uint(n.slot&63)
			}
		}
		next := n.next
		n.next = w.free
		w.free = id
		id = next
	}
	w.head[p] = -1
}

// dropWaiters frees p's waiter list without firing: called when p is
// re-allocated, at which point no live consumer can reference the previous
// value (in-order commit released it only after every older consumer
// retired; squash invalidated the rest by generation).
func (w *wakeup) dropWaiters(p PReg) {
	for id := w.head[p]; id >= 0; {
		next := w.nodes[id].next
		w.nodes[id].next = w.free
		w.free = id
		id = next
	}
	w.head[p] = -1
}

func (w *wakeup) alloc() int32 {
	if w.free >= 0 {
		id := w.free
		w.free = w.nodes[id].next
		return id
	}
	w.nodes = append(w.nodes, wakeNode{})
	return int32(len(w.nodes) - 1)
}
