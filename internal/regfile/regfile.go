// Package regfile implements register renaming state shared by the OoO and
// CASINO cores: the register alias table (RAT), free lists, the physical
// register file scoreboard (readiness plus CASINO's ProducerCount field),
// and the recovery log used for fast mis-speculation repair.
package regfile

import (
	"fmt"

	"casino/internal/isa"
)

// PReg is a physical register identifier. Integer and FP physical
// registers live in disjoint index ranges of one scoreboard: integer pregs
// are [0, nInt), FP pregs are [nInt, nInt+nFP).
type PReg uint16

// PRegNone marks an absent physical register.
const PRegNone PReg = 0xFFFF

// File is the renaming state: RAT + free lists + PRF scoreboard.
type File struct {
	nInt, nFP int
	rat       [isa.NumArchRegs]PReg
	freeInt   []PReg
	freeFP    []PReg
	readyAt   []int64
	producers []uint8 // CASINO ProducerCount per preg
	maxProd   uint8
	wu        *wakeup // producer-push wakeup state (nil = disabled)

	// Activity counters for the energy model.
	RATReads  uint64
	RATWrites uint64
	SBReads   uint64 // scoreboard readiness checks
	SBWrites  uint64
	Allocs    uint64 // free-list pops (Fig. 7's allocation counts)
	Frees     uint64
}

// New creates a file with nInt integer and nFP floating-point physical
// registers. Architectural registers are initially identity-mapped; the
// remainder populate the free lists. maxProducers bounds ProducerCount
// (the paper uses a 2-bit field: up to 3 pending producers).
func New(nInt, nFP int, maxProducers uint8) *File {
	if nInt < isa.NumIntRegs || nFP < isa.NumFPRegs {
		panic(fmt.Sprintf("regfile: need at least %d INT and %d FP physical registers, got %d/%d",
			isa.NumIntRegs, isa.NumFPRegs, nInt, nFP))
	}
	f := &File{
		nInt: nInt, nFP: nFP,
		readyAt:   make([]int64, nInt+nFP),
		producers: make([]uint8, nInt+nFP),
		maxProd:   maxProducers,
	}
	for i := 0; i < isa.NumIntRegs; i++ {
		f.rat[isa.IntReg(i)] = PReg(i)
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		f.rat[isa.FPReg(i)] = PReg(nInt + i)
	}
	for p := isa.NumIntRegs; p < nInt; p++ {
		f.freeInt = append(f.freeInt, PReg(p))
	}
	for p := nInt + isa.NumFPRegs; p < nInt+nFP; p++ {
		f.freeFP = append(f.freeFP, PReg(p))
	}
	return f
}

// NumPhys returns the total number of physical registers.
func (f *File) NumPhys() int { return f.nInt + f.nFP }

// IsFP reports whether p is a floating-point physical register.
func (f *File) IsFP(p PReg) bool { return int(p) >= f.nInt }

// Lookup reads the RAT mapping for architectural register a.
func (f *File) Lookup(a isa.Reg) PReg {
	if !a.Valid() {
		return PRegNone
	}
	f.RATReads++
	return f.rat[a]
}

// FreeCount returns the number of free registers in the pool for fp.
func (f *File) FreeCount(fp bool) int {
	if fp {
		return len(f.freeFP)
	}
	return len(f.freeInt)
}

// CanAllocate reports whether a free register exists for a's pool.
func (f *File) CanAllocate(a isa.Reg) bool {
	return f.FreeCount(a.IsFP()) > 0
}

// Allocate pops a free physical register for architectural register a,
// updates the RAT, and returns the new preg together with the previous
// mapping (for the recovery log and commit-time release). It returns
// ok=false (and leaves state untouched) when the pool is empty.
func (f *File) Allocate(a isa.Reg) (newP, oldP PReg, ok bool) {
	if !a.Valid() {
		panic("regfile: Allocate of invalid register")
	}
	pool := &f.freeInt
	if a.IsFP() {
		pool = &f.freeFP
	}
	if len(*pool) == 0 {
		return PRegNone, PRegNone, false
	}
	newP = (*pool)[len(*pool)-1]
	*pool = (*pool)[:len(*pool)-1]
	oldP = f.rat[a]
	f.rat[a] = newP
	f.RATWrites++
	f.Allocs++
	f.readyAt[newP] = notReady
	f.producers[newP] = 0
	if f.wu != nil {
		f.wu.dropWaiters(newP)
	}
	return newP, oldP, true
}

// SetMapping restores the RAT entry for a to p (recovery).
func (f *File) SetMapping(a isa.Reg, p PReg) {
	f.rat[a] = p
	f.RATWrites++
}

// Release returns p to its free list.
func (f *File) Release(p PReg) {
	if p == PRegNone {
		return
	}
	f.Frees++
	if f.IsFP(p) {
		f.freeFP = append(f.freeFP, p)
	} else {
		f.freeInt = append(f.freeInt, p)
	}
}

const notReady = int64(1) << 62

// NotReady is the ReadyAt sentinel for a physical register whose producer
// has not issued yet. Fast-forward probes compare against it to tell "ready
// at a known future cycle" from "blocked on another instruction's issue".
const NotReady = notReady

// ReadyAt returns the cycle at which p's value is available (a very large
// sentinel while its producer has not issued).
func (f *File) ReadyAt(p PReg) int64 {
	if p == PRegNone {
		return 0
	}
	f.SBReads++
	return f.readyAt[p]
}

// PeekMapping reads the RAT entry for a without counting a RAT access.
// Fast-forward probes use it so probing a stalled core never perturbs the
// activity counts the energy model bills.
func (f *File) PeekMapping(a isa.Reg) PReg {
	if !a.Valid() {
		return PRegNone
	}
	return f.rat[a]
}

// PeekReadyAt is the side-effect-free variant of ReadyAt (no scoreboard
// access count), for fast-forward probes.
func (f *File) PeekReadyAt(p PReg) int64 {
	if p == PRegNone {
		return 0
	}
	return f.readyAt[p]
}

// IsReady reports whether p's value is available at cycle now.
func (f *File) IsReady(p PReg, now int64) bool { return f.ReadyAt(p) <= now }

// SetReadyAt records that p's value becomes available at cycle c. When
// push-wakeup is enabled, the not-ready→known transition fires p's
// registered waiters.
func (f *File) SetReadyAt(p PReg, c int64) {
	if p == PRegNone {
		return
	}
	f.SBWrites++
	old := f.readyAt[p]
	f.readyAt[p] = c
	if f.wu != nil && old == notReady && c != notReady {
		f.wu.fireWaiters(p)
	}
}

// MarkNotReady marks p as pending (producer in flight).
func (f *File) MarkNotReady(p PReg) { f.SetReadyAt(p, notReady) }

// --- ProducerCount (CASINO conditional renaming, §III-C3) ---

// Producers returns the pending-producer count of p.
func (f *File) Producers(p PReg) uint8 { return f.producers[p] }

// CanAddProducer reports whether another in-IQ instruction may share p
// (2-bit field: at most maxProducers pending writers).
func (f *File) CanAddProducer(p PReg) bool { return f.producers[p] < f.maxProd }

// AddProducer counts an instruction steered to the IQ that will write p.
func (f *File) AddProducer(p PReg) {
	if f.producers[p] >= f.maxProd {
		panic("regfile: ProducerCount overflow — call CanAddProducer first")
	}
	f.producers[p]++
	f.SBWrites++
}

// RemoveProducer counts the issue of one of p's pending writers.
func (f *File) RemoveProducer(p PReg) {
	if f.producers[p] == 0 {
		panic("regfile: ProducerCount underflow")
	}
	f.producers[p]--
	f.SBWrites++
}

// InUse returns the number of allocated (non-free) registers in the pool.
func (f *File) InUse(fp bool) int {
	if fp {
		return f.nFP - len(f.freeFP)
	}
	return f.nInt - len(f.freeInt)
}

// RecoveryEntry records one speculative rename for undo.
type RecoveryEntry struct {
	Seq  uint64
	Arch isa.Reg
	Old  PReg
	New  PReg
}

// RecoveryLog is the small mapping log of §III-C5. Because CASINO renames
// conditionally, it holds only the speculatively issued instructions'
// mappings, so recovery completes in a few cycles. Live entries occupy
// entries[head:]; Commit advances head instead of shifting the slice (it
// runs once per committed instruction), compacting only when the dead
// prefix dominates.
type RecoveryLog struct {
	entries []RecoveryEntry
	head    int
	Pushes  uint64
}

// Push records a speculative rename.
func (l *RecoveryLog) Push(e RecoveryEntry) {
	l.entries = append(l.entries, e)
	l.Pushes++
}

// Commit discards entries older than seq (their instructions committed).
func (l *RecoveryLog) Commit(seq uint64) {
	for l.head < len(l.entries) && l.entries[l.head].Seq <= seq {
		l.head++
	}
	switch {
	case l.head == len(l.entries):
		l.entries = l.entries[:0]
		l.head = 0
	case l.head > 64 && l.head*2 >= len(l.entries):
		n := copy(l.entries, l.entries[l.head:])
		l.entries = l.entries[:n]
		l.head = 0
	}
}

// Unwind undoes renames with Seq >= seq, youngest first, restoring the RAT
// and freeing the speculatively allocated registers. It returns the number
// of entries undone (the recovery latency in rename-ports worth of work).
func (l *RecoveryLog) Unwind(f *File, seq uint64) int {
	n := 0
	for len(l.entries) > l.head {
		e := l.entries[len(l.entries)-1]
		if e.Seq < seq {
			break
		}
		f.SetMapping(e.Arch, e.Old)
		f.Release(e.New)
		l.entries = l.entries[:len(l.entries)-1]
		n++
	}
	return n
}

// Len returns the number of live log entries.
func (l *RecoveryLog) Len() int { return len(l.entries) - l.head }
