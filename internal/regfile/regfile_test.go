package regfile

import (
	"testing"

	"casino/internal/isa"
)

func TestNewIdentityMapping(t *testing.T) {
	f := New(32, 14, 3)
	if f.NumPhys() != 46 {
		t.Fatalf("NumPhys = %d", f.NumPhys())
	}
	if f.Lookup(isa.IntReg(5)) != 5 {
		t.Error("int identity mapping broken")
	}
	if f.Lookup(isa.FPReg(2)) != PReg(34) {
		t.Errorf("fp mapping = %d, want 34", f.Lookup(isa.FPReg(2)))
	}
	if f.Lookup(isa.RegNone) != PRegNone {
		t.Error("RegNone lookup")
	}
	if f.FreeCount(false) != 32-isa.NumIntRegs {
		t.Errorf("free INT = %d", f.FreeCount(false))
	}
	if f.FreeCount(true) != 14-isa.NumFPRegs {
		t.Errorf("free FP = %d", f.FreeCount(true))
	}
}

func TestNewPanicsOnTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undersized PRF accepted")
		}
	}()
	New(8, 14, 3)
}

func TestAllocateReleaseRoundTrip(t *testing.T) {
	f := New(18, 9, 3)
	a := isa.IntReg(3)
	old := f.Lookup(a)
	newP, oldP, ok := f.Allocate(a)
	if !ok || oldP != old || newP == oldP {
		t.Fatalf("Allocate = %d,%d,%v", newP, oldP, ok)
	}
	if f.Lookup(a) != newP {
		t.Error("RAT not updated")
	}
	if f.IsReady(newP, 0) {
		t.Error("fresh allocation already ready")
	}
	// Exhaust the INT pool (2 free at start, one used).
	_, _, ok = f.Allocate(isa.IntReg(4))
	if !ok {
		t.Fatal("second allocate failed")
	}
	if _, _, ok := f.Allocate(isa.IntReg(5)); ok {
		t.Error("allocation from empty pool succeeded")
	}
	if f.CanAllocate(isa.IntReg(5)) {
		t.Error("CanAllocate on empty pool")
	}
	f.Release(oldP)
	if !f.CanAllocate(isa.IntReg(5)) {
		t.Error("release did not refill pool")
	}
	if f.InUse(false) != 17 {
		t.Errorf("InUse = %d", f.InUse(false))
	}
}

func TestFPPoolSeparate(t *testing.T) {
	f := New(32, 9, 3)
	if !f.CanAllocate(isa.FPReg(0)) {
		t.Fatal("one FP register should be free")
	}
	p, _, ok := f.Allocate(isa.FPReg(0))
	if !ok || !f.IsFP(p) {
		t.Fatalf("FP allocate = %d (fp=%v)", p, f.IsFP(p))
	}
	if f.CanAllocate(isa.FPReg(1)) {
		t.Error("FP pool should now be empty")
	}
	if !f.CanAllocate(isa.IntReg(0)) {
		t.Error("INT pool drained by FP allocation")
	}
}

func TestReadiness(t *testing.T) {
	f := New(32, 14, 3)
	p := PReg(20)
	f.SetReadyAt(p, 100)
	if f.IsReady(p, 99) || !f.IsReady(p, 100) {
		t.Error("readiness threshold wrong")
	}
	f.MarkNotReady(p)
	if f.IsReady(p, 1<<40) {
		t.Error("MarkNotReady ineffective")
	}
	if f.ReadyAt(PRegNone) != 0 {
		t.Error("PRegNone should always be ready")
	}
}

func TestProducerCount(t *testing.T) {
	f := New(32, 14, 3)
	p := PReg(5)
	for i := 0; i < 3; i++ {
		if !f.CanAddProducer(p) {
			t.Fatalf("producer %d refused", i)
		}
		f.AddProducer(p)
	}
	if f.CanAddProducer(p) {
		t.Error("4th producer allowed with 2-bit count")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overflow not caught")
			}
		}()
		f.AddProducer(p)
	}()
	f.RemoveProducer(p)
	if f.Producers(p) != 2 {
		t.Errorf("Producers = %d", f.Producers(p))
	}
	f.RemoveProducer(p)
	f.RemoveProducer(p)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("underflow not caught")
			}
		}()
		f.RemoveProducer(p)
	}()
}

func TestRecoveryLogUnwind(t *testing.T) {
	f := New(20, 10, 3)
	var log RecoveryLog
	a1, a2 := isa.IntReg(1), isa.IntReg(2)
	n1, o1, _ := f.Allocate(a1)
	log.Push(RecoveryEntry{Seq: 10, Arch: a1, Old: o1, New: n1})
	n2, o2, _ := f.Allocate(a2)
	log.Push(RecoveryEntry{Seq: 20, Arch: a2, Old: o2, New: n2})
	freeBefore := f.FreeCount(false)

	// Unwind everything from seq 15 up: only seq 20 entry.
	undone := log.Unwind(f, 15)
	if undone != 1 {
		t.Fatalf("undone = %d", undone)
	}
	if f.Lookup(a2) != o2 {
		t.Error("RAT not restored for a2")
	}
	if f.Lookup(a1) != n1 {
		t.Error("a1 mapping should survive")
	}
	if f.FreeCount(false) != freeBefore+1 {
		t.Error("freed register not returned")
	}
	if log.Len() != 1 {
		t.Errorf("log len = %d", log.Len())
	}
}

func TestRecoveryLogCommit(t *testing.T) {
	var log RecoveryLog
	log.Push(RecoveryEntry{Seq: 10})
	log.Push(RecoveryEntry{Seq: 20})
	log.Push(RecoveryEntry{Seq: 30})
	log.Commit(20)
	if log.Len() != 1 {
		t.Fatalf("len after Commit = %d", log.Len())
	}
	f := New(32, 14, 3)
	if n := log.Unwind(f, 0); n != 1 {
		t.Errorf("unwound %d", n)
	}
}

func TestActivityCounters(t *testing.T) {
	f := New(32, 14, 3)
	f.Lookup(isa.IntReg(1))
	f.Allocate(isa.IntReg(1))
	f.ReadyAt(PReg(3))
	f.SetReadyAt(PReg(3), 5)
	if f.RATReads != 1 || f.RATWrites != 1 || f.Allocs != 1 {
		t.Errorf("RAT counters: r=%d w=%d a=%d", f.RATReads, f.RATWrites, f.Allocs)
	}
	if f.SBReads != 1 || f.SBWrites < 1 {
		t.Errorf("SB counters: r=%d w=%d", f.SBReads, f.SBWrites)
	}
}
