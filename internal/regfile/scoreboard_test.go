package regfile

import (
	"testing"

	"casino/internal/isa"
)

func wakeupFile(t testing.TB, slots int) *File {
	t.Helper()
	f := New(isa.NumIntRegs+16, isa.NumFPRegs+16, 3)
	f.EnableWakeup(slots)
	return f
}

func slotRaised(f *File, slot int) bool {
	return f.WakeWords()[slot>>6]&(uint64(1)<<uint(slot&63)) != 0
}

// TestWakeupFiresRegisteredWaiter covers the basic producer-push contract:
// a slot waiting on an unissued producer is raised on the candidate bitmap
// exactly when the producer's readiness time becomes known.
func TestWakeupFiresRegisteredWaiter(t *testing.T) {
	f := wakeupFile(t, 64)
	p, _, ok := f.Allocate(isa.IntReg(1))
	if !ok {
		t.Fatal("allocate failed")
	}
	const slot = 5
	f.ResetSlot(slot)
	f.WaitOn(p, slot)
	f.ArmSlot(slot)
	if slotRaised(f, slot) {
		t.Fatal("slot raised while its producer is still pending")
	}
	f.SetReadyAt(p, 42)
	if !slotRaised(f, slot) {
		t.Fatal("producer completion did not raise the waiting slot")
	}
}

// TestWakeupReadySourceNeedsNoRegistration: WaitOn on a preg whose readiness
// time is already known must not register (the selector checks the time
// directly), so ArmSlot raises the slot immediately.
func TestWakeupReadySourceNeedsNoRegistration(t *testing.T) {
	f := wakeupFile(t, 64)
	p := f.Lookup(isa.IntReg(2)) // architectural mapping: ready at 0
	const slot = 9
	f.ResetSlot(slot)
	f.WaitOn(p, slot)
	f.ArmSlot(slot)
	if !slotRaised(f, slot) {
		t.Fatal("slot with only ready sources was not raised at dispatch")
	}
}

// TestWakeupSquashedWaiterDoesNotFire is the squash-safety property: a
// waiter registered by a slot occupant that is later squashed (ResetSlot)
// must not raise the slot when the producer finally completes — the slot
// may already hold a different instruction with its own pending sources.
func TestWakeupSquashedWaiterDoesNotFire(t *testing.T) {
	f := wakeupFile(t, 64)
	p, _, ok := f.Allocate(isa.IntReg(1))
	if !ok {
		t.Fatal("allocate failed")
	}
	const slot = 17
	f.ResetSlot(slot)
	f.WaitOn(p, slot)

	// Flush: the slot's occupant is squashed, then the slot is reused by a
	// new instruction waiting on a different producer.
	f.ResetSlot(slot)
	q, _, ok := f.Allocate(isa.IntReg(3))
	if !ok {
		t.Fatal("allocate failed")
	}
	f.WaitOn(q, slot)
	f.ArmSlot(slot)

	// The squashed registration's producer completes: the stale node must
	// be generation-dead, leaving the new occupant still pending.
	f.SetReadyAt(p, 10)
	if slotRaised(f, slot) {
		t.Fatal("stale waiter from a squashed occupant raised the slot")
	}
	f.SetReadyAt(q, 12)
	if !slotRaised(f, slot) {
		t.Fatal("live waiter did not raise the slot after its producer completed")
	}
}

// TestWakeupReallocDropsStaleWaiters: waiter nodes left on a squashed
// producer's list are dropped — without firing — when the preg is
// re-allocated to a new instruction.
func TestWakeupReallocDropsStaleWaiters(t *testing.T) {
	f := wakeupFile(t, 64)
	p, oldP, ok := f.Allocate(isa.IntReg(1))
	if !ok {
		t.Fatal("allocate failed")
	}
	const slot = 3
	f.ResetSlot(slot)
	f.WaitOn(p, slot)

	// Squash both the consumer and the producer; the producer's preg goes
	// back to the free list with the waiter node still chained on it.
	f.ResetSlot(slot)
	f.SetMapping(isa.IntReg(1), oldP)
	f.Release(p)

	// Re-allocation claims the preg for an unrelated instruction: the stale
	// node must be freed without firing.
	p2, _, ok := f.Allocate(isa.IntReg(4))
	if !ok {
		t.Fatal("re-allocate failed")
	}
	if p2 != p {
		t.Fatalf("free list did not hand back the released preg (got %d want %d)", p2, p)
	}
	f.SetReadyAt(p2, 7)
	if slotRaised(f, slot) {
		t.Fatal("re-allocated producer fired a waiter from its previous life")
	}
}

// BenchmarkWakeup measures the steady-state register/fire/reuse cycle of
// the push-wakeup machinery; the node pool and free lists make it
// allocation-free, which CI gates at 0 allocs/op.
func BenchmarkWakeup(b *testing.B) {
	f := wakeupFile(b, 64)
	run := func(i int) {
		slot := i & 63
		f.ResetSlot(slot)
		newP, oldP, ok := f.Allocate(isa.IntReg(1 + i&7))
		if !ok {
			b.Fatal("free list exhausted")
		}
		f.WaitOn(newP, slot)
		f.ArmSlot(slot)
		f.SetReadyAt(newP, int64(i))
		f.Release(oldP)
	}
	for i := 0; i < 64; i++ {
		run(i) // warm the node pool
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(i)
	}
}
