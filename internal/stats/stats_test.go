package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Errorf("Ratio(6,3) = %v, want 2", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio(1,0) = %v, want 0", got)
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Geomean(1,4) = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil) != 0")
	}
	// Non-positive entries are ignored.
	got = Geomean([]float64{0, -3, 8, 2})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("Geomean with non-positive = %v, want 4", got)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := Geomean(xs)
		scaled := []float64{xs[0] * 2, xs[1] * 2, xs[2] * 2}
		return math.Abs(Geomean(scaled)-2*g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestHist(t *testing.T) {
	h := NewHist(4)
	for _, v := range []int{0, 1, 1, 2, 9, -5} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Bucket(1) != 2 {
		t.Errorf("Bucket(1) = %d, want 2", h.Bucket(1))
	}
	if h.Bucket(0) != 2 { // 0 and clamped -5
		t.Errorf("Bucket(0) = %d, want 2", h.Bucket(0))
	}
	if h.Overflow() != 1 {
		t.Errorf("Overflow = %d, want 1", h.Overflow())
	}
	wantMean := (0.0 + 1 + 1 + 2 + 9 + 0) / 6
	if math.Abs(h.Mean()-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	if f := h.Fraction(1); math.Abs(f-2.0/6) > 1e-12 {
		t.Errorf("Fraction(1) = %v", f)
	}
	if h.Bucket(-1) != 0 || h.Bucket(100) != 0 {
		t.Error("out-of-range Bucket should be 0")
	}
	// Sum pairs with Count for Prometheus summary exposition: overflow
	// observations keep their true value (9, not the bucket bound), and
	// negatives clamp to 0 exactly as Add records them.
	if want := 0.0 + 1 + 1 + 2 + 9 + 0; h.Sum() != want {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
	if got := h.Sum() / float64(h.Count()); math.Abs(got-h.Mean()) > 1e-12 {
		t.Errorf("Sum/Count = %v, Mean = %v; must agree", got, h.Mean())
	}
}

func TestHistEmpty(t *testing.T) {
	h := NewHist(0) // clamps to 1 bucket
	if h.Mean() != 0 || h.Fraction(0) != 0 || h.Count() != 0 {
		t.Error("empty hist should report zeros")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("app", "ipc")
	tb.AddRow("mcf", 0.51234)
	tb.AddRow("gcc", 1.25)
	s := tb.String()
	if !strings.Contains(s, "app") || !strings.Contains(s, "0.512") || !strings.Contains(s, "1.250") {
		t.Errorf("table output missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("got %d lines, want 4:\n%s", len(lines), s)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("app", "x")
	tb.AddRow("zeta", 1)
	tb.AddRow("alpha", 2)
	tb.SortRowsBy(0)
	s := tb.String()
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Errorf("rows not sorted:\n%s", s)
	}
	tb.SortRowsBy(99) // out of range: no-op, must not panic
}

// TestHistAddNEquivalence pins the weighted-sample contract: AddN(v, n) is
// observationally identical to calling Add(v) n times, across in-range,
// clamped-negative and overflow values. Fast-forwarded occupancy sampling
// relies on this equivalence for bit-identical results.
func TestHistAddNEquivalence(t *testing.T) {
	loop := NewHist(4)
	bulk := NewHist(4)
	cases := []struct {
		v int
		n uint64
	}{{0, 3}, {2, 5}, {-1, 2}, {7, 4}, {3, 1}, {2, 0}}
	for _, c := range cases {
		for i := uint64(0); i < c.n; i++ {
			loop.Add(c.v)
		}
		bulk.AddN(c.v, c.n)
	}
	if loop.Count() != bulk.Count() {
		t.Errorf("count: loop %d bulk %d", loop.Count(), bulk.Count())
	}
	if loop.Mean() != bulk.Mean() {
		t.Errorf("mean: loop %v bulk %v", loop.Mean(), bulk.Mean())
	}
	for v := 0; v < 4; v++ {
		if loop.Bucket(v) != bulk.Bucket(v) {
			t.Errorf("bucket %d: loop %d bulk %d", v, loop.Bucket(v), bulk.Bucket(v))
		}
	}
	if loop.Overflow() != bulk.Overflow() {
		t.Errorf("overflow: loop %d bulk %d", loop.Overflow(), bulk.Overflow())
	}
	if bulk.Count() != 15 {
		t.Errorf("total weighted count = %d, want 15", bulk.Count())
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewHist(16)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty hist quantile should be 0")
	}
	for i := 0; i < 100; i++ {
		h.Add(i % 10) // uniform over 0..9
	}
	cases := []struct {
		q    float64
		want int
	}{
		{0, 0}, {0.05, 0}, {0.5, 4}, {0.9, 8}, {0.99, 9}, {1, 9}, {1.5, 9}, {-1, 0},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	// Quantiles landing in the overflow bucket report the range bound.
	o := NewHist(4)
	o.Add(1)
	o.Add(100)
	if got := o.Quantile(0.99); got != 4 {
		t.Errorf("overflow Quantile(0.99) = %d, want 4", got)
	}
}
