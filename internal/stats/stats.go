// Package stats provides the small statistics toolkit shared by the cores
// and the experiment harness: rate helpers, geometric means, histograms and
// fixed-width text tables matching the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ratio returns a/b, or 0 if b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Geomean returns the geometric mean of xs, ignoring non-positive entries.
// It returns 0 if no positive entries exist.
func Geomean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Hist is a simple histogram over small non-negative integer values with a
// catch-all overflow bucket. The zero value is not ready to use; call
// NewHist.
type Hist struct {
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      float64
}

// NewHist creates a histogram with buckets for values 0..max-1; larger
// values land in an overflow bucket but still contribute to Mean.
func NewHist(max int) *Hist {
	if max < 1 {
		max = 1
	}
	return &Hist{buckets: make([]uint64, max)}
}

// Add records one observation of v (negative values clamp to 0).
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v < len(h.buckets) {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.count++
	h.sum += float64(v)
}

// AddN records n observations of v as one weighted sample — exactly
// equivalent to calling Add(v) n times. It exists for clock fast-forwarding:
// when a core skips k provably idle cycles, the occupancy it would have
// sampled on each of them is the same frozen value, so the model records one
// sample with weight k instead of looping. Callers must pass the weight for
// every skipped cycle; dropping it would silently under-sample the histogram
// (Count no longer equals simulated cycles) and skew Mean toward busy
// cycles.
func (h *Hist) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if v < len(h.buckets) {
		h.buckets[v] += n
	} else {
		h.overflow += n
	}
	h.count += n
	h.sum += float64(v) * float64(n)
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the sum of all observations. Values beyond the bucket
// range contribute their true value, not the overflow bound. Exposition
// hook: Prometheus-style renderers pair the exact _sum with Count.
func (h *Hist) Sum() float64 { return h.sum }

// Mean returns the mean observation, or 0 if empty.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the smallest recorded value v such that at least
// q*Count observations are <= v (the inverse-CDF convention; q is clamped
// to [0,1]). Observations in the overflow bucket are only known to be >=
// the bucket range, so a quantile landing there reports the range bound —
// a lower bound on the true value. Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) int {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for v, n := range h.buckets {
		cum += n
		if cum >= rank {
			return v
		}
	}
	return len(h.buckets)
}

// Bucket returns the count of observations with value v (0 for out of range).
func (h *Hist) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Overflow returns the count of observations >= the bucket range.
func (h *Hist) Overflow() uint64 { return h.overflow }

// Fraction returns the fraction of observations equal to v.
func (h *Hist) Fraction(v int) float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.Bucket(v)) / float64(h.count)
}

// Table accumulates rows and renders a fixed-width text table. It is used
// by cmd/casino-bench to print the paper's figures as text.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v. Numeric floats use 3
// decimal places.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsBy sorts data rows by the given column, lexicographically.
func (t *Table) SortRowsBy(col int) {
	if col < 0 || col >= len(t.header) {
		return
	}
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }
