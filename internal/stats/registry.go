package stats

import (
	"fmt"
	"sort"
)

// MetricKind classifies a registry entry. The kind determines how Flatten
// expands the metric into scalar (name, value) pairs and lets downstream
// consumers (the run-manifest comparator) pick per-kind tolerances.
type MetricKind uint8

// Metric kinds.
const (
	// KindCounter is a monotonically accumulated event count. Publishing
	// the same counter name again adds to it, so several publishers can
	// contribute to one total.
	KindCounter MetricKind = iota
	// KindGauge is an instantaneous or derived scalar; republishing
	// overwrites.
	KindGauge
	// KindRatio is a dimensionless quotient recorded with Ratio-style
	// zero-denominator protection; republishing overwrites.
	KindRatio
	// KindHist summarizes a distribution (a *Hist snapshot): mean, count
	// and overflow fraction.
	KindHist
)

// String returns the kind's manifest-stable name.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindRatio:
		return "ratio"
	case KindHist:
		return "hist"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Metric is one published value. For KindHist, Value is the distribution
// mean, Count the number of observations and Overflow the fraction of
// observations beyond the bucketed range; for the scalar kinds only Value
// is meaningful.
type Metric struct {
	Name     string     `json:"name"`
	Kind     MetricKind `json:"kind"`
	Value    float64    `json:"value"`
	Count    uint64     `json:"count,omitempty"`
	Overflow float64    `json:"overflow,omitempty"`
	// P50/P90/P99 are distribution quantiles, recorded for KindHist only
	// (see Hist.Quantile for the overflow-bucket caveat).
	P50 float64 `json:"p50,omitempty"`
	P90 float64 `json:"p90,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// Registry collects the typed metrics of one simulation run. The cycle
// kernels and the energy accountant publish into it after a run completes
// (the hot path keeps its dense counters and histograms; publishing is a
// once-per-run snapshot). Iteration order is registration order, so a
// registry filled by a deterministic simulation flattens deterministically.
type Registry struct {
	order []string
	m     map[string]*Metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Metric)}
}

func (r *Registry) get(name string, kind MetricKind) *Metric {
	if mt, ok := r.m[name]; ok {
		if mt.Kind != kind {
			panic(fmt.Sprintf("stats: metric %q republished as %v, was %v", name, kind, mt.Kind))
		}
		return mt
	}
	mt := &Metric{Name: name, Kind: kind}
	r.m[name] = mt
	r.order = append(r.order, name)
	return mt
}

// Counter adds n to the named counter, creating it at zero first.
func (r *Registry) Counter(name string, n uint64) {
	r.get(name, KindCounter).Value += float64(n)
}

// Gauge sets the named gauge to v.
func (r *Registry) Gauge(name string, v float64) {
	r.get(name, KindGauge).Value = v
}

// SetRatio records num/den (0 if den is 0) under name.
func (r *Registry) SetRatio(name string, num, den float64) {
	r.get(name, KindRatio).Value = Ratio(num, den)
}

// Hist snapshots h under name: mean, observation count and overflow
// fraction. A nil histogram records an empty snapshot.
func (r *Registry) Hist(name string, h *Hist) {
	mt := r.get(name, KindHist)
	if h == nil {
		mt.Value, mt.Count, mt.Overflow = 0, 0, 0
		return
	}
	mt.Value = h.Mean()
	mt.Count = h.Count()
	if h.Count() > 0 {
		mt.Overflow = float64(h.Overflow()) / float64(h.Count())
	}
	mt.P50 = float64(h.Quantile(0.50))
	mt.P90 = float64(h.Quantile(0.90))
	mt.P99 = float64(h.Quantile(0.99))
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.order) }

// Lookup returns the named metric, or false if absent.
func (r *Registry) Lookup(name string) (Metric, bool) {
	if mt, ok := r.m[name]; ok {
		return *mt, true
	}
	return Metric{}, false
}

// Each calls fn for every registered metric in registration order
// without materializing a copy of the whole set. Exposition hook: bridge
// code (the telemetry package's service registry) walks snapshots this
// way to translate them into externally formatted series.
func (r *Registry) Each(fn func(Metric)) {
	for _, name := range r.order {
		fn(*r.m[name])
	}
}

// Metrics returns the registered metrics in registration order.
func (r *Registry) Metrics() []Metric {
	out := make([]Metric, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, *r.m[name])
	}
	return out
}

// Flatten expands every metric into scalar (name, value) pairs: scalar
// kinds map to their value under the bare name; hists expand to
// name+".mean" and name+".count" (overflow is added as ".overflow" only
// when non-zero, so the common in-range case stays compact).
func (r *Registry) Flatten() map[string]float64 {
	out := make(map[string]float64, len(r.order))
	for _, name := range r.order {
		mt := r.m[name]
		switch mt.Kind {
		case KindHist:
			out[name+".mean"] = mt.Value
			out[name+".count"] = float64(mt.Count)
			if mt.Overflow != 0 {
				out[name+".overflow"] = mt.Overflow
			}
			out[name+".p50"] = mt.P50
			out[name+".p90"] = mt.P90
			out[name+".p99"] = mt.P99
		default:
			out[name] = mt.Value
		}
	}
	return out
}

// FlattenSorted returns Flatten's pairs as a name-sorted slice, for
// deterministic text rendering independent of publish order.
func (r *Registry) FlattenSorted() []Metric {
	flat := r.Flatten()
	names := make([]string, 0, len(flat))
	for n := range flat {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Metric, len(names))
	for i, n := range names {
		kind := KindGauge
		if mt, ok := r.m[n]; ok {
			kind = mt.Kind
		}
		out[i] = Metric{Name: n, Kind: kind, Value: flat[n]}
	}
	return out
}
