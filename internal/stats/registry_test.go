package stats

import (
	"reflect"
	"testing"
)

func TestRegistryCounterAccumulates(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b", 3)
	r.Counter("a.b", 4)
	mt, ok := r.Lookup("a.b")
	if !ok || mt.Value != 7 {
		t.Fatalf("counter = %+v, want 7", mt)
	}
	if mt.Kind != KindCounter {
		t.Fatalf("kind = %v, want counter", mt.Kind)
	}
}

func TestRegistryGaugeOverwrites(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", 1.5)
	r.Gauge("g", 2.5)
	if mt, _ := r.Lookup("g"); mt.Value != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", mt.Value)
	}
}

func TestRegistryRatioZeroDen(t *testing.T) {
	r := NewRegistry()
	r.SetRatio("q", 5, 0)
	if mt, _ := r.Lookup("q"); mt.Value != 0 {
		t.Fatalf("ratio with zero denominator = %v, want 0", mt.Value)
	}
	r.SetRatio("q", 5, 2)
	if mt, _ := r.Lookup("q"); mt.Value != 2.5 {
		t.Fatalf("ratio = %v, want 2.5", mt.Value)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("republishing a counter as a gauge should panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", 1)
	r.Gauge("x", 2)
}

func TestRegistryHistFlatten(t *testing.T) {
	h := NewHist(4)
	h.Add(1)
	h.Add(2)
	h.Add(9) // overflow bucket
	r := NewRegistry()
	r.Counter("events", 10)
	r.Hist("occ.iq", h)
	flat := r.Flatten()
	want := map[string]float64{
		"events":          10,
		"occ.iq.mean":     4, // (1+2+9)/3
		"occ.iq.count":    3,
		"occ.iq.overflow": 1.0 / 3.0,
		"occ.iq.p50":      2, // values 1,2,9: rank 2 of 3
		"occ.iq.p90":      4, // overflow observations report the range bound
		"occ.iq.p99":      4,
	}
	if !reflect.DeepEqual(flat, want) {
		t.Fatalf("Flatten() = %v, want %v", flat, want)
	}
}

func TestRegistryHistNil(t *testing.T) {
	r := NewRegistry()
	r.Hist("empty", nil)
	flat := r.Flatten()
	if flat["empty.mean"] != 0 || flat["empty.count"] != 0 {
		t.Fatalf("nil hist flatten = %v", flat)
	}
	if _, ok := flat["empty.overflow"]; ok {
		t.Fatal("zero overflow should be omitted")
	}
}

func TestRegistryOrderIsRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z", 1)
	r.Counter("a", 2)
	r.Gauge("m", 3)
	var names []string
	for _, mt := range r.Metrics() {
		names = append(names, mt.Name)
	}
	if !reflect.DeepEqual(names, []string{"z", "a", "m"}) {
		t.Fatalf("order = %v, want registration order", names)
	}
}

func TestRegistryEach(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z", 1)
	r.Counter("a", 2)
	r.Gauge("m", 3)
	var names []string
	var vals []float64
	r.Each(func(mt Metric) {
		names = append(names, mt.Name)
		vals = append(vals, mt.Value)
	})
	if !reflect.DeepEqual(names, []string{"z", "a", "m"}) {
		t.Fatalf("Each order = %v, want registration order", names)
	}
	if !reflect.DeepEqual(vals, []float64{1, 2, 3}) {
		t.Fatalf("Each values = %v", vals)
	}
}

func TestRegistryFlattenSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z", 1)
	r.Counter("a", 2)
	out := r.FlattenSorted()
	if len(out) != 2 || out[0].Name != "a" || out[1].Name != "z" {
		t.Fatalf("FlattenSorted = %+v, want name-sorted", out)
	}
	if out[0].Kind != KindCounter || out[1].Kind != KindGauge {
		t.Fatalf("kinds not preserved: %+v", out)
	}
}
