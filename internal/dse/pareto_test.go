package dse

import (
	"reflect"
	"testing"
)

func pt(key string, ipc, epi float64) Point {
	return Point{Cell: key, Workload: "mcf", IPC: ipc, EnergyPerInst: epi}
}

func keysOf(pts []Point) []string {
	var out []string
	for _, p := range pts {
		out = append(out, p.Cell)
	}
	return out
}

func TestFrontier(t *testing.T) {
	pts := []Point{
		pt("a", 1.0, 10), // on frontier (cheapest)
		pt("b", 1.5, 12), // on frontier
		pt("c", 1.4, 13), // dominated by b (less IPC, more energy)
		pt("d", 2.0, 20), // on frontier (fastest)
		pt("e", 1.5, 15), // dominated by b (same IPC, more energy)
		pt("f", 1.0, 11), // dominated by a
	}
	got := keysOf(Frontier(pts))
	want := []string{"a", "b", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("frontier = %v, want %v", got, want)
	}
}

func TestFrontierKeepsCoOptimalTies(t *testing.T) {
	pts := []Point{pt("a", 1.0, 10), pt("b", 1.0, 10), pt("c", 0.9, 10)}
	got := keysOf(Frontier(pts))
	// a and b tie on both axes (neither dominates); c is strictly worse.
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("frontier = %v, want %v", got, want)
	}
}

func TestFrontierEmptyAndSingle(t *testing.T) {
	if got := Frontier(nil); len(got) != 0 {
		t.Errorf("empty frontier = %v", got)
	}
	if got := Frontier([]Point{pt("a", 1, 1)}); len(got) != 1 {
		t.Errorf("single-point frontier = %v", got)
	}
}

func TestFrontierByWorkloadGroups(t *testing.T) {
	a := pt("a", 1.0, 10)
	b := Point{Cell: "b", Workload: "milc", IPC: 0.5, EnergyPerInst: 50}
	got := FrontierByWorkload([]Point{a, b})
	if len(got) != 2 || len(got["mcf"]) != 1 || len(got["milc"]) != 1 {
		t.Errorf("per-workload grouping wrong: %v", got)
	}
}
