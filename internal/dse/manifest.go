package dse

import (
	"fmt"
	"runtime"

	"casino/internal/manifest"
	"casino/internal/sim"
)

// SweepFigure is the Figure id of sweep manifests (Compare gates it).
const SweepFigure = "sweep"

// CellManifest builds the single-cell manifest for one completed design
// point: the cell's provenance plus its headline metrics under the
// "cell.<key>." prefix. Per-cell manifests are what shards hand back;
// manifest.Merge folds any grouping of them into the same bytes.
func CellManifest(c Cell, r sim.Result, traceFP uint64) *manifest.Manifest {
	m := manifest.New(SweepFigure)
	m.Kind = manifest.KindSweep
	m.Ops, m.Warmup, m.Seed = c.Ops, c.Warmup, c.Seed
	m.Apps = []string{c.Workload}
	m.Workloads[c.Workload] = fmt.Sprintf("%016x", traceFP)
	m.GoVersion = runtime.Version()
	m.Cells = []manifest.Cell{{
		Key:      c.Key(),
		Model:    c.Model,
		Workload: c.Workload,
		SpecFP:   fmt.Sprintf("%016x", c.SpecFingerprint()),
		TraceFP:  fmt.Sprintf("%016x", traceFP),
	}}
	p := "cell." + c.Key() + "."
	m.Metrics[p+"ipc"] = r.IPC
	m.Metrics[p+"cycles"] = float64(r.Cycles)
	m.Metrics[p+"instructions"] = float64(r.Instructions)
	m.Metrics[p+"total_pj"] = r.TotalPJ
	m.Metrics[p+"energy_per_inst_pj"] = r.EnergyPerInst
	m.Metrics[p+"perf_per_energy"] = r.PerfPerEnergy
	m.Metrics[p+"area_mm2"] = r.AreaMM2
	if r.Sampled != nil {
		// Sampled cells (key suffix "@sampled") additionally publish the
		// statistical quality of their estimate.
		m.Metrics[p+"ipc_ci95"] = r.Sampled.IPCCI95
		m.Metrics[p+"windows"] = float64(r.Sampled.Windows)
		m.Metrics[p+"detail_fraction"] = r.Sampled.DetailFraction
	}
	return m
}

// MergeCells merges the per-cell manifests of a completed sweep. The
// output is deterministic — a pure function of (cells, results, traces) —
// so sharded and serial executions of the same grid are byte-identical.
// Wall time deliberately stays out of the manifest: it would break that
// property and Compare never reads it.
func MergeCells(cells []Cell, results []sim.Result, traceFPs map[string]uint64) (*manifest.Manifest, error) {
	if len(cells) != len(results) {
		return nil, fmt.Errorf("dse: %d cells but %d results", len(cells), len(results))
	}
	parts := make([]*manifest.Manifest, len(cells))
	for i, c := range cells {
		fp, ok := traceFPs[c.Workload]
		if !ok {
			return nil, fmt.Errorf("dse: no trace fingerprint for workload %q", c.Workload)
		}
		parts[i] = CellManifest(c, results[i], fp)
	}
	return manifest.Merge(parts...)
}
