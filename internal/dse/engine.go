package dse

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"casino/internal/manifest"
	"casino/internal/sim"
	"casino/internal/telemetry"
)

// Overload errors: the submission was well-formed but the engine cannot
// accept it right now. The HTTP layer maps these to 503.
var (
	ErrShuttingDown = errors.New("engine is shutting down")
	ErrQueueFull    = errors.New("job queue full")
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one accepted sweep: its expanded cells, live progress counters,
// and — once complete — the merged manifest and Pareto points.
type Job struct {
	ID    string
	Grid  Grid
	Cells []Cell

	workers int // engine pool width, for the ETA forecast

	mu       sync.Mutex
	state    string
	done     int
	total    int // cells across phases; 0 until running (then >= len(Cells))
	sampled  int // cells executed at sampled fidelity (phase one)
	promoted int // sampled cells promoted to a full-fidelity re-run
	hits     int
	errs     []string
	manifest *manifest.Manifest
	points   []Point

	// Progress/telemetry state (wall-clock; never merged into manifests).
	// Per-cell wall times live in each phase's local slice (see runPhase).
	started  time.Time
	finished time.Time
	ewmaMs   float64

	// SSE subscriptions (see progress.go).
	subs     map[int]chan Progress
	subSeq   int
	terminal bool
	final    Progress
}

// Status is a point-in-time snapshot of a job, shaped for the HTTP API.
// On a sampled-first sweep CellsTotal covers both phases; it grows from
// the expansion count to expansion+promoted once the promotion set is
// known (mid-run), mirroring how the work itself is discovered.
type Status struct {
	ID            string   `json:"id"`
	State         string   `json:"state"`
	CellsTotal    int      `json:"cells_total"`
	CellsDone     int      `json:"cells_done"`
	SampledCells  int      `json:"sampled_cells,omitempty"`
	PromotedCells int      `json:"promoted_cells,omitempty"`
	CacheHits     int      `json:"cache_hits"`
	Errors        []string `json:"errors,omitempty"`
}

// totalLocked is the job's cross-phase cell count; the caller holds j.mu.
func (j *Job) totalLocked() int {
	if j.total > 0 {
		return j.total
	}
	return len(j.Cells)
}

// statusLocked assembles the snapshot; the caller holds j.mu.
func (j *Job) statusLocked() Status {
	return Status{
		ID:            j.ID,
		State:         j.state,
		CellsTotal:    j.totalLocked(),
		CellsDone:     j.done,
		SampledCells:  j.sampled,
		PromotedCells: j.promoted,
		CacheHits:     j.hits,
		Errors:        append([]string(nil), j.errs...),
	}
}

// Snapshot returns the job's current status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// Manifest returns the merged sweep manifest, or false while the job has
// not completed successfully.
func (j *Job) Manifest() (*manifest.Manifest, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.manifest, j.state == StateDone && j.manifest != nil
}

// Points returns every completed design point (for the Pareto reducer),
// or false while the job has not completed successfully.
func (j *Job) Points() ([]Point, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return append([]Point(nil), j.points...), true
}

// engineMetrics holds the engine's service-level instruments: lock-free
// atomics bumped on the job/cell paths, snapshot by the telemetry
// registry at scrape time (NewTelemetry). The simulation counters
// (cycles, instructions, eventq totals) aggregate only cells that
// actually simulated — cache hits represent work avoided, not done.
type engineMetrics struct {
	sweepsSubmitted atomic.Uint64
	sweepsDone      atomic.Uint64
	sweepsFailed    atomic.Uint64
	cellsDone       atomic.Uint64
	sampledCells    atomic.Uint64
	promotedCells   atomic.Uint64
	workersBusy     atomic.Int64

	simCycles       atomic.Uint64
	simInstructions atomic.Uint64
	evqWakeups      atomic.Uint64
	evqCoalesced    atomic.Uint64
	ffSkipped       atomic.Uint64

	// cellMs distributes per-cell wall time (cache hits included) for
	// the /metrics p50/p90/p99 summary. Bucketed to 1ms up to 5 minutes.
	cellMs *telemetry.Summary
}

// addCellCounters folds one freshly simulated cell's whole-run counters
// into the service totals.
func (m *engineMetrics) addCellCounters(res sim.Result) {
	m.simCycles.Add(res.Cycles)
	m.simInstructions.Add(res.Instructions)
	m.evqWakeups.Add(uint64(res.Extra["evq.wakeups"]))
	m.evqCoalesced.Add(uint64(res.Extra["evq.coalesced"]))
	m.ffSkipped.Add(uint64(res.Extra["ff.skipped_cycles"]))
}

// Engine is the sweep executor: a FIFO job queue drained by one
// dispatcher that shards each job's cells across a bounded worker pool
// (sized to runtime.NumCPU() by default) through the fingerprint-keyed
// result cache. Jobs run one at a time, each using the full pool;
// submissions during a run queue up behind it.
type Engine struct {
	workers int
	cache   *ResultCache

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool

	queue   chan *Job
	drained chan struct{}
	started atomic.Bool // dispatcher goroutine is live: the readiness gate

	met engineMetrics
}

// NewEngine starts an engine with the given pool width (<= 0 means
// runtime.NumCPU()) and result-cache capacity (<= 0 means
// DefaultResultCacheSize). Callers own the engine's lifecycle and must
// Close it to drain.
func NewEngine(workers, cacheSize int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	e := &Engine{
		workers: workers,
		cache:   NewResultCache(cacheSize),
		jobs:    map[string]*Job{},
		queue:   make(chan *Job, 256),
		drained: make(chan struct{}),
	}
	e.met.cellMs = telemetry.NewSummary(5 * 60 * 1000)
	go func() {
		defer close(e.drained)
		e.started.Store(true)
		for job := range e.queue {
			e.runJob(job)
		}
	}()
	return e
}

// Submit validates and expands the grid, enqueues the job, and returns it
// immediately. The returned job's snapshots track execution.
func (e *Engine) Submit(g Grid) (*Job, error) {
	cells, err := g.Expand()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("dse: %w", ErrShuttingDown)
	}
	e.seq++
	job := &Job{
		ID:      fmt.Sprintf("sweep-%04d", e.seq),
		Grid:    g.normalized(),
		Cells:   cells,
		workers: e.workers,
		state:   StateQueued,
	}
	e.jobs[job.ID] = job
	select {
	case e.queue <- job:
	default:
		delete(e.jobs, job.ID)
		e.mu.Unlock()
		return nil, fmt.Errorf("dse: %w (%d pending)", ErrQueueFull, cap(e.queue))
	}
	e.mu.Unlock()
	e.met.sweepsSubmitted.Add(1)
	return job, nil
}

// Job returns the job with the given id.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns every accepted job sorted by id (submission order — ids
// are zero-padded sequence numbers). Backs GET /v1/sweeps.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	out := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Workers returns the pool width the engine shards cells across.
func (e *Engine) Workers() int { return e.workers }

// QueueDepth returns the number of jobs waiting behind the dispatcher.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// WorkersBusy returns how many pool slots are executing a cell right now.
func (e *Engine) WorkersBusy() int { return int(e.met.workersBusy.Load()) }

// Ready reports whether the engine is accepting and executing sweeps:
// the dispatcher is up and Close has not begun. Backs GET /readyz —
// distinct from liveness, which is true the moment the process serves
// HTTP.
func (e *Engine) Ready() bool {
	return e.started.Load() && !e.Draining()
}

// Draining reports whether Close has been called.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// CacheStats exposes the result cache's counters.
func (e *Engine) CacheStats() (entries int, hits, misses uint64) {
	return e.cache.Stats()
}

// Close drains the engine: no new submissions are accepted, every already
// accepted job runs to completion (in-flight cells are never abandoned,
// and every SSE subscriber receives its job's terminal event before the
// queue reports drained), and Close returns once the queue is empty. Safe
// to call once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.drained
		return
	}
	e.closed = true
	close(e.queue)
	e.mu.Unlock()
	<-e.drained
}

// runJob executes one job's cells on the worker pool. A full-fidelity job
// is a single phase; a sampled-first job runs every cell sampled, promotes
// the PromoteSet survivors, re-runs those at full fidelity, and reports
// only the full-fidelity points — the merged manifest keeps both phases.
func (e *Engine) runJob(job *Job) {
	job.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	job.total = len(job.Cells)
	job.publishLocked(job.started)
	job.mu.Unlock()

	fail := func(format string, args ...interface{}) {
		e.met.sweepsFailed.Add(1)
		job.mu.Lock()
		job.state = StateFailed
		job.finished = time.Now()
		job.errs = append(job.errs, fmt.Sprintf(format, args...))
		job.publishLocked(job.finished)
		job.mu.Unlock()
	}

	// Resolve every workload trace once up front (through the process-wide
	// singleflight trace cache) — the fingerprints key the result cache
	// and the manifest provenance.
	traceFPs := map[string]uint64{}
	n := job.Grid.Warmup + job.Grid.Ops
	for _, w := range job.Grid.sortedWorkloads() {
		tr, err := sim.SharedTrace(w, n, job.Grid.Seed)
		if err != nil {
			fail("workload %s: %v", w, err)
			return
		}
		traceFPs[w] = tr.Fingerprint()
	}

	results, err := e.runPhase(job, job.Cells, traceFPs)
	if err != nil {
		fail("%v", err)
		return
	}
	points := make([]Point, len(results))
	for i, r := range results {
		points[i] = pointOf(job.Cells[i], r)
	}

	allCells, allResults := job.Cells, results
	if job.Grid.Sampling != nil {
		promoted := PromoteSet(points)
		full := make([]Cell, len(promoted))
		for i, idx := range promoted {
			full[i] = job.Cells[idx].Promote()
		}
		e.met.sampledCells.Add(uint64(len(job.Cells)))
		e.met.promotedCells.Add(uint64(len(full)))
		job.mu.Lock()
		job.sampled = len(job.Cells)
		job.promoted = len(full)
		job.total = len(job.Cells) + len(full)
		job.publishLocked(time.Now())
		job.mu.Unlock()

		fullResults, err := e.runPhase(job, full, traceFPs)
		if err != nil {
			fail("%v", err)
			return
		}
		points = make([]Point, len(full))
		for i, r := range fullResults {
			points[i] = pointOf(full[i], r)
		}
		allCells = append(append([]Cell(nil), job.Cells...), full...)
		allResults = append(append([]sim.Result(nil), results...), fullResults...)
	}

	m, err := MergeCells(allCells, allResults, traceFPs)
	if err != nil {
		fail("merge: %v", err)
		return
	}
	e.met.sweepsDone.Add(1)
	job.mu.Lock()
	job.manifest = m
	job.points = points
	job.state = StateDone
	job.finished = time.Now()
	job.publishLocked(job.finished)
	job.mu.Unlock()
}

// runPhase shards one phase's cells across the pool through the result
// cache and returns their results in cell order.
func (e *Engine) runPhase(job *Job, cells []Cell, traceFPs map[string]uint64) ([]sim.Result, error) {
	simCells := make([]sim.Cell, len(cells))
	for i, c := range cells {
		spec, err := c.Spec()
		if err != nil {
			return nil, err
		}
		simCells[i] = sim.Cell{App: c.Workload, Model: c.Model, Index: i, Spec: spec}
	}

	cellMs := make([]float64, len(cells))
	runFn := func(sc sim.Cell) (sim.Result, error) {
		e.met.workersBusy.Add(1)
		defer e.met.workersBusy.Add(-1)
		c := cells[sc.Index]
		cellStart := time.Now()
		res, hit, err := e.cache.Do(c.CacheKey(traceFPs[c.Workload]), func() (sim.Result, error) {
			return sim.Run(sc.Spec)
		})
		ms := float64(time.Since(cellStart)) / float64(time.Millisecond)
		cellMs[sc.Index] = ms // safe: one writer per index, read after completion
		e.met.cellMs.Observe(ms)
		if hit {
			job.mu.Lock()
			job.hits++
			job.mu.Unlock()
		} else if err == nil {
			e.met.addCellCounters(res)
		}
		return res, err
	}
	onCell := func(r sim.CellResult) {
		e.met.cellsDone.Add(1)
		job.mu.Lock()
		job.done++
		job.observeCellLocked(cellMs[r.Cell.Index])
		job.publishLocked(time.Now())
		job.mu.Unlock()
	}
	cellResults := sim.RunCells(simCells, e.workers, runFn, onCell)
	if err := sim.JoinCellErrors(cellResults); err != nil {
		return nil, err
	}
	results := make([]sim.Result, len(cellResults))
	for i, r := range cellResults {
		results[i] = r.Result
	}
	return results, nil
}
