package dse

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"casino/internal/manifest"
	"casino/internal/sim"
)

// Overload errors: the submission was well-formed but the engine cannot
// accept it right now. The HTTP layer maps these to 503.
var (
	ErrShuttingDown = errors.New("engine is shutting down")
	ErrQueueFull    = errors.New("job queue full")
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one accepted sweep: its expanded cells, live progress counters,
// and — once complete — the merged manifest and Pareto points.
type Job struct {
	ID    string
	Grid  Grid
	Cells []Cell

	mu       sync.Mutex
	state    string
	done     int
	hits     int
	errs     []string
	manifest *manifest.Manifest
	points   []Point
}

// Status is a point-in-time snapshot of a job, shaped for the HTTP API.
type Status struct {
	ID         string   `json:"id"`
	State      string   `json:"state"`
	CellsTotal int      `json:"cells_total"`
	CellsDone  int      `json:"cells_done"`
	CacheHits  int      `json:"cache_hits"`
	Errors     []string `json:"errors,omitempty"`
}

// Snapshot returns the job's current status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:         j.ID,
		State:      j.state,
		CellsTotal: len(j.Cells),
		CellsDone:  j.done,
		CacheHits:  j.hits,
		Errors:     append([]string(nil), j.errs...),
	}
}

// Manifest returns the merged sweep manifest, or false while the job has
// not completed successfully.
func (j *Job) Manifest() (*manifest.Manifest, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.manifest, j.state == StateDone && j.manifest != nil
}

// Points returns every completed design point (for the Pareto reducer),
// or false while the job has not completed successfully.
func (j *Job) Points() ([]Point, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return append([]Point(nil), j.points...), true
}

// Engine is the sweep executor: a FIFO job queue drained by one
// dispatcher that shards each job's cells across a bounded worker pool
// (sized to runtime.NumCPU() by default) through the fingerprint-keyed
// result cache. Jobs run one at a time, each using the full pool;
// submissions during a run queue up behind it.
type Engine struct {
	workers int
	cache   *ResultCache

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool

	queue   chan *Job
	drained chan struct{}
}

// NewEngine starts an engine with the given pool width (<= 0 means
// runtime.NumCPU()) and result-cache capacity (<= 0 means
// DefaultResultCacheSize). Callers own the engine's lifecycle and must
// Close it to drain.
func NewEngine(workers, cacheSize int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	e := &Engine{
		workers: workers,
		cache:   NewResultCache(cacheSize),
		jobs:    map[string]*Job{},
		queue:   make(chan *Job, 256),
		drained: make(chan struct{}),
	}
	go func() {
		defer close(e.drained)
		for job := range e.queue {
			e.runJob(job)
		}
	}()
	return e
}

// Submit validates and expands the grid, enqueues the job, and returns it
// immediately. The returned job's snapshots track execution.
func (e *Engine) Submit(g Grid) (*Job, error) {
	cells, err := g.Expand()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("dse: %w", ErrShuttingDown)
	}
	e.seq++
	job := &Job{
		ID:    fmt.Sprintf("sweep-%04d", e.seq),
		Grid:  g.normalized(),
		Cells: cells,
		state: StateQueued,
	}
	e.jobs[job.ID] = job
	select {
	case e.queue <- job:
	default:
		delete(e.jobs, job.ID)
		e.mu.Unlock()
		return nil, fmt.Errorf("dse: %w (%d pending)", ErrQueueFull, cap(e.queue))
	}
	e.mu.Unlock()
	return job, nil
}

// Job returns the job with the given id.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// CacheStats exposes the result cache's counters.
func (e *Engine) CacheStats() (entries int, hits, misses uint64) {
	return e.cache.Stats()
}

// Close drains the engine: no new submissions are accepted, every already
// accepted job runs to completion (in-flight cells are never abandoned),
// and Close returns once the queue is empty. Safe to call once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.drained
		return
	}
	e.closed = true
	close(e.queue)
	e.mu.Unlock()
	<-e.drained
}

// runJob executes one job's cells on the worker pool.
func (e *Engine) runJob(job *Job) {
	job.mu.Lock()
	job.state = StateRunning
	job.mu.Unlock()

	fail := func(format string, args ...interface{}) {
		job.mu.Lock()
		job.state = StateFailed
		job.errs = append(job.errs, fmt.Sprintf(format, args...))
		job.mu.Unlock()
	}

	// Resolve every workload trace once up front (through the process-wide
	// singleflight trace cache) — the fingerprints key the result cache
	// and the manifest provenance.
	traceFPs := map[string]uint64{}
	n := job.Grid.Warmup + job.Grid.Ops
	for _, w := range job.Grid.sortedWorkloads() {
		tr, err := sim.SharedTrace(w, n, job.Grid.Seed)
		if err != nil {
			fail("workload %s: %v", w, err)
			return
		}
		traceFPs[w] = tr.Fingerprint()
	}

	simCells := make([]sim.Cell, len(job.Cells))
	for i, c := range job.Cells {
		spec, err := c.Spec()
		if err != nil {
			fail("%v", err)
			return
		}
		simCells[i] = sim.Cell{App: c.Workload, Model: c.Model, Index: i, Spec: spec}
	}

	runFn := func(sc sim.Cell) (sim.Result, error) {
		c := job.Cells[sc.Index]
		res, hit, err := e.cache.Do(c.CacheKey(traceFPs[c.Workload]), func() (sim.Result, error) {
			return sim.Run(sc.Spec)
		})
		if hit {
			job.mu.Lock()
			job.hits++
			job.mu.Unlock()
		}
		return res, err
	}
	onCell := func(sim.CellResult) {
		job.mu.Lock()
		job.done++
		job.mu.Unlock()
	}
	cellResults := sim.RunCells(simCells, e.workers, runFn, onCell)

	if err := sim.JoinCellErrors(cellResults); err != nil {
		fail("%v", err)
		return
	}
	results := make([]sim.Result, len(cellResults))
	points := make([]Point, len(cellResults))
	for i, r := range cellResults {
		results[i] = r.Result
		points[i] = pointOf(job.Cells[i], r.Result)
	}
	m, err := MergeCells(job.Cells, results, traceFPs)
	if err != nil {
		fail("merge: %v", err)
		return
	}
	job.mu.Lock()
	job.manifest = m
	job.points = points
	job.state = StateDone
	job.mu.Unlock()
}
