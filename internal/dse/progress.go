package dse

import (
	"time"
)

// Progress is a Status extended with the live pacing signals the service
// exposes at GET /v1/sweeps/{id}/progress and streams over SSE. It is
// wall-clock-derived and therefore lives strictly outside the manifest
// path: nothing in here is ever merged into a sweep manifest, which must
// stay byte-identical between serial, sharded and scraped-while-running
// executions.
type Progress struct {
	Status
	// ETASeconds estimates the remaining wall time from the cell-latency
	// EWMA and the engine's pool width. 0 until the first cell completes
	// (no estimate yet) and once the job is terminal.
	ETASeconds float64 `json:"eta_seconds"`
	// ElapsedSeconds is the wall time since the job left the queue
	// (frozen at completion). 0 while queued.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// CellMsEWMA is the exponentially weighted moving average of per-cell
	// wall time in milliseconds (cache hits included, which is what makes
	// resubmitted sweeps forecast near-zero ETAs).
	CellMsEWMA float64 `json:"cell_ms_ewma"`
}

// Terminal reports whether the job has reached a final state; the SSE
// stream emits the event carrying a terminal Progress under the "done"
// event name and then closes.
func (p Progress) Terminal() bool {
	return p.State == StateDone || p.State == StateFailed
}

// ewmaAlpha weights the newest cell completion at 30%: fast enough to
// track a sweep crossing from cache-hit cells into cold cells, smooth
// enough that one slow outlier does not whipsaw the ETA.
const ewmaAlpha = 0.3

// progressLocked assembles the snapshot; the caller holds j.mu.
func (j *Job) progressLocked(now time.Time) Progress {
	p := Progress{
		Status:     j.statusLocked(),
		CellMsEWMA: j.ewmaMs,
	}
	switch {
	case j.started.IsZero():
		// still queued
	case j.finished.IsZero():
		p.ElapsedSeconds = now.Sub(j.started).Seconds()
	default:
		p.ElapsedSeconds = j.finished.Sub(j.started).Seconds()
	}
	if j.state == StateRunning && j.done > 0 && j.workers > 0 {
		// On a sampled-first sweep the total covers both phases once the
		// promotion set is known; before that the ETA tracks phase one.
		remaining := j.totalLocked() - j.done
		p.ETASeconds = float64(remaining) * (j.ewmaMs / 1e3) / float64(j.workers)
	}
	return p
}

// Progress returns the job's current progress snapshot.
func (j *Job) Progress() Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progressLocked(time.Now())
}

// observeCellLocked folds one completed cell's wall time into the EWMA;
// the caller holds j.mu.
func (j *Job) observeCellLocked(ms float64) {
	if j.ewmaMs == 0 {
		j.ewmaMs = ms
		return
	}
	j.ewmaMs = ewmaAlpha*ms + (1-ewmaAlpha)*j.ewmaMs
}

// publishLocked pushes the current snapshot to every subscriber; the
// caller holds j.mu. Delivery is coalescing latest-wins: each subscriber
// channel holds at most one pending snapshot, and a new publish replaces
// an unread one. A terminal snapshot is always the last value delivered —
// after it, every channel is closed and the job remembers the final
// snapshot for late subscribers.
func (j *Job) publishLocked(now time.Time) {
	p := j.progressLocked(now)
	for _, ch := range j.subs {
		select {
		case <-ch: // drop the stale unread snapshot
		default:
		}
		select {
		case ch <- p:
		default: // unreachable: cap 1, just drained, publishes serialized by j.mu
		}
	}
	if p.Terminal() {
		for _, ch := range j.subs {
			close(ch)
		}
		j.subs = nil
		j.terminal = true
		j.final = p
	}
}

// subscribe registers a progress listener. The returned channel
// immediately carries the current snapshot, then one coalesced snapshot
// per publish, and is closed after a terminal snapshot is delivered. The
// cancel func detaches early (idempotent, safe after close). Subscribing
// to an already-terminal job yields the final snapshot and a closed
// channel.
func (j *Job) subscribe() (<-chan Progress, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal {
		ch := make(chan Progress, 1)
		ch <- j.final
		close(ch)
		return ch, func() {}
	}
	if j.subs == nil {
		j.subs = map[int]chan Progress{}
	}
	id := j.subSeq
	j.subSeq++
	ch := make(chan Progress, 1)
	ch <- j.progressLocked(time.Now())
	j.subs[id] = ch
	cancel := func() {
		j.mu.Lock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
		j.mu.Unlock()
	}
	return ch, cancel
}

// Subscribe attaches a progress listener to the job with the given id
// (see Job.subscribe for the channel contract). ok is false if no such
// job exists.
func (e *Engine) Subscribe(id string) (ch <-chan Progress, cancel func(), ok bool) {
	j, found := e.Job(id)
	if !found {
		return nil, nil, false
	}
	ch, cancel = j.subscribe()
	return ch, cancel, true
}
