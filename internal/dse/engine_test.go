package dse

import (
	"bytes"
	"testing"
	"time"

	"casino/internal/manifest"
	"casino/internal/sim"
)

// Small run window: engine tests care about orchestration, not IPC.
func testGrid(models []string, geoms [][2]int, apps ...string) Grid {
	return Grid{
		Models:     models,
		Workloads:  apps,
		Ops:        1500,
		Warmup:     300,
		Seed:       1,
		Geometries: geoms,
	}
}

func waitJob(t *testing.T, j *Job) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := j.Snapshot()
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish: %+v", j.ID, j.Snapshot())
	return Status{}
}

func encodeManifest(t *testing.T, m *manifest.Manifest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The tentpole determinism property: a sweep sharded across workers must
// produce a manifest byte-identical to a strictly serial run of the same
// cells.
func TestShardedMatchesSerial(t *testing.T) {
	g := testGrid([]string{"ino", "casino"}, [][2]int{{2, 1}, {4, 2}}, "mcf")

	e := NewEngine(4, 0)
	defer e.Close()
	job, err := e.Submit(g)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, job)
	if st.State != StateDone {
		t.Fatalf("job failed: %+v", st)
	}
	if st.CellsDone != st.CellsTotal || st.CellsTotal != 3 {
		t.Fatalf("progress wrong: %+v", st)
	}
	sharded, ok := job.Manifest()
	if !ok {
		t.Fatal("no manifest on done job")
	}

	serial, _, err := RunGrid(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := manifest.Compare(serial, sharded, manifest.CompareOptions{
		Default: manifest.Tolerance{Rel: 0, Abs: 1e-300},
	}); len(diffs) != 0 {
		t.Errorf("sharded vs serial drift: %v", diffs)
	}
	if !bytes.Equal(encodeManifest(t, serial), encodeManifest(t, sharded)) {
		t.Error("sharded and serial manifests are not byte-identical")
	}
}

// Satellite: two overlapping sweeps back-to-back. The second must report
// cache hits for every shared cell, and its manifest must be bitwise
// equal to the same grid run cold (cache reuse must not perturb results).
func TestOverlappingSweepsHitCacheBitIdentical(t *testing.T) {
	gridA := testGrid([]string{"ino", "casino"}, [][2]int{{2, 1}, {4, 2}}, "mcf")
	gridB := testGrid([]string{"casino", "specino"}, [][2]int{{2, 1}, {4, 2}}, "mcf")
	// Shared cells: casino[ws2,so1] and casino[ws4,so2].

	e := NewEngine(4, 0)
	defer e.Close()
	jobA, err := e.Submit(gridA)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, jobA); st.State != StateDone {
		t.Fatalf("sweep A failed: %+v", st)
	}
	jobB, err := e.Submit(gridB)
	if err != nil {
		t.Fatal(err)
	}
	stB := waitJob(t, jobB)
	if stB.State != StateDone {
		t.Fatalf("sweep B failed: %+v", stB)
	}
	if stB.CacheHits != 2 {
		t.Errorf("sweep B cache hits = %d, want 2 (the shared casino cells)", stB.CacheHits)
	}
	warm, _ := jobB.Manifest()

	cold := NewEngine(4, 0)
	defer cold.Close()
	jobCold, err := cold.Submit(gridB)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, jobCold); st.State != StateDone || st.CacheHits != 0 {
		t.Fatalf("cold run wrong: %+v", st)
	}
	coldM, _ := jobCold.Manifest()
	if !bytes.Equal(encodeManifest(t, warm), encodeManifest(t, coldM)) {
		t.Error("cache-hit manifest differs from cold-run manifest")
	}
}

// A resubmission of the identical grid must hit the cache for every cell.
func TestResubmitAllHits(t *testing.T) {
	g := testGrid([]string{"ino"}, nil, "mcf", "milc")
	e := NewEngine(2, 0)
	defer e.Close()
	j1, err := e.Submit(g)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j1); st.State != StateDone || st.CacheHits != 0 {
		t.Fatalf("first run: %+v", st)
	}
	j2, err := e.Submit(g)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j2)
	if st.State != StateDone || st.CacheHits != st.CellsTotal {
		t.Errorf("resubmit should hit every cell: %+v", st)
	}
	_, hits, misses := e.CacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("cache stats not tracking: hits=%d misses=%d", hits, misses)
	}
}

// A failing cell fails the job with a named error but never wedges the
// engine; the next job still runs. (Unknown models are rejected at
// Expand, so inject the failure through a cell whose spec is valid but
// whose model the runner rejects at run time via a doctored cell list.)
func TestJobFailureIsIsolated(t *testing.T) {
	e := NewEngine(2, 0)
	defer e.Close()

	g := testGrid([]string{"ino"}, nil, "mcf")
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cells[0].Model = "no-such-model" // valid at submit time, fails in Run
	job := &Job{ID: "sweep-doctored", Grid: g.normalized(), Cells: cells, state: StateQueued}
	e.mu.Lock()
	e.jobs[job.ID] = job
	e.mu.Unlock()
	e.queue <- job

	st := waitJob(t, job)
	if st.State != StateFailed || len(st.Errors) == 0 {
		t.Fatalf("doctored job should fail: %+v", st)
	}
	if _, ok := job.Manifest(); ok {
		t.Error("failed job must not publish a manifest")
	}

	ok, err := e.Submit(testGrid([]string{"ino"}, nil, "milc"))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, ok); st.State != StateDone {
		t.Errorf("engine wedged after failed job: %+v", st)
	}
}

// Close drains: accepted jobs run to completion, later submissions are
// rejected with ErrShuttingDown.
func TestCloseDrains(t *testing.T) {
	e := NewEngine(2, 0)
	job, err := e.Submit(testGrid([]string{"ino"}, nil, "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if st := job.Snapshot(); st.State != StateDone {
		t.Errorf("Close did not drain the accepted job: %+v", st)
	}
	if _, err := e.Submit(testGrid([]string{"ino"}, nil, "mcf")); err == nil {
		t.Error("Submit after Close succeeded")
	}
	e.Close() // second Close must be safe
}

func TestSubmitRejectsBadGrid(t *testing.T) {
	e := NewEngine(1, 0)
	defer e.Close()
	if _, err := e.Submit(Grid{Models: []string{"nope"}, Workloads: []string{"mcf"}}); err == nil {
		t.Error("bad grid accepted")
	}
}

// The result cache's singleflight: concurrent requests for one key run
// the simulation once; the joiner reports a hit.
func TestResultCacheSingleflight(t *testing.T) {
	rc := NewResultCache(8)
	started := make(chan struct{})
	release := make(chan struct{})
	type out struct {
		hit bool
		res sim.Result
	}
	first := make(chan out)
	go func() {
		res, hit, _ := rc.Do("k", func() (sim.Result, error) {
			close(started)
			<-release
			return sim.Result{Instructions: 7}, nil
		})
		first <- out{hit, res}
	}()
	<-started
	second := make(chan out)
	go func() {
		res, hit, _ := rc.Do("k", func() (sim.Result, error) {
			t.Error("second run executed despite in-flight entry")
			return sim.Result{}, nil
		})
		second <- out{hit, res}
	}()
	close(release)
	a, b := <-first, <-second
	if a.hit || a.res.Instructions != 7 {
		t.Errorf("first: %+v", a)
	}
	if !b.hit || b.res.Instructions != 7 {
		t.Errorf("joiner: %+v", b)
	}
}
