package dse

import (
	"casino/internal/manifest"
	"casino/internal/sim"
)

// RunGrid executes the grid synchronously on a pool of `workers`
// goroutines (1 = strictly serial, <= 0 = all CPUs) with no result cache,
// returning the merged sweep manifest and every design point. It is the
// gating path: `casino-bench sweep -workers 1` runs the exact cells a
// server sweep shards, and the manifests must be byte-identical.
func RunGrid(g Grid, workers int) (*manifest.Manifest, []Point, error) {
	return RunGridProgress(g, workers, nil)
}

// RunGridProgress is RunGrid with a progress observer: onCell, when
// non-nil, is called after each completed cell with the running done
// count and the total (calls are serialized, in completion order). The
// observer sees wall-clock pacing only — the returned manifest is
// byte-identical with or without it.
func RunGridProgress(g Grid, workers int, onCell func(done, total int)) (*manifest.Manifest, []Point, error) {
	cells, err := g.Expand()
	if err != nil {
		return nil, nil, err
	}
	ng := g.normalized()
	traceFPs := map[string]uint64{}
	for _, w := range ng.sortedWorkloads() {
		tr, err := sim.SharedTrace(w, ng.Warmup+ng.Ops, ng.Seed)
		if err != nil {
			return nil, nil, err
		}
		traceFPs[w] = tr.Fingerprint()
	}
	simCells := make([]sim.Cell, len(cells))
	for i, c := range cells {
		spec, err := c.Spec()
		if err != nil {
			return nil, nil, err
		}
		simCells[i] = sim.Cell{App: c.Workload, Model: c.Model, Index: i, Spec: spec}
	}
	var observe func(sim.CellResult)
	if onCell != nil {
		done := 0
		observe = func(sim.CellResult) {
			done++
			onCell(done, len(simCells))
		}
	}
	cellResults := sim.RunCells(simCells, workers, nil, observe)
	if err := sim.JoinCellErrors(cellResults); err != nil {
		return nil, nil, err
	}
	results := make([]sim.Result, len(cellResults))
	points := make([]Point, len(cellResults))
	for i, r := range cellResults {
		results[i] = r.Result
		points[i] = pointOf(cells[i], r.Result)
	}
	m, err := MergeCells(cells, results, traceFPs)
	if err != nil {
		return nil, nil, err
	}
	return m, points, nil
}
