package dse

import (
	"casino/internal/manifest"
	"casino/internal/sim"
)

// RunGrid executes the grid synchronously on a pool of `workers`
// goroutines (1 = strictly serial, <= 0 = all CPUs) with no result cache,
// returning the merged sweep manifest and every design point. It is the
// gating path: `casino-bench sweep -workers 1` runs the exact cells a
// server sweep shards, and the manifests must be byte-identical.
func RunGrid(g Grid, workers int) (*manifest.Manifest, []Point, error) {
	cells, err := g.Expand()
	if err != nil {
		return nil, nil, err
	}
	ng := g.normalized()
	traceFPs := map[string]uint64{}
	for _, w := range ng.sortedWorkloads() {
		tr, err := sim.SharedTrace(w, ng.Warmup+ng.Ops, ng.Seed)
		if err != nil {
			return nil, nil, err
		}
		traceFPs[w] = tr.Fingerprint()
	}
	simCells := make([]sim.Cell, len(cells))
	for i, c := range cells {
		spec, err := c.Spec()
		if err != nil {
			return nil, nil, err
		}
		simCells[i] = sim.Cell{App: c.Workload, Model: c.Model, Index: i, Spec: spec}
	}
	cellResults := sim.RunCells(simCells, workers, nil, nil)
	if err := sim.JoinCellErrors(cellResults); err != nil {
		return nil, nil, err
	}
	results := make([]sim.Result, len(cellResults))
	points := make([]Point, len(cellResults))
	for i, r := range cellResults {
		results[i] = r.Result
		points[i] = pointOf(cells[i], r.Result)
	}
	m, err := MergeCells(cells, results, traceFPs)
	if err != nil {
		return nil, nil, err
	}
	return m, points, nil
}
