package dse

import (
	"casino/internal/manifest"
	"casino/internal/sim"
)

// SweepStats counts the sampled-first execution of a sweep; zero-valued
// when the grid ran at full fidelity throughout.
type SweepStats struct {
	SampledCells  int `json:"sampled_cells,omitempty"`
	PromotedCells int `json:"promoted_cells,omitempty"`
}

// RunGrid executes the grid synchronously on a pool of `workers`
// goroutines (1 = strictly serial, <= 0 = all CPUs) with no result cache,
// returning the merged sweep manifest and every design point. It is the
// gating path: `casino-bench sweep -workers 1` runs the exact cells a
// server sweep shards, and the manifests must be byte-identical.
func RunGrid(g Grid, workers int) (*manifest.Manifest, []Point, error) {
	return RunGridProgress(g, workers, nil)
}

// RunGridProgress is RunGrid with a progress observer: onCell, when
// non-nil, is called after each completed cell with the running done
// count and the total (calls are serialized, in completion order; on a
// sampled-first sweep the total grows once the promotion set is known).
// The observer sees wall-clock pacing only — the returned manifest is
// byte-identical with or without it.
func RunGridProgress(g Grid, workers int, onCell func(done, total int)) (*manifest.Manifest, []Point, error) {
	m, pts, _, err := RunGridStats(g, workers, onCell)
	return m, pts, err
}

// RunGridStats is RunGridProgress plus the sampled-first execution
// counters. A full-fidelity grid runs in one phase. A grid with Sampling
// set runs two: every cell at sampled fidelity, then the PromoteSet
// survivors (per-workload Pareto frontier plus CI-overlap candidates)
// re-run at full fidelity. The returned points come exclusively from the
// final full-fidelity phase — a sampled estimate can steer the search but
// never stands in a reported frontier — while the manifest merges both
// phases (sampled cells under their "@sampled" keys).
func RunGridStats(g Grid, workers int, onCell func(done, total int)) (*manifest.Manifest, []Point, SweepStats, error) {
	cells, err := g.Expand()
	if err != nil {
		return nil, nil, SweepStats{}, err
	}
	ng := g.normalized()
	traceFPs := map[string]uint64{}
	for _, w := range ng.sortedWorkloads() {
		tr, err := sim.SharedTrace(w, ng.Warmup+ng.Ops, ng.Seed)
		if err != nil {
			return nil, nil, SweepStats{}, err
		}
		traceFPs[w] = tr.Fingerprint()
	}

	done, total := 0, len(cells)
	observe := func(sim.CellResult) {
		done++
		if onCell != nil {
			onCell(done, total)
		}
	}

	results, err := runCellList(cells, workers, observe)
	if err != nil {
		return nil, nil, SweepStats{}, err
	}
	points := make([]Point, len(results))
	for i, r := range results {
		points[i] = pointOf(cells[i], r)
	}

	var stats SweepStats
	allCells, allResults := cells, results
	if g.Sampling != nil {
		promoted := PromoteSet(points)
		stats.SampledCells = len(cells)
		stats.PromotedCells = len(promoted)
		full := make([]Cell, len(promoted))
		for i, idx := range promoted {
			full[i] = cells[idx].Promote()
		}
		total += len(full)
		fullResults, err := runCellList(full, workers, observe)
		if err != nil {
			return nil, nil, stats, err
		}
		points = make([]Point, len(full))
		for i, r := range fullResults {
			points[i] = pointOf(full[i], r)
		}
		allCells = append(append([]Cell(nil), cells...), full...)
		allResults = append(append([]sim.Result(nil), results...), fullResults...)
	}

	m, err := MergeCells(allCells, allResults, traceFPs)
	if err != nil {
		return nil, nil, stats, err
	}
	return m, points, stats, nil
}

// runCellList runs one phase's cells through the sharded cell runner and
// collects their results in cell order.
func runCellList(cells []Cell, workers int, observe func(sim.CellResult)) ([]sim.Result, error) {
	simCells := make([]sim.Cell, len(cells))
	for i, c := range cells {
		spec, err := c.Spec()
		if err != nil {
			return nil, err
		}
		simCells[i] = sim.Cell{App: c.Workload, Model: c.Model, Index: i, Spec: spec}
	}
	cellResults := sim.RunCells(simCells, workers, nil, observe)
	if err := sim.JoinCellErrors(cellResults); err != nil {
		return nil, err
	}
	results := make([]sim.Result, len(cellResults))
	for i, r := range cellResults {
		results[i] = r.Result
	}
	return results, nil
}
