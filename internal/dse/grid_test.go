package dse

import (
	"reflect"
	"strings"
	"testing"

	"casino/internal/sim"
)

func TestExpandDeterministicAndDeduplicated(t *testing.T) {
	g := Grid{
		Models:     []string{"casino", "specino", "ino"},
		Workloads:  []string{"mcf", "milc"},
		Ops:        20000,
		Warmup:     5000,
		Seed:       1,
		Geometries: [][2]int{{2, 1}, {4, 2}},
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Per workload: casino×2 geometries + specino×2 geometries + ino×1
	// (no geometry axis) = 5; two workloads = 10.
	if len(cells) != 10 {
		t.Fatalf("got %d cells, want 10: %+v", len(cells), cells)
	}
	keys := map[string]bool{}
	for _, c := range cells {
		if keys[c.Key()] {
			t.Errorf("duplicate cell %s", c.Key())
		}
		keys[c.Key()] = true
		if c.Ops != 20000 || c.Warmup != 5000 {
			t.Errorf("cell %s did not inherit run window: %+v", c.Key(), c)
		}
	}
	if !keys["mcf/ino"] {
		t.Errorf("ino cell should collapse the geometry axis: %v", keys)
	}
	if !keys["mcf/casino[ws4,so2]"] || !keys["milc/specino[ws2,so1]"] {
		t.Errorf("missing expected geometry cells: %v", keys)
	}

	again, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, again) {
		t.Error("expansion is not deterministic")
	}
}

func TestExpandDefaultsRunWindow(t *testing.T) {
	g := Grid{Models: []string{"ino"}, Workloads: []string{"mcf"}}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Ops != sim.DefaultOps || cells[0].Warmup != sim.DefaultWarmup {
		t.Errorf("defaults not applied: %+v", cells[0])
	}
}

func TestGridValidation(t *testing.T) {
	bad := []Grid{
		{Workloads: []string{"mcf"}},                                                           // no models
		{Models: []string{"casino"}},                                                           // no workloads
		{Models: []string{"nope"}, Workloads: []string{"mcf"}},                                 // unknown model
		{Models: []string{"casino"}, Workloads: []string{"nope"}},                              // unknown workload
		{Models: []string{"casino"}, Workloads: []string{"mcf"}, Geometries: [][2]int{{1, 2}}}, // WS < SO
		{Models: []string{"casino"}, Workloads: []string{"mcf"}, IQSizes: []int{0}},            // non-positive
		{Models: []string{"casino"}, Workloads: []string{"mcf"}, OSCAWidths: []int{48}},        // not power of two
	}
	for i, g := range bad {
		if _, err := g.Expand(); err == nil {
			t.Errorf("grid %d accepted: %+v", i, g)
		}
	}
}

func TestCellSpecAppliesOverrides(t *testing.T) {
	c := Cell{Workload: "mcf", Model: "casino", WS: 4, SO: 2, IQ: 20, SB: 16, ROB: 64, OSCA: 128,
		Ops: 20000, Warmup: 5000, Seed: 1}
	s, err := c.Spec()
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.CasinoCfg
	if cfg.WS != 4 || cfg.SO != 2 || cfg.IQSize != 20 || cfg.SQSize != 16 || cfg.ROBSize != 64 || cfg.OSCASize != 128 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	if got := c.Key(); got != "mcf/casino[ws4,so2,iq20,sb16,rob64,osca128]" {
		t.Errorf("key = %q", got)
	}
}

func TestCacheKeySeparatesSpecAndTrace(t *testing.T) {
	a := Cell{Workload: "mcf", Model: "casino", WS: 2, SO: 1, Ops: 20000, Warmup: 5000, Seed: 1}
	b := a
	b.SO = 2
	b.WS = 2
	if a.CacheKey(42) == b.CacheKey(42) {
		t.Error("different specs share a cache key")
	}
	if a.CacheKey(42) == a.CacheKey(43) {
		t.Error("different traces share a cache key")
	}
	if a.CacheKey(42) != a.CacheKey(42) {
		t.Error("cache key not stable")
	}
}

func TestReadGridRejectsUnknownFields(t *testing.T) {
	if _, err := ReadGrid(strings.NewReader(`{"models":["ino"],"workloads":["mcf"],"iq_size":[8]}`)); err == nil {
		t.Error("typo'd axis name accepted")
	}
	g, err := ReadGrid(strings.NewReader(`{"models":["ino"],"workloads":["mcf"],"ops":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Ops != 1000 {
		t.Errorf("ops = %d", g.Ops)
	}
}
