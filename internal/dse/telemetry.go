package dse

import (
	"casino/internal/telemetry"
)

// NewTelemetry builds the service metrics registry for an engine: the
// full /metrics surface of casino-server. Everything is collected at
// scrape time from the engine's lock-free instrument struct (or the
// result cache's existing counters), so scraping never contends with the
// simulation hot path and — critically — never touches a stats.Registry,
// run manifest, or anything else on the golden-gated result path.
//
// Instrument inventory (see DESIGN.md "Service telemetry"):
//
//	casino_cell_wall_time_ms        summary: per-cell wall time, p50/p90/p99
//	casino_engine_queue_depth       gauge:   sweeps queued behind the dispatcher
//	casino_engine_workers           gauge:   pool width
//	casino_engine_workers_busy      gauge:   pool slots executing a cell now
//	casino_engine_worker_utilization gauge:  busy/width, 0..1
//	casino_sweeps_submitted_total   counter: accepted submissions
//	casino_sweeps_completed_total   counter: by terminal state {state="done"|"failed"}
//	casino_cells_completed_total    counter: cells finished (hits included)
//	casino_sampled_cells_total      counter: cells run at sampled fidelity
//	casino_promoted_cells_total     counter: sampled cells promoted to full
//	casino_result_cache_entries     gauge:   resident results
//	casino_result_cache_hits_total  counter: simulations avoided
//	casino_result_cache_misses_total counter: simulations performed
//	casino_sim_cycles_total         counter: simulated cycles (cold cells only)
//	casino_sim_instructions_total   counter: committed instructions (cold cells)
//	casino_eventq_wakeups_total     counter: eventq registrations across cells
//	casino_eventq_coalesced_total   counter: eventq wakeups absorbed heap-free
//	casino_ff_skipped_cycles_total  counter: cycles fast-forwarded across cells
//	go_* / process_cpus             Go runtime family (RegisterGoRuntime)
func NewTelemetry(e *Engine) *telemetry.Registry {
	r := telemetry.NewRegistry()

	r.RegisterSummary("casino_cell_wall_time_ms",
		"Wall time per completed sweep cell in milliseconds (cache hits included).",
		e.met.cellMs)
	r.GaugeFunc("casino_engine_queue_depth",
		"Sweep jobs queued behind the dispatcher.",
		func() float64 { return float64(e.QueueDepth()) })
	r.GaugeFunc("casino_engine_workers",
		"Worker pool width cells are sharded across.",
		func() float64 { return float64(e.Workers()) })
	r.GaugeFunc("casino_engine_workers_busy",
		"Pool slots currently executing a cell.",
		func() float64 { return float64(e.WorkersBusy()) })
	r.GaugeFunc("casino_engine_worker_utilization",
		"Fraction of the worker pool currently busy (0..1).",
		func() float64 { return float64(e.WorkersBusy()) / float64(e.Workers()) })

	r.CounterFunc("casino_sweeps_submitted_total",
		"Sweep submissions accepted by the engine.",
		func() float64 { return float64(e.met.sweepsSubmitted.Load()) })
	r.CounterFunc("casino_sweeps_completed_total",
		"Sweeps reaching a terminal state.",
		func() float64 { return float64(e.met.sweepsDone.Load()) },
		telemetry.Label{Name: "state", Value: StateDone})
	r.CounterFunc("casino_sweeps_completed_total",
		"Sweeps reaching a terminal state.",
		func() float64 { return float64(e.met.sweepsFailed.Load()) },
		telemetry.Label{Name: "state", Value: StateFailed})
	r.CounterFunc("casino_cells_completed_total",
		"Sweep cells completed (cache hits included).",
		func() float64 { return float64(e.met.cellsDone.Load()) })
	r.CounterFunc("casino_sampled_cells_total",
		"Sweep cells executed at sampled fidelity (phase one of sampled-first sweeps).",
		func() float64 { return float64(e.met.sampledCells.Load()) })
	r.CounterFunc("casino_promoted_cells_total",
		"Sampled cells promoted to a full-fidelity re-run (Pareto or CI-overlap survivors).",
		func() float64 { return float64(e.met.promotedCells.Load()) })

	r.GaugeFunc("casino_result_cache_entries",
		"Results resident in the spec+trace fingerprint cache.",
		func() float64 { entries, _, _ := e.CacheStats(); return float64(entries) })
	r.CounterFunc("casino_result_cache_hits_total",
		"Cell simulations avoided by the result cache.",
		func() float64 { _, hits, _ := e.CacheStats(); return float64(hits) })
	r.CounterFunc("casino_result_cache_misses_total",
		"Cell simulations executed on a cache miss.",
		func() float64 { _, _, misses := e.CacheStats(); return float64(misses) })

	r.CounterFunc("casino_sim_cycles_total",
		"Simulated cycles across freshly executed cells.",
		func() float64 { return float64(e.met.simCycles.Load()) })
	r.CounterFunc("casino_sim_instructions_total",
		"Committed instructions across freshly executed cells.",
		func() float64 { return float64(e.met.simInstructions.Load()) })
	r.CounterFunc("casino_eventq_wakeups_total",
		"Event-queue wakeup registrations aggregated across cells.",
		func() float64 { return float64(e.met.evqWakeups.Load()) })
	r.CounterFunc("casino_eventq_coalesced_total",
		"Event-queue wakeups absorbed without a heap push, across cells.",
		func() float64 { return float64(e.met.evqCoalesced.Load()) })
	r.CounterFunc("casino_ff_skipped_cycles_total",
		"Cycles crossed by event-driven fast-forward, across cells.",
		func() float64 { return float64(e.met.ffSkipped.Load()) })

	r.RegisterGoRuntime()
	return r
}
