package dse

import (
	"math"
	"sort"

	"casino/internal/sim"
)

// Point is one design point in the IPC × energy plane. Higher IPC is
// better; lower energy per instruction is better.
type Point struct {
	Cell          string  `json:"cell"` // Cell.Key()
	Model         string  `json:"model"`
	Workload      string  `json:"workload"`
	IPC           float64 `json:"ipc"`
	EnergyPerInst float64 `json:"energy_per_inst_pj"`
	PerfPerEnergy float64 `json:"perf_per_energy"`

	// Sampled marks an estimate from sampled fidelity; IPCCI95 is then the
	// half-width of its 95% confidence interval (0 for full fidelity).
	// Final sweep results never carry Sampled points — the sampled phase
	// only decides what gets promoted.
	Sampled bool    `json:"sampled,omitempty"`
	IPCCI95 float64 `json:"ipc_ci95,omitempty"`
}

// pointOf projects a cell's result onto the Pareto plane.
func pointOf(c Cell, r sim.Result) Point {
	p := Point{
		Cell:          c.Key(),
		Model:         c.Model,
		Workload:      c.Workload,
		IPC:           r.IPC,
		EnergyPerInst: r.EnergyPerInst,
		PerfPerEnergy: r.PerfPerEnergy,
	}
	if r.Sampled != nil {
		p.Sampled = true
		p.IPCCI95 = r.Sampled.IPCCI95
	}
	return p
}

// Frontier returns the Pareto-optimal subset of points: a point survives
// unless some other point has >= IPC and <= energy with at least one
// strict inequality. The frontier is returned sorted by ascending IPC
// (and, for stable output, by cell key among equals).
func Frontier(points []Point) []Point {
	pts := append([]Point(nil), points...)
	// Sort best-first: IPC descending, energy ascending, key for stability.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].IPC != pts[j].IPC {
			return pts[i].IPC > pts[j].IPC
		}
		if pts[i].EnergyPerInst != pts[j].EnergyPerInst {
			return pts[i].EnergyPerInst < pts[j].EnergyPerInst
		}
		return pts[i].Cell < pts[j].Cell
	})
	// Sweep best-IPC-first keeping every point that strictly improves the
	// minimum energy seen so far. A point tying the current best on both
	// axes is co-optimal (no strict inequality) and kept too.
	var out []Point
	bestEnergy := math.Inf(1)
	bestIPC := math.Inf(-1)
	for _, p := range pts {
		switch {
		case p.EnergyPerInst < bestEnergy:
			out = append(out, p)
			bestEnergy, bestIPC = p.EnergyPerInst, p.IPC
		case p.EnergyPerInst == bestEnergy && p.IPC == bestIPC:
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IPC != out[j].IPC {
			return out[i].IPC < out[j].IPC
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// PromoteSet selects which cells of a sampled phase must be re-run at
// full fidelity, by index into points. Frontiers are per workload
// (cross-workload IPCs are not comparable): a point is promoted unless
// some other point of its workload dominates it even after crediting the
// point's IPC with its full 95% confidence interval (energy is compared
// at face value — the energy estimate has no CI, it extrapolates
// deterministically from the windows). That promotes the sampled Pareto
// frontier plus every CI-overlap candidate — any point the sample cannot
// statistically rule off the frontier — and demotes only points dominated
// beyond their own error bar. Indexes are returned ascending, so the
// promoted cell list inherits the expansion's deterministic order.
func PromoteSet(points []Point) []int {
	byWorkload := map[string][]int{}
	for i, p := range points {
		byWorkload[p.Workload] = append(byWorkload[p.Workload], i)
	}
	var out []int
	for _, idxs := range byWorkload {
		for _, i := range idxs {
			p := points[i]
			credit := p.IPC + p.IPCCI95
			dominated := false
			for _, j := range idxs {
				if j == i {
					continue
				}
				q := points[j]
				if q.IPC >= credit && q.EnergyPerInst <= p.EnergyPerInst &&
					(q.IPC > credit || q.EnergyPerInst < p.EnergyPerInst) {
					dominated = true
					break
				}
			}
			if !dominated {
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// FrontierByWorkload groups the points per workload and reduces each
// group to its Pareto frontier — cross-workload IPCs are not comparable,
// so each workload gets its own frontier.
func FrontierByWorkload(points []Point) map[string][]Point {
	groups := map[string][]Point{}
	for _, p := range points {
		groups[p.Workload] = append(groups[p.Workload], p)
	}
	out := make(map[string][]Point, len(groups))
	for w, pts := range groups {
		out[w] = Frontier(pts)
	}
	return out
}
