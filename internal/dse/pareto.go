package dse

import (
	"math"
	"sort"

	"casino/internal/sim"
)

// Point is one design point in the IPC × energy plane. Higher IPC is
// better; lower energy per instruction is better.
type Point struct {
	Cell          string  `json:"cell"` // Cell.Key()
	Model         string  `json:"model"`
	Workload      string  `json:"workload"`
	IPC           float64 `json:"ipc"`
	EnergyPerInst float64 `json:"energy_per_inst_pj"`
	PerfPerEnergy float64 `json:"perf_per_energy"`
}

// pointOf projects a cell's result onto the Pareto plane.
func pointOf(c Cell, r sim.Result) Point {
	return Point{
		Cell:          c.Key(),
		Model:         c.Model,
		Workload:      c.Workload,
		IPC:           r.IPC,
		EnergyPerInst: r.EnergyPerInst,
		PerfPerEnergy: r.PerfPerEnergy,
	}
}

// Frontier returns the Pareto-optimal subset of points: a point survives
// unless some other point has >= IPC and <= energy with at least one
// strict inequality. The frontier is returned sorted by ascending IPC
// (and, for stable output, by cell key among equals).
func Frontier(points []Point) []Point {
	pts := append([]Point(nil), points...)
	// Sort best-first: IPC descending, energy ascending, key for stability.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].IPC != pts[j].IPC {
			return pts[i].IPC > pts[j].IPC
		}
		if pts[i].EnergyPerInst != pts[j].EnergyPerInst {
			return pts[i].EnergyPerInst < pts[j].EnergyPerInst
		}
		return pts[i].Cell < pts[j].Cell
	})
	// Sweep best-IPC-first keeping every point that strictly improves the
	// minimum energy seen so far. A point tying the current best on both
	// axes is co-optimal (no strict inequality) and kept too.
	var out []Point
	bestEnergy := math.Inf(1)
	bestIPC := math.Inf(-1)
	for _, p := range pts {
		switch {
		case p.EnergyPerInst < bestEnergy:
			out = append(out, p)
			bestEnergy, bestIPC = p.EnergyPerInst, p.IPC
		case p.EnergyPerInst == bestEnergy && p.IPC == bestIPC:
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IPC != out[j].IPC {
			return out[i].IPC < out[j].IPC
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// FrontierByWorkload groups the points per workload and reduces each
// group to its Pareto frontier — cross-workload IPCs are not comparable,
// so each workload gets its own frontier.
func FrontierByWorkload(points []Point) map[string][]Point {
	groups := map[string][]Point{}
	for _, p := range points {
		groups[p.Workload] = append(groups[p.Workload], p)
	}
	out := make(map[string][]Point, len(groups))
	for w, pts := range groups {
		out[w] = Frontier(pts)
	}
	return out
}
