// Package dse is the design-space-exploration layer on top of the sim
// harness: it expands a parameter grid (model set × SpecInO geometry ×
// structure sizes × workloads) into deterministic simulation cells, runs
// them through the sharded cell runner behind a fingerprint-keyed result
// cache, merges the per-cell manifests into one compare-able sweep
// manifest, and reduces the results to IPC × energy Pareto frontiers.
// The casino-server HTTP service (engine.go, server.go) is the
// production-traffic surface; `casino-bench sweep` drives the same code
// serially for gating.
package dse

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strings"

	"casino/internal/core"
	"casino/internal/ino"
	"casino/internal/ooo"
	"casino/internal/sim"
	"casino/internal/slice"
	"casino/internal/specino"
	"casino/internal/workload"
)

// Grid is a sweep request: the cross product of every listed dimension,
// restricted per model to the dimensions that model actually has (an InO
// core has no ROB, so the ROB axis collapses to a single default point for
// it — the expansion never emits duplicate cells). Empty dimension slices
// mean "the model's Table I default".
type Grid struct {
	Models    []string `json:"models"`
	Workloads []string `json:"workloads"`

	Ops    int   `json:"ops,omitempty"`    // measured instructions (default sim.DefaultOps)
	Warmup int   `json:"warmup,omitempty"` // warm-up instructions (default sim.DefaultWarmup)
	Seed   int64 `json:"seed,omitempty"`   // workload generation seed

	// Geometries are SpecInO [WS, SO] window points, applied to the
	// casino and specino models.
	Geometries [][2]int `json:"geometries,omitempty"`
	// IQSizes sweeps the issue-queue capacity (every model; for the slice
	// cores it sizes the A/B/Y queues together).
	IQSizes []int `json:"iq_sizes,omitempty"`
	// SBSizes sweeps the store buffer / store queue capacity.
	SBSizes []int `json:"sb_sizes,omitempty"`
	// ROBSizes sweeps the reorder-buffer capacity (casino, ooo, ooo-nolq).
	ROBSizes []int `json:"rob_sizes,omitempty"`
	// OSCAWidths sweeps the OSCA filter size (casino only; power of two).
	OSCAWidths []int `json:"osca_widths,omitempty"`

	// Sampling, when non-nil, runs the sweep sampled-first: every cell
	// executes at sampled fidelity (zero-valued geometry fields select the
	// sim defaults), then the per-workload Pareto frontier plus every
	// CI-overlap candidate is promoted and re-run at full fidelity. The
	// final Pareto points come exclusively from the promoted full-fidelity
	// cells; the merged manifest carries both phases (sampled cells under
	// "@sampled" keys).
	Sampling *sim.Sampling `json:"sampling,omitempty"`
}

// dims says which sweep axes a model has. Inapplicable axes collapse to
// the single default point during expansion.
type dims struct{ geom, iq, sb, rob, osca bool }

func modelDims(model string) (dims, bool) {
	switch model {
	case sim.ModelCASINO:
		return dims{geom: true, iq: true, sb: true, rob: true, osca: true}, true
	case sim.ModelSpecInO:
		return dims{geom: true, iq: true}, true
	case sim.ModelInO:
		return dims{iq: true, sb: true}, true
	case sim.ModelOoO, sim.ModelOoONoLQ:
		return dims{iq: true, sb: true, rob: true}, true
	case sim.ModelLSC, sim.ModelFreeway:
		return dims{iq: true, sb: true}, true
	}
	return dims{}, false
}

// normalized returns the grid with ops/warmup defaulting applied, exactly
// mirroring sim.Options (so a sweep cell and a figure run of the same spec
// replay the same trace).
func (g Grid) normalized() Grid {
	if g.Ops <= 0 {
		g.Ops = sim.DefaultOps
	}
	if g.Warmup == 0 {
		g.Warmup = sim.DefaultWarmup
	}
	if g.Warmup < 0 {
		g.Warmup = 0
	}
	return g
}

// Validate checks the grid without expanding it: model and workload names
// must be known, dimension values positive, geometry points must satisfy
// WS >= SO >= 1, and OSCA widths must be powers of two.
func (g Grid) Validate() error {
	if len(g.Models) == 0 {
		return fmt.Errorf("dse: grid lists no models")
	}
	if len(g.Workloads) == 0 {
		return fmt.Errorf("dse: grid lists no workloads")
	}
	for _, m := range g.Models {
		if _, ok := modelDims(m); !ok {
			return fmt.Errorf("dse: unknown model %q (known: %v)", m, sim.Models())
		}
	}
	for _, w := range g.Workloads {
		if _, err := workload.ByName(w); err != nil {
			return fmt.Errorf("dse: %w", err)
		}
	}
	for _, geo := range g.Geometries {
		if geo[0] < 1 || geo[1] < 1 || geo[0] < geo[1] {
			return fmt.Errorf("dse: geometry [%d,%d]: need WS >= SO >= 1", geo[0], geo[1])
		}
	}
	for name, vals := range map[string][]int{
		"iq_sizes": g.IQSizes, "sb_sizes": g.SBSizes, "rob_sizes": g.ROBSizes,
	} {
		for _, v := range vals {
			if v < 1 {
				return fmt.Errorf("dse: %s value %d: must be positive", name, v)
			}
		}
	}
	for _, v := range g.OSCAWidths {
		if v < 1 || v&(v-1) != 0 {
			return fmt.Errorf("dse: osca_widths value %d: must be a positive power of two", v)
		}
	}
	if g.Sampling != nil {
		if err := g.Sampling.Check(); err != nil {
			return fmt.Errorf("dse: %w", err)
		}
	}
	return nil
}

// Cell is one expanded design point. Zero-valued axes mean "model
// default / axis not applicable"; the key, fingerprint and spec builders
// all treat them as absent.
type Cell struct {
	Workload string `json:"workload"`
	Model    string `json:"model"`

	WS   int `json:"ws,omitempty"`
	SO   int `json:"so,omitempty"`
	IQ   int `json:"iq,omitempty"`
	SB   int `json:"sb,omitempty"`
	ROB  int `json:"rob,omitempty"`
	OSCA int `json:"osca,omitempty"`

	Ops    int   `json:"ops"`
	Warmup int   `json:"warmup"`
	Seed   int64 `json:"seed"`

	// Sampling marks the cell's fidelity: nil runs the full model over the
	// whole region, non-nil runs sampled simulation with this (normalized)
	// geometry. Fidelity is part of the cell's identity — key, fingerprint
	// and cache entries of the two fidelities never collide.
	Sampling *sim.Sampling `json:"sampling,omitempty"`
}

// Promote returns the cell's full-fidelity twin: identical axes with the
// sampling geometry stripped. Promoting a full-fidelity cell is a no-op.
func (c Cell) Promote() Cell {
	c.Sampling = nil
	return c
}

// Key is the cell's stable identity within a sweep:
// "workload/model[axis…]" with the overridden axes in fixed order. It is
// the manifest metric prefix and the provenance key, so it deliberately
// excludes ops/warmup/seed — those are sweep-level spec fields that
// Compare already gates.
func (c Cell) Key() string {
	var parts []string
	add := func(name string, v int) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s%d", name, v))
		}
	}
	add("ws", c.WS)
	add("so", c.SO)
	add("iq", c.IQ)
	add("sb", c.SB)
	add("rob", c.ROB)
	add("osca", c.OSCA)
	key := c.Workload + "/" + c.Model
	if len(parts) > 0 {
		key += "[" + strings.Join(parts, ",") + "]"
	}
	if c.Sampling != nil {
		// Fidelity is identity: a sampled estimate of a design point and
		// its full-fidelity run are different measurements and must never
		// share a metric prefix or provenance key.
		key += "@sampled"
	}
	return key
}

// SpecFingerprint hashes the cell's full spec identity — key plus the
// run-window parameters — with FNV-1a. Together with the trace
// fingerprint it keys the result cache and the manifest provenance.
func (c Cell) SpecFingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|ops=%d|warmup=%d|seed=%d", c.Key(), c.Ops, c.Warmup, c.Seed)
	if c.Sampling != nil {
		// The key only says "@sampled"; the fingerprint pins the exact
		// normalized geometry so two different samplings of the same design
		// point never share a cache entry.
		sp := c.Sampling.Normalized()
		fmt.Fprintf(h, "|sampling=%d/%d/%d", sp.Period, sp.DetailOps, sp.WarmOps)
	}
	return h.Sum64()
}

// CacheKey combines the spec fingerprint with the trace fingerprint: two
// cells collide only when they would simulate the identical machine over
// the identical instruction stream, in which case sharing the result is
// exactly right.
func (c Cell) CacheKey(traceFP uint64) string {
	return fmt.Sprintf("%016x/%016x", c.SpecFingerprint(), traceFP)
}

// Spec builds the sim.Spec this cell runs, applying the overridden axes
// to the model's Table I default configuration and validating the result
// where the model supports it.
func (c Cell) Spec() (sim.Spec, error) {
	s := sim.Spec{
		Model:    c.Model,
		Workload: c.Workload,
		Ops:      c.Ops,
		Warmup:   c.Warmup,
		Seed:     c.Seed,
	}
	if c.Sampling != nil {
		sp := c.Sampling.Normalized()
		s.Sampling = &sp
	}
	switch c.Model {
	case sim.ModelCASINO:
		cfg := core.DefaultConfig()
		if c.WS > 0 {
			cfg.WS, cfg.SO = c.WS, c.SO
		}
		if c.IQ > 0 {
			cfg.IQSize = c.IQ
		}
		if c.SB > 0 {
			cfg.SQSize = c.SB
		}
		if c.ROB > 0 {
			cfg.ROBSize = c.ROB
		}
		if c.OSCA > 0 {
			cfg.OSCASize = c.OSCA
		}
		if err := cfg.Validate(); err != nil {
			return sim.Spec{}, fmt.Errorf("dse: cell %s: %w", c.Key(), err)
		}
		s.CasinoCfg = &cfg
	case sim.ModelSpecInO:
		ws, so := c.WS, c.SO
		if ws == 0 {
			ws, so = 2, 1
		}
		cfg := specino.DefaultConfig(ws, so)
		if c.IQ > 0 {
			cfg.IQSize = c.IQ
		}
		s.SpecInOCfg = &cfg
	case sim.ModelInO:
		cfg := ino.DefaultConfig()
		if c.IQ > 0 {
			cfg.IQSize = c.IQ
		}
		if c.SB > 0 {
			cfg.SBSize = c.SB
		}
		s.InOCfg = &cfg
	case sim.ModelOoO, sim.ModelOoONoLQ:
		cfg := ooo.DefaultConfig()
		if c.IQ > 0 {
			cfg.IQSize = c.IQ
		}
		if c.SB > 0 {
			cfg.SQSize = c.SB
		}
		if c.ROB > 0 {
			cfg.ROBSize = c.ROB
		}
		s.OoOCfg = &cfg
	case sim.ModelLSC, sim.ModelFreeway:
		kind := slice.LSC
		if c.Model == sim.ModelFreeway {
			kind = slice.Freeway
		}
		cfg := slice.DefaultConfig(kind)
		if c.IQ > 0 {
			cfg.AQSize, cfg.BQSize, cfg.YQSize = c.IQ, c.IQ, c.IQ
		}
		if c.SB > 0 {
			cfg.SBSize = c.SB
		}
		s.SliceCfg = &cfg
	default:
		return sim.Spec{}, fmt.Errorf("dse: cell %s: unknown model %q", c.Key(), c.Model)
	}
	return s, nil
}

// Expand validates the grid and expands it into cells in a deterministic
// order: workload-major, then model in grid order, then geometry, IQ, SB,
// ROB, OSCA — each axis restricted to the models that have it and
// deduplicated, so the cell list (and therefore cache keys, manifest
// provenance and shard ordering) is a pure function of the grid. A grid
// with Sampling set expands to sampled-fidelity cells (phase one of a
// sampled-first sweep); promotion derives the full-fidelity re-runs.
func (g Grid) Expand() ([]Cell, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.normalized()

	// Each axis contributes its values, or the single "default" zero
	// point when the list is empty or the model lacks the axis.
	axis := func(vals []int, has bool) []int {
		if !has || len(vals) == 0 {
			return []int{0}
		}
		return vals
	}
	var cells []Cell
	seen := map[string]bool{}
	for _, app := range n.Workloads {
		for _, model := range n.Models {
			d, _ := modelDims(model)
			geoms := [][2]int{{0, 0}}
			if d.geom && len(n.Geometries) > 0 {
				geoms = n.Geometries
			}
			for _, geo := range geoms {
				for _, iq := range axis(n.IQSizes, d.iq) {
					for _, sb := range axis(n.SBSizes, d.sb) {
						for _, rob := range axis(n.ROBSizes, d.rob) {
							for _, osca := range axis(n.OSCAWidths, d.osca) {
								c := Cell{
									Workload: app, Model: model,
									WS: geo[0], SO: geo[1],
									IQ: iq, SB: sb, ROB: rob, OSCA: osca,
									Ops: n.Ops, Warmup: n.Warmup, Seed: n.Seed,
								}
								if n.Sampling != nil {
									sp := n.Sampling.Normalized()
									c.Sampling = &sp
								}
								if key := c.Key(); !seen[key] {
									seen[key] = true
									cells = append(cells, c)
								}
							}
						}
					}
				}
			}
		}
	}
	// Every cell must build a valid spec; rejecting here turns a bad grid
	// into a submit-time 400 instead of N runtime cell failures.
	for _, c := range cells {
		if _, err := c.Spec(); err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// ReadGrid decodes a sweep grid from JSON, rejecting unknown fields so a
// typo'd axis name fails loudly instead of silently sweeping nothing.
func ReadGrid(r io.Reader) (Grid, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("dse: decode grid: %w", err)
	}
	return g, nil
}

// ReadGridFile loads a grid from a JSON file.
func ReadGridFile(path string) (Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return Grid{}, err
	}
	defer f.Close()
	g, err := ReadGrid(f)
	if err != nil {
		return Grid{}, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// sortedWorkloads returns the grid's distinct workloads in sorted order.
func (g Grid) sortedWorkloads() []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range g.Workloads {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}
