package dse

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Server exposes the engine over HTTP. Routes (see README for a curl
// session):
//
//	POST /v1/sweeps               submit a Grid, get {"id": ...} back (202)
//	GET  /v1/sweeps/{id}          job progress: cells done/total, cache hits
//	GET  /v1/sweeps/{id}/manifest merged sweep manifest (409 until done)
//	GET  /v1/sweeps/{id}/pareto   per-workload IPC × energy Pareto frontiers
//	GET  /healthz                 liveness
type Server struct {
	engine *Engine
	mux    *http.ServeMux
}

// NewServer wires the engine's HTTP surface.
func NewServer(e *Engine) *Server {
	s := &Server{engine: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/sweeps", s.submit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.status)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/manifest", s.manifest)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/pareto", s.pareto)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SubmitResponse is the POST /v1/sweeps body.
type SubmitResponse struct {
	ID        string `json:"id"`
	Cells     int    `json:"cells"`
	StatusURL string `json:"status_url"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	g, err := ReadGrid(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.engine.Submit(g)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrShuttingDown) || errors.Is(err, ErrQueueFull) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:        job.ID,
		Cells:     len(job.Cells),
		StatusURL: "/v1/sweeps/" + job.ID,
	})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := s.engine.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", r.PathValue("id")))
	}
	return job, ok
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Snapshot())
	}
}

func (s *Server) manifest(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	m, ready := job.Manifest()
	if !ready {
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is %s, manifest not available", job.ID, job.Snapshot().State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := m.Encode(w); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

// ParetoResponse is the GET /v1/sweeps/{id}/pareto body: per workload,
// the Pareto-optimal (IPC, energy/inst) design points in ascending IPC.
type ParetoResponse struct {
	ID        string             `json:"id"`
	Workloads map[string][]Point `json:"workloads"`
}

func (s *Server) pareto(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	pts, ready := job.Points()
	if !ready {
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is %s, pareto not available", job.ID, job.Snapshot().State))
		return
	}
	writeJSON(w, http.StatusOK, ParetoResponse{ID: job.ID, Workloads: FrontierByWorkload(pts)})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
