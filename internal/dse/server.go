package dse

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"casino/internal/telemetry"
)

// Server exposes the engine over HTTP. Routes (see README for a curl
// session):
//
//	POST /v1/sweeps               submit a Grid, get {"id": ...} back (202)
//	GET  /v1/sweeps               list all jobs with live progress
//	GET  /v1/sweeps/{id}          job progress: cells done/total, cache hits
//	GET  /v1/sweeps/{id}/progress progress + ETA/elapsed/cell-latency EWMA
//	GET  /v1/sweeps/{id}/events   Server-Sent-Events progress stream
//	GET  /v1/sweeps/{id}/manifest merged sweep manifest (409 until done)
//	GET  /v1/sweeps/{id}/pareto   per-workload IPC × energy Pareto frontiers
//	GET  /metrics                 Prometheus text exposition (telemetry pkg)
//	GET  /healthz                 liveness
//	GET  /readyz                  readiness: 503 until the pool is up or once draining
//	GET  /debug/pprof/...         profiling, only with WithPprof
type Server struct {
	engine *Engine
	mux    *http.ServeMux
	log    *slog.Logger
	tel    *telemetry.Registry

	reqSeq atomic.Uint64
	httpMs *telemetry.Summary
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithLogger enables structured request logging: one line per request
// with a request id, method, path, status and latency. Health and scrape
// endpoints log at Debug so a poll-heavy deployment stays readable at
// Info.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) { s.log = l }
}

// WithPprof mounts net/http/pprof under /debug/pprof/. Opt-in: profiling
// endpoints expose heap contents and must never be on by default.
func WithPprof() ServerOption {
	return func(s *Server) {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// NewServer wires the engine's HTTP surface, including the /metrics
// registry built by NewTelemetry.
func NewServer(e *Engine, opts ...ServerOption) *Server {
	s := &Server{engine: e, mux: http.NewServeMux(), tel: NewTelemetry(e)}
	s.httpMs = s.tel.Summary("casino_http_request_ms",
		"HTTP request latency in milliseconds.", 60*1000)
	s.mux.HandleFunc("POST /v1/sweeps", s.submit)
	s.mux.HandleFunc("GET /v1/sweeps", s.list)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.status)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/progress", s.progress)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.events)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/manifest", s.manifest)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/pareto", s.pareto)
	s.mux.Handle("GET /metrics", s.tel.Handler())
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", s.readyz)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Telemetry returns the server's metrics registry, for callers that want
// to add their own instruments before serving.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// statusRecorder captures the response code for logging/metrics and
// passes Flush through so the SSE handler can stream through it.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP dispatches through the observation middleware: every request
// gets an id, a latency observation, a per-status-code counter, and —
// with WithLogger — a structured log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	elapsed := time.Since(start)
	s.httpMs.Observe(float64(elapsed) / float64(time.Millisecond))
	s.tel.Counter("casino_http_requests_total", "HTTP requests by status code.",
		telemetry.Label{Name: "code", Value: strconv.Itoa(rec.code)}).Inc()
	if s.log == nil {
		return
	}
	level := slog.LevelInfo
	switch r.URL.Path {
	case "/healthz", "/readyz", "/metrics":
		level = slog.LevelDebug // scrape traffic: visible at -log-level debug only
	}
	s.log.LogAttrs(r.Context(), level, "request",
		slog.String("req_id", fmt.Sprintf("req-%08x", s.reqSeq.Add(1))),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", rec.code),
		slog.Duration("latency", elapsed),
		slog.String("remote", r.RemoteAddr),
	)
}

// SubmitResponse is the POST /v1/sweeps body.
type SubmitResponse struct {
	ID        string `json:"id"`
	Cells     int    `json:"cells"`
	StatusURL string `json:"status_url"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	g, err := ReadGrid(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.engine.Submit(g)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrShuttingDown) || errors.Is(err, ErrQueueFull) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	if s.log != nil {
		s.log.Info("sweep accepted", "sweep", job.ID, "cells", len(job.Cells))
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:        job.ID,
		Cells:     len(job.Cells),
		StatusURL: "/v1/sweeps/" + job.ID,
	})
}

// ListResponse is the GET /v1/sweeps body: every accepted job in
// submission order with its live progress.
type ListResponse struct {
	Sweeps []Progress `json:"sweeps"`
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := s.engine.Jobs()
	resp := ListResponse{Sweeps: make([]Progress, len(jobs))}
	for i, j := range jobs {
		resp.Sweeps[i] = j.Progress()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, ok := s.engine.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", r.PathValue("id")))
	}
	return job, ok
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Snapshot())
	}
}

func (s *Server) progress(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Progress())
	}
}

// sseRefresh paces the keep-fresh resend between cell completions so a
// stream over a long-running cell still counts its ETA down.
const sseRefresh = time.Second

// events streams the job's progress as Server-Sent Events: an initial
// snapshot on subscribe, a coalesced "progress" event per cell
// completion (plus a once-per-second refresh while idle), and a terminal
// "done" event carrying the final snapshot, after which the stream ends.
// The subscription channel is closed by the engine on job completion —
// including during a drain — so a client never hangs on a dying server.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	ch, cancel := job.subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	send := func(event string, p Progress) bool {
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	refresh := time.NewTicker(sseRefresh)
	defer refresh.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case p, open := <-ch:
			if !open {
				return // terminal event already delivered
			}
			event := "progress"
			if p.Terminal() {
				event = "done"
			}
			if !send(event, p) {
				return
			}
		case <-refresh.C:
			// Between-publish refresh keeps the ETA live; terminal states
			// are left to the subscription channel so "done" is emitted
			// exactly once.
			if p := job.Progress(); !p.Terminal() {
				if !send("progress", p) {
					return
				}
			}
		}
	}
}

func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.engine.Draining():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.engine.Ready():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) manifest(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	m, ready := job.Manifest()
	if !ready {
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is %s, manifest not available", job.ID, job.Snapshot().State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := m.Encode(w); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

// ParetoResponse is the GET /v1/sweeps/{id}/pareto body: per workload,
// the Pareto-optimal (IPC, energy/inst) design points in ascending IPC.
type ParetoResponse struct {
	ID        string             `json:"id"`
	Workloads map[string][]Point `json:"workloads"`
}

func (s *Server) pareto(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	pts, ready := job.Points()
	if !ready {
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is %s, pareto not available", job.ID, job.Snapshot().State))
		return
	}
	writeJSON(w, http.StatusOK, ParetoResponse{ID: job.ID, Workloads: FrontierByWorkload(pts)})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
