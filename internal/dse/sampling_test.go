package dse

import (
	"bytes"
	"strings"
	"testing"

	"casino/internal/sim"
)

// sampledGrid is a small sampled-first sweep: enough ops for several
// detailed windows per cell so the CI is non-degenerate, three models so
// each workload's frontier has something to demote.
func sampledGrid(apps ...string) Grid {
	return Grid{
		Models:    []string{"ino", "casino", "ooo"},
		Workloads: apps,
		Ops:       6000,
		Warmup:    600,
		Seed:      1,
		Sampling:  &sim.Sampling{Period: 600, DetailOps: 150, WarmOps: 60},
	}
}

// TestPromoteSet pins the promotion policy on hand-built points: the
// frontier always promotes, a dominated point stays demoted, and a CI
// wide enough to reach the frontier rescues an otherwise-dominated point.
// Workloads are independent.
func TestPromoteSet(t *testing.T) {
	pts := []Point{
		{Cell: "a", Workload: "w1", IPC: 2.0, EnergyPerInst: 1.0},                // frontier
		{Cell: "b", Workload: "w1", IPC: 1.0, EnergyPerInst: 2.0},                // dominated by a
		{Cell: "c", Workload: "w1", IPC: 1.95, EnergyPerInst: 1.5, IPCCI95: 0.1}, // CI overlaps a
		{Cell: "d", Workload: "w1", IPC: 1.0, EnergyPerInst: 0.5},                // frontier (cheapest)
		{Cell: "e", Workload: "w2", IPC: 0.5, EnergyPerInst: 3.0},                // alone in w2
	}
	got := PromoteSet(pts)
	want := []int{0, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("PromoteSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PromoteSet = %v, want %v", got, want)
		}
	}

	// Widen b's CI until it reaches a's IPC: now nothing can rule it off
	// the frontier and it must be promoted too.
	pts[1].IPCCI95 = 1.5
	got = PromoteSet(pts)
	if len(got) != 5 {
		t.Fatalf("PromoteSet with wide CI = %v, want all five", got)
	}
}

// TestSampledFidelityIsCellIdentity: fidelity must split keys, spec
// fingerprints and cache keys, and Promote must restore the full-fidelity
// identity exactly.
func TestSampledFidelityIsCellIdentity(t *testing.T) {
	full := Cell{Workload: "mcf", Model: "casino", Ops: 6000, Warmup: 600, Seed: 1}
	samp := full
	samp.Sampling = &sim.Sampling{}
	if !strings.HasSuffix(samp.Key(), "@sampled") {
		t.Errorf("sampled key %q lacks @sampled suffix", samp.Key())
	}
	if samp.Key() == full.Key() {
		t.Error("sampled and full cells share a key")
	}
	if samp.SpecFingerprint() == full.SpecFingerprint() {
		t.Error("sampled and full cells share a spec fingerprint")
	}
	// Two geometries of the same design point are different measurements.
	samp2 := full
	samp2.Sampling = &sim.Sampling{Period: 600, DetailOps: 150, WarmOps: 60}
	if samp2.SpecFingerprint() == samp.SpecFingerprint() {
		t.Error("different sampling geometries share a spec fingerprint")
	}
	// The default geometry and its explicit normalized form are the same
	// measurement and must share a cache entry.
	samp3 := full
	sp := sim.Sampling{}.Normalized()
	samp3.Sampling = &sp
	if samp3.SpecFingerprint() != samp.SpecFingerprint() {
		t.Error("zero geometry and its normalized form fingerprint differently")
	}
	if got := samp.Promote(); got.Key() != full.Key() || got.Sampling != nil {
		t.Errorf("Promote() = %+v, want full-fidelity twin", got)
	}
	spec, err := samp.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Sampling == nil {
		t.Error("sampled cell built a full-fidelity spec")
	}
}

// TestSampledSweepPromotesToFull is the acceptance property of the
// fidelity axis: a sampled-first sweep reports final points exclusively
// from promoted full-fidelity cells, while its manifest carries both
// phases under disjoint key namespaces.
func TestSampledSweepPromotesToFull(t *testing.T) {
	g := sampledGrid("mcf", "gcc")
	m, points, stats, err := RunGridStats(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SampledCells != 6 { // 3 models × 2 workloads
		t.Errorf("SampledCells = %d, want 6", stats.SampledCells)
	}
	if stats.PromotedCells < 2 || stats.PromotedCells > stats.SampledCells {
		t.Errorf("PromotedCells = %d, want within [2,%d]", stats.PromotedCells, stats.SampledCells)
	}
	if len(points) != stats.PromotedCells {
		t.Errorf("%d final points, want one per promoted cell (%d)", len(points), stats.PromotedCells)
	}
	byWorkload := map[string]int{}
	for _, p := range points {
		if p.Sampled || p.IPCCI95 != 0 {
			t.Errorf("final point %s is sampled-fidelity: %+v", p.Cell, p)
		}
		if strings.Contains(p.Cell, "@sampled") {
			t.Errorf("final point key %q carries the sampled namespace", p.Cell)
		}
		byWorkload[p.Workload]++
	}
	for _, w := range []string{"mcf", "gcc"} {
		if byWorkload[w] == 0 {
			t.Errorf("workload %s promoted no cells", w)
		}
	}
	var sampledMetrics, fullMetrics int
	for k := range m.Metrics {
		if strings.Contains(k, "@sampled") {
			sampledMetrics++
		} else {
			fullMetrics++
		}
	}
	if sampledMetrics == 0 || fullMetrics == 0 {
		t.Errorf("manifest namespaces: %d sampled / %d full metrics, want both non-zero",
			sampledMetrics, fullMetrics)
	}
	if want := stats.SampledCells + stats.PromotedCells; len(m.Cells) != want {
		t.Errorf("manifest has %d cells, want %d (both phases)", len(m.Cells), want)
	}
	for _, p := range points {
		if _, ok := m.Metrics["cell."+p.Cell+".ipc"]; !ok {
			t.Errorf("manifest missing full-fidelity metrics for promoted cell %s", p.Cell)
		}
		if _, ok := m.Metrics["cell."+p.Cell+"@sampled.ipc_ci95"]; !ok {
			t.Errorf("manifest missing sampled-phase CI for promoted cell %s", p.Cell)
		}
	}
}

// TestSampledSweepDeterminism: the whole two-phase pipeline — sampled
// runs, promotion, full re-runs, merge — must be byte-identical between
// serial and sharded execution.
func TestSampledSweepDeterminism(t *testing.T) {
	g := sampledGrid("mcf")
	serial, pSerial, _, err := RunGridStats(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded, pSharded, _, err := RunGridStats(g, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeManifest(t, serial), encodeManifest(t, sharded)) {
		t.Error("serial and sharded sampled-sweep manifests are not byte-identical")
	}
	if len(pSerial) != len(pSharded) {
		t.Fatalf("point counts differ: %d vs %d", len(pSerial), len(pSharded))
	}
	for i := range pSerial {
		if pSerial[i] != pSharded[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, pSerial[i], pSharded[i])
		}
	}
}

// TestSampledSweepEngine runs the sampled-first path through the engine:
// status counters cover both phases, the manifest matches the serial
// runner bit-for-bit, and the job's points are full-fidelity only.
func TestSampledSweepEngine(t *testing.T) {
	g := sampledGrid("mcf")
	serial, pSerial, stats, err := RunGridStats(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	e := NewEngine(4, 0)
	defer e.Close()
	job, err := e.Submit(g)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, job)
	if st.State != StateDone {
		t.Fatalf("job failed: %+v", st)
	}
	if st.SampledCells != stats.SampledCells || st.PromotedCells != stats.PromotedCells {
		t.Errorf("status phases = %d/%d, want %d/%d",
			st.SampledCells, st.PromotedCells, stats.SampledCells, stats.PromotedCells)
	}
	if want := stats.SampledCells + stats.PromotedCells; st.CellsDone != want || st.CellsTotal != want {
		t.Errorf("status cells = %d/%d, want %d/%d", st.CellsDone, st.CellsTotal, want, want)
	}
	m, ok := job.Manifest()
	if !ok {
		t.Fatal("no manifest on done job")
	}
	if !bytes.Equal(encodeManifest(t, serial), encodeManifest(t, m)) {
		t.Error("engine sampled-sweep manifest differs from serial runner")
	}
	pts, ok := job.Points()
	if !ok {
		t.Fatal("no points on done job")
	}
	if len(pts) != len(pSerial) {
		t.Fatalf("engine points %d, serial %d", len(pts), len(pSerial))
	}
	for i := range pts {
		if pts[i] != pSerial[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, pts[i], pSerial[i])
		}
	}
	if e.met.sampledCells.Load() != uint64(stats.SampledCells) ||
		e.met.promotedCells.Load() != uint64(stats.PromotedCells) {
		t.Errorf("engine counters = %d/%d, want %d/%d",
			e.met.sampledCells.Load(), e.met.promotedCells.Load(),
			stats.SampledCells, stats.PromotedCells)
	}
}
