package dse

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"casino/internal/manifest"
	"casino/internal/telemetry"
)

// submitGrid posts a grid over HTTP and returns the accepted job id.
func submitGrid(t *testing.T, baseURL, grid string) SubmitResponse {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/sweeps", "application/json", strings.NewReader(grid))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, baseURL, statusURL string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	var st Status
	for {
		getJSON(t, baseURL+statusURL, http.StatusOK, &st)
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

const gridTwoByTwo = `{"models":["casino","specino"],"workloads":["mcf"],"ops":1500,"warmup":300,"seed":1,"geometries":[[2,1],[4,2]]}`

// TestMetricsEndpoint: /metrics serves lint-clean Prometheus text with
// the full instrument inventory, and the work counters move after a
// sweep completes.
func TestMetricsEndpoint(t *testing.T) {
	e := NewEngine(2, 0)
	defer e.Close()
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Errorf("Content-Type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	cold := scrape()
	n, err := telemetry.Lint(strings.NewReader(cold))
	if err != nil {
		t.Fatalf("cold scrape fails lint: %v", err)
	}
	if n < 10 {
		t.Errorf("cold scrape has %d series, want >= 10", n)
	}
	for _, want := range []string{
		"casino_cell_wall_time_ms", "casino_engine_queue_depth",
		"casino_engine_workers ", "casino_engine_workers_busy",
		"casino_engine_worker_utilization", "casino_sweeps_submitted_total",
		`casino_sweeps_completed_total{state="done"}`,
		`casino_sweeps_completed_total{state="failed"}`,
		"casino_cells_completed_total", "casino_sampled_cells_total",
		"casino_promoted_cells_total", "casino_result_cache_entries",
		"casino_result_cache_hits_total", "casino_result_cache_misses_total",
		"casino_sim_cycles_total", "casino_sim_instructions_total",
		"casino_eventq_wakeups_total", "casino_eventq_coalesced_total",
		"casino_ff_skipped_cycles_total", "casino_http_request_ms",
		"go_goroutines",
	} {
		if !strings.Contains(cold, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	sub := submitGrid(t, ts.URL, gridTwoByTwo)
	waitDone(t, ts.URL, sub.StatusURL)

	warm := scrape()
	if _, err := telemetry.Lint(strings.NewReader(warm)); err != nil {
		t.Fatalf("post-sweep scrape fails lint: %v", err)
	}
	for _, want := range []string{
		"casino_cells_completed_total 4",
		`casino_sweeps_completed_total{state="done"} 1`,
		"casino_cell_wall_time_ms_count 4",
	} {
		if !strings.Contains(warm, want) {
			t.Errorf("post-sweep /metrics missing %q:\n%s", want, warm)
		}
	}
	if !strings.Contains(warm, "casino_http_requests_total{code=\"200\"}") {
		t.Errorf("post-sweep /metrics missing http request counter")
	}
}

// TestReadyzLifecycle: ready while serving, 503 draining after Close —
// distinct from /healthz, which stays 200 throughout.
func TestReadyzLifecycle(t *testing.T) {
	e := NewEngine(1, 0)
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	// The dispatcher goroutine flips the ready gate; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never became ready (last %d)", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}

	e.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Errorf("/readyz after Close = %d %s, want 503 draining", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)
}

// TestListSweeps: GET /v1/sweeps returns every accepted job in
// submission order with progress attached.
func TestListSweeps(t *testing.T) {
	e := NewEngine(2, 0)
	defer e.Close()
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	var list ListResponse
	getJSON(t, ts.URL+"/v1/sweeps", http.StatusOK, &list)
	if len(list.Sweeps) != 0 {
		t.Fatalf("fresh engine lists %d sweeps", len(list.Sweeps))
	}

	small := `{"models":["ino"],"workloads":["mcf"],"ops":1500,"warmup":300}`
	first := submitGrid(t, ts.URL, small)
	second := submitGrid(t, ts.URL, gridTwoByTwo)
	waitDone(t, ts.URL, first.StatusURL)
	waitDone(t, ts.URL, second.StatusURL)

	getJSON(t, ts.URL+"/v1/sweeps", http.StatusOK, &list)
	if len(list.Sweeps) != 2 {
		t.Fatalf("list has %d sweeps, want 2", len(list.Sweeps))
	}
	if list.Sweeps[0].ID != first.ID || list.Sweeps[1].ID != second.ID {
		t.Errorf("list order %s, %s; want %s, %s", list.Sweeps[0].ID, list.Sweeps[1].ID, first.ID, second.ID)
	}
	if got := list.Sweeps[1]; got.State != StateDone || got.CellsDone != got.CellsTotal {
		t.Errorf("completed sweep listed as %+v", got)
	}
}

// TestProgressMonotonic: the /progress endpoint's done count never
// regresses, its ETA is never negative, and the terminal snapshot
// reports done == total with a frozen elapsed time.
func TestProgressMonotonic(t *testing.T) {
	e := NewEngine(2, 0)
	defer e.Close()
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	sub := submitGrid(t, ts.URL, gridTwoByTwo)
	url := ts.URL + sub.StatusURL + "/progress"
	lastDone := -1
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var p Progress
		getJSON(t, url, http.StatusOK, &p)
		if p.CellsDone < lastDone {
			t.Fatalf("cells_done regressed: %d -> %d", lastDone, p.CellsDone)
		}
		lastDone = p.CellsDone
		if p.ETASeconds < 0 || p.ElapsedSeconds < 0 || p.CellMsEWMA < 0 {
			t.Fatalf("negative pacing signal: %+v", p)
		}
		if p.CellsDone > p.CellsTotal {
			t.Fatalf("done %d > total %d", p.CellsDone, p.CellsTotal)
		}
		if p.Terminal() {
			if p.State != StateDone || p.CellsDone != p.CellsTotal {
				t.Fatalf("bad terminal snapshot: %+v", p)
			}
			if p.ETASeconds != 0 {
				t.Errorf("terminal ETA = %v, want 0", p.ETASeconds)
			}
			if p.ElapsedSeconds <= 0 || p.CellMsEWMA <= 0 {
				t.Errorf("terminal pacing not recorded: %+v", p)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", p)
		}
	}
}

// readSSE consumes one SSE stream to completion, returning the ordered
// (event, payload) pairs.
type sseEvent struct {
	name string
	p    Progress
}

func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	name := ""
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var p Progress
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			events = append(events, sseEvent{name: name, p: p})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("SSE stream: %v", err)
	}
	return events
}

// TestSSEStream: subscribe, run a 2×2 grid, and assert the stream
// delivers monotonic progress events and ends with exactly one terminal
// "done" event.
func TestSSEStream(t *testing.T) {
	e := NewEngine(2, 0)
	defer e.Close()
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	// The dispatcher runs jobs serially: a heavier blocker job submitted
	// first holds the target job in the queue, guaranteeing the stream
	// attaches before the target turns terminal — so the subscription
	// observes the queued → running → done trajectory, not just the
	// late-subscriber terminal snapshot.
	blocker := `{"models":["casino","specino"],"workloads":["mcf"],"ops":60000,"warmup":15000,"seed":1,"geometries":[[2,1],[4,2],[8,4]]}`
	submitGrid(t, ts.URL, blocker)
	sub := submitGrid(t, ts.URL, gridTwoByTwo)
	resp, err := http.Get(ts.URL + sub.StatusURL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}

	events := readSSE(t, resp.Body)
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events, want initial snapshot + terminal at least", len(events))
	}
	lastDone := -1
	for i, ev := range events {
		if ev.p.ID != sub.ID {
			t.Errorf("event %d for job %s, want %s", i, ev.p.ID, sub.ID)
		}
		if ev.p.CellsDone < lastDone {
			t.Errorf("event %d regressed cells_done %d -> %d", i, lastDone, ev.p.CellsDone)
		}
		lastDone = ev.p.CellsDone
		terminal := i == len(events)-1
		if wantName := map[bool]string{true: "done", false: "progress"}[terminal]; ev.name != wantName {
			t.Errorf("event %d named %q, want %q", i, ev.name, wantName)
		}
		if ev.p.Terminal() != terminal {
			t.Errorf("event %d terminal=%v at position %d/%d", i, ev.p.Terminal(), i, len(events)-1)
		}
	}
	final := events[len(events)-1].p
	if final.State != StateDone || final.CellsDone != 4 || final.CellsTotal != 4 {
		t.Errorf("terminal event %+v", final)
	}

	// A late subscriber to the finished job gets the terminal snapshot
	// immediately and a closed stream.
	resp2, err := http.Get(ts.URL + sub.StatusURL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	late := readSSE(t, resp2.Body)
	resp2.Body.Close()
	if len(late) != 1 || late[0].name != "done" || !late[0].p.Terminal() {
		t.Errorf("late subscription got %+v, want single done event", late)
	}
}

// TestEngineCloseTerminatesSubscribers: every subscriber attached when
// Close begins still receives its job's terminal snapshot and a closed
// channel — draining must not strand an SSE stream. Exercised with
// concurrent subscribers per job under -race in CI.
func TestEngineCloseTerminatesSubscribers(t *testing.T) {
	e := NewEngine(2, 0)
	g, err := ReadGrid(strings.NewReader(gridTwoByTwo))
	if err != nil {
		t.Fatal(err)
	}
	jobA, err := e.Submit(g)
	if err != nil {
		t.Fatal(err)
	}
	small, err := ReadGrid(strings.NewReader(`{"models":["ino"],"workloads":["mcf"],"ops":1500,"warmup":300}`))
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := e.Submit(small)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for _, id := range []string{jobA.ID, jobB.ID, jobA.ID, jobB.ID} {
		ch, cancel, ok := e.Subscribe(id)
		if !ok {
			t.Fatalf("subscribe %s failed", id)
		}
		wg.Add(1)
		go func(id string, ch <-chan Progress, cancel func()) {
			defer wg.Done()
			defer cancel()
			var last Progress
			n := 0
			for p := range ch {
				last = p
				n++
			}
			if n == 0 || !last.Terminal() {
				errs <- fmt.Errorf("subscriber of %s: %d events, last %+v (not terminal)", id, n, last)
			}
		}(id, ch, cancel)
	}

	e.Close() // drains both jobs; subscribers must all see terminal events
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := jobA.Snapshot(); st.State != StateDone {
		t.Errorf("jobA state %s after drain", st.State)
	}
	if st := jobB.Snapshot(); st.State != StateDone {
		t.Errorf("jobB state %s after drain", st.State)
	}
}

// TestSubscribeCancelIsIdempotent: cancel after terminal close and
// double cancel must both be safe.
func TestSubscribeCancelIsIdempotent(t *testing.T) {
	e := NewEngine(1, 0)
	defer e.Close()
	g, err := ReadGrid(strings.NewReader(`{"models":["ino"],"workloads":["mcf"],"ops":1500,"warmup":300}`))
	if err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(g)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, _ := e.Subscribe(job.ID)
	for range ch {
	}
	cancel()
	cancel()
	// Early cancel on a second subscription while the job may be live.
	_, cancel2, _ := e.Subscribe(job.ID)
	cancel2()
	cancel2()
}

// TestTelemetryManifestUnperturbed: hammering /metrics (and /progress)
// while a sweep runs must leave the merged sweep manifest byte-identical
// to a cold serial run of the same grid — telemetry lives strictly
// outside the manifest path.
func TestTelemetryManifestUnperturbed(t *testing.T) {
	g, err := ReadGrid(strings.NewReader(gridTwoByTwo))
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := RunGrid(g, 1)
	if err != nil {
		t.Fatal(err)
	}

	e := NewEngine(4, 0)
	defer e.Close()
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	stop := make(chan struct{})
	scraped := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				if _, lerr := telemetry.Lint(resp.Body); lerr != nil {
					t.Errorf("mid-sweep scrape fails lint: %v", lerr)
				}
				resp.Body.Close()
				n++
			}
		}
	}()

	sub := submitGrid(t, ts.URL, gridTwoByTwo)
	waitDone(t, ts.URL, sub.StatusURL)
	close(stop)
	if n := <-scraped; n == 0 {
		t.Error("scrape loop never completed a scrape")
	}

	mresp, err := http.Get(ts.URL + sub.StatusURL + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	served, err := manifest.Decode(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeManifest(t, serial), encodeManifest(t, served)) {
		t.Error("manifest differs from cold serial run after mid-sweep /metrics scraping")
	}
}
