package dse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"casino/internal/manifest"
)

func getJSON(t *testing.T, url string, wantCode int, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantCode, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: %v in %s", url, err, body)
		}
	}
}

func TestServerEndToEnd(t *testing.T) {
	e := NewEngine(4, 0)
	defer e.Close()
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)

	// Submit a grid over HTTP.
	grid := `{"models":["ino","casino"],"workloads":["mcf"],"ops":1500,"warmup":300,"seed":1,"geometries":[[2,1],[4,2]]}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(grid))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Cells != 3 || sub.ID == "" {
		t.Fatalf("submit response: %+v", sub)
	}

	// Poll progress to completion.
	var st Status
	deadline := time.Now().Add(2 * time.Minute)
	for {
		getJSON(t, ts.URL+sub.StatusURL, http.StatusOK, &st)
		if st.State == StateDone || st.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != StateDone || st.CellsDone != 3 {
		t.Fatalf("sweep did not complete: %+v", st)
	}

	// Fetch the merged manifest and compare it against a serial run.
	mresp, err := http.Get(ts.URL + sub.StatusURL + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	served, err := manifest.Decode(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	g, err := ReadGrid(strings.NewReader(grid))
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := RunGrid(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := manifest.Compare(serial, served, manifest.CompareOptions{
		Default: manifest.Tolerance{Rel: 0, Abs: 1e-300},
	}); len(diffs) != 0 {
		t.Errorf("served manifest drifts from serial: %v", diffs)
	}
	if !bytes.Equal(encodeManifest(t, serial), encodeManifest(t, served)) {
		t.Error("served manifest not byte-identical to serial run")
	}

	// Pareto frontier: every workload present, points ordered by IPC.
	var par ParetoResponse
	getJSON(t, ts.URL+sub.StatusURL+"/pareto", http.StatusOK, &par)
	pts := par.Workloads["mcf"]
	if len(pts) == 0 {
		t.Fatal("empty pareto frontier")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].IPC < pts[i-1].IPC {
			t.Errorf("frontier not sorted by IPC: %+v", pts)
		}
	}
}

func TestServerErrorPaths(t *testing.T) {
	e := NewEngine(1, 0)
	defer e.Close()
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	// Malformed and invalid grids: 400.
	for _, body := range []string{`{not json`, `{"models":["nope"],"workloads":["mcf"]}`, `{"models":["ino"],"workloads":["mcf"],"typo":1}`} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q = %d, want 400", body, resp.StatusCode)
		}
	}

	// Unknown job: 404 everywhere.
	for _, p := range []string{"/v1/sweeps/nope", "/v1/sweeps/nope/manifest", "/v1/sweeps/nope/pareto"} {
		getJSON(t, ts.URL+p, http.StatusNotFound, nil)
	}

	// Manifest/pareto before completion: 409. A hand-planted running job
	// keeps this deterministic (no race against the worker pool).
	job := &Job{ID: "sweep-running", state: StateRunning}
	e.mu.Lock()
	e.jobs[job.ID] = job
	e.mu.Unlock()
	getJSON(t, ts.URL+"/v1/sweeps/sweep-running/manifest", http.StatusConflict, nil)
	getJSON(t, ts.URL+"/v1/sweeps/sweep-running/pareto", http.StatusConflict, nil)
	getJSON(t, ts.URL+"/v1/sweeps/sweep-running", http.StatusOK, nil)
}

func TestServerRejectsWhenDraining(t *testing.T) {
	e := NewEngine(1, 0)
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()
	e.Close()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"models":["ino"],"workloads":["mcf"],"ops":1500,"warmup":300}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d (%s), want 503", resp.StatusCode, body)
	}
}

func TestSubmitResponseStatusURLRoundTrips(t *testing.T) {
	e := NewEngine(1, 0)
	defer e.Close()
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"models":["ino"],"workloads":["mcf"],"ops":1500,"warmup":300}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if want := fmt.Sprintf("/v1/sweeps/%s", sub.ID); sub.StatusURL != want {
		t.Errorf("status_url = %q, want %q", sub.StatusURL, want)
	}
	getJSON(t, ts.URL+sub.StatusURL, http.StatusOK, nil)
}
