package dse

import (
	"sync"

	"casino/internal/sim"
)

// ResultCache memoizes completed cell results keyed by the cell's
// spec+trace fingerprint (Cell.CacheKey), following the singleflight
// discipline of the sim trace cache: the first request for a key runs the
// simulation, every concurrent request for the same key blocks on that
// single run, and later requests hit the ready result. Overlapping or
// repeated sweeps therefore never simulate the same design point twice.
//
// Only successful results are cached: a failed cell is dropped so a
// transient failure does not pin a poisoned slot.
type ResultCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	tick    uint64
	max     int

	hits, misses uint64
}

type cacheEntry struct {
	ready   chan struct{}
	res     sim.Result
	err     error
	lastUse uint64
}

// DefaultResultCacheSize bounds the cache. A sweep cell's Result is a few
// KiB of flattened metrics, so thousands are cheap to keep resident.
const DefaultResultCacheSize = 4096

// NewResultCache returns a cache holding at most max completed results
// (max <= 0 means DefaultResultCacheSize).
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		max = DefaultResultCacheSize
	}
	return &ResultCache{entries: map[string]*cacheEntry{}, max: max}
}

// Do returns the cached result for key, or runs run() at most once per key
// to produce it. hit reports whether a simulation was avoided — the entry
// was already resident (completed or in flight from a concurrent sweep).
func (rc *ResultCache) Do(key string, run func() (sim.Result, error)) (res sim.Result, hit bool, err error) {
	rc.mu.Lock()
	rc.tick++
	if e, ok := rc.entries[key]; ok {
		e.lastUse = rc.tick
		rc.hits++
		rc.mu.Unlock()
		<-e.ready
		return e.res, true, e.err
	}
	e := &cacheEntry{ready: make(chan struct{}), lastUse: rc.tick}
	rc.evictLocked()
	rc.entries[key] = e
	rc.misses++
	rc.mu.Unlock()

	e.res, e.err = run()
	if e.err != nil {
		rc.mu.Lock()
		delete(rc.entries, key)
		rc.mu.Unlock()
	}
	close(e.ready)
	return e.res, false, e.err
}

// evictLocked drops least-recently-used completed entries until there is
// room for one more; in-flight runs are never evicted (their waiters hold
// the entry pointer).
func (rc *ResultCache) evictLocked() {
	for len(rc.entries) >= rc.max {
		var victim string
		var oldest uint64
		found := false
		for k, e := range rc.entries {
			select {
			case <-e.ready:
			default:
				continue
			}
			if !found || e.lastUse < oldest {
				victim, oldest, found = k, e.lastUse, true
			}
		}
		if !found {
			return
		}
		delete(rc.entries, victim)
	}
}

// Stats reports resident entries and cumulative hit/miss counts.
func (rc *ResultCache) Stats() (entries int, hits, misses uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.entries), rc.hits, rc.misses
}
