package slice

import "casino/internal/stats"

// PublishMetrics snapshots the core's counters and occupancy histograms
// into the registry. Scalar names match the legacy Result.Extra keys.
func (c *Core) PublishMetrics(r *stats.Registry) {
	r.Counter("mispredicts", c.Mispredicts())
	r.Counter("sliceOps", c.SliceOps)
	r.Counter("yieldedOps", c.YieldedOps)
	r.Counter("forwards", c.Forwards)
	r.Hist("occ.aq", c.OccAQ)
	r.Hist("occ.bq", c.OccBQ)
	if c.OccYQ != nil {
		r.Hist("occ.yq", c.OccYQ)
	}
	r.Hist("occ.window", c.OccWindow)
	r.Hist("occ.sb", c.OccSB)
	c.cpi.Publish(r)
}
