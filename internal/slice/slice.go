// Package slice implements the paper's slice-out-of-order comparison
// points (§VI-A2): the Load Slice Core (LSC) [Carlson et al., ISCA'15] and
// Freeway [Kumar et al., HPCA'19].
//
// Both extend a stall-on-use in-order core with parallel in-order queues.
// LSC learns backward address-generating slices with IBDA (an instruction
// slice table trained through a register dependence table) and issues them
// from a bypass queue (B-IQ) ahead of the main queue (A-IQ), overlapping
// cache misses. Freeway adds a yielding queue (Y-IQ) for slices dependent
// on older slices' loads, so the B-IQ never stalls on inter-slice
// dependences. Memory ordering is conservative (loads wait for older store
// addresses), so neither core ever violates — matching the papers.
package slice

import (
	"casino/internal/bpred"
	"casino/internal/energy"
	"casino/internal/eventq"
	"casino/internal/frontend"
	"casino/internal/isa"
	"casino/internal/lsu"
	"casino/internal/mem"
	"casino/internal/pipeline"
	"casino/internal/ptrace"
	"casino/internal/stats"
	"casino/internal/trace"
)

// Kind selects the LSC or Freeway variant.
type Kind uint8

// Variants.
const (
	LSC Kind = iota
	Freeway
)

func (k Kind) String() string {
	if k == LSC {
		return "LSC"
	}
	return "Freeway"
}

// Config holds slice-core parameters. The paper evaluates both with
// 32-entry IQs and unlimited other resources.
type Config struct {
	Kind       Kind
	Width      int
	AQSize     int // main in-order queue
	BQSize     int // bypass (slice) queue
	YQSize     int // yielding queue (Freeway only)
	WindowSize int // in-flight instruction window ("unlimited" = large)
	SBSize     int
	ISTSize    int // instruction slice table entries (IBDA)
	FrontDepth int
}

// DefaultConfig returns the §VI-A2 configuration for the given kind.
func DefaultConfig(kind Kind) Config {
	return Config{
		Kind: kind, Width: 2, AQSize: 32, BQSize: 32, YQSize: 32,
		WindowSize: 128, SBSize: 16, ISTSize: 2048, FrontDepth: 5,
	}
}

// entry is an in-flight instruction. Entries are pooled on a per-core
// freelist and recycled at commit, so the producer references prod1/prod2/
// waw are weak: they must be read through liveEnt with the captured
// sequence number, never dereferenced raw. A recycled producer had
// committed (issued, done <= commit cycle), so a stale reference reads as
// "complete" either way — liveEnt just makes that explicit and safe
// against reuse.
type entry struct {
	op       *isa.MicroOp
	issued   bool
	done     int64
	prod1    *entry // exact producer tracking (scoreboard stand-in)
	prod2    *entry
	waw      *entry // older writer of the same register, must issue first
	prodSeq1 uint64
	prodSeq2 uint64
	wawSeq   uint64
}

// liveEnt validates a weak producer reference: it returns p only if p still
// holds the op whose sequence number was captured alongside the pointer.
// A mismatch means the producer committed and its entry was recycled for a
// younger op — i.e. the producer is architecturally complete.
func liveEnt(p *entry, seq uint64) *entry {
	if p == nil || p.op.Seq != seq {
		return nil
	}
	return p
}

// Core is a slice-out-of-order core (LSC or Freeway).
type Core struct {
	cfg  Config
	now  int64
	fe   *frontend.FrontEnd
	hier *mem.Hierarchy
	fus  *pipeline.FUPool
	acct *energy.Accountant
	sb   *lsu.StoreQueue
	wq   *eventq.Queue // shared wakeup queue (event-driven clock)

	aq, bq, yq entRing
	window     entRing // program-ordered in-flight window (commit from head)
	stores     entRing // program-ordered in-flight (uncommitted) stores
	free       []*entry

	ist        map[uint64]bool         // instruction slice table: PCs in AG slices
	istOrder   []uint64                // FIFO eviction for the bounded IST
	rdt        [isa.NumArchRegs]uint64 // register dependence table: last writer PC
	lastWriter [isa.NumArchRegs]*entry

	committed uint64

	pt  *ptrace.Recorder // optional pipeline-event recorder (nil = off)
	cpi ptrace.CPI       // per-cycle stall attribution

	// OnCommit, when non-nil, observes each committed sequence number
	// (architectural-invariant checking in tests).
	OnCommit func(seq uint64)

	hAQ, hBQ, hYQ, hIST, hRDT, hSB, hSCB int

	// Statistics.
	SliceOps   uint64 // ops dispatched to the B-IQ (or Y-IQ)
	YieldedOps uint64 // ops dispatched to the Y-IQ (Freeway)
	Forwards   uint64

	// Per-structure occupancy histograms, sampled once per cycle.
	OccAQ     *stats.Hist
	OccBQ     *stats.Hist
	OccYQ     *stats.Hist // nil unless Freeway
	OccWindow *stats.Hist
	OccSB     *stats.Hist
}

// New builds a slice core over the trace.
func New(cfg Config, tr *trace.Trace, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	return NewAt(cfg, tr, 0, nil, hier, acct)
}

// NewAt builds a core whose frontend starts at trace position start with an
// injected (possibly pre-trained) branch predictor; pred == nil allocates a
// fresh one. The sampled-simulation driver uses it to open detailed windows
// mid-trace against warmed shared state.
func NewAt(cfg Config, tr *trace.Trace, start int, pred *bpred.Predictor, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	c := &Core{
		cfg:  cfg,
		hier: hier,
		fus:  pipeline.ScaledFUPool(cfg.Width),
		acct: acct,
		sb:   lsu.NewStoreQueue(cfg.SBSize),
		ist:  make(map[uint64]bool, cfg.ISTSize),
	}
	c.aq = newEntRing(cfg.AQSize)
	c.bq = newEntRing(cfg.BQSize)
	c.yq = newEntRing(cfg.YQSize)
	c.window = newEntRing(cfg.WindowSize)
	c.stores = newEntRing(cfg.WindowSize)
	c.OccAQ = stats.NewHist(cfg.AQSize + 1)
	c.OccBQ = stats.NewHist(cfg.BQSize + 1)
	if cfg.Kind == Freeway {
		c.OccYQ = stats.NewHist(cfg.YQSize + 1)
	}
	c.OccWindow = stats.NewHist(cfg.WindowSize + 1)
	c.OccSB = stats.NewHist(cfg.SBSize + 1)
	c.wq = eventq.New(2*(cfg.WindowSize+cfg.SBSize) + 16)
	c.fus.SetWakeQueue(c.wq)
	c.sb.SetWakeQueue(c.wq)
	hier.SetWakeQueue(c.wq)
	rd := tr.Reader()
	rd.Seek(start)
	if pred == nil {
		pred = bpred.NewPredictor()
	}
	c.fe = frontend.New(
		frontend.Config{Width: cfg.Width, Depth: cfg.FrontDepth, BufCap: 2 * cfg.Width},
		rd, pred, hier, acct)
	c.fe.SetWakeQueue(c.wq)
	c.hAQ = acct.Register(energy.Structure{Name: "A-IQ", Entries: cfg.AQSize, Bits: 64, Ports: 2 * cfg.Width})
	c.hBQ = acct.Register(energy.Structure{Name: "B-IQ", Entries: cfg.BQSize, Bits: 64, Ports: 2 * cfg.Width})
	if cfg.Kind == Freeway {
		c.hYQ = acct.Register(energy.Structure{Name: "Y-IQ", Entries: cfg.YQSize, Bits: 64, Ports: 2 * cfg.Width})
	} else {
		c.hYQ = -1
	}
	c.hIST = acct.Register(energy.Structure{Name: "IST", Entries: cfg.ISTSize, Bits: 2, Ports: 2 * cfg.Width})
	c.hRDT = acct.Register(energy.Structure{Name: "RDT", Entries: isa.NumArchRegs, Bits: 32, Ports: 2 * cfg.Width})
	c.hSB = acct.Register(energy.Structure{Name: "SB", Entries: cfg.SBSize, Bits: 112, Ports: 2, CAM: true, TagBits: 40})
	c.hSCB = acct.Register(energy.Structure{Name: "SCB", Entries: isa.NumArchRegs, Bits: 12, Ports: 3 * cfg.Width})
	return c
}

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Committed returns committed op count.
func (c *Core) Committed() uint64 { return c.committed }

// Mispredicts returns front-end mispredict count.
func (c *Core) Mispredicts() uint64 { return c.fe.Mispredicts }

// Done reports pipeline drain.
func (c *Core) Done() bool {
	return c.fe.Done() && c.window.len() == 0 && c.sb.Len() == 0
}

// alloc takes an entry from the freelist (or the heap) and resets it.
func (c *Core) alloc(op *isa.MicroOp) *entry {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free = c.free[:n-1]
		*e = entry{op: op}
		return e
	}
	return &entry{op: op}
}

// recycle returns a committed entry to the freelist. The op pointer is
// intentionally kept until reuse so stale weak references can still
// compare sequence numbers (see liveEnt).
func (c *Core) recycle(e *entry) { c.free = append(c.free, e) }

// Cycle advances one clock.
func (c *Core) Cycle() {
	now := c.now
	committed0 := c.committed
	c.wq.Drain(now)
	c.OccAQ.Add(c.aq.len())
	c.OccBQ.Add(c.bq.len())
	if c.OccYQ != nil {
		c.OccYQ.Add(c.yq.len())
	}
	c.OccWindow.Add(c.window.len())
	c.OccSB.Add(c.sb.Len())
	c.retireStores(now)
	c.commit(now)
	c.issue(now)
	c.dispatch()
	c.fe.Cycle(now)
	c.tickCPI(now, committed0)
	c.now++
	c.acct.Cycles++
}

func (c *Core) retireStores(now int64) {
	if c.sb.HeadRetirable(now) {
		e := c.sb.Head()
		done := c.hier.Store(e.PC, e.Addr, now)
		c.acct.L1Access++
		c.sb.StartRetire(done)
	}
	c.sb.PopRetired(now)
}

// commit retires completed instructions in program order and recycles
// their entries onto the freelist.
func (c *Core) commit(now int64) {
	for k := 0; k < c.cfg.Width && c.window.len() > 0; k++ {
		e := c.window.at(0)
		if !e.issued || e.done > now {
			return
		}
		op := e.op
		if op.Class == isa.Store {
			if c.sb.Full() {
				return
			}
			c.sb.Dispatch(op.Seq, op.PC)
			c.sb.Resolve(op.Seq, op.Addr, op.Size, now, e.done)
			c.sb.Commit(op.Seq)
			c.acct.Inc(c.hSB, energy.Write, 1)
			c.stores.popFront() // commit is in order, so e is the oldest store
		}
		if c.OnCommit != nil {
			c.OnCommit(op.Seq)
		}
		c.emit(now, op.Seq, ptrace.KindCommit)
		c.window.popFront()
		c.committed++
		// A committed producer reads as complete either way; dropping the
		// lastWriter reference here keeps the table pointing only at
		// in-flight entries so the freelist can reuse this one.
		if op.HasDst() && c.lastWriter[op.Dst] == e {
			c.lastWriter[op.Dst] = nil
		}
		c.recycle(e)
	}
}

// issue serves the queues head-in-order: B-IQ first (slices are critical),
// then Y-IQ, then A-IQ.
func (c *Core) issue(now int64) {
	slots := c.cfg.Width
	c.issueQueue(&c.bq, c.hBQ, now, &slots)
	if c.cfg.Kind == Freeway {
		c.issueQueue(&c.yq, c.hYQ, now, &slots)
	}
	c.issueQueue(&c.aq, c.hAQ, now, &slots)
}

func (c *Core) issueQueue(q *entRing, handle int, now int64, slots *int) {
	for *slots > 0 && q.len() > 0 {
		e := q.at(0)
		if !c.ready(e, now) {
			return
		}
		if !c.fus.Issue(e.op.Class, now) {
			return
		}
		q.popFront()
		c.acct.Inc(handle, energy.Read, 1)
		c.execute(e, now)
		if c.pt != nil {
			k := ptrace.KindIssueSpec // B-IQ/Y-IQ run ahead of the A-IQ
			if q == &c.aq {
				k = ptrace.KindIssue
			}
			c.emit(now, e.op.Seq, k)
			c.emit(e.done, e.op.Seq, ptrace.KindComplete)
		}
		*slots--
	}
}

func (c *Core) ready(e *entry, now int64) bool {
	c.acct.Inc(c.hSCB, energy.Read, 1)
	if p := liveEnt(e.prod1, e.prodSeq1); p != nil && (!p.issued || p.done > now) {
		return false
	}
	if p := liveEnt(e.prod2, e.prodSeq2); p != nil && (!p.issued || p.done > now) {
		return false
	}
	if p := liveEnt(e.waw, e.wawSeq); p != nil && (!p.issued || p.done > now) {
		return false
	}
	if e.op.Class == isa.Load {
		// Conservative memory ordering: wait for all older stores to
		// resolve (slice cores never speculate on memory order).
		if c.anyOlderUnresolvedStore(e) {
			return false
		}
	}
	return true
}

func (c *Core) anyOlderUnresolvedStore(e *entry) bool {
	// The stores ring holds exactly the uncommitted stores in program
	// order, so this scan touches only stores instead of the whole window.
	for i := 0; i < c.stores.len(); i++ {
		w := c.stores.at(i)
		if w.op.Seq >= e.op.Seq {
			return false
		}
		if !w.issued || w.done > c.now {
			return true
		}
	}
	return false
}

func (c *Core) execute(e *entry, now int64) {
	op := e.op
	e.issued = true
	c.countFU(op.Class)
	switch op.Class {
	case isa.Load:
		agu := now + int64(op.Class.ExecLatency())
		c.acct.Inc(c.hSB, energy.Search, 1)
		if c.forwardFromStores(op) {
			c.Forwards++
			e.done = agu + int64(c.hier.Config().L1Latency)
		} else {
			done, _ := c.hier.Load(op.PC, op.Addr, agu)
			c.acct.L1Access++
			e.done = done
		}
	case isa.Branch:
		e.done = now + int64(op.Class.ExecLatency())
		c.fe.BranchResolved(op.Seq, e.done)
	default:
		e.done = now + int64(op.Class.ExecLatency())
	}
	// A completion next cycle needs no wakeup: this issue already makes the
	// current cycle non-idle, so no jump can start before the effect lands.
	if e.done > now+1 {
		c.wq.Wake(e.done)
	}
}

func (c *Core) forwardFromStores(op *isa.MicroOp) bool {
	for i := 0; i < c.stores.len(); i++ {
		w := c.stores.at(i)
		if w.op.Seq >= op.Seq {
			break
		}
		if w.issued && w.op.Overlaps(op) {
			return true
		}
	}
	res := c.sb.SearchForLoad(op.Seq, op.Addr, op.Size, false)
	return res.Forward != nil
}

func (c *Core) countFU(class isa.Class) {
	switch class.FU() {
	case isa.FUFP:
		c.acct.FPOps++
	case isa.FUAGU:
		c.acct.AGUOps++
	default:
		c.acct.IntOps++
	}
}

// dispatch steers decoded ops: IBDA marks backward address-generating
// slices; marked ops and memory ops go to the B-IQ (or, in Freeway, to the
// Y-IQ when dependent on an older slice's in-flight load), others to the
// A-IQ.
func (c *Core) dispatch() {
	for k := 0; k < c.cfg.Width; k++ {
		op := c.fe.Peek(0)
		if op == nil {
			return
		}
		if c.window.len() >= c.window.cap() {
			return
		}
		isSlice := op.Class.IsMem() || c.ist[op.PC]
		c.acct.Inc(c.hIST, energy.Read, 1)
		target := &c.aq
		handle := c.hAQ
		if isSlice {
			target, handle = &c.bq, c.hBQ
		}
		// Producers are captured before the entry is materialised so a
		// capacity stall below does not consume a pooled entry. lastWriter
		// only holds in-flight entries (commit clears it), so the captured
		// pointers are live here.
		var p1, p2 *entry
		if op.Src1.Valid() {
			p1 = c.lastWriter[op.Src1]
		}
		if op.Src2.Valid() {
			p2 = c.lastWriter[op.Src2]
		}
		if isSlice && c.cfg.Kind == Freeway && c.dependsOnInFlightSliceLoad(p1, p2) {
			target, handle = &c.yq, c.hYQ
		}
		if target.len() >= target.cap() {
			return
		}
		c.fe.Pop()
		e := c.alloc(op)
		if p1 != nil {
			e.prod1, e.prodSeq1 = p1, p1.op.Seq
		}
		if p2 != nil {
			e.prod2, e.prodSeq2 = p2, p2.op.Seq
		}
		// IBDA training: mark the producers of this slice op's sources.
		if isSlice {
			c.SliceOps++
			if target == &c.yq {
				c.YieldedOps++
			}
			c.trainIBDA(op)
		}
		if op.HasDst() {
			if w := c.lastWriter[op.Dst]; w != nil {
				e.waw, e.wawSeq = w, w.op.Seq
			}
			c.lastWriter[op.Dst] = e
			c.rdt[op.Dst] = op.PC
			c.acct.Inc(c.hRDT, energy.Write, 1)
		}
		target.pushBack(e)
		c.window.pushBack(e)
		c.emit(c.now, op.Seq, ptrace.KindDispatch)
		if op.Class == isa.Store {
			c.stores.pushBack(e)
		}
		c.acct.Inc(handle, energy.Write, 1)
	}
}

// dependsOnInFlightSliceLoad implements Freeway's dependent-slice test:
// the op consumes a value produced by a load that has not completed.
func (c *Core) dependsOnInFlightSliceLoad(p1, p2 *entry) bool {
	for _, p := range [...]*entry{p1, p2} {
		if p == nil {
			continue
		}
		if p.op.Class == isa.Load && (!p.issued || p.done > c.now) {
			return true
		}
	}
	return false
}

// trainIBDA marks the producers of a slice instruction's source registers
// in the IST (one backward level per encounter — the "iterative" part).
func (c *Core) trainIBDA(op *isa.MicroOp) {
	for _, s := range [...]isa.Reg{op.Src1, op.Src2} {
		if !s.Valid() {
			continue
		}
		pc := c.rdt[s]
		c.acct.Inc(c.hRDT, energy.Read, 1)
		if pc == 0 || c.ist[pc] {
			continue
		}
		if len(c.ist) >= c.cfg.ISTSize {
			old := c.istOrder[0]
			c.istOrder = c.istOrder[1:]
			delete(c.ist, old)
		}
		c.ist[pc] = true
		c.istOrder = append(c.istOrder, pc)
		c.acct.Inc(c.hIST, energy.Write, 1)
	}
}

// SetPipeTrace installs (or removes, with nil) a pipeline-event recorder.
// The front end shares the recorder so fetch events join the same stream.
func (c *Core) SetPipeTrace(rec *ptrace.Recorder) {
	c.pt = rec
	c.fe.SetPipeTrace(rec)
}

// CPIStack exposes the per-cycle stall attribution accumulated so far.
func (c *Core) CPIStack() *ptrace.CPI { return &c.cpi }

// Recycle returns pooled resources (the branch predictor) at end of run.
// The core must not be cycled afterwards.
func (c *Core) Recycle() { c.fe.RecyclePredictor() }

func (c *Core) emit(cycle int64, seq uint64, k ptrace.Kind) {
	if c.pt != nil {
		c.pt.Emit(ptrace.Event{Cycle: cycle, Seq: seq, Kind: k})
	}
}

// tickCPI attributes the cycle that just executed to exactly one CPI bucket
// and, when a recorder is active, publishes non-base cycles as stall events
// tagged with the culprit instruction. Classification is side-effect-free:
// it must not call ready(), which charges a scoreboard read per invocation.
func (c *Core) tickCPI(now int64, committed0 uint64) {
	b, seq := c.classifyCycle(now, committed0)
	c.cpi.Add(b)
	if c.pt != nil && b != ptrace.BucketBase {
		c.pt.Emit(ptrace.Event{Cycle: now, Seq: seq, Kind: ptrace.KindStall, Stall: b})
	}
}

// entPending reports whether a weak producer reference still blocks issue
// at cycle now — the pure mirror of one clause of ready().
func entPending(p *entry, seq uint64, now int64) bool {
	q := liveEnt(p, seq)
	return q != nil && (!q.issued || q.done > now)
}

// classifyCycle decides the cycle's CPI bucket: base if anything committed,
// otherwise the reason the oldest in-flight instruction (the commit
// bottleneck) has not retired. The window head is always the head of
// whichever queue holds it — queues fill and drain in program order among
// their members — so head-of-queue reasoning applies directly.
func (c *Core) classifyCycle(now int64, committed0 uint64) (ptrace.Bucket, uint64) {
	if c.committed > committed0 {
		return ptrace.BucketBase, 0
	}
	if c.window.len() > 0 {
		e := c.window.at(0)
		if e.issued {
			if e.done > now {
				if e.op.Class.IsMem() {
					return ptrace.BucketDCache, e.op.Seq
				}
				return ptrace.BucketExec, e.op.Seq
			}
			// Done but uncommitted: a store waiting on a full store buffer
			// (the only commit-side resource a slice core can run out of).
			return ptrace.BucketROBSQ, e.op.Seq
		}
		if entPending(e.prod1, e.prodSeq1, now) ||
			entPending(e.prod2, e.prodSeq2, now) ||
			entPending(e.waw, e.wawSeq, now) {
			return ptrace.BucketSrc, e.op.Seq
		}
		if e.op.Class == isa.Load && c.anyOlderUnresolvedStore(e) {
			// Conservative memory ordering: charged to the memory system,
			// since the wait exists only because the core cannot disambiguate.
			return ptrace.BucketDCache, e.op.Seq
		}
		return ptrace.BucketFU, e.op.Seq
	}
	if !c.fe.Done() {
		return ptrace.BucketICache, 0
	}
	return ptrace.BucketDrain, 0
}
