package slice

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/ino"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/trace"
	"casino/internal/workload"
)

func runCore(t *testing.T, kind Kind, tr *trace.Trace) *Core {
	t.Helper()
	c := New(DefaultConfig(kind), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 50_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatalf("%v livelocked: committed=%d", kind, c.Committed())
	}
	return c
}

func TestAllOpsCommitBothKinds(t *testing.T) {
	p, _ := workload.ByName("gcc")
	tr := workload.Generate(p, 10000, 1)
	for _, kind := range []Kind{LSC, Freeway} {
		c := runCore(t, kind, tr)
		if c.Committed() != uint64(tr.Len()) {
			t.Errorf("%v: committed %d of %d", kind, c.Committed(), tr.Len())
		}
	}
}

func TestIBDAMarksSlices(t *testing.T) {
	p, _ := workload.ByName("mcf")
	tr := workload.Generate(p, 20000, 1)
	c := runCore(t, LSC, tr)
	if c.SliceOps == 0 {
		t.Error("no ops steered to the B-IQ")
	}
	if len(c.ist) == 0 {
		t.Error("IST never trained")
	}
	// Address-generating producers (non-memory ops) must eventually be
	// marked: the IST should contain more PCs than just memory ops touch.
	if c.SliceOps >= c.Committed() {
		t.Error("everything became a slice — IBDA too aggressive")
	}
}

func TestFreewayUsesYQueue(t *testing.T) {
	p, _ := workload.ByName("mcf") // dependent slices: chase chains
	tr := workload.Generate(p, 20000, 1)
	c := runCore(t, Freeway, tr)
	if c.YieldedOps == 0 {
		t.Error("Freeway never used the Y-IQ on a pointer-chase workload")
	}
}

func TestSliceCoresBetweenInOAndUnbounded(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	// On an MLP-rich workload: InO <= LSC <= Freeway (Freeway fixes LSC's
	// inter-slice stalls; both must beat InO).
	p, _ := workload.ByName("mcf")
	tr := workload.Generate(p, 30000, 1)
	ic := ino.New(ino.DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 50_000_000 && !ic.Done(); i++ {
		ic.Cycle()
	}
	inoIPC := float64(ic.Committed()) / float64(ic.Now())
	lsc := runCore(t, LSC, tr)
	lscIPC := float64(lsc.Committed()) / float64(lsc.Now())
	fw := runCore(t, Freeway, tr)
	fwIPC := float64(fw.Committed()) / float64(fw.Now())
	if lscIPC < inoIPC {
		t.Errorf("LSC IPC %.3f < InO %.3f", lscIPC, inoIPC)
	}
	if fwIPC < lscIPC {
		t.Errorf("Freeway IPC %.3f < LSC %.3f", fwIPC, lscIPC)
	}
}

func TestNoViolationsEver(t *testing.T) {
	// Slice cores order memory conservatively: the store buffer must never
	// observe a violation.
	p, _ := workload.ByName("h264ref")
	tr := workload.Generate(p, 20000, 1)
	c := runCore(t, LSC, tr)
	if c.sb.ViolationsSeen != 0 {
		t.Errorf("LSC saw %d violations", c.sb.ViolationsSeen)
	}
}

func TestSliceLoadsBypassMainQueueStalls(t *testing.T) {
	// Craft: long FP chain (A-IQ) followed by an independent load; the
	// load must issue early from the B-IQ.
	var ops []isa.MicroOp
	for i := 0; i < 10; i++ {
		ops = append(ops, isa.MicroOp{Class: isa.FPDiv, Dst: isa.FPReg(0), Src1: isa.FPReg(0), Src2: isa.RegNone})
	}
	ops = append(ops, isa.MicroOp{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.IntReg(2), Src2: isa.RegNone, Addr: 1 << 30, Size: 8})
	for i := range ops {
		ops[i].Seq = uint64(i)
		ops[i].PC = 0x1000 + uint64(i)*4
	}
	tr := &trace.Trace{Name: "micro", Ops: ops}
	hier := mem.NewHierarchy(mem.DefaultConfig())
	for i := range ops {
		hier.Fetch(ops[i].PC, 0)
	}
	c := New(DefaultConfig(LSC), tr, hier, energy.NewAccountant())
	for i := 0; i < 1_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatal("livelock")
	}
	// 10 serial FP divides = ~120 cycles; the load (250+ cycles if started
	// late) must overlap them: total well under serial sum.
	if c.Now() > 400 {
		t.Errorf("load did not bypass the FP chain: %d cycles", c.Now())
	}
	if c.SliceOps == 0 {
		t.Error("load not classified as slice op")
	}
}
