package slice

// entRing is a fixed-capacity FIFO of entry pointers. The slice core's
// queues (A/B/Y-IQ), the in-flight window and the in-flight store list all
// push at the tail and pop at the head, so a ring avoids the re-slicing
// and append-regrowth churn of a plain []*entry on the cycle path.
type entRing struct {
	buf  []*entry
	head int
	n    int
}

func newEntRing(capacity int) entRing { return entRing{buf: make([]*entry, capacity)} }

func (r *entRing) len() int { return r.n }

func (r *entRing) cap() int { return len(r.buf) }

// at returns the i-th oldest entry. head+i < 2*cap always holds, so a
// compare-and-subtract replaces the integer division of a modulo.
func (r *entRing) at(i int) *entry {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

func (r *entRing) pushBack(e *entry) {
	if r.n == len(r.buf) {
		panic("slice: ring overflow")
	}
	j := r.head + r.n
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	r.buf[j] = e
	r.n++
}

func (r *entRing) popFront() *entry {
	e := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return e
}
