package slice

import (
	"casino/internal/eventq"
	"casino/internal/isa"
)

// noEvent mirrors lsu.NoEvent: no progress through the passage of time.
const noEvent = int64(1) << 62

// NextWake returns the earliest cycle >= now at which the core might make
// progress, driving the event-driven clock. The pre-check mirrors the
// dispatch steering read-only (Freeway's Y-IQ decision included) plus fetch;
// every timed event — producer completions that unblock a queue head or
// re-steer a dispatch, FU busy-until slots, SB retirement, stall expiries —
// was registered on the shared queue when its time was stored.
func (c *Core) NextWake() int64 {
	now := c.now
	if op := c.fe.Peek(0); op != nil && c.window.len() < c.window.cap() {
		target := &c.aq
		if op.Class.IsMem() || c.ist[op.PC] {
			target = &c.bq
			if c.cfg.Kind == Freeway {
				var p1, p2 *entry
				if op.Src1.Valid() {
					p1 = c.lastWriter[op.Src1]
				}
				if op.Src2.Valid() {
					p2 = c.lastWriter[op.Src2]
				}
				if c.dependsOnInFlightSliceLoad(p1, p2) {
					target = &c.yq
				}
			}
		}
		if target.len() < target.cap() {
			return now
		}
	}
	if c.fe.NextFetchEvent(now) <= now {
		return now
	}
	return c.wq.Horizon(now)
}

// WakeStats exposes the shared wakeup queue's activity counters.
func (c *Core) WakeStats() eventq.Stats { return c.wq.Stats() }

// ProgressSignature folds the fast-forward progress signature into one
// value for the sim package's property tests.
func (c *Core) ProgressSignature() uint64 {
	// FNV-1a chained by hand: this runs on every commit-free cycle, so it
	// must not materialize an array (stack copies) per call.
	const p = 1099511628211
	s := c.ffSig()
	h := uint64(1469598103934665603)
	h = (h ^ s.committed) * p
	h = (h ^ s.fetched) * p
	h = (h ^ s.issued) * p
	h = (h ^ s.l1) * p
	h = (h ^ uint64(s.window)) * p
	h = (h ^ uint64(s.aq)) * p
	h = (h ^ uint64(s.bq)) * p
	h = (h ^ uint64(s.yq)) * p
	h = (h ^ uint64(s.sb)) * p
	h = (h ^ uint64(s.buf)) * p
	return h
}

// NextEvent returns the earliest cycle >= now at which Cycle() could change
// observable state. The slice queues issue head-in-order, so only each
// queue's head can act; a head blocked on an *unissued* producer (or a load
// behind an unissued older store) contributes no time — that producer's own
// issue is a separate tracked event that must come first, and the probe
// reruns then. Dispatch needs care: Freeway's Y-IQ steering decision
// depends on whether a producing load is still in flight, so when dispatch
// is blocked on a full target queue, the load-completion times that could
// re-steer the op are events too.
func (c *Core) NextEvent() int64 {
	now := c.now
	next := noEvent
	add := func(t int64) {
		if t > now && t < next {
			next = t
		}
	}

	// Store-buffer retirement.
	if t := c.sb.RetireEvent(now); t <= now {
		return now
	} else {
		add(t)
	}

	// Commit from the window head.
	if c.window.len() > 0 {
		e := c.window.at(0)
		if e.issued {
			if e.done > now {
				add(e.done)
			} else if e.op.Class != isa.Store || !c.sb.Full() {
				return now // commit proceeds this cycle
			}
			// Store blocked on a full SB: the SB retire event covers it.
		}
		// Unissued head: its issue is covered by the queue probes below.
	}

	// Issue: each queue's head, in the same order issue() serves them.
	queues := [...]*entRing{&c.bq, &c.yq, &c.aq}
	for _, q := range queues {
		if q == &c.yq && c.cfg.Kind != Freeway {
			continue
		}
		if t := c.queueHeadEvent(q, now); t <= now {
			return now // this head issues this cycle
		} else {
			add(t)
		}
	}

	// Dispatch: mirror the steering decision read-only.
	if op := c.fe.Peek(0); op != nil && c.window.len() < c.window.cap() {
		isSlice := op.Class.IsMem() || c.ist[op.PC]
		var p1, p2 *entry
		if op.Src1.Valid() {
			p1 = c.lastWriter[op.Src1]
		}
		if op.Src2.Valid() {
			p2 = c.lastWriter[op.Src2]
		}
		target := &c.aq
		if isSlice {
			target = &c.bq
			if c.cfg.Kind == Freeway && c.dependsOnInFlightSliceLoad(p1, p2) {
				target = &c.yq
			}
		}
		if target.len() < target.cap() {
			return now // dispatch proceeds this cycle
		}
		// Target full. The queue drains via its head (covered above), but a
		// producing load's completion can also flip the Y-IQ steering.
		if isSlice && c.cfg.Kind == Freeway {
			for _, p := range [...]*entry{p1, p2} {
				if p != nil && p.op.Class == isa.Load && p.issued && p.done > now {
					add(p.done)
				}
			}
		}
	}

	// Fetch.
	if t := c.fe.NextFetchEvent(now); t <= now {
		return now
	} else {
		add(t)
	}
	return next
}

// queueHeadEvent returns the head's earliest possible issue time: now if it
// issues this cycle, a future cycle when blocked on completions or a busy
// FU, or noEvent when the head is blocked on another instruction's issue
// (that instruction's own issue is a separate tracked event).
func (c *Core) queueHeadEvent(q *entRing, now int64) int64 {
	if q.len() == 0 {
		return noEvent
	}
	e := q.at(0)
	var t int64 // max over producer completion times
	for _, dep := range [...]struct {
		p   *entry
		seq uint64
	}{{e.prod1, e.prodSeq1}, {e.prod2, e.prodSeq2}, {e.waw, e.wawSeq}} {
		p := liveEnt(dep.p, dep.seq)
		if p == nil {
			continue
		}
		if !p.issued {
			return noEvent // blocked on a producer's issue: that event comes first
		}
		if p.done > t {
			t = p.done
		}
	}
	if e.op.Class == isa.Load {
		for i := 0; i < c.stores.len(); i++ {
			w := c.stores.at(i)
			if w.op.Seq >= e.op.Seq {
				break
			}
			if !w.issued {
				return noEvent // conservative ordering behind an unissued store
			}
			if w.done > t {
				t = w.done
			}
		}
	}
	if t > now {
		return t
	}
	return c.fus.NextFree(e.op.Class, now) // now when a unit is free
}

// ffSig is the cheap progress signature guarding FastForward.
type ffSig struct {
	committed, fetched, issued, l1 uint64
	window, aq, bq, yq, sb, buf    int
}

func (c *Core) ffSig() ffSig {
	return ffSig{
		committed: c.committed,
		fetched:   c.fe.Fetched,
		issued:    c.fus.IssuedTotal(),
		l1:        c.acct.L1Access,
		window:    c.window.len(),
		aq:        c.aq.len(),
		bq:        c.bq.len(),
		yq:        c.yq.len(),
		sb:        c.sb.Len(),
		buf:       c.fe.BufLen(),
	}
}

// FastForward runs one real Cycle() and, if that cycle turned out idle,
// jumps the clock toward `to`: the embedded cycle supplies the exact
// idle-cycle accounting (including the per-queue scoreboard reads and the
// IST read a dispatch-blocked cycle charges), and its deltas are replayed
// in bulk for the skipped cycles. Returns false when the embedded cycle
// changed observable state — it stands as a normal cycle and nothing was
// skipped. The jump target is re-clamped by the queue's post-cycle horizon,
// which sees any wakeup the embedded cycle itself registered.
func (c *Core) FastForward(to int64) bool {
	sig := c.ffSig()
	c.acct.BeginDelta()
	sbReads0 := c.sb.Reads
	cpi0 := c.cpi
	c.Cycle()
	if c.ffSig() != sig {
		return false
	}
	if h := c.wq.Horizon(c.now); h < to {
		to = h
	}
	n := to - c.now
	if n <= 0 {
		return true
	}
	un := uint64(n)
	c.acct.ScaleDelta(un)
	c.sb.Reads += (c.sb.Reads - sbReads0) * un
	c.cpi.ScaleDelta(&cpi0, un)
	c.OccAQ.AddN(c.aq.len(), un)
	c.OccBQ.AddN(c.bq.len(), un)
	if c.OccYQ != nil {
		c.OccYQ.AddN(c.yq.len(), un)
	}
	c.OccWindow.AddN(c.window.len(), un)
	c.OccSB.AddN(c.sb.Len(), un)
	c.now += n
	return true
}
