package manifest

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sample() *Manifest {
	m := New("fig6")
	m.Ops, m.Warmup, m.Seed = 60000, 15000, 1
	m.Apps = []string{"mcf", "milc"}
	m.Workloads["mcf"] = "00deadbeef00cafe"
	m.Workloads["milc"] = "0123456789abcdef"
	m.Metrics["fig6.norm_ipc_geomean.CASINO"] = 1.384
	m.Metrics["fig6.norm_ipc_geomean.OoO"] = 1.707
	m.WallSeconds = 12.5
	m.AllocBytes = 1 << 20
	m.GoVersion = "go1.24.0"
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	m := sample()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, m)
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	m := sample()
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatal("file round trip mismatch")
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	for _, v := range []string{"0", "2", "999"} {
		in := `{"version": ` + v + `, "kind": "casino-bench/figures", "figure": "fig6"}`
		_, err := Decode(strings.NewReader(in))
		var ve *VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("version %s: err = %v, want *VersionError", v, err)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage input should fail to decode")
	}
}

func TestDecodeFillsNilMaps(t *testing.T) {
	in := `{"version": 1, "kind": "casino-bench/figures", "figure": "fig6"}`
	m, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics == nil || m.Workloads == nil {
		t.Fatal("decoded manifest must have non-nil maps")
	}
}
