// Package manifest defines the versioned, machine-readable record of one
// experiment run: which figures ran, under what spec (ops, warm-up, seed,
// apps), the fingerprints of the workload traces that were replayed, and
// every metric the run produced as a flat name → value map. Checked-in
// golden manifests turn the paper-reproduction numbers in EXPERIMENTS.md
// into executable assertions: `casino-bench compare` diffs two manifests
// with per-metric tolerance bands and exits non-zero on drift.
package manifest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Version is the manifest schema version. Decode rejects any other value:
// a version bump means the metric naming or spec encoding changed, and a
// silent cross-version comparison would report drift where there is only
// renaming.
const Version = 1

// Manifest is the machine-readable outcome of one casino-bench run.
type Manifest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"` // "casino-bench/figures"

	// The experiment spec: which figure set, over which workloads, how
	// many instructions and which generation seed. Compare requires these
	// to match exactly — diffing runs of different experiments is a
	// category error, not drift.
	Figure string   `json:"figure"` // figure id, or "all"
	Ops    int      `json:"ops"`
	Warmup int      `json:"warmup"`
	Seed   int64    `json:"seed"`
	Apps   []string `json:"apps"`

	// Workloads maps app name → the %016x FNV-1a fingerprint of its
	// generated trace. A fingerprint mismatch means the workload
	// generator changed: every downstream metric is then incomparable.
	Workloads map[string]string `json:"workload_fingerprints"`

	// Metrics is the flat registry snapshot: figure aggregates (geomean
	// speedups, energy ratios) plus per-model means of the per-run
	// metrics. All drift gating happens here.
	Metrics map[string]float64 `json:"metrics"`

	// Cells is the provenance of multi-cell (sweep) manifests: one entry
	// per simulated design point, sorted by Key, each naming the cell and
	// the spec/trace fingerprints its metrics were produced under. Figure
	// manifests leave it empty. Compare checks cells exactly — a sweep
	// whose cell set or fingerprints moved is a different experiment.
	Cells []Cell `json:"cells,omitempty"`

	// Informational environment fields, never compared.
	WallSeconds float64 `json:"wall_seconds"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	GoVersion   string  `json:"go_version"`
}

// KindFigures is the Kind value written by casino-bench figure runs.
const KindFigures = "casino-bench/figures"

// KindSweep is the Kind value written by DSE sweep runs (the casino-server
// service and `casino-bench sweep`).
const KindSweep = "casino-dse/sweep"

// Cell records the provenance of one sweep design point: its stable key
// (workload/model plus the parameter overrides), and the %016x FNV-1a
// fingerprints of the resolved spec and of the replayed workload trace.
type Cell struct {
	Key      string `json:"key"`
	Model    string `json:"model"`
	Workload string `json:"workload"`
	SpecFP   string `json:"spec_fingerprint"`
	TraceFP  string `json:"trace_fingerprint"`
}

// New returns an empty manifest at the current schema version.
func New(figure string) *Manifest {
	return &Manifest{
		Version:   Version,
		Kind:      KindFigures,
		Figure:    figure,
		Workloads: map[string]string{},
		Metrics:   map[string]float64{},
	}
}

// VersionError reports a manifest whose schema version this binary does
// not speak.
type VersionError struct {
	Got int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("manifest: version %d not supported (want %d)", e.Got, Version)
}

// Decode reads a manifest from r, rejecting unknown schema versions with
// a *VersionError.
func Decode(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("manifest: decode: %w", err)
	}
	if m.Version != Version {
		return nil, &VersionError{Got: m.Version}
	}
	if m.Metrics == nil {
		m.Metrics = map[string]float64{}
	}
	if m.Workloads == nil {
		m.Workloads = map[string]string{}
	}
	return &m, nil
}

// Encode writes the manifest as indented JSON (sorted keys, trailing
// newline) so checked-in goldens diff cleanly.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadFile loads a manifest from path.
func ReadFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
