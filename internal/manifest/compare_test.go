package manifest

import (
	"strings"
	"testing"
)

func pair() (*Manifest, *Manifest) {
	g := sample()
	c := sample()
	return g, c
}

func kinds(diffs []Diff) map[string]int {
	out := map[string]int{}
	for _, d := range diffs {
		out[d.Kind]++
	}
	return out
}

func TestCompareIdentical(t *testing.T) {
	g, c := pair()
	if diffs := Compare(g, c, CompareOptions{}); len(diffs) != 0 {
		t.Fatalf("identical manifests diff: %v", diffs)
	}
}

func TestToleranceBoundaries(t *testing.T) {
	// Binary-representable bands so the inclusive boundary is exact.
	tol := Tolerance{Rel: 0.25, Abs: 0.015625}
	cases := []struct {
		want, got float64
		ok        bool
	}{
		{1.0, 1.0, true},
		{1.0, 1.25, true},       // exactly at the relative band edge: inclusive
		{1.0, 1.2500001, false}, // just past it
		{1.0, 0.75, true},
		{1.0, 0.7499999, false},
		{0.0, 0.015625, true}, // absolute floor covers want == 0
		{0.0, 0.03, false},    // past the floor
		{-2.0, -2.5, true},
		{-2.0, -2.5000001, false},
	}
	for _, tc := range cases {
		if got := tol.Allows(tc.want, tc.got); got != tc.ok {
			t.Errorf("Allows(%g, %g) = %v, want %v", tc.want, tc.got, got, tc.ok)
		}
	}
}

func TestCompareDriftIsNamed(t *testing.T) {
	g, c := pair()
	c.Metrics["fig6.norm_ipc_geomean.CASINO"] = 1.2 // well outside 0.1%
	diffs := Compare(g, c, CompareOptions{})
	if len(diffs) != 1 || diffs[0].Kind != DiffDrift {
		t.Fatalf("diffs = %v, want one drift", diffs)
	}
	if diffs[0].Metric != "fig6.norm_ipc_geomean.CASINO" {
		t.Fatalf("drift metric = %q, want the perturbed name", diffs[0].Metric)
	}
	if !strings.Contains(diffs[0].String(), "fig6.norm_ipc_geomean.CASINO") {
		t.Fatalf("rendered diff must name the metric: %s", diffs[0])
	}
}

func TestCompareWithinDefaultTolerance(t *testing.T) {
	g, c := pair()
	c.Metrics["fig6.norm_ipc_geomean.CASINO"] *= 1.0005 // 0.05% < 0.1%
	if diffs := Compare(g, c, CompareOptions{}); len(diffs) != 0 {
		t.Fatalf("sub-tolerance delta flagged: %v", diffs)
	}
}

func TestComparePerMetricOverride(t *testing.T) {
	g, c := pair()
	c.Metrics["fig6.norm_ipc_geomean.CASINO"] = 1.39 // ~0.4% off
	opt := CompareOptions{PerMetric: map[string]Tolerance{
		"fig6.norm_ipc_geomean.CASINO": {Rel: 0.05},
	}}
	if diffs := Compare(g, c, opt); len(diffs) != 0 {
		t.Fatalf("per-metric override ignored: %v", diffs)
	}
	// Prefix pattern, longest match wins over a looser general band.
	opt = CompareOptions{PerMetric: map[string]Tolerance{
		"fig6.*":                 {Rel: 0.05},
		"fig6.norm_ipc_geomean*": {Rel: 1e-6},
	}}
	diffs := Compare(g, c, opt)
	if len(diffs) != 1 || diffs[0].Kind != DiffDrift {
		t.Fatalf("longest-prefix tolerance not applied: %v", diffs)
	}
}

func TestCompareMissingMetric(t *testing.T) {
	g, c := pair()
	delete(c.Metrics, "fig6.norm_ipc_geomean.OoO")
	diffs := Compare(g, c, CompareOptions{})
	if len(diffs) != 1 || diffs[0].Kind != DiffMissing || diffs[0].Metric != "fig6.norm_ipc_geomean.OoO" {
		t.Fatalf("diffs = %v, want one named missing", diffs)
	}
	// Missing is drift even with AllowExtra.
	if diffs := Compare(g, c, CompareOptions{AllowExtra: true}); len(diffs) != 1 {
		t.Fatalf("AllowExtra must not forgive missing metrics: %v", diffs)
	}
}

func TestCompareUnexpectedMetric(t *testing.T) {
	g, c := pair()
	c.Metrics["fig6.newthing"] = 1
	diffs := Compare(g, c, CompareOptions{})
	if len(diffs) != 1 || diffs[0].Kind != DiffUnexpected {
		t.Fatalf("diffs = %v, want one unexpected", diffs)
	}
	if diffs := Compare(g, c, CompareOptions{AllowExtra: true}); len(diffs) != 0 {
		t.Fatalf("AllowExtra should tolerate candidate-only metrics: %v", diffs)
	}
}

func TestCompareFingerprintMismatch(t *testing.T) {
	g, c := pair()
	c.Workloads["mcf"] = "ffffffffffffffff"
	delete(c.Workloads, "milc")
	diffs := Compare(g, c, CompareOptions{})
	k := kinds(diffs)
	if k[DiffFingerprint] != 2 {
		t.Fatalf("diffs = %v, want two fingerprint diffs", diffs)
	}
}

func TestCompareSpecMismatchShortCircuits(t *testing.T) {
	g, c := pair()
	c.Seed = 99
	c.Metrics["fig6.norm_ipc_geomean.CASINO"] = 0 // would be drift
	diffs := Compare(g, c, CompareOptions{})
	if len(diffs) != 1 || diffs[0].Kind != DiffSpec || diffs[0].Metric != "seed" {
		t.Fatalf("diffs = %v, want only the spec diff", diffs)
	}
}
