package manifest

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Tolerance is a per-metric acceptance band. A candidate value passes when
// |got-want| <= max(Abs, Rel*|want|); the boundary is inclusive, so a
// delta exactly at the band edge is not drift.
type Tolerance struct {
	Rel float64 // relative band, as a fraction of |want|
	Abs float64 // absolute band floor (covers want == 0)
}

// Allows reports whether got is within the band around want.
func (t Tolerance) Allows(want, got float64) bool {
	band := t.Abs
	if rel := t.Rel * math.Abs(want); rel > band {
		band = rel
	}
	return math.Abs(got-want) <= band
}

// Default tolerances: the simulator is bit-deterministic for a fixed
// seed, so the relative band only needs to absorb math-library ulp
// differences across Go releases/architectures, while staying far below
// any real model-parameter perturbation (which moves geomeans by >>0.1%).
var DefaultTolerance = Tolerance{Rel: 1e-3, Abs: 1e-9}

// CompareOptions parameterizes Compare.
type CompareOptions struct {
	// Default applies to every metric without a PerMetric entry. The
	// zero value means DefaultTolerance.
	Default Tolerance
	// PerMetric overrides the band for exact metric names, or for name
	// prefixes when the key ends in "*" (longest match wins).
	PerMetric map[string]Tolerance
	// AllowExtra tolerates metrics present only in the candidate (new
	// instrumentation that the golden predates). Metrics missing from
	// the candidate are always drift.
	AllowExtra bool
}

func (o CompareOptions) tolerance(metric string) Tolerance {
	if t, ok := o.PerMetric[metric]; ok {
		return t
	}
	best, bestLen := Tolerance{}, -1
	for pat, t := range o.PerMetric {
		if strings.HasSuffix(pat, "*") && strings.HasPrefix(metric, pat[:len(pat)-1]) && len(pat) > bestLen {
			best, bestLen = t, len(pat)
		}
	}
	if bestLen >= 0 {
		return best
	}
	if o.Default == (Tolerance{}) {
		return DefaultTolerance
	}
	return o.Default
}

// Diff kinds.
const (
	DiffSpec        = "spec"        // run parameters differ; nothing is comparable
	DiffFingerprint = "fingerprint" // workload trace changed
	DiffDrift       = "drift"       // metric outside its tolerance band
	DiffMissing     = "missing"     // golden metric absent from candidate
	DiffUnexpected  = "unexpected"  // candidate metric absent from golden
)

// Diff is one detected divergence between two manifests.
type Diff struct {
	Kind   string
	Metric string // metric name, fingerprint app, or spec field
	Want   float64
	Got    float64
	Detail string
}

func (d Diff) String() string {
	switch d.Kind {
	case DiffDrift:
		rel := math.Abs(d.Got-d.Want) / math.Max(math.Abs(d.Want), 1e-300)
		return fmt.Sprintf("drift     %-60s want %.6g got %.6g (Δ %+.4g, %.2f%%)",
			d.Metric, d.Want, d.Got, d.Got-d.Want, 100*rel)
	case DiffMissing:
		return fmt.Sprintf("missing   %-60s golden %.6g, absent from candidate", d.Metric, d.Want)
	case DiffUnexpected:
		return fmt.Sprintf("unexpected %-59s candidate %.6g, absent from golden", d.Metric, d.Got)
	default:
		return fmt.Sprintf("%-9s %-60s %s", d.Kind, d.Metric, d.Detail)
	}
}

// Compare diffs the candidate manifest against the golden one and returns
// every divergence, sorted by (kind, name) for stable output. An empty
// slice means the candidate reproduces the golden within tolerance.
func Compare(golden, got *Manifest, opt CompareOptions) []Diff {
	var diffs []Diff
	specField := func(name, want, gotv string) {
		if want != gotv {
			diffs = append(diffs, Diff{Kind: DiffSpec, Metric: name,
				Detail: fmt.Sprintf("golden %s, candidate %s", want, gotv)})
		}
	}
	specField("figure", golden.Figure, got.Figure)
	specField("kind", golden.Kind, got.Kind)
	specField("ops", fmt.Sprint(golden.Ops), fmt.Sprint(got.Ops))
	specField("warmup", fmt.Sprint(golden.Warmup), fmt.Sprint(got.Warmup))
	specField("seed", fmt.Sprint(golden.Seed), fmt.Sprint(got.Seed))
	specField("apps", strings.Join(golden.Apps, ","), strings.Join(got.Apps, ","))
	if len(diffs) > 0 {
		// Different experiments: metric diffs would be pure noise.
		return diffs
	}

	for _, app := range sortedKeys(golden.Workloads) {
		want := golden.Workloads[app]
		gotFP, ok := got.Workloads[app]
		if !ok {
			diffs = append(diffs, Diff{Kind: DiffFingerprint, Metric: app,
				Detail: fmt.Sprintf("golden %s, absent from candidate", want)})
			continue
		}
		if gotFP != want {
			diffs = append(diffs, Diff{Kind: DiffFingerprint, Metric: app,
				Detail: fmt.Sprintf("golden %s, candidate %s (workload generator changed)", want, gotFP)})
		}
	}

	// Cell provenance (sweep manifests): the cell sets must match exactly,
	// and matching keys must agree on spec and trace fingerprints. Figure
	// manifests carry no cells, so this is vacuous for them.
	gotCells := map[string]Cell{}
	for _, c := range got.Cells {
		gotCells[c.Key] = c
	}
	for _, c := range golden.Cells {
		gc, ok := gotCells[c.Key]
		delete(gotCells, c.Key)
		if !ok {
			diffs = append(diffs, Diff{Kind: DiffFingerprint, Metric: "cell " + c.Key,
				Detail: "present in golden, absent from candidate"})
			continue
		}
		if gc != c {
			diffs = append(diffs, Diff{Kind: DiffFingerprint, Metric: "cell " + c.Key,
				Detail: fmt.Sprintf("golden spec=%s trace=%s, candidate spec=%s trace=%s",
					c.SpecFP, c.TraceFP, gc.SpecFP, gc.TraceFP)})
		}
	}
	for _, key := range sortedKeys(gotCells) {
		diffs = append(diffs, Diff{Kind: DiffFingerprint, Metric: "cell " + key,
			Detail: "present in candidate, absent from golden"})
	}

	for _, name := range sortedKeys(golden.Metrics) {
		want := golden.Metrics[name]
		gotV, ok := got.Metrics[name]
		if !ok {
			diffs = append(diffs, Diff{Kind: DiffMissing, Metric: name, Want: want})
			continue
		}
		if !opt.tolerance(name).Allows(want, gotV) {
			diffs = append(diffs, Diff{Kind: DiffDrift, Metric: name, Want: want, Got: gotV})
		}
	}
	if !opt.AllowExtra {
		for _, name := range sortedKeys(got.Metrics) {
			if _, ok := golden.Metrics[name]; !ok {
				diffs = append(diffs, Diff{Kind: DiffUnexpected, Metric: name, Got: got.Metrics[name]})
			}
		}
	}

	sort.SliceStable(diffs, func(i, j int) bool {
		if diffs[i].Kind != diffs[j].Kind {
			return diffs[i].Kind < diffs[j].Kind
		}
		return diffs[i].Metric < diffs[j].Metric
	})
	return diffs
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
