package manifest

import (
	"bytes"
	"strings"
	"testing"
)

func sweepPart(app, cellKey string, metric string, v float64) *Manifest {
	m := New("sweep")
	m.Kind = KindSweep
	m.Ops, m.Warmup, m.Seed = 20000, 5000, 1
	m.Apps = []string{app}
	m.Workloads[app] = "00000000deadbeef"
	m.Metrics[metric] = v
	m.Cells = []Cell{{Key: cellKey, Model: "casino", Workload: app,
		SpecFP: "0000000000000001", TraceFP: "00000000deadbeef"}}
	return m
}

func TestMergeUnionsAndSorts(t *testing.T) {
	a := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.25)
	b := sweepPart("astar", "astar/casino[ws2,so1]", "cell.astar/casino[ws2,so1].ipc", 0.9)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(m.Apps, ","); got != "astar,mcf" {
		t.Errorf("apps not sorted union: %q", got)
	}
	if len(m.Metrics) != 2 || len(m.Workloads) != 2 {
		t.Errorf("metrics/workloads not unioned: %d/%d", len(m.Metrics), len(m.Workloads))
	}
	if len(m.Cells) != 2 || m.Cells[0].Key != "astar/casino[ws2,so1]" {
		t.Errorf("cells not sorted by key: %+v", m.Cells)
	}
}

// Merging is order-independent down to the encoded bytes: that is what
// lets a sharded sweep (arbitrary completion order) be byte-compared
// against a serial run of the same cells.
func TestMergeOrderIndependentBytes(t *testing.T) {
	a := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.25)
	b := sweepPart("astar", "astar/casino[ws2,so1]", "cell.astar/casino[ws2,so1].ipc", 0.9)
	c := sweepPart("milc", "milc/ino", "cell.milc/ino.ipc", 0.7)
	ab, err := Merge(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge(c, b, a)
	if err != nil {
		t.Fatal(err)
	}
	var buf1, buf2 bytes.Buffer
	if err := ab.Encode(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := ba.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Errorf("merge order changed encoded bytes:\n%s\nvs\n%s", buf1.String(), buf2.String())
	}
}

func TestMergeOverlapCollapsesIdenticalCells(t *testing.T) {
	a := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.25)
	b := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.25)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 1 || len(m.Metrics) != 1 {
		t.Errorf("identical overlap did not collapse: %d cells, %d metrics", len(m.Cells), len(m.Metrics))
	}
}

func TestMergeConflicts(t *testing.T) {
	base := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.25)

	metricConflict := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.26)
	if _, err := Merge(base, metricConflict); err == nil || !strings.Contains(err.Error(), "conflicting values") {
		t.Errorf("metric conflict not detected: %v", err)
	}

	fpConflict := sweepPart("mcf", "mcf/ino", "cell.mcf/ino.ipc", 0.7)
	fpConflict.Workloads["mcf"] = "0000000000000bad"
	if _, err := Merge(base, fpConflict); err == nil || !strings.Contains(err.Error(), "conflicting trace fingerprints") {
		t.Errorf("workload fingerprint conflict not detected: %v", err)
	}

	cellConflict := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.other", 1.0)
	cellConflict.Cells[0].SpecFP = "000000000000beef"
	if _, err := Merge(base, cellConflict); err == nil || !strings.Contains(err.Error(), "conflicting provenance") {
		t.Errorf("cell provenance conflict not detected: %v", err)
	}

	specMismatch := sweepPart("mcf", "mcf/ino", "cell.mcf/ino.ipc", 0.7)
	specMismatch.Ops = 999
	if _, err := Merge(base, specMismatch); err == nil || !strings.Contains(err.Error(), "different experiment") {
		t.Errorf("spec mismatch not detected: %v", err)
	}

	if _, err := Merge(); err == nil {
		t.Error("zero-part merge did not error")
	}
}

func TestCompareChecksCells(t *testing.T) {
	golden := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.25)

	// Identical manifests: no diffs.
	same := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.25)
	if diffs := Compare(golden, same, CompareOptions{}); len(diffs) != 0 {
		t.Fatalf("identical sweep manifests diff: %v", diffs)
	}

	// Same metrics but a cell's spec fingerprint moved: must be flagged.
	drifted := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.25)
	drifted.Cells[0].SpecFP = "000000000000beef"
	diffs := Compare(golden, drifted, CompareOptions{})
	if len(diffs) != 1 || diffs[0].Kind != DiffFingerprint {
		t.Fatalf("cell fingerprint drift not flagged: %v", diffs)
	}

	// Candidate carries an extra cell: flagged even with AllowExtra (extra
	// cells mean a different sweep, not new instrumentation).
	extra := sweepPart("mcf", "mcf/casino[ws2,so1]", "cell.mcf/casino[ws2,so1].ipc", 1.25)
	extra.Cells = append(extra.Cells, Cell{Key: "mcf/ino", Model: "ino", Workload: "mcf",
		SpecFP: "0000000000000002", TraceFP: "00000000deadbeef"})
	diffs = Compare(golden, extra, CompareOptions{AllowExtra: true})
	if len(diffs) != 1 || !strings.Contains(diffs[0].Metric, "mcf/ino") {
		t.Fatalf("extra cell not flagged: %v", diffs)
	}
}
