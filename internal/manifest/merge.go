package manifest

import (
	"fmt"
	"sort"
)

// Merge combines per-cell (or per-shard) manifests of one sweep into a
// single manifest. All parts must describe the same experiment — same
// Kind, Figure, Ops, Warmup and Seed — and the merge is strict:
//
//   - Apps become the sorted union.
//   - Workload fingerprints are unioned; the same app reported with two
//     different fingerprints is an error (shards replayed different
//     traces — their metrics are incomparable).
//   - Metrics are unioned; the same metric name reported with two
//     different values is an error (two shards claim the same cell and
//     disagree — a determinism violation, never something to paper over).
//   - Cells are concatenated and sorted by Key; two cells with the same
//     Key must agree on every field (identical duplicates collapse, which
//     is what lets overlapping sweeps merge).
//
// Merging is associative and order-independent: any grouping of the same
// parts encodes to the same bytes, which is what makes sharded results
// byte-comparable against a serial run.
func Merge(parts ...*Manifest) (*Manifest, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("manifest: merge of zero manifests")
	}
	first := parts[0]
	out := &Manifest{
		Version:   Version,
		Kind:      first.Kind,
		Figure:    first.Figure,
		Ops:       first.Ops,
		Warmup:    first.Warmup,
		Seed:      first.Seed,
		Workloads: map[string]string{},
		Metrics:   map[string]float64{},
		GoVersion: first.GoVersion,
	}
	cells := map[string]Cell{}
	appSet := map[string]bool{}
	for i, p := range parts {
		if p.Version != Version {
			return nil, &VersionError{Got: p.Version}
		}
		if p.Kind != out.Kind || p.Figure != out.Figure ||
			p.Ops != out.Ops || p.Warmup != out.Warmup || p.Seed != out.Seed {
			return nil, fmt.Errorf("manifest: merge: part %d describes a different experiment (kind=%q figure=%q ops=%d warmup=%d seed=%d, want kind=%q figure=%q ops=%d warmup=%d seed=%d)",
				i, p.Kind, p.Figure, p.Ops, p.Warmup, p.Seed,
				out.Kind, out.Figure, out.Ops, out.Warmup, out.Seed)
		}
		for _, app := range p.Apps {
			appSet[app] = true
		}
		for app, fp := range p.Workloads {
			if prev, ok := out.Workloads[app]; ok && prev != fp {
				return nil, fmt.Errorf("manifest: merge: workload %q has conflicting trace fingerprints %s vs %s", app, prev, fp)
			}
			out.Workloads[app] = fp
		}
		for name, v := range p.Metrics {
			if prev, ok := out.Metrics[name]; ok && prev != v {
				return nil, fmt.Errorf("manifest: merge: metric %q has conflicting values %v vs %v", name, prev, v)
			}
			out.Metrics[name] = v
		}
		for _, c := range p.Cells {
			if prev, ok := cells[c.Key]; ok && prev != c {
				return nil, fmt.Errorf("manifest: merge: cell %q has conflicting provenance (%+v vs %+v)", c.Key, prev, c)
			}
			cells[c.Key] = c
		}
	}
	for app := range appSet {
		out.Apps = append(out.Apps, app)
	}
	sort.Strings(out.Apps)
	for _, key := range sortedKeys(cells) {
		out.Cells = append(out.Cells, cells[key])
	}
	return out, nil
}
