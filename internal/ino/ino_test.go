package ino

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/trace"
	"casino/internal/workload"
)

// mkCore builds a core over a hand-written op list with a pre-warmed L1I.
func mkCore(ops []isa.MicroOp) *Core {
	for i := range ops {
		ops[i].Seq = uint64(i)
		if ops[i].PC == 0 {
			ops[i].PC = 0x1000 + uint64(i)*4
		}
	}
	tr := &trace.Trace{Name: "micro", Ops: ops}
	hier := mem.NewHierarchy(mem.DefaultConfig())
	for i := range ops {
		hier.Fetch(ops[i].PC, 0)
	}
	return New(DefaultConfig(), tr, hier, energy.NewAccountant())
}

// run drives the core to completion, failing the test on livelock.
func run(t *testing.T, c *Core) {
	t.Helper()
	for i := 0; i < 2_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatalf("core livelocked: committed=%d now=%d", c.Committed(), c.Now())
	}
}

func alu(dst, src isa.Reg) isa.MicroOp {
	return isa.MicroOp{Class: isa.IntALU, Dst: dst, Src1: src, Src2: isa.RegNone}
}

func TestAllOpsCommit(t *testing.T) {
	ops := []isa.MicroOp{
		alu(isa.IntReg(1), isa.RegNone),
		alu(isa.IntReg(2), isa.IntReg(1)),
		alu(isa.IntReg(3), isa.IntReg(2)),
		{Class: isa.Load, Dst: isa.IntReg(4), Src1: isa.IntReg(3), Src2: isa.RegNone, Addr: 0x100, Size: 8},
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(4), Src2: isa.IntReg(1), Addr: 0x200, Size: 8},
		alu(isa.IntReg(5), isa.RegNone),
	}
	c := mkCore(ops)
	run(t, c)
	if c.Committed() != 6 {
		t.Errorf("committed %d, want 6", c.Committed())
	}
}

func TestStallOnUseNotStallOnMiss(t *testing.T) {
	// A: load(miss); then N independent ALUs; the load's consumer comes last.
	// B: load(miss); consumer immediately; then N independent ALUs.
	// Stall-on-use means A completes much faster than B.
	mkOps := func(consumerFirst bool) []isa.MicroOp {
		ops := []isa.MicroOp{
			{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8},
		}
		indep := make([]isa.MicroOp, 40)
		for i := range indep {
			indep[i] = alu(isa.IntReg(2+i%6), isa.RegNone)
		}
		consumer := alu(isa.IntReg(10), isa.IntReg(1))
		if consumerFirst {
			ops = append(ops, consumer)
			ops = append(ops, indep...)
		} else {
			ops = append(ops, indep...)
			ops = append(ops, consumer)
		}
		return ops
	}
	a := mkCore(mkOps(false))
	run(t, a)
	b := mkCore(mkOps(true))
	run(t, b)
	if a.Now() >= b.Now() {
		t.Errorf("stall-on-use broken: consumer-last took %d cycles, consumer-first %d", a.Now(), b.Now())
	}
	if b.IssueStallsSrc == 0 {
		t.Error("consumer at head should have stalled on its source")
	}
}

func TestInOrderIssueStrict(t *testing.T) {
	// Independent op behind a stalled consumer must NOT issue early:
	// total time is governed by the miss in both orderings.
	ops := []isa.MicroOp{
		{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8},
		alu(isa.IntReg(2), isa.IntReg(1)), // dependent: stalls at head
		alu(isa.IntReg(3), isa.RegNone),   // independent but behind
	}
	c := mkCore(ops)
	run(t, c)
	// The independent op cannot hide the miss: runtime ~ miss latency.
	if c.Now() < 50 {
		t.Errorf("finished in %d cycles; independent op must not bypass a stalled head", c.Now())
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// Store then load of the same address: the load must forward, not miss.
	ops := []isa.MicroOp{
		alu(isa.IntReg(1), isa.RegNone),
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(1), Src2: isa.RegNone, Addr: 1 << 29, Size: 8},
		{Class: isa.Load, Dst: isa.IntReg(2), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 29, Size: 8},
	}
	c := mkCore(ops)
	run(t, c)
	if c.LoadsForwarded != 1 {
		t.Errorf("LoadsForwarded = %d, want 1", c.LoadsForwarded)
	}
	// A load to a different (cold) address must be slower: it misses while
	// the forwarded one bypasses the cache entirely.
	ops2 := []isa.MicroOp{
		alu(isa.IntReg(1), isa.RegNone),
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(1), Src2: isa.RegNone, Addr: 1 << 29, Size: 8},
		{Class: isa.Load, Dst: isa.IntReg(2), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 28, Size: 8},
		alu(isa.IntReg(3), isa.IntReg(2)), // consumer makes the miss visible
	}
	c2 := mkCore(ops2)
	run(t, c2)
	if c2.LoadsForwarded != 0 {
		t.Fatalf("disjoint load forwarded")
	}
	if c2.Now() <= c.Now() {
		t.Errorf("missing load (%d cyc) not slower than forwarded load (%d cyc)", c2.Now(), c.Now())
	}
}

func TestSCBWindowBounds(t *testing.T) {
	// More than SCBSize long-latency ops cannot all be in flight at once.
	ops := make([]isa.MicroOp, 8)
	for i := range ops {
		ops[i] = isa.MicroOp{Class: isa.FPDiv, Dst: isa.FPReg(i % 8), Src1: isa.RegNone, Src2: isa.RegNone}
	}
	c := mkCore(ops)
	run(t, c)
	// 8 divides, 2 FP units, unpipelined lat 12 → at least 4 rounds of 12,
	// further limited by the 4-entry SCB and in-order WB.
	if c.Now() < 40 {
		t.Errorf("8 divides finished in %d cycles — SCB/FU limits not modelled", c.Now())
	}
}

func TestBranchResolutionUnblocksFetch(t *testing.T) {
	// A mispredicting branch must not deadlock the machine.
	ops := []isa.MicroOp{
		alu(isa.IntReg(1), isa.RegNone),
		{Class: isa.Branch, Dst: isa.RegNone, Src1: isa.IntReg(1), Src2: isa.RegNone, Taken: true, Target: 0x2000, PC: 0x1004},
		{Class: isa.IntALU, Dst: isa.IntReg(2), Src1: isa.RegNone, Src2: isa.RegNone, PC: 0x2000},
		{Class: isa.IntALU, Dst: isa.IntReg(3), Src1: isa.RegNone, Src2: isa.RegNone, PC: 0x2004},
	}
	c := mkCore(ops)
	run(t, c)
	if c.Committed() != 4 {
		t.Errorf("committed %d", c.Committed())
	}
	if c.Mispredicts() != 1 {
		t.Errorf("mispredicts = %d, want 1 (cold BTB)", c.Mispredicts())
	}
}

func runProfile(t *testing.T, name string, n int) (float64, *Core) {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(p, n, 1)
	c := New(DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	run(t, c)
	return float64(c.Committed()) / float64(c.Now()), c
}

func TestProfileIPCRanges(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	for _, name := range []string{"mcf", "hmmer", "libquantum", "gobmk"} {
		ipc, c := runProfile(t, name, 30000)
		if ipc <= 0.03 || ipc > 2.0 {
			t.Errorf("%s: InO IPC %.3f outside plausible range", name, ipc)
		}
		if c.Committed() < 30000 {
			t.Errorf("%s: committed %d < requested", name, c.Committed())
		}
	}
}

func TestComputeBeatsPointerChase(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	chase, _ := runProfile(t, "mcf", 30000)
	compute, _ := runProfile(t, "hmmer", 30000)
	if compute <= chase {
		t.Errorf("hmmer IPC %.3f should exceed mcf IPC %.3f on InO", compute, chase)
	}
}

func TestEnergyAccountingPopulated(t *testing.T) {
	_, c := runProfile(t, "gcc", 10000)
	a := c.acct
	if a.DynamicEnergy() <= 0 || a.StaticEnergy() <= 0 {
		t.Error("energy not accumulated")
	}
	if a.CountByName("IQ", energy.Write) == 0 || a.CountByName("SB", energy.Search) == 0 {
		t.Error("structure activity not counted")
	}
	if a.Cycles == 0 || a.IntOps == 0 {
		t.Error("cycle/FU counters empty")
	}
}

func TestDeterminism(t *testing.T) {
	ipc1, c1 := runProfile(t, "astar", 15000)
	ipc2, c2 := runProfile(t, "astar", 15000)
	if ipc1 != ipc2 || c1.Now() != c2.Now() {
		t.Errorf("nondeterministic: %v/%v vs %v/%v", ipc1, c1.Now(), ipc2, c2.Now())
	}
}
