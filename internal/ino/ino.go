// Package ino implements the paper's baseline: a 2-wide stall-on-use
// in-order core (§III-A). Instructions issue strictly in program order
// from the head of a FIFO IQ; the pipeline stalls only when the *consumer*
// of a pending value reaches the IQ head (stall-on-use), so independent
// instructions behind a long-latency load keep issuing. A 4-entry
// scoreboard (SCB) window enforces in-order write-back for precise
// exceptions; committed stores drain through a 4-entry store buffer.
package ino

import (
	"casino/internal/bpred"
	"casino/internal/energy"
	"casino/internal/eventq"
	"casino/internal/frontend"
	"casino/internal/isa"
	"casino/internal/lsu"
	"casino/internal/mem"
	"casino/internal/pipeline"
	"casino/internal/ptrace"
	"casino/internal/stats"
	"casino/internal/trace"
)

// Config holds the Table I in-order core parameters.
type Config struct {
	Width      int // superscalar width (issue = commit = fetch)
	IQSize     int // FIFO instruction queue entries
	SCBSize    int // scoreboard window (in-flight issued instructions)
	SBSize     int // store buffer entries
	FrontDepth int // redirect penalty (7-stage pipeline)
}

// DefaultConfig returns the Table I InO configuration.
func DefaultConfig() Config {
	return Config{Width: 2, IQSize: 16, SCBSize: 4, SBSize: 4, FrontDepth: 5}
}

type entry struct {
	op     *isa.MicroOp
	done   int64 // result available
	wbDone int64 // in-order write-back completion
}

// entRing is a fixed-capacity FIFO of entries. Both the IQ and the SCB
// window push at the tail and pop at the head every cycle; re-slicing a
// plain []entry from the front makes every append reallocate once the
// backing array is consumed, which dominated the model's allocation count.
type entRing struct {
	buf  []entry
	head int
	n    int
}

func newEntRing(capacity int) entRing { return entRing{buf: make([]entry, capacity)} }

func (r *entRing) len() int { return r.n }

func (r *entRing) at(i int) *entry {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

func (r *entRing) pushBack(e entry) {
	j := r.head + r.n
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	r.buf[j] = e
	r.n++
}

func (r *entRing) popFront() {
	r.buf[r.head] = entry{}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
}

// Core is the baseline in-order core.
type Core struct {
	cfg  Config
	now  int64
	fe   *frontend.FrontEnd
	hier *mem.Hierarchy
	fus  *pipeline.FUPool
	acct *energy.Accountant
	sb   *lsu.StoreQueue
	wq   *eventq.Queue // shared wakeup queue (event-driven clock)

	iq  entRing // dispatched, waiting to issue (FIFO)
	win entRing // issued, waiting for in-order write-back (SCB window)

	regReady [isa.NumArchRegs]int64

	pt  *ptrace.Recorder // optional pipeline-event recorder (nil = off)
	cpi ptrace.CPI       // per-cycle stall attribution (always on)

	committed uint64
	lastWB    int64

	// OnCommit, when non-nil, observes each committed sequence number
	// (architectural-invariant checking in tests).
	OnCommit func(seq uint64)

	// Structure handles for the energy model.
	hIQ, hSCB, hARF, hSB int

	// Model statistics.
	LoadsForwarded uint64
	IssueStallsSrc uint64 // cycles head stalled on operands (stall-on-use)
	IssueStallsRes uint64 // cycles head stalled on FUs/window/SB

	// Per-structure occupancy histograms, sampled once per cycle.
	OccIQ  *stats.Hist
	OccSCB *stats.Hist
	OccSB  *stats.Hist
}

// New builds an in-order core running the given trace.
func New(cfg Config, tr *trace.Trace, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	return NewAt(cfg, tr, 0, nil, hier, acct)
}

// NewAt builds a core whose frontend starts at trace position start with an
// injected (possibly pre-trained) branch predictor; pred == nil allocates a
// fresh one. The sampled-simulation driver uses it to open detailed windows
// mid-trace against warmed shared state.
func NewAt(cfg Config, tr *trace.Trace, start int, pred *bpred.Predictor, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	c := &Core{
		cfg:  cfg,
		hier: hier,
		fus:  pipeline.ScaledFUPool(cfg.Width),
		acct: acct,
		sb:   lsu.NewStoreQueue(cfg.SBSize),
		iq:   newEntRing(cfg.IQSize),
		win:  newEntRing(cfg.SCBSize),

		OccIQ:  stats.NewHist(cfg.IQSize + 1),
		OccSCB: stats.NewHist(cfg.SCBSize + 1),
		OccSB:  stats.NewHist(cfg.SBSize + 1),
	}
	c.wq = eventq.New(2*(cfg.SCBSize+cfg.SBSize) + 16)
	c.fus.SetWakeQueue(c.wq)
	c.sb.SetWakeQueue(c.wq)
	hier.SetWakeQueue(c.wq)
	rd := tr.Reader()
	rd.Seek(start)
	if pred == nil {
		pred = bpred.NewPredictor()
	}
	c.fe = frontend.New(
		frontend.Config{Width: cfg.Width, Depth: cfg.FrontDepth, BufCap: 2 * cfg.Width},
		rd, pred, hier, acct)
	c.fe.SetWakeQueue(c.wq)
	c.hIQ = acct.Register(energy.Structure{Name: "IQ", Entries: cfg.IQSize, Bits: 64, Ports: 2 * cfg.Width})
	c.hSCB = acct.Register(energy.Structure{Name: "SCB", Entries: cfg.SCBSize, Bits: 48, Ports: 2 * cfg.Width})
	c.hARF = acct.Register(energy.Structure{Name: "ARF", Entries: isa.NumArchRegs, Bits: 64, Ports: 3 * cfg.Width})
	c.hSB = acct.Register(energy.Structure{Name: "SB", Entries: cfg.SBSize, Bits: 112, Ports: 2, CAM: true, TagBits: 40})
	return c
}

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Committed returns the number of committed micro-ops.
func (c *Core) Committed() uint64 { return c.committed }

// Done reports whether the trace is exhausted and the pipeline drained.
func (c *Core) Done() bool {
	return c.fe.Done() && c.iq.len() == 0 && c.win.len() == 0 && c.sb.Len() == 0
}

// Mispredicts returns front-end branch mispredict count.
func (c *Core) Mispredicts() uint64 { return c.fe.Mispredicts }

// Cycle advances the core by one clock.
func (c *Core) Cycle() {
	now := c.now
	committed0 := c.committed
	c.wq.Drain(now)
	c.OccIQ.Add(c.iq.len())
	c.OccSCB.Add(c.win.len())
	c.OccSB.Add(c.sb.Len())
	c.retireStores(now)
	c.writeback(now)
	c.issue(now)
	c.dispatch()
	c.fe.Cycle(now)
	c.tickCPI(now, committed0)
	c.now++
	c.acct.Cycles++
}

// SetPipeTrace installs (or removes, with nil) a pipeline-event recorder.
func (c *Core) SetPipeTrace(rec *ptrace.Recorder) {
	c.pt = rec
	c.fe.SetPipeTrace(rec)
}

// CPIStack exposes the per-cycle stall attribution accumulated so far.
func (c *Core) CPIStack() *ptrace.CPI { return &c.cpi }

// Recycle returns pooled resources (the branch predictor) at end of run.
// The core must not be cycled afterwards.
func (c *Core) Recycle() { c.fe.RecyclePredictor() }

func (c *Core) emit(cycle int64, seq uint64, k ptrace.Kind) {
	if c.pt != nil {
		c.pt.Emit(ptrace.Event{Cycle: cycle, Seq: seq, Kind: k})
	}
}

// tickCPI attributes the cycle that just executed to exactly one CPI
// bucket, publishing non-base cycles as stall events when tracing is on.
func (c *Core) tickCPI(now int64, committed0 uint64) {
	b, seq := c.classifyCycle(now, committed0)
	c.cpi.Add(b)
	if c.pt != nil && b != ptrace.BucketBase {
		c.pt.Emit(ptrace.Event{Cycle: now, Seq: seq, Kind: ptrace.KindStall, Stall: b})
	}
}

// classifyCycle decides the cycle's CPI bucket: base if anything
// committed, otherwise why the oldest in-flight instruction has not
// written back yet. Runs after every pipeline stage using pure reads only.
func (c *Core) classifyCycle(now int64, committed0 uint64) (ptrace.Bucket, uint64) {
	if c.committed > committed0 {
		return ptrace.BucketBase, 0
	}
	if c.win.len() > 0 {
		e := c.win.at(0)
		wb := e.done
		if wb < c.lastWB {
			wb = c.lastWB // in-order write-back slot
		}
		if wb > now {
			if e.op.Class.IsMem() {
				return ptrace.BucketDCache, e.op.Seq
			}
			return ptrace.BucketExec, e.op.Seq
		}
		// Completed head that did not commit: a store blocked on a full
		// store buffer (retirement back-pressure).
		return ptrace.BucketROBSQ, e.op.Seq
	}
	if c.iq.len() > 0 {
		e := c.iq.at(0)
		if !c.srcsReady(e.op, now) {
			return ptrace.BucketSrc, e.op.Seq
		}
		return ptrace.BucketFU, e.op.Seq
	}
	if !c.fe.Done() {
		return ptrace.BucketICache, 0
	}
	return ptrace.BucketDrain, 0
}

// retireStores drains the store buffer head into the L1D.
func (c *Core) retireStores(now int64) {
	if c.sb.HeadRetirable(now) {
		e := c.sb.Head()
		done := c.hier.Store(e.PC, e.Addr, now)
		c.acct.L1Access++
		c.sb.StartRetire(done)
	}
	c.sb.PopRetired(now)
}

// writeback commits up to Width completed instructions in order from the
// SCB window. A store needs a free store-buffer entry to commit.
func (c *Core) writeback(now int64) {
	for n := 0; n < c.cfg.Width && c.win.len() > 0; n++ {
		e := c.win.at(0)
		wb := e.done
		if wb < c.lastWB {
			wb = c.lastWB // SCB enforces in-order write-back
		}
		if wb > now {
			return
		}
		if e.op.Class == isa.Store {
			if c.sb.Full() {
				return
			}
			c.sb.Dispatch(e.op.Seq, e.op.PC)
			c.sb.Resolve(e.op.Seq, e.op.Addr, e.op.Size, now, e.done)
			c.sb.Commit(e.op.Seq)
			c.acct.Inc(c.hSB, energy.Write, 1)
		}
		c.lastWB = wb
		if e.op.HasDst() {
			c.acct.Inc(c.hARF, energy.Write, 1)
		}
		c.acct.Inc(c.hSCB, energy.Write, 1)
		if c.OnCommit != nil {
			c.OnCommit(e.op.Seq)
		}
		c.emit(now, e.op.Seq, ptrace.KindCommit)
		c.win.popFront()
		c.committed++
	}
}

// issue examines the IQ head in order and issues ready instructions
// (stall-on-use: the first non-ready instruction blocks all younger ones).
func (c *Core) issue(now int64) {
	for n := 0; n < c.cfg.Width && c.iq.len() > 0; n++ {
		e := c.iq.at(0)
		op := e.op
		c.acct.Inc(c.hSCB, energy.Read, 1)
		if !c.srcsReady(op, now) {
			c.IssueStallsSrc++
			return
		}
		if c.win.len() >= c.cfg.SCBSize || !c.fus.CanIssue(op.Class, now) {
			c.IssueStallsRes++
			return
		}
		c.fus.Issue(op.Class, now)
		c.countFU(op.Class)
		c.acct.Inc(c.hIQ, energy.Read, 1)
		c.acct.Inc(c.hARF, energy.Read, 2)

		done := c.execute(op, now)
		// A completion next cycle needs no wakeup: this issue already makes
		// the current cycle non-idle, so no jump can start before it lands.
		if done > now+1 {
			c.wq.Wake(done)
		}
		if op.HasDst() {
			c.regReady[op.Dst] = done
		}
		if op.Class == isa.Branch {
			c.fe.BranchResolved(op.Seq, done)
		}
		c.emit(now, op.Seq, ptrace.KindIssue)
		c.emit(done, op.Seq, ptrace.KindComplete)
		c.win.pushBack(entry{op: op, done: done})
		c.iq.popFront()
	}
}

// execute computes the completion cycle of op issued at now.
func (c *Core) execute(op *isa.MicroOp, now int64) int64 {
	switch op.Class {
	case isa.Load:
		agu := now + int64(op.Class.ExecLatency())
		// Forward from an older in-flight store (SCB window or SB).
		if c.forwardFromStores(op, now) {
			c.LoadsForwarded++
			return agu + int64(c.hier.Config().L1Latency)
		}
		done, _ := c.hier.Load(op.PC, op.Addr, agu)
		c.acct.L1Access++
		return done
	case isa.Store:
		return now + int64(op.Class.ExecLatency())
	default:
		return now + int64(op.Class.ExecLatency())
	}
}

// forwardFromStores searches older in-flight stores for a value match.
// All older stores have already issued (in-order), so addresses are known.
func (c *Core) forwardFromStores(op *isa.MicroOp, now int64) bool {
	c.acct.Inc(c.hSB, energy.Search, 1)
	for i := 0; i < c.win.len(); i++ {
		if w := c.win.at(i); w.op.Class == isa.Store && w.op.Overlaps(op) {
			return true
		}
	}
	res := c.sb.SearchForLoad(op.Seq, op.Addr, op.Size, false)
	return res.Forward != nil
}

func (c *Core) srcsReady(op *isa.MicroOp, now int64) bool {
	for _, s := range [...]isa.Reg{op.Src1, op.Src2} {
		if s.Valid() && c.regReady[s] > now {
			return false
		}
	}
	return true
}

func (c *Core) countFU(class isa.Class) {
	switch class.FU() {
	case isa.FUFP:
		c.acct.FPOps++
	case isa.FUAGU:
		c.acct.AGUOps++
	default:
		c.acct.IntOps++
	}
}

// dispatch moves decoded ops from the front end into the IQ.
func (c *Core) dispatch() {
	for n := 0; n < c.cfg.Width && c.iq.len() < c.cfg.IQSize; n++ {
		op := c.fe.Pop()
		if op == nil {
			return
		}
		c.iq.pushBack(entry{op: op})
		c.acct.Inc(c.hIQ, energy.Write, 1)
		c.emit(c.now, op.Seq, ptrace.KindDispatch)
	}
}
