package ino

import (
	"casino/internal/isa"
)

// noEvent mirrors lsu.NoEvent: no progress through the passage of time.
const noEvent = int64(1) << 62

// NextEvent returns the earliest cycle >= now at which Cycle() could change
// any observable state: commit/write-back, store retirement, an issue, a
// dispatch, a fetch, or a flip of a *published counter's* charge pattern
// (the stall-reason counters flip when the head's operands become ready
// even if the issue itself stays blocked, so that time is an event too).
// Returning now means "cannot prove this cycle idle"; the driver then
// simulates it normally. Under-estimating the horizon is always safe — the
// driver just probes again — so every blocked condition either contributes
// the absolute cycle it unblocks at, or is left to the event that must
// strictly precede it (e.g. a full SCB window drains only via write-back,
// whose head time is already a candidate).
func (c *Core) NextEvent() int64 {
	now := c.now
	next := noEvent
	add := func(t int64) {
		if t > now && t < next {
			next = t
		}
	}

	// Store-buffer retirement (head store starts or completes its cache
	// update).
	if t := c.sb.RetireEvent(now); t <= now {
		return now
	} else {
		add(t)
	}

	// In-order write-back from the SCB window head.
	if c.win.len() > 0 {
		e := c.win.at(0)
		wb := e.done
		if wb < c.lastWB {
			wb = c.lastWB
		}
		if wb > now {
			add(wb)
		} else if e.op.Class != isa.Store || !c.sb.Full() {
			return now // write-back proceeds this cycle
		}
		// Store blocked on a full SB: unblocks via the SB retire event.
	}

	// Issue from the IQ head (stall-on-use: only the head matters).
	if c.iq.len() > 0 {
		op := c.iq.at(0).op
		var ready int64
		for _, s := range [...]isa.Reg{op.Src1, op.Src2} {
			if s.Valid() && c.regReady[s] > ready {
				ready = c.regReady[s]
			}
		}
		switch {
		case ready > now:
			add(ready) // operand arrival (also flips stall.src → stall.res)
		case c.win.len() >= c.cfg.SCBSize:
			// Window full: drains via write-back, covered above.
		case !c.fus.CanIssue(op.Class, now):
			add(c.fus.NextFree(op.Class, now))
		default:
			return now // head issues this cycle
		}
	}

	// Dispatch and fetch.
	if c.fe.BufLen() > 0 && c.iq.len() < c.cfg.IQSize {
		return now
	}
	if t := c.fe.NextFetchEvent(now); t <= now {
		return now
	} else {
		add(t)
	}
	return next
}

// ffSig is a cheap progress signature: if any field changes across a cycle,
// that cycle was not idle.
type ffSig struct {
	committed, fetched, issued, l1 uint64
	iq, win, sb, buf               int
}

func (c *Core) ffSig() ffSig {
	return ffSig{
		committed: c.committed,
		fetched:   c.fe.Fetched,
		issued:    c.fus.IssuedTotal(),
		l1:        c.acct.L1Access,
		iq:        c.iq.len(),
		win:       c.win.len(),
		sb:        c.sb.Len(),
		buf:       c.fe.BufLen(),
	}
}

// FastForward advances the clock to cycle `to`, where NextEvent() proved
// cycles [now, to) idle. It simulates the first of those cycles for real —
// Cycle() remains the single source of truth for per-cycle accounting —
// then replays that cycle's accounting deltas (energy counts, stall
// counters, occupancy samples) for the remaining to-now-1 copies in bulk
// and jumps the clock. A changed progress signature after the embedded
// cycle means NextEvent was wrong, which would silently corrupt results,
// so it panics instead.
func (c *Core) FastForward(to int64) {
	n := to - c.now - 1
	if n < 0 {
		return
	}
	sig := c.ffSig()
	c.acct.BeginDelta()
	src0, res0, sbReads0 := c.IssueStallsSrc, c.IssueStallsRes, c.sb.Reads
	cpi0 := c.cpi
	c.Cycle()
	if c.ffSig() != sig {
		panic("ino: FastForward across a non-idle cycle (NextEvent bug)")
	}
	if n == 0 {
		return
	}
	un := uint64(n)
	c.acct.ScaleDelta(un)
	c.IssueStallsSrc += (c.IssueStallsSrc - src0) * un
	c.IssueStallsRes += (c.IssueStallsRes - res0) * un
	c.sb.Reads += (c.sb.Reads - sbReads0) * un
	c.cpi.ScaleDelta(&cpi0, un)
	c.OccIQ.AddN(c.iq.len(), un)
	c.OccSCB.AddN(c.win.len(), un)
	c.OccSB.AddN(c.sb.Len(), un)
	c.now += n
}
