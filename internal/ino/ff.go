package ino

import (
	"casino/internal/eventq"
	"casino/internal/isa"
)

// noEvent mirrors lsu.NoEvent: no progress through the passage of time.
const noEvent = int64(1) << 62

// NextWake returns the earliest cycle >= now at which the core might make
// progress, driving the event-driven clock. Dispatch and fetch progress are
// the only state changes not tied to a registered wakeup, so two O(1)
// pre-checks cover them and the shared queue covers everything else.
func (c *Core) NextWake() int64 {
	now := c.now
	if c.fe.BufLen() > 0 && c.iq.len() < c.cfg.IQSize {
		return now
	}
	if c.fe.NextFetchEvent(now) <= now {
		return now
	}
	return c.wq.Horizon(now)
}

// WakeStats exposes the shared wakeup queue's activity counters.
func (c *Core) WakeStats() eventq.Stats { return c.wq.Stats() }

// ProgressSignature folds the fast-forward progress signature into one
// value for the sim package's property tests.
func (c *Core) ProgressSignature() uint64 {
	// FNV-1a chained by hand: this runs on every commit-free cycle, so it
	// must not materialize an array (stack copies) per call.
	const p = 1099511628211
	s := c.ffSig()
	h := uint64(1469598103934665603)
	h = (h ^ s.committed) * p
	h = (h ^ s.fetched) * p
	h = (h ^ s.issued) * p
	h = (h ^ s.l1) * p
	h = (h ^ uint64(s.iq)) * p
	h = (h ^ uint64(s.win)) * p
	h = (h ^ uint64(s.sb)) * p
	h = (h ^ uint64(s.buf)) * p
	return h
}

// NextEvent returns the earliest cycle >= now at which Cycle() could change
// any observable state: commit/write-back, store retirement, an issue, a
// dispatch, a fetch, or a flip of a *published counter's* charge pattern
// (the stall-reason counters flip when the head's operands become ready
// even if the issue itself stays blocked, so that time is an event too).
// Returning now means "cannot prove this cycle idle"; the driver then
// simulates it normally. Under-estimating the horizon is always safe — the
// driver just probes again — so every blocked condition either contributes
// the absolute cycle it unblocks at, or is left to the event that must
// strictly precede it (e.g. a full SCB window drains only via write-back,
// whose head time is already a candidate).
func (c *Core) NextEvent() int64 {
	now := c.now
	next := noEvent
	add := func(t int64) {
		if t > now && t < next {
			next = t
		}
	}

	// Store-buffer retirement (head store starts or completes its cache
	// update).
	if t := c.sb.RetireEvent(now); t <= now {
		return now
	} else {
		add(t)
	}

	// In-order write-back from the SCB window head.
	if c.win.len() > 0 {
		e := c.win.at(0)
		wb := e.done
		if wb < c.lastWB {
			wb = c.lastWB
		}
		if wb > now {
			add(wb)
		} else if e.op.Class != isa.Store || !c.sb.Full() {
			return now // write-back proceeds this cycle
		}
		// Store blocked on a full SB: unblocks via the SB retire event.
	}

	// Issue from the IQ head (stall-on-use: only the head matters).
	if c.iq.len() > 0 {
		op := c.iq.at(0).op
		var ready int64
		for _, s := range [...]isa.Reg{op.Src1, op.Src2} {
			if s.Valid() && c.regReady[s] > ready {
				ready = c.regReady[s]
			}
		}
		switch {
		case ready > now:
			add(ready) // operand arrival (also flips stall.src → stall.res)
		case c.win.len() >= c.cfg.SCBSize:
			// Window full: drains via write-back, covered above.
		case !c.fus.CanIssue(op.Class, now):
			add(c.fus.NextFree(op.Class, now))
		default:
			return now // head issues this cycle
		}
	}

	// Dispatch and fetch.
	if c.fe.BufLen() > 0 && c.iq.len() < c.cfg.IQSize {
		return now
	}
	if t := c.fe.NextFetchEvent(now); t <= now {
		return now
	} else {
		add(t)
	}
	return next
}

// ffSig is a cheap progress signature: if any field changes across a cycle,
// that cycle was not idle.
type ffSig struct {
	committed, fetched, issued, l1 uint64
	iq, win, sb, buf               int
}

func (c *Core) ffSig() ffSig {
	return ffSig{
		committed: c.committed,
		fetched:   c.fe.Fetched,
		issued:    c.fus.IssuedTotal(),
		l1:        c.acct.L1Access,
		iq:        c.iq.len(),
		win:       c.win.len(),
		sb:        c.sb.Len(),
		buf:       c.fe.BufLen(),
	}
}

// FastForward runs one real Cycle() and, if that cycle turned out idle,
// jumps the clock toward `to`. Cycle() remains the single source of truth
// for per-cycle accounting; the embedded cycle's deltas (energy counts,
// stall counters, occupancy samples) are replayed in bulk for the skipped
// copies. Returns false when the embedded cycle changed observable state —
// the cycle stands as a normal cycle and nothing was skipped. The jump
// target is re-clamped by the queue's post-cycle horizon, which sees any
// wakeup the embedded cycle itself registered.
func (c *Core) FastForward(to int64) bool {
	sig := c.ffSig()
	c.acct.BeginDelta()
	src0, res0, sbReads0 := c.IssueStallsSrc, c.IssueStallsRes, c.sb.Reads
	cpi0 := c.cpi
	c.Cycle()
	if c.ffSig() != sig {
		return false
	}
	if h := c.wq.Horizon(c.now); h < to {
		to = h
	}
	n := to - c.now
	if n <= 0 {
		return true
	}
	un := uint64(n)
	c.acct.ScaleDelta(un)
	c.IssueStallsSrc += (c.IssueStallsSrc - src0) * un
	c.IssueStallsRes += (c.IssueStallsRes - res0) * un
	c.sb.Reads += (c.sb.Reads - sbReads0) * un
	c.cpi.ScaleDelta(&cpi0, un)
	c.OccIQ.AddN(c.iq.len(), un)
	c.OccSCB.AddN(c.win.len(), un)
	c.OccSB.AddN(c.sb.Len(), un)
	c.now += n
	return true
}
