package ino

import "casino/internal/stats"

// PublishMetrics snapshots the core's counters and occupancy histograms
// into the registry. Scalar names match the legacy Result.Extra keys.
func (c *Core) PublishMetrics(r *stats.Registry) {
	r.Counter("mispredicts", c.Mispredicts())
	r.Counter("forwards", c.LoadsForwarded)
	r.Counter("stall.src", c.IssueStallsSrc)
	r.Counter("stall.res", c.IssueStallsRes)
	r.Hist("occ.iq", c.OccIQ)
	r.Hist("occ.scb", c.OccSCB)
	r.Hist("occ.sb", c.OccSB)
	c.cpi.Publish(r)
}
