package mem

// Functional warming: the sampled-simulation driver (internal/sim) replays
// the trace between detailed windows against only the long-lived memory
// state — cache tags/LRU/dirty bits, L2 prefetcher training, DRAM open rows
// and bank/bus backlog — so the hierarchy never goes cold while the pipeline
// is skipped. The Warm* entry points are content-plus-backlog only: no MSHR
// occupancy, no wakeup-queue registration, and none of the timing-path
// statistics (Loads/Stores/Fetches/LoadsByLvl, cache Accesses/Misses, DRAM
// row counters) move, so a detailed window's counters describe only cycles
// that were actually simulated.
//
// Each entry point takes the warmer's virtual clock vt and returns a stall:
// the queueing excess a demand DRAM fill paid beyond its worst-case unqueued
// service time (see DRAM.WarmDemand). The warmer adds the stall to vt —
// that is how the accumulated bank/bus debt of an unthrottled prefetch or
// writeback stream gets charged to the gap it is paid in, mirroring the
// timing path where a blocked demand miss absorbs the whole backlog.

// WarmStats counts functional-warming activity, kept apart from the
// timing-path counters of the structures it touches.
type WarmStats struct {
	Fetches   uint64 // warmed I-side line fetches
	Loads     uint64
	Stores    uint64
	L1IMisses uint64
	L1DMisses uint64
	L2Misses  uint64
	DRAMStall uint64 // virtual cycles spent paying DRAM backlog
}

// WarmFetch replays an instruction fetch of the line containing pc at
// virtual time vt against cache contents and DRAM backlog.
func (h *Hierarchy) WarmFetch(pc uint64, vt int64) int64 {
	h.Warm.Fetches++
	// Clean I-side lines never write back.
	if hit, _, _ := h.L1I.WarmAccess(pc, false); hit {
		return 0
	}
	h.Warm.L1IMisses++
	return h.warmFillFromL2(pc, vt)
}

// WarmLoad replays a data load at virtual time vt.
func (h *Hierarchy) WarmLoad(pc, addr uint64, vt int64) int64 {
	h.Warm.Loads++
	return h.warmData(pc, addr, false, vt)
}

// WarmStore replays a store (write-allocate, like the timing path).
func (h *Hierarchy) WarmStore(pc, addr uint64, vt int64) int64 {
	h.Warm.Stores++
	return h.warmData(pc, addr, true, vt)
}

func (h *Hierarchy) warmData(pc, addr uint64, write bool, vt int64) int64 {
	hit, wb, victim := h.L1D.WarmAccess(addr, write)
	if hit {
		return 0
	}
	h.Warm.L1DMisses++
	// Mirror the timing path: dirty L1 victims install into L2 (their own
	// dirty victims write back to DRAM off the critical path), demand
	// misses train the prefetcher, and the fill is read-allocated.
	if wb {
		if _, wb2, v2 := h.L2.WarmAccess(victim, true); wb2 {
			h.DRAM.WarmAccess(v2, true, vt)
		}
	}
	if h.pf != nil {
		h.warmTrainPrefetcher(pc, addr, vt)
	}
	return h.warmFillFromL2(addr, vt)
}

// warmFillFromL2 replays fillFromL2 without MSHR/wakeup timing: the L2
// lookup allocates on miss, dirty victims write back off the critical path,
// and the demand fill itself reports its queueing excess so the warmer can
// charge outstanding DRAM backlog to the virtual clock.
func (h *Hierarchy) warmFillFromL2(addr uint64, vt int64) int64 {
	hit, wb, victim := h.L2.WarmAccess(addr, false)
	if hit {
		return 0
	}
	h.Warm.L2Misses++
	if wb {
		h.DRAM.WarmAccess(victim, true, vt)
	}
	stall := h.DRAM.WarmDemand(addr, vt)
	h.Warm.DRAMStall += uint64(stall)
	return stall
}

// warmTrainPrefetcher mirrors trainPrefetcher: prefetch fills install into
// the L2 instantly but their DRAM traffic occupies banks and the bus — the
// principal source of the backlog WarmDemand later charges.
func (h *Hierarchy) warmTrainPrefetcher(pc, addr uint64, vt int64) {
	for _, pa := range h.pf.Train(pc, addr) {
		if h.L2.Probe(pa) {
			continue
		}
		h.DRAM.WarmAccess(pa, false, vt)
		if wb, v := h.L2.Fill(pa); wb {
			h.DRAM.WarmAccess(v, true, vt)
		}
	}
}

// ResetTiming prepares the hierarchy for a detailed window whose model
// starts a fresh clock at cycle 0, given the virtual time elapsed since the
// previous window's clock began. Window-local occupancy that cannot survive
// a clock restart (MSHR fills and slots) is cleared; DRAM bank/bus busy
// times — long-lived backlog — are rebased into the new clock instead, so
// the window inherits exactly the debt the warmed stream left outstanding.
// Cache contents, the prefetcher table, DRAM open rows and all statistics
// are untouched.
func (h *Hierarchy) ResetTiming(elapsed int64) {
	h.mshr.ResetTiming()
	h.DRAM.Rebase(elapsed)
	h.wq = nil // the window's model attaches its own queue (Wake is nil-safe)
}
