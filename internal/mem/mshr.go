package mem

// MSHRs models a cache's miss-status holding registers: the bound on
// outstanding misses (and therefore on exploitable MLP), with same-line
// merging.
type MSHRs struct {
	slotFree []int64          // per-slot: cycle at which the slot frees
	fills    map[uint64]int64 // outstanding line fills: line -> ready cycle

	Allocs uint64
	Merges uint64
	Stalls uint64 // allocations that had to wait for a free slot
}

// NewMSHRs creates a file of n miss registers.
func NewMSHRs(n int) *MSHRs {
	if n < 1 {
		n = 1
	}
	return &MSHRs{slotFree: make([]int64, n), fills: make(map[uint64]int64, 4*n)}
}

// Lookup reports whether a fill of line is already outstanding at cycle t,
// and if so when it completes. A hit here is an MSHR merge.
func (m *MSHRs) Lookup(line uint64, t int64) (ready int64, outstanding bool) {
	r, ok := m.fills[line]
	if !ok || r <= t {
		if ok {
			delete(m.fills, line) // lazily expire completed fills
		}
		return 0, false
	}
	m.Merges++
	return r, true
}

// Allocate reserves a slot for a new miss of line arriving at cycle t and
// returns the cycle at which the miss can start being serviced (== t unless
// all slots are busy). Call Complete when the fill time is known.
func (m *MSHRs) Allocate(line uint64, t int64) (start int64) {
	m.Allocs++
	best := 0
	for i, f := range m.slotFree {
		if f <= t {
			m.slotFree[i] = 1 << 62 // claimed; fixed up by Complete
			return t
		}
		if f < m.slotFree[best] {
			best = i
		}
	}
	m.Stalls++
	start = m.slotFree[best]
	m.slotFree[best] = 1 << 62
	return start
}

// Complete records that the miss of line allocated earlier finishes at
// ready, releasing its slot at that time.
func (m *MSHRs) Complete(line uint64, ready int64) {
	// Release the claimed slot (the one parked at 1<<62).
	for i, f := range m.slotFree {
		if f == 1<<62 {
			m.slotFree[i] = ready
			break
		}
	}
	m.fills[line] = ready
	if len(m.fills) > 8*len(m.slotFree) {
		m.prune(ready)
	}
}

func (m *MSHRs) prune(now int64) {
	for l, r := range m.fills {
		if r <= now {
			delete(m.fills, l)
		}
	}
}

// ResetTiming clears slot occupancy and outstanding fills — pure timing
// state that cannot survive a clock restart — while keeping statistics.
func (m *MSHRs) ResetTiming() {
	for i := range m.slotFree {
		m.slotFree[i] = 0
	}
	clear(m.fills) // keep the map's capacity: sampled runs reset per window
}

// Reset clears all state and statistics.
func (m *MSHRs) Reset() {
	for i := range m.slotFree {
		m.slotFree[i] = 0
	}
	m.fills = make(map[uint64]int64, 4*len(m.slotFree))
	m.Allocs, m.Merges, m.Stalls = 0, 0, 0
}
