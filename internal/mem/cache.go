// Package mem models the memory subsystem of Table I: 32 KiB 8-way L1I and
// L1D (4-cycle), a unified 1 MiB 16-way L2 (11-cycle) with a stride-based
// prefetcher, MSHRs for non-blocking misses, and a DDR4-2400 DRAM with a
// bank/row timing model (the Ramulator stand-in).
//
// The model is timing-only and synchronous: an access performed at cycle t
// returns the cycle at which its data is available, updating internal
// occupancy state (MSHRs, DRAM banks, channel) so that concurrent misses
// contend realistically. This is what bounds and exposes MLP.
package mem

import "fmt"

// BlockBits is log2 of the cache line size (64-byte lines).
const BlockBits = 6

// BlockSize is the cache line size in bytes.
const BlockSize = 1 << BlockBits

// LineAddr returns the line-granular address of a byte address.
func LineAddr(addr uint64) uint64 { return addr >> BlockBits }

// Cache is a set-associative write-back, write-allocate cache with true-LRU
// replacement. It tracks hit/miss and dirty evictions; timing is composed
// by Hierarchy.
type Cache struct {
	name     string
	sets     int
	ways     int
	setMask  uint64
	tags     []uint64 // sets*ways entries; tag = lineAddr
	valid    []bool
	dirty    []bool
	lruAge   []uint64 // smaller = older
	ageClock uint64
	last     int32 // entry index of the most recent hit or allocation

	Accesses uint64
	Misses   uint64
	Evicts   uint64
	DirtyEvs uint64
}

// NewCache creates a cache of size bytes with the given associativity.
// size must be a power-of-two multiple of ways*BlockSize.
func NewCache(name string, size, ways int) *Cache {
	if ways < 1 || size < ways*BlockSize {
		panic(fmt.Sprintf("mem: bad cache geometry %s size=%d ways=%d", name, size, ways))
	}
	sets := size / (ways * BlockSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: %s set count %d not a power of two", name, sets))
	}
	n := sets * ways
	return &Cache{
		name: name, sets: sets, ways: ways, setMask: uint64(sets - 1),
		tags: make([]uint64, n), valid: make([]bool, n), dirty: make([]bool, n),
		lruAge: make([]uint64, n), last: -1,
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(line uint64) int { return int(line & c.setMask) }

// Probe reports whether the line containing addr is present, without
// updating any state.
func (c *Cache) Probe(addr uint64) bool {
	line := LineAddr(addr)
	base := c.setOf(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Access performs a read (write=false) or write (write=true) of addr.
// On a miss the line is allocated (write-allocate), evicting the LRU way.
// It returns hit, and for an allocation that displaced a dirty line,
// wroteBack=true with the evicted line address.
func (c *Cache) Access(addr uint64, write bool) (hit bool, wroteBack bool, victim uint64) {
	return c.access(addr, write, true)
}

// WarmAccess is Access without statistics: the functional-warming path
// (see Hierarchy's Warm* methods) updates tags, LRU order and dirty bits
// exactly like Access but leaves Accesses/Misses/Evicts/DirtyEvs counting
// timing-path traffic only. Re-touching the most recently used entry — the
// common case under a replayed reference stream's spatial locality — skips
// the set scan; a full tag match on the remembered index makes the shortcut
// exact (the state evolution is identical to the scanned path).
func (c *Cache) WarmAccess(addr uint64, write bool) (hit bool, wroteBack bool, victim uint64) {
	line := LineAddr(addr)
	if i := c.last; i >= 0 && c.valid[i] && c.tags[i] == line {
		c.ageClock++
		c.lruAge[i] = c.ageClock
		if write {
			c.dirty[i] = true
		}
		return true, false, 0
	}
	return c.access(addr, write, false)
}

func (c *Cache) access(addr uint64, write, count bool) (hit bool, wroteBack bool, victim uint64) {
	if count {
		c.Accesses++
	}
	line := LineAddr(addr)
	set := c.setOf(line)
	base := set * c.ways
	c.ageClock++
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.lruAge[i] = c.ageClock
			if write {
				c.dirty[i] = true
			}
			c.last = int32(i)
			return true, false, 0
		}
	}
	if count {
		c.Misses++
	}
	// Allocate: choose invalid way or LRU.
	vi := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			vi = i
			oldest = 0
			break
		}
		if c.lruAge[i] < oldest {
			oldest = c.lruAge[i]
			vi = i
		}
	}
	if c.valid[vi] {
		if count {
			c.Evicts++
		}
		if c.dirty[vi] {
			if count {
				c.DirtyEvs++
			}
			wroteBack = true
			victim = c.tags[vi] << BlockBits
		}
	}
	c.valid[vi] = true
	c.tags[vi] = line
	c.dirty[vi] = write
	c.lruAge[vi] = c.ageClock
	c.last = int32(vi)
	return false, wroteBack, victim
}

// Fill inserts the line containing addr without counting an access (used
// for prefetches). Returns dirty-eviction info like Access.
func (c *Cache) Fill(addr uint64) (wroteBack bool, victim uint64) {
	c.Accesses-- // Access below will re-increment; keep prefetches uncounted
	hit, wb, v := c.Access(addr, false)
	if hit {
		return false, 0
	}
	c.Misses-- // do not count prefetch fills as demand misses
	return wb, v
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
		c.lruAge[i] = 0
		c.tags[i] = 0
	}
	c.ageClock = 0
	c.last = -1
	c.Accesses, c.Misses, c.Evicts, c.DirtyEvs = 0, 0, 0, 0
}

// MissRate returns Misses/Accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
