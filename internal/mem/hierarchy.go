package mem

import "casino/internal/eventq"

// Config holds the memory-system parameters of Table I.
type Config struct {
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	L1Latency        int // cycles (both L1I and L1D)
	L2Latency        int
	L1DMSHRs         int
	L2MSHRs          int
	PrefetchDegree   int // 0 disables the L2 prefetcher
	DRAMSpeedMTS     int // DDR4 speed grade in MT/s (0 = 2400)
}

// DefaultConfig returns the Table I memory system: 32 KiB 8-way L1s with
// 4-cycle latency, 1 MiB 16-way L2 with 11-cycle latency and a stride
// prefetcher, DDR4-2400 DRAM.
func DefaultConfig() Config {
	return Config{
		L1ISize: 32 << 10, L1IWays: 8,
		L1DSize: 32 << 10, L1DWays: 8,
		L2Size: 1 << 20, L2Ways: 16,
		L1Latency: 4, L2Latency: 11,
		L1DMSHRs: 8, L2MSHRs: 16,
		PrefetchDegree: 2,
		DRAMSpeedMTS:   2400,
	}
}

// Level identifies where an access was satisfied.
type Level uint8

// Hit levels returned by Load.
const (
	LvlL1 Level = iota
	LvlL2
	LvlMem
)

func (l Level) String() string {
	switch l {
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	default:
		return "Mem"
	}
}

// Hierarchy composes the caches, MSHRs, prefetcher and DRAM, and provides
// the three timing entry points used by cores: Fetch (L1I), Load and Store
// (L1D). All return the core cycle at which the access completes.
type Hierarchy struct {
	cfg  Config
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	DRAM *DRAM
	mshr *MSHRs
	pf   *StridePrefetcher
	wq   *eventq.Queue

	Loads      uint64
	Stores     uint64
	Fetches    uint64
	LoadsByLvl [3]uint64

	// Warm counts functional-warming replay activity (see warm.go); the
	// timing counters above never move during warming.
	Warm WarmStats
}

// NewHierarchy builds a hierarchy with the given configuration.
func NewHierarchy(cfg Config) *Hierarchy {
	mts := cfg.DRAMSpeedMTS
	if mts == 0 {
		mts = 2400
	}
	h := &Hierarchy{
		cfg:  cfg,
		L1I:  NewCache("L1I", cfg.L1ISize, cfg.L1IWays),
		L1D:  NewCache("L1D", cfg.L1DSize, cfg.L1DWays),
		L2:   NewCache("L2", cfg.L2Size, cfg.L2Ways),
		DRAM: NewDRAMGrade(mts),
		mshr: NewMSHRs(cfg.L1DMSHRs),
	}
	if cfg.PrefetchDegree > 0 {
		h.pf = NewStridePrefetcher(cfg.PrefetchDegree)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// SetWakeQueue attaches the shared wakeup queue; every L1D fill completion
// (MSHR/DRAM return) is registered as it is recorded. Callers also register
// the completion cycles they store, so these wakeups mostly coalesce — they
// exist so the memory system upholds the registration contract on its own.
func (h *Hierarchy) SetWakeQueue(q *eventq.Queue) { h.wq = q }

// Fetch models an instruction fetch of the line containing pc at cycle t
// and returns the completion cycle (t + L1 latency on a hit).
func (h *Hierarchy) Fetch(pc uint64, t int64) int64 {
	h.Fetches++
	hit, _, _ := h.L1I.Access(pc, false)
	if hit {
		return t + int64(h.cfg.L1Latency)
	}
	// Instruction misses go through L2/DRAM without occupying data MSHRs.
	done := h.fillFromL2(pc, t+int64(h.cfg.L1Latency), false)
	return done
}

// Load models a data load at cycle t; pc is the load's PC (prefetcher
// training). It returns the completion cycle and the level that served it.
func (h *Hierarchy) Load(pc, addr uint64, t int64) (int64, Level) {
	h.Loads++
	line := LineAddr(addr)
	hit, wb, victim := h.L1D.Access(addr, false)
	if hit {
		// The tag may be installed while its fill is still in flight
		// (hit-under-miss): such loads merge with the outstanding fill.
		if ready, out := h.mshr.Lookup(line, t); out {
			h.LoadsByLvl[LvlMem]++
			return ready, LvlMem
		}
		h.LoadsByLvl[LvlL1]++
		return t + int64(h.cfg.L1Latency), LvlL1
	}
	h.writebackToL2(wb, victim)
	if ready, out := h.mshr.Lookup(line, t); out {
		// Merge with an in-flight fill of the same line.
		h.LoadsByLvl[LvlMem]++ // merged requests were memory-bound
		min := t + int64(h.cfg.L1Latency)
		if ready < min {
			ready = min
		}
		return ready, LvlMem
	}
	start := h.mshr.Allocate(line, t)
	if h.pf != nil {
		h.trainPrefetcher(pc, addr, start)
	}
	probeL2 := start + int64(h.cfg.L1Latency)
	done := h.fillFromL2(addr, probeL2, false)
	h.mshr.Complete(line, done)
	h.wq.Wake(done)
	lvl := LvlL2
	if done > probeL2+int64(h.cfg.L2Latency) {
		lvl = LvlMem
	}
	h.LoadsByLvl[lvl]++
	return done, lvl
}

// Store models a store's cache update (performed when the store retires
// from the store buffer) at cycle t. Write-allocate: a miss fetches the
// line before completing.
func (h *Hierarchy) Store(pc, addr uint64, t int64) int64 {
	h.Stores++
	line := LineAddr(addr)
	hit, wb, victim := h.L1D.Access(addr, true)
	if hit {
		if ready, out := h.mshr.Lookup(line, t); out {
			return ready
		}
		return t + int64(h.cfg.L1Latency)
	}
	h.writebackToL2(wb, victim)
	if ready, out := h.mshr.Lookup(line, t); out {
		min := t + int64(h.cfg.L1Latency)
		if ready < min {
			ready = min
		}
		return ready
	}
	start := h.mshr.Allocate(line, t)
	if h.pf != nil {
		h.trainPrefetcher(pc, addr, start)
	}
	done := h.fillFromL2(addr, start+int64(h.cfg.L1Latency), false)
	h.mshr.Complete(line, done)
	h.wq.Wake(done)
	return done
}

// fillFromL2 looks up the L2 at cycle t and, on a miss, the DRAM; it
// returns the completion cycle of the fill.
func (h *Hierarchy) fillFromL2(addr uint64, t int64, write bool) int64 {
	hit, wb, victim := h.L2.Access(addr, write)
	if wb {
		// L2 dirty eviction: write back to DRAM, charged to the bus but
		// not on this access's critical path.
		h.DRAM.Access(victim, true, t)
	}
	if hit {
		return t + int64(h.cfg.L2Latency)
	}
	return h.DRAM.Access(addr, false, t+int64(h.cfg.L2Latency))
}

func (h *Hierarchy) writebackToL2(wb bool, victim uint64) {
	if !wb {
		return
	}
	// L1 dirty eviction installs into L2 (timing off critical path).
	_, wb2, v2 := h.L2.Access(victim, true)
	if wb2 {
		h.DRAM.Access(v2, true, 0)
	}
}

func (h *Hierarchy) trainPrefetcher(pc, addr uint64, t int64) {
	for _, pa := range h.pf.Train(pc, addr) {
		if h.L2.Probe(pa) {
			continue
		}
		h.DRAM.Access(pa, false, t)
		if wb, v := h.L2.Fill(pa); wb {
			h.DRAM.Access(v, true, t)
		}
	}
}

// Reset clears all cache/DRAM/MSHR state and statistics.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.DRAM.Reset()
	h.mshr.Reset()
	if h.pf != nil {
		h.pf.Reset()
	}
	h.Loads, h.Stores, h.Fetches = 0, 0, 0
	h.LoadsByLvl = [3]uint64{}
	h.Warm = WarmStats{}
	h.wq = nil // detach the previous run's wakeup queue (Wake is nil-safe)
}

// MSHRStats exposes MSHR activity (allocs, merges, full-stalls).
func (h *Hierarchy) MSHRStats() (allocs, merges, stalls uint64) {
	return h.mshr.Allocs, h.mshr.Merges, h.mshr.Stalls
}
