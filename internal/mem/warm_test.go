package mem

import (
	"math/rand"
	"testing"
)

// TestCacheWarmAccessParity: WarmAccess must evolve tags/LRU/dirty bits
// exactly like Access (including the remembered-index shortcut) while
// moving none of the timing-path statistics. Two caches replay the same
// pseudorandom stream, one per entry point, and must agree on every
// per-op outcome and on final contents.
func TestCacheWarmAccessParity(t *testing.T) {
	timed := NewCache("timed", 8<<10, 4)
	warmed := NewCache("warmed", 8<<10, 4)
	rng := rand.New(rand.NewSource(11))
	var addrs []uint64
	for i := 0; i < 20000; i++ {
		// Cluster addresses so the stream mixes hits (and repeated
		// touches of the MRU line, exercising the warm shortcut), misses,
		// and dirty evictions within a bounded footprint.
		addr := uint64(rng.Intn(512))*BlockSize + uint64(rng.Intn(8))*64<<10
		write := rng.Intn(4) == 0
		h1, wb1, v1 := timed.Access(addr, write)
		h2, wb2, v2 := warmed.WarmAccess(addr, write)
		if h1 != h2 || wb1 != wb2 || v1 != v2 {
			t.Fatalf("op %d (%#x write=%v): Access=(%v,%v,%#x) WarmAccess=(%v,%v,%#x)",
				i, addr, write, h1, wb1, v1, h2, wb2, v2)
		}
		addrs = append(addrs, addr)
	}
	if warmed.Accesses != 0 || warmed.Misses != 0 || warmed.Evicts != 0 || warmed.DirtyEvs != 0 {
		t.Errorf("WarmAccess moved timing statistics: %+v",
			[]uint64{warmed.Accesses, warmed.Misses, warmed.Evicts, warmed.DirtyEvs})
	}
	if timed.Misses == 0 || timed.DirtyEvs == 0 {
		t.Fatalf("stream too tame to validate parity: misses=%d dirtyEvs=%d", timed.Misses, timed.DirtyEvs)
	}
	for _, a := range addrs {
		if timed.Probe(a) != warmed.Probe(a) {
			t.Fatalf("contents diverge at %#x", a)
		}
	}
}

// TestDRAMWarmAccessParity: WarmAccess must return the same completion
// times as Access (bank/bus occupancy and open rows are the warmed state)
// while keeping every statistic at zero.
func TestDRAMWarmAccessParity(t *testing.T) {
	timed := NewDRAM()
	warmed := NewDRAM()
	rng := rand.New(rand.NewSource(13))
	var vt int64
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(1<<20)) * BlockSize
		write := rng.Intn(3) == 0
		vt += int64(rng.Intn(20))
		d1 := timed.Access(addr, write, vt)
		d2 := warmed.WarmAccess(addr, write, vt)
		if d1 != d2 {
			t.Fatalf("op %d (%#x write=%v t=%d): Access done=%d WarmAccess done=%d",
				i, addr, write, vt, d1, d2)
		}
	}
	if warmed.Reads != 0 || warmed.Writes != 0 || warmed.RowHits != 0 ||
		warmed.RowMisses != 0 || warmed.RowConfl != 0 {
		t.Errorf("WarmAccess moved DRAM statistics: %+v",
			[]uint64{warmed.Reads, warmed.Writes, warmed.RowHits, warmed.RowMisses, warmed.RowConfl})
	}
}

// TestDRAMWarmDemandExcess: an unloaded device charges no queueing excess
// (the warmer's base CPI already covers unqueued service latency); a bus
// backlog built by a prior write burst is charged, and its magnitude is
// exactly the wait beyond the worst-case unqueued service time.
func TestDRAMWarmDemandExcess(t *testing.T) {
	d := NewDRAM()
	if ex := d.WarmDemand(0, 0); ex != 0 {
		t.Fatalf("cold demand charged %d cycles of excess", ex)
	}

	d = NewDRAM()
	// A same-bank write burst serializes on bank and bus, building debt.
	var done int64
	for i := 0; i < 64; i++ {
		done = d.WarmAccess(uint64(i)*BlockSize*16*BlockSize, true, 0)
	}
	ex := d.WarmDemand(1<<30, 0)
	if ex <= 0 {
		t.Fatalf("demand behind a %d-cycle backlog charged no excess", done)
	}
	if ex > done {
		t.Errorf("excess %d exceeds the raw backlog %d (worst-case service is pre-paid)", ex, done)
	}
}

// TestDRAMRebase: sliding the clock back by the elapsed virtual time must
// preserve residual backlog exactly, and a rebase past the backlog clamps
// busy times to zero (a fully drained device).
func TestDRAMRebase(t *testing.T) {
	build := func() *DRAM {
		d := NewDRAM()
		for i := 0; i < 64; i++ {
			d.WarmAccess(uint64(i)*BlockSize*16*BlockSize, true, 0)
		}
		return d
	}
	ref := build()
	exAt := ref.WarmDemand(1<<30, 100) // excess seen 100 cycles in

	d := build()
	d.Rebase(100)
	if got := d.WarmDemand(1<<30, 0); got != exAt {
		t.Errorf("rebased excess %d, want %d (backlog must be clock-invariant)", got, exAt)
	}

	d = build()
	d.Rebase(1 << 40)
	if got := d.WarmDemand(1<<30, 0); got != 0 {
		t.Errorf("excess %d after draining rebase, want 0", got)
	}
}

// TestMSHRsResetTiming: a clock restart clears occupancy (outstanding
// fills and busy slots) but keeps the statistics.
func TestMSHRsResetTiming(t *testing.T) {
	m := NewMSHRs(2)
	m.Allocate(0x100, 0)
	m.Complete(0x100, 500)
	m.Allocate(0x200, 0)
	m.Complete(0x200, 600)
	m.Allocate(0x300, 0) // both slots busy until 500: stalls
	m.Complete(0x300, 700)
	if _, out := m.Lookup(0x100, 10); !out {
		t.Fatal("fill of 0x100 should be outstanding before reset")
	}
	allocs, merges, stalls := m.Allocs, m.Merges, m.Stalls
	if stalls == 0 || merges == 0 {
		t.Fatalf("scenario should stall and merge: %d/%d", stalls, merges)
	}

	m.ResetTiming()
	if _, out := m.Lookup(0x100, 10); out {
		t.Error("outstanding fill survived ResetTiming")
	}
	if start := m.Allocate(0x400, 7); start != 7 {
		t.Errorf("slot still busy after ResetTiming: start=%d, want 7", start)
	}
	if m.Merges != merges || m.Stalls != stalls {
		t.Errorf("ResetTiming changed stats: merges %d->%d stalls %d->%d",
			merges, m.Merges, stalls, m.Stalls)
	}
	if m.Allocs != allocs+1 {
		t.Errorf("Allocs = %d, want %d", m.Allocs, allocs+1)
	}
}

// TestHierarchyWarmSharesContents: a warmed line is a later detailed hit
// (shared long-lived state), warm traffic moves only WarmStats, and
// ResetTiming leaves cache contents and statistics untouched.
func TestHierarchyWarmSharesContents(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	const addr = 0xABCD00
	h.WarmLoad(0x400, addr, 0)
	if !h.L1D.Probe(addr) {
		t.Fatal("warmed load did not install into L1D")
	}
	if h.Warm.Loads != 1 || h.Warm.L1DMisses != 1 || h.Warm.L2Misses != 1 {
		t.Errorf("WarmStats = %+v, want 1 load/L1D miss/L2 miss", h.Warm)
	}
	if h.L1D.Accesses != 0 || h.L2.Accesses != 0 || h.DRAM.Reads != 0 {
		t.Error("warm load moved timing-path statistics")
	}
	h.ResetTiming(1000)
	if !h.L1D.Probe(addr) || !h.L2.Probe(addr) {
		t.Error("ResetTiming evicted warmed contents")
	}
	if h.Warm.Loads != 1 {
		t.Error("ResetTiming cleared WarmStats")
	}
}
