package mem

import "testing"

// The fast-forward driver jumps the clock to load-completion times, so the
// hierarchy's completion cycles are load-bearing in a new way: a merge that
// reported a completion earlier than the fill it merged with would hand the
// driver an event horizon in the past of real work. These tests pin the
// invariant at both the MSHR and the Hierarchy level.

// TestMSHRMergeNeverEarlierThanFill checks the raw MSHR file: a Lookup that
// merges with an outstanding fill reports exactly that fill's ready cycle,
// and the entry expires once the fill completes.
func TestMSHRMergeNeverEarlierThanFill(t *testing.T) {
	m := NewMSHRs(4)
	const line, fillReady = 0x1000, int64(250)
	if start := m.Allocate(line, 10); start != 10 {
		t.Fatalf("Allocate with free slots delayed start to %d", start)
	}
	m.Complete(line, fillReady)
	for _, probe := range []int64{11, 100, fillReady - 1} {
		ready, out := m.Lookup(line, probe)
		if !out {
			t.Fatalf("fill not outstanding at %d", probe)
		}
		if ready != fillReady {
			t.Errorf("merge at %d returned %d, want the fill's ready %d", probe, ready, fillReady)
		}
	}
	if _, out := m.Lookup(line, fillReady); out {
		t.Error("fill still outstanding at its own ready cycle")
	}
	if m.Merges != 3 {
		t.Errorf("Merges = %d, want 3", m.Merges)
	}
}

// TestMSHRAllocateStallsWhenFull checks that with every slot busy, a new
// miss starts no earlier than the soonest slot release — never in the past
// of the fills occupying the file.
func TestMSHRAllocateStallsWhenFull(t *testing.T) {
	m := NewMSHRs(2)
	m.Allocate(0x100, 0)
	m.Complete(0x100, 300)
	m.Allocate(0x200, 0)
	m.Complete(0x200, 200)
	start := m.Allocate(0x300, 5)
	if start != 200 {
		t.Errorf("full MSHRs: start = %d, want the earliest slot release 200", start)
	}
	if m.Stalls != 1 {
		t.Errorf("Stalls = %d, want 1", m.Stalls)
	}
}

// TestHierarchyMergeCompletionOrdering drives the full Load path: a miss
// that goes to DRAM, then same-line loads during the fill — both the
// tag-already-installed (hit-under-miss) case and the tag-miss case — must
// complete no earlier than the fill they merge with, and no earlier than
// their own L1 pipeline floor.
func TestHierarchyMergeCompletionOrdering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0 // keep DRAM timing attributable to the one miss
	h := NewHierarchy(cfg)
	const addr = uint64(0x4_0000)

	done1, lvl1 := h.Load(0x40, addr, 100)
	if lvl1 != LvlMem {
		t.Fatalf("first access level = %v, want Mem", lvl1)
	}
	if done1 <= 100+int64(cfg.L1Latency+cfg.L2Latency) {
		t.Fatalf("first miss completed at %d — did not reach DRAM", done1)
	}

	// The tag is installed, so this load hits L1 but must ride the fill.
	done2, lvl2 := h.Load(0x44, addr+8, 120)
	if lvl2 != LvlMem {
		t.Errorf("hit-under-miss level = %v, want Mem", lvl2)
	}
	if done2 < done1 {
		t.Errorf("hit-under-miss completed at %d, before the fill at %d", done2, done1)
	}

	// A different line mapping to a fresh miss immediately followed by its
	// own merge: the merged completion keeps the L1-latency floor even when
	// the fill is (artificially) nearly done.
	_, merges, _ := h.MSHRStats()
	if merges == 0 {
		t.Error("no MSHR merge recorded for the hit-under-miss load")
	}

	// Late merge just before completion. The tag hit forwards straight from
	// the in-flight fill (no second L1 pipeline pass), so the only floor is
	// the fill itself: completion must never precede it.
	tLate := done1 - 1
	done3, _ := h.Load(0x48, addr+16, tLate)
	if done3 < done1 {
		t.Errorf("late merge completed at %d, before the fill at %d", done3, done1)
	}
	if done3 <= tLate {
		t.Errorf("late merge completed at %d, not after its own issue at %d", done3, tLate)
	}

	// After the fill lands, the line is a plain L1 hit.
	done4, lvl4 := h.Load(0x4c, addr, done1+10)
	if lvl4 != LvlL1 || done4 != done1+10+int64(cfg.L1Latency) {
		t.Errorf("post-fill access: level %v done %d, want L1 hit at +%d", lvl4, done4, cfg.L1Latency)
	}
}

// TestHierarchyStoreMergeOrdering checks the same invariant on the store
// path (stores update the cache at SB retirement, and the SB retire event
// feeds the fast-forward horizon directly).
func TestHierarchyStoreMergeOrdering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	h := NewHierarchy(cfg)
	const addr = uint64(0x8_0000)
	done1, lvl1 := h.Load(0x40, addr, 50)
	if lvl1 != LvlMem {
		t.Fatalf("priming load level = %v, want Mem", lvl1)
	}
	sDone := h.Store(0x50, addr+8, 60)
	if sDone < done1 {
		t.Errorf("store merged with outstanding fill completed at %d, before the fill at %d", sDone, done1)
	}
	if floor := int64(60 + cfg.L1Latency); sDone < floor {
		t.Errorf("store completed at %d, before its L1 floor %d", sDone, floor)
	}
}
