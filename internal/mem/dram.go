package mem

// DRAM models a single-channel, single-rank DDR4-2400 device with 16 banks
// and open-page row-buffer policy, translated to core cycles at 2 GHz.
//
// Timings (DDR4-2400, CL-RCD-RP = 16-16-16 at 1200 MHz command clock):
// one memory cycle = coreHz/memHz = 2000/1200 = 5/3 core cycles. A burst of
// one 64-byte line takes 4 memory clocks (BL8 at DDR). The model tracks,
// per bank, the open row and the time the bank becomes free, plus a shared
// data-bus free time, which is what creates bank-level parallelism and
// queueing under bursts of misses.
type DRAM struct {
	banks    int
	rowBytes uint64
	bankFree []int64
	openRow  []int64 // -1 = closed
	busFree  int64

	// core-cycle latencies
	tCAS   int64 // column access (row hit)
	tRCD   int64 // activate
	tRP    int64 // precharge
	tBurst int64

	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	RowConfl  uint64 // row miss that also required closing an open row
}

// NewDRAM creates the default DDR4-2400 model.
func NewDRAM() *DRAM { return NewDRAMGrade(2400) }

// NewDRAMGrade creates a DDR4 model at the given transfer rate (1600,
// 2400 or 3200 MT/s — JEDEC speed grades with their standard CL-RCD-RP
// timings), still expressed in 2 GHz core cycles. Slower grades raise the
// latency the schedulers must hide; the sensitivity study sweeps this.
func NewDRAMGrade(mts int) *DRAM {
	// Command clock = MT/s / 2; timings per JEDEC bins.
	var clkMHz, trp int64
	switch {
	case mts <= 1600:
		clkMHz, trp = 800, 11 // DDR4-1600J
	case mts <= 2400:
		clkMHz, trp = 1200, 16 // DDR4-2400R
	default:
		clkMHz, trp = 1600, 22 // DDR4-3200W
	}
	memToCore := func(memCycles int64) int64 { return memCycles * 2000 / clkMHz }
	d := &DRAM{
		banks:    16,
		rowBytes: 8 << 10, // 8 KiB row per bank
		tCAS:     memToCore(trp),
		tRCD:     memToCore(trp),
		tRP:      memToCore(trp),
		tBurst:   memToCore(4),
	}
	d.bankFree = make([]int64, d.banks)
	d.openRow = make([]int64, d.banks)
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	return d
}

func (d *DRAM) bankOf(addr uint64) int {
	// Bank interleave on line address above the row offset's low bits to
	// spread streams across banks.
	return int((addr >> BlockBits) % uint64(d.banks))
}

func (d *DRAM) rowOf(addr uint64) int64 {
	return int64(addr / (d.rowBytes * uint64(d.banks)))
}

// Access performs a read or write of the line containing addr, arriving at
// core cycle t. It returns the core cycle at which the data transfer
// completes.
func (d *DRAM) Access(addr uint64, write bool, t int64) int64 {
	return d.access(addr, write, t, true)
}

func (d *DRAM) access(addr uint64, write bool, t int64, count bool) int64 {
	if count {
		if write {
			d.Writes++
		} else {
			d.Reads++
		}
	}
	b := d.bankOf(addr)
	row := d.rowOf(addr)
	start := t
	if d.bankFree[b] > start {
		start = d.bankFree[b]
	}
	var ready int64
	switch {
	case d.openRow[b] == row:
		if count {
			d.RowHits++
		}
		ready = start + d.tCAS
	case d.openRow[b] == -1:
		if count {
			d.RowMisses++
		}
		ready = start + d.tRCD + d.tCAS
	default:
		if count {
			d.RowMisses++
			d.RowConfl++
		}
		ready = start + d.tRP + d.tRCD + d.tCAS
	}
	d.openRow[b] = row
	// Data transfer occupies the shared bus.
	xfer := ready
	if d.busFree > xfer {
		xfer = d.busFree
	}
	done := xfer + d.tBurst
	d.busFree = done
	d.bankFree[b] = done
	return done
}

// WarmAccess replays an access for functional warming on the warmer's
// virtual clock: open rows and bank/bus busy times evolve exactly as under
// Access — DRAM occupancy is long-lived state (an unthrottled prefetch or
// writeback stream builds a bus backlog that a later demand miss pays for
// in one huge stall, possibly long after the traffic that caused it) — but
// none of the Reads/Writes/Row* statistics move.
func (d *DRAM) WarmAccess(addr uint64, write bool, t int64) int64 {
	return d.access(addr, write, t, false)
}

// WarmDemand replays a demand fill (a load the core would block on) at
// virtual time t and returns the queueing excess: how long the access waited
// on busy banks or the bus beyond the worst-case unqueued service time. The
// warmer advances its virtual clock by the excess — the base CPI it applies
// per op already covers typical service latency, so only the backlog
// payment is added on top.
func (d *DRAM) WarmDemand(addr uint64, t int64) int64 {
	done := d.access(addr, false, t, false)
	if ex := done - t - (d.tRP + d.tRCD + d.tCAS + d.tBurst); ex > 0 {
		return ex
	}
	return 0
}

// Rebase slides bank/bus busy times back by elapsed virtual cycles (clamped
// at 0), re-expressing any residual backlog in a clock that restarts at 0.
// The sampled driver calls it when a detailed window opens, so the window
// inherits exactly the debt the warmed reference stream left outstanding.
func (d *DRAM) Rebase(elapsed int64) {
	for i := range d.bankFree {
		if d.bankFree[i] -= elapsed; d.bankFree[i] < 0 {
			d.bankFree[i] = 0
		}
	}
	if d.busFree -= elapsed; d.busFree < 0 {
		d.busFree = 0
	}
}

// Reset clears bank/bus state and statistics.
func (d *DRAM) Reset() {
	for i := range d.bankFree {
		d.bankFree[i] = 0
		d.openRow[i] = -1
	}
	d.busFree = 0
	d.Reads, d.Writes, d.RowHits, d.RowMisses, d.RowConfl = 0, 0, 0, 0, 0
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	total := d.RowHits + d.RowMisses
	if total == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(total)
}
