package mem

import (
	"testing"
	"testing/quick"
)

func TestLevelString(t *testing.T) {
	if LvlL1.String() != "L1" || LvlL2.String() != "L2" || LvlMem.String() != "Mem" {
		t.Error("level names wrong")
	}
}

func TestHierarchyConfigAccessor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Latency = 13
	h := NewHierarchy(cfg)
	if h.Config().L2Latency != 13 {
		t.Error("Config() does not round-trip")
	}
}

func TestDirtyL1EvictionReachesL2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	h := NewHierarchy(cfg)
	// Dirty a line, then walk same-set addresses until it is evicted; the
	// writeback must land in the L2 (no data loss, and the L2 line turns
	// dirty so its own eviction writes DRAM).
	h.Store(0x400, 0x7000, 0)
	setStride := uint64(h.L1D.Sets() * BlockSize)
	tt := int64(500)
	for i := 1; i <= h.L1D.Ways(); i++ {
		d, _ := h.Load(0x400, 0x7000+uint64(i)*setStride, tt)
		tt = d
	}
	if h.L1D.Probe(0x7000) {
		t.Fatal("line not evicted; test setup wrong")
	}
	if !h.L2.Probe(0x7000) {
		t.Error("dirty L1 eviction did not install in L2")
	}
	// Reload: must be an L2 hit, not DRAM.
	_, lvl := h.Load(0x400, 0x7000, tt)
	if lvl != LvlL2 {
		t.Errorf("reload after writeback served from %v, want L2", lvl)
	}
}

func TestStoreMissMergesWithOutstandingLoad(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	d1, _ := h.Load(0x400, 0x9000, 0)
	d2 := h.Store(0x404, 0x9008, 1) // same line, while the fill is in flight
	if d2 > d1 {
		t.Errorf("store did not merge with outstanding load fill: %d > %d", d2, d1)
	}
}

func TestDRAMBusSerializesSameBankStream(t *testing.T) {
	d := NewDRAM()
	// Accesses to the same bank must serialize even across rows.
	t1 := d.Access(0, false, 0)
	rowStride := d.rowBytes * uint64(d.banks)
	t2 := d.Access(rowStride, false, 0) // bank 0, different row
	if t2 <= t1 {
		t.Errorf("same-bank accesses overlapped: %d <= %d", t2, t1)
	}
}

// Property: DRAM completion times are monotone in request time for a
// fixed address (no time travel).
func TestDRAMMonotonicProperty(t *testing.T) {
	f := func(deltas []uint8) bool {
		d := NewDRAM()
		var now, last int64
		for _, dt := range deltas {
			now += int64(dt)
			done := d.Access(0x1000, false, now)
			if done < now || done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a second access to any address immediately after the first is
// always an L1 hit with fixed latency.
func TestHierarchyReaccessProperty(t *testing.T) {
	f := func(addrSeed uint32) bool {
		h := NewHierarchy(DefaultConfig())
		addr := uint64(addrSeed) * 64
		d1, _ := h.Load(0x400, addr, 0)
		d2, lvl := h.Load(0x400, addr, d1)
		return lvl == LvlL1 && d2 == d1+int64(h.Config().L1Latency)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMSHRZeroClamped(t *testing.T) {
	m := NewMSHRs(0) // clamps to 1
	s := m.Allocate(5, 0)
	if s != 0 {
		t.Errorf("start = %d", s)
	}
	m.Complete(5, 50)
	// Second allocation must wait for the single slot.
	if s := m.Allocate(6, 0); s != 50 {
		t.Errorf("single-slot MSHR start = %d, want 50", s)
	}
}

func TestPrefetcherDegreeClamped(t *testing.T) {
	p := NewStridePrefetcher(0) // clamps to 1
	var out []uint64
	for i := 0; i < 6; i++ {
		out = p.Train(0x100, uint64(i)*64)
	}
	if len(out) != 1 {
		t.Errorf("clamped degree produced %d prefetches", len(out))
	}
	p.Reset()
	if p.Trained != 0 || p.Issued != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCacheMissRateEmpty(t *testing.T) {
	c := NewCache("t", 1<<12, 2)
	if c.MissRate() != 0 {
		t.Error("empty cache MissRate != 0")
	}
}

func TestNegativePrefetchAddressSkipped(t *testing.T) {
	p := NewStridePrefetcher(2)
	// Descending stride near zero: candidate addresses would go negative.
	var out []uint64
	for _, a := range []uint64{300, 200, 100, 0} {
		out = p.Train(0x200, a)
	}
	for _, a := range out {
		if int64(a) < 0 {
			t.Errorf("negative prefetch address %d", int64(a))
		}
	}
}
