package mem

import (
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache("t", 1<<12, 2) // 4 KiB, 2-way, 32 sets
	if c.Sets() != 32 || c.Ways() != 2 {
		t.Fatalf("geometry: %d sets, %d ways", c.Sets(), c.Ways())
	}
	hit, _, _ := c.Access(0x1000, false)
	if hit {
		t.Error("cold access hit")
	}
	hit, _, _ = c.Access(0x1000, false)
	if !hit {
		t.Error("second access missed")
	}
	hit, _, _ = c.Access(0x1004, false)
	if !hit {
		t.Error("same-line access missed")
	}
	hit, _, _ = c.Access(0x1040, false)
	if hit {
		t.Error("next-line access hit cold")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
	if r := c.MissRate(); r != 0.5 {
		t.Errorf("MissRate = %v", r)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 2*BlockSize, 2) // 1 set, 2 ways
	a, b, d := uint64(0), uint64(BlockSize), uint64(2*BlockSize)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a evicted, should have been kept (MRU)")
	}
	if c.Probe(b) {
		t.Error("b not evicted")
	}
	if !c.Probe(d) {
		t.Error("d not present")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache("t", 2*BlockSize, 2)
	c.Access(0, true) // dirty
	c.Access(BlockSize, false)
	_, wb, victim := c.Access(2*BlockSize, false)
	if !wb || victim != 0 {
		t.Errorf("expected dirty writeback of line 0, got wb=%v victim=%#x", wb, victim)
	}
	if c.DirtyEvs != 1 {
		t.Errorf("DirtyEvs = %d", c.DirtyEvs)
	}
}

func TestCacheFillDoesNotCountDemand(t *testing.T) {
	c := NewCache("t", 1<<12, 2)
	c.Fill(0x2000)
	if c.Accesses != 0 || c.Misses != 0 {
		t.Errorf("Fill counted as demand: acc=%d miss=%d", c.Accesses, c.Misses)
	}
	if !c.Probe(0x2000) {
		t.Error("Fill did not install line")
	}
	hit, _, _ := c.Access(0x2000, false)
	if !hit {
		t.Error("access after Fill missed")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache("t", 1<<12, 2)
	c.Access(0x1000, true)
	c.Reset()
	if c.Probe(0x1000) || c.Accesses != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache("bad", 100, 2) },       // non power-of-two sets
		func() { NewCache("bad", BlockSize, 4) }, // size < ways*Block
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

// Property: cache contents track a reference model of the last `ways`
// distinct lines per set (true LRU).
func TestCacheLRUProperty(t *testing.T) {
	f := func(seq []uint16) bool {
		c := NewCache("p", 4*BlockSize, 2) // 2 sets, 2 ways
		type key struct{ set int }
		ref := map[int][]uint64{} // set -> lines in MRU order
		for _, x := range seq {
			addr := uint64(x) * 32
			line := LineAddr(addr)
			set := int(line % 2)
			c.Access(addr, false)
			lines := ref[set]
			// remove if present
			for i, l := range lines {
				if l == line {
					lines = append(lines[:i], lines[i+1:]...)
					break
				}
			}
			lines = append([]uint64{line}, lines...)
			if len(lines) > 2 {
				lines = lines[:2]
			}
			ref[set] = lines
		}
		for set, lines := range ref {
			_ = set
			for _, l := range lines {
				if !c.Probe(l << BlockBits) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDRAMRowBehavior(t *testing.T) {
	d := NewDRAM()
	t0 := d.Access(0, false, 0)
	if d.RowMisses != 1 || d.RowHits != 0 {
		t.Fatalf("first access: hits=%d misses=%d", d.RowHits, d.RowMisses)
	}
	// Same row (same bank): row hit, faster.
	t1 := d.Access(0, false, t0)
	if d.RowHits != 1 {
		t.Errorf("same-row access not a row hit")
	}
	if t1-t0 >= t0 {
		t.Errorf("row hit (%d cyc) not faster than cold activate (%d cyc)", t1-t0, t0)
	}
	// Different row, same bank: conflict.
	conflictAddr := d.rowBytes * uint64(d.banks) // row 1, bank 0
	if d.bankOf(conflictAddr) != 0 {
		t.Fatalf("test address maps to bank %d, want 0", d.bankOf(conflictAddr))
	}
	t2 := d.Access(conflictAddr, false, t1)
	if d.RowConfl != 1 {
		t.Errorf("conflict not detected: confl=%d", d.RowConfl)
	}
	if t2-t1 <= t1-t0 {
		t.Errorf("row conflict (%d) not slower than row hit (%d)", t2-t1, t1-t0)
	}
}

func TestDRAMBankParallelism(t *testing.T) {
	d := NewDRAM()
	// Two accesses to different banks at t=0 should overlap: the second
	// finishes well before 2x a single access (only bus serializes).
	a1 := d.Access(0, false, 0)
	d.Reset()
	b1 := d.Access(0, false, 0)
	b2 := d.Access(BlockSize, false, 0) // different bank
	if b2 >= 2*a1 {
		t.Errorf("no bank parallelism: single=%d, second of pair=%d", a1, b2)
	}
	_ = b1
}

func TestDRAMRowHitRate(t *testing.T) {
	d := NewDRAM()
	if d.RowHitRate() != 0 {
		t.Error("empty DRAM should report 0 hit rate")
	}
	var tt int64
	for i := 0; i < 10; i++ {
		tt = d.Access(uint64(i*8), false, tt) // same line region → same bank/row after first
	}
	if d.RowHitRate() <= 0.5 {
		t.Errorf("sequential same-row accesses: hit rate %v", d.RowHitRate())
	}
}

func TestMSHRMergeAndCapacity(t *testing.T) {
	m := NewMSHRs(2)
	if _, out := m.Lookup(10, 0); out {
		t.Fatal("empty MSHR reports outstanding")
	}
	s := m.Allocate(10, 0)
	if s != 0 {
		t.Fatalf("first Allocate start = %d", s)
	}
	m.Complete(10, 100)
	if r, out := m.Lookup(10, 50); !out || r != 100 {
		t.Fatalf("Lookup(10@50) = %d,%v want 100,true", r, out)
	}
	if m.Merges != 1 {
		t.Errorf("Merges = %d", m.Merges)
	}
	// After completion time, no longer outstanding.
	if _, out := m.Lookup(10, 100); out {
		t.Error("completed fill still outstanding")
	}
	// Fill both slots, third allocation must wait.
	m.Reset()
	m.Allocate(1, 0)
	m.Complete(1, 100)
	m.Allocate(2, 0)
	m.Complete(2, 200)
	start := m.Allocate(3, 0)
	if start != 100 {
		t.Errorf("third miss start = %d, want 100 (earliest slot free)", start)
	}
	if m.Stalls != 1 {
		t.Errorf("Stalls = %d", m.Stalls)
	}
}

func TestPrefetcherStrideDetection(t *testing.T) {
	p := NewStridePrefetcher(2)
	pc := uint64(0x400)
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.Train(pc, uint64(i)*64)
	}
	if len(got) != 2 {
		t.Fatalf("confident stride produced %d prefetches, want 2", len(got))
	}
	if got[0] != 5*64+64 || got[1] != 5*64+128 {
		t.Errorf("prefetch addrs = %v", got)
	}
	// A stride change resets confidence.
	if out := p.Train(pc, 10000); out != nil {
		t.Errorf("stride break still prefetched: %v", out)
	}
	// Random pattern never grows confident.
	p.Reset()
	for i, a := range []uint64{5, 900, 3, 77, 2000} {
		if out := p.Train(0x800, a); out != nil {
			t.Errorf("random access %d prefetched %v", i, out)
		}
	}
}

func TestHierarchyLoadLevels(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	done, lvl := h.Load(0x400, 0x10000, 0)
	if lvl != LvlMem {
		t.Errorf("cold load level = %v, want Mem", lvl)
	}
	if done < int64(h.cfg.L1Latency+h.cfg.L2Latency) {
		t.Errorf("cold load done=%d implausibly fast", done)
	}
	done2, lvl2 := h.Load(0x400, 0x10000, done)
	if lvl2 != LvlL1 || done2 != done+int64(h.cfg.L1Latency) {
		t.Errorf("warm load: lvl=%v done=%d", lvl2, done2)
	}
	if h.LoadsByLvl[LvlL1] != 1 || h.LoadsByLvl[LvlMem] != 1 {
		t.Errorf("level counters: %v", h.LoadsByLvl)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	h := NewHierarchy(cfg)
	h.Load(0x400, 0x20000, 0)
	// Evict from tiny... L1 is 32 KiB; touch enough lines mapping to the
	// same set to evict 0x20000 from L1 but not from the 1 MiB L2.
	setStride := uint64(h.L1D.Sets() * BlockSize)
	tt := int64(1000)
	for i := 1; i <= h.L1D.Ways(); i++ {
		d, _ := h.Load(0x400, 0x20000+uint64(i)*setStride, tt)
		tt = d
	}
	done, lvl := h.Load(0x400, 0x20000, tt)
	if lvl != LvlL2 {
		t.Fatalf("level = %v, want L2", lvl)
	}
	if want := tt + int64(h.cfg.L1Latency+h.cfg.L2Latency); done != want {
		t.Errorf("L2 hit done = %d, want %d", done, want)
	}
}

func TestHierarchyMergedMisses(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	d1, _ := h.Load(0x400, 0x30000, 0)
	d2, _ := h.Load(0x404, 0x30008, 1) // same line, one cycle later
	if d2 > d1 {
		t.Errorf("merged miss completes at %d, after primary %d", d2, d1)
	}
	_, merges, _ := h.MSHRStats()
	if merges != 1 {
		t.Errorf("merges = %d, want 1", merges)
	}
}

func TestHierarchyMLP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 0
	h := NewHierarchy(cfg)
	// One isolated miss.
	single, _ := h.Load(0x400, 1<<30, 0)
	h.Reset()
	// Eight overlapping misses to distinct banks/lines issued back to back.
	var last int64
	for i := 0; i < 8; i++ {
		d, _ := h.Load(0x400, uint64(1)<<30+uint64(i)*BlockSize, int64(i))
		if d > last {
			last = d
		}
	}
	if last >= 8*single {
		t.Errorf("no MLP: 8 overlapped misses took %d, single=%d", last, single)
	}
}

func TestHierarchyStoreAndFetch(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	done := h.Store(0x400, 0x40000, 0)
	if done <= 0 {
		t.Error("store completion not positive")
	}
	done2 := h.Store(0x400, 0x40000, done)
	if done2 != done+int64(h.cfg.L1Latency) {
		t.Errorf("warm store done = %d", done2)
	}
	f1 := h.Fetch(0x400000, 0)
	f2 := h.Fetch(0x400000, f1)
	if f2 != f1+int64(h.cfg.L1Latency) {
		t.Errorf("warm fetch = %d, want %d", f2, f1+int64(h.cfg.L1Latency))
	}
	if h.Fetches != 2 || h.Stores != 2 {
		t.Errorf("counters: fetches=%d stores=%d", h.Fetches, h.Stores)
	}
}

func TestHierarchyPrefetcherHelpsStreams(t *testing.T) {
	run := func(deg int) int64 {
		cfg := DefaultConfig()
		cfg.PrefetchDegree = deg
		h := NewHierarchy(cfg)
		var tt int64
		for i := 0; i < 2000; i++ {
			d, _ := h.Load(0x400, uint64(i)*64, tt)
			tt = d
		}
		return tt
	}
	without := run(0)
	with := run(2)
	if with >= without {
		t.Errorf("prefetcher did not help stream: with=%d without=%d", with, without)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Load(0x400, 0x50000, 0)
	h.Reset()
	if h.Loads != 0 || h.L1D.Accesses != 0 || h.DRAM.Reads != 0 {
		t.Error("Reset left statistics behind")
	}
	_, lvl := h.Load(0x400, 0x50000, 0)
	if lvl != LvlMem {
		t.Error("Reset left cache contents behind")
	}
}
