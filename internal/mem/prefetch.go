package mem

// StridePrefetcher is the L2 stride-based prefetcher of Table I: a PC-
// indexed table learning per-instruction strides; once confident it
// prefetches `degree` lines ahead into the L2.
type StridePrefetcher struct {
	entries []pfEntry
	degree  int

	Trained uint64
	Issued  uint64
}

type pfEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int8
}

// NewStridePrefetcher creates a prefetcher with 256 table entries and the
// given prefetch degree (lines ahead).
func NewStridePrefetcher(degree int) *StridePrefetcher {
	if degree < 1 {
		degree = 1
	}
	return &StridePrefetcher{entries: make([]pfEntry, 256), degree: degree}
}

// Train observes a demand access (pc, addr) and returns the addresses that
// should be prefetched (possibly none).
func (p *StridePrefetcher) Train(pc, addr uint64) []uint64 {
	p.Trained++
	e := &p.entries[(pc>>2)%uint64(len(p.entries))]
	if e.pc != pc {
		*e = pfEntry{pc: pc, lastAddr: addr}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.lastAddr = addr
	if e.conf < 2 {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	for i := 1; i <= p.degree; i++ {
		a := int64(addr) + e.stride*int64(i)
		if a > 0 {
			out = append(out, uint64(a))
		}
	}
	p.Issued += uint64(len(out))
	return out
}

// Reset clears the table and statistics.
func (p *StridePrefetcher) Reset() {
	for i := range p.entries {
		p.entries[i] = pfEntry{}
	}
	p.Trained, p.Issued = 0, 0
}
