package ooo

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/mem"
	"casino/internal/workload"
)

// Physical-register conservation through violation flushes: after a full
// drain every allocated register is back on the free lists.
func TestPRFConservationThroughFlushes(t *testing.T) {
	for _, nolq := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.NoLQ = nolq
		p, _ := workload.ByName("h264ref")
		tr := workload.Generate(p, 15000, 1)
		c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
		freeInt0, freeFP0 := c.rf.FreeCount(false), c.rf.FreeCount(true)
		for i := 0; i < 100_000_000 && !c.Done(); i++ {
			c.Cycle()
		}
		if !c.Done() {
			t.Fatal("livelock")
		}
		if c.Violations == 0 {
			t.Fatalf("nolq=%v: test needs violations to stress recovery", nolq)
		}
		if c.rf.FreeCount(false) != freeInt0 || c.rf.FreeCount(true) != freeFP0 {
			t.Errorf("nolq=%v: register leak: INT %d->%d FP %d->%d", nolq,
				freeInt0, c.rf.FreeCount(false), freeFP0, c.rf.FreeCount(true))
		}
	}
}

// Commit order via the OnCommit hook, through LQ-triggered mid-pipeline
// flushes.
func TestCommitOrderThroughFlushes(t *testing.T) {
	p, _ := workload.ByName("h264ref")
	tr := workload.Generate(p, 15000, 1)
	c := New(DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	next := uint64(0)
	c.OnCommit = func(seq uint64) {
		if seq != next {
			t.Fatalf("commit order: got %d want %d", seq, next)
		}
		next++
	}
	for i := 0; i < 100_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() || next != uint64(tr.Len()) {
		t.Fatalf("drained=%v committed=%d of %d", c.Done(), next, tr.Len())
	}
}
