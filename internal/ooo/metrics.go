package ooo

import "casino/internal/stats"

// PublishMetrics snapshots the core's counters and occupancy histograms
// into the registry. Scalar names match the legacy Result.Extra keys.
func (c *Core) PublishMetrics(r *stats.Registry) {
	r.Counter("mispredicts", c.Mispredicts())
	r.Counter("violations", c.Violations)
	r.Counter("flushes", c.Flushes)
	r.Counter("forwards", c.LoadsForwarded)
	r.Counter("specLoads", c.SpecLoads)
	r.Hist("occ.rob", c.OccROB)
	r.Hist("occ.iq", c.OccIQ)
	r.Hist("occ.sq", c.OccSQ)
	if c.OccLQ != nil {
		r.Hist("occ.lq", c.OccLQ)
	}
	c.cpi.Publish(r)
}
