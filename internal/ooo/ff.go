package ooo

import (
	"casino/internal/eventq"
	"casino/internal/isa"
	"casino/internal/lsu"
	"casino/internal/regfile"
)

// noEvent mirrors lsu.NoEvent: no progress through the passage of time.
const noEvent = int64(1) << 62

// NextWake returns the earliest cycle >= now at which the core might make
// progress, driving the event-driven clock. The O(1) pre-checks mirror the
// dispatch gates and fetch — the streaming progress the wakeup queue does
// not track — and the shared queue covers every timed event; unlike
// NextEvent it never scans the scheduler.
func (c *Core) NextWake() int64 {
	now := c.now
	if op := c.fe.Peek(0); op != nil &&
		c.n < len(c.rob) && c.iqN < c.cfg.IQSize &&
		!(op.Class == isa.Store && c.sq.Full()) &&
		!(c.lq != nil && op.Class == isa.Load && c.lq.Full()) &&
		!(op.HasDst() && !c.rf.CanAllocate(op.Dst)) {
		return now
	}
	if c.fe.NextFetchEvent(now) <= now {
		return now
	}
	return c.wq.Horizon(now)
}

// WakeStats exposes the shared wakeup queue's activity counters.
func (c *Core) WakeStats() eventq.Stats { return c.wq.Stats() }

// ProgressSignature folds the fast-forward progress signature into one
// value for the sim package's property tests.
func (c *Core) ProgressSignature() uint64 {
	// FNV-1a chained by hand: this runs on every commit-free cycle, so it
	// must not materialize an array (stack copies) per call.
	const p = 1099511628211
	s := c.ffSig()
	h := uint64(1469598103934665603)
	h = (h ^ s.committed) * p
	h = (h ^ s.fetched) * p
	h = (h ^ s.issued) * p
	h = (h ^ s.l1) * p
	h = (h ^ s.flushes) * p
	h = (h ^ uint64(s.n)) * p
	h = (h ^ uint64(s.iqN)) * p
	h = (h ^ uint64(s.sq)) * p
	h = (h ^ uint64(s.lq)) * p
	h = (h ^ uint64(s.buf)) * p
	return h
}

// NextEvent returns the earliest cycle >= now at which Cycle() could change
// observable state. The OoO scheduler examines every IQ entry each cycle,
// so the probe scans the same set, collecting each entry's operand-arrival
// time; entries blocked on another instruction's issue (producer not
// issued, store-set wait on an unresolved store) contribute no time — that
// blocking instruction's own issue is itself a tracked event and must come
// first. Probes are side-effect-free (Peek* accessors), so probing a
// stalled core never perturbs the energy model's activity counts.
func (c *Core) NextEvent() int64 {
	now := c.now
	next := noEvent
	add := func(t int64) {
		if t > now && t < next {
			next = t
		}
	}

	// Store retirement.
	if t := c.sq.RetireEvent(now); t <= now {
		return now
	} else {
		add(t)
	}

	// Commit from the ROB head.
	if c.n > 0 {
		e := c.at(0)
		if e.issued {
			if e.done <= now {
				return now
			}
			add(e.done)
		}
		// Unissued head: its issue is covered by the IQ scan below.
	}

	// Issue: scan the scheduler the way issue() does.
	for i := 0; i < c.n; i++ {
		e := c.at(i)
		if !e.inIQ {
			continue
		}
		t1 := c.rf.PeekReadyAt(e.srcP1)
		t2 := c.rf.PeekReadyAt(e.srcP2)
		if t1 >= regfile.NotReady || t2 >= regfile.NotReady {
			continue // producer not issued yet: its issue is the prior event
		}
		t := t1
		if t2 > t {
			t = t2
		}
		if t > now {
			add(t)
			continue
		}
		if e.op.Class == isa.Load && e.waitStore != lsu.NoSeq && !c.sq.ResolvedOrGone(e.waitStore) {
			continue // store-set wait: the store's issue is the prior event
		}
		if c.fus.CanIssue(e.op.Class, now) {
			return now
		}
		add(c.fus.NextFree(e.op.Class, now))
	}

	// Dispatch (all gates are pure reads; charges happen only on a real
	// dispatch, which this probe reports as an event at now).
	if op := c.fe.Peek(0); op != nil &&
		c.n < len(c.rob) && c.iqN < c.cfg.IQSize &&
		!(op.Class == isa.Store && c.sq.Full()) &&
		!(c.lq != nil && op.Class == isa.Load && c.lq.Full()) &&
		!(op.HasDst() && !c.rf.CanAllocate(op.Dst)) {
		return now
	}

	// Fetch.
	if t := c.fe.NextFetchEvent(now); t <= now {
		return now
	} else {
		add(t)
	}
	return next
}

// ffSig is the cheap progress signature guarding FastForward.
type ffSig struct {
	committed, fetched, issued, l1, flushes uint64
	n, iqN, sq, lq, buf                     int
}

func (c *Core) ffSig() ffSig {
	s := ffSig{
		committed: c.committed,
		fetched:   c.fe.Fetched,
		issued:    c.fus.IssuedTotal(),
		l1:        c.acct.L1Access,
		flushes:   c.Flushes,
		n:         c.n,
		iqN:       c.iqN,
		sq:        c.sq.Len(),
		buf:       c.fe.BufLen(),
	}
	if c.lq != nil {
		s.lq = c.lq.Len()
	}
	return s
}

// FastForward runs one real Cycle() and, if that cycle turned out idle,
// jumps the clock toward `to`: the embedded cycle supplies the exact
// idle-cycle accounting (Cycle stays the single source of truth), whose
// deltas are then replayed in bulk for the skipped cycles. Returns false
// when the embedded cycle changed observable state — it stands as a normal
// cycle and nothing was skipped. The jump target is re-clamped by the
// queue's post-cycle horizon, which sees any wakeup the embedded cycle
// itself registered.
func (c *Core) FastForward(to int64) bool {
	sig := c.ffSig()
	c.acct.BeginDelta()
	sqReads0 := c.sq.Reads
	cpi0 := c.cpi
	c.Cycle()
	if c.ffSig() != sig {
		return false
	}
	if h := c.wq.Horizon(c.now); h < to {
		to = h
	}
	n := to - c.now
	if n <= 0 {
		return true
	}
	un := uint64(n)
	c.acct.ScaleDelta(un)
	c.sq.Reads += (c.sq.Reads - sqReads0) * un
	c.cpi.ScaleDelta(&cpi0, un)
	c.OccROB.AddN(c.n, un)
	c.OccIQ.AddN(c.iqN, un)
	c.OccSQ.AddN(c.sq.Len(), un)
	if c.OccLQ != nil {
		c.OccLQ.AddN(c.lq.Len(), un)
	}
	c.now += n
	return true
}
