package ooo

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/ino"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/trace"
	"casino/internal/workload"
)

func mkTrace(ops []isa.MicroOp) (*trace.Trace, *mem.Hierarchy) {
	for i := range ops {
		ops[i].Seq = uint64(i)
		if ops[i].PC == 0 {
			ops[i].PC = 0x1000 + uint64(i)*4
		}
	}
	tr := &trace.Trace{Name: "micro", Ops: ops}
	hier := mem.NewHierarchy(mem.DefaultConfig())
	for i := range ops {
		hier.Fetch(ops[i].PC, 0)
	}
	return tr, hier
}

func mkCore(cfg Config, ops []isa.MicroOp) *Core {
	tr, hier := mkTrace(ops)
	return New(cfg, tr, hier, energy.NewAccountant())
}

func run(t *testing.T, c *Core) {
	t.Helper()
	for i := 0; i < 5_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatalf("core livelocked: committed=%d now=%d n=%d", c.Committed(), c.Now(), c.n)
	}
}

func alu(dst, src isa.Reg) isa.MicroOp {
	return isa.MicroOp{Class: isa.IntALU, Dst: dst, Src1: src, Src2: isa.RegNone}
}

func TestAllOpsCommitOnce(t *testing.T) {
	ops := []isa.MicroOp{
		alu(isa.IntReg(1), isa.RegNone),
		{Class: isa.Load, Dst: isa.IntReg(2), Src1: isa.IntReg(1), Src2: isa.RegNone, Addr: 0x100, Size: 8},
		alu(isa.IntReg(3), isa.IntReg(2)),
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(3), Src2: isa.IntReg(1), Addr: 0x200, Size: 8},
		alu(isa.IntReg(4), isa.RegNone),
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	if c.Committed() != 5 {
		t.Errorf("committed %d, want 5", c.Committed())
	}
}

func TestOutOfOrderIssueHidesMiss(t *testing.T) {
	// Pairs of (missing load, dependent consumer): InO's stall-on-use
	// serializes the misses (each consumer blocks the next load at the IQ
	// head); OoO overlaps them (MLP).
	var ops []isa.MicroOp
	for i := 0; i < 6; i++ {
		addr := uint64(1)<<30 + uint64(i)*4096 // distinct lines and banks
		ops = append(ops,
			isa.MicroOp{Class: isa.Load, Dst: isa.IntReg(1 + i%4), Src1: isa.RegNone, Src2: isa.RegNone, Addr: addr, Size: 8},
			alu(isa.IntReg(8+i%4), isa.IntReg(1+i%4)),
		)
	}
	oooCycles := func() int64 {
		c := mkCore(DefaultConfig(), ops)
		run(t, c)
		return c.Now()
	}()
	// Same trace on the InO baseline.
	tr, hier := mkTrace(append([]isa.MicroOp(nil), ops...))
	ic := ino.New(ino.DefaultConfig(), tr, hier, energy.NewAccountant())
	for i := 0; i < 5_000_000 && !ic.Done(); i++ {
		ic.Cycle()
	}
	if !ic.Done() {
		t.Fatal("InO livelocked")
	}
	if oooCycles >= ic.Now() {
		t.Errorf("OoO (%d cyc) not faster than InO (%d cyc) on miss-hiding trace", oooCycles, ic.Now())
	}
}

// violationOps builds a trace where a load speculatively bypasses an older
// store to the same address whose data (and thus issue) is delayed by a
// cache miss.
func violationOps() []isa.MicroOp {
	ops := []isa.MicroOp{
		{Class: isa.Load, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 30, Size: 8}, // slow
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(1), Src2: isa.RegNone, Addr: 0x500, Size: 8},  // waits for r1
		{Class: isa.Load, Dst: isa.IntReg(2), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 0x500, Size: 8},   // bypasses the store
		alu(isa.IntReg(3), isa.IntReg(2)),
	}
	return ops
}

func TestMemoryViolationFlushLQ(t *testing.T) {
	c := mkCore(DefaultConfig(), violationOps())
	run(t, c)
	if c.Violations == 0 {
		t.Fatal("no violation detected (LQ search)")
	}
	if c.Committed() != 4 {
		t.Errorf("committed %d, want 4 (no double commit after flush)", c.Committed())
	}
}

func TestMemoryViolationFlushNoLQ(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoLQ = true
	c := mkCore(cfg, violationOps())
	run(t, c)
	if c.Violations == 0 {
		t.Fatal("no violation detected (on-commit value check)")
	}
	if c.Committed() != 4 {
		t.Errorf("committed %d, want 4", c.Committed())
	}
}

func TestStoreSetLearning(t *testing.T) {
	// Repeat the violating pattern many times at the same PCs: store sets
	// must keep the violation count far below the pattern count.
	var ops []isa.MicroOp
	for i := 0; i < 50; i++ {
		base := violationOps()
		for j := range base {
			base[j].PC = 0x1000 + uint64(j)*4 // same static PCs every iteration
			base[j].Addr += uint64(i) * 4096  // different data addresses
			if base[j].Class == isa.Load && j == 0 {
				base[j].Addr = 1<<30 + uint64(i)*64*1024*1024 // keep it missing? (just vary)
			}
		}
		// Make the older store and younger load alias within an iteration.
		base[1].Addr = 0x500 + uint64(i)*4096
		base[2].Addr = base[1].Addr
		ops = append(ops, base...)
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	if c.Violations == 0 {
		t.Fatal("expected at least one initial violation")
	}
	if c.Violations > 10 {
		t.Errorf("store sets not learning: %d violations in 50 iterations", c.Violations)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	ops := []isa.MicroOp{
		alu(isa.IntReg(1), isa.RegNone),
		{Class: isa.Store, Dst: isa.RegNone, Src1: isa.IntReg(1), Src2: isa.RegNone, Addr: 1 << 29, Size: 8},
		{Class: isa.Load, Dst: isa.IntReg(2), Src1: isa.RegNone, Src2: isa.RegNone, Addr: 1 << 29, Size: 8},
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	if c.LoadsForwarded != 1 {
		t.Errorf("LoadsForwarded = %d, want 1", c.LoadsForwarded)
	}
	if c.Violations != 0 {
		t.Errorf("forwarded load flagged as violation")
	}
}

func TestPRFBoundsRespected(t *testing.T) {
	// A long stream of register-writing ops: free-list pressure must stall
	// dispatch, not crash or deadlock.
	var ops []isa.MicroOp
	for i := 0; i < 500; i++ {
		ops = append(ops, alu(isa.IntReg(i%14+1), isa.RegNone))
	}
	c := mkCore(DefaultConfig(), ops)
	run(t, c)
	if c.Committed() != 500 {
		t.Errorf("committed %d", c.Committed())
	}
}

func runProfile(t *testing.T, cfg Config, name string, n int) (float64, *Core) {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(p, n, 1)
	c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 50_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatalf("%s livelocked: committed=%d", name, c.Committed())
	}
	return float64(c.Committed()) / float64(c.Now()), c
}

func TestOoOBeatsInOAcrossProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	for _, name := range []string{"libquantum", "mcf", "cactusADM", "hmmer"} {
		oooIPC, _ := runProfile(t, DefaultConfig(), name, 30000)
		p, _ := workload.ByName(name)
		tr := workload.Generate(p, 30000, 1)
		ic := ino.New(ino.DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
		for i := 0; i < 50_000_000 && !ic.Done(); i++ {
			ic.Cycle()
		}
		inoIPC := float64(ic.Committed()) / float64(ic.Now())
		if oooIPC < inoIPC {
			t.Errorf("%s: OoO IPC %.3f < InO IPC %.3f", name, oooIPC, inoIPC)
		}
	}
}

func TestNoLQVariantRunsAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	cfg := DefaultConfig()
	cfg.NoLQ = true
	ipc, c := runProfile(t, cfg, "h264ref", 30000)
	if ipc <= 0 {
		t.Error("NoLQ IPC not positive")
	}
	if c.acct.CountByName("LQ", energy.Search) != 0 {
		t.Error("NoLQ config still counts LQ activity")
	}
	if c.acct.CountByName("SQ", energy.Search) == 0 {
		t.Error("NoLQ config should search the SQ")
	}
}

func TestWideConfigScaling(t *testing.T) {
	w4 := WideConfig(4)
	if w4.Width != 4 || w4.ROBSize != 128 || w4.IQSize != 64 || w4.IntPRF != 192 {
		t.Errorf("4-wide scaling wrong: %+v", w4)
	}
	w3 := WideConfig(3)
	if w3.ROBSize != 64 {
		t.Errorf("3-wide scaling wrong: %+v", w3)
	}
	w2 := WideConfig(2)
	if w2 != DefaultConfig() {
		t.Errorf("2-wide should equal default")
	}
}

func TestDeterminism(t *testing.T) {
	a, ca := runProfile(t, DefaultConfig(), "gcc", 15000)
	b, cb := runProfile(t, DefaultConfig(), "gcc", 15000)
	if a != b || ca.Now() != cb.Now() || ca.Violations != cb.Violations {
		t.Error("nondeterministic OoO run")
	}
}
