// Package ooo implements the paper's out-of-order baseline (§II-B,
// Table I): a 2-wide OoO core with register renaming (48 INT / 24 FP
// physical registers), a 16-entry CAM-based issue queue with oldest-first
// select, a 32-entry ROB, a 16-entry load queue plus an 8-entry unified
// store queue/buffer, and a store-set memory dependence predictor.
//
// The NoLQ configuration models "OoO+NoLQ" of Fig. 9: the load queue is
// removed and load speculation is validated by an on-commit value-check
// against the store queue (Ros & Kaxiras), exactly the mechanism CASINO
// builds on.
package ooo

import (
	"math/bits"
	"os"

	"casino/internal/bpred"
	"casino/internal/energy"
	"casino/internal/eventq"
	"casino/internal/frontend"
	"casino/internal/isa"
	"casino/internal/lsu"
	"casino/internal/mem"
	"casino/internal/pipeline"
	"casino/internal/ptrace"
	"casino/internal/regfile"
	"casino/internal/stats"
	"casino/internal/trace"
)

// NoScoreboard disables the producer-push wakeup bitmap and falls back to
// the original full-scheduler scan on every cycle — retained as the
// cross-validation oracle. The env var mirrors the CASINO_NO_FASTFORWARD
// kill switch; tests flip the variable directly (it is sampled once per
// core, at construction).
var NoScoreboard = os.Getenv("CASINO_NO_SCOREBOARD") != ""

// Config holds the OoO core parameters.
type Config struct {
	Width      int
	IQSize     int
	ROBSize    int
	LQSize     int
	SQSize     int
	IntPRF     int
	FPPRF      int
	FrontDepth int
	NoLQ       bool // replace the LQ with on-commit value-check validation
	// SSClearInterval overrides the store-set predictor's cyclic-clearing
	// period (predictions between SSIT flushes); 0 = the default.
	SSClearInterval uint64
}

// DefaultConfig returns the Table I OoO configuration.
func DefaultConfig() Config {
	return Config{
		Width: 2, IQSize: 16, ROBSize: 32, LQSize: 16, SQSize: 8,
		IntPRF: 48, FPPRF: 24, FrontDepth: 7,
	}
}

// WideConfig scales the Table I machine to the given width as §VI-F does:
// ROB/IQ/LSQ/PRF double at 3-wide and quadruple at 4-wide.
func WideConfig(width int) Config {
	c := DefaultConfig()
	scale := 1
	switch {
	case width >= 4:
		scale = 4
	case width == 3:
		scale = 2
	}
	c.Width = width
	c.IQSize *= scale
	c.ROBSize *= scale
	c.LQSize *= scale
	c.SQSize *= scale
	c.IntPRF *= scale
	c.FPPRF *= scale
	return c
}

func newStoreSets(clear uint64) *lsu.StoreSets {
	if clear == 0 {
		return lsu.NewStoreSets()
	}
	return lsu.NewStoreSetsWithClear(clear)
}

type robEntry struct {
	op         *isa.MicroOp
	inIQ       bool
	issued     bool
	done       int64
	issueCycle int64
	srcP1      regfile.PReg
	srcP2      regfile.PReg
	newP       regfile.PReg
	oldP       regfile.PReg
	waitStore  uint64 // store-set predicted dependence (lsu.NoSeq = none)
	specLoad   bool   // load issued past an unresolved older store
	sentinel   bool   // load set a sentinel (NoLQ mode)
}

// Core is the out-of-order baseline.
type Core struct {
	cfg  Config
	now  int64
	fe   *frontend.FrontEnd
	hier *mem.Hierarchy
	fus  *pipeline.FUPool
	acct *energy.Accountant
	rf   *regfile.File
	sq   *lsu.StoreQueue
	lq   *lsu.LoadQueue
	ss   *lsu.StoreSets
	wq   *eventq.Queue // shared wakeup queue (event-driven clock)

	rob  []robEntry // ring
	head int
	n    int
	iqN  int // entries with inIQ set (avoids rescanning the ROB in dispatch)

	// Push-wakeup select state: iqMask mirrors inIQ as one bit per ring
	// slot, and the regfile's candidate bitmap marks slots whose source
	// producers have all issued. sb latches !NoScoreboard at construction.
	sb     bool
	iqMask []uint64

	committed uint64

	pt  *ptrace.Recorder // optional pipeline-event recorder (nil = off)
	cpi ptrace.CPI       // per-cycle stall attribution (always on)

	// OnCommit, when non-nil, observes each committed sequence number
	// (architectural-invariant checking in tests).
	OnCommit func(seq uint64)

	hIQ, hROB, hRAT, hPRF, hLQ, hSQ, hFL, hMDP int

	flushedThisCycle bool

	// Model statistics.
	Violations     uint64
	Flushes        uint64
	LoadsForwarded uint64
	SpecLoads      uint64

	// Per-structure occupancy histograms, sampled once per cycle.
	OccROB *stats.Hist
	OccIQ  *stats.Hist // ROB entries waiting in the scheduler
	OccSQ  *stats.Hist
	OccLQ  *stats.Hist // nil when cfg.NoLQ
}

// New builds an OoO core over the trace.
func New(cfg Config, tr *trace.Trace, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	return NewAt(cfg, tr, 0, nil, hier, acct)
}

// NewAt builds a core whose frontend starts at trace position start with an
// injected (possibly pre-trained) branch predictor; pred == nil allocates a
// fresh one. The sampled-simulation driver uses it to open detailed windows
// mid-trace against warmed shared state.
func NewAt(cfg Config, tr *trace.Trace, start int, pred *bpred.Predictor, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	c := &Core{
		cfg:  cfg,
		hier: hier,
		fus:  pipeline.ScaledFUPool(cfg.Width),
		acct: acct,
		rf:   regfile.New(cfg.IntPRF, cfg.FPPRF, 3),
		sq:   lsu.NewStoreQueue(cfg.SQSize),
		ss:   newStoreSets(cfg.SSClearInterval),
		rob:  make([]robEntry, cfg.ROBSize),

		OccROB: stats.NewHist(cfg.ROBSize + 1),
		OccIQ:  stats.NewHist(cfg.IQSize + 1),
		OccSQ:  stats.NewHist(cfg.SQSize + 1),
	}
	if !cfg.NoLQ {
		c.lq = lsu.NewLoadQueue(cfg.LQSize)
		c.OccLQ = stats.NewHist(cfg.LQSize + 1)
	}
	c.sb = !NoScoreboard
	if c.sb {
		c.rf.EnableWakeup(cfg.ROBSize)
		c.iqMask = make([]uint64, (cfg.ROBSize+63)/64)
	}
	c.wq = eventq.New(2*(cfg.ROBSize+cfg.SQSize) + 16)
	c.fus.SetWakeQueue(c.wq)
	c.sq.SetWakeQueue(c.wq)
	hier.SetWakeQueue(c.wq)
	acct.FrontendScale = 1.4 // 9-stage pipeline vs the 7-stage InO
	rd := tr.Reader()
	rd.Seek(start)
	if pred == nil {
		pred = bpred.NewPredictor()
	}
	c.fe = frontend.New(
		frontend.Config{Width: cfg.Width, Depth: cfg.FrontDepth, BufCap: 2 * cfg.Width},
		rd, pred, hier, acct)
	c.fe.SetWakeQueue(c.wq)

	c.hIQ = acct.Register(energy.Structure{Name: "IQ", Entries: cfg.IQSize, Bits: 96, Ports: 2 * cfg.Width, CAM: true, TagBits: 16})
	c.hROB = acct.Register(energy.Structure{Name: "ROB", Entries: cfg.ROBSize, Bits: 96, Ports: 2 * cfg.Width})
	c.hRAT = acct.Register(energy.Structure{Name: "RAT", Entries: isa.NumArchRegs, Bits: 8, Ports: 3 * cfg.Width})
	c.hPRF = acct.Register(energy.Structure{Name: "PRF", Entries: cfg.IntPRF + cfg.FPPRF, Bits: 64, Ports: 3 * cfg.Width})
	if !cfg.NoLQ {
		c.hLQ = acct.Register(energy.Structure{Name: "LQ", Entries: cfg.LQSize, Bits: 64, Ports: 2, CAM: true, TagBits: 40})
	} else {
		c.hLQ = -1
	}
	c.hSQ = acct.Register(energy.Structure{Name: "SQ", Entries: cfg.SQSize, Bits: 112, Ports: 2, CAM: true, TagBits: 40})
	c.hFL = acct.Register(energy.Structure{Name: "FreeList", Entries: cfg.IntPRF + cfg.FPPRF, Bits: 8, Ports: 2 * cfg.Width})
	c.hMDP = acct.Register(energy.Structure{Name: "MDP", Entries: 1024, Bits: 10, Ports: 2})
	return c
}

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Committed returns committed op count.
func (c *Core) Committed() uint64 { return c.committed }

// Mispredicts returns front-end mispredict count.
func (c *Core) Mispredicts() uint64 { return c.fe.Mispredicts }

// Done reports pipeline drain.
func (c *Core) Done() bool {
	return c.fe.Done() && c.n == 0 && c.sq.Len() == 0
}

// Cycle advances one clock.
func (c *Core) Cycle() {
	now := c.now
	committed0, flushes0 := c.committed, c.Flushes
	c.wq.Drain(now)
	c.OccROB.Add(c.n)
	c.OccIQ.Add(c.iqN)
	c.OccSQ.Add(c.sq.Len())
	if c.OccLQ != nil {
		c.OccLQ.Add(c.lq.Len())
	}
	c.retireStores(now)
	c.commit(now)
	c.issue(now)
	c.dispatch(now)
	c.fe.Cycle(now)
	c.tickCPI(now, committed0, flushes0)
	c.now++
	c.acct.Cycles++
}

// SetPipeTrace installs (or removes, with nil) a pipeline-event recorder.
func (c *Core) SetPipeTrace(rec *ptrace.Recorder) {
	c.pt = rec
	c.fe.SetPipeTrace(rec)
}

// CPIStack exposes the per-cycle stall attribution accumulated so far.
func (c *Core) CPIStack() *ptrace.CPI { return &c.cpi }

// Recycle returns pooled resources (the branch predictor) at end of run.
// The core must not be cycled afterwards.
func (c *Core) Recycle() { c.fe.RecyclePredictor() }

func (c *Core) emit(cycle int64, seq uint64, k ptrace.Kind) {
	if c.pt != nil {
		c.pt.Emit(ptrace.Event{Cycle: cycle, Seq: seq, Kind: k})
	}
}

// tickCPI attributes the cycle that just executed to exactly one CPI
// bucket, publishing non-base cycles as stall events when tracing is on.
func (c *Core) tickCPI(now int64, committed0, flushes0 uint64) {
	b, seq := c.classifyCycle(now, committed0, flushes0)
	c.cpi.Add(b)
	if c.pt != nil && b != ptrace.BucketBase {
		c.pt.Emit(ptrace.Event{Cycle: now, Seq: seq, Kind: ptrace.KindStall, Stall: b})
	}
}

// classifyCycle decides the cycle's CPI bucket: base if anything
// committed, replay if a flush fired, otherwise why the ROB head (the
// commit bottleneck) has not retired. Uses only side-effect-free probes —
// in particular it must not clear a head load's store-set wait the way
// ready() does.
func (c *Core) classifyCycle(now int64, committed0, flushes0 uint64) (ptrace.Bucket, uint64) {
	if c.committed > committed0 {
		return ptrace.BucketBase, 0
	}
	if c.Flushes > flushes0 {
		return ptrace.BucketReplay, 0
	}
	if c.n > 0 {
		e := c.at(0)
		if e.issued {
			if e.op.Class.IsMem() {
				return ptrace.BucketDCache, e.op.Seq
			}
			return ptrace.BucketExec, e.op.Seq
		}
		t1 := c.rf.PeekReadyAt(e.srcP1)
		t2 := c.rf.PeekReadyAt(e.srcP2)
		if t1 >= regfile.NotReady || t2 >= regfile.NotReady || t1 > now || t2 > now {
			return ptrace.BucketSrc, e.op.Seq
		}
		if e.op.Class == isa.Load && e.waitStore != lsu.NoSeq && !c.sq.ResolvedOrGone(e.waitStore) {
			return ptrace.BucketDCache, e.op.Seq // store-set memory dependence
		}
		return ptrace.BucketFU, e.op.Seq
	}
	if !c.fe.Done() {
		return ptrace.BucketICache, 0
	}
	return ptrace.BucketDrain, 0
}

func (c *Core) at(i int) *robEntry {
	// Hot path: head+i < 2*len always holds, so a compare-and-subtract
	// replaces the integer division a % would cost.
	j := c.head + i
	if j >= len(c.rob) {
		j -= len(c.rob)
	}
	return &c.rob[j]
}

func (c *Core) retireStores(now int64) {
	if c.sq.HeadRetirable(now) {
		e := c.sq.Head()
		done := c.hier.Store(e.PC, e.Addr, now)
		c.acct.L1Access++
		c.sq.StartRetire(done)
	}
	c.sq.PopRetired(now)
}

// commit retires up to Width completed instructions in order.
func (c *Core) commit(now int64) {
	for k := 0; k < c.cfg.Width && c.n > 0; k++ {
		e := c.at(0)
		if !e.issued || e.done > now {
			return
		}
		op := e.op
		c.acct.Inc(c.hROB, energy.Read, 1)
		switch op.Class {
		case isa.Load:
			if c.cfg.NoLQ {
				if e.specLoad {
					// On-commit value-check: replay the search.
					if c.sq.ValidateLoad(op.Seq, op.Addr, op.Size, e.issueCycle) {
						c.acct.Inc(c.hSQ, energy.Search, 1)
						c.violationFlush(op.Seq, now)
						return
					}
					c.acct.Inc(c.hSQ, energy.Search, 1)
				}
				if e.sentinel {
					c.sq.ClearSentinel(op.Seq)
				}
			} else {
				c.lq.Release(op.Seq)
				c.acct.Inc(c.hLQ, energy.Read, 1)
			}
		case isa.Store:
			c.sq.Commit(op.Seq)
			c.acct.Inc(c.hSQ, energy.Write, 1)
		}
		if e.newP != regfile.PRegNone {
			c.rf.Release(e.oldP)
			c.acct.Inc(c.hFL, energy.Write, 1)
		}
		if c.OnCommit != nil {
			c.OnCommit(op.Seq)
		}
		c.emit(now, op.Seq, ptrace.KindCommit)
		c.head = (c.head + 1) % len(c.rob)
		c.n--
		c.committed++
	}
}

// issue selects up to Width ready instructions oldest-first from the IQ.
// With the scoreboard on, only slots raised on the candidate bitmap
// (every source producer issued) are visited; entries skipped that way
// would have failed ready() at the source check without side effects, so
// the two paths take identical decisions.
func (c *Core) issue(now int64) {
	if !c.sb {
		c.issueScan(now)
		return
	}
	issued := 0
	end := c.head + c.n
	hi := end
	if hi > len(c.rob) {
		hi = len(c.rob)
	}
	if c.issueRange(now, c.head, hi, &issued) {
		return
	}
	if end > len(c.rob) {
		c.issueRange(now, 0, end-len(c.rob), &issued)
	}
}

// issueRange walks ready candidates in ring slots [lo, hi) — a contiguous,
// non-wrapping, age-ordered run — via bits.TrailingZeros64 over the
// candidate∧inIQ words. Returns true when issue must stop for this cycle
// (width exhausted or a violation flush).
func (c *Core) issueRange(now int64, lo, hi int, issued *int) bool {
	wake := c.rf.WakeWords()
	for wi := lo >> 6; wi<<6 < hi; wi++ {
		base := wi << 6
		w := wake[wi] & c.iqMask[wi]
		if lo > base {
			w &= ^uint64(0) << uint(lo-base)
		}
		if hi < base+64 {
			w &= (uint64(1) << uint(hi-base)) - 1
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= uint64(1) << uint(b)
			e := &c.rob[base+b]
			if !c.ready(e, now) {
				continue
			}
			if !c.fus.Issue(e.op.Class, now) {
				continue
			}
			c.countFU(e.op.Class)
			c.acct.Inc(c.hIQ, energy.Read, 1)
			c.acct.Inc(c.hPRF, energy.Read, 2)
			c.executeOp(e, now)
			// A completion next cycle needs no wakeup: this issue already
			// makes the current cycle non-idle, so no jump can start before
			// it lands.
			if e.done > now+1 {
				c.wq.Wake(e.done)
			}
			e.inIQ = false
			c.iqN--
			c.iqMask[wi] &^= uint64(1) << uint(b)
			e.issued = true
			e.issueCycle = now
			c.emit(now, e.op.Seq, ptrace.KindIssueSpec)
			c.emit(e.done, e.op.Seq, ptrace.KindComplete)
			*issued++
			if e.op.HasDst() {
				// Completion broadcasts the destination tag across both
				// source-tag columns of the IQ CAM (two match arrays).
				c.acct.Inc(c.hIQ, energy.Search, 2)
				c.acct.Inc(c.hPRF, energy.Write, 1)
			}
			if c.flushedThisCycle {
				c.flushedThisCycle = false
				return true
			}
			if *issued >= c.cfg.Width {
				return true
			}
		}
	}
	return false
}

// issueScan is the original poll-based select: examine every scheduler
// entry each cycle, oldest first. Retained as the NoScoreboard oracle.
func (c *Core) issueScan(now int64) {
	issued := 0
	for i := 0; i < c.n && issued < c.cfg.Width; i++ {
		e := c.at(i)
		if !e.inIQ {
			continue
		}
		if !c.ready(e, now) {
			continue
		}
		if !c.fus.Issue(e.op.Class, now) {
			continue
		}
		c.countFU(e.op.Class)
		c.acct.Inc(c.hIQ, energy.Read, 1)
		c.acct.Inc(c.hPRF, energy.Read, 2)
		c.executeOp(e, now)
		// A completion next cycle needs no wakeup: this issue already makes
		// the current cycle non-idle, so no jump can start before it lands.
		if e.done > now+1 {
			c.wq.Wake(e.done)
		}
		e.inIQ = false
		c.iqN--
		e.issued = true
		e.issueCycle = now
		c.emit(now, e.op.Seq, ptrace.KindIssueSpec)
		c.emit(e.done, e.op.Seq, ptrace.KindComplete)
		issued++
		if e.op.HasDst() {
			// Completion broadcasts the destination tag across both
			// source-tag columns of the IQ CAM (two match arrays).
			c.acct.Inc(c.hIQ, energy.Search, 2)
			c.acct.Inc(c.hPRF, energy.Write, 1)
		}
		if c.flushedThisCycle {
			c.flushedThisCycle = false
			return
		}
	}
}

func (c *Core) ready(e *robEntry, now int64) bool {
	if e.srcP1 != regfile.PRegNone && !c.rf.IsReady(e.srcP1, now) {
		return false
	}
	if e.srcP2 != regfile.PRegNone && !c.rf.IsReady(e.srcP2, now) {
		return false
	}
	if e.op.Class == isa.Load && e.waitStore != lsu.NoSeq {
		if !c.sq.ResolvedOrGone(e.waitStore) {
			return false
		}
		e.waitStore = lsu.NoSeq
	}
	return true
}

func (c *Core) executeOp(e *robEntry, now int64) {
	op := e.op
	lat := int64(op.Class.ExecLatency())
	switch op.Class {
	case isa.Load:
		agu := now + lat
		res := c.sq.SearchForLoad(op.Seq, op.Addr, op.Size, false)
		c.acct.Inc(c.hSQ, energy.Search, 1)
		if res.OldestUnresolved != nil {
			e.specLoad = true
			c.SpecLoads++
			if c.cfg.NoLQ {
				c.sq.SetSentinel(res.OldestUnresolved, op.Seq)
				e.sentinel = true
			}
		}
		if res.Forward != nil {
			c.LoadsForwarded++
			e.done = agu + int64(c.hier.Config().L1Latency)
		} else {
			done, _ := c.hier.Load(op.PC, op.Addr, agu)
			c.acct.L1Access++
			e.done = done
		}
		if !c.cfg.NoLQ {
			c.lq.MarkIssued(op.Seq, op.Addr, op.Size)
			c.acct.Inc(c.hLQ, energy.Write, 1)
		}
	case isa.Store:
		e.done = now + lat
		c.sq.Resolve(op.Seq, op.Addr, op.Size, now+lat, now+lat)
		c.ss.StoreIssued(op.PC, op.Seq)
		c.acct.Inc(c.hSQ, energy.Write, 1)
		c.acct.Inc(c.hMDP, energy.Write, 1)
		if !c.cfg.NoLQ {
			// Search the LQ for younger speculatively issued loads.
			if loadSeq, loadPC, hit := c.lq.SearchViolation(op.Seq, op.Addr, op.Size); hit {
				c.acct.Inc(c.hLQ, energy.Search, 1)
				c.ss.OnViolation(loadPC, op.PC)
				c.acct.Inc(c.hMDP, energy.Write, 2)
				c.violationFlush(loadSeq, now)
				c.flushedThisCycle = true
				return
			}
			c.acct.Inc(c.hLQ, energy.Search, 1)
		}
	case isa.Branch:
		e.done = now + lat
		c.fe.BranchResolved(op.Seq, e.done)
	default:
		e.done = now + lat
	}
	if e.newP != regfile.PRegNone {
		c.rf.SetReadyAt(e.newP, e.done)
	}
}

func (c *Core) countFU(class isa.Class) {
	switch class.FU() {
	case isa.FUFP:
		c.acct.FPOps++
	case isa.FUAGU:
		c.acct.AGUOps++
	default:
		c.acct.IntOps++
	}
}

// violationFlush squashes the load with sequence victim and everything
// younger, restores the RAT, and refetches.
func (c *Core) violationFlush(victim uint64, now int64) {
	c.Violations++
	c.Flushes++
	c.emit(now, victim, ptrace.KindFlush)
	// Walk the ROB youngest-first, undoing renames down to the victim.
	for c.n > 0 {
		e := c.at(c.n - 1)
		if e.op.Seq < victim {
			break
		}
		c.emit(now, e.op.Seq, ptrace.KindSquash)
		if e.newP != regfile.PRegNone {
			c.rf.SetMapping(e.op.Dst, e.oldP)
			c.rf.Release(e.newP)
			c.acct.Inc(c.hRAT, energy.Write, 1)
		}
		if e.inIQ {
			c.iqN--
		}
		if c.sb {
			// Invalidate the squashed slot: registered waiters must not
			// fire for whatever occupies the slot next.
			j := c.head + c.n - 1
			if j >= len(c.rob) {
				j -= len(c.rob)
			}
			c.rf.ResetSlot(j)
			c.iqMask[j>>6] &^= uint64(1) << uint(j&63)
		}
		c.n--
	}
	if c.lq != nil {
		c.lq.SquashYoungerThan(victim)
	}
	c.sq.SquashYoungerThan(victim)
	c.sq.ClearAllSentinels()
	c.fe.Squash(victim, now)
}

// dispatch renames and inserts up to Width ops into the ROB/IQ.
func (c *Core) dispatch(now int64) {
	for k := 0; k < c.cfg.Width; k++ {
		op := c.fe.Peek(0)
		if op == nil {
			return
		}
		if c.n >= len(c.rob) || c.iqN >= c.cfg.IQSize {
			return
		}
		if op.Class == isa.Store && c.sq.Full() {
			return
		}
		if c.lq != nil && op.Class == isa.Load && c.lq.Full() {
			return
		}
		if op.HasDst() && !c.rf.CanAllocate(op.Dst) {
			return
		}
		c.fe.Pop()
		j := c.head + c.n
		if j >= len(c.rob) {
			j -= len(c.rob)
		}
		e := &c.rob[j]
		*e = robEntry{
			op:        op,
			inIQ:      true,
			waitStore: lsu.NoSeq,
			srcP1:     c.rf.Lookup(op.Src1),
			srcP2:     c.rf.Lookup(op.Src2),
			newP:      regfile.PRegNone,
			oldP:      regfile.PRegNone,
		}
		c.acct.Inc(c.hRAT, energy.Read, 2)
		if c.sb {
			c.rf.ResetSlot(j)
			c.rf.WaitOn(e.srcP1, j)
			c.rf.WaitOn(e.srcP2, j)
			c.rf.ArmSlot(j)
			c.iqMask[j>>6] |= uint64(1) << uint(j&63)
		}
		if op.HasDst() {
			newP, oldP, ok := c.rf.Allocate(op.Dst)
			if !ok {
				panic("ooo: allocate failed after CanAllocate")
			}
			e.newP, e.oldP = newP, oldP
			c.acct.Inc(c.hRAT, energy.Write, 1)
			c.acct.Inc(c.hFL, energy.Read, 1)
		}
		switch op.Class {
		case isa.Store:
			c.sq.Dispatch(op.Seq, op.PC)
			c.ss.StoreDispatched(op.PC, op.Seq)
			c.acct.Inc(c.hSQ, energy.Write, 1)
			c.acct.Inc(c.hMDP, energy.Read, 1)
		case isa.Load:
			if c.lq != nil {
				c.lq.Dispatch(op.Seq, op.PC)
				c.acct.Inc(c.hLQ, energy.Write, 1)
			}
			if seq, wait := c.ss.LoadDependence(op.PC); wait {
				e.waitStore = seq
			}
			c.acct.Inc(c.hMDP, energy.Read, 1)
		}
		c.acct.Inc(c.hROB, energy.Write, 1)
		c.acct.Inc(c.hIQ, energy.Write, 1)
		c.emit(now, op.Seq, ptrace.KindDispatch)
		c.n++
		c.iqN++
	}
}
