package frontend

import (
	"testing"

	"casino/internal/bpred"
	"casino/internal/energy"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/trace"
)

func mkTrace(ops []isa.MicroOp) *trace.Trace {
	for i := range ops {
		ops[i].Seq = uint64(i)
	}
	return &trace.Trace{Name: "t", Ops: ops}
}

func alu(pc uint64) isa.MicroOp {
	return isa.MicroOp{PC: pc, Class: isa.IntALU, Dst: isa.IntReg(1), Src1: isa.RegNone, Src2: isa.RegNone}
}

// newFE builds a front end with a pre-warmed L1I so that small unit tests
// are not dominated by cold instruction misses.
func newFE(tr *trace.Trace) *FrontEnd {
	h := mem.NewHierarchy(mem.DefaultConfig())
	for i := range tr.Ops {
		h.Fetch(tr.Ops[i].PC, 0)
	}
	return New(Config{Width: 2, Depth: 5, BufCap: 8}, tr.Reader(),
		bpred.NewPredictor(), h, energy.NewAccountant())
}

// newColdFE builds a front end with a cold L1I.
func newColdFE(tr *trace.Trace) *FrontEnd {
	return New(Config{Width: 2, Depth: 5, BufCap: 8}, tr.Reader(),
		bpred.NewPredictor(), mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
}

func TestFetchWidth(t *testing.T) {
	tr := mkTrace([]isa.MicroOp{alu(0x100), alu(0x104), alu(0x108), alu(0x10c), alu(0x110)})
	f := newFE(tr)
	f.Cycle(0)
	if f.BufLen() != 2 {
		t.Fatalf("fetched %d ops in one cycle, want 2 (width)", f.BufLen())
	}
	f.Cycle(1)
	if f.BufLen() != 4 {
		t.Fatalf("BufLen = %d", f.BufLen())
	}
	if op := f.Peek(0); op == nil || op.Seq != 0 {
		t.Errorf("Peek(0) = %v", op)
	}
	if op := f.Pop(); op.Seq != 0 {
		t.Errorf("Pop = %v", op)
	}
	if f.Peek(0).Seq != 1 {
		t.Error("Pop did not shift buffer")
	}
	if f.Peek(99) != nil || f.Peek(-1) != nil {
		t.Error("out-of-range Peek")
	}
}

func TestBufCapLimitsFetch(t *testing.T) {
	ops := make([]isa.MicroOp, 20)
	for i := range ops {
		ops[i] = alu(0x100 + uint64(i)*4)
	}
	f := newFE(mkTrace(ops))
	for c := int64(0); c < 20; c++ {
		f.Cycle(c)
	}
	if f.BufLen() != 8 {
		t.Errorf("buffer exceeded cap: %d", f.BufLen())
	}
}

func TestMispredictBlocksFetch(t *testing.T) {
	br := isa.MicroOp{PC: 0x104, Class: isa.Branch, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Taken: true, Target: 0x200}
	tr := mkTrace([]isa.MicroOp{alu(0x100), br, alu(0x200), alu(0x204)})
	f := newFE(tr)
	f.Cycle(0) // fetches alu + branch; cold branch mispredicts (no BTB entry)
	if !f.Blocked() {
		t.Fatal("cold taken branch did not block fetch")
	}
	if f.BufLen() != 2 {
		t.Fatalf("BufLen = %d (branch itself must be buffered)", f.BufLen())
	}
	f.Cycle(1)
	if f.BufLen() != 2 {
		t.Error("fetch proceeded while blocked")
	}
	// Wrong branch seq: ignored.
	f.BranchResolved(99, 10)
	if !f.Blocked() {
		t.Error("unrelated resolution unblocked fetch")
	}
	f.BranchResolved(1, 10)
	if f.Blocked() {
		t.Fatal("resolution did not unblock")
	}
	f.Cycle(12) // 10 + depth(5) = 15 > 12: still stalled
	if f.BufLen() != 2 {
		t.Error("fetched during redirect penalty")
	}
	f.Cycle(15)
	if f.BufLen() != 4 {
		t.Errorf("BufLen after redirect = %d", f.BufLen())
	}
	if f.Mispredicts != 1 {
		t.Errorf("Mispredicts = %d", f.Mispredicts)
	}
}

func TestSquashRefetches(t *testing.T) {
	ops := make([]isa.MicroOp, 10)
	for i := range ops {
		ops[i] = alu(0x100 + uint64(i)*4)
	}
	f := newFE(mkTrace(ops))
	for c := int64(0); c < 4; c++ {
		f.Cycle(c)
	}
	for i := 0; i < 4; i++ {
		f.Pop()
	}
	f.Squash(2, 100) // refetch from op 2
	if f.BufLen() != 0 {
		t.Fatal("squash left buffer populated")
	}
	f.Cycle(101) // within redirect penalty
	if f.BufLen() != 0 {
		t.Error("fetched during squash penalty")
	}
	f.Cycle(105)
	if op := f.Peek(0); op == nil || op.Seq != 2 {
		t.Fatalf("refetch started at %v, want seq 2", op)
	}
}

func TestICacheMissStalls(t *testing.T) {
	// Two ops on lines far apart: second line cold-misses.
	tr := mkTrace([]isa.MicroOp{alu(0x100), alu(0x100000)})
	f := newColdFE(tr)
	f.Cycle(0)
	// First line itself is a cold miss: fetch stalled immediately.
	if f.BufLen() != 0 {
		t.Fatalf("cold I-miss did not stall: buf=%d", f.BufLen())
	}
	if f.ICacheStalls != 1 {
		t.Errorf("ICacheStalls = %d", f.ICacheStalls)
	}
	// Eventually the line arrives and fetch proceeds.
	var c int64
	for c = 1; c < 10000 && f.BufLen() == 0; c++ {
		f.Cycle(c)
	}
	if f.BufLen() == 0 {
		t.Fatal("fetch never resumed after I-miss")
	}
}

func TestPredictedTakenBranchNoStall(t *testing.T) {
	// Train a loop branch, then confirm steady-state fetch flows through it.
	var ops []isa.MicroOp
	for i := 0; i < 50; i++ {
		ops = append(ops, alu(0x100),
			isa.MicroOp{PC: 0x104, Class: isa.Branch, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Taken: true, Target: 0x100})
	}
	f := newFE(mkTrace(ops))
	var c int64
	for c = 0; c < 5000 && !f.Done(); c++ {
		f.Cycle(c)
		for f.BufLen() > 0 {
			op := f.Pop()
			if op.Class == isa.Branch && f.Blocked() {
				f.BranchResolved(op.Seq, c+1)
			}
		}
	}
	if !f.Done() {
		t.Fatal("front end never drained")
	}
	if f.Mispredicts > 5 {
		t.Errorf("trained loop branch mispredicted %d times", f.Mispredicts)
	}
}

func TestDone(t *testing.T) {
	f := newFE(mkTrace([]isa.MicroOp{alu(0x100)}))
	if f.Done() {
		t.Error("Done before fetch")
	}
	f.Cycle(0)
	if f.Done() {
		t.Error("Done with buffered op")
	}
	f.Pop()
	if !f.Done() {
		t.Error("not Done after drain")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	New(Config{Width: 0, Depth: 1, BufCap: 4}, nil, nil, nil, nil)
}
