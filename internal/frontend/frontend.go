// Package frontend is the shared in-order fetch/decode engine used by all
// core models. It feeds decoded micro-ops from a trace into a dispatch
// buffer at the configured width, checking every branch against the TAGE
// predictor and BTB.
//
// Wrong paths are modelled as fetch bubbles (standard trace-driven
// practice): a mispredicted branch blocks fetch until the core reports the
// branch resolved, then costs the pipeline refill depth. Instruction-cache
// misses stall fetch for the miss latency beyond the pipelined L1I hit
// time.
package frontend

import (
	"casino/internal/bpred"
	"casino/internal/energy"
	"casino/internal/eventq"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/ptrace"
	"casino/internal/trace"
)

// NoSeq marks the absence of a blocking branch.
const NoSeq = ^uint64(0)

// Config sets the front end's geometry.
type Config struct {
	Width  int // ops fetched+decoded per cycle
	Depth  int // redirect penalty in cycles (pipeline refill)
	BufCap int // dispatch buffer capacity
}

// FrontEnd fetches from a trace with branch prediction and an L1I.
type FrontEnd struct {
	cfg  Config
	rd   *trace.Reader
	pred *bpred.Predictor
	hier *mem.Hierarchy
	acct *energy.Accountant

	pt *ptrace.Recorder // optional pipeline-event recorder (nil = off)
	wq *eventq.Queue    // optional shared wakeup queue (nil = off)

	buf        []*isa.MicroOp // ring of BufCap slots
	head, n    int
	stallUntil int64
	blockedOn  uint64 // seq of the unresolved mispredicted branch
	lastLine   uint64
	haveLine   bool

	Fetched      uint64
	Mispredicts  uint64
	ICacheStalls uint64
}

// New creates a front end reading from rd. acct may be nil (no energy
// accounting).
func New(cfg Config, rd *trace.Reader, pred *bpred.Predictor, hier *mem.Hierarchy, acct *energy.Accountant) *FrontEnd {
	if cfg.Width < 1 || cfg.Depth < 1 || cfg.BufCap < cfg.Width {
		panic("frontend: bad config")
	}
	return &FrontEnd{
		cfg: cfg, rd: rd, pred: pred, hier: hier, acct: acct,
		buf:       make([]*isa.MicroOp, cfg.BufCap),
		blockedOn: NoSeq,
	}
}

// Cycle fetches up to Width ops into the dispatch buffer.
func (f *FrontEnd) Cycle(now int64) {
	if now < f.stallUntil || f.blockedOn != NoSeq {
		return
	}
	for n := 0; n < f.cfg.Width && f.n < f.cfg.BufCap; n++ {
		op := f.rd.Peek(0)
		if op == nil {
			return
		}
		line := op.PC >> mem.BlockBits
		if !f.haveLine || line != f.lastLine {
			done := f.hier.Fetch(op.PC, now)
			if f.acct != nil {
				f.acct.L1Access++
			}
			f.lastLine, f.haveLine = line, true
			hitLat := int64(f.hier.Config().L1Latency)
			if extra := done - now - hitLat; extra > 0 {
				// I-cache miss: bubble for the extra latency, retry then.
				f.stallUntil = now + extra
				f.wq.Wake(f.stallUntil)
				f.ICacheStalls++
				return
			}
		}
		f.rd.Next()
		if i := f.head + f.n; i < len(f.buf) {
			f.buf[i] = op
		} else {
			f.buf[i-len(f.buf)] = op
		}
		f.n++
		f.Fetched++
		if f.pt != nil {
			f.pt.Emit(ptrace.Event{Cycle: now, Seq: op.Seq, Kind: ptrace.KindFetch})
		}
		if f.acct != nil {
			f.acct.Frontend++
		}
		if op.Class == isa.Branch {
			if f.acct != nil {
				f.acct.BpredOps++
			}
			if correct := f.pred.OnBranch(op.PC, op.Taken, op.Target); !correct {
				f.Mispredicts++
				f.blockedOn = op.Seq
				return
			}
			if op.Taken {
				// Redirected fetch: force an I-cache line re-check.
				f.haveLine = false
			}
		}
	}
}

// noEvent mirrors lsu.NoEvent: no progress through time alone.
const noEvent = int64(1) << 62

// NextFetchEvent returns the earliest cycle >= now at which Cycle(now)
// could do anything: now when fetch would proceed (or hit the I-cache and
// mutate it), the stall expiry while refilling, and a far-future sentinel
// when fetch is blocked on something only the core can clear (an unresolved
// mispredicted branch, a full dispatch buffer, an exhausted trace) — those
// unblock via core events the fast-forward probe already tracks.
func (f *FrontEnd) NextFetchEvent(now int64) int64 {
	if f.blockedOn != NoSeq || f.n >= f.cfg.BufCap || f.rd.Peek(0) == nil {
		return noEvent
	}
	if now < f.stallUntil {
		return f.stallUntil
	}
	return now
}

// SetPipeTrace installs (or removes, with nil) a pipeline-event recorder;
// the front end contributes the fetch events of the shared stream.
func (f *FrontEnd) SetPipeTrace(rec *ptrace.Recorder) { f.pt = rec }

// SetWakeQueue attaches the shared wakeup queue; the front end registers
// every stall expiry (I-cache refills, redirect penalties) as it is stored.
func (f *FrontEnd) SetWakeQueue(q *eventq.Queue) { f.wq = q }

// RecyclePredictor returns the branch predictor to bpred's construction
// pool at end of run. The front end must not fetch afterwards.
func (f *FrontEnd) RecyclePredictor() {
	bpred.Recycle(f.pred)
	f.pred = nil
}

// BufLen returns the number of buffered decoded ops.
func (f *FrontEnd) BufLen() int { return f.n }

// Peek returns the i'th buffered op without consuming it (nil if absent).
func (f *FrontEnd) Peek(i int) *isa.MicroOp {
	if i < 0 || i >= f.n {
		return nil
	}
	if j := f.head + i; j < len(f.buf) {
		return f.buf[j]
	} else {
		return f.buf[j-len(f.buf)]
	}
}

// Pop consumes and returns the oldest buffered op (nil if empty).
func (f *FrontEnd) Pop() *isa.MicroOp {
	if f.n == 0 {
		return nil
	}
	op := f.buf[f.head]
	if f.head++; f.head == len(f.buf) {
		f.head = 0
	}
	f.n--
	return op
}

// BranchResolved tells the front end the branch with sequence seq finished
// executing at cycle done. If fetch was blocked on it, fetching resumes
// after the redirect penalty.
func (f *FrontEnd) BranchResolved(seq uint64, done int64) {
	if f.blockedOn != seq {
		return
	}
	f.blockedOn = NoSeq
	f.haveLine = false
	if s := done + int64(f.cfg.Depth); s > f.stallUntil {
		f.stallUntil = s
		f.wq.Wake(s)
	}
}

// Squash flushes the buffer and refetches from sequence number seq,
// resuming after the redirect penalty from cycle now (memory-order
// violation recovery).
func (f *FrontEnd) Squash(seq uint64, now int64) {
	f.rd.Seek(int(seq))
	f.head, f.n = 0, 0
	f.blockedOn = NoSeq
	f.haveLine = false
	if s := now + int64(f.cfg.Depth); s > f.stallUntil {
		f.stallUntil = s
		f.wq.Wake(s)
	}
}

// Blocked reports whether fetch is waiting on a mispredicted branch.
func (f *FrontEnd) Blocked() bool { return f.blockedOn != NoSeq }

// Done reports whether the trace is exhausted and the buffer drained.
func (f *FrontEnd) Done() bool { return f.rd.Done() && f.n == 0 }
