package specino

import "casino/internal/stats"

// PublishMetrics snapshots the limit-study model's counters into the
// registry. Scalar names match the legacy Result.Extra keys.
func (c *Core) PublishMetrics(r *stats.Registry) {
	r.Counter("specIssued", c.SpecIssued)
	r.Counter("headIssued", c.HeadIssued)
	r.Counter("oooIssued", c.OoOIssued)
	r.Gauge("specFrac", c.SpecFraction())
	r.Gauge("oooFrac", c.OoOFraction())
	c.cpi.Publish(r)
}
