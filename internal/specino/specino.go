// Package specino implements the idealized SpecInO[WS,SO] limit study of
// §II-C (Figure 2): a conventional stall-on-use in-order core supplemented
// with a small speculative scheduling window that slides over the IQ,
// issuing ready instructions out of program order. Renaming and memory
// disambiguation are perfect (the figure's premise: "assuming that
// instructions are renamed properly and the architectural state is updated
// correctly"), which isolates the scheduling contribution.
package specino

import (
	"math/bits"
	"os"

	"casino/internal/bpred"
	"casino/internal/energy"
	"casino/internal/eventq"
	"casino/internal/frontend"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/pipeline"
	"casino/internal/ptrace"
	"casino/internal/trace"
)

// NoScoreboard disables the producer-push wakeup path and recomputes
// readiness by scanning producer state on every check — the original
// poll-based oracle, retained for cross-validation. The env var mirrors
// the CASINO_NO_FASTFORWARD kill switch; tests flip the variable directly.
var NoScoreboard = os.Getenv("CASINO_NO_SCOREBOARD") != ""

// Config holds the limit-study parameters.
type Config struct {
	Width      int
	IQSize     int  // 16, as the Table I in-order IQ
	WS         int  // window size: instructions examined per cycle
	SO         int  // sliding offset when nothing in the window is ready
	NonMemOnly bool // window may issue only non-memory instructions
	FrontDepth int
}

// DefaultConfig returns SpecInO[2,1] over the Table I in-order machine.
func DefaultConfig(ws, so int) Config {
	return Config{Width: 2, IQSize: 16, WS: ws, SO: so, FrontDepth: 5}
}

// Core is the idealized SpecInO machine.
//
// The program-ordered window is held in structure-of-arrays form: index 0
// is the oldest in-flight instruction and n entries are live, so the
// per-cycle kernel walks dense int64/uint8 slices and one uint64 issue
// mask instead of chasing per-entry heap pointers. Producers are
// identified by dispatch sequence number (dseq): the entry with dseq d
// lives at index d-headDseq, and d < headDseq means it already committed
// (a committed producer is always ready — its completion preceded its
// commit cycle).
type Core struct {
	cfg  Config
	now  int64
	fe   *frontend.FrontEnd
	hier *mem.Hierarchy
	fus  *pipeline.FUPool
	acct *energy.Accountant
	wq   *eventq.Queue // shared wakeup queue (event-driven clock)

	n       int
	ops     []*isa.MicroOp
	done    []int64 // completion cycle, valid once issued
	readyT  []int64 // latest completion among this entry's issued producers
	pending []uint8 // producers not yet issued (push-wakeup mode)
	prodA   []int64 // dseq of Src1's writer, -1 = none (scan-oracle state)
	prodB   []int64 // dseq of Src2's writer, -1 = none
	stf     []int64 // dseq of the overlapping older store to forward from, -1 = none
	wHead   []int32 // head of the entry's waiter list, -1 = empty

	unissued uint64 // bit i set = entry i not yet issued
	winPos   int    // window offset into the IQ
	headDseq int64  // dseq of entry 0

	lastWriter [isa.NumArchRegs]int64 // dseq of each register's last writer, -1 = none

	// In-flight stores, oldest first, as a ring: commit retires stores in
	// program order, so pruning is always a head pop (O(1) amortized).
	stDseq        []int64
	stOps         []*isa.MicroOp
	stHead, stLen int

	// Waiter-node pool: singly linked lists threaded through wNext, nodes
	// recycled through a free list so steady state allocates nothing.
	wNext []int32
	wDseq []int64 // waiting consumer's dseq
	wFree int32

	committed uint64

	pt  *ptrace.Recorder // optional pipeline-event recorder (nil = off)
	cpi ptrace.CPI       // per-cycle stall attribution

	// OnCommit, when non-nil, observes each committed sequence number
	// (architectural-invariant checking in tests).
	OnCommit func(seq uint64)

	// Statistics.
	SpecIssued uint64 // issued by the sliding window
	HeadIssued uint64 // issued by the in-order head engine
	OoOIssued  uint64 // issued while an older instruction was still waiting
}

// New builds a SpecInO limit-study core over the trace.
func New(cfg Config, tr *trace.Trace, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	return NewAt(cfg, tr, 0, nil, hier, acct)
}

// NewAt builds a core whose frontend starts at trace position start with an
// injected (possibly pre-trained) branch predictor; pred == nil allocates a
// fresh one. The sampled-simulation driver uses it to open detailed windows
// mid-trace against warmed shared state.
func NewAt(cfg Config, tr *trace.Trace, start int, pred *bpred.Predictor, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	if cfg.WS < 1 || cfg.SO < 1 {
		panic("specino: WS and SO must be positive")
	}
	if cfg.IQSize < 1 || cfg.IQSize > 64 {
		panic("specino: IQSize must be in [1,64] — the issue mask is one dense uint64 word")
	}
	c := &Core{cfg: cfg, hier: hier, fus: pipeline.ScaledFUPool(cfg.Width), acct: acct}
	q := cfg.IQSize
	c.ops = make([]*isa.MicroOp, q)
	c.done = make([]int64, q)
	c.readyT = make([]int64, q)
	c.pending = make([]uint8, q)
	c.prodA = make([]int64, q)
	c.prodB = make([]int64, q)
	c.stf = make([]int64, q)
	c.wHead = make([]int32, q)
	c.stDseq = make([]int64, q)
	c.stOps = make([]*isa.MicroOp, q)
	c.wFree = -1
	for i := range c.lastWriter {
		c.lastWriter[i] = -1
	}
	c.wq = eventq.New(2*cfg.IQSize + 16)
	c.fus.SetWakeQueue(c.wq)
	hier.SetWakeQueue(c.wq)
	rd := tr.Reader()
	rd.Seek(start)
	if pred == nil {
		pred = bpred.NewPredictor()
	}
	c.fe = frontend.New(
		frontend.Config{Width: cfg.Width, Depth: cfg.FrontDepth, BufCap: 2 * cfg.Width},
		rd, pred, hier, acct)
	c.fe.SetWakeQueue(c.wq)
	return c
}

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Committed returns committed op count.
func (c *Core) Committed() uint64 { return c.committed }

// Done reports pipeline drain.
func (c *Core) Done() bool { return c.fe.Done() && c.n == 0 }

// SpecFraction returns the fraction of instructions issued by the sliding
// window itself.
func (c *Core) SpecFraction() float64 {
	total := c.SpecIssued + c.HeadIssued
	if total == 0 {
		return 0
	}
	return float64(c.SpecIssued) / float64(total)
}

// OoOFraction returns the fraction of instructions issued out of program
// order — issued while at least one older instruction was still waiting —
// the paper's §II-C "62%" definition (it counts head-engine issues that
// slipped past stalled window-skipped instructions too).
func (c *Core) OoOFraction() float64 {
	total := c.SpecIssued + c.HeadIssued
	if total == 0 {
		return 0
	}
	return float64(c.OoOIssued) / float64(total)
}

// Cycle advances one clock.
func (c *Core) Cycle() {
	now := c.now
	committed0 := c.committed
	c.wq.Drain(now)
	c.commit(now)
	c.issue(now)
	c.dispatch()
	c.fe.Cycle(now)
	c.tickCPI(now, committed0)
	c.now++
	c.acct.Cycles++
}

// commit drains completed instructions in order from the IQ head, then
// shifts the window arrays once for the whole batch.
func (c *Core) commit(now int64) {
	k := 0
	for k < c.cfg.Width && k < c.n {
		if c.unissued&(uint64(1)<<uint(k)) != 0 || c.done[k] > now {
			break
		}
		op := c.ops[k]
		if op.Class == isa.Store {
			// Perfect store buffering: retire directly (timing charged at
			// issue; the limit study has no SB stalls). In-order commit
			// makes the committing store the store ring's head.
			c.hier.Store(op.PC, op.Addr, now)
			c.acct.L1Access++
			c.popStore()
		}
		if c.OnCommit != nil {
			c.OnCommit(op.Seq)
		}
		c.emit(now, op.Seq, ptrace.KindCommit)
		c.committed++
		k++
	}
	if k > 0 {
		c.shift(k)
		c.winPos -= k
		if c.winPos < 0 {
			c.winPos = 0
		}
	}
}

// shift retires the k oldest entries by sliding every parallel array left.
// Committed entries never hold waiter lists (their waiters fired at issue)
// and their dseqs drop below headDseq, which is what marks producer
// references to them as "always ready".
func (c *Core) shift(k int) {
	m := c.n - k
	copy(c.ops[:m], c.ops[k:c.n])
	copy(c.done[:m], c.done[k:c.n])
	copy(c.readyT[:m], c.readyT[k:c.n])
	copy(c.pending[:m], c.pending[k:c.n])
	copy(c.prodA[:m], c.prodA[k:c.n])
	copy(c.prodB[:m], c.prodB[k:c.n])
	copy(c.stf[:m], c.stf[k:c.n])
	copy(c.wHead[:m], c.wHead[k:c.n])
	for i := m; i < c.n; i++ {
		c.ops[i] = nil
	}
	c.unissued >>= uint(k)
	c.headDseq += int64(k)
	c.n = m
}

func (c *Core) issue(now int64) {
	slots := c.cfg.Width
	// In-order issue at the IQ head (the conventional InO engine): the
	// issue mask finds the next unissued entry in one TrailingZeros64
	// instead of a linear walk over issued entries.
	idx := 0
	for slots > 0 {
		m := c.unissued >> uint(idx)
		if m == 0 {
			idx = c.n // every remaining entry has issued
			break
		}
		j := idx + bits.TrailingZeros64(m)
		idx = j
		if !c.readyIdx(j, now) || !c.fus.Issue(c.ops[j].Class, now) {
			break
		}
		if c.unissued&((uint64(1)<<uint(j))-1) != 0 {
			c.OoOIssued++
		}
		c.execute(j, now)
		if c.pt != nil {
			c.emit(now, c.ops[j].Seq, ptrace.KindIssue)
			c.emit(c.done[j], c.ops[j].Seq, ptrace.KindComplete)
		}
		c.HeadIssued++
		slots--
		idx = j + 1
	}
	// The SpecInO window examines WS entries at winPos.
	if c.winPos < idx+1 {
		c.winPos = idx + 1 // window runs ahead of the stalled head region
	}
	issuedFromWindow := false
	for w := 0; w < c.cfg.WS && slots > 0; w++ {
		p := c.winPos + w
		if p >= c.n {
			break
		}
		if c.unissued&(uint64(1)<<uint(p)) == 0 {
			continue
		}
		if c.cfg.NonMemOnly && c.ops[p].Class.IsMem() {
			continue
		}
		if !c.readyIdx(p, now) || !c.fus.Issue(c.ops[p].Class, now) {
			continue
		}
		if c.unissued&((uint64(1)<<uint(p))-1) != 0 {
			c.OoOIssued++
		}
		c.execute(p, now)
		if c.pt != nil {
			c.emit(now, c.ops[p].Seq, ptrace.KindIssueSpec)
			c.emit(c.done[p], c.ops[p].Seq, ptrace.KindComplete)
		}
		c.SpecIssued++
		issuedFromWindow = true
		slots--
	}
	if !issuedFromWindow {
		// Nothing ready in the window: slide towards younger instructions.
		// The window never moves backwards — instructions it has passed
		// can only issue when they reach the IQ head, which is exactly why
		// large sliding offsets hurt (§II-C).
		c.winPos += c.cfg.SO
		if c.winPos > c.n {
			c.winPos = c.n
		}
	}
}

// readyIdx reports whether entry i can issue at cycle now. In push-wakeup
// mode this is two dense loads: producers decrement pending and raise
// readyT when they issue, so no producer state is revisited. The scan
// oracle recomputes the same answer from producer dseqs.
func (c *Core) readyIdx(i int, now int64) bool {
	if NoScoreboard {
		r, ok := c.readyInfo(i)
		return ok && r <= now
	}
	return c.pending[i] == 0 && c.readyT[i] <= now
}

// readyInfo returns the cycle entry i's operands complete; ok is false
// while a producer has not issued. Committed producers (dseq < headDseq)
// completed at or before their commit cycle, so they never bound r from
// above now.
func (c *Core) readyInfo(i int) (int64, bool) {
	if !NoScoreboard {
		return c.readyT[i], c.pending[i] == 0
	}
	var r int64
	for _, d := range [...]int64{c.prodA[i], c.prodB[i], c.stf[i]} {
		if d < c.headDseq {
			continue // no producer, or it already committed
		}
		pi := int(d - c.headDseq)
		if c.unissued&(uint64(1)<<uint(pi)) != 0 {
			return 0, false
		}
		if c.done[pi] > r {
			r = c.done[pi]
		}
	}
	return r, true
}

func (c *Core) execute(i int, now int64) {
	op := c.ops[i]
	c.unissued &^= uint64(1) << uint(i)
	var done int64
	switch op.Class {
	case isa.Load:
		agu := now + int64(op.Class.ExecLatency())
		if c.stf[i] >= 0 {
			done = agu + int64(c.hier.Config().L1Latency) // forwarded
		} else {
			done, _ = c.hier.Load(op.PC, op.Addr, agu)
			c.acct.L1Access++
		}
	case isa.Branch:
		done = now + int64(op.Class.ExecLatency())
		c.fe.BranchResolved(op.Seq, done)
	default:
		done = now + int64(op.Class.ExecLatency())
	}
	c.done[i] = done
	if !NoScoreboard {
		c.fire(i, done)
	}
	// A completion next cycle needs no wakeup: this issue already makes the
	// current cycle non-idle, so no jump can start before the effect lands.
	if done > now+1 {
		c.wq.Wake(done)
	}
}

// fire pushes entry i's completion to every registered waiter. Waiters are
// identified by dseq: a waiting consumer can neither issue nor commit
// before its producer issues, so the reference is always live.
func (c *Core) fire(i int, done int64) {
	for id := c.wHead[i]; id >= 0; {
		ci := int(c.wDseq[id] - c.headDseq)
		c.pending[ci]--
		if done > c.readyT[ci] {
			c.readyT[ci] = done
		}
		next := c.wNext[id]
		c.wNext[id] = c.wFree
		c.wFree = id
		id = next
	}
	c.wHead[i] = -1
}

// watch registers consumer ci on producer dseq d: an already-issued
// producer contributes its completion time immediately, an unissued one
// gets a waiter node and bumps ci's pending count.
func (c *Core) watch(d int64, ci int) {
	if NoScoreboard || d < c.headDseq {
		return // scan mode, no producer, or the producer committed
	}
	pi := int(d - c.headDseq)
	if c.unissued&(uint64(1)<<uint(pi)) == 0 {
		if t := c.done[pi]; t > c.readyT[ci] {
			c.readyT[ci] = t
		}
		return
	}
	c.pending[ci]++
	id := c.allocNode()
	c.wDseq[id] = c.headDseq + int64(ci)
	c.wNext[id] = c.wHead[pi]
	c.wHead[pi] = id
}

func (c *Core) allocNode() int32 {
	if c.wFree >= 0 {
		id := c.wFree
		c.wFree = c.wNext[id]
		return id
	}
	c.wNext = append(c.wNext, 0)
	c.wDseq = append(c.wDseq, 0)
	return int32(len(c.wNext) - 1)
}

func (c *Core) dispatch() {
	for k := 0; k < c.cfg.Width && c.n < c.cfg.IQSize; k++ {
		op := c.fe.Pop()
		if op == nil {
			return
		}
		i := c.n
		c.ops[i] = op
		c.done[i] = 0
		c.readyT[i] = 0
		c.pending[i] = 0
		c.prodA[i] = -1
		c.prodB[i] = -1
		c.stf[i] = -1
		c.wHead[i] = -1
		c.unissued |= uint64(1) << uint(i)
		if op.Src1.Valid() {
			c.prodA[i] = c.lastWriter[op.Src1]
			c.watch(c.prodA[i], i)
		}
		if op.Src2.Valid() {
			c.prodB[i] = c.lastWriter[op.Src2]
			c.watch(c.prodB[i], i)
		}
		if op.Class == isa.Load {
			// Oracle disambiguation: find the youngest overlapping older
			// in-flight store (must forward from it when it completes).
			for s := c.stLen - 1; s >= 0; s-- {
				j := c.stIdx(s)
				if c.stOps[j].Overlaps(op) {
					c.stf[i] = c.stDseq[j]
					c.watch(c.stf[i], i)
					break
				}
			}
		}
		if op.HasDst() {
			c.lastWriter[op.Dst] = c.headDseq + int64(i)
		}
		if op.Class == isa.Store {
			c.pushStore(c.headDseq+int64(i), op)
		}
		c.n++
		c.emit(c.now, op.Seq, ptrace.KindDispatch)
	}
}

// --- in-flight store ring ---

func (c *Core) stIdx(s int) int {
	j := c.stHead + s
	if j >= len(c.stOps) {
		j -= len(c.stOps)
	}
	return j
}

func (c *Core) pushStore(d int64, op *isa.MicroOp) {
	j := c.stIdx(c.stLen)
	c.stDseq[j] = d
	c.stOps[j] = op
	c.stLen++
}

func (c *Core) popStore() {
	c.stOps[c.stHead] = nil
	c.stHead++
	if c.stHead == len(c.stOps) {
		c.stHead = 0
	}
	c.stLen--
}

// SetPipeTrace installs (or removes, with nil) a pipeline-event recorder.
// The front end shares the recorder so fetch events join the same stream.
func (c *Core) SetPipeTrace(rec *ptrace.Recorder) {
	c.pt = rec
	c.fe.SetPipeTrace(rec)
}

// CPIStack exposes the per-cycle stall attribution accumulated so far.
func (c *Core) CPIStack() *ptrace.CPI { return &c.cpi }

// Recycle returns pooled resources (the branch predictor) at end of run.
// The core must not be cycled afterwards.
func (c *Core) Recycle() { c.fe.RecyclePredictor() }

func (c *Core) emit(cycle int64, seq uint64, k ptrace.Kind) {
	if c.pt != nil {
		c.pt.Emit(ptrace.Event{Cycle: cycle, Seq: seq, Kind: k})
	}
}

// tickCPI attributes the cycle that just executed to exactly one CPI bucket
// and, when a recorder is active, publishes non-base cycles as stall events
// tagged with the culprit instruction.
func (c *Core) tickCPI(now int64, committed0 uint64) {
	b, seq := c.classifyCycle(now, committed0)
	c.cpi.Add(b)
	if c.pt != nil && b != ptrace.BucketBase {
		c.pt.Emit(ptrace.Event{Cycle: now, Seq: seq, Kind: ptrace.KindStall, Stall: b})
	}
}

// stfBlocked reports whether entry i's forwarding store is still holding it
// back: unissued, or issued but not complete. A committed store (dseq below
// headDseq) finished at or before its commit cycle, so it never blocks.
func (c *Core) stfBlocked(i int, now int64) bool {
	d := c.stf[i]
	if d < c.headDseq {
		return false
	}
	si := int(d - c.headDseq)
	return c.unissued&(uint64(1)<<uint(si)) != 0 || c.done[si] > now
}

// classifyCycle decides the cycle's CPI bucket: base if anything committed,
// otherwise the reason the IQ head (the commit bottleneck) has not retired.
// The limit study has perfect renaming and store buffering, so the only
// possible blockers are execution latency, dataflow, and the front end.
func (c *Core) classifyCycle(now int64, committed0 uint64) (ptrace.Bucket, uint64) {
	if c.committed > committed0 {
		return ptrace.BucketBase, 0
	}
	if c.n > 0 {
		op := c.ops[0]
		if c.unissued&1 == 0 {
			// done > now always holds here: a completed head with a free
			// commit slot (nothing committed) would have retired this cycle.
			if op.Class.IsMem() {
				return ptrace.BucketDCache, op.Seq
			}
			return ptrace.BucketExec, op.Seq
		}
		if r, ok := c.readyInfo(0); !ok || r > now {
			if c.stfBlocked(0, now) {
				// Oracle disambiguation holds the load for an older store.
				return ptrace.BucketDCache, op.Seq
			}
			return ptrace.BucketSrc, op.Seq
		}
		return ptrace.BucketFU, op.Seq
	}
	if !c.fe.Done() {
		return ptrace.BucketICache, 0
	}
	return ptrace.BucketDrain, 0
}
