// Package specino implements the idealized SpecInO[WS,SO] limit study of
// §II-C (Figure 2): a conventional stall-on-use in-order core supplemented
// with a small speculative scheduling window that slides over the IQ,
// issuing ready instructions out of program order. Renaming and memory
// disambiguation are perfect (the figure's premise: "assuming that
// instructions are renamed properly and the architectural state is updated
// correctly"), which isolates the scheduling contribution.
package specino

import (
	"casino/internal/bpred"
	"casino/internal/energy"
	"casino/internal/eventq"
	"casino/internal/frontend"
	"casino/internal/isa"
	"casino/internal/mem"
	"casino/internal/pipeline"
	"casino/internal/ptrace"
	"casino/internal/trace"
)

// Config holds the limit-study parameters.
type Config struct {
	Width      int
	IQSize     int  // 16, as the Table I in-order IQ
	WS         int  // window size: instructions examined per cycle
	SO         int  // sliding offset when nothing in the window is ready
	NonMemOnly bool // window may issue only non-memory instructions
	FrontDepth int
}

// DefaultConfig returns SpecInO[2,1] over the Table I in-order machine.
func DefaultConfig(ws, so int) Config {
	return Config{Width: 2, IQSize: 16, WS: ws, SO: so, FrontDepth: 5}
}

type entry struct {
	op     *isa.MicroOp
	issued bool
	done   int64
	prod1  *entry
	prod2  *entry
	stFwd  *entry // overlapping older store to wait on (oracle disambiguation)
}

// Core is the idealized SpecInO machine.
type Core struct {
	cfg  Config
	now  int64
	fe   *frontend.FrontEnd
	hier *mem.Hierarchy
	fus  *pipeline.FUPool
	acct *energy.Accountant
	wq   *eventq.Queue // shared wakeup queue (event-driven clock)

	iq         []*entry // program-ordered window; commit from head
	winPos     int      // window offset into iq
	lastWriter [isa.NumArchRegs]*entry
	lastStores []*entry // in-flight stores, oldest first

	committed uint64

	pt  *ptrace.Recorder // optional pipeline-event recorder (nil = off)
	cpi ptrace.CPI       // per-cycle stall attribution

	// OnCommit, when non-nil, observes each committed sequence number
	// (architectural-invariant checking in tests).
	OnCommit func(seq uint64)

	// Statistics.
	SpecIssued uint64 // issued by the sliding window
	HeadIssued uint64 // issued by the in-order head engine
	OoOIssued  uint64 // issued while an older instruction was still waiting
}

// New builds a SpecInO limit-study core over the trace.
func New(cfg Config, tr *trace.Trace, hier *mem.Hierarchy, acct *energy.Accountant) *Core {
	if cfg.WS < 1 || cfg.SO < 1 {
		panic("specino: WS and SO must be positive")
	}
	c := &Core{cfg: cfg, hier: hier, fus: pipeline.ScaledFUPool(cfg.Width), acct: acct}
	c.wq = eventq.New(2*cfg.IQSize + 16)
	c.fus.SetWakeQueue(c.wq)
	hier.SetWakeQueue(c.wq)
	c.fe = frontend.New(
		frontend.Config{Width: cfg.Width, Depth: cfg.FrontDepth, BufCap: 2 * cfg.Width},
		tr.Reader(), bpred.NewPredictor(), hier, acct)
	c.fe.SetWakeQueue(c.wq)
	return c
}

// Now returns the current cycle.
func (c *Core) Now() int64 { return c.now }

// Committed returns committed op count.
func (c *Core) Committed() uint64 { return c.committed }

// Done reports pipeline drain.
func (c *Core) Done() bool { return c.fe.Done() && len(c.iq) == 0 }

// SpecFraction returns the fraction of instructions issued by the sliding
// window itself.
func (c *Core) SpecFraction() float64 {
	total := c.SpecIssued + c.HeadIssued
	if total == 0 {
		return 0
	}
	return float64(c.SpecIssued) / float64(total)
}

// OoOFraction returns the fraction of instructions issued out of program
// order — issued while at least one older instruction was still waiting —
// the paper's §II-C "62%" definition (it counts head-engine issues that
// slipped past stalled window-skipped instructions too).
func (c *Core) OoOFraction() float64 {
	total := c.SpecIssued + c.HeadIssued
	if total == 0 {
		return 0
	}
	return float64(c.OoOIssued) / float64(total)
}

// olderWaiting reports whether any instruction older than index idx is
// still unissued.
func (c *Core) olderWaiting(idx int) bool {
	for i := 0; i < idx; i++ {
		if !c.iq[i].issued {
			return true
		}
	}
	return false
}

// Cycle advances one clock.
func (c *Core) Cycle() {
	now := c.now
	committed0 := c.committed
	c.wq.Drain(now)
	c.commit(now)
	c.issue(now)
	c.dispatch()
	c.fe.Cycle(now)
	c.tickCPI(now, committed0)
	c.now++
	c.acct.Cycles++
}

// commit drains completed instructions in order from the IQ head.
func (c *Core) commit(now int64) {
	n := 0
	for len(c.iq) > 0 && n < c.cfg.Width {
		e := c.iq[0]
		if !e.issued || e.done > now {
			break
		}
		if e.op.Class == isa.Store {
			// Perfect store buffering: retire directly (timing charged at
			// issue; the limit study has no SB stalls).
			c.hier.Store(e.op.PC, e.op.Addr, now)
			c.acct.L1Access++
		}
		if c.OnCommit != nil {
			c.OnCommit(e.op.Seq)
		}
		c.emit(now, e.op.Seq, ptrace.KindCommit)
		c.iq = c.iq[1:]
		if c.winPos > 0 {
			c.winPos--
		}
		c.committed++
		n++
		c.pruneStores(e)
	}
}

func (c *Core) pruneStores(e *entry) {
	if e.op.Class != isa.Store {
		return
	}
	for i, s := range c.lastStores {
		if s == e {
			c.lastStores = append(c.lastStores[:i], c.lastStores[i+1:]...)
			return
		}
	}
}

func (c *Core) issue(now int64) {
	slots := c.cfg.Width
	// In-order issue at the IQ head (the conventional InO engine).
	idx := 0
	for slots > 0 && idx < len(c.iq) {
		e := c.iq[idx]
		if e.issued {
			idx++
			continue
		}
		if !c.ready(e, now) || !c.fus.Issue(e.op.Class, now) {
			break
		}
		if c.olderWaiting(idx) {
			c.OoOIssued++
		}
		c.execute(e, now)
		if c.pt != nil {
			c.emit(now, e.op.Seq, ptrace.KindIssue)
			c.emit(e.done, e.op.Seq, ptrace.KindComplete)
		}
		c.HeadIssued++
		slots--
		idx++
	}
	// The SpecInO window examines WS entries at winPos.
	if c.winPos < idx+1 {
		c.winPos = idx + 1 // window runs ahead of the stalled head region
	}
	issuedFromWindow := false
	for w := 0; w < c.cfg.WS && slots > 0; w++ {
		p := c.winPos + w
		if p >= len(c.iq) {
			break
		}
		e := c.iq[p]
		if e.issued {
			continue
		}
		if c.cfg.NonMemOnly && e.op.Class.IsMem() {
			continue
		}
		if !c.ready(e, now) || !c.fus.Issue(e.op.Class, now) {
			continue
		}
		if c.olderWaiting(p) {
			c.OoOIssued++
		}
		c.execute(e, now)
		if c.pt != nil {
			c.emit(now, e.op.Seq, ptrace.KindIssueSpec)
			c.emit(e.done, e.op.Seq, ptrace.KindComplete)
		}
		c.SpecIssued++
		issuedFromWindow = true
		slots--
	}
	if !issuedFromWindow {
		// Nothing ready in the window: slide towards younger instructions.
		// The window never moves backwards — instructions it has passed
		// can only issue when they reach the IQ head, which is exactly why
		// large sliding offsets hurt (§II-C).
		c.winPos += c.cfg.SO
		if c.winPos > len(c.iq) {
			c.winPos = len(c.iq)
		}
	}
}

// ready uses exact dataflow (perfect renaming): an instruction is ready
// when its producers completed; a load additionally waits for a
// conflicting older store (perfect, violation-free disambiguation).
func (c *Core) ready(e *entry, now int64) bool {
	for _, p := range [...]*entry{e.prod1, e.prod2} {
		if p != nil && (!p.issued || p.done > now) {
			return false
		}
	}
	if e.stFwd != nil && (!e.stFwd.issued || e.stFwd.done > now) {
		return false
	}
	return true
}

func (c *Core) execute(e *entry, now int64) {
	op := e.op
	e.issued = true
	switch op.Class {
	case isa.Load:
		agu := now + int64(op.Class.ExecLatency())
		if e.stFwd != nil {
			e.done = agu + int64(c.hier.Config().L1Latency) // forwarded
		} else {
			done, _ := c.hier.Load(op.PC, op.Addr, agu)
			c.acct.L1Access++
			e.done = done
		}
	case isa.Branch:
		e.done = now + int64(op.Class.ExecLatency())
		c.fe.BranchResolved(op.Seq, e.done)
	default:
		e.done = now + int64(op.Class.ExecLatency())
	}
	// A completion next cycle needs no wakeup: this issue already makes the
	// current cycle non-idle, so no jump can start before the effect lands.
	if e.done > now+1 {
		c.wq.Wake(e.done)
	}
}

func (c *Core) dispatch() {
	for k := 0; k < c.cfg.Width && len(c.iq) < c.cfg.IQSize; k++ {
		op := c.fe.Pop()
		if op == nil {
			return
		}
		e := &entry{op: op}
		if op.Src1.Valid() {
			e.prod1 = c.lastWriter[op.Src1]
		}
		if op.Src2.Valid() {
			e.prod2 = c.lastWriter[op.Src2]
		}
		if op.Class == isa.Load {
			// Oracle disambiguation: find the youngest overlapping older
			// in-flight store (must forward from it when it completes).
			for i := len(c.lastStores) - 1; i >= 0; i-- {
				if c.lastStores[i].op.Overlaps(op) {
					e.stFwd = c.lastStores[i]
					break
				}
			}
		}
		if op.HasDst() {
			c.lastWriter[op.Dst] = e
		}
		if op.Class == isa.Store {
			c.lastStores = append(c.lastStores, e)
		}
		c.iq = append(c.iq, e)
		c.emit(c.now, op.Seq, ptrace.KindDispatch)
	}
}

// SetPipeTrace installs (or removes, with nil) a pipeline-event recorder.
// The front end shares the recorder so fetch events join the same stream.
func (c *Core) SetPipeTrace(rec *ptrace.Recorder) {
	c.pt = rec
	c.fe.SetPipeTrace(rec)
}

// CPIStack exposes the per-cycle stall attribution accumulated so far.
func (c *Core) CPIStack() *ptrace.CPI { return &c.cpi }

func (c *Core) emit(cycle int64, seq uint64, k ptrace.Kind) {
	if c.pt != nil {
		c.pt.Emit(ptrace.Event{Cycle: cycle, Seq: seq, Kind: k})
	}
}

// tickCPI attributes the cycle that just executed to exactly one CPI bucket
// and, when a recorder is active, publishes non-base cycles as stall events
// tagged with the culprit instruction.
func (c *Core) tickCPI(now int64, committed0 uint64) {
	b, seq := c.classifyCycle(now, committed0)
	c.cpi.Add(b)
	if c.pt != nil && b != ptrace.BucketBase {
		c.pt.Emit(ptrace.Event{Cycle: now, Seq: seq, Kind: ptrace.KindStall, Stall: b})
	}
}

// classifyCycle decides the cycle's CPI bucket: base if anything committed,
// otherwise the reason the IQ head (the commit bottleneck) has not retired.
// The limit study has perfect renaming and store buffering, so the only
// possible blockers are execution latency, dataflow, and the front end.
func (c *Core) classifyCycle(now int64, committed0 uint64) (ptrace.Bucket, uint64) {
	if c.committed > committed0 {
		return ptrace.BucketBase, 0
	}
	if len(c.iq) > 0 {
		e := c.iq[0]
		if e.issued {
			// done > now always holds here: a completed head with a free
			// commit slot (nothing committed) would have retired this cycle.
			if e.op.Class.IsMem() {
				return ptrace.BucketDCache, e.op.Seq
			}
			return ptrace.BucketExec, e.op.Seq
		}
		if r, ok := c.readyAt(e); !ok || r > now {
			if p := e.stFwd; p != nil && (!p.issued || p.done > now) {
				// Oracle disambiguation holds the load for an older store.
				return ptrace.BucketDCache, e.op.Seq
			}
			return ptrace.BucketSrc, e.op.Seq
		}
		return ptrace.BucketFU, e.op.Seq
	}
	if !c.fe.Done() {
		return ptrace.BucketICache, 0
	}
	return ptrace.BucketDrain, 0
}
