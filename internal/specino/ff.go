package specino

import (
	"math/bits"

	"casino/internal/eventq"
)

// noEvent mirrors lsu.NoEvent: no progress through the passage of time.
const noEvent = int64(1) << 62

// NextWake returns the earliest cycle >= now at which the core might make
// progress, driving the event-driven clock. SpecInO is the one model the
// shared wakeup queue cannot cover alone: its scheduling window slides by SO
// positions every cycle in which it issues nothing, creating issue
// opportunities at times stored nowhere. NextWake therefore combines the
// queue with slideEvent's closed-form window-arrival bound.
func (c *Core) NextWake() int64 {
	now := c.now
	if c.fe.BufLen() > 0 && c.n < c.cfg.IQSize {
		return now
	}
	if c.fe.NextFetchEvent(now) <= now {
		return now
	}
	next := c.wq.Horizon(now)
	if t := c.slideEvent(now); t < next {
		next = t
	}
	return next
}

// WakeStats exposes the shared wakeup queue's activity counters.
func (c *Core) WakeStats() eventq.Stats { return c.wq.Stats() }

// ProgressSignature folds the fast-forward progress signature into one
// value for the sim package's property tests.
func (c *Core) ProgressSignature() uint64 {
	// FNV-1a chained by hand: this runs on every commit-free cycle, so it
	// must not materialize an array (stack copies) per call.
	const p = 1099511628211
	s := c.ffSig()
	h := uint64(1469598103934665603)
	h = (h ^ s.committed) * p
	h = (h ^ s.fetched) * p
	h = (h ^ s.issued) * p
	h = (h ^ s.l1) * p
	h = (h ^ uint64(s.iq)) * p
	h = (h ^ uint64(s.buf)) * p
	return h
}

// slideEvent returns the earliest cycle >= now at which the sliding window
// could enable an issue, assuming every cycle from now on is idle (each one
// advancing the window start by SO). Position j is examined at cycle now+k
// when effW+k*SO <= j <= effW+k*SO+WS-1, with effW = max(winPos, i0+1)
// mirroring issue()'s head bump. For each candidate entry the arrival k is
// the later of the window reaching j (kMin) and its operands completing
// (kReady); if the window slides past j first (k > kMax) the entry can only
// issue from the in-order head engine later, which queue events cover.
func (c *Core) slideEvent(now int64) int64 {
	next := noEvent
	add := func(t int64) {
		if t > now && t < next {
			next = t
		}
	}
	if c.unissued == 0 {
		return noEvent
	}
	i0 := bits.TrailingZeros64(c.unissued)
	effW := c.winPos
	if effW < i0+1 {
		effW = i0 + 1
	}
	ws, so := c.cfg.WS, c.cfg.SO
	for j := effW; j < c.n; j++ {
		if c.unissued&(uint64(1)<<uint(j)) == 0 ||
			(c.cfg.NonMemOnly && c.ops[j].Class.IsMem()) {
			continue
		}
		r, ok := c.readyInfo(j)
		if !ok {
			continue // blocked on an unissued producer
		}
		var kMin int64
		if d := j - (effW + ws - 1); d > 0 {
			kMin = (int64(d) + int64(so) - 1) / int64(so)
		}
		kMax := int64(j-effW) / int64(so)
		kReady := int64(0)
		if r > now {
			kReady = r - now
		}
		k := kMin
		if kReady > k {
			k = kReady
		}
		if k > kMax {
			continue // window slides past j before it becomes ready
		}
		if k == 0 {
			if c.fus.CanIssue(c.ops[j].Class, now) {
				return now
			}
			add(c.fus.NextFree(c.ops[j].Class, now))
			continue
		}
		add(now + k)
	}
	return next
}

// NextEvent returns the earliest cycle >= now at which Cycle() could change
// observable state. It is retained as the exhaustive oracle for the sim
// package's property tests; the event-driven driver uses NextWake instead.
// SpecInO needs the most careful probe of the five models: its scheduling
// window *slides* by SO positions every cycle in which it issues nothing, so
// during a stretch of idle cycles the set of examined IQ positions moves
// deterministically (see slideEvent). The slide itself carries no
// accounting, so it is not an event — FastForward replays it in closed form
// instead.
func (c *Core) NextEvent() int64 {
	now := c.now
	next := noEvent
	add := func(t int64) {
		if t > now && t < next {
			next = t
		}
	}

	// Commit from the IQ head.
	if c.n > 0 && c.unissued&1 == 0 {
		if c.done[0] <= now {
			return now
		}
		add(c.done[0])
	}

	// In-order head engine: the first unissued entry.
	if c.unissued != 0 {
		i0 := bits.TrailingZeros64(c.unissued)
		if r, ok := c.readyInfo(i0); ok {
			if r > now {
				add(r)
			} else if c.fus.CanIssue(c.ops[i0].Class, now) {
				return now
			} else {
				add(c.fus.NextFree(c.ops[i0].Class, now))
			}
		}
		// Blocked on an unissued producer: that issue is the prior event.
	}

	// Sliding window arrivals.
	if t := c.slideEvent(now); t <= now {
		return now
	} else {
		add(t)
	}

	// Dispatch and fetch.
	if c.fe.BufLen() > 0 && c.n < c.cfg.IQSize {
		return now
	}
	if t := c.fe.NextFetchEvent(now); t <= now {
		return now
	} else {
		add(t)
	}
	return next
}

// ffSig is the cheap progress signature guarding FastForward. winPos is
// deliberately absent: the window slide is the one benign mutation an idle
// cycle performs, and FastForward accounts for it in closed form.
type ffSig struct {
	committed, fetched, issued, l1 uint64
	iq, buf                        int
}

func (c *Core) ffSig() ffSig {
	return ffSig{
		committed: c.committed,
		fetched:   c.fe.Fetched,
		issued:    c.fus.IssuedTotal(),
		l1:        c.acct.L1Access,
		iq:        c.n,
		buf:       c.fe.BufLen(),
	}
}

// FastForward runs one real Cycle() and, if that cycle turned out idle,
// jumps the clock toward `to`: the embedded cycle supplies the exact
// idle-cycle accounting and performs one window slide; the n skipped cycles
// each slide the window by a further SO, which the closed form below
// replays, capped at the IQ length exactly as issue() caps it. Returns
// false when the embedded cycle changed observable state — it stands as a
// normal cycle and nothing was skipped. The jump target is re-clamped by
// the queue's post-cycle horizon *and* by slideEvent, because the sliding
// window manufactures issue opportunities the queue never saw.
func (c *Core) FastForward(to int64) bool {
	sig := c.ffSig()
	c.acct.BeginDelta()
	cpi0 := c.cpi
	c.Cycle()
	if c.ffSig() != sig {
		return false
	}
	if h := c.wq.Horizon(c.now); h < to {
		to = h
	}
	if t := c.slideEvent(c.now); t < to {
		to = t
	}
	n := to - c.now
	if n <= 0 {
		return true
	}
	c.acct.ScaleDelta(uint64(n))
	c.cpi.ScaleDelta(&cpi0, uint64(n))
	if w := c.winPos + c.cfg.SO*int(min64(n, int64(c.n))); true {
		// Guard the multiply against pathological n; the cap below makes any
		// overshoot equivalent.
		if w > c.n || w < c.winPos {
			w = c.n
		}
		c.winPos = w
	}
	c.now += n
	return true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
