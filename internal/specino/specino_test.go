package specino

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/ino"
	"casino/internal/mem"
	"casino/internal/workload"
)

func runModel(t *testing.T, cfg Config, name string, n int) float64 {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(p, n, 1)
	c := New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 50_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	if !c.Done() {
		t.Fatalf("specino livelocked on %s", name)
	}
	if c.Committed() != uint64(tr.Len()) {
		t.Fatalf("committed %d of %d", c.Committed(), tr.Len())
	}
	return float64(c.Committed()) / float64(c.Now())
}

func inoIPC(t *testing.T, name string, n int) float64 {
	t.Helper()
	p, _ := workload.ByName(name)
	tr := workload.Generate(p, n, 1)
	c := ino.New(ino.DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for i := 0; i < 50_000_000 && !c.Done(); i++ {
		c.Cycle()
	}
	return float64(c.Committed()) / float64(c.Now())
}

func TestSpecInOBeatsInO(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	for _, name := range []string{"libquantum", "milc"} {
		spec := runModel(t, DefaultConfig(2, 1), name, 20000)
		base := inoIPC(t, name, 20000)
		if spec <= base {
			t.Errorf("%s: SpecInO[2,1] IPC %.3f <= InO %.3f", name, spec, base)
		}
	}
}

func TestAllTypesBeatsNonMem(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	// §II-C: allowing speculative memory issue adds MLP on memory-bound
	// workloads.
	cfgNM := DefaultConfig(2, 1)
	cfgNM.NonMemOnly = true
	all := runModel(t, DefaultConfig(2, 1), "libquantum", 20000)
	nonmem := runModel(t, cfgNM, "libquantum", 20000)
	if all < nonmem {
		t.Errorf("All-types IPC %.3f < Non-mem %.3f", all, nonmem)
	}
}

func TestSO1BeatsSO2(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	// §II-C's first observation: [2,1] >= [2,2] (sliding too fast loses
	// issue opportunities).
	var s1, s2 float64
	for _, name := range []string{"libquantum", "sphinx3", "gobmk"} {
		s1 += runModel(t, DefaultConfig(2, 1), name, 20000)
		s2 += runModel(t, DefaultConfig(2, 2), name, 20000)
	}
	if s1 < s2*0.98 {
		t.Errorf("SpecInO[2,1] total %.3f materially below [2,2] %.3f", s1, s2)
	}
}

func TestSpecFractionPlausible(t *testing.T) {
	p, _ := workload.ByName("libquantum")
	tr := workload.Generate(p, 20000, 1)
	c := New(DefaultConfig(2, 1), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
	for !c.Done() {
		c.Cycle()
	}
	f := c.SpecFraction()
	if f <= 0.05 || f >= 0.98 {
		t.Errorf("speculative issue fraction %.2f implausible", f)
	}
}

func TestConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad WS/SO accepted")
		}
	}()
	New(Config{Width: 2, IQSize: 16, WS: 0, SO: 1, FrontDepth: 5}, nil, nil, nil)
}
