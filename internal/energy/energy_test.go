package energy

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStructureEnergyScaling(t *testing.T) {
	small := Structure{Name: "iq16", Entries: 16, Bits: 64, Ports: 2, CAM: true, TagBits: 16}
	big := Structure{Name: "iq64", Entries: 64, Bits: 64, Ports: 2, CAM: true, TagBits: 16}
	if small.AccessEnergy(Search) >= big.AccessEnergy(Search) {
		t.Error("CAM search energy must grow with entries")
	}
	if small.AccessEnergy(Read) >= big.AccessEnergy(Read) {
		t.Error("RAM read energy must grow with entries")
	}
	ram := Structure{Name: "ram", Entries: 16, Bits: 64, Ports: 2}
	if ram.AccessEnergy(Search) != 0 {
		t.Error("non-CAM structure must have zero search energy")
	}
	fewPorts := Structure{Name: "p2", Entries: 32, Bits: 64, Ports: 2}
	manyPorts := Structure{Name: "p8", Entries: 32, Bits: 64, Ports: 8}
	if fewPorts.AccessEnergy(Read) >= manyPorts.AccessEnergy(Read) {
		t.Error("access energy must grow with ports")
	}
	if fewPorts.Area() >= manyPorts.Area() {
		t.Error("area must grow with ports")
	}
}

func TestCAMCostsMoreThanRAM(t *testing.T) {
	cam := Structure{Name: "cam", Entries: 16, Bits: 64, Ports: 2, CAM: true, TagBits: 48}
	ram := Structure{Name: "ram", Entries: 16, Bits: 64, Ports: 2}
	if cam.Area() <= ram.Area() {
		t.Error("CAM area must exceed same-geometry RAM")
	}
	if cam.AccessEnergy(Search) <= ram.AccessEnergy(Read) {
		t.Error("CAM search must cost more than a RAM read at this size")
	}
}

func TestAccountantCounts(t *testing.T) {
	a := NewAccountant()
	h := a.Register(Structure{Name: "rat", Entries: 32, Bits: 8, Ports: 6})
	a.Inc(h, Read, 10)
	a.Inc(h, Write, 4)
	if a.Count(h, Read) != 10 || a.Count(h, Write) != 4 {
		t.Error("counts wrong")
	}
	if a.CountByName("rat", Read) != 10 {
		t.Error("CountByName wrong")
	}
	if a.CountByName("nope", Read) != 0 {
		t.Error("missing structure should count 0")
	}
	if got := a.Structures(); len(got) != 1 || got[0] != "rat" {
		t.Errorf("Structures = %v", got)
	}
}

func TestAccountantDuplicatePanics(t *testing.T) {
	a := NewAccountant()
	a.Register(Structure{Name: "x"})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register accepted")
		}
	}()
	a.Register(Structure{Name: "x"})
}

func TestEnergyComposition(t *testing.T) {
	a := NewAccountant()
	h := a.Register(Structure{Name: "prf", Entries: 32, Bits: 64, Ports: 4})
	a.Inc(h, Read, 1000)
	a.IntOps = 500
	a.FPOps = 100
	a.Frontend = 1000
	a.L1Access = 300
	a.Cycles = 10000
	dyn := a.DynamicEnergy()
	if dyn <= 0 {
		t.Fatal("dynamic energy not positive")
	}
	st := a.StaticEnergy()
	if st <= 0 {
		t.Fatal("static energy not positive")
	}
	if tot := a.TotalEnergy(); tot != dyn+st {
		t.Errorf("TotalEnergy = %v, want %v", tot, dyn+st)
	}
	// FP ops cost more than int ops.
	b := NewAccountant()
	b.IntOps = 100
	c := NewAccountant()
	c.FPOps = 100
	if b.DynamicEnergy() >= c.DynamicEnergy() {
		t.Error("FP ops should cost more than int ops")
	}
}

func TestEnergyBreakdownSumsToTotal(t *testing.T) {
	a := NewAccountant()
	h := a.Register(Structure{Name: "sq", Entries: 8, Bits: 100, Ports: 2, CAM: true, TagBits: 40})
	a.Inc(h, Search, 200)
	a.Inc(h, Write, 50)
	a.IntOps = 77
	a.Cycles = 500
	bd := a.EnergyBreakdown()
	var sum float64
	for _, v := range bd {
		sum += v
	}
	if diff := sum - a.TotalEnergy(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("breakdown sum %v != total %v", sum, a.TotalEnergy())
	}
	lines := SortedBreakdown(bd)
	joined := strings.Join(lines, " ")
	if !strings.Contains(joined, "sq=") || !strings.Contains(joined, "Leakage=") {
		t.Errorf("SortedBreakdown missing keys: %v", lines)
	}
}

func TestAreaIncludesFixedBlocks(t *testing.T) {
	empty := NewAccountant()
	base := empty.Area()
	if base <= 0 {
		t.Fatal("fixed-block area must be positive")
	}
	a := NewAccountant()
	a.Register(Structure{Name: "rob", Entries: 32, Bits: 96, Ports: 4})
	if a.Area() <= base {
		t.Error("registered structure did not add area")
	}
	bd := a.AreaBreakdown()
	if bd["FUs"] <= 0 || bd["rob"] <= 0 {
		t.Errorf("area breakdown: %v", bd)
	}
}

func TestMoreEventsMoreEnergyProperty(t *testing.T) {
	f := func(n1, n2 uint16) bool {
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		mk := func(n uint16) float64 {
			a := NewAccountant()
			h := a.Register(Structure{Name: "s", Entries: 16, Bits: 64, Ports: 2, CAM: true, TagBits: 16})
			a.Inc(h, Search, uint64(n))
			return a.DynamicEnergy()
		}
		return mk(n1) <= mk(n2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
