package energy

import (
	"sort"

	"casino/internal/stats"
)

// kindSuffix maps event kinds to metric-name suffixes.
func kindSuffix(k EventKind) string {
	switch k {
	case Read:
		return "reads"
	case Write:
		return "writes"
	default:
		return "searches"
	}
}

// PublishMetrics snapshots the accountant's per-structure access counts
// and shared activity into the registry under the "acct." prefix, plus
// the evaluated per-block dynamic energy under "energy_pj." and areas
// under "area_mm2.". Counts cover the whole run (warm-up included); the
// harness's measurement-window energy deltas live on the Result instead.
func (a *Accountant) PublishMetrics(r *stats.Registry) {
	for i, s := range a.structs {
		base := "acct." + s.Name + "."
		for k := EventKind(0); k < numKinds; k++ {
			if k == Search && !s.CAM {
				continue
			}
			r.Counter(base+kindSuffix(k), a.Count(i, k))
		}
	}
	r.Counter("acct.intOps", a.IntOps)
	r.Counter("acct.fpOps", a.FPOps)
	r.Counter("acct.aguOps", a.AGUOps)
	r.Counter("acct.frontend", a.Frontend)
	r.Counter("acct.bpredOps", a.BpredOps)
	r.Counter("acct.l1Access", a.L1Access)
	r.Counter("acct.cycles", a.Cycles)
	publishSorted(r, "energy_pj.", a.EnergyBreakdown())
	publishSorted(r, "area_mm2.", a.AreaBreakdown())
	r.Gauge("area_mm2.total", a.Area())
}

// publishSorted registers a breakdown map's entries in sorted-name order
// so the registry's registration order stays run-to-run deterministic.
func publishSorted(r *stats.Registry, prefix string, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.Gauge(prefix+k, m[k])
	}
}
