// Package energy provides the McPAT/CACTI stand-in: an event-based energy
// and area model at a 22nm-flavoured technology point. Cores register the
// SRAM/CAM structures they are built from, count Read/Write/Search events
// during simulation, and the model turns counts into dynamic energy,
// leakage (via area) into static energy.
//
// Following the paper, totals cover core components plus the L1 caches and
// exclude the L2, DRAM and interconnect. Constants are calibrated for
// *relative* comparisons between core models — the quantity the paper's
// Figures 8, 9 and 11 report — not for absolute watts.
package energy

import (
	"fmt"
	"math"
	"sort"
)

// EventKind classifies an access to a structure.
type EventKind uint8

// Access kinds.
const (
	Read EventKind = iota
	Write
	Search // associative (CAM) match across all entries
	numKinds
)

// Structure describes one SRAM/CAM block of a core.
type Structure struct {
	Name    string
	Entries int
	Bits    int  // payload bits per entry
	Ports   int  // total read+write ports
	CAM     bool // carries match lines for Search events
	TagBits int  // searched bits per entry (CAM only)
}

// --- technology constants (22nm-flavoured) ---
//
// Structure areas are *effective* areas: they fold the decoders, match
// lines, priority encoders and select logic that McPAT attributes to a
// block into per-bit coefficients, which is why the CAM coefficient is far
// larger than a raw SRAM cell. The constants are set so that relative
// core-vs-core comparisons land in the regime the paper reports.
const (
	// SRAM / CAM geometry.
	sramBitArea = 4.0e-6 // mm^2 per bit (effective, incl. decoders/ports)
	camBitArea  = 6.0e-4 // mm^2 per searched tag bit (effective, incl. match+select)
	portAreaFac = 0.35   // extra area per port beyond the first

	// Dynamic energy (pJ).
	ramBasePJ  = 0.50 // wordline/decoder overhead per access
	ramBitPJ   = 0.030
	camBasePJ  = 0.80
	camBitPJ   = 0.170 // per entry*tag-bit per search
	fuIntPJ    = 3.0
	fuFPPJ     = 8.0
	fuAGUPJ    = 2.0
	frontendPJ = 4.5  // fetch+decode per instruction
	bpredPJ    = 6.0  // TAGE + BTB lookup/update per branch
	l1AccessPJ = 15.0 // per L1I/L1D access

	// Leakage: static power density over structure+logic area, expressed
	// as pJ per cycle per mm^2 at the 2 GHz clock of Table I.
	leakPJPerCycleMM2 = 3.5

	// Fixed (non-SRAM) logic blocks, mm^2.
	areaFUs      = 0.90 // 2 ALUs + 2 FPUs + 2 AGUs + bypass
	areaFrontend = 0.55 // fetch, decode, branch unit logic
	areaBpredMM2 = 0.30 // 32 KiB TAGE + BTB
	areaL1MM2    = 0.50 // per 32 KiB L1 (I and D each)
	areaCtlBase  = 0.25 // miscellaneous control
)

// AccessEnergy returns the dynamic energy in pJ of one event of kind k on s.
func (s Structure) AccessEnergy(k EventKind) float64 {
	switch k {
	case Search:
		if !s.CAM {
			return 0
		}
		tag := s.TagBits
		if tag == 0 {
			tag = 16
		}
		return camBasePJ + camBitPJ*float64(s.Entries*tag)
	default:
		// Read/write energy grows with row width and weakly with depth.
		depthFac := math.Sqrt(float64(maxInt(s.Entries, 1)))
		portFac := 1 + portAreaFac*float64(maxInt(s.Ports-1, 0))*0.5
		return (ramBasePJ + ramBitPJ*float64(s.Bits)*depthFac/4) * portFac
	}
}

// Area returns the area of s in mm^2.
func (s Structure) Area() float64 {
	bits := float64(s.Entries * s.Bits)
	a := bits * sramBitArea
	if s.CAM {
		tag := s.TagBits
		if tag == 0 {
			tag = 16
		}
		a += float64(s.Entries*tag) * camBitArea
	}
	a *= 1 + portAreaFac*float64(maxInt(s.Ports-1, 0))
	return a
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Accountant accumulates per-structure event counts plus the shared
// (non-structure) activity of a core, and evaluates the energy/area model.
type Accountant struct {
	structs []Structure
	index   map[string]int
	// counts is a dense flat array indexed handle*numKinds+kind. Inc is
	// the hottest accounting call in the simulator (several per core per
	// cycle), so it must be a single add at a computed offset — no map
	// lookups, no per-structure sub-slices.
	counts []uint64

	IntOps   uint64 // integer FU operations
	FPOps    uint64
	AGUOps   uint64
	Frontend uint64 // instructions fetched+decoded
	BpredOps uint64 // branches predicted
	L1Access uint64 // L1I + L1D accesses
	Cycles   uint64

	// FrontendScale multiplies the per-instruction fetch/decode energy;
	// deeper pipelines (the 9-stage CASINO/OoO vs the 7-stage InO) pay
	// more latch/control energy per instruction. Zero means 1.0.
	FrontendScale float64

	// snap holds the BeginDelta snapshot used by ScaleDelta. The counts
	// buffer is reused across calls so fast-forwarding stays allocation-free.
	snap deltaSnap
}

// deltaSnap is a point-in-time copy of every accumulated count.
type deltaSnap struct {
	counts                                                []uint64
	intOps, fpOps, aguOps, frontend, bpredOps, l1, cycles uint64
}

// NewAccountant creates an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{index: map[string]int{}}
}

// Register adds a structure and returns its handle for Inc. Registering a
// duplicate name panics: each block must be declared once.
func (a *Accountant) Register(s Structure) int {
	if _, dup := a.index[s.Name]; dup {
		panic(fmt.Sprintf("energy: duplicate structure %q", s.Name))
	}
	a.index[s.Name] = len(a.structs)
	a.structs = append(a.structs, s)
	a.counts = append(a.counts, make([]uint64, numKinds)...)
	return len(a.structs) - 1
}

// Rewind clears every registration and count while keeping the underlying
// capacity, so one accountant can serve the per-window model rebuilds of a
// sampled run without reallocating its tables each window. A rewound
// accountant is indistinguishable from a fresh one.
func (a *Accountant) Rewind() {
	a.structs = a.structs[:0]
	clear(a.index)
	a.counts = a.counts[:0]
	a.IntOps, a.FPOps, a.AGUOps = 0, 0, 0
	a.Frontend, a.BpredOps, a.L1Access, a.Cycles = 0, 0, 0, 0
	a.FrontendScale = 0
	a.snap = deltaSnap{counts: a.snap.counts[:0]}
}

// Inc counts n events of kind k on structure handle h.
func (a *Accountant) Inc(h int, k EventKind, n uint64) {
	a.counts[h*int(numKinds)+int(k)] += n
}

// Count returns the accumulated count for structure h and kind k.
func (a *Accountant) Count(h int, k EventKind) uint64 {
	return a.counts[h*int(numKinds)+int(k)]
}

// CountByName returns counts for a named structure (0s if absent).
func (a *Accountant) CountByName(name string, k EventKind) uint64 {
	if h, ok := a.index[name]; ok {
		return a.Count(h, k)
	}
	return 0
}

// BeginDelta snapshots every accumulated count so a later ScaleDelta can
// replicate whatever activity happens in between. Used by the fast-forward
// engine: the core runs ONE real idle cycle between BeginDelta and
// ScaleDelta(n), and the accountant then bills the identical charge pattern
// for the n cycles being skipped. Snapshots do not nest.
func (a *Accountant) BeginDelta() {
	a.snap.counts = append(a.snap.counts[:0], a.counts...)
	a.snap.intOps = a.IntOps
	a.snap.fpOps = a.FPOps
	a.snap.aguOps = a.AGUOps
	a.snap.frontend = a.Frontend
	a.snap.bpredOps = a.BpredOps
	a.snap.l1 = a.L1Access
	a.snap.cycles = a.Cycles
}

// ScaleDelta adds m extra copies of everything accumulated since the last
// BeginDelta (including Cycles). With m==0 it is a no-op.
func (a *Accountant) ScaleDelta(m uint64) {
	if m == 0 {
		return
	}
	if len(a.snap.counts) != len(a.counts) {
		panic("energy: ScaleDelta after structures were registered mid-delta")
	}
	for i := range a.counts {
		a.counts[i] += (a.counts[i] - a.snap.counts[i]) * m
	}
	a.IntOps += (a.IntOps - a.snap.intOps) * m
	a.FPOps += (a.FPOps - a.snap.fpOps) * m
	a.AGUOps += (a.AGUOps - a.snap.aguOps) * m
	a.Frontend += (a.Frontend - a.snap.frontend) * m
	a.BpredOps += (a.BpredOps - a.snap.bpredOps) * m
	a.L1Access += (a.L1Access - a.snap.l1) * m
	a.Cycles += (a.Cycles - a.snap.cycles) * m
}

// StructArea returns the summed area of registered structures plus the
// fixed logic blocks, in mm^2.
func (a *Accountant) Area() float64 {
	total := areaFUs + areaFrontend + areaBpredMM2 + 2*areaL1MM2 + areaCtlBase
	for _, s := range a.structs {
		total += s.Area()
	}
	return total
}

// AreaBreakdown returns per-block areas (fixed blocks + structures).
func (a *Accountant) AreaBreakdown() map[string]float64 {
	out := map[string]float64{
		"FUs":      areaFUs,
		"Frontend": areaFrontend,
		"Bpred":    areaBpredMM2,
		"L1":       2 * areaL1MM2,
		"Control":  areaCtlBase,
	}
	for _, s := range a.structs {
		out[s.Name] = s.Area()
	}
	return out
}

// DynamicEnergy returns accumulated dynamic energy in pJ.
func (a *Accountant) DynamicEnergy() float64 {
	var e float64
	for i, s := range a.structs {
		for k := EventKind(0); k < numKinds; k++ {
			if c := a.Count(i, k); c != 0 {
				e += float64(c) * s.AccessEnergy(k)
			}
		}
	}
	e += float64(a.IntOps) * fuIntPJ
	e += float64(a.FPOps) * fuFPPJ
	e += float64(a.AGUOps) * fuAGUPJ
	fs := a.FrontendScale
	if fs == 0 {
		fs = 1
	}
	e += float64(a.Frontend) * frontendPJ * fs
	e += float64(a.BpredOps) * bpredPJ
	e += float64(a.L1Access) * l1AccessPJ
	return e
}

// StaticEnergy returns leakage energy in pJ over the recorded Cycles.
func (a *Accountant) StaticEnergy() float64 {
	return a.StaticEnergyOver(a.Cycles)
}

// StaticEnergyOver returns leakage energy in pJ over an explicit cycle
// count (used by the harness to bill only the measurement window).
func (a *Accountant) StaticEnergyOver(cycles uint64) float64 {
	return float64(cycles) * leakPJPerCycleMM2 * a.Area()
}

// TotalEnergy returns dynamic + static energy in pJ.
func (a *Accountant) TotalEnergy() float64 { return a.DynamicEnergy() + a.StaticEnergy() }

// EnergyBreakdown returns dynamic energy per structure/block in pJ.
func (a *Accountant) EnergyBreakdown() map[string]float64 {
	out := map[string]float64{}
	for i, s := range a.structs {
		var e float64
		for k := EventKind(0); k < numKinds; k++ {
			e += float64(a.Count(i, k)) * s.AccessEnergy(k)
		}
		out[s.Name] = e
	}
	out["FUs"] = float64(a.IntOps)*fuIntPJ + float64(a.FPOps)*fuFPPJ + float64(a.AGUOps)*fuAGUPJ
	fs := a.FrontendScale
	if fs == 0 {
		fs = 1
	}
	out["Frontend"] = float64(a.Frontend) * frontendPJ * fs
	out["Bpred"] = float64(a.BpredOps) * bpredPJ
	out["L1"] = float64(a.L1Access) * l1AccessPJ
	out["Leakage"] = a.StaticEnergy()
	return out
}

// AccumulateEnergy adds this accountant's EnergyBreakdown into dst without
// allocating a fresh map (hot in sampled mode: one call per window).
func (a *Accountant) AccumulateEnergy(dst map[string]float64) {
	for i, s := range a.structs {
		var e float64
		for k := EventKind(0); k < numKinds; k++ {
			e += float64(a.Count(i, k)) * s.AccessEnergy(k)
		}
		dst[s.Name] += e
	}
	dst["FUs"] += float64(a.IntOps)*fuIntPJ + float64(a.FPOps)*fuFPPJ + float64(a.AGUOps)*fuAGUPJ
	fs := a.FrontendScale
	if fs == 0 {
		fs = 1
	}
	dst["Frontend"] += float64(a.Frontend) * frontendPJ * fs
	dst["Bpred"] += float64(a.BpredOps) * bpredPJ
	dst["L1"] += float64(a.L1Access) * l1AccessPJ
	dst["Leakage"] += a.StaticEnergy()
}

// Structures returns the registered structure names in registration order.
func (a *Accountant) Structures() []string {
	names := make([]string, len(a.structs))
	for i, s := range a.structs {
		names[i] = s.Name
	}
	return names
}

// SortedBreakdown formats a breakdown map deterministically.
func SortedBreakdown(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s=%.1f", k, m[k])
	}
	return out
}
