package bpred

import (
	"math/rand"
	"testing"
)

func TestTAGELearnsAlwaysTaken(t *testing.T) {
	p := NewTAGE()
	pc := uint64(0x1000)
	for i := 0; i < 100; i++ {
		p.Predict(pc)
		p.Update(pc, true)
	}
	mpBefore := p.Mispredicts
	for i := 0; i < 100; i++ {
		p.Predict(pc)
		p.Update(pc, true)
	}
	if p.Mispredicts != mpBefore {
		t.Errorf("mispredicted an always-taken branch after warm-up: %d new", p.Mispredicts-mpBefore)
	}
}

func TestTAGELearnsAlternating(t *testing.T) {
	p := NewTAGE()
	pc := uint64(0x2000)
	for i := 0; i < 500; i++ {
		p.Predict(pc)
		p.Update(pc, i%2 == 0)
	}
	mpBefore := p.Mispredicts
	for i := 500; i < 1000; i++ {
		p.Predict(pc)
		p.Update(pc, i%2 == 0)
	}
	rate := float64(p.Mispredicts-mpBefore) / 500
	if rate > 0.05 {
		t.Errorf("alternating pattern mispredict rate %.2f, want near 0 (history tables should capture it)", rate)
	}
}

func TestTAGELearnsLoopPattern(t *testing.T) {
	// Loop branch: taken 7 times then not taken, repeating. Requires
	// history to catch the exit.
	p := NewTAGE()
	pc := uint64(0x3000)
	outcome := func(i int) bool { return i%8 != 7 }
	for i := 0; i < 2000; i++ {
		p.Predict(pc)
		p.Update(pc, outcome(i))
	}
	mpBefore := p.Mispredicts
	for i := 2000; i < 4000; i++ {
		p.Predict(pc)
		p.Update(pc, outcome(i))
	}
	rate := float64(p.Mispredicts-mpBefore) / 2000
	if rate > 0.08 {
		t.Errorf("period-8 loop mispredict rate %.3f, want < 0.08", rate)
	}
}

func TestTAGERandomIsHard(t *testing.T) {
	p := NewTAGE()
	rng := rand.New(rand.NewSource(1))
	pc := uint64(0x4000)
	for i := 0; i < 20000; i++ {
		p.Predict(pc)
		p.Update(pc, rng.Float64() < 0.5)
	}
	if r := p.MispredictRate(); r < 0.35 {
		t.Errorf("random branch mispredict rate %.3f — implausibly clairvoyant", r)
	}
}

func TestTAGEBiasedBranch(t *testing.T) {
	p := NewTAGE()
	rng := rand.New(rand.NewSource(2))
	pc := uint64(0x5000)
	for i := 0; i < 20000; i++ {
		p.Predict(pc)
		p.Update(pc, rng.Float64() < 0.9) // 90% taken
	}
	if r := p.MispredictRate(); r > 0.2 {
		t.Errorf("90%%-biased branch mispredict rate %.3f, want <= ~0.12", r)
	}
}

func TestTAGEManyBranchesNoInterference(t *testing.T) {
	p := NewTAGE()
	// 64 always-taken branches at distinct PCs must all be learnable.
	for round := 0; round < 50; round++ {
		for b := 0; b < 64; b++ {
			pc := uint64(0x6000 + b*4)
			p.Predict(pc)
			p.Update(pc, true)
		}
	}
	mpBefore := p.Mispredicts
	for b := 0; b < 64; b++ {
		pc := uint64(0x6000 + b*4)
		p.Predict(pc)
		p.Update(pc, true)
	}
	if p.Mispredicts != mpBefore {
		t.Errorf("steady branches mispredicted: %d", p.Mispredicts-mpBefore)
	}
}

func TestTAGEReset(t *testing.T) {
	p := NewTAGE()
	p.Predict(0x100)
	p.Update(0x100, true)
	p.Reset()
	if p.Lookups != 0 || p.Mispredicts != 0 || p.ghr != 0 {
		t.Error("Reset incomplete")
	}
	if p.MispredictRate() != 0 {
		t.Error("rate after reset")
	}
}

func TestBTBStoreLookup(t *testing.T) {
	b := NewBTB()
	if _, ok := b.Lookup(0x100); ok {
		t.Error("cold BTB hit")
	}
	b.Update(0x100, 0x900)
	tgt, ok := b.Lookup(0x100)
	if !ok || tgt != 0x900 {
		t.Errorf("Lookup = %#x,%v", tgt, ok)
	}
	b.Update(0x100, 0xA00) // retarget
	tgt, _ = b.Lookup(0x100)
	if tgt != 0xA00 {
		t.Errorf("retarget failed: %#x", tgt)
	}
}

func TestBTBLRUWithinSet(t *testing.T) {
	b := newBTB(1, 2)
	b.Update(0x10, 1)
	b.Update(0x20, 2)
	b.Lookup(0x10) // refresh
	b.Update(0x30, 3)
	if _, ok := b.Lookup(0x10); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := b.Lookup(0x20); ok {
		t.Error("LRU entry kept")
	}
}

func TestPredictorOnBranch(t *testing.T) {
	p := NewPredictor()
	pc, tgt := uint64(0x100), uint64(0x800)
	// First taken encounter: direction unknown + no BTB entry → incorrect.
	if p.OnBranch(pc, true, tgt) {
		t.Error("cold taken branch predicted correctly (no BTB target)")
	}
	for i := 0; i < 20; i++ {
		p.OnBranch(pc, true, tgt)
	}
	if !p.OnBranch(pc, true, tgt) {
		t.Error("warm branch mispredicted")
	}
	// Target change forces a mispredict even with correct direction.
	if p.OnBranch(pc, true, 0xF00) {
		t.Error("target change not detected")
	}
	if p.MispredictRate() <= 0 {
		t.Error("rate should be positive")
	}
	p.Reset()
	if p.Branches != 0 {
		t.Error("reset incomplete")
	}
}

func TestPredictorNotTakenNeedsNoBTB(t *testing.T) {
	p := NewPredictor()
	pc := uint64(0x200)
	for i := 0; i < 20; i++ {
		p.OnBranch(pc, false, 0)
	}
	if !p.OnBranch(pc, false, 0) {
		t.Error("steady not-taken branch mispredicted without BTB entry")
	}
}

func BenchmarkTAGE(b *testing.B) {
	p := NewTAGE()
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%256)*4)
		p.Predict(pc)
		p.Update(pc, rng.Intn(4) != 0)
	}
}

// TestPredictUpdateEquivalence drives two fresh predictors with an
// identical branch stream — one through the split Predict/Update pair, one
// through the fused PredictUpdate — and requires bit-identical predictions,
// counters, and post-stream behaviour. The fused path exists purely as a
// performance fusion; any divergence is a bug.
func TestPredictUpdateEquivalence(t *testing.T) {
	split := NewTAGE()
	fused := NewTAGE()
	rng := rand.New(rand.NewSource(7))
	pcs := make([]uint64, 64)
	for i := range pcs {
		pcs[i] = uint64(rng.Intn(1 << 16))
	}
	for i := 0; i < 300000; i++ {
		pc := pcs[rng.Intn(len(pcs))]
		taken := rng.Intn(3) != 0
		a := split.Predict(pc)
		split.Update(pc, taken)
		b := fused.PredictUpdate(pc, taken)
		if a != b {
			t.Fatalf("op %d: split predicted %v, fused predicted %v", i, a, b)
		}
	}
	if split.Lookups != fused.Lookups || split.Mispredicts != fused.Mispredicts {
		t.Fatalf("counters diverged: split %d/%d, fused %d/%d",
			split.Mispredicts, split.Lookups, fused.Mispredicts, fused.Lookups)
	}
	// Post-stream predictions must agree too (tables and history identical).
	for _, pc := range pcs {
		if split.Predict(pc) != fused.Predict(pc) {
			t.Fatalf("post-stream prediction diverged at pc %#x", pc)
		}
	}
}
