// Package bpred implements the branch prediction hardware of Table I: a
// TAGE predictor with a 17-bit global history register, one bimodal base
// predictor and four tagged tables (~32 KiB total), plus a 512-set 4-way
// BTB for targets.
package bpred

// TAGE history lengths per tagged table (geometric-ish, capped by the
// 17-bit GHR of Table I).
var tageHistLens = [4]uint{3, 6, 11, 17}

const (
	ghrBits     = 17
	bimodalBits = 13 // 8K bimodal entries of 2-bit counters = 2 KiB
	taggedBits  = 11 // 2K entries per tagged table
	tagBits     = 9
)

type tageEntry struct {
	ctr    int8 // 3-bit signed saturating [-4,3]; >=0 predicts taken
	tag    uint16
	useful uint8 // 2-bit
}

// TAGE is a TAgged GEometric-history-length branch direction predictor.
type TAGE struct {
	bimodal []int8 // 2-bit counters [-2,1]; >=0 predicts taken
	tables  [4][]tageEntry
	ghr     uint32
	useAlt  int8 // use-alt-on-newly-allocated counter
	tick    uint32

	Lookups     uint64
	Mispredicts uint64
}

// NewTAGE creates the Table I predictor.
func NewTAGE() *TAGE {
	t := &TAGE{bimodal: make([]int8, 1<<bimodalBits)}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<taggedBits)
	}
	return t
}

func (t *TAGE) bimodalIdx(pc uint64) int {
	return int((pc >> 2) & (1<<bimodalBits - 1))
}

func (t *TAGE) tableIdx(tbl int, pc uint64) int {
	h := uint64(t.ghr) & (1<<tageHistLens[tbl] - 1)
	x := (pc >> 2) ^ (pc >> (taggedBits + 2)) ^ h ^ (h >> (taggedBits / 2)) ^ uint64(tbl)*0x9E37
	return int(x & (1<<taggedBits - 1))
}

func (t *TAGE) tableTag(tbl int, pc uint64) uint16 {
	h := uint64(t.ghr) & (1<<tageHistLens[tbl] - 1)
	x := (pc >> 2) ^ (pc >> 11) ^ (h << 1) ^ h>>3 ^ uint64(tbl)*0x51ED
	return uint16(x & (1<<tagBits - 1))
}

// lookup returns the provider table (or -1 for bimodal), its index, and the
// prediction with its alternate.
func (t *TAGE) lookup(pc uint64) (provider int, pred, altPred bool) {
	provider = -1
	pred = t.bimodal[t.bimodalIdx(pc)] >= 0
	altPred = pred
	for tbl := 0; tbl < len(t.tables); tbl++ {
		e := &t.tables[tbl][t.tableIdx(tbl, pc)]
		if e.tag == t.tableTag(tbl, pc) {
			altPred = pred
			pred = e.ctr >= 0
			provider = tbl
		}
	}
	return provider, pred, altPred
}

// Predict returns the predicted direction for the branch at pc.
func (t *TAGE) Predict(pc uint64) bool {
	t.Lookups++
	_, pred, _ := t.lookup(pc)
	return pred
}

// Update trains the predictor with the resolved outcome and advances the
// global history. Call exactly once per dynamic branch, after Predict.
func (t *TAGE) Update(pc uint64, taken bool) {
	provider, pred, altPred := t.lookup(pc)
	if pred != taken {
		t.Mispredicts++
	}

	// Update provider (or bimodal).
	if provider >= 0 {
		e := &t.tables[provider][t.tableIdx(provider, pc)]
		e.ctr = satUpdate3(e.ctr, taken)
		if pred != altPred {
			if pred == taken && e.useful < 3 {
				e.useful++
			} else if pred != taken && e.useful > 0 {
				e.useful--
			}
		}
	} else {
		i := t.bimodalIdx(pc)
		t.bimodal[i] = satUpdate2(t.bimodal[i], taken)
	}

	// On a mispredict, try to allocate in a longer-history table.
	if pred != taken && provider < len(t.tables)-1 {
		allocated := false
		for tbl := provider + 1; tbl < len(t.tables); tbl++ {
			e := &t.tables[tbl][t.tableIdx(tbl, pc)]
			if e.useful == 0 {
				e.tag = t.tableTag(tbl, pc)
				e.useful = 0
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness so future allocations can succeed.
			for tbl := provider + 1; tbl < len(t.tables); tbl++ {
				e := &t.tables[tbl][t.tableIdx(tbl, pc)]
				if e.useful > 0 {
					e.useful--
				}
			}
		}
	}

	// Periodic graceful reset of useful counters.
	t.tick++
	if t.tick&(1<<18-1) == 0 {
		for tbl := range t.tables {
			for i := range t.tables[tbl] {
				t.tables[tbl][i].useful >>= 1
			}
		}
	}

	// Advance global history.
	t.ghr = (t.ghr << 1) & (1<<ghrBits - 1)
	if taken {
		t.ghr |= 1
	}
}

// PredictUpdate performs Predict followed by Update with a single table
// walk. Global history cannot change between the predict and the train of
// one dynamic branch, so the provider, table indices, and tags from the
// predict-side walk are exactly the ones Update would recompute — the
// state evolution and counters are bit-identical to Predict+Update at
// nearly half the hashing cost.
func (t *TAGE) PredictUpdate(pc uint64, taken bool) (pred bool) {
	t.Lookups++
	var idx [4]int
	var tag [4]uint16
	provider := -1
	pred = t.bimodal[t.bimodalIdx(pc)] >= 0
	altPred := pred
	for tbl := 0; tbl < len(t.tables); tbl++ {
		idx[tbl] = t.tableIdx(tbl, pc)
		tag[tbl] = t.tableTag(tbl, pc)
		e := &t.tables[tbl][idx[tbl]]
		if e.tag == tag[tbl] {
			altPred = pred
			pred = e.ctr >= 0
			provider = tbl
		}
	}
	if pred != taken {
		t.Mispredicts++
	}

	if provider >= 0 {
		e := &t.tables[provider][idx[provider]]
		e.ctr = satUpdate3(e.ctr, taken)
		if pred != altPred {
			if pred == taken && e.useful < 3 {
				e.useful++
			} else if pred != taken && e.useful > 0 {
				e.useful--
			}
		}
	} else {
		i := t.bimodalIdx(pc)
		t.bimodal[i] = satUpdate2(t.bimodal[i], taken)
	}

	if pred != taken && provider < len(t.tables)-1 {
		allocated := false
		for tbl := provider + 1; tbl < len(t.tables); tbl++ {
			e := &t.tables[tbl][idx[tbl]]
			if e.useful == 0 {
				e.tag = tag[tbl]
				e.useful = 0
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				allocated = true
				break
			}
		}
		if !allocated {
			for tbl := provider + 1; tbl < len(t.tables); tbl++ {
				e := &t.tables[tbl][idx[tbl]]
				if e.useful > 0 {
					e.useful--
				}
			}
		}
	}

	t.tick++
	if t.tick&(1<<18-1) == 0 {
		for tbl := range t.tables {
			for i := range t.tables[tbl] {
				t.tables[tbl][i].useful >>= 1
			}
		}
	}

	t.ghr = (t.ghr << 1) & (1<<ghrBits - 1)
	if taken {
		t.ghr |= 1
	}
	return pred
}

// MispredictRate returns mispredicts/lookups.
func (t *TAGE) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Lookups)
}

// Reset clears all predictor state and statistics.
func (t *TAGE) Reset() {
	for i := range t.bimodal {
		t.bimodal[i] = 0
	}
	for tbl := range t.tables {
		for i := range t.tables[tbl] {
			t.tables[tbl][i] = tageEntry{}
		}
	}
	t.ghr, t.useAlt, t.tick = 0, 0, 0
	t.Lookups, t.Mispredicts = 0, 0
}

func satUpdate2(c int8, up bool) int8 {
	if up {
		if c < 1 {
			c++
		}
	} else if c > -2 {
		c--
	}
	return c
}

func satUpdate3(c int8, up bool) int8 {
	if up {
		if c < 3 {
			c++
		}
	} else if c > -4 {
		c--
	}
	return c
}
