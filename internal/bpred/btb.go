package bpred

import "sync"

// BTB is the branch target buffer of Table I: 512 sets, 4-way set
// associative, LRU replacement.
type BTB struct {
	sets  int
	ways  int
	tags  []uint64
	tgt   []uint64
	valid []bool
	age   []uint64
	clock uint64

	Lookups uint64
	Hits    uint64
}

// NewBTB creates the 512-set, 4-way BTB.
func NewBTB() *BTB { return newBTB(512, 4) }

func newBTB(sets, ways int) *BTB {
	n := sets * ways
	return &BTB{
		sets: sets, ways: ways,
		tags: make([]uint64, n), tgt: make([]uint64, n),
		valid: make([]bool, n), age: make([]uint64, n),
	}
}

func (b *BTB) setOf(pc uint64) int { return int((pc >> 2) % uint64(b.sets)) }

// Lookup returns the stored target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.Lookups++
	base := b.setOf(pc) * b.ways
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			b.clock++
			b.age[i] = b.clock
			b.Hits++
			return b.tgt[i], true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	base := b.setOf(pc) * b.ways
	b.clock++
	vi := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == pc {
			b.tgt[i] = target
			b.age[i] = b.clock
			return
		}
		if !b.valid[i] {
			vi = i
			oldest = 0
		} else if b.age[i] < oldest {
			oldest = b.age[i]
			vi = i
		}
	}
	b.valid[vi] = true
	b.tags[vi] = pc
	b.tgt[vi] = target
	b.age[vi] = b.clock
}

// Reset clears all entries and statistics.
func (b *BTB) Reset() {
	for i := range b.valid {
		b.valid[i] = false
	}
	b.clock = 0
	b.Lookups, b.Hits = 0, 0
}

// Predictor bundles direction (TAGE) and target (BTB) prediction, exposing
// the single check a trace-driven front end needs: was this branch
// predicted correctly?
type Predictor struct {
	TAGE *TAGE
	BTB  *BTB

	Branches    uint64
	Mispredicts uint64
}

// pool recycles predictors across simulation runs: the TAGE/BTB tables are
// among the largest per-run allocations, and Reset restores exactly the
// fresh-constructed state (covered by the package's Reset tests), so a
// recycled predictor is indistinguishable from a new one.
var pool sync.Pool

// NewPredictor creates the Table I predictor pair, reusing a recycled one
// when available.
func NewPredictor() *Predictor {
	if v := pool.Get(); v != nil {
		p := v.(*Predictor)
		p.Reset()
		return p
	}
	return &Predictor{TAGE: NewTAGE(), BTB: NewBTB()}
}

// Recycle returns p to the construction pool. The caller must not use p
// afterwards.
func Recycle(p *Predictor) {
	if p != nil {
		pool.Put(p)
	}
}

// OnBranch predicts the branch at pc, trains with the resolved outcome
// (taken, target), and reports whether the prediction was correct. A taken
// branch also requires a BTB target match.
func (p *Predictor) OnBranch(pc uint64, taken bool, target uint64) (correct bool) {
	p.Branches++
	btbTarget, btbHit := p.BTB.Lookup(pc)
	predTaken := p.TAGE.PredictUpdate(pc, taken)
	correct = predTaken == taken
	if taken && correct {
		correct = btbHit && btbTarget == target
	}
	if taken {
		p.BTB.Update(pc, target)
	}
	if !correct {
		p.Mispredicts++
	}
	return correct
}

// MispredictRate returns overall front-end redirect rate.
func (p *Predictor) MispredictRate() float64 {
	if p.Branches == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Branches)
}

// Reset clears predictor state and statistics.
func (p *Predictor) Reset() {
	p.TAGE.Reset()
	p.BTB.Reset()
	p.Branches, p.Mispredicts = 0, 0
}
