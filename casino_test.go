package casino

import (
	"strings"
	"testing"
)

func TestPublicRun(t *testing.T) {
	res, err := Run(Spec{Model: ModelCASINO, Workload: "libquantum", Ops: 5000, Warmup: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v", res.IPC)
	}
}

func TestPublicConfigs(t *testing.T) {
	c := DefaultCASINOConfig()
	if c.WS != 2 || c.SO != 1 || c.SIQSize != 4 || c.IQSize != 12 {
		t.Errorf("default CASINO config wrong: %+v", c)
	}
	c.Renaming = RenameConventional
	c.Disambig = DisambigNoLQ
	res, err := Run(Spec{Model: ModelCASINO, Workload: "gcc", Ops: 4000, Warmup: 500, Seed: 1, CasinoCfg: &c})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Error("ablation config run failed")
	}
	if w := WideCASINOConfig(4); w.Width != 4 || w.MidSIQs != 2 {
		t.Errorf("WideCASINOConfig: %+v", w)
	}
	if o := DefaultOoOConfig(); o.LQSize != 16 {
		t.Errorf("OoO config: %+v", o)
	}
	if i := DefaultInOConfig(); i.SCBSize != 4 {
		t.Errorf("InO config: %+v", i)
	}
	if s := DefaultSliceConfig(true); s.Kind.String() != "Freeway" {
		t.Errorf("slice config: %+v", s)
	}
	if sp := DefaultSpecInOConfig(2, 1); sp.WS != 2 {
		t.Errorf("specino config: %+v", sp)
	}
	if m := DefaultMemConfig(); m.L2Size != 1<<20 {
		t.Errorf("mem config: %+v", m)
	}
}

func TestWorkloadsAndModels(t *testing.T) {
	if len(Workloads()) != 25 {
		t.Errorf("%d workloads", len(Workloads()))
	}
	if len(Models()) != 7 {
		t.Errorf("%d models", len(Models()))
	}
	if _, err := WorkloadByName("mcf"); err != nil {
		t.Error(err)
	}
	tr, err := GenerateTrace("mcf", 1000, 3)
	if err != nil || tr.Len() < 1000 {
		t.Errorf("GenerateTrace: %v len=%d", err, tr.Len())
	}
	if _, err := GenerateTrace("nope", 10, 1); err == nil {
		t.Error("bad workload accepted")
	}
}

func TestFigureDispatch(t *testing.T) {
	out, err := Figure("table1", Options{})
	if err != nil || !strings.Contains(out, "S-IQ") {
		t.Errorf("table1: %v", err)
	}
	if _, err := Figure("fig99", Options{}); err == nil {
		t.Error("unknown figure accepted")
	}
	if len(Figures()) != 10 {
		t.Errorf("Figures() = %v", Figures())
	}
	if testing.Short() {
		return
	}
	small := Options{Apps: []string{"libquantum"}, Ops: 4000, Warmup: 1000, Seed: 1}
	for _, id := range []string{"fig6", "fig10b"} {
		out, err := Figure(id, small)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "libquantum") && !strings.Contains(out, "[2,1]") {
			t.Errorf("%s output suspicious:\n%s", id, out)
		}
	}
}
