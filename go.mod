module casino

go 1.22
