// Package casino is a from-scratch, cycle-level reproduction of the CASINO
// core microarchitecture (Jeong, Park, Lee, Ro — HPCA 2020): an in-order
// pipeline that dynamically and speculatively generates out-of-order issue
// schedules using cascaded in-order scheduling windows.
//
// The package is a facade over the simulator internals. It can:
//
//   - build and run any of the evaluated core models (stall-on-use
//     in-order, full out-of-order, CASINO, Load Slice Core, Freeway, and
//     the idealized SpecInO limit study) over deterministic synthetic
//     SPEC CPU2006 stand-in workloads;
//   - report timing (IPC), structure activity, energy and area from the
//     built-in McPAT/CACTI-flavoured model;
//   - regenerate every table and figure of the paper's evaluation.
//
// Quick start:
//
//	res, err := casino.Run(casino.Spec{
//		Model:    casino.ModelCASINO,
//		Workload: "libquantum",
//	})
//	fmt.Printf("IPC = %.3f\n", res.IPC)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package casino

import (
	"fmt"
	"strings"

	"casino/internal/core"
	"casino/internal/ino"
	"casino/internal/mem"
	"casino/internal/ooo"
	"casino/internal/sim"
	"casino/internal/slice"
	"casino/internal/specino"
	"casino/internal/trace"
	"casino/internal/workload"
)

// Model names accepted by Spec.Model.
const (
	ModelInO     = sim.ModelInO
	ModelOoO     = sim.ModelOoO
	ModelOoONoLQ = sim.ModelOoONoLQ
	ModelCASINO  = sim.ModelCASINO
	ModelLSC     = sim.ModelLSC
	ModelFreeway = sim.ModelFreeway
	ModelSpecInO = sim.ModelSpecInO
)

// Core simulation types (aliases into the simulator; external users need
// not import internal packages).
type (
	// Spec describes one simulation run.
	Spec = sim.Spec
	// Result is the outcome of one measured run.
	Result = sim.Result
	// Options parameterizes an experiment suite (which apps, how many
	// instructions, which seed).
	Options = sim.Options

	// CASINOConfig configures the CASINO core (Table I defaults via
	// DefaultCASINOConfig; ablation knobs documented on the type).
	CASINOConfig = core.Config
	// InOConfig configures the stall-on-use in-order baseline.
	InOConfig = ino.Config
	// OoOConfig configures the out-of-order baseline.
	OoOConfig = ooo.Config
	// SliceConfig configures the LSC/Freeway slice cores.
	SliceConfig = slice.Config
	// SpecInOConfig configures the idealized SpecInO limit study.
	SpecInOConfig = specino.Config
	// MemConfig configures the cache/DRAM hierarchy.
	MemConfig = mem.Config

	// Trace is a dynamic micro-op trace.
	Trace = trace.Trace
	// WorkloadProfile describes a synthetic application profile.
	WorkloadProfile = workload.Profile
)

// Renaming and disambiguation modes for CASINOConfig.
const (
	RenameConditional  = core.RenameConditional
	RenameConventional = core.RenameConventional
	DisambigOSCA       = core.DisambigOSCA
	DisambigNoLQ       = core.DisambigNoLQ
	DisambigAGIOrder   = core.DisambigAGIOrder
	DisambigFullLQ     = core.DisambigFullLQ
)

// Default configurations (Table I).
func DefaultCASINOConfig() CASINOConfig { return core.DefaultConfig() }

// DefaultInOConfig returns the Table I in-order baseline configuration.
func DefaultInOConfig() InOConfig { return ino.DefaultConfig() }

// DefaultOoOConfig returns the Table I out-of-order configuration.
func DefaultOoOConfig() OoOConfig { return ooo.DefaultConfig() }

// DefaultMemConfig returns the Table I memory system configuration.
func DefaultMemConfig() MemConfig { return mem.DefaultConfig() }

// WideCASINOConfig scales CASINO to 3- or 4-wide (§VI-F: cascaded S-IQs).
func WideCASINOConfig(width int) CASINOConfig { return core.WideConfig(width) }

// WideOoOConfig scales the OoO baseline to 3- or 4-wide.
func WideOoOConfig(width int) OoOConfig { return ooo.WideConfig(width) }

// DefaultSliceConfig returns the §VI-A2 LSC or Freeway configuration.
func DefaultSliceConfig(freeway bool) SliceConfig {
	if freeway {
		return slice.DefaultConfig(slice.Freeway)
	}
	return slice.DefaultConfig(slice.LSC)
}

// DefaultSpecInOConfig returns the SpecInO[ws,so] limit-study model.
func DefaultSpecInOConfig(ws, so int) SpecInOConfig { return specino.DefaultConfig(ws, so) }

// Run executes one simulation and returns its result.
func Run(s Spec) (Result, error) { return sim.Run(s) }

// Models lists every runnable model name.
func Models() []string { return sim.Models() }

// Workloads lists the 25 synthetic SPEC CPU2006 stand-in profiles
// (SPECint first).
func Workloads() []string { return workload.Names() }

// WorkloadByName returns a workload profile.
func WorkloadByName(name string) (*WorkloadProfile, error) { return workload.ByName(name) }

// GenerateTrace produces a deterministic dynamic trace of at least n
// micro-ops for the named workload.
func GenerateTrace(name string, n int, seed int64) (*Trace, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return workload.Generate(p, n, seed), nil
}

// Figures lists the reproducible table/figure identifiers.
func Figures() []string {
	return []string{"table1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig11", "stats"}
}

// Figure regenerates one of the paper's tables or figures as a rendered
// text table. Identifiers are those returned by Figures.
func Figure(id string, o Options) (string, error) {
	switch strings.ToLower(id) {
	case "table1", "table-1", "1":
		return sim.Table1().String(), nil
	case "fig2", "2":
		t, _, err := sim.Fig2(o)
		return render(t, err)
	case "fig6", "6":
		t, _, err := sim.Fig6(o)
		return render(t, err)
	case "fig7", "7":
		t, sum, err := sim.Fig7(o)
		if err != nil {
			return "", err
		}
		extra := fmt.Sprintf("\nissue breakdown (ConD): Sp-Mem=%.2f Sp-N-mem=%.2f Mem=%.2f N-mem=%.2f\n",
			sum.SpecMem, sum.SpecNonMem, sum.Mem, sum.NonMem)
		return t.String() + extra, nil
	case "fig8", "8":
		t, _, err := sim.Fig8(o)
		return render(t, err)
	case "fig9", "9":
		t, _, err := sim.Fig9(o)
		return render(t, err)
	case "fig10a", "10a":
		t, _, err := sim.Fig10a(o, nil)
		return render(t, err)
	case "fig10b", "10b":
		t, _, err := sim.Fig10b(o)
		return render(t, err)
	case "fig11", "11":
		t, _, err := sim.Fig11(o)
		return render(t, err)
	case "stats":
		t, _, err := sim.SectionStats(o)
		return render(t, err)
	default:
		return "", fmt.Errorf("casino: unknown figure %q (known: %v)", id, Figures())
	}
}

func render(t interface{ String() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return t.String(), nil
}
