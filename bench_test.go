package casino

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (run with `go test -bench=. -benchmem`). Each
// benchmark reports the figure's headline numbers as custom metrics, so
// the paper-vs-measured comparison in EXPERIMENTS.md can be re-derived
// from a single bench run. The ablation benchmarks cover the design
// choices DESIGN.md calls out.

import (
	"fmt"
	"math"
	"testing"

	"casino/internal/core"
	"casino/internal/sim"
)

func defaultMem() MemConfig { return DefaultMemConfig() }

// benchOpts scales each figure to bench-friendly runtimes while keeping
// the shapes stable (the full-scale numbers in EXPERIMENTS.md use
// cmd/casino-bench with larger -ops).
func benchOpts() sim.Options {
	return sim.Options{Ops: 30000, Warmup: 8000, Seed: 1}
}

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if sim.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2SpecInOPotential(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, geo, err := sim.Fig2(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geo["SpecInO[2,1] All"], "specino21-x")
		b.ReportMetric(geo["SpecInO[2,1] Non-mem"], "specino21nm-x")
		b.ReportMetric(geo["OoO"], "ooo-x")
	}
}

func BenchmarkFig6IPC(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, geo, err := sim.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(geo["LSC"], "lsc-x")
		b.ReportMetric(geo["Freeway"], "freeway-x")
		b.ReportMetric(geo["CASINO"], "casino-x")
		b.ReportMetric(geo["OoO"], "ooo-x")
	}
}

func BenchmarkFig7Renaming(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, sum, err := sim.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.NormIPC["ConD[32,14]"], "cond-vs-conv-x")
		b.ReportMetric(sum.AllocsPerKC["ConD[32,14]"]/sum.AllocsPerKC["ConV[32,14]"], "alloc-ratio")
		b.ReportMetric(sum.SpecMem+sum.SpecNonMem, "siq-frac")
	}
}

func BenchmarkFig8Disambiguation(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, sum, err := sim.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.NormIPC["AGI-Ordering"], "agi-ipc-x")
		b.ReportMetric(sum.NormIPC["NoLQ+OSCA"], "osca-ipc-x")
		b.ReportMetric(sum.SQSearches["NoLQ+OSCA"]/sum.SQSearches["NoLQ"], "osca-search-ratio")
		b.ReportMetric(sum.NormEff["NoLQ+OSCA"], "osca-eff-x")
	}
}

func BenchmarkFig9AreaEnergy(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, sum, err := sim.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.NormArea["CASINO"], "casino-area-x")
		b.ReportMetric(sum.NormArea["OoO"], "ooo-area-x")
		b.ReportMetric(sum.NormEnergy["CASINO"], "casino-energy-x")
		b.ReportMetric(sum.NormEnergy["OoO"], "ooo-energy-x")
		b.ReportMetric(sum.NormEnergy["OoO+NoLQ"], "ooonolq-energy-x")
	}
}

func BenchmarkFig10aIQSize(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, pts, err := sim.Fig10a(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[12][0], "iq12-x")
		b.ReportMetric(pts[4][0], "iq4-x")
		b.ReportMetric(pts[12][1], "iq12-sissue")
	}
}

func BenchmarkFig10bWindowConfig(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, pts, err := sim.Fig10b(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts["[2,1]"], "ws2so1-x")
		b.ReportMetric(pts["[2,2]"], "ws2so2-x")
		b.ReportMetric(pts["[4,4]"], "ws4so4-x")
	}
}

func BenchmarkFig11WiderIssue(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, sum, err := sim.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.NormIPC["CASINO"][4], "casino4w-x")
		b.ReportMetric(sum.NormIPC["OoO"][4], "ooo4w-x")
		b.ReportMetric(sum.NormEff["CASINO"][4]/sum.NormEff["OoO"][4], "casino4w-eff-vs-ooo")
	}
}

func BenchmarkSectionStats(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		_, out, err := sim.SectionStats(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(out["casinoSIQFrac"], "siq-frac")
		b.ReportMetric(out["producerDist"], "producer-dist")
		b.ReportMetric(out["specInOOoOFrac"], "specino-ooo-frac")
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

func casinoGeomean(b *testing.B, o sim.Options, mod func(*core.Config)) float64 {
	b.Helper()
	res, err := runCasinoSweep(o, mod)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func runCasinoSweep(o sim.Options, mod func(*core.Config)) (float64, error) {
	apps := o.Apps
	if len(apps) == 0 {
		apps = []string{"libquantum", "milc", "h264ref", "gcc", "cactusADM"}
	}
	prod := 1.0
	for _, app := range apps {
		cfg := core.DefaultConfig()
		if mod != nil {
			mod(&cfg)
		}
		r, err := sim.Run(sim.Spec{
			Model: sim.ModelCASINO, Workload: app,
			Ops: o.Ops, Warmup: o.Warmup, Seed: o.Seed, CasinoCfg: &cfg,
		})
		if err != nil {
			return 0, err
		}
		prod *= r.IPC
	}
	n := float64(len(apps))
	return math.Pow(prod, 1/n), nil
}

func BenchmarkAblationOSCASize(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		base := casinoGeomean(b, o, nil) // 64 counters
		for _, size := range []int{16, 128} {
			sz := size
			ipc := casinoGeomean(b, o, func(c *core.Config) { c.OSCASize = sz })
			b.ReportMetric(ipc/base, fmt.Sprintf("osca%d-x", sz))
		}
	}
}

func BenchmarkAblationDataBuffer(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		base := casinoGeomean(b, o, nil) // 4 entries
		small := casinoGeomean(b, o, func(c *core.Config) { c.DataBufSize = 1 })
		large := casinoGeomean(b, o, func(c *core.Config) { c.DataBufSize = 16 })
		b.ReportMetric(small/base, "db1-x")
		b.ReportMetric(large/base, "db16-x")
	}
}

func BenchmarkAblationArbitration(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		iqFirst := casinoGeomean(b, o, nil)
		siqFirst := casinoGeomean(b, o, func(c *core.Config) { c.SIQPriority = true })
		b.ReportMetric(siqFirst/iqFirst, "siq-priority-x")
	}
}

func BenchmarkAblationResourceStall(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		wait := casinoGeomean(b, o, nil)
		pass := casinoGeomean(b, o, func(c *core.Config) { c.PassOnResourceStall = true })
		b.ReportMetric(pass/wait, "pass-on-stall-x")
	}
}

func BenchmarkAblationProducerCount(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		base := casinoGeomean(b, o, nil) // 2-bit (3 producers)
		one := casinoGeomean(b, o, func(c *core.Config) { c.MaxProducers = 1 })
		b.ReportMetric(one/base, "prodcnt1-x")
	}
}

// --- microbenchmarks: simulator throughput ---

func BenchmarkSimulatorThroughputCASINO(b *testing.B) {
	benchThroughput(b, sim.ModelCASINO)
}

func BenchmarkSimulatorThroughputOoO(b *testing.B) {
	benchThroughput(b, sim.ModelOoO)
}

func BenchmarkSimulatorThroughputInO(b *testing.B) {
	benchThroughput(b, sim.ModelInO)
}

func benchThroughput(b *testing.B, model string) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(sim.Spec{Model: model, Workload: "gcc", Ops: 20000, Warmup: 2000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cycles += r.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := GenerateTrace("mcf", 100000, 1)
		if err != nil || tr.Len() < 100000 {
			b.Fatal("generation failed")
		}
	}
}

// --- substrate ablations: memory-system knobs the paper's MLP story
// depends on (MSHR count bounds MLP; the stride prefetcher shifts how
// much latency remains to hide; store-set clearing trades violations for
// serialization) ---

func BenchmarkAblationMSHRs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := ipcWithMem(b, 8)
		b.ReportMetric(ipcWithMem(b, 1)/base, "mshr1-x")
		b.ReportMetric(ipcWithMem(b, 16)/base, "mshr16-x")
	}
}

func ipcWithMem(b *testing.B, mshrs int) float64 {
	b.Helper()
	cfg := defaultMem()
	cfg.L1DMSHRs = mshrs
	r, err := sim.Run(sim.Spec{Model: sim.ModelCASINO, Workload: "milc",
		Ops: 30000, Warmup: 8000, Seed: 1, MemCfg: &cfg})
	if err != nil {
		b.Fatal(err)
	}
	return r.IPC
}

func BenchmarkAblationPrefetcher(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(degree int) float64 {
			cfg := defaultMem()
			cfg.PrefetchDegree = degree
			r, err := sim.Run(sim.Spec{Model: sim.ModelCASINO, Workload: "libquantum",
				Ops: 30000, Warmup: 8000, Seed: 1, MemCfg: &cfg})
			if err != nil {
				b.Fatal(err)
			}
			return r.IPC
		}
		base := run(2)
		b.ReportMetric(run(0)/base, "nopf-x")
		b.ReportMetric(run(4)/base, "pf4-x")
	}
}

func BenchmarkAblationStoreSetClearing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(interval uint64) (float64, float64) {
			cfg := DefaultOoOConfig()
			cfg.SSClearInterval = interval
			r, err := sim.Run(sim.Spec{Model: sim.ModelOoO, Workload: "h264ref",
				Ops: 30000, Warmup: 8000, Seed: 1, OoOCfg: &cfg})
			if err != nil {
				b.Fatal(err)
			}
			return r.IPC, r.Extra["violations"]
		}
		baseIPC, baseViol := run(0) // idealized: never clears
		clrIPC, clrViol := run(4096)
		b.ReportMetric(clrIPC/baseIPC, "clear4k-ipc-x")
		if baseViol > 0 {
			b.ReportMetric(clrViol/baseViol, "clear4k-viol-x")
		} else {
			b.ReportMetric(clrViol, "clear4k-viols")
		}
	}
}

// BenchmarkExtensionMemLatency is an extension study beyond the paper: how
// the CASINO-vs-OoO gap responds to memory latency (DDR4 speed grades).
// The slower the memory, the more scheduling window depth matters — the
// gap should widen at DDR4-1600 and narrow at DDR4-3200.
func BenchmarkExtensionMemLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gap := func(mts int) float64 {
			cfg := DefaultMemConfig()
			cfg.DRAMSpeedMTS = mts
			var ipc [2]float64
			for j, model := range []string{sim.ModelCASINO, sim.ModelOoO} {
				r, err := sim.Run(sim.Spec{Model: model, Workload: "mcf",
					Ops: 30000, Warmup: 8000, Seed: 1, MemCfg: &cfg})
				if err != nil {
					b.Fatal(err)
				}
				ipc[j] = r.IPC
			}
			return ipc[0] / ipc[1] // CASINO as a fraction of OoO
		}
		b.ReportMetric(gap(1600), "ddr1600-casino/ooo")
		b.ReportMetric(gap(2400), "ddr2400-casino/ooo")
		b.ReportMetric(gap(3200), "ddr3200-casino/ooo")
	}
}
