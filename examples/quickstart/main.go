// Quickstart: run the CASINO core next to the in-order and out-of-order
// baselines on one memory-bound workload and compare IPC — the paper's
// headline claim in one screen of code.
package main

import (
	"fmt"
	"log"

	"casino"
)

func main() {
	const workload = "libquantum" // streaming, memory-level-parallelism rich

	fmt.Printf("workload: %s\n\n", workload)
	fmt.Printf("%-8s %8s %10s %12s\n", "model", "IPC", "pJ/inst", "IPC/(nJ/in)")

	var inoIPC float64
	for _, model := range []string{casino.ModelInO, casino.ModelCASINO, casino.ModelOoO} {
		res, err := casino.Run(casino.Spec{
			Model:    model,
			Workload: workload,
			Ops:      100000,
			Warmup:   20000,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.3f %10.1f %12.2f\n", model, res.IPC, res.EnergyPerInst, res.PerfPerEnergy)
		if model == casino.ModelInO {
			inoIPC = res.IPC
		} else {
			fmt.Printf("         (%.0f%% over in-order)\n", 100*(res.IPC/inoIPC-1))
		}
	}
}
