// TSO load-load ordering (§III-C4, last paragraph): CASINO keeps total
// store order without a load queue by putting sentinels on cache lines
// read by speculatively reordered loads — a remote store's invalidation is
// acknowledged only after the guarding load commits. This example turns on
// the synthetic coherence-traffic injector (a stand-in for a second core)
// and reports how often the mechanism engages and what it costs the
// remote agent.
package main

import (
	"fmt"
	"log"

	"casino"
)

func main() {
	const workload = "milc" // overlapped loads → frequent load-load reordering

	fmt.Printf("workload: %s, synthetic remote invalidations at varying rates\n\n", workload)
	fmt.Printf("%-18s %8s %12s %14s %14s\n",
		"remote period", "IPC", "invals", "acks withheld", "delay cyc/ack")

	for _, period := range []int{0, 200, 50, 10} {
		cfg := casino.DefaultCASINOConfig()
		cfg.Remote.Period = period
		res, err := casino.Run(casino.Spec{
			Model: casino.ModelCASINO, Workload: workload,
			Ops: 60000, Warmup: 15000, Seed: 1, CasinoCfg: &cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("every %d cycles", period)
		if period == 0 {
			label = "off (single core)"
		}
		invals := res.Extra["remoteInvals"]
		withheld := res.Extra["remoteWithheld"]
		perAck := 0.0
		if withheld > 0 {
			perAck = res.Extra["remoteDelayCyc"] / withheld
		}
		fmt.Printf("%-18s %8.3f %12.0f %14.0f %14.1f\n", label, res.IPC, invals, withheld, perAck)
	}

	fmt.Println("\nThe local core's IPC is insensitive to remote traffic (the sentinel")
	fmt.Println("delays only the remote store's retirement), and the withheld-ack rate")
	fmt.Println("tracks how often loads were issued past older non-performed loads —")
	fmt.Println("TSO is preserved with no load-queue searches at all.")
}
