// Design-space exploration (the paper's §VI-E): sweep the SpecInO window
// configuration [WS,SO] and the IQ depth of the CASINO core on a chosen
// workload, printing where performance peaks — the experiment behind the
// paper's choice of SpecInO[2,1] with a 12-entry IQ.
package main

import (
	"flag"
	"fmt"
	"log"

	"casino"
)

func main() {
	wl := flag.String("workload", "milc", "workload to explore")
	ops := flag.Int("ops", 50000, "measured instructions per point")
	flag.Parse()

	run := func(cfg casino.CASINOConfig) float64 {
		res, err := casino.Run(casino.Spec{
			Model: casino.ModelCASINO, Workload: *wl,
			Ops: *ops, Warmup: *ops / 4, Seed: 1,
			CasinoCfg: &cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.IPC
	}

	fmt.Printf("CASINO design space on %q\n\n", *wl)

	fmt.Println("SpecInO window [WS,SO] (IPC):")
	base := run(casino.DefaultCASINOConfig())
	for _, p := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {3, 1}, {3, 3}, {4, 1}, {4, 4}} {
		cfg := casino.DefaultCASINOConfig()
		cfg.WS, cfg.SO = p[0], p[1]
		ipc := run(cfg)
		marker := ""
		if p == [2]int{2, 1} {
			marker = "   <- paper's choice"
		}
		fmt.Printf("  [%d,%d]  IPC %.3f  (%.1f%% vs [2,1])%s\n",
			p[0], p[1], ipc, 100*(ipc/base-1), marker)
	}

	fmt.Println("\nIQ size (IPC, with ample other resources):")
	for _, sz := range []int{4, 8, 12, 16, 20, 24} {
		cfg := casino.DefaultCASINOConfig()
		cfg.IQSize = sz
		cfg.ROBSize, cfg.SQSize = 256, 64
		cfg.IntPRF, cfg.FPPRF, cfg.DataBufSize = 256, 128, 64
		fmt.Printf("  IQ=%-3d IPC %.3f\n", sz, run(cfg))
	}
}
