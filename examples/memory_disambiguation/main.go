// Memory disambiguation (the paper's §III-C4 / Fig. 8 story): compare the
// disambiguation schemes on an aliasing-heavy workload — AGI ordering
// (never speculate), on-commit value-check (NoLQ), and NoLQ with the OSCA
// search filter — against the conventional load-queue OoO core, reporting
// speculation outcomes and the associative-search traffic each scheme pays.
package main

import (
	"fmt"
	"log"

	"casino"
)

func main() {
	const workload = "h264ref" // dense store→load aliasing, like the paper's outlier

	fmt.Printf("workload: %s (store->load aliasing dominant)\n\n", workload)
	fmt.Printf("%-14s %8s %12s %12s %12s\n", "scheme", "IPC", "violations", "SQ searches", "OSCA skips")

	run := func(name string, spec casino.Spec) {
		spec.Workload = workload
		spec.Ops = 80000
		spec.Warmup = 20000
		spec.Seed = 1
		res, err := casino.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8.3f %12.0f %12.0f %12.0f\n",
			name, res.IPC, res.Extra["violations"], res.Extra["sqSearches"], res.Extra["oscaSkips"])
	}

	// Conventional OoO with a 16-entry load queue and store-set predictor.
	run("OoO+LQ", casino.Spec{Model: casino.ModelOoO})

	// CASINO, never speculating on memory order (loads wait in the IQ).
	agi := casino.DefaultCASINOConfig()
	agi.Disambig = casino.DisambigAGIOrder
	agi.OSCASize = 0
	run("AGI-ordering", casino.Spec{Model: casino.ModelCASINO, CasinoCfg: &agi})

	// On-commit value-check without the OSCA: every speculated load
	// searches the unified SQ/SB at issue and again at commit.
	nolq := casino.DefaultCASINOConfig()
	nolq.Disambig = casino.DisambigNoLQ
	nolq.OSCASize = 0
	run("NoLQ", casino.Spec{Model: casino.ModelCASINO, CasinoCfg: &nolq})

	// The paper's full scheme: the OSCA filters provably redundant
	// searches.
	run("NoLQ+OSCA", casino.Spec{Model: casino.ModelCASINO})

	fmt.Println("\nExpected shape (paper Fig. 8): AGI-ordering is slowest (loads stall")
	fmt.Println("behind address generation); NoLQ recovers the speed at the price of SQ")
	fmt.Println("search traffic; the OSCA removes most of those searches at equal IPC.")
}
