// Energy efficiency (the paper's §VI-D/§VI-F motivation): an
// energy-constrained (mobile) design point wants OoO-class performance at
// near-in-order energy. This example compares performance, area, energy
// per instruction and the paper's performance/energy metric across the
// evaluated cores and issue widths.
package main

import (
	"fmt"
	"log"
	"math"

	"casino"
)

var apps = []string{"libquantum", "cactusADM", "hmmer", "h264ref"}

func main() {
	fmt.Println("2-wide cores (geometric means over", apps, "):")
	fmt.Printf("%-10s %10s %10s %12s %14s\n", "model", "IPC", "mm^2", "pJ/inst", "perf/energy")
	for _, model := range []string{casino.ModelInO, casino.ModelLSC, casino.ModelFreeway,
		casino.ModelCASINO, casino.ModelOoO, casino.ModelOoONoLQ} {
		ipc, area, epi, pe := geo(model, nil, nil)
		fmt.Printf("%-10s %10.3f %10.2f %12.1f %14.2f\n", model, ipc, area, epi, pe)
	}

	fmt.Println("\nscaling CASINO and OoO to wider issue (§VI-F):")
	fmt.Printf("%-12s %10s %12s %14s\n", "config", "IPC", "pJ/inst", "perf/energy")
	for _, w := range []int{2, 3, 4} {
		cc := casino.WideCASINOConfig(w)
		ipc, _, epi, pe := geo(casino.ModelCASINO, &cc, nil)
		fmt.Printf("CASINO-%dw   %10.3f %12.1f %14.2f\n", w, ipc, epi, pe)
		oc := casino.WideOoOConfig(w)
		ipc, _, epi, pe = geo(casino.ModelOoO, nil, &oc)
		fmt.Printf("OoO-%dw      %10.3f %12.1f %14.2f\n", w, ipc, epi, pe)
	}
}

// geo runs the model on every app and returns geometric-mean IPC plus
// area, energy/instruction and performance-per-energy.
func geo(model string, cc *casino.CASINOConfig, oc *casino.OoOConfig) (ipc, area, epi, pe float64) {
	ipc, epi, pe = 1, 1, 1
	for _, app := range apps {
		res, err := casino.Run(casino.Spec{
			Model: model, Workload: app, Ops: 40000, Warmup: 10000, Seed: 1,
			CasinoCfg: cc, OoOCfg: oc,
		})
		if err != nil {
			log.Fatal(err)
		}
		ipc *= res.IPC
		epi *= res.EnergyPerInst
		pe *= res.PerfPerEnergy
		area = res.AreaMM2
	}
	n := float64(len(apps))
	return math.Pow(ipc, 1/n), area, math.Pow(epi, 1/n), math.Pow(pe, 1/n)
}
