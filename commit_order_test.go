package casino

// Architectural invariant across all core models: instructions commit
// exactly once each, in program order (sequence numbers 0,1,2,...), no
// matter how speculatively the model issued them. The cores expose an
// OnCommit hook for this check.

import (
	"testing"

	"casino/internal/energy"
	"casino/internal/ino"
	"casino/internal/mem"
	"casino/internal/ooo"
	"casino/internal/slice"
	"casino/internal/specino"
	"casino/internal/workload"
)

type commitWatch struct {
	t    *testing.T
	name string
	next uint64
}

func (cw *commitWatch) hook() func(uint64) {
	return func(seq uint64) {
		if seq != cw.next {
			cw.t.Fatalf("%s: commit order violated: got %d, want %d", cw.name, seq, cw.next)
		}
		cw.next++
	}
}

func TestCommitOrderAllCores(t *testing.T) {
	p, _ := workload.ByName("h264ref") // aliasing + violations stress recovery paths
	tr := workload.Generate(p, 12000, 1)

	type stepper interface {
		Cycle()
		Done() bool
		Committed() uint64
	}
	cases := []struct {
		name  string
		build func(hook func(uint64)) stepper
	}{
		{"ino", func(h func(uint64)) stepper {
			c := ino.New(ino.DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
			c.OnCommit = h
			return c
		}},
		{"ooo", func(h func(uint64)) stepper {
			c := ooo.New(ooo.DefaultConfig(), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
			c.OnCommit = h
			return c
		}},
		{"ooo-nolq", func(h func(uint64)) stepper {
			cfg := ooo.DefaultConfig()
			cfg.NoLQ = true
			c := ooo.New(cfg, tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
			c.OnCommit = h
			return c
		}},
		{"lsc", func(h func(uint64)) stepper {
			c := slice.New(slice.DefaultConfig(slice.LSC), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
			c.OnCommit = h
			return c
		}},
		{"freeway", func(h func(uint64)) stepper {
			c := slice.New(slice.DefaultConfig(slice.Freeway), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
			c.OnCommit = h
			return c
		}},
		{"specino", func(h func(uint64)) stepper {
			c := specino.New(specino.DefaultConfig(2, 1), tr, mem.NewHierarchy(mem.DefaultConfig()), energy.NewAccountant())
			c.OnCommit = h
			return c
		}},
	}
	for _, tc := range cases {
		cw := &commitWatch{t: t, name: tc.name}
		c := tc.build(cw.hook())
		for i := 0; i < 100_000_000 && !c.Done(); i++ {
			c.Cycle()
		}
		if !c.Done() {
			t.Fatalf("%s livelocked", tc.name)
		}
		if cw.next != uint64(tr.Len()) {
			t.Errorf("%s: committed %d of %d", tc.name, cw.next, tr.Len())
		}
	}
}

func TestResultBreakdownsPopulated(t *testing.T) {
	res, err := Run(Spec{Model: ModelCASINO, Workload: "gcc", Ops: 4000, Warmup: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EnergyParts) == 0 || len(res.AreaParts) == 0 {
		t.Fatal("breakdowns missing")
	}
	for _, key := range []string{"S-IQ", "IQ", "SQ", "PRF", "ROB", "FUs", "Leakage"} {
		if _, ok := res.EnergyParts[key]; !ok {
			t.Errorf("energy breakdown missing %q", key)
		}
	}
	var sum float64
	for _, v := range res.AreaParts {
		sum += v
	}
	if diff := sum - res.AreaMM2; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("area parts sum %v != total %v", sum, res.AreaMM2)
	}
}
