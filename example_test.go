package casino_test

import (
	"fmt"

	"casino"
)

// Run a single simulation of the CASINO core and read its headline
// metrics.
func ExampleRun() {
	res, err := casino.Run(casino.Spec{
		Model:    casino.ModelCASINO,
		Workload: "libquantum",
		Ops:      20000,
		Warmup:   5000,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Model, res.Workload, res.Instructions >= 20000, res.IPC > 0)
	// Output: casino libquantum true true
}

// Configure an ablation: conventional renaming with the paper's small PRF.
func ExampleRun_ablation() {
	cfg := casino.DefaultCASINOConfig()
	cfg.Renaming = casino.RenameConventional
	res, err := casino.Run(casino.Spec{
		Model: casino.ModelCASINO, Workload: "gcc",
		Ops: 5000, Warmup: 1000, Seed: 1, CasinoCfg: &cfg,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.IPC > 0, res.Extra["regAllocs"] > 0)
	// Output: true true
}

// Generate a deterministic workload trace and inspect its mix.
func ExampleGenerateTrace() {
	tr, err := casino.GenerateTrace("mcf", 10000, 42)
	if err != nil {
		panic(err)
	}
	m := tr.Stats()
	fmt.Println(tr.Name, tr.Len() >= 10000, m.LoadFrac() > 0.05)
	// Output: mcf true true
}

// List what can be run.
func ExampleModels() {
	fmt.Println(len(casino.Models()), len(casino.Workloads()), len(casino.Figures()))
	// Output: 7 25 10
}
